// Email index: the paper's motivating OLTP scenario (§1). An ART index
// over host-reversed email keys is compressed with HOPE; point lookups
// and range scans run on encoded keys and return the same results, with
// a smaller index.
//
//   $ ./email_index [num_keys]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "art/art.h"
#include "datasets/datasets.h"
#include "hope/hope.h"
#include "workload/workload.h"

int main(int argc, char** argv) {
  size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;
  std::printf("generating %zu email keys...\n", n);
  auto keys = hope::GenerateEmails(n, 42);

  // Build the encoder from a 1% sample, as a DBMS would at index
  // creation.
  auto hope = hope::Hope::Build(hope::Scheme::kThreeGrams,
                                hope::SampleKeys(keys, 0.01), 1 << 14);

  // Load two ART indexes: plain keys vs HOPE-encoded keys.
  hope::Art plain, compressed;
  hope::Timer load_timer;
  for (size_t i = 0; i < keys.size(); i++) plain.Insert(keys[i], i);
  double plain_load = load_timer.Seconds();
  load_timer.Reset();
  for (size_t i = 0; i < keys.size(); i++)
    compressed.Insert(hope->Encode(keys[i]), i);
  double comp_load = load_timer.Seconds();

  std::printf("index memory:  plain %7.2f MB   compressed %7.2f MB "
              "(+ %zu KB dictionary)\n",
              plain.MemoryBytes() / 1048576.0,
              compressed.MemoryBytes() / 1048576.0,
              hope->dict().MemoryBytes() / 1024);
  std::printf("avg trie depth: plain %.1f   compressed %.1f\n",
              plain.AverageLeafDepth(), compressed.AverageLeafDepth());
  std::printf("load time:     plain %.2fs  compressed %.2fs (incl. "
              "encoding)\n",
              plain_load, comp_load);

  // Point lookups under a Zipf workload.
  auto queries = hope::GenerateZipfQueries(keys.size(), 200000, 7);
  hope::Timer t;
  size_t hits = 0;
  for (uint32_t q : queries) hits += plain.Lookup(keys[q], nullptr);
  double plain_us = t.Seconds() * 1e6 / static_cast<double>(queries.size());
  t.Reset();
  for (uint32_t q : queries)
    hits += compressed.Lookup(hope->Encode(keys[q]), nullptr);
  double comp_us = t.Seconds() * 1e6 / static_cast<double>(queries.size());
  std::printf("point lookup:  plain %.2f us   compressed %.2f us "
              "(hits %zu)\n",
              plain_us, comp_us, hits);

  // A range scan: "first 10 gmail users at or after com.gmail@m".
  std::vector<uint64_t> ids;
  compressed.Scan(hope->Encode("com.gmail@m"), 10, &ids);
  std::printf("first %zu emails >= com.gmail@m (via compressed index):\n",
              ids.size());
  for (uint64_t id : ids) std::printf("  %s\n", keys[id].c_str());
  return 0;
}
