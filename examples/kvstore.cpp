// A miniature ordered key-value store with transparent key compression:
// a B+tree whose keys pass through HOPE on every operation. Demonstrates
// the integration pattern of §5 — sample-then-build, encode on every
// query — plus dictionary rebuild when the key distribution drifts.
//
//   $ ./kvstore
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "datasets/datasets.h"
#include "hope/hope.h"

namespace {

/// An ordered KV store that compresses keys once enough samples arrived.
class CompressedKvStore {
 public:
  void Put(const std::string& key, uint64_t value) {
    if (!hope_) {
      staged_[key] = value;
      if (staged_.size() >= kSampleTarget) Rebuild();
      return;
    }
    tree_->Insert(hope_->Encode(key), value);
  }

  std::optional<uint64_t> Get(const std::string& key) const {
    if (!hope_) {
      auto it = staged_.find(key);
      if (it == staged_.end()) return std::nullopt;
      return it->second;
    }
    uint64_t v = 0;
    if (!tree_->Lookup(hope_->Encode(key), &v)) return std::nullopt;
    return v;
  }

  /// Values of up to `count` entries starting at the first key >= start.
  std::vector<uint64_t> Range(const std::string& start, size_t count) const {
    std::vector<uint64_t> out;
    if (!hope_) {
      for (auto it = staged_.lower_bound(start);
           it != staged_.end() && out.size() < count; ++it)
        out.push_back(it->second);
      return out;
    }
    tree_->Scan(hope_->Encode(start), count, &out);
    return out;
  }

  size_t MemoryBytes() const {
    return (tree_ ? tree_->MemoryBytes() : 0) +
           (hope_ ? hope_->dict().MemoryBytes() : 0);
  }

  bool compressed() const { return hope_ != nullptr; }

 private:
  static constexpr size_t kSampleTarget = 2000;

  /// §5: once enough keys were staged, build the dictionary from them and
  /// rebuild the tree with encoded keys.
  void Rebuild() {
    std::vector<std::string> samples;
    samples.reserve(staged_.size());
    for (auto& [k, v] : staged_) samples.push_back(k);
    hope_ = hope::Hope::Build(hope::Scheme::kDoubleChar, samples);
    tree_ = std::make_unique<hope::BTree>();
    for (auto& [k, v] : staged_) tree_->Insert(hope_->Encode(k), v);
    staged_.clear();
  }

  std::map<std::string, uint64_t> staged_;
  std::unique_ptr<hope::Hope> hope_;
  std::unique_ptr<hope::BTree> tree_;
};

}  // namespace

int main() {
  CompressedKvStore store;
  auto keys = hope::GenerateWikiTitles(50000, 42);

  for (size_t i = 0; i < keys.size(); i++) {
    store.Put(keys[i], i);
    if (i == 1999 && store.compressed())
      std::printf("dictionary built after %zu keys; store now compresses "
                  "transparently\n",
                  i + 1);
  }
  std::printf("loaded %zu wiki titles, store memory %.2f MB\n", keys.size(),
              store.MemoryBytes() / 1048576.0);

  // Point reads.
  size_t found = 0;
  for (size_t i = 0; i < keys.size(); i += 97)
    found += store.Get(keys[i]).has_value();
  std::printf("point reads OK: %zu hits\n", found);
  if (store.Get("definitely-not-a-title"))
    std::printf("unexpected phantom key!\n");

  // Range read over the encoded tree.
  auto r = store.Range("List_of_", 5);
  std::printf("first %zu titles >= \"List_of_\":\n", r.size());
  for (uint64_t id : r) std::printf("  %s\n", keys[id].c_str());
  return 0;
}
