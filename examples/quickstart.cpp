// Quickstart: build a HOPE encoder from sampled keys, encode arbitrary
// keys order-preservingly, and decode them back.
//
//   $ ./quickstart
#include <cassert>
#include <cstdio>
#include <string>
#include <vector>

#include "hope/hope.h"

int main() {
  // 1. Sample keys — in a DBMS these are the initial bulk-loaded index
  //    keys (~1% is enough, see Appendix A of the paper).
  std::vector<std::string> samples = {
      "com.gmail@alice",  "com.gmail@bob",    "com.gmail@carol",
      "com.yahoo@dave",   "com.yahoo@erin",   "com.hotmail@frank",
      "org.apache@grace", "com.gmail@heidi",  "net.att@ivan",
      "com.outlook@judy", "com.gmail@mallory", "com.yahoo@niaj",
  };

  // 2. Build the dictionary + encoder (Double-Char: a good default —
  //    near-best latency with solid compression).
  auto hope = hope::Hope::Build(hope::Scheme::kDoubleChar, samples);

  // 3. Encode keys. ANY key encodes — also ones never seen during the
  //    build (dictionary completeness), and order is preserved.
  std::string a = "com.gmail@zoe";     // unseen user
  std::string b = "com.gmail@zoe.q";   // unseen longer key
  std::string c = "org.unseen@whole";  // unseen host
  size_t abits = 0, bbits = 0, cbits = 0;
  std::string ea = hope->Encode(a, &abits);
  std::string eb = hope->Encode(b, &bbits);
  std::string ec = hope->Encode(c, &cbits);

  std::printf("%-20s -> %2zu bytes -> %2zu bytes compressed\n", a.c_str(),
              a.size(), ea.size());
  std::printf("%-20s -> %2zu bytes -> %2zu bytes compressed\n", b.c_str(),
              b.size(), eb.size());
  std::printf("%-20s -> %2zu bytes -> %2zu bytes compressed\n", c.c_str(),
              c.size(), ec.size());

  // Order preserved: a < b < c holds for the encodings too.
  assert(ea < eb && eb < ec);
  std::printf("order preserved: Encode(\"%s\") < Encode(\"%s\") < "
              "Encode(\"%s\")\n",
              a.c_str(), b.c_str(), c.c_str());

  // 4. Encoding is lossless: the decoder restores the exact key.
  assert(hope->Decode(ea, abits) == a);
  assert(hope->Decode(ec, cbits) == c);
  std::printf("lossless round trip OK\n");

  // 5. Compression statistics over the samples.
  std::printf("compression rate on samples: %.2fx, dictionary: %zu "
              "entries, %zu KB\n",
              hope->CompressionRate(samples), hope->dict().NumEntries(),
              hope->dict().MemoryBytes() / 1024);
  return 0;
}
