// URL range filter: SuRF + HOPE as an LSM-style filter (§5). A SuRF
// built over HOPE-encoded URLs answers point and range membership with a
// tiny memory footprint and a *lower* false-positive rate than the
// uncompressed filter at the same suffix budget (Fig. 11), because every
// bit of a compressed key carries more information.
//
//   $ ./url_filter [num_keys]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "datasets/datasets.h"
#include "hope/hope.h"
#include "surf/surf.h"

int main(int argc, char** argv) {
  size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;
  std::printf("generating %zu URLs...\n", n);
  auto all = hope::GenerateUrls(n, 42);
  size_t half = all.size() / 2;
  std::vector<std::string> stored(all.begin(), all.begin() + half);
  std::vector<std::string> absent(all.begin() + half, all.end());
  size_t raw_bytes = 0;
  for (const auto& k : stored) raw_bytes += k.size();

  auto hope = hope::Hope::Build(hope::Scheme::kFourGrams,
                                hope::SampleKeys(stored, 0.02), 1 << 14);

  auto build = [&](bool compress) {
    std::vector<std::string> keys;
    keys.reserve(stored.size());
    for (const auto& k : stored)
      keys.push_back(compress ? hope->Encode(k) : k);
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    return hope::Surf(keys, hope::SurfSuffix::kReal8);
  };
  hope::Surf plain = build(false);
  hope::Surf compressed = build(true);

  std::printf("raw keys: %.2f MB\n", raw_bytes / 1048576.0);
  std::printf("filter memory:  plain %.2f MB   compressed %.2f MB "
              "(+ %zu KB dictionary)\n",
              plain.MemoryBytes() / 1048576.0,
              compressed.MemoryBytes() / 1048576.0,
              hope->dict().MemoryBytes() / 1024);
  std::printf("avg trie depth: plain %.1f   compressed %.1f\n",
              plain.AverageLeafDepth(), compressed.AverageLeafDepth());

  // No false negatives, ever.
  size_t false_neg = 0;
  for (const auto& k : stored) {
    false_neg += !plain.MayContain(k);
    false_neg += !compressed.MayContain(hope->Encode(k));
  }
  std::printf("false negatives: %zu (must be 0)\n", false_neg);

  // False-positive rate on URLs that are not stored.
  size_t fp_plain = 0, fp_comp = 0;
  for (const auto& k : absent) {
    fp_plain += plain.MayContain(k);
    fp_comp += compressed.MayContain(hope->Encode(k));
  }
  std::printf("false positive rate: plain %.2f%%   compressed %.2f%%\n",
              100.0 * fp_plain / static_cast<double>(absent.size()),
              100.0 * fp_comp / static_cast<double>(absent.size()));

  // Range membership: does any stored URL live under this path prefix?
  std::string prefix = stored[stored.size() / 2].substr(0, 30);
  auto [lo, hi] = hope->EncodePair(prefix, prefix + "\xff");
  std::printf("range probe [%s*]: %s\n", prefix.c_str(),
              compressed.MayContainRange(lo, hi) ? "maybe present"
                                                 : "definitely absent");
  return 0;
}
