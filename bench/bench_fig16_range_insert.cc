// Figure 16 (Appendix D): YCSB range-query and insert latencies for ART,
// HOT, B+tree and Prefix B+tree. Range queries are YCSB E (start key +
// scan length, uniform 1..100); inserts load half the dataset, then time
// inserting the other half (keys encoded on the way in).
#include "art/art.h"
#include "bench/bench_common.h"
#include "btree/btree.h"
#include "hot/hot.h"
#include "prefix_btree/prefix_btree.h"

namespace hope::bench {
namespace {

template <typename Tree>
void RunTree(const char* dataset, const char* tree_name,
             const std::vector<std::string>& keys,
             const std::vector<uint32_t>& queries,
             const std::vector<uint32_t>& scan_lens,
             const std::vector<BuiltConfig>& configs) {
  std::printf("\n  --- %s ---\n", tree_name);
  std::printf("  %-18s %10s %11s\n", "Config", "Range(us)", "Insert(us)");
  for (const BuiltConfig& built : configs) {
    // Range queries on the fully loaded tree.
    Tree tree;
    for (size_t i = 0; i < built.tree_keys.size(); i++)
      tree.Insert(built.tree_keys[i], i);
    std::vector<uint64_t> sink;
    sink.reserve(128);
    Timer t;
    for (size_t i = 0; i < queries.size(); i++) {
      sink.clear();
      tree.Scan(built.MapKey(keys[queries[i]]), scan_lens[i], &sink);
    }
    double range_us =
        t.Seconds() * 1e6 / static_cast<double>(queries.size());

    // Inserts: load the first half, time the second half.
    Tree tree2;
    size_t half = keys.size() / 2;
    for (size_t i = 0; i < half; i++)
      tree2.Insert(built.tree_keys[i], i);
    Timer it;
    for (size_t i = half; i < keys.size(); i++)
      tree2.Insert(built.MapKey(keys[i]), i);
    double insert_us =
        it.Seconds() * 1e6 / static_cast<double>(keys.size() - half);

    std::printf("  %-18s %10.3f %11.3f\n", built.config.name, range_us,
                insert_us);
    Report()
        .Str("dataset", dataset)
        .Str("tree", tree_name)
        .Str("config", built.config.name)
        .Num("range_us", range_us)
        .Num("insert_us", insert_us);
  }
}

void Run() {
  PrintHeader(
      "Figure 16: YCSB range queries and inserts on ART / HOT / B+tree / "
      "Prefix B+tree");
  const size_t num_queries = std::min<size_t>(NumKeys() / 4, 50000);
  for (DatasetId id : AllDatasets()) {
    auto keys = GenerateDataset(id, NumKeys(), 42);
    auto queries = GenerateZipfQueries(keys.size(), num_queries, 7);
    auto scan_lens = GenerateScanLengths(num_queries, 100, 8);
    std::printf("\n[%s]\n", DatasetName(id));
    std::vector<BuiltConfig> configs;
    for (const TreeConfig& config : SearchTreeConfigs())
      configs.push_back(PrepareConfig(config, keys));
    RunTree<Art>(DatasetName(id), "ART", keys, queries, scan_lens, configs);
    RunTree<Hot>(DatasetName(id), "HOT", keys, queries, scan_lens, configs);
    RunTree<BTree>(DatasetName(id), "B+tree", keys, queries, scan_lens, configs);
    RunTree<PrefixBTree>(DatasetName(id), "Prefix B+tree", keys, queries, scan_lens, configs);
  }
}

}  // namespace
}  // namespace hope::bench

int main(int argc, char** argv) {
  return hope::bench::BenchMain(argc, argv, "fig16_range_insert",
                                hope::bench::Run);
}
