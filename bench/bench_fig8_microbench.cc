// Figure 8: compression microbenchmarks — compression rate, encode
// latency (ns per char) and dictionary memory versus the number of
// dictionary entries, for all six schemes on Email / Wiki / URL.
//
// Single-Char and Double-Char have fixed dictionary sizes (2^8 and
// 256*257); the variable schemes sweep 2^8 .. 2^14 by default and up to
// 2^18 under HOPE_BENCH_FULL=1 (the paper's sweep), where the quadratic
// Hu-Tucker build dominates run time.
#include "bench/bench_common.h"

namespace hope::bench {
namespace {

void RunScheme(DatasetId id, Scheme scheme,
               const std::vector<std::string>& keys,
               const std::vector<std::string>& sample) {
  std::vector<size_t> sizes;
  if (scheme == Scheme::kSingleChar) {
    sizes = {256};
  } else if (scheme == Scheme::kDoubleChar) {
    sizes = {0};  // fixed 256*257
  } else {
    for (size_t s = 1 << 8; s <= (FullScale() ? (1u << 18) : (1u << 14));
         s <<= 2)
      sizes.push_back(s);
  }
  for (size_t limit : sizes) {
    BuildStats stats;
    auto hope = Hope::Build(scheme, sample, limit, &stats);
    double cpr = MeasureCpr(*hope, keys);
    double ns = MeasureEncodeNsPerChar(*hope, keys);
    std::printf("  %-13s %9zu %8.3f %9.1f %12.1f\n", SchemeName(scheme),
                stats.num_entries, cpr, ns,
                static_cast<double>(stats.dict_memory_bytes) / 1024.0);
    Report()
        .Str("dataset", DatasetName(id))
        .Str("scheme", SchemeName(scheme))
        .Num("entries", static_cast<double>(stats.num_entries))
        .Num("cpr", cpr)
        .Num("encode_ns_per_char", ns)
        .Num("dict_kb", static_cast<double>(stats.dict_memory_bytes) / 1024.0);
  }
}

void Run() {
  PrintHeader(
      "Figure 8: CPR / encode latency / dictionary memory vs dictionary "
      "size");
  for (DatasetId id : AllDatasets()) {
    auto keys = GenerateDataset(id, NumKeys(), 42);
    auto sample = SampleKeys(keys, 0.01);
    std::printf("\n[%s] avg key %.1f bytes\n", DatasetName(id),
                static_cast<double>(TotalBytes(keys)) /
                    static_cast<double>(keys.size()));
    std::printf("  %-13s %9s %8s %9s %12s\n", "Scheme", "Entries", "CPR",
                "ns/char", "DictKB");
    for (Scheme scheme : AllSchemes()) RunScheme(id, scheme, keys, sample);
  }
}

}  // namespace
}  // namespace hope::bench

int main(int argc, char** argv) {
  return hope::bench::BenchMain(argc, argv, "fig8_microbench",
                                hope::bench::Run);
}
