// Figure 15 (Appendix C): compression rate under a key-distribution
// change. The Email corpus is split by provider: Email-A holds the gmail
// and yahoo accounts, Email-B everything else. Each scheme builds Dict-A
// and Dict-B from the matching split and is then measured on both splits;
// the mismatched cells simulate a sudden distribution shift. Correctness
// is unaffected (completeness guarantees any key still encodes) — only
// the compression rate degrades, and simpler schemes degrade less.
#include "bench/bench_common.h"

namespace hope::bench {
namespace {

void Run() {
  PrintHeader("Figure 15: CPR under key-distribution changes (Email A/B)");
  auto emails = GenerateEmails(NumKeys(), 42);
  std::vector<std::string> part_a, part_b;
  for (auto& k : emails) {
    if (k.rfind("com.gmail@", 0) == 0 || k.rfind("com.yahoo@", 0) == 0)
      part_a.push_back(k);
    else
      part_b.push_back(k);
  }
  std::printf("  Email-A: %zu keys (gmail+yahoo), Email-B: %zu keys\n\n",
              part_a.size(), part_b.size());
  size_t limit = FullScale() ? (size_t{1} << 16) : (size_t{1} << 14);

  std::printf("  %-13s %12s %12s %12s %12s\n", "Scheme", "A on A", "B on B",
              "A on B", "B on A");
  for (Scheme scheme : AllSchemes()) {
    auto dict_a = Hope::Build(scheme, SampleKeys(part_a, 0.02), limit);
    auto dict_b = Hope::Build(scheme, SampleKeys(part_b, 0.02), limit);
    double a_on_a = MeasureCpr(*dict_a, part_a);
    double b_on_b = MeasureCpr(*dict_b, part_b);
    double a_on_b = MeasureCpr(*dict_a, part_b);
    double b_on_a = MeasureCpr(*dict_b, part_a);
    std::printf("  %-13s %12.3f %12.3f %12.3f %12.3f\n", SchemeName(scheme),
                a_on_a, b_on_b, a_on_b, b_on_a);
    std::fflush(stdout);
    Report()
        .Str("scheme", SchemeName(scheme))
        .Num("cpr_a_on_a", a_on_a)
        .Num("cpr_b_on_b", b_on_b)
        .Num("cpr_a_on_b", a_on_b)
        .Num("cpr_b_on_a", b_on_a);
  }
}

}  // namespace
}  // namespace hope::bench

int main(int argc, char** argv) {
  return hope::bench::BenchMain(argc, argv, "fig15_distribution_shift",
                                hope::bench::Run);
}
