// Tail-latency SLO benchmark for the concurrent serving layer: a
// ServerLoop (shared-nothing pinned workers, per-worker queues) serves
// mixed request streams against a ConcurrentShardedIndex while the
// router re-balances underneath, and every op records an end-to-end
// latency into an HDR-style histogram. Three phases:
//
//   read_heavy   95/5 lookups/inserts plus a 2% scan stream, stable
//                traffic, no migration — the steady-state floor.
//   write_heavy  50/50 lookups/inserts — writer-path contention.
//   drift_0..4   kHotspotMigrate traffic walks the hotspot across the
//                key space; after each phase the rebalance policy is
//                polled until it publishes, so the NEXT phase serves
//                while the plan's key ranges migrate shard-to-shard
//                (double-routed lookups, batched moves on the loop's
//                maintenance thread).
//
// Every lookup is self-checking (values are KeyFingerprints, so a hit
// must carry the key's own fingerprint and scans must come back in
// non-decreasing fingerprint order); check_failures / scan
// _order_violations / spot_check_failures are correctness metrics the
// diff gate treats as zero-tolerance. p50/p99/p999 rows are
// machine-bound and only gated against same-machine baselines;
// ops_per_sec is the throughput gate.
//
// Load modes: the default is closed-loop (the generator submits as fast
// as the bounded queues accept, so measured latency is service time
// under saturation). `--arrival-rate <req_per_s>` switches to open-loop:
// every request carries a pre-computed intended arrival time from a
// fixed schedule, the generator sleeps only when AHEAD of schedule, and
// latency counts from the intended arrival — so a stall penalizes every
// request it delays instead of silently pausing the clock (the
// coordinated-omission fix). The two modes measure different
// quantities, so every JSON row carries a "mode" field and the diff
// gate never compares across modes.
//
// Each phase additionally emits a series="telemetry" row from the
// unified registry: rebuild rejects and check failures (zero-tolerance
// in the diff gate), lookup slow paths per million ops (thresholded),
// EBR pending garbage, and queue-delay percentiles.
//
// Scale: HOPE_BENCH_KEYS keys (default 200000); the acceptance run uses
// 1000000+. Single-Char dictionaries keep retrain cost (23ms) out of
// the serving story — Double-Char's fixed 2^16-symbol Hu-Tucker build
// (~1.4s) would turn every post-rebalance retrain into a bench-length
// stall without telling us anything about the serving layer.
#include <chrono>
#include <thread>

#include "bench/bench_common.h"
#include "btree/btree.h"
#include "dynamic/background_rebuilder.h"
#include "dynamic/rebalance_policy.h"
#include "dynamic/sharded_manager.h"
#include "serve/concurrent_index.h"
#include "serve/server_loop.h"
#include "telemetry/registry.h"
#include "telemetry/trace_log.h"
#include "workload/drift.h"

namespace hope::bench {

/// Open-loop arrival rate in req/s; 0 selects the closed-loop default.
/// Set by main() from --arrival-rate before BenchMain runs the bench.
double g_arrival_rate = 0;

namespace {

using dynamic::ShardedDictionaryManager;
using serve::ConcurrentShardedIndex;
using serve::KeyFingerprint;
using serve::OpStats;
using serve::Request;
using serve::ServerLoop;

constexpr size_t kShards = 8;
constexpr size_t kWorkers = 4;

const char* OpName(size_t op) {
  static const char* kNames[] = {"lookup", "insert", "erase", "scan"};
  return kNames[op];
}

const char* ModeName() { return g_arrival_rate > 0 ? "open" : "closed"; }

// One JSON row + table line per op that saw traffic in the phase, plus
// one series="telemetry" row with the subsystem counters the diff gate
// watches. prev_slow_paths carries the cumulative slow-path count
// across phases so the row reports a per-phase rate.
void ReportPhase(ServerLoop<BTree>& loop, ShardedDictionaryManager& mgr,
                 ConcurrentShardedIndex<BTree>& index, const char* phase,
                 double secs, uint64_t* prev_slow_paths) {
  uint64_t phase_ops = 0;
  uint64_t phase_failures = 0;
  for (size_t op = 0; op < Request::kNumOps; op++) {
    OpStats s = loop.Snapshot(static_cast<Request::Op>(op));
    if (s.ops == 0) continue;
    phase_ops += s.ops;
    phase_failures += s.check_failures + s.scan_order_violations;
    const double ops_per_sec = static_cast<double>(s.ops) / secs;
    std::printf("%-12s %-7s %9llu ops  p50 %7.1fus  p99 %7.1fus  "
                "p999 %7.1fus  %10.0f ops/s  fail %llu\n",
                phase, OpName(op), static_cast<unsigned long long>(s.ops),
                static_cast<double>(s.latency.Percentile(0.50)) / 1e3,
                static_cast<double>(s.latency.Percentile(0.99)) / 1e3,
                static_cast<double>(s.latency.Percentile(0.999)) / 1e3,
                ops_per_sec,
                static_cast<unsigned long long>(s.check_failures +
                                                s.scan_order_violations));
    Report()
        .Str("series", "serving")
        .Str("phase", phase)
        .Str("op", OpName(op))
        .Str("mode", ModeName())
        .Num("ops", static_cast<double>(s.ops))
        .Num("hits", static_cast<double>(s.hits))
        .Num("p50_ns", static_cast<double>(s.latency.Percentile(0.50)))
        .Num("p99_ns", static_cast<double>(s.latency.Percentile(0.99)))
        .Num("p999_ns", static_cast<double>(s.latency.Percentile(0.999)))
        .Num("mean_ns", s.latency.Mean())
        .Num("max_ns", static_cast<double>(s.latency.max()))
        .Num("ops_per_sec", ops_per_sec)
        .Num("check_failures", static_cast<double>(s.check_failures))
        .Num("scan_order_violations",
             static_cast<double>(s.scan_order_violations));
  }
  // Telemetry snapshot for the phase. Queue delay is the open-loop
  // signal (intended arrival -> execution start); in closed-loop it
  // just measures the bounded queue's depth.
  const telemetry::HistogramSnapshot qd = loop.QueueDelaySnapshot();
  uint64_t ebr_pending = mgr.reclaimer().pending();
  for (size_t i = 0; i < mgr.num_shards(); i++)
    ebr_pending += mgr.shard(i).reclaimer().pending();
  const uint64_t slow = index.lookup_slow_paths();
  const double slow_delta = static_cast<double>(slow - *prev_slow_paths);
  *prev_slow_paths = slow;
  const double mops =
      phase_ops == 0 ? 1.0 : static_cast<double>(phase_ops) / 1e6;
  Report()
      .Str("series", "telemetry")
      .Str("phase", phase)
      .Str("mode", ModeName())
      .Num("telemetry_rebuild_rejects",
           static_cast<double>(mgr.rebuilds_rejected()))
      .Num("telemetry_check_failures", static_cast<double>(phase_failures))
      .Num("telemetry_lookup_slow_paths_per_mop", slow_delta / mops)
      .Num("telemetry_ebr_pending", static_cast<double>(ebr_pending))
      .Num("telemetry_queue_delay_p50_ns",
           static_cast<double>(qd.Percentile(0.50)))
      .Num("telemetry_queue_delay_p99_ns",
           static_cast<double>(qd.Percentile(0.99)));
  loop.ResetStats();
  std::fflush(stdout);
}

void Run() {
  const size_t n = NumKeys();

  DriftOptions dopt;
  dopt.model = DriftModel::kHotspotMigrate;
  dopt.num_phases = 5;
  dopt.keys_per_phase = n;
  dopt.corpus_size = n;
  DriftingWorkload drift(dopt);
  std::vector<std::string> corpus = drift.part_a();
  corpus.insert(corpus.end(), drift.part_b().begin(), drift.part_b().end());

  ShardedDictionaryManager::Options sopt;
  sopt.num_shards = kShards;
  sopt.shard.scheme = Scheme::kSingleChar;
  sopt.shard.dict_size_limit = 256;
  sopt.shard.stats.sample_every = 2;
  sopt.shard.stats.reservoir_halflife = 512;
  sopt.traffic_ewma_alpha = 0.6;
  // Telemetry sinks, declared before everything that attaches to them.
  telemetry::MetricRegistry registry;
  telemetry::TraceLog trace;

  ShardedDictionaryManager mgr(
      SampleKeys(corpus, 0.05), sopt,
      [] { return dynamic::MakeCompressionDropPolicy(0.03, 256); },
      dynamic::MakeWeightImbalancePolicy(
          /*trigger_ratio=*/1.3, /*min_keys=*/n / 10,
          /*cooldown_seconds=*/0.05, /*consecutive_polls=*/2));
  mgr.AttachTelemetry(&registry, &trace);
  dynamic::BackgroundRebuilder rebuilder(&mgr);
  rebuilder.AttachTelemetry(&registry);
  ConcurrentShardedIndex<BTree> index(&mgr);
  index.AttachTelemetry(&registry, &trace);

  Timer preload;
  for (const auto& k : corpus) index.Insert(k, KeyFingerprint(k));
  const double preload_secs = preload.Seconds();
  std::printf("preloaded %zu keys across %zu shards in %.2fs\n",
              corpus.size(), mgr.num_shards(), preload_secs);

  const bool open_loop = g_arrival_rate > 0;
  ServerLoop<BTree>::Options lopt;
  lopt.num_workers = kWorkers;
  lopt.registry = &registry;
  // Closed-loop with bounded in-flight: latency is end-to-end from
  // Submit, so the queue bound (times service time) sets the p50 floor;
  // a deep queue would just measure its own depth. Open-loop instead
  // needs deep queues — a full queue that blocks Submit re-introduces
  // the coordinated omission the pre-stamped arrival times exist to
  // fix, and the backlog itself is what queue_delay measures.
  lopt.queue_capacity = open_loop ? 65536 : 256;
  lopt.migration_batch = 256;
  ServerLoop<BTree> loop(&index, lopt);
  std::printf("%zu workers (%zu pinned)\n", loop.num_workers(),
              loop.workers_pinned());
  if (open_loop)
    std::printf("open-loop arrival rate %.0f req/s\n", g_arrival_rate);

  // Deterministic mixed stream: position in the request stream decides
  // the op, so reruns replay byte-identical workloads.
  uint64_t prev_slow_paths = 0;
  const double ns_per_req = open_loop ? 1e9 / g_arrival_rate : 0;
  auto run_phase = [&](const char* name, size_t phase, double write_frac,
                       double scan_frac) {
    auto stream = drift.Phase(phase);
    const uint64_t t0 = ServerLoop<BTree>::NowNs();
    Timer t;
    for (size_t i = 0; i < stream.size(); i++) {
      Request req;
      req.key = stream[i];
      const double roll = static_cast<double>(i % 1000) / 1000.0;
      if (roll < scan_frac) {
        req.op = Request::Op::kScan;
        req.check = true;
        req.scan_count = 50;
      } else if (roll < scan_frac + write_frac) {
        req.op = Request::Op::kInsert;
        req.value = KeyFingerprint(req.key);
      } else {
        req.op = Request::Op::kLookup;
        req.check = true;
      }
      if (open_loop) {
        // Intended arrival from the fixed schedule: latency counts from
        // when the request SHOULD have arrived, and the generator only
        // sleeps when ahead — behind schedule it submits back-to-back
        // to catch up, so a stall penalizes every request it delayed.
        const uint64_t sched =
            t0 + static_cast<uint64_t>(static_cast<double>(i) * ns_per_req);
        req.enqueue_ns = sched;
        const uint64_t now = ServerLoop<BTree>::NowNs();
        if (sched > now)
          std::this_thread::sleep_for(std::chrono::nanoseconds(sched - now));
      }
      loop.Submit(std::move(req));
    }
    loop.WaitIdle();
    ReportPhase(loop, mgr, index, name, t.Seconds(), &prev_slow_paths);
  };

  run_phase("read_heavy", 0, /*write_frac=*/0.05, /*scan_frac=*/0.02);
  run_phase("write_heavy", 0, /*write_frac=*/0.50, /*scan_frac=*/0.02);

  // Drift phases: serve phase p, then poll the rebalance policy until
  // its consecutive-imbalance trigger fires (the background worker may
  // be inside a dictionary build, so poll directly). The published
  // plan's ranges migrate under phase p+1's live traffic.
  char phase_name[32];
  for (size_t p = 0; p < drift.num_phases(); p++) {
    std::snprintf(phase_name, sizeof(phase_name), "drift_%zu", p);
    run_phase(phase_name, p, /*write_frac=*/0.10, /*scan_frac=*/0.002);
    for (int spin = 0; spin < 10; spin++) {
      mgr.PollRebalance();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  // Spot-check: after every phase and migration, a stable slice of the
  // corpus must still be exact, and a long scan must stay ordered.
  uint64_t spot_failures = 0;
  const size_t step = corpus.size() < 1000 ? 1 : corpus.size() / 1000;
  for (size_t i = 0; i < corpus.size(); i += step) {
    uint64_t v = 0;
    if (!index.Lookup(corpus[i], &v) || v != KeyFingerprint(corpus[i]))
      spot_failures++;
  }
  std::vector<uint64_t> out;
  index.Scan(corpus[0], 1000, &out);
  for (size_t j = 1; j < out.size(); j++)
    if (out[j] < out[j - 1]) spot_failures++;

  rebuilder.Stop();
  loop.Stop();
  std::printf("rebalances %llu, plans applied %llu, entries migrated %llu, "
              "reader slow paths %llu, spot-check failures %llu\n",
              static_cast<unsigned long long>(mgr.rebalances_published()),
              static_cast<unsigned long long>(index.plans_applied()),
              static_cast<unsigned long long>(index.entries_migrated()),
              static_cast<unsigned long long>(index.lookup_slow_paths()),
              static_cast<unsigned long long>(spot_failures));
  Report()
      .Str("series", "serving_summary")
      .Str("mode", ModeName())
      .Num("preload_seconds", preload_secs)
      .Num("rebalances", static_cast<double>(mgr.rebalances_published()))
      .Num("plans_applied", static_cast<double>(index.plans_applied()))
      .Num("entries_migrated", static_cast<double>(index.entries_migrated()))
      .Num("lookup_slow_paths",
           static_cast<double>(index.lookup_slow_paths()))
      .Num("router_version", static_cast<double>(index.router_version()))
      .Num("spot_check_failures", static_cast<double>(spot_failures));
}

}  // namespace
}  // namespace hope::bench

int main(int argc, char** argv) {
  // --arrival-rate is consumed here: BenchMain owns the shared flags
  // and rejects anything it does not recognize.
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; i++) {
    if (!std::strcmp(argv[i], "--arrival-rate") && i + 1 < argc) {
      unsigned long long rate = 0;
      if (!hope::ParsePositiveUint(argv[++i], 100000000ull, &rate)) {
        std::fprintf(
            stderr, "usage: %s [--json <path>] [--arrival-rate <req_per_s>]\n",
            argv[0]);
        return 2;
      }
      hope::bench::g_arrival_rate = static_cast<double>(rate);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  return hope::bench::BenchMain(static_cast<int>(passthrough.size()),
                                passthrough.data(), "serving",
                                hope::bench::Run);
}
