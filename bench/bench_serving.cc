// Tail-latency SLO benchmark for the concurrent serving layer: a
// ServerLoop (shared-nothing pinned workers, per-worker queues) serves
// mixed request streams against a ConcurrentShardedIndex while the
// router re-balances underneath, and every op records an end-to-end
// latency into an HDR-style histogram. Three phases:
//
//   read_heavy   95/5 lookups/inserts plus a 2% scan stream, stable
//                traffic, no migration — the steady-state floor.
//   write_heavy  50/50 lookups/inserts — writer-path contention.
//   drift_0..4   kHotspotMigrate traffic walks the hotspot across the
//                key space; after each phase the rebalance policy is
//                polled until it publishes, so the NEXT phase serves
//                while the plan's key ranges migrate shard-to-shard
//                (double-routed lookups, batched moves on the loop's
//                maintenance thread).
//
// Every lookup is self-checking (values are KeyFingerprints, so a hit
// must carry the key's own fingerprint and scans must come back in
// non-decreasing fingerprint order); check_failures / scan
// _order_violations / spot_check_failures are correctness metrics the
// diff gate treats as zero-tolerance. p50/p99/p999 rows are
// machine-bound and only gated against same-machine baselines;
// ops_per_sec is the throughput gate.
//
// Scale: HOPE_BENCH_KEYS keys (default 200000); the acceptance run uses
// 1000000+. Single-Char dictionaries keep retrain cost (23ms) out of
// the serving story — Double-Char's fixed 2^16-symbol Hu-Tucker build
// (~1.4s) would turn every post-rebalance retrain into a bench-length
// stall without telling us anything about the serving layer.
#include <chrono>
#include <thread>

#include "bench/bench_common.h"
#include "btree/btree.h"
#include "dynamic/background_rebuilder.h"
#include "dynamic/rebalance_policy.h"
#include "dynamic/sharded_manager.h"
#include "serve/concurrent_index.h"
#include "serve/server_loop.h"
#include "workload/drift.h"

namespace hope::bench {
namespace {

using dynamic::ShardedDictionaryManager;
using serve::ConcurrentShardedIndex;
using serve::KeyFingerprint;
using serve::OpStats;
using serve::Request;
using serve::ServerLoop;

constexpr size_t kShards = 8;
constexpr size_t kWorkers = 4;

const char* OpName(size_t op) {
  static const char* kNames[] = {"lookup", "insert", "erase", "scan"};
  return kNames[op];
}

// One JSON row + table line per op that saw traffic in the phase.
void ReportPhase(ServerLoop<BTree>& loop, const char* phase, double secs) {
  for (size_t op = 0; op < Request::kNumOps; op++) {
    OpStats s = loop.Snapshot(static_cast<Request::Op>(op));
    if (s.ops == 0) continue;
    const double ops_per_sec = static_cast<double>(s.ops) / secs;
    std::printf("%-12s %-7s %9llu ops  p50 %7.1fus  p99 %7.1fus  "
                "p999 %7.1fus  %10.0f ops/s  fail %llu\n",
                phase, OpName(op), static_cast<unsigned long long>(s.ops),
                static_cast<double>(s.latency.Percentile(0.50)) / 1e3,
                static_cast<double>(s.latency.Percentile(0.99)) / 1e3,
                static_cast<double>(s.latency.Percentile(0.999)) / 1e3,
                ops_per_sec,
                static_cast<unsigned long long>(s.check_failures +
                                                s.scan_order_violations));
    Report()
        .Str("series", "serving")
        .Str("phase", phase)
        .Str("op", OpName(op))
        .Num("ops", static_cast<double>(s.ops))
        .Num("hits", static_cast<double>(s.hits))
        .Num("p50_ns", static_cast<double>(s.latency.Percentile(0.50)))
        .Num("p99_ns", static_cast<double>(s.latency.Percentile(0.99)))
        .Num("p999_ns", static_cast<double>(s.latency.Percentile(0.999)))
        .Num("mean_ns", s.latency.Mean())
        .Num("max_ns", static_cast<double>(s.latency.max()))
        .Num("ops_per_sec", ops_per_sec)
        .Num("check_failures", static_cast<double>(s.check_failures))
        .Num("scan_order_violations",
             static_cast<double>(s.scan_order_violations));
  }
  loop.ResetStats();
  std::fflush(stdout);
}

void Run() {
  const size_t n = NumKeys();

  DriftOptions dopt;
  dopt.model = DriftModel::kHotspotMigrate;
  dopt.num_phases = 5;
  dopt.keys_per_phase = n;
  dopt.corpus_size = n;
  DriftingWorkload drift(dopt);
  std::vector<std::string> corpus = drift.part_a();
  corpus.insert(corpus.end(), drift.part_b().begin(), drift.part_b().end());

  ShardedDictionaryManager::Options sopt;
  sopt.num_shards = kShards;
  sopt.shard.scheme = Scheme::kSingleChar;
  sopt.shard.dict_size_limit = 256;
  sopt.shard.stats.sample_every = 2;
  sopt.shard.stats.reservoir_halflife = 512;
  sopt.traffic_ewma_alpha = 0.6;
  ShardedDictionaryManager mgr(
      SampleKeys(corpus, 0.05), sopt,
      [] { return dynamic::MakeCompressionDropPolicy(0.03, 256); },
      dynamic::MakeWeightImbalancePolicy(
          /*trigger_ratio=*/1.3, /*min_keys=*/n / 10,
          /*cooldown_seconds=*/0.05, /*consecutive_polls=*/2));
  dynamic::BackgroundRebuilder rebuilder(&mgr);
  ConcurrentShardedIndex<BTree> index(&mgr);

  Timer preload;
  for (const auto& k : corpus) index.Insert(k, KeyFingerprint(k));
  const double preload_secs = preload.Seconds();
  std::printf("preloaded %zu keys across %zu shards in %.2fs\n",
              corpus.size(), mgr.num_shards(), preload_secs);

  ServerLoop<BTree>::Options lopt;
  lopt.num_workers = kWorkers;
  // Closed-loop with bounded in-flight: latency is end-to-end from
  // Submit, so the queue bound (times service time) sets the p50 floor;
  // a deep queue would just measure its own depth.
  lopt.queue_capacity = 256;
  lopt.migration_batch = 256;
  ServerLoop<BTree> loop(&index, lopt);
  std::printf("%zu workers (%zu pinned)\n", loop.num_workers(),
              loop.workers_pinned());

  // Deterministic mixed stream: position in the request stream decides
  // the op, so reruns replay byte-identical workloads.
  auto run_phase = [&](const char* name, size_t phase, double write_frac,
                       double scan_frac) {
    auto stream = drift.Phase(phase);
    Timer t;
    for (size_t i = 0; i < stream.size(); i++) {
      Request req;
      req.key = stream[i];
      const double roll = static_cast<double>(i % 1000) / 1000.0;
      if (roll < scan_frac) {
        req.op = Request::Op::kScan;
        req.check = true;
        req.scan_count = 50;
      } else if (roll < scan_frac + write_frac) {
        req.op = Request::Op::kInsert;
        req.value = KeyFingerprint(req.key);
      } else {
        req.op = Request::Op::kLookup;
        req.check = true;
      }
      loop.Submit(std::move(req));
    }
    loop.WaitIdle();
    ReportPhase(loop, name, t.Seconds());
  };

  run_phase("read_heavy", 0, /*write_frac=*/0.05, /*scan_frac=*/0.02);
  run_phase("write_heavy", 0, /*write_frac=*/0.50, /*scan_frac=*/0.02);

  // Drift phases: serve phase p, then poll the rebalance policy until
  // its consecutive-imbalance trigger fires (the background worker may
  // be inside a dictionary build, so poll directly). The published
  // plan's ranges migrate under phase p+1's live traffic.
  char phase_name[32];
  for (size_t p = 0; p < drift.num_phases(); p++) {
    std::snprintf(phase_name, sizeof(phase_name), "drift_%zu", p);
    run_phase(phase_name, p, /*write_frac=*/0.10, /*scan_frac=*/0.002);
    for (int spin = 0; spin < 10; spin++) {
      mgr.PollRebalance();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  // Spot-check: after every phase and migration, a stable slice of the
  // corpus must still be exact, and a long scan must stay ordered.
  uint64_t spot_failures = 0;
  const size_t step = corpus.size() < 1000 ? 1 : corpus.size() / 1000;
  for (size_t i = 0; i < corpus.size(); i += step) {
    uint64_t v = 0;
    if (!index.Lookup(corpus[i], &v) || v != KeyFingerprint(corpus[i]))
      spot_failures++;
  }
  std::vector<uint64_t> out;
  index.Scan(corpus[0], 1000, &out);
  for (size_t j = 1; j < out.size(); j++)
    if (out[j] < out[j - 1]) spot_failures++;

  rebuilder.Stop();
  loop.Stop();
  std::printf("rebalances %llu, plans applied %llu, entries migrated %llu, "
              "reader slow paths %llu, spot-check failures %llu\n",
              static_cast<unsigned long long>(mgr.rebalances_published()),
              static_cast<unsigned long long>(index.plans_applied()),
              static_cast<unsigned long long>(index.entries_migrated()),
              static_cast<unsigned long long>(index.lookup_slow_paths()),
              static_cast<unsigned long long>(spot_failures));
  Report()
      .Str("series", "serving_summary")
      .Num("preload_seconds", preload_secs)
      .Num("rebalances", static_cast<double>(mgr.rebalances_published()))
      .Num("plans_applied", static_cast<double>(index.plans_applied()))
      .Num("entries_migrated", static_cast<double>(index.entries_migrated()))
      .Num("lookup_slow_paths",
           static_cast<double>(index.lookup_slow_paths()))
      .Num("router_version", static_cast<double>(index.router_version()))
      .Num("spot_check_failures", static_cast<double>(spot_failures));
}

}  // namespace
}  // namespace hope::bench

int main(int argc, char** argv) {
  return hope::bench::BenchMain(argc, argv, "serving", hope::bench::Run);
}
