// Figure 13 (Appendix A): compression-rate sensitivity to the sample
// size. For each dataset and scheme, build dictionaries from samples of
// 0.001% .. 100% of the keys and measure the resulting CPR. The paper's
// finding: 1% is enough for every scheme to reach its maximum CPR, and
// higher-order schemes are more sensitive to small samples.
#include "bench/bench_common.h"

namespace hope::bench {
namespace {

void Run() {
  PrintHeader("Figure 13: CPR vs sample size");
  const double fractions[] = {0.00001, 0.0001, 0.001, 0.01, 0.1, 1.0};
  size_t limit = FullScale() ? (size_t{1} << 16) : (size_t{1} << 14);

  for (DatasetId id : AllDatasets()) {
    auto keys = GenerateDataset(id, NumKeys(), 42);
    std::printf("\n[%s]\n  %-13s", DatasetName(id), "Scheme");
    for (double f : fractions) std::printf(" %8.3f%%", f * 100);
    std::printf("\n");
    for (Scheme scheme : AllSchemes()) {
      std::printf("  %-13s", SchemeName(scheme));
      for (double f : fractions) {
        // ALM's all-substring statistics make 100% samples intractable at
        // paper scale too (the paper's Fig. 13 has the same gap).
        if (scheme == Scheme::kAlm && f >= 0.1 && !FullScale()) {
          std::printf(" %9s", "-");
          continue;
        }
        auto hope = Hope::Build(scheme, SampleKeys(keys, f), limit);
        double cpr = MeasureCpr(*hope, keys);
        std::printf(" %9.3f", cpr);
        std::fflush(stdout);
        Report()
            .Str("dataset", DatasetName(id))
            .Str("scheme", SchemeName(scheme))
            .Num("sample_fraction", f)
            .Num("cpr", cpr);
      }
      std::printf("\n");
    }
  }
}

}  // namespace
}  // namespace hope::bench

int main(int argc, char** argv) {
  return hope::bench::BenchMain(argc, argv, "fig13_sample_sensitivity",
                                hope::bench::Run);
}
