// Figure 14 (Appendix B): batch encoding on a pre-sorted 1% Email sample
// with batch sizes 1, 2 (pair encoding) and 32. Batching encodes the
// shared prefix of a sorted run once; the ALM schemes cannot batch
// (arbitrary-length symbols prevent a provably aligned shared prefix).
#include <algorithm>

#include "bench/bench_common.h"

namespace hope::bench {
namespace {

void Run() {
  PrintHeader("Figure 14: batch encoding latency (sorted Email sample)");
  auto keys = GenerateEmails(NumKeys(), 42);
  auto sample = SampleKeys(keys, 0.01);
  std::sort(keys.begin(), keys.end());
  size_t limit = FullScale() ? (size_t{1} << 16) : (size_t{1} << 14);

  std::printf("  %-13s %12s %12s %12s %12s\n", "Scheme", "b=1 ns/ch",
              "b=2 ns/ch", "b=32 ns/ch", "full xT");
  for (Scheme scheme : {Scheme::kSingleChar, Scheme::kDoubleChar,
                        Scheme::kThreeGrams, Scheme::kFourGrams,
                        Scheme::kAlm, Scheme::kAlmImproved}) {
    auto hope = Hope::Build(scheme, sample, limit);
    size_t chars = TotalBytes(keys);
    std::printf("  %-13s", SchemeName(scheme));
    auto& row = Report().Str("scheme", SchemeName(scheme));
    for (size_t batch : {size_t{1}, size_t{2}, size_t{32}}) {
      // Pre-slice the sorted runs so only encoding is timed.
      std::vector<std::vector<std::string>> runs;
      runs.reserve(keys.size() / batch + 1);
      for (size_t i = 0; i < keys.size(); i += batch) {
        size_t n = std::min(batch, keys.size() - i);
        runs.emplace_back(keys.begin() + static_cast<long>(i),
                          keys.begin() + static_cast<long>(i + n));
      }
      Timer t;
      size_t sink = 0;
      for (const auto& run : runs) {
        size_t bits = 0;
        auto enc = hope->EncodeBatch(run, &bits);
        sink += bits;
      }
      double secs = t.Seconds();
      double ns = secs * 1e9 / static_cast<double>(chars);
      if (sink == size_t(-1)) std::printf("!");
      std::printf(" %12.1f", ns);
      std::fflush(stdout);
      char field[32];
      std::snprintf(field, sizeof(field), "ns_per_char_b%zu", batch);
      row.Num(field, ns);
      // Throughput twin of the latency series (higher-better family in
      // tools/bench_diff.py, so SIMD wins land in the gate).
      std::snprintf(field, sizeof(field), "mchars_per_sec_b%zu", batch);
      row.Num(field, static_cast<double>(chars) / secs / 1e6);
    }
    // Whole-set batch with the threaded fan-out (num_threads = 0 lets the
    // encoder pick hardware concurrency); one chunk per thread, so the
    // batch-reuse benefit and the fan-out compose.
    {
      Timer t;
      size_t bits = 0;
      auto enc = hope->EncodeBatch(keys, &bits, /*num_threads=*/0);
      double secs = t.Seconds();
      double ns = secs * 1e9 / static_cast<double>(chars);
      // Consume the result so the encode can't be dead-code-eliminated.
      size_t sink = bits + (enc.empty() ? 0 : enc.back().size());
      if (sink == size_t(-1)) std::printf("!");
      std::printf(" %12.1f", ns);
      row.Num("ns_per_char_full_parallel", ns);
      row.Num("mchars_per_sec_full_parallel",
              static_cast<double>(chars) / secs / 1e6);
    }
    std::printf("%s\n",
                (scheme == Scheme::kAlm || scheme == Scheme::kAlmImproved)
                    ? "   (no batch reuse: unbounded lookahead)"
                    : "");
  }
}

}  // namespace
}  // namespace hope::bench

int main(int argc, char** argv) {
  return hope::bench::BenchMain(argc, argv, "fig14_batch_encoding",
                                hope::bench::Run);
}
