// Figure 14 (Appendix B): batch encoding on a pre-sorted 1% Email sample
// with batch sizes 1, 2 (pair encoding) and 32. Batching encodes the
// shared prefix of a sorted run once; the ALM schemes cannot batch
// (arbitrary-length symbols prevent a provably aligned shared prefix).
#include <algorithm>

#include "bench/bench_common.h"

namespace hope::bench {
namespace {

void Run() {
  PrintHeader("Figure 14: batch encoding latency (sorted Email sample)");
  auto keys = GenerateEmails(NumKeys(), 42);
  auto sample = SampleKeys(keys, 0.01);
  std::sort(keys.begin(), keys.end());
  size_t limit = FullScale() ? (size_t{1} << 16) : (size_t{1} << 14);

  std::printf("  %-13s %12s %12s %12s\n", "Scheme", "b=1 ns/ch",
              "b=2 ns/ch", "b=32 ns/ch");
  for (Scheme scheme : {Scheme::kSingleChar, Scheme::kDoubleChar,
                        Scheme::kThreeGrams, Scheme::kFourGrams,
                        Scheme::kAlm, Scheme::kAlmImproved}) {
    auto hope = Hope::Build(scheme, sample, limit);
    size_t chars = TotalBytes(keys);
    std::printf("  %-13s", SchemeName(scheme));
    for (size_t batch : {size_t{1}, size_t{2}, size_t{32}}) {
      // Pre-slice the sorted runs so only encoding is timed.
      std::vector<std::vector<std::string>> runs;
      runs.reserve(keys.size() / batch + 1);
      for (size_t i = 0; i < keys.size(); i += batch) {
        size_t n = std::min(batch, keys.size() - i);
        runs.emplace_back(keys.begin() + static_cast<long>(i),
                          keys.begin() + static_cast<long>(i + n));
      }
      Timer t;
      size_t sink = 0;
      for (const auto& run : runs) {
        size_t bits = 0;
        auto enc = hope->EncodeBatch(run, &bits);
        sink += bits;
      }
      double ns = t.Seconds() * 1e9 / static_cast<double>(chars);
      if (sink == size_t(-1)) std::printf("!");
      std::printf(" %12.1f", ns);
      std::fflush(stdout);
    }
    std::printf("%s\n",
                (scheme == Scheme::kAlm || scheme == Scheme::kAlmImproved)
                    ? "   (no batch reuse: unbounded lookahead)"
                    : "");
  }
}

}  // namespace
}  // namespace hope::bench

int main() {
  hope::bench::Run();
  return 0;
}
