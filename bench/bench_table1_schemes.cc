// Table 1: the module configuration of HOPE's six compression schemes,
// augmented with measured summary numbers on the Email dataset so the
// table doubles as a quick smoke check of the whole pipeline.
#include "bench/bench_common.h"

namespace hope::bench {
namespace {

struct Row {
  const char* scheme;
  const char* selector;
  const char* assigner;
  const char* dict;
};

void Run() {
  PrintHeader("Table 1: Module implementations of the six schemes");
  const Row rows[] = {
      {"Single-Char", "Single-Char", "Hu-Tucker", "Array"},
      {"Double-Char", "Double-Char", "Hu-Tucker", "Array"},
      {"ALM", "ALM", "Fixed-Length", "ART-based"},
      {"3-Grams", "3-Grams", "Hu-Tucker", "Bitmap-Trie"},
      {"4-Grams", "4-Grams", "Hu-Tucker", "Bitmap-Trie"},
      {"ALM-Improved", "ALM-Improved", "Hu-Tucker", "ART-based"},
  };

  auto keys = GenerateEmails(NumKeys(), 42);
  auto sample = SampleKeys(keys, 0.01);
  size_t dict_limit = FullScale() ? (size_t{1} << 16) : (size_t{1} << 12);

  std::printf("%-14s %-14s %-13s %-12s %9s %6s %10s %9s\n", "Scheme",
              "SymbolSelect", "CodeAssign", "Dictionary", "Entries", "CPR",
              "ns/char", "Build(s)");
  for (size_t i = 0; i < AllSchemes().size(); i++) {
    Scheme scheme = AllSchemes()[i];
    BuildStats stats;
    auto hope = Hope::Build(scheme, sample, dict_limit, &stats);
    double cpr = MeasureCpr(*hope, keys);
    double ns = MeasureEncodeNsPerChar(*hope, keys);
    std::printf("%-14s %-14s %-13s %-12s %9zu %6.2f %10.1f %9.2f\n",
                rows[i].scheme, rows[i].selector, rows[i].assigner,
                rows[i].dict, stats.num_entries, cpr, ns,
                stats.TotalSeconds());
    Report()
        .Str("scheme", rows[i].scheme)
        .Str("selector", rows[i].selector)
        .Str("assigner", rows[i].assigner)
        .Str("dictionary", rows[i].dict)
        .Num("entries", static_cast<double>(stats.num_entries))
        .Num("cpr", cpr)
        .Num("encode_ns_per_char", ns)
        .Num("build_s", stats.TotalSeconds());
  }
}

}  // namespace
}  // namespace hope::bench

int main(int argc, char** argv) {
  return hope::bench::BenchMain(argc, argv, "table1_schemes",
                                hope::bench::Run);
}
