#!/usr/bin/env bash
# Runs the tracked benchmark set and collects machine-readable results, so
# the perf trajectory accumulates across PRs.
#
#   bench/run_benches.sh [build_dir] [out_dir]     # fig14 + encode_hot + dynamic + serving
#   bench/run_benches.sh --all [build_dir] [out_dir]
#
# Scale knobs pass through the usual env vars (HOPE_BENCH_KEYS,
# HOPE_BENCH_FULL=1).
set -euo pipefail

all=0
if [[ "${1:-}" == "--all" ]]; then
  all=1
  shift
fi
build_dir="${1:-build}"
out_dir="${2:-bench-results}"

if [[ ! -x "$build_dir/bench/bench_fig14_batch_encoding" ]]; then
  echo "error: bench binaries not found under $build_dir/bench" >&2
  echo "build first: cmake -B $build_dir -S . && cmake --build $build_dir -j" >&2
  exit 1
fi
mkdir -p "$out_dir"

run() {
  local bin="$1" out="$2"
  echo "== $bin -> $out"
  "$build_dir/bench/$bin" --json "$out_dir/$out"
}

run bench_fig14_batch_encoding BENCH_fig14.json
run bench_encode_hot BENCH_encode_hot.json
run bench_dynamic_rebuild BENCH_dynamic.json
run bench_serving BENCH_serving.json

if [[ "$all" == 1 ]]; then
  run bench_fig8_microbench BENCH_fig8.json
  run bench_fig9_build_time BENCH_fig9.json
  run bench_fig10_surf_ycsb BENCH_fig10.json
  run bench_fig11_surf_fpr BENCH_fig11.json
  run bench_fig12_point_queries BENCH_fig12.json
  run bench_fig13_sample_sensitivity BENCH_fig13.json
  run bench_fig15_distribution_shift BENCH_fig15.json
  run bench_fig16_range_insert BENCH_fig16.json
  run bench_table1_schemes BENCH_table1.json
  run bench_ablation_assigners BENCH_ablation_assigners.json
  run bench_ablation_dictionaries BENCH_ablation_dictionaries.json
fi

echo "results in $out_dir/"
