// Ablation (§4.2 claim): code-assigner comparison. The paper argues for
// Hu-Tucker over Range Encoding ("requires more bits ... to guarantee
// order-preserving") and over fixed-length codes. This bench builds each
// scheme's intervals once and reports the expected code length under the
// three assigners, plus the resulting whole-corpus compression rate for
// Hu-Tucker vs fixed-length.
#include "bench/bench_common.h"
#include "hope/code_assigner.h"
#include "hope/symbol_selector.h"

namespace hope::bench {
namespace {

void Run() {
  PrintHeader(
      "Ablation: code assigners (Hu-Tucker vs Range Encoding vs "
      "fixed-length)");
  auto keys = GenerateEmails(NumKeys(), 42);
  auto sample = SampleKeys(keys, 0.01);
  size_t limit = FullScale() ? (size_t{1} << 16) : (size_t{1} << 12);

  std::printf("  %-13s %9s | expected code length (bits/lookup)\n", "Scheme",
              "Entries");
  std::printf("  %-13s %9s %11s %11s %11s\n", "", "", "Hu-Tucker",
              "Range", "Fixed-Len");
  struct Named {
    Scheme scheme;
    std::unique_ptr<SymbolSelector> selector;
  };
  std::vector<Named> selectors;
  selectors.push_back({Scheme::kSingleChar, MakeSingleCharSelector()});
  selectors.push_back({Scheme::kDoubleChar, MakeDoubleCharSelector()});
  selectors.push_back({Scheme::kThreeGrams, MakeNGramSelector(3)});
  selectors.push_back({Scheme::kFourGrams, MakeNGramSelector(4)});
  selectors.push_back({Scheme::kAlmImproved, MakeAlmImprovedSelector()});

  for (auto& [scheme, selector] : selectors) {
    auto intervals = selector->Select(sample, limit);
    TestEncodeWeights(sample, &intervals);
    std::vector<double> weights;
    weights.reserve(intervals.size());
    for (auto& spec : intervals) weights.push_back(spec.weight);
    auto hu = AssignHuTuckerCodes(weights);
    auto range = AssignRangeCodes(weights);
    auto fixed = AssignFixedLengthCodes(weights.size());
    double len_hu = ExpectedCodeLength(weights, hu);
    double len_range = ExpectedCodeLength(weights, range);
    double len_fixed = ExpectedCodeLength(weights, fixed);
    std::printf("  %-13s %9zu %11.3f %11.3f %11.3f\n", SchemeName(scheme),
                intervals.size(), len_hu, len_range, len_fixed);
    std::fflush(stdout);
    Report()
        .Str("scheme", SchemeName(scheme))
        .Num("entries", static_cast<double>(intervals.size()))
        .Num("bits_hu_tucker", len_hu)
        .Num("bits_range", len_range)
        .Num("bits_fixed", len_fixed);
  }
  std::printf(
      "\n  Hu-Tucker is optimal among order-preserving prefix codes; Range\n"
      "  Encoding pays ~1-2 extra bits per lookup to sit on cumulative-\n"
      "  probability boundaries; fixed-length codes ignore skew entirely.\n");
}

}  // namespace
}  // namespace hope::bench

int main(int argc, char** argv) {
  return hope::bench::BenchMain(argc, argv, "ablation_assigners",
                                hope::bench::Run);
}
