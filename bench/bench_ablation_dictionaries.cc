// Ablation (§6.1 claims): dictionary data-structure comparison. The paper
// reports the 3-Grams bitmap-trie is ~2.3x faster than binary-searching
// the same entries, and that the bitmap-trie is up to an order of
// magnitude smaller than the ART-based dictionary. This bench measures
// whole-key encode latency and dictionary memory for the same entry set
// under each dictionary implementation, plus the array dictionary for the
// fixed-interval schemes.
#include "bench/bench_common.h"

namespace hope::bench {
namespace {

void Measure(const char* label, Scheme scheme, size_t limit, DictImpl impl,
             const std::vector<std::string>& sample,
             const std::vector<std::string>& keys, double* baseline_ns) {
  auto hope = Hope::Build(scheme, sample, limit, nullptr, impl);
  double ns = MeasureEncodeNsPerChar(*hope, keys);
  double speedup = baseline_ns && *baseline_ns > 0 ? *baseline_ns / ns : 1.0;
  if (baseline_ns && *baseline_ns == 0) *baseline_ns = ns;
  std::printf("  %-13s %-14s %10.1f %10.2fx %12.1f\n", SchemeName(scheme),
              label, ns, speedup,
              static_cast<double>(hope->dict().MemoryBytes()) / 1024.0);
  Report()
      .Str("scheme", SchemeName(scheme))
      .Str("dictionary", label)
      .Num("encode_ns_per_char", ns)
      .Num("speedup", speedup)
      .Num("dict_kb",
           static_cast<double>(hope->dict().MemoryBytes()) / 1024.0);
}

void Run() {
  PrintHeader(
      "Ablation: dictionary structures (binary-search vs bitmap-trie vs "
      "ART vs array)");
  auto keys = GenerateEmails(NumKeys(), 42);
  auto sample = SampleKeys(keys, 0.01);
  size_t limit = FullScale() ? (size_t{1} << 16) : (size_t{1} << 14);

  std::printf("  %-13s %-14s %10s %10s %12s\n", "Scheme", "Dictionary",
              "ns/char", "speedup", "DictKB");
  {
    double base = 0;
    Measure("binary-search", Scheme::kThreeGrams, limit,
            DictImpl::kBinarySearch, sample, keys, &base);
    Measure("bitmap-trie", Scheme::kThreeGrams, limit, DictImpl::kBitmapTrie,
            sample, keys, &base);
    Measure("art", Scheme::kThreeGrams, limit, DictImpl::kArt, sample, keys,
            &base);
  }
  {
    double base = 0;
    Measure("binary-search", Scheme::kFourGrams, limit,
            DictImpl::kBinarySearch, sample, keys, &base);
    Measure("bitmap-trie", Scheme::kFourGrams, limit, DictImpl::kBitmapTrie,
            sample, keys, &base);
  }
  {
    double base = 0;
    Measure("binary-search", Scheme::kDoubleChar, 0, DictImpl::kBinarySearch,
            sample, keys, &base);
    Measure("array", Scheme::kDoubleChar, 0, DictImpl::kArray, sample, keys,
            &base);
  }
  {
    double base = 0;
    Measure("binary-search", Scheme::kAlmImproved, limit,
            DictImpl::kBinarySearch, sample, keys, &base);
    Measure("art", Scheme::kAlmImproved, limit, DictImpl::kArt, sample, keys,
            &base);
  }
}

}  // namespace
}  // namespace hope::bench

int main(int argc, char** argv) {
  return hope::bench::BenchMain(argc, argv, "ablation_dictionaries",
                                hope::bench::Run);
}
