// google-benchmark microbenchmarks for the hot code paths: per-scheme
// encoding, dictionary lookups, Hu-Tucker construction, and search-tree
// point operations. Complements the per-figure harnesses with
// statistically robust single-operation timings.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <random>

#include "art/art.h"
#include "btree/btree.h"
#include "datasets/datasets.h"
#include "hope/hope.h"
#include "hope/hu_tucker.h"
#include "hot/hot.h"
#include "prefix_btree/prefix_btree.h"
#include "surf/surf.h"

namespace hope {
namespace {

const std::vector<std::string>& EmailKeys() {
  static const auto* keys = new std::vector<std::string>(
      GenerateEmails(50000, 42));
  return *keys;
}

const Hope& SchemeEncoder(Scheme scheme) {
  static auto* cache = new std::map<Scheme, std::unique_ptr<Hope>>();
  auto it = cache->find(scheme);
  if (it == cache->end()) {
    it = cache->emplace(scheme, Hope::Build(scheme,
                                            SampleKeys(EmailKeys(), 0.02),
                                            size_t{1} << 13))
             .first;
  }
  return *it->second;
}

void BM_Encode(benchmark::State& state) {
  Scheme scheme = static_cast<Scheme>(state.range(0));
  const Hope& hope = SchemeEncoder(scheme);
  const auto& keys = EmailKeys();
  size_t i = 0, chars = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hope.Encode(keys[i]));
    chars += keys[i].size();
    i = (i + 1) % keys.size();
  }
  state.SetLabel(SchemeName(scheme));
  state.counters["ns_per_char"] = benchmark::Counter(
      static_cast<double>(chars), benchmark::Counter::kIsRate |
                                      benchmark::Counter::kInvert);
}
BENCHMARK(BM_Encode)->DenseRange(0, 5)->Unit(benchmark::kNanosecond);

void BM_DictLookup(benchmark::State& state) {
  const Hope& hope = SchemeEncoder(Scheme::kThreeGrams);
  const auto& keys = EmailKeys();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hope.dict().Lookup(keys[i]));
    i = (i + 1) % keys.size();
  }
}
BENCHMARK(BM_DictLookup);

void BM_HuTucker(benchmark::State& state) {
  std::mt19937_64 rng(7);
  std::vector<double> weights(static_cast<size_t>(state.range(0)));
  for (auto& w : weights)
    w = std::uniform_real_distribution<double>(0, 1)(rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(HuTuckerCodes(weights));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HuTucker)->RangeMultiplier(4)->Range(256, 1 << 14)->Complexity();

template <typename Tree>
void BM_TreeLookup(benchmark::State& state) {
  Tree tree;
  const auto& keys = EmailKeys();
  for (size_t i = 0; i < keys.size(); i++) tree.Insert(keys[i], i);
  size_t i = 0;
  uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Lookup(keys[i], &v));
    i = (i + 1) % keys.size();
  }
}
BENCHMARK(BM_TreeLookup<Art>)->Name("BM_ArtLookup");
BENCHMARK(BM_TreeLookup<Hot>)->Name("BM_HotLookup");
BENCHMARK(BM_TreeLookup<BTree>)->Name("BM_BTreeLookup");
BENCHMARK(BM_TreeLookup<PrefixBTree>)->Name("BM_PrefixBTreeLookup");

void BM_SurfMayContain(benchmark::State& state) {
  auto sorted = EmailKeys();
  std::sort(sorted.begin(), sorted.end());
  Surf surf(sorted, SurfSuffix::kReal8);
  const auto& keys = EmailKeys();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(surf.MayContain(keys[i]));
    i = (i + 1) % keys.size();
  }
}
BENCHMARK(BM_SurfMayContain);

}  // namespace
}  // namespace hope

BENCHMARK_MAIN();
