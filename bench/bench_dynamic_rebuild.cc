// Dynamic dictionary manager under distribution drift: a static
// dictionary (built once from a phase-0 sample, the paper's protocol)
// versus a managed one (stats collector + compression-drop policy +
// background rebuilder + versioned hot-swap) on the same drifting key
// stream. The drift model is fig-15's Email provider split made gradual:
// phase 0 is pure Email-A (gmail + yahoo), the last phase pure Email-B.
//
// The managed dictionary's compression rate recovers after each rebuild
// while the static one keeps degrading — the JSON rows (--json) record
// both per phase, plus the swap count.
#include <chrono>
#include <thread>

#include "bench/bench_common.h"
#include "btree/btree.h"
#include "dynamic/background_rebuilder.h"
#include "dynamic/dictionary_manager.h"
#include "dynamic/versioned_index.h"
#include "workload/drift.h"

namespace hope::bench {
namespace {

using dynamic::BackgroundRebuilder;
using dynamic::DictionaryManager;
using dynamic::MakeCompressionDropPolicy;
using dynamic::VersionedIndex;

void Run() {
  PrintHeader("Dynamic rebuild: static vs managed dictionary under drift");

  DriftOptions dopt;
  dopt.num_phases = 5;
  dopt.keys_per_phase = std::max<size_t>(NumKeys() / dopt.num_phases, 1000);
  dopt.seed = 42;
  DriftingWorkload drift(dopt);

  const Scheme scheme = Scheme::kDoubleChar;
  const size_t limit = size_t{1} << 14;
  auto phase0 = drift.Phase(0);
  auto sample = SampleKeys(phase0, 0.02);

  // Static: the paper's build-once protocol.
  auto static_dict = Hope::Build(scheme, sample, limit);

  // Managed: the same initial dictionary (cloned, not rebuilt), plus the
  // full dynamic stack.
  DictionaryManager::Options mopt;
  mopt.scheme = scheme;
  mopt.dict_size_limit = limit;
  mopt.stats.reservoir_size = 4096;
  mopt.stats.sample_every = 4;
  mopt.stats.ewma_alpha = 0.002;
  DictionaryManager mgr(static_dict->Clone(), mopt,
                        MakeCompressionDropPolicy(0.02, 1024), phase0);
  BackgroundRebuilder::Options ropt;
  ropt.poll_interval = std::chrono::milliseconds(10);
  BackgroundRebuilder rebuilder(&mgr, ropt);

  // A live index rides along: its lookups must stay correct across every
  // swap the rebuilder performs.
  VersionedIndex<BTree> index(&mgr);
  size_t index_checked = 0, index_wrong = 0;

  std::printf("  %zu phases x %zu keys, scheme %s, drop policy 2%%\n\n",
              drift.num_phases(), dopt.keys_per_phase, SchemeName(scheme));
  std::printf("  %-6s %7s %12s %12s %8s %9s\n", "Phase", "B-mix", "StaticCPR",
              "ManagedCPR", "Epoch", "Rebuilds");

  for (size_t p = 0; p < drift.num_phases(); p++) {
    auto keys = drift.Phase(p);

    // Serve the phase through the managed encoder (feeding the collector)
    // and keep the index current.
    for (size_t i = 0; i < keys.size(); i++) {
      mgr.Encode(keys[i]);
      if (i % 16 == 0) index.Insert(keys[i], i);
    }
    // Give the background worker a bounded window to react like it would
    // in a long-running server (the policy decides whether to act).
    for (int spin = 0; spin < 200 && mgr.ShouldRebuild(); spin++) {
      rebuilder.Nudge();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    // Spot-check index correctness under the current epoch.
    for (size_t i = 0; i < keys.size(); i += 64) {
      uint64_t v = 0;
      index_checked++;
      if (!index.Lookup(keys[i], &v)) index_wrong++;
    }

    double static_cpr = MeasureCpr(*static_dict, keys);
    // Measure through an observer-free clone of the live version: probing
    // the managed encoder directly would feed the collector and let the
    // measurement itself trigger rebuilds.
    auto managed_clone = mgr.Acquire().hope->Clone();
    double managed_cpr = MeasureCpr(*managed_clone, keys);
    std::printf("  %-6zu %6.0f%% %12.3f %12.3f %8llu %9llu\n", p,
                100 * drift.MixFraction(p), static_cpr, managed_cpr,
                static_cast<unsigned long long>(mgr.epoch()),
                static_cast<unsigned long long>(mgr.rebuilds_published()));
    std::fflush(stdout);
    Report()
        .Str("series", "phase")
        .Num("phase", static_cast<double>(p))
        .Num("mix_fraction_b", drift.MixFraction(p))
        .Num("static_cpr", static_cpr)
        .Num("managed_cpr", managed_cpr)
        .Num("epoch", static_cast<double>(mgr.epoch()))
        .Num("rebuilds", static_cast<double>(mgr.rebuilds_published()));
  }
  rebuilder.Stop();

  // Post-drift summary on the final distribution: the acceptance signal
  // is managed > static here.
  auto final_keys = drift.Phase(drift.num_phases() - 1);
  double static_final = MeasureCpr(*static_dict, final_keys);
  auto final_clone = mgr.Acquire().hope->Clone();
  double managed_final = MeasureCpr(*final_clone, final_keys);
  size_t migrated = index.MigrateAll();
  std::printf("\n  final distribution: static %.3fx vs managed %.3fx "
              "(%+.1f%%), %llu swaps\n",
              static_final, managed_final,
              100.0 * (managed_final / static_final - 1.0),
              static_cast<unsigned long long>(mgr.rebuilds_published()));
  std::printf("  index: %zu/%zu spot lookups correct across swaps, "
              "%zu entries migrated on drain\n",
              index_checked - index_wrong, index_checked, migrated);
  Report()
      .Str("series", "summary")
      .Num("static_cpr_final", static_final)
      .Num("managed_cpr_final", managed_final)
      .Num("managed_gain_percent",
           100.0 * (managed_final / static_final - 1.0))
      .Num("rebuilds", static_cast<double>(mgr.rebuilds_published()))
      .Num("rebuilds_rejected", static_cast<double>(mgr.rebuilds_rejected()))
      .Num("index_lookups_checked", static_cast<double>(index_checked))
      .Num("index_lookups_wrong", static_cast<double>(index_wrong))
      .Num("index_migrated", static_cast<double>(migrated));
}

}  // namespace
}  // namespace hope::bench

int main(int argc, char** argv) {
  return hope::bench::BenchMain(argc, argv, "dynamic_rebuild",
                                hope::bench::Run);
}
