// Dynamic dictionary manager under distribution drift, three
// experiments:
//
// 1. Global drift (the fig-15 Email provider split made gradual): a
//    static dictionary (built once from a phase-0 sample, the paper's
//    protocol) versus a managed one (stats collector + compression-drop
//    policy + background rebuilder + versioned hot-swap) on the same
//    drifting key stream. Series "phase"/"summary" in the JSON.
//
// 2. Localized drift (URL corpus, kUrlStyle model): only one shard's key
//    range blends toward query-style URLs while the rest of the keyspace
//    stays stable. A ShardedDictionaryManager (per-range dictionaries,
//    independent epochs, one shared BackgroundRebuilder) is compared
//    against a single global managed dictionary on the same stream. The
//    sharded manager should rebuild only the drifted shard — the other
//    shards' epochs stay at 0 — while matching or beating the global
//    manager's final compression. Series "localized_phase"/
//    "localized_summary" in the JSON.
//
// 3. Hotspot migration (URL corpus, kHotspotMigrate model): traffic
//    walks from the lower half of the key space to the upper half. A
//    fixed-boundary sharded manager ends with every request on its last
//    shard; the re-balancing manager (weight-imbalance policy, versioned
//    router, reservoir-derived boundaries) re-derives the boundaries
//    online and spreads the hot range back across all shards, while a
//    ShardedVersionedIndex follows the RebalancePlans and must keep
//    lookups and cross-shard scans correct across every migration.
//    Series "rebalance_phase"/"rebalance_summary" in the JSON.
#include <chrono>
#include <map>
#include <thread>

#include "bench/bench_common.h"
#include "btree/btree.h"
#include "dynamic/background_rebuilder.h"
#include "dynamic/dictionary_manager.h"
#include "dynamic/sharded_index.h"
#include "dynamic/sharded_manager.h"
#include "dynamic/versioned_index.h"
#include "workload/drift.h"
#include "workload/localized_drift.h"

namespace hope::bench {
namespace {

using dynamic::BackgroundRebuilder;
using dynamic::DictionaryManager;
using dynamic::MakeCompressionDropPolicy;
using dynamic::ShardedDictionaryManager;
using dynamic::ShardedVersionedIndex;
using dynamic::VersionedIndex;

DictionaryManager::Options ManagerOptions(Scheme scheme, size_t limit) {
  DictionaryManager::Options mopt;
  mopt.scheme = scheme;
  mopt.dict_size_limit = limit;
  mopt.stats.reservoir_size = 4096;
  mopt.stats.sample_every = 4;
  mopt.stats.ewma_alpha = 0.002;
  return mopt;
}

void RunGlobalDrift() {
  PrintHeader("Dynamic rebuild: static vs managed dictionary under drift");

  DriftOptions dopt;
  dopt.num_phases = 5;
  dopt.keys_per_phase = std::max<size_t>(NumKeys() / dopt.num_phases, 1000);
  dopt.seed = 42;
  DriftingWorkload drift(dopt);

  const Scheme scheme = Scheme::kDoubleChar;
  const size_t limit = size_t{1} << 14;
  auto phase0 = drift.Phase(0);
  auto sample = SampleKeys(phase0, 0.02);

  // Static: the paper's build-once protocol.
  auto static_dict = Hope::Build(scheme, sample, limit);

  // Managed: the same initial dictionary (cloned, not rebuilt), plus the
  // full dynamic stack.
  DictionaryManager mgr(static_dict->Clone(), ManagerOptions(scheme, limit),
                        MakeCompressionDropPolicy(0.02, 1024), phase0);
  BackgroundRebuilder::Options ropt;
  ropt.poll_interval = std::chrono::milliseconds(10);
  BackgroundRebuilder rebuilder(&mgr, ropt);

  // A live index rides along: its lookups must stay correct across every
  // swap the rebuilder performs.
  VersionedIndex<BTree> index(&mgr);
  size_t index_checked = 0, index_wrong = 0;

  std::printf("  %zu phases x %zu keys, scheme %s, drop policy 2%%\n\n",
              drift.num_phases(), dopt.keys_per_phase, SchemeName(scheme));
  std::printf("  %-6s %7s %12s %12s %8s %9s\n", "Phase", "B-mix", "StaticCPR",
              "ManagedCPR", "Epoch", "Rebuilds");

  for (size_t p = 0; p < drift.num_phases(); p++) {
    auto keys = drift.Phase(p);

    // Serve the phase through the managed encoder (feeding the collector)
    // and keep the index current.
    for (size_t i = 0; i < keys.size(); i++) {
      mgr.Encode(keys[i]);
      if (i % 16 == 0) index.Insert(keys[i], i);
    }
    // Give the background worker a bounded window to react like it would
    // in a long-running server (the policy decides whether to act).
    for (int spin = 0; spin < 200 && mgr.ShouldRebuild(); spin++) {
      rebuilder.Nudge();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    // Spot-check index correctness under the current epoch.
    for (size_t i = 0; i < keys.size(); i += 64) {
      uint64_t v = 0;
      index_checked++;
      if (!index.Lookup(keys[i], &v)) index_wrong++;
    }

    double static_cpr = MeasureCpr(*static_dict, keys);
    // Measure through an observer-free clone of the live version: probing
    // the managed encoder directly would feed the collector and let the
    // measurement itself trigger rebuilds.
    auto managed_clone = mgr.Acquire().hope->Clone();
    double managed_cpr = MeasureCpr(*managed_clone, keys);
    std::printf("  %-6zu %6.0f%% %12.3f %12.3f %8llu %9llu\n", p,
                100 * drift.MixFraction(p), static_cpr, managed_cpr,
                static_cast<unsigned long long>(mgr.epoch()),
                static_cast<unsigned long long>(mgr.rebuilds_published()));
    std::fflush(stdout);
    Report()
        .Str("series", "phase")
        .Num("phase", static_cast<double>(p))
        .Num("mix_fraction_b", drift.MixFraction(p))
        .Num("static_cpr", static_cpr)
        .Num("managed_cpr", managed_cpr)
        .Num("epoch", static_cast<double>(mgr.epoch()))
        .Num("rebuilds", static_cast<double>(mgr.rebuilds_published()));
  }
  rebuilder.Stop();

  // Post-drift summary on the final distribution: the acceptance signal
  // is managed > static here.
  auto final_keys = drift.Phase(drift.num_phases() - 1);
  double static_final = MeasureCpr(*static_dict, final_keys);
  auto final_clone = mgr.Acquire().hope->Clone();
  double managed_final = MeasureCpr(*final_clone, final_keys);
  size_t migrated = index.MigrateAll();
  std::printf("\n  final distribution: static %.3fx vs managed %.3fx "
              "(%+.1f%%), %llu swaps\n",
              static_final, managed_final,
              100.0 * (managed_final / static_final - 1.0),
              static_cast<unsigned long long>(mgr.rebuilds_published()));
  std::printf("  index: %zu/%zu spot lookups correct across swaps, "
              "%zu entries migrated on drain\n",
              index_checked - index_wrong, index_checked, migrated);
  Report()
      .Str("series", "summary")
      .Num("static_cpr_final", static_final)
      .Num("managed_cpr_final", managed_final)
      .Num("managed_gain_percent",
           100.0 * (managed_final / static_final - 1.0))
      .Num("rebuilds", static_cast<double>(mgr.rebuilds_published()))
      .Num("rebuilds_rejected", static_cast<double>(mgr.rebuilds_rejected()))
      .Num("index_lookups_checked", static_cast<double>(index_checked))
      .Num("index_lookups_wrong", static_cast<double>(index_wrong))
      .Num("index_migrated", static_cast<double>(migrated));
}

void RunLocalizedDrift() {
  PrintHeader("Localized drift: sharded vs global managed dictionary");

  // URL corpus with the kUrlStyle model: part A (path-style) and part B
  // (query-style) both span the whole host-ordered key range, so drift
  // can be confined to one shard's range.
  DriftOptions dopt;
  dopt.model = DriftModel::kUrlStyle;
  dopt.num_phases = 5;
  dopt.keys_per_phase = std::max<size_t>(NumKeys() / dopt.num_phases, 1000);
  dopt.seed = 1234;
  DriftingWorkload drift(dopt);

  const Scheme scheme = Scheme::kDoubleChar;
  const size_t limit = size_t{1} << 14;
  const size_t num_shards = 4;
  auto phase0 = drift.Phase(0);
  // A denser sample than the global experiment's 2%: it is split N ways,
  // and each shard's baseline CPR is measured on its own partition.
  auto sample = SampleKeys(phase0, 0.05);

  // Per-shard traffic is 1/N of the stream, so shards sample denser and
  // average faster than the global experiment; the 1% publish gain gate
  // keeps a stable shard's no-better-than-live candidates from bumping
  // epochs on baseline noise (they are rejected, not published).
  auto manager_options = [&] {
    DictionaryManager::Options mopt = ManagerOptions(scheme, limit);
    mopt.stats.sample_every = 2;
    mopt.stats.ewma_alpha = 0.005;
    mopt.min_cpr_gain = 0.01;
    return mopt;
  };
  auto policy = [] { return MakeCompressionDropPolicy(0.03, 256); };

  ShardedDictionaryManager::Options sopt;
  sopt.num_shards = num_shards;
  sopt.shard = manager_options();
  ShardedDictionaryManager sharded(sample, sopt, policy);

  DictionaryManager global(Hope::Build(scheme, sample, limit),
                           manager_options(), policy(), phase0);

  // One shared worker loop polls all shards; the global manager gets its
  // own so the comparison stays apples-to-apples.
  BackgroundRebuilder::Options ropt;
  ropt.poll_interval = std::chrono::milliseconds(10);
  BackgroundRebuilder sharded_rebuilder(&sharded, ropt);
  BackgroundRebuilder global_rebuilder(&global, ropt);

  // Confine the drift to the shard owning the most part-B weight.
  LocalizedDrift localized_drift(drift, sharded);
  const size_t victim = localized_drift.victim();
  if (localized_drift.degenerate())
    std::printf("  note: corpus too small for a drifting shard; "
                "stream stays stable\n");

  ShardedVersionedIndex<BTree> index(&sharded);
  size_t index_checked = 0, index_wrong = 0;

  auto phase_stream = [&](size_t phase) {
    return localized_drift.PhaseStream(phase, dopt.keys_per_phase, dopt.seed);
  };

  std::printf("  %zu phases x %zu keys, %zu shards, victim shard %zu, "
              "scheme %s, drop policy 3%% + 1%% gain gate\n\n",
              drift.num_phases(), dopt.keys_per_phase, sharded.num_shards(),
              victim, SchemeName(scheme));
  std::printf("  %-6s %7s %12s %12s %8s %12s\n", "Phase", "B-mix",
              "GlobalCPR", "ShardedCPR", "G-epoch", "ShardEpochs");

  for (size_t p = 0; p < drift.num_phases(); p++) {
    auto keys = phase_stream(p);
    for (size_t i = 0; i < keys.size(); i++) {
      global.Encode(keys[i]);
      sharded.Encode(keys[i]);
      if (i % 16 == 0) index.Insert(keys[i], i);
    }
    for (int spin = 0;
         spin < 200 && (global.ShouldRebuild() || sharded.ShouldRebuild());
         spin++) {
      global_rebuilder.Nudge();
      sharded_rebuilder.Nudge();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    for (size_t i = 0; i < keys.size(); i += 64) {
      uint64_t v = 0;
      index_checked++;
      if (!index.Lookup(keys[i], &v)) index_wrong++;
    }

    auto global_clone = global.Acquire().hope->Clone();
    double global_cpr = MeasureCpr(*global_clone, keys);
    double sharded_cpr = MeasureShardedCpr(sharded, keys);
    auto epochs = sharded.Epochs();
    std::printf("  %-6zu %6.0f%% %12.3f %12.3f %8llu %12s\n", p,
                100 * drift.MixFraction(p), global_cpr, sharded_cpr,
                static_cast<unsigned long long>(global.epoch()),
                EpochsString(epochs).c_str());
    std::fflush(stdout);
    Report()
        .Str("series", "localized_phase")
        .Num("phase", static_cast<double>(p))
        .Num("mix_fraction_b", drift.MixFraction(p))
        .Num("global_cpr", global_cpr)
        .Num("sharded_cpr", sharded_cpr)
        .Num("global_epoch", static_cast<double>(global.epoch()))
        .Num("victim_epoch", static_cast<double>(epochs[victim]))
        .Str("shard_epochs", EpochsString(epochs));
  }
  sharded_rebuilder.Stop();
  global_rebuilder.Stop();

  auto final_keys = phase_stream(drift.num_phases() - 1);
  auto global_clone = global.Acquire().hope->Clone();
  double global_final = MeasureCpr(*global_clone, final_keys);
  double sharded_final = MeasureShardedCpr(sharded, final_keys);
  auto epochs = sharded.Epochs();
  uint64_t max_other_epoch = 0;
  for (size_t s = 0; s < epochs.size(); s++)
    if (s != victim) max_other_epoch = std::max(max_other_epoch, epochs[s]);
  bool localized = epochs[victim] > 0 && max_other_epoch == 0;
  size_t migrated = index.MigrateAll();

  std::printf("\n  final: global %.3fx vs sharded %.3fx (%+.1f%%); "
              "victim epoch %llu, other shards' max epoch %llu -> %s\n",
              global_final, sharded_final,
              100.0 * (sharded_final / global_final - 1.0),
              static_cast<unsigned long long>(epochs[victim]),
              static_cast<unsigned long long>(max_other_epoch),
              localized ? "rebuilds localized" : "NOT localized");
  std::printf("  index: %zu/%zu spot lookups correct across swaps, "
              "%zu entries migrated on drain\n",
              index_checked - index_wrong, index_checked, migrated);
  Report()
      .Str("series", "localized_summary")
      .Num("num_shards", static_cast<double>(sharded.num_shards()))
      .Num("victim_shard", static_cast<double>(victim))
      .Num("global_cpr_final", global_final)
      .Num("sharded_cpr_final", sharded_final)
      .Num("sharded_gain_percent",
           100.0 * (sharded_final / global_final - 1.0))
      .Num("victim_epoch", static_cast<double>(epochs[victim]))
      .Num("max_other_epoch", static_cast<double>(max_other_epoch))
      .Num("rebuilds_localized", localized ? 1 : 0)
      .Num("global_rebuilds", static_cast<double>(global.rebuilds_published()))
      .Num("sharded_rebuilds",
           static_cast<double>(sharded.rebuilds_published()))
      .Str("shard_epochs", EpochsString(epochs))
      .Num("index_lookups_checked", static_cast<double>(index_checked))
      .Num("index_lookups_wrong", static_cast<double>(index_wrong))
      .Num("index_migrated", static_cast<double>(migrated));
}

void RunRebalance() {
  PrintHeader("Hotspot migration: re-balancing vs fixed-boundary shards");

  DriftOptions dopt;
  dopt.model = DriftModel::kHotspotMigrate;
  dopt.num_phases = 5;
  dopt.keys_per_phase = std::max<size_t>(NumKeys() / dopt.num_phases, 1000);
  dopt.seed = 99;
  DriftingWorkload drift(dopt);

  const Scheme scheme = Scheme::kDoubleChar;
  const size_t limit = size_t{1} << 14;
  const size_t num_shards = 4;
  const double kImbalanceThreshold = 1.5;
  auto phase0 = drift.Phase(0);
  auto sample = SampleKeys(phase0, 0.05);

  // Identical shard options for both managers; the recency-biased
  // reservoir (half-life in sampled keys) keeps the rebuild/rebalance
  // corpus tracking the migrating hotspot.
  auto shard_options = [&] {
    DictionaryManager::Options mopt = ManagerOptions(scheme, limit);
    mopt.stats.sample_every = 2;
    mopt.stats.ewma_alpha = 0.005;
    mopt.stats.reservoir_halflife = 512;
    mopt.min_cpr_gain = 0.01;
    return mopt;
  };
  auto policy = [] { return MakeCompressionDropPolicy(0.03, 256); };

  ShardedDictionaryManager::Options sopt;
  sopt.num_shards = num_shards;
  sopt.shard = shard_options();
  // Fold traffic observations in fast: the phase structure gives the
  // EWMA only a handful of polls per phase to see a shifted mix.
  sopt.traffic_ewma_alpha = 0.6;

  ShardedDictionaryManager fixed(sample, sopt, policy);
  ShardedDictionaryManager rebal(
      sample, sopt, policy,
      dynamic::MakeWeightImbalancePolicy(kImbalanceThreshold,
                                         /*min_keys=*/2000,
                                         /*cooldown_seconds=*/0.5,
                                         /*consecutive_polls=*/2));

  BackgroundRebuilder::Options ropt;
  ropt.poll_interval = std::chrono::milliseconds(10);
  BackgroundRebuilder fixed_rebuilder(&fixed, ropt);
  BackgroundRebuilder rebal_rebuilder(&rebal, ropt);

  // The index rides the re-balancing manager: its entries must follow
  // every RebalancePlan, and lookups + cross-shard scans must stay
  // correct across the migrations. `model` is the ground truth.
  ShardedVersionedIndex<BTree> index(&rebal);
  std::map<std::string, uint64_t> model;
  size_t lookups_checked = 0, lookups_wrong = 0;
  size_t scans_checked = 0, scans_wrong = 0;

  auto check_scan = [&](const std::string& start, size_t count) {
    std::vector<uint64_t> got;
    index.Scan(start, count, &got);
    std::vector<uint64_t> want;
    for (auto it = model.lower_bound(start);
         it != model.end() && want.size() < count; ++it)
      want.push_back(it->second);
    scans_checked++;
    if (got != want) scans_wrong++;
  };

  std::printf("  %zu phases x %zu keys, %zu shards, scheme %s, imbalance "
              "policy %.1fx\n\n",
              drift.num_phases(), dopt.keys_per_phase, num_shards,
              SchemeName(scheme), kImbalanceThreshold);
  std::printf("  %-6s %7s %10s %10s %9s %9s %7s %12s\n", "Phase", "B-mix",
              "FixedCPR", "RebalCPR", "F-spread", "R-spread", "RtrVer",
              "ShardEpochs");

  for (size_t p = 0; p < drift.num_phases(); p++) {
    auto keys = drift.Phase(p);
    for (size_t i = 0; i < keys.size(); i++) {
      fixed.Encode(keys[i]);
      rebal.Encode(keys[i]);
      if (i % 16 == 0) {
        index.Insert(keys[i], i);
        model[keys[i]] = i;
      }
    }
    // Bounded reaction window: rebuilds drain on demand, and a fixed tail
    // of polls lets the traffic-weight EWMA and the rebalance hysteresis
    // observe the phase (ShouldRebuild covers only the rebuild half).
    for (int spin = 0;
         spin < 200 && (fixed.ShouldRebuild() || rebal.ShouldRebuild());
         spin++) {
      fixed_rebuilder.Nudge();
      rebal_rebuilder.Nudge();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    for (int spin = 0; spin < 30; spin++) {
      fixed_rebuilder.Nudge();
      rebal_rebuilder.Nudge();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    for (size_t i = 0; i < keys.size(); i += 64) {
      if (i % (16 * 64) != 0) continue;  // only keys the index holds
      uint64_t v = 0;
      lookups_checked++;
      auto it = model.find(keys[i]);
      bool found = index.Lookup(keys[i], &v);
      if (!found || it == model.end() || v != it->second) lookups_wrong++;
    }
    check_scan("", 128);
    if (!model.empty()) {
      auto mid = model.begin();
      std::advance(mid, static_cast<long>(model.size() / 2));
      check_scan(mid->first, 64);
    }

    double fixed_cpr = MeasureShardedCpr(fixed, keys);
    double rebal_cpr = MeasureShardedCpr(rebal, keys);
    double fixed_spread = StreamSpread(fixed, keys);
    double rebal_spread = StreamSpread(rebal, keys);
    std::printf("  %-6zu %6.0f%% %10.3f %10.3f %9.2f %9.2f %7llu %12s\n", p,
                100 * drift.MixFraction(p), fixed_cpr, rebal_cpr,
                fixed_spread, rebal_spread,
                static_cast<unsigned long long>(rebal.router_version()),
                EpochsString(rebal.Epochs()).c_str());
    std::fflush(stdout);
    Report()
        .Str("series", "rebalance_phase")
        .Num("phase", static_cast<double>(p))
        .Num("mix_fraction_b", drift.MixFraction(p))
        .Num("fixed_cpr", fixed_cpr)
        .Num("rebal_cpr", rebal_cpr)
        .Num("fixed_spread", fixed_spread)
        .Num("rebal_spread", rebal_spread)
        .Num("router_version", static_cast<double>(rebal.router_version()))
        .Str("rebal_shard_epochs", EpochsString(rebal.Epochs()));
  }
  // Settle passes: the hotspot stops moving (the blend saturates at pure
  // B past the last phase), so the re-deriving router gets to converge —
  // the steady state a live system would reach once a migration ends.
  // The rebalance poll is driven synchronously here: convergence is the
  // acceptance signal and must not hinge on how often a loaded machine
  // schedules the background worker.
  auto final_keys = drift.Phase(drift.num_phases());
  for (int round = 0; round < 6; round++) {
    if (StreamSpread(rebal, final_keys) <= kImbalanceThreshold) break;
    for (const auto& k : final_keys) {
      fixed.Encode(k);
      rebal.Encode(k);
    }
    fixed.RebuildPending();
    rebal.RebuildPending();
    // Past the policy's cooldown, then enough polls to clear hysteresis.
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    for (int poll = 0; poll < 3; poll++) rebal.PollRebalance();
  }
  fixed_rebuilder.Stop();
  rebal_rebuilder.Stop();

  double fixed_final = MeasureShardedCpr(fixed, final_keys);
  double rebal_final = MeasureShardedCpr(rebal, final_keys);
  double fixed_spread = StreamSpread(fixed, final_keys);
  double rebal_spread = StreamSpread(rebal, final_keys);
  index.MigrateAll();  // drain generations so a final full check is flat
  size_t migrated = index.entries_rebalanced();
  bool balanced = rebal_spread <= kImbalanceThreshold;

  std::printf("\n  final: fixed %.3fx spread %.2f vs re-balanced %.3fx "
              "spread %.2f (%+.1f%% CPR), router version %llu -> %s\n",
              fixed_final, fixed_spread, rebal_final, rebal_spread,
              100.0 * (rebal_final / fixed_final - 1.0),
              static_cast<unsigned long long>(rebal.router_version()),
              balanced ? "traffic re-balanced" : "NOT re-balanced");
  std::printf("  index: %zu/%zu lookups and %zu/%zu scans correct across "
              "%llu migrations (%zu entries moved between shards)\n",
              lookups_checked - lookups_wrong, lookups_checked,
              scans_checked - scans_wrong, scans_checked,
              static_cast<unsigned long long>(rebal.rebalances_published()),
              migrated);
  Report()
      .Str("series", "rebalance_summary")
      .Num("num_shards", static_cast<double>(num_shards))
      .Num("imbalance_threshold", kImbalanceThreshold)
      .Num("fixed_cpr_final", fixed_final)
      .Num("rebal_cpr_final", rebal_final)
      .Num("rebal_gain_percent", 100.0 * (rebal_final / fixed_final - 1.0))
      .Num("fixed_spread_final", fixed_spread)
      .Num("rebal_spread_final", rebal_spread)
      .Num("router_version", static_cast<double>(rebal.router_version()))
      .Num("rebalances", static_cast<double>(rebal.rebalances_published()))
      .Num("rebalances_noop", static_cast<double>(rebal.rebalances_noop()))
      .Num("spread_under_threshold", balanced ? 1 : 0)
      .Num("fixed_rebuilds", static_cast<double>(fixed.rebuilds_published()))
      .Num("rebal_rebuilds", static_cast<double>(rebal.rebuilds_published()))
      .Num("index_lookups_checked", static_cast<double>(lookups_checked))
      .Num("index_lookups_wrong", static_cast<double>(lookups_wrong))
      .Num("index_scans_checked", static_cast<double>(scans_checked))
      .Num("index_scans_wrong", static_cast<double>(scans_wrong))
      .Num("index_migrated", static_cast<double>(migrated));
}

void Run() {
  RunGlobalDrift();
  RunLocalizedDrift();
  RunRebalance();
}

}  // namespace
}  // namespace hope::bench

int main(int argc, char** argv) {
  return hope::bench::BenchMain(argc, argv, "dynamic_rebuild",
                                hope::bench::Run);
}
