// Shared infrastructure for the per-figure benchmark binaries.
//
// Every bench prints the same rows/series as the corresponding paper
// table or figure, and every bench binary accepts `--json <path>` to
// additionally emit its rows as machine-readable JSON (see JsonReport;
// bench/run_benches.sh collects the files the perf trajectory tracks).
// Defaults are laptop-sized; environment variables scale the runs up:
//   HOPE_BENCH_KEYS   keys per dataset   (default 200000)
//   HOPE_BENCH_FULL=1 paper-sized dictionary sweeps (2^16/2^18 entries)
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/parse.h"
#include "datasets/datasets.h"
#include "hope/hope.h"
#include "workload/workload.h"

namespace hope::bench {

inline size_t NumKeys() {
  // Parsed (and any warning printed) once: a 0-key bench reports
  // garbage, so anything but a plain positive integer falls back to the
  // default, loudly (the digits-only contract lives in common/parse.h).
  static const size_t cached = [] {
    constexpr size_t kDefault = 200000;
    const char* env = std::getenv("HOPE_BENCH_KEYS");
    if (!env) return kDefault;
    unsigned long long v = 0;
    if (!ParsePositiveUint(env, ~0ull, &v)) {
      std::fprintf(stderr,
                   "warning: HOPE_BENCH_KEYS=\"%s\" is not a positive "
                   "integer; using default %zu\n",
                   env, kDefault);
      return kDefault;
    }
    return static_cast<size_t>(v);
  }();
  return cached;
}

inline bool FullScale() {
  const char* env = std::getenv("HOPE_BENCH_FULL");
  return env && env[0] == '1';
}

inline const std::vector<DatasetId>& AllDatasets() {
  static const std::vector<DatasetId> kAll{DatasetId::kEmail, DatasetId::kWiki,
                                           DatasetId::kUrl};
  return kAll;
}

/// The six schemes in the paper's presentation order.
inline const std::vector<Scheme>& AllSchemes() {
  static const std::vector<Scheme> kAll{
      Scheme::kSingleChar, Scheme::kDoubleChar, Scheme::kAlm,
      Scheme::kThreeGrams, Scheme::kFourGrams,  Scheme::kAlmImproved};
  return kAll;
}

/// The seven search-tree configurations of §7 (uncompressed baseline plus
/// six HOPE configurations).
struct TreeConfig {
  const char* name;
  bool compressed;
  Scheme scheme;
  size_t dict_limit;
};

inline const std::vector<TreeConfig>& SearchTreeConfigs() {
  // 64K dictionaries in the paper; scaled to 16K by default (the Hu-Tucker
  // build is quadratic) and restored under HOPE_BENCH_FULL=1.
  static const size_t big = FullScale() ? (size_t{1} << 16) : (size_t{1} << 14);
  static const std::vector<TreeConfig> kConfigs{
      {"Uncompressed", false, Scheme::kSingleChar, 0},
      {"Single-Char", true, Scheme::kSingleChar, 256},
      {"Double-Char", true, Scheme::kDoubleChar, 0},
      {"3-Grams", true, Scheme::kThreeGrams, big},
      {"4-Grams", true, Scheme::kFourGrams, big},
      {"ALM-Improved (4K)", true, Scheme::kAlmImproved, size_t{1} << 12},
      {"ALM-Improved (big)", true, Scheme::kAlmImproved, big},
  };
  return kConfigs;
}

/// Total bytes of a key set.
inline size_t TotalBytes(const std::vector<std::string>& keys) {
  size_t n = 0;
  for (const auto& k : keys) n += k.size();
  return n;
}

/// Compression rate over a key set: original bytes / compressed bytes
/// (byte-padded), as in §6.1.
inline double MeasureCpr(const Hope& hope,
                         const std::vector<std::string>& keys) {
  size_t original = 0, compressed = 0;
  for (const auto& k : keys) {
    size_t bits = 0;
    hope.Encode(k, &bits);
    original += k.size();
    compressed += (bits + 7) / 8;
  }
  return compressed == 0 ? 1.0
                         : static_cast<double>(original) /
                               static_cast<double>(compressed);
}

/// Encode latency in ns per source character.
inline double MeasureEncodeNsPerChar(const Hope& hope,
                                     const std::vector<std::string>& keys) {
  Timer t;
  size_t chars = 0;
  size_t sink = 0;
  for (const auto& k : keys) {
    size_t bits = 0;
    std::string e = hope.Encode(k, &bits);
    sink += e.size() + bits;
    chars += k.size();
  }
  double ns = t.Seconds() * 1e9;
  // Defeat dead-code elimination of the encode loop.
  if (sink == size_t(-1)) std::fprintf(stderr, "sink\n");
  return chars == 0 ? 0 : ns / static_cast<double>(chars);
}

/// A search-tree configuration instantiated on a dataset: the HOPE
/// encoder (null for the uncompressed baseline) and the key material the
/// tree benchmarks need.
struct BuiltConfig {
  TreeConfig config;
  std::unique_ptr<Hope> hope;          // null when uncompressed
  std::vector<std::string> tree_keys;  // encoded (or raw) keys, load order
  double hope_build_seconds = 0;
  size_t dict_memory = 0;

  std::string MapKey(const std::string& key) const {
    return hope ? hope->Encode(key) : key;
  }
};

/// Builds the encoder from a 1% sample (§7.2's protocol) and encodes the
/// whole key set once.
inline BuiltConfig PrepareConfig(const TreeConfig& config,
                                 const std::vector<std::string>& keys) {
  BuiltConfig built;
  built.config = config;
  if (config.compressed) {
    BuildStats stats;
    Timer t;
    built.hope =
        Hope::Build(config.scheme, SampleKeys(keys, 0.01), config.dict_limit,
                    &stats);
    built.hope_build_seconds = t.Seconds();
    built.dict_memory = stats.dict_memory_bytes;
    built.tree_keys.reserve(keys.size());
    for (const auto& k : keys) built.tree_keys.push_back(built.hope->Encode(k));
  } else {
    built.tree_keys = keys;
  }
  return built;
}

/// Machine-readable results sink behind `--json <path>`: benches append
/// flat rows (string and numeric fields) next to their printf output, and
/// BenchMain writes `{"bench": ..., "keys": ..., "rows": [...]}` on exit.
/// When --json is absent the rows are collected and dropped — call sites
/// stay unconditional.
class JsonReport {
 public:
  class Row {
   public:
    Row& Str(const char* key, std::string_view value) {
      Sep();
      body_ += '"';
      Escape(key);
      body_ += "\": \"";
      Escape(value);
      body_ += '"';
      return *this;
    }
    Row& Num(const char* key, double value) {
      Sep();
      body_ += '"';
      Escape(key);
      body_ += "\": ";
      if (std::isfinite(value)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6g", value);
        body_ += buf;
      } else {
        // "%g" would print nan/inf, which is not valid JSON.
        body_ += "null";
      }
      return *this;
    }

   private:
    friend class JsonReport;
    void Sep() {
      if (!body_.empty()) body_ += ", ";
    }
    void Escape(std::string_view s) {
      for (char c : s) {
        if (c == '"' || c == '\\') {
          body_ += '\\';
          body_ += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          body_ += buf;
        } else {
          body_ += c;
        }
      }
    }
    std::string body_;
  };

  static JsonReport& Get() {
    static JsonReport report;
    return report;
  }

  void set_bench_name(const char* name) { bench_name_ = name; }
  void set_path(std::string path) { path_ = std::move(path); }
  bool enabled() const { return !path_.empty(); }

  Row& AddRow() { return rows_.emplace_back(); }

  /// Writes the report if --json was given. Returns false on I/O failure.
  bool Flush() const {
    if (path_.empty()) return true;
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << "{\n  \"bench\": \"" << bench_name_ << "\",\n"
        << "  \"keys\": " << NumKeys() << ",\n"
        << "  \"full_scale\": " << (FullScale() ? "true" : "false") << ",\n"
        << "  \"rows\": [\n";
    for (size_t i = 0; i < rows_.size(); i++)
      out << "    {" << rows_[i].body_ << (i + 1 < rows_.size() ? "},\n" : "}\n");
    out << "  ]\n}\n";
    return static_cast<bool>(out);
  }

 private:
  std::string bench_name_ = "?";
  std::string path_;
  std::deque<Row> rows_;
};

/// Shorthand for call sites: Report().Str("scheme", ...).Num("cpr", ...).
inline JsonReport::Row& Report() { return JsonReport::Get().AddRow(); }

/// Uniform main() for the bench binaries: parses `--json <path>`, runs
/// the bench, and flushes the report. Exit codes: 0 ok, 1 runtime error
/// (JSON write failed), 2 usage error.
inline int BenchMain(int argc, char** argv, const char* name, void (*run)()) {
  JsonReport& report = JsonReport::Get();
  report.set_bench_name(name);
  for (int i = 1; i < argc; i++) {
    if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      report.set_path(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
      return 2;
    }
  }
  run();
  if (!report.Flush()) {
    std::fprintf(stderr, "failed to write JSON report\n");
    return 1;
  }
  if (report.enabled()) std::printf("\n  JSON report written\n");
  return 0;
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("  (keys per dataset: %zu%s; see EXPERIMENTS.md for the paper-vs-\n"
              "   measured comparison)\n",
              NumKeys(), FullScale() ? ", FULL scale" : "");
  std::printf("================================================================\n");
}

}  // namespace hope::bench
