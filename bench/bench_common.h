// Shared infrastructure for the per-figure benchmark binaries.
//
// Every bench prints the same rows/series as the corresponding paper
// table or figure. Defaults are laptop-sized; environment variables scale
// the runs up:
//   HOPE_BENCH_KEYS   keys per dataset   (default 200000)
//   HOPE_BENCH_FULL=1 paper-sized dictionary sweeps (2^16/2^18 entries)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "datasets/datasets.h"
#include "hope/hope.h"
#include "workload/workload.h"

namespace hope::bench {

inline size_t NumKeys() {
  if (const char* env = std::getenv("HOPE_BENCH_KEYS"))
    return static_cast<size_t>(std::strtoull(env, nullptr, 10));
  return 200000;
}

inline bool FullScale() {
  const char* env = std::getenv("HOPE_BENCH_FULL");
  return env && env[0] == '1';
}

inline const std::vector<DatasetId>& AllDatasets() {
  static const std::vector<DatasetId> kAll{DatasetId::kEmail, DatasetId::kWiki,
                                           DatasetId::kUrl};
  return kAll;
}

/// The six schemes in the paper's presentation order.
inline const std::vector<Scheme>& AllSchemes() {
  static const std::vector<Scheme> kAll{
      Scheme::kSingleChar, Scheme::kDoubleChar, Scheme::kAlm,
      Scheme::kThreeGrams, Scheme::kFourGrams,  Scheme::kAlmImproved};
  return kAll;
}

/// The seven search-tree configurations of §7 (uncompressed baseline plus
/// six HOPE configurations).
struct TreeConfig {
  const char* name;
  bool compressed;
  Scheme scheme;
  size_t dict_limit;
};

inline const std::vector<TreeConfig>& SearchTreeConfigs() {
  // 64K dictionaries in the paper; scaled to 16K by default (the Hu-Tucker
  // build is quadratic) and restored under HOPE_BENCH_FULL=1.
  static const size_t big = FullScale() ? (size_t{1} << 16) : (size_t{1} << 14);
  static const std::vector<TreeConfig> kConfigs{
      {"Uncompressed", false, Scheme::kSingleChar, 0},
      {"Single-Char", true, Scheme::kSingleChar, 256},
      {"Double-Char", true, Scheme::kDoubleChar, 0},
      {"3-Grams", true, Scheme::kThreeGrams, big},
      {"4-Grams", true, Scheme::kFourGrams, big},
      {"ALM-Improved (4K)", true, Scheme::kAlmImproved, size_t{1} << 12},
      {"ALM-Improved (big)", true, Scheme::kAlmImproved, big},
  };
  return kConfigs;
}

/// Total bytes of a key set.
inline size_t TotalBytes(const std::vector<std::string>& keys) {
  size_t n = 0;
  for (const auto& k : keys) n += k.size();
  return n;
}

/// Compression rate over a key set: original bytes / compressed bytes
/// (byte-padded), as in §6.1.
inline double MeasureCpr(const Hope& hope,
                         const std::vector<std::string>& keys) {
  size_t original = 0, compressed = 0;
  for (const auto& k : keys) {
    size_t bits = 0;
    hope.Encode(k, &bits);
    original += k.size();
    compressed += (bits + 7) / 8;
  }
  return compressed == 0 ? 1.0
                         : static_cast<double>(original) /
                               static_cast<double>(compressed);
}

/// Encode latency in ns per source character.
inline double MeasureEncodeNsPerChar(const Hope& hope,
                                     const std::vector<std::string>& keys) {
  Timer t;
  size_t chars = 0;
  size_t sink = 0;
  for (const auto& k : keys) {
    size_t bits = 0;
    std::string e = hope.Encode(k, &bits);
    sink += e.size() + bits;
    chars += k.size();
  }
  double ns = t.Seconds() * 1e9;
  // Defeat dead-code elimination of the encode loop.
  if (sink == size_t(-1)) std::fprintf(stderr, "sink\n");
  return chars == 0 ? 0 : ns / static_cast<double>(chars);
}

/// A search-tree configuration instantiated on a dataset: the HOPE
/// encoder (null for the uncompressed baseline) and the key material the
/// tree benchmarks need.
struct BuiltConfig {
  TreeConfig config;
  std::unique_ptr<Hope> hope;          // null when uncompressed
  std::vector<std::string> tree_keys;  // encoded (or raw) keys, load order
  double hope_build_seconds = 0;
  size_t dict_memory = 0;

  std::string MapKey(const std::string& key) const {
    return hope ? hope->Encode(key) : key;
  }
};

/// Builds the encoder from a 1% sample (§7.2's protocol) and encodes the
/// whole key set once.
inline BuiltConfig PrepareConfig(const TreeConfig& config,
                                 const std::vector<std::string>& keys) {
  BuiltConfig built;
  built.config = config;
  if (config.compressed) {
    BuildStats stats;
    Timer t;
    built.hope =
        Hope::Build(config.scheme, SampleKeys(keys, 0.01), config.dict_limit,
                    &stats);
    built.hope_build_seconds = t.Seconds();
    built.dict_memory = stats.dict_memory_bytes;
    built.tree_keys.reserve(keys.size());
    for (const auto& k : keys) built.tree_keys.push_back(built.hope->Encode(k));
  } else {
    built.tree_keys = keys;
  }
  return built;
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("  (keys per dataset: %zu%s; see EXPERIMENTS.md for the paper-vs-\n"
              "   measured comparison)\n",
              NumKeys(), FullScale() ? ", FULL scale" : "");
  std::printf("================================================================\n");
}

}  // namespace hope::bench
