// Figure 9: dictionary build-time breakdown (symbol select / code assign
// / dictionary build) on a 1% sample of Email keys, for fixed-size
// dictionaries and for 4K / 64K-entry variable dictionaries (16K when not
// running at full scale).
#include "bench/bench_common.h"

namespace hope::bench {
namespace {

void MeasureBuild(Scheme scheme, size_t limit, const char* size_label,
                  const std::vector<std::string>& sample) {
  BuildStats stats;
  auto hope = Hope::Build(scheme, sample, limit, &stats);
  std::printf("  %-13s %-9s %9.3f %9.3f %9.3f | total %7.3f s\n",
              SchemeName(scheme), size_label, stats.symbol_select_seconds,
              stats.code_assign_seconds, stats.dict_build_seconds,
              stats.TotalSeconds());
  Report()
      .Str("scheme", SchemeName(scheme))
      .Str("dict_size", size_label)
      .Num("select_s", stats.symbol_select_seconds)
      .Num("assign_s", stats.code_assign_seconds)
      .Num("build_s", stats.dict_build_seconds)
      .Num("total_s", stats.TotalSeconds());
}

void Run() {
  PrintHeader("Figure 9: dictionary build time breakdown (Email, 1% sample)");
  auto keys = GenerateEmails(NumKeys(), 42);
  auto sample = SampleKeys(keys, 0.01);

  std::printf("  %-13s %-9s %9s %9s %9s\n", "Scheme", "DictSize",
              "Select(s)", "Assign(s)", "Build(s)");
  MeasureBuild(Scheme::kSingleChar, 256, "fixed", sample);
  MeasureBuild(Scheme::kDoubleChar, 0, "fixed", sample);
  size_t big = FullScale() ? (size_t{1} << 16) : (size_t{1} << 14);
  const char* big_label = FullScale() ? "64K" : "16K";
  for (Scheme scheme : {Scheme::kThreeGrams, Scheme::kFourGrams, Scheme::kAlm,
                        Scheme::kAlmImproved}) {
    MeasureBuild(scheme, size_t{1} << 12, "4K", sample);
    MeasureBuild(scheme, big, big_label, sample);
  }
}

}  // namespace
}  // namespace hope::bench

int main(int argc, char** argv) {
  return hope::bench::BenchMain(argc, argv, "fig9_build_time",
                                hope::bench::Run);
}
