// Figure 11: SuRF false-positive rate on Email point queries, plain SuRF
// versus SuRF-Real8 (8-bit real suffixes), for the uncompressed baseline
// and the six HOPE configurations. The paper's observation: compressed
// keys make each suffix bit more distinguishing, so HOPE lowers the FPR
// at equal suffix budget.
#include <algorithm>

#include "bench/bench_common.h"
#include "surf/surf.h"

namespace hope::bench {
namespace {

void Run() {
  PrintHeader("Figure 11: SuRF false positive rate (Email point queries)");
  auto all = GenerateEmails(NumKeys(), 42);
  // Half the corpus goes into the filter; the other half are negatives.
  size_t half = all.size() / 2;
  std::vector<std::string> keys(all.begin(), all.begin() + half);
  std::vector<std::string> probes(all.begin() + half, all.end());

  std::printf("  %-18s %12s %12s\n", "Config", "SuRF FPR(%)",
              "Real8 FPR(%)");
  for (const TreeConfig& config : SearchTreeConfigs()) {
    BuiltConfig built = PrepareConfig(config, keys);
    std::vector<std::string> sorted = built.tree_keys;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    Surf plain(sorted, SurfSuffix::kNone);
    Surf real8(sorted, SurfSuffix::kReal8);
    size_t fp_plain = 0, fp_real = 0;
    for (const auto& p : probes) {
      std::string enc = built.MapKey(p);
      fp_plain += plain.MayContain(enc);
      fp_real += real8.MayContain(enc);
    }
    double denom = static_cast<double>(probes.size());
    double fpr_plain = 100.0 * static_cast<double>(fp_plain) / denom;
    double fpr_real = 100.0 * static_cast<double>(fp_real) / denom;
    std::printf("  %-18s %12.2f %12.2f\n", config.name, fpr_plain,
                fpr_real);
    Report()
        .Str("config", config.name)
        .Num("fpr_percent", fpr_plain)
        .Num("fpr_real8_percent", fpr_real);
  }
}

}  // namespace
}  // namespace hope::bench

int main(int argc, char** argv) {
  return hope::bench::BenchMain(argc, argv, "fig11_surf_fpr",
                                hope::bench::Run);
}
