// Figure 12: YCSB point-query latency vs index memory for ART, HOT,
// B+tree and Prefix B+tree across the seven configurations and three
// datasets. Query latency includes the key-encoding cost; memory includes
// the HOPE dictionary.
#include "art/art.h"
#include "bench/bench_common.h"
#include "btree/btree.h"
#include "hot/hot.h"
#include "prefix_btree/prefix_btree.h"

namespace hope::bench {
namespace {

template <typename Tree>
void RunTree(const char* dataset, const char* tree_name,
             const std::vector<std::string>& keys,
             const std::vector<uint32_t>& queries,
             const std::vector<BuiltConfig>& configs) {
  std::printf("\n  --- %s ---\n", tree_name);
  std::printf("  %-18s %10s %10s\n", "Config", "Point(us)", "Mem(MB)");
  for (const BuiltConfig& built : configs) {
    Tree tree;
    for (size_t i = 0; i < built.tree_keys.size(); i++)
      tree.Insert(built.tree_keys[i], i);

    size_t hits = 0;
    Timer t;
    for (uint32_t q : queries) {
      uint64_t v = 0;
      hits += tree.Lookup(built.MapKey(keys[q]), &v);
    }
    double us = t.Seconds() * 1e6 / static_cast<double>(queries.size());
    if (hits != queries.size()) std::printf("  !! lookup misses\n");
    double mem_mb = static_cast<double>(tree.MemoryBytes() +
                                        built.dict_memory) /
                    (1024.0 * 1024.0);
    std::printf("  %-18s %10.3f %10.2f\n", built.config.name, us, mem_mb);
    Report()
        .Str("dataset", dataset)
        .Str("tree", tree_name)
        .Str("config", built.config.name)
        .Num("point_us", us)
        .Num("mem_mb", mem_mb);
  }
}

void Run() {
  PrintHeader(
      "Figure 12: YCSB point queries on ART / HOT / B+tree / Prefix "
      "B+tree");
  const size_t num_queries = std::min<size_t>(NumKeys(), 200000);
  for (DatasetId id : AllDatasets()) {
    auto keys = GenerateDataset(id, NumKeys(), 42);
    auto queries = GenerateZipfQueries(keys.size(), num_queries, 7);
    std::printf("\n[%s]\n", DatasetName(id));
    // Build each HOPE configuration once and share it across the trees.
    std::vector<BuiltConfig> configs;
    for (const TreeConfig& config : SearchTreeConfigs())
      configs.push_back(PrepareConfig(config, keys));
    RunTree<Art>(DatasetName(id), "ART", keys, queries, configs);
    RunTree<Hot>(DatasetName(id), "HOT", keys, queries, configs);
    RunTree<BTree>(DatasetName(id), "B+tree", keys, queries, configs);
    RunTree<PrefixBTree>(DatasetName(id), "Prefix B+tree", keys, queries, configs);
  }
}

}  // namespace
}  // namespace hope::bench

int main(int argc, char** argv) {
  return hope::bench::BenchMain(argc, argv, "fig12_point_queries",
                                hope::bench::Run);
}
