// Encode hot path microbench: throughput (mchars_per_sec) and cycle cost
// (cycles_per_byte) per scheme × batch mode, on the sorted Email sample.
//
// Modes:
//   single       — per-key Encode (devirtualized EncodeSpan, no batching)
//   sorted_b32   — EncodeBatch over sorted runs of 32 (traced shared-
//                  prefix reuse for bounded-lookahead schemes)
//   shuffled_b32 — EncodeBatch over shuffled runs of 32 (no reusable
//                  prefixes: exercises the interleaved EncodeMulti
//                  descent — the ALM schemes' batch win lives here too)
//
// `mode` is a row-identity field in tools/bench_diff.py, so each series
// is gated independently; cycles_per_byte joins the latency family and
// mchars_per_sec the throughput family.
#include <algorithm>
#include <random>

#include "bench/bench_common.h"
#include "common/simd.h"

namespace hope::bench {
namespace {

/// Raw cycle-ish counter: TSC on x86-64 (constant-rate on anything
/// modern), the fixed-frequency virtual counter on aarch64 (a proxy, but
/// stable), 0 elsewhere (the row then reports null).
inline uint64_t ReadCycleCounter() {
#if defined(__x86_64__)
  unsigned lo, hi;
  __asm__ __volatile__("rdtsc" : "=a"(lo), "=d"(hi));
  return (static_cast<uint64_t>(hi) << 32) | lo;
#elif defined(__aarch64__)
  uint64_t v;
  __asm__ __volatile__("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return 0;
#endif
}

constexpr bool HasCycleCounter() {
#if defined(__x86_64__) || defined(__aarch64__)
  return true;
#else
  return false;
#endif
}

struct Measurement {
  double ns_per_char;
  double mchars_per_sec;
  double cycles_per_byte;  // NaN when no counter: JSON emits null
};

template <typename Fn>
Measurement Measure(size_t chars, Fn&& encode_all) {
  Timer t;
  uint64_t c0 = ReadCycleCounter();
  size_t sink = encode_all();
  uint64_t c1 = ReadCycleCounter();
  double secs = t.Seconds();
  if (sink == size_t(-1)) std::printf("!");  // defeat dead-code elim
  double dchars = static_cast<double>(chars);
  Measurement m;
  m.ns_per_char = secs * 1e9 / dchars;
  m.mchars_per_sec = dchars / secs / 1e6;
  m.cycles_per_byte = HasCycleCounter()
                          ? static_cast<double>(c1 - c0) / dchars
                          : std::nan("");
  return m;
}

void Run() {
  PrintHeader("Encode hot path: throughput and cycles per byte");
  std::printf("  simd tier: %s\n", simd::TierName());
  auto keys = GenerateEmails(NumKeys(), 42);
  auto sample = SampleKeys(keys, 0.01);
  std::sort(keys.begin(), keys.end());
  auto shuffled = keys;
  std::shuffle(shuffled.begin(), shuffled.end(), std::mt19937_64(7));
  size_t limit = FullScale() ? (size_t{1} << 16) : (size_t{1} << 14);
  const size_t chars = TotalBytes(keys);

  // Pre-slice the batch runs once so only encoding is timed.
  auto slice = [](const std::vector<std::string>& all, size_t batch) {
    std::vector<std::vector<std::string>> runs;
    runs.reserve(all.size() / batch + 1);
    for (size_t i = 0; i < all.size(); i += batch) {
      size_t n = std::min(batch, all.size() - i);
      runs.emplace_back(all.begin() + static_cast<long>(i),
                        all.begin() + static_cast<long>(i + n));
    }
    return runs;
  };
  const auto sorted_runs = slice(keys, 32);
  const auto shuffled_runs = slice(shuffled, 32);

  std::printf("  %-13s %-13s %12s %14s %12s\n", "Scheme", "Mode", "ns/char",
              "Mchars/s", "cyc/byte");
  for (Scheme scheme : AllSchemes()) {
    auto hope = Hope::Build(scheme, sample, limit);
    auto emit = [&](const char* mode, const Measurement& m) {
      std::printf("  %-13s %-13s %12.2f %14.1f %12.2f\n", SchemeName(scheme),
                  mode, m.ns_per_char, m.mchars_per_sec, m.cycles_per_byte);
      std::fflush(stdout);
      Report()
          .Str("scheme", SchemeName(scheme))
          .Str("mode", mode)
          .Str("simd_tier", simd::TierName())
          .Num("ns_per_char", m.ns_per_char)
          .Num("mchars_per_sec", m.mchars_per_sec)
          .Num("cycles_per_byte", m.cycles_per_byte);
    };

    emit("single", Measure(chars, [&] {
           size_t sink = 0;
           for (const auto& k : keys) {
             size_t bits = 0;
             std::string e = hope->Encode(k, &bits);
             sink += bits + e.size();
           }
           return sink;
         }));
    auto batch = [&](const std::vector<std::vector<std::string>>& runs) {
      return Measure(chars, [&] {
        size_t sink = 0;
        for (const auto& run : runs) {
          size_t bits = 0;
          auto enc = hope->EncodeBatch(run, &bits);
          sink += bits;
        }
        return sink;
      });
    };
    emit("sorted_b32", batch(sorted_runs));
    emit("shuffled_b32", batch(shuffled_runs));
  }
}

}  // namespace
}  // namespace hope::bench

int main(int argc, char** argv) {
  return hope::bench::BenchMain(argc, argv, "encode_hot", hope::bench::Run);
}
