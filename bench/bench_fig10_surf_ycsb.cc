// Figure 10: SuRF under YCSB — point query latency vs filter memory,
// range query latency, build time, and average trie height, for the
// uncompressed baseline and six HOPE configurations on all three
// datasets. Queries follow YCSB C/E with a scrambled-Zipfian key
// popularity; SuRF range queries are [key, key-with-last-byte+1] pairs as
// in §7.1.
#include <algorithm>

#include "bench/bench_common.h"
#include "surf/surf.h"

namespace hope::bench {
namespace {

void Run() {
  PrintHeader("Figure 10: SuRF YCSB evaluation (7 configs x 3 datasets)");
  const size_t num_queries = std::min<size_t>(NumKeys(), 200000);

  for (DatasetId id : AllDatasets()) {
    auto keys = GenerateDataset(id, NumKeys(), 42);
    auto queries = GenerateZipfQueries(keys.size(), num_queries, 7);
    std::printf("\n[%s]\n", DatasetName(id));
    std::printf("  %-18s %10s %10s %10s %10s %9s\n", "Config", "Point(us)",
                "Range(us)", "Mem(MB)", "Build(s)", "Height");

    for (const TreeConfig& config : SearchTreeConfigs()) {
      Timer build_timer;
      BuiltConfig built = PrepareConfig(config, keys);
      std::vector<std::string> sorted = built.tree_keys;
      std::sort(sorted.begin(), sorted.end());
      sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
      Surf surf(sorted, SurfSuffix::kReal8);
      double build_s = build_timer.Seconds();

      // Point queries (YCSB C): encode + probe, timed together — the
      // encode cost is part of the query path (§5).
      size_t positives = 0;
      Timer point_timer;
      for (uint32_t q : queries)
        positives += surf.MayContain(built.MapKey(keys[q]));
      double point_us =
          point_timer.Seconds() * 1e6 / static_cast<double>(queries.size());
      if (positives != queries.size())
        std::printf("  !! false negatives detected\n");

      // Range queries (YCSB E for filters): closed range with the last
      // byte bumped; pair-encoding amortizes the shared prefix.
      size_t range_hits = 0;
      Timer range_timer;
      for (size_t i = 0; i < queries.size(); i++) {
        const std::string& k = keys[queries[i]];
        std::string end = k;
        end.back() = static_cast<char>(end.back() + 1);
        if (built.hope) {
          auto [e1, e2] = built.hope->EncodePair(k, end);
          range_hits += surf.MayContainRange(e1, e2);
        } else {
          range_hits += surf.MayContainRange(k, end);
        }
      }
      double range_us =
          range_timer.Seconds() * 1e6 / static_cast<double>(queries.size());

      double mem_mb = static_cast<double>(surf.MemoryBytes() +
                                          built.dict_memory) /
                      (1024.0 * 1024.0);
      std::printf("  %-18s %10.3f %10.3f %10.2f %10.2f %9.1f\n",
                  config.name, point_us, range_us, mem_mb, build_s,
                  surf.AverageLeafDepth());
      Report()
          .Str("dataset", DatasetName(id))
          .Str("config", config.name)
          .Num("point_us", point_us)
          .Num("range_us", range_us)
          .Num("mem_mb", mem_mb)
          .Num("build_s", build_s)
          .Num("avg_leaf_depth", surf.AverageLeafDepth());
    }
  }
}

}  // namespace
}  // namespace hope::bench

int main(int argc, char** argv) {
  return hope::bench::BenchMain(argc, argv, "fig10_surf_ycsb",
                                hope::bench::Run);
}
