#include "workload/workload.h"

#include <gtest/gtest.h>

#include <map>

namespace hope {
namespace {

TEST(WorkloadTest, ZipfQueriesInRangeAndSkewed) {
  auto queries = GenerateZipfQueries(10000, 100000, 7);
  ASSERT_EQ(queries.size(), 100000u);
  std::map<uint32_t, size_t> hist;
  for (uint32_t q : queries) {
    ASSERT_LT(q, 10000u);
    hist[q]++;
  }
  size_t max_count = 0;
  for (auto& [idx, count] : hist) max_count = std::max(max_count, count);
  // Zipf 0.99: the hottest key gets far more than uniform share (10).
  EXPECT_GT(max_count, 200u);
  // But many distinct keys are touched.
  EXPECT_GT(hist.size(), 3000u);
}

TEST(WorkloadTest, ZipfDeterministicPerSeed) {
  EXPECT_EQ(GenerateZipfQueries(1000, 1000, 1),
            GenerateZipfQueries(1000, 1000, 1));
  EXPECT_NE(GenerateZipfQueries(1000, 1000, 1),
            GenerateZipfQueries(1000, 1000, 2));
}

TEST(WorkloadTest, ScanLengths) {
  auto lens = GenerateScanLengths(10000, 100, 3);
  for (auto l : lens) {
    ASSERT_GE(l, 1u);
    ASSERT_LE(l, 100u);
  }
  double avg = 0;
  for (auto l : lens) avg += l;
  avg /= static_cast<double>(lens.size());
  EXPECT_NEAR(avg, 50.5, 2.0);  // uniform in [1, 100]
}

TEST(WorkloadTest, SplitForInserts) {
  std::vector<std::string> keys{"a", "b", "c", "d"};
  auto split = SplitForInserts(keys, 0.5);
  EXPECT_EQ(split.load.size(), 2u);
  EXPECT_EQ(split.inserts.size(), 2u);
  EXPECT_EQ(split.load[0], "a");
  EXPECT_EQ(split.inserts[0], "c");
}

TEST(WorkloadTest, TimerMeasures) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; i++) x = x + 1;
  EXPECT_GE(t.Seconds(), 0.0);
  EXPECT_LT(t.Seconds(), 5.0);
}

}  // namespace
}  // namespace hope
