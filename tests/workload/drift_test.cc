// DriftingWorkload across its three partition models: both parts
// populated, phases blend deterministically from pure A to pure B, the
// partition predicate actually separates the corpora, and degenerate
// corpora fall back to synthetic part members instead of empty pools.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "workload/drift.h"

namespace hope {
namespace {

const DriftModel kModels[] = {DriftModel::kEmailProvider,
                              DriftModel::kWikiFlavor, DriftModel::kUrlStyle};

bool InB(DriftModel model, const std::string& key) {
  switch (model) {
    case DriftModel::kEmailProvider:
      return key.rfind("com.gmail@", 0) != 0 &&
             key.rfind("com.yahoo@", 0) != 0;
    case DriftModel::kWikiFlavor:
      return key.rfind("List_of_", 0) == 0 ||
             key.find('(') != std::string::npos;
    case DriftModel::kUrlStyle:
      return key.find('?') != std::string::npos;
    case DriftModel::kHotspotMigrate:
      // Positional split; covered by the HotspotMigrate tests below, not
      // the syntactic-predicate loops (kModels excludes it).
      return false;
  }
  return false;
}

TEST(DriftTest, AllModelsPartitionTheCorpus) {
  for (DriftModel model : kModels) {
    DriftOptions o;
    o.model = model;
    o.keys_per_phase = 2000;
    DriftingWorkload drift(o);
    EXPECT_GT(drift.part_a().size(), 100u) << DriftModelName(model);
    EXPECT_GT(drift.part_b().size(), 100u) << DriftModelName(model);
    for (const auto& k : drift.part_a())
      ASSERT_FALSE(InB(model, k)) << DriftModelName(model) << ": " << k;
    for (const auto& k : drift.part_b())
      ASSERT_TRUE(InB(model, k)) << DriftModelName(model) << ": " << k;
  }
}

TEST(DriftTest, PhasesBlendFromPureAToPureB) {
  for (DriftModel model : kModels) {
    DriftOptions o;
    o.model = model;
    o.keys_per_phase = 4000;
    o.num_phases = 5;
    DriftingWorkload drift(o);
    EXPECT_DOUBLE_EQ(drift.MixFraction(0), 0.0);
    EXPECT_DOUBLE_EQ(drift.MixFraction(2), 0.5);
    EXPECT_DOUBLE_EQ(drift.MixFraction(4), 1.0);
    // Past-the-end phases saturate at pure B.
    EXPECT_DOUBLE_EQ(drift.MixFraction(99), 1.0);

    double prev = -1;
    for (size_t p = 0; p < drift.num_phases(); p++) {
      auto keys = drift.Phase(p);
      ASSERT_EQ(keys.size(), o.keys_per_phase);
      size_t b = 0;
      for (const auto& k : keys) b += InB(model, k) ? 1 : 0;
      double frac = static_cast<double>(b) / static_cast<double>(keys.size());
      EXPECT_NEAR(frac, drift.MixFraction(p), 0.03) << DriftModelName(model);
      EXPECT_GT(frac + 0.01, prev) << DriftModelName(model);
      prev = frac;
    }
  }
}

// The hotspot-migration model splits the sorted corpus at its median:
// part A is the lower half of the key space, part B the upper half, so
// the blend walks a traffic hotspot across the key range.
TEST(DriftTest, HotspotMigrateSplitsPositionallyAtTheMedian) {
  DriftOptions o;
  o.model = DriftModel::kHotspotMigrate;
  o.keys_per_phase = 2000;
  DriftingWorkload drift(o);
  ASSERT_GT(drift.part_a().size(), 100u);
  ASSERT_GT(drift.part_b().size(), 100u);
  // Within one key of each other: an odd corpus puts the extra in B.
  EXPECT_LE(drift.part_b().size() - drift.part_a().size(), 1u);

  // Every part-A key sorts strictly below every part-B key.
  std::string a_max = *std::max_element(drift.part_a().begin(),
                                        drift.part_a().end());
  std::string b_min = *std::min_element(drift.part_b().begin(),
                                        drift.part_b().end());
  EXPECT_LT(a_max, b_min);

  // The blend moves traffic from the lower half to the upper half.
  for (size_t p = 0; p < drift.num_phases(); p++) {
    auto keys = drift.Phase(p);
    size_t upper = 0;
    for (const auto& k : keys) upper += k >= b_min ? 1 : 0;
    double frac =
        static_cast<double>(upper) / static_cast<double>(keys.size());
    EXPECT_NEAR(frac, drift.MixFraction(p), 0.03);
  }
}

TEST(DriftTest, HotspotMigrateDegenerateCorpusStaysServable) {
  DriftOptions o;
  o.model = DriftModel::kHotspotMigrate;
  o.keys_per_phase = 100;
  o.corpus_size = 1;  // one key: the lower half is empty pre-fallback
  DriftingWorkload drift(o);
  ASSERT_FALSE(drift.part_a().empty());
  ASSERT_FALSE(drift.part_b().empty());
  // The fallback preserves the positional invariant: A sorts below B.
  EXPECT_LT(drift.part_a().front(), drift.part_b().back());
  for (size_t p = 0; p < drift.num_phases(); p++)
    EXPECT_EQ(drift.Phase(p).size(), o.keys_per_phase);
}

TEST(DriftTest, PhaseStreamsAreDeterministic) {
  DriftOptions o;
  o.model = DriftModel::kWikiFlavor;
  o.keys_per_phase = 500;
  EXPECT_EQ(DriftingWorkload(o).Phase(1), DriftingWorkload(o).Phase(1));
  DriftOptions o2 = o;
  o2.seed = o.seed + 1;
  EXPECT_NE(DriftingWorkload(o).Phase(1), DriftingWorkload(o2).Phase(1));
}

// A corpus too small to populate both halves of the partition triggers
// the synthetic-fallback path; the fallback key must itself satisfy the
// model's predicate so downstream mix accounting stays truthful.
TEST(DriftTest, DegenerateCorpusFallsBackPerModel) {
  for (DriftModel model : kModels) {
    DriftOptions o;
    o.model = model;
    o.keys_per_phase = 100;
    o.corpus_size = 1;  // one key: at least one part must be empty
    DriftingWorkload drift(o);
    ASSERT_FALSE(drift.part_a().empty()) << DriftModelName(model);
    ASSERT_FALSE(drift.part_b().empty()) << DriftModelName(model);
    for (const auto& k : drift.part_a())
      EXPECT_FALSE(InB(model, k)) << DriftModelName(model) << ": " << k;
    for (const auto& k : drift.part_b())
      EXPECT_TRUE(InB(model, k)) << DriftModelName(model) << ": " << k;
    // Phases still produce full, servable streams.
    for (size_t p = 0; p < drift.num_phases(); p++)
      EXPECT_EQ(drift.Phase(p).size(), o.keys_per_phase);
  }
}

TEST(DriftTest, DegenerateOptionsAreClamped) {
  DriftOptions o;
  o.num_phases = 0;
  o.keys_per_phase = 0;
  DriftingWorkload drift(o);
  EXPECT_EQ(drift.num_phases(), 2u);
  EXPECT_EQ(drift.Phase(0).size(), 1u);
  // num_phases=2: phase 0 is pure A, phase 1 pure B.
  EXPECT_DOUBLE_EQ(drift.MixFraction(1), 1.0);
}

}  // namespace
}  // namespace hope
