// Fuzz target: the CLI/env argument-parsing surface (common/parse.h and
// tools/cli_args.h) — every token here arrives from argv or stdin.
// Each parser is differentially checked against a simple reference:
//   - ParsePositiveUint accepts exactly the digits-only strings whose
//     value (checked with 128-bit accumulation, no wrap) is in [1, max];
//   - ParseScheme accepts exactly the six documented names;
//   - FromHex accepts exactly ToHex images, and round-trips them;
//   - ParseServeArgs never crashes, and on acceptance every field is
//     inside its documented bound (workers <= 64, shards in 2..256,
//     stats interval <= 1h).
//
// The input is NUL-split into tokens, mirroring an argv.
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/parse.h"
#include "tests/fuzz/fuzz_input.h"
#include "tools/cli_args.h"

namespace {

/// Reference for ParsePositiveUint: digits-only, no wrap, in [1, max].
bool RefAccepts(const std::string& s, unsigned long long max,
                unsigned long long* value) {
  if (s.empty()) return false;
  unsigned __int128 v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<unsigned>(c - '0');
    if (v > max) return false;  // also rejects anything that would wrap
  }
  if (v == 0) return false;
  *value = static_cast<unsigned long long>(v);
  return true;
}

void CheckUintToken(const std::string& tok, unsigned long long max) {
  unsigned long long got = 0, want = 0;
  bool accepted = hope::ParsePositiveUint(tok.c_str(), max, &got);
  bool expected = RefAccepts(tok, max, &want);
  HOPE_CHECK_MSG(accepted == expected,
                 "ParsePositiveUint accept/reject diverged from reference");
  if (accepted)
    HOPE_CHECK_MSG(got == want, "ParsePositiveUint value diverged");
}

void CheckSchemeToken(const std::string& tok) {
  hope::Scheme scheme;
  if (!hope::cli::ParseScheme(tok, &scheme)) return;
  static constexpr const char* kNames[] = {
      "single-char", "double-char", "alm",
      "3-grams",     "4-grams",     "alm-improved",
  };
  bool known = false;
  for (const char* n : kNames) known = known || tok == n;
  HOPE_CHECK_MSG(known, "ParseScheme accepted an undocumented name");
}

void CheckHexToken(const std::string& tok) {
  std::string bytes;
  if (hope::cli::FromHex(tok, &bytes)) {
    HOPE_CHECK_MSG(hope::cli::ToHex(bytes) == tok,
                   "FromHex accepted a non-canonical hex string");
  }
  // Forward direction always round-trips, for any byte content.
  std::string back;
  HOPE_CHECK_MSG(hope::cli::FromHex(hope::cli::ToHex(tok), &back) &&
                     back == tok,
                 "ToHex output did not round-trip through FromHex");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // NUL-split into an argv-like token list (cap length and count so a
  // single giant input cannot stall the run).
  std::vector<std::string> tokens;
  std::string cur;
  for (size_t i = 0; i < size && tokens.size() < 16; i++) {
    if (data[i] == 0) {
      tokens.push_back(cur);
      cur.clear();
    } else if (cur.size() < 256) {
      cur.push_back(static_cast<char>(data[i]));
    }
  }
  if (!cur.empty()) tokens.push_back(cur);

  hope::fuzz::FuzzInput in(data, size);
  const unsigned long long maxes[] = {1, 64, 256, 3600 * 1000,
                                      1ull << 32, ~0ull};
  for (const std::string& tok : tokens) {
    CheckUintToken(tok, maxes[in.TakeByte() % 6]);
    CheckSchemeToken(tok);
    CheckHexToken(tok);
  }

  hope::cli::ServeArgs args;
  if (hope::cli::ParseServeArgs(tokens, &args)) {
    HOPE_CHECK_MSG(args.num_keys >= 1 && args.num_keys <= (size_t{1} << 32),
                   "serve keys out of documented range");
    HOPE_CHECK_MSG(args.workers >= 1 && args.workers <= 64,
                   "serve workers out of documented range");
    HOPE_CHECK_MSG(args.shards >= 2 && args.shards <= 256,
                   "serve shards out of documented range");
    HOPE_CHECK_MSG(args.stats_interval_ms >= 1 &&
                       args.stats_interval_ms <= 3600 * 1000,
                   "serve stats interval out of documented range");
  }
  return 0;
}
