// Fuzz target: Hope::Deserialize over raw attacker-controlled blobs —
// the primary untrusted-input surface (dictionaries are loaded from
// disk/network by hope_cli and the serving layer).
//
// Rejection must be graceful (nullptr, no throw escaping, no UB), and
// acceptance implies the full dictionary contract. For accepted blobs:
//   - Serialize() reproduces the input byte-for-byte (a canonical blob
//     accepted twice must not drift);
//   - the entry codes are prefix-free (checked independently here with
//     a sort — a revert of the Decoder's structural checks must not
//     survive behind Deserialize's acceptance);
//   - every probe lookup consumes 1..remaining bytes and emits >= 1 bit
//     (the code.len=0 / symbol_len=0 bug classes from the malformed-blob
//     hardening spin forever or overshoot the key otherwise);
//   - Decode(Encode(probe)) never throws: the encoder only emits codes
//     the decoder's trie was built from, and zero-padding beyond
//     code.len is a validated invariant (a padding-check revert smears
//     bits into the next code and trips this).
//
// Under HOPE_FUZZ the target also ships a structure-aware mutator that
// parses the blob layout (magic, scheme, count, per-entry fields) and
// mutates one field at a time, so coverage reaches past the header
// checks instead of dying on magic-byte mismatches.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "hope/hope.h"

namespace {

using hope::Hope;
using namespace std::string_view_literals;

struct ParsedEntry {
  uint32_t bound_off = 0;  // offset of the length-prefixed bound
  uint32_t bound_len = 0;
  uint64_t code_bits = 0;
  uint8_t code_len = 0;
};

constexpr char kMagic[] = "HOPEDICT1";
constexpr size_t kMagicLen = sizeof(kMagic) - 1;

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; i++) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; i++) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

/// Independent re-parse of the serialized layout (mirrors the format,
/// not the validation — deliberately lax so it can walk blobs the real
/// Deserialize rejects). Returns false when the byte stream itself runs
/// out mid-entry.
bool ParseLayout(const uint8_t* data, size_t size,
                 std::vector<ParsedEntry>* entries) {
  if (size < kMagicLen + 5 ||
      std::memcmp(data, kMagic, kMagicLen) != 0)
    return false;
  size_t pos = kMagicLen + 1;  // skip scheme byte
  uint32_t count = ReadU32(data + pos);
  pos += 4;
  for (uint32_t i = 0; i < count; i++) {
    if (size - pos < 4) return false;
    ParsedEntry e;
    e.bound_off = static_cast<uint32_t>(pos);
    e.bound_len = ReadU32(data + pos);
    pos += 4;
    if (size - pos < e.bound_len) return false;
    pos += e.bound_len;
    if (size - pos < 4 + 8 + 1) return false;
    pos += 4;  // symbol_len
    e.code_bits = ReadU64(data + pos);
    pos += 8;
    e.code_len = data[pos];
    pos += 1;
    entries->push_back(e);
  }
  return pos == size;
}

/// True when `a` is a (proper or equal) prefix of `b` as left-aligned
/// bit strings.
bool IsCodePrefix(uint64_t a_bits, int a_len, uint64_t b_bits, int b_len) {
  if (a_len > b_len) return false;
  if (a_len == 0) return true;
  uint64_t mask = ~uint64_t{0} << (64 - a_len);
  return (a_bits & mask) == (b_bits & mask);
}

void CheckPrefixFree(const std::vector<ParsedEntry>& entries) {
  // Sorting by (bits, len) makes any prefix pair adjacent: a prefix of x
  // sorts immediately before the smallest extension of itself.
  std::vector<std::pair<uint64_t, int>> codes;
  codes.reserve(entries.size());
  for (const ParsedEntry& e : entries)
    codes.emplace_back(e.code_bits, e.code_len);
  std::sort(codes.begin(), codes.end());
  for (size_t i = 1; i < codes.size(); i++)
    HOPE_CHECK_MSG(!IsCodePrefix(codes[i - 1].first, codes[i - 1].second,
                                 codes[i].first, codes[i].second),
                   "accepted dictionary has a non-prefix-free code pair");
}

void CheckProbe(const Hope& hope, std::string_view probe) {
  // Manual per-symbol walk with the completeness contract pinned at
  // every step: consumed in [1, remaining], at least one output bit.
  const hope::Dictionary& dict = hope.dict();
  std::string_view rest = probe;
  while (!rest.empty()) {
    hope::LookupResult r = dict.Lookup(rest);
    HOPE_CHECK_MSG(r.consumed >= 1 && r.consumed <= rest.size(),
                   "lookup consumed bytes outside [1, remaining]");
    HOPE_CHECK_MSG(r.code.len >= 1,
                   "a consumed symbol must emit at least one bit");
    rest.remove_prefix(r.consumed);
  }
  size_t bits = 0;
  std::string enc = hope.Encode(probe, &bits);
  try {
    (void)hope.Decode(enc, bits);
  } catch (const std::exception&) {
    HOPE_CHECK_MSG(false, "decoder rejected this dictionary's own output");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view blob(reinterpret_cast<const char*>(data), size);
  std::unique_ptr<Hope> hope = Hope::Deserialize(blob);
  if (hope == nullptr) return 0;

  // Canonical round trip: an accepted blob is already in serialized form.
  std::string reser = hope->Serialize();
  HOPE_CHECK_MSG(reser == blob,
                 "re-serializing an accepted blob changed its bytes");
  HOPE_CHECK_MSG(Hope::Deserialize(reser) != nullptr,
                 "re-serialized blob no longer deserializes");

  std::vector<ParsedEntry> entries;
  HOPE_CHECK_MSG(ParseLayout(data, size, &entries),
                 "accepted blob does not re-parse as the documented layout");
  for (const ParsedEntry& e : entries) {
    // The Code invariants every consumer leans on: 1..64 bits,
    // left-aligned, zero past len (BitWriter's branch-free OR smears
    // padding bits into the next code otherwise).
    HOPE_CHECK_MSG(e.code_len >= 1 && e.code_len <= 64,
                   "accepted entry has a code length outside [1, 64]");
    if (e.code_len < 64)
      HOPE_CHECK_MSG((e.code_bits & (~uint64_t{0} >> e.code_len)) == 0,
                     "accepted entry has nonzero padding past code length");
  }
  CheckPrefixFree(entries);

  // The sv suffix keeps embedded NULs (a plain literal would strlen to 0).
  static constexpr std::string_view kProbes[] = {
      ""sv,         "\x00"sv, "a"sv,     "bzz"sv, "hello world"sv,
      "\xff\xff"sv, "\x01z"sv, "zzzzzzzzzzzzzzzz"sv,
  };
  for (std::string_view probe : kProbes) CheckProbe(*hope, probe);
  // Blob-derived probes: boundary bytes tend to sit on interval edges.
  for (size_t off = 0; off + 4 <= size && off < 64; off += 13)
    CheckProbe(*hope, blob.substr(off, 4));
  return 0;
}

#if defined(HOPE_FUZZ)
// Structure-aware mutation: parse the layout, pick one field, perturb it.
// Raw byte mutation (LLVMFuzzerMutate) remains in the mix so header and
// framing bytes still get explored.
extern "C" size_t LLVMFuzzerMutate(uint8_t* data, size_t size,
                                   size_t max_size);

extern "C" size_t LLVMFuzzerCustomMutator(uint8_t* data, size_t size,
                                          size_t max_size, unsigned seed) {
  // Cheap xorshift PRNG — no global state, deterministic per seed.
  uint64_t s = seed * 0x9E3779B97F4A7C15ull + 1;
  auto next = [&s]() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };

  std::vector<ParsedEntry> entries;
  bool parsed = ParseLayout(data, size, &entries) && !entries.empty();
  if (!parsed || next() % 4 == 0)
    return LLVMFuzzerMutate(data, size, max_size);

  const ParsedEntry& e = entries[next() % entries.size()];
  const size_t fields_off = e.bound_off + 4 + e.bound_len;
  switch (next() % 6) {
    case 0:  // scheme byte
      data[kMagicLen] = static_cast<uint8_t>(next() % 8);
      break;
    case 1:  // code.len: sweep the boundary values 0, 1, 63, 64, 65, 255
      if (fields_off + 12 < size) {
        static constexpr uint8_t kLens[] = {0, 1, 63, 64, 65, 255};
        data[fields_off + 12] = kLens[next() % 6];
      }
      break;
    case 2:  // flip one bit of code.bits (padding violations included)
      if (fields_off + 12 < size)
        data[fields_off + 4 + next() % 8] ^=
            static_cast<uint8_t>(1u << (next() % 8));
      break;
    case 3:  // symbol_len: 0, huge, or off-by-one vs the bound length
      if (fields_off + 4 <= size) {
        uint32_t v;
        switch (next() % 3) {
          case 0: v = 0; break;
          case 1: v = e.bound_len + 1 + static_cast<uint32_t>(next() % 3); break;
          default: v = static_cast<uint32_t>(next()); break;
        }
        for (int i = 0; i < 4; i++)
          data[fields_off + i] = static_cast<uint8_t>(v >> (8 * i));
      }
      break;
    case 4: {  // count field: off-by-one or huge
      uint32_t count = ReadU32(data + kMagicLen + 1);
      uint32_t v = next() % 2 ? count + 1 : 0xFFFFFFFFu;
      for (int i = 0; i < 4; i++)
        data[kMagicLen + 1 + i] = static_cast<uint8_t>(v >> (8 * i));
      break;
    }
    default:  // perturb one byte of a bound (ordering violations)
      if (e.bound_len > 0 && e.bound_off + 4 < size)
        data[e.bound_off + 4 + next() % e.bound_len] ^=
            static_cast<uint8_t>(next());
      break;
  }
  return size;
}
#endif  // HOPE_FUZZ
