// Fuzz target: telemetry snapshot export escaping. Label values flow in
// from user-named datasets/shards and end up inside JSONL stats files
// (hope_cli serve --stats-file) and Prometheus scrapes — a missed escape
// turns one hostile label into unparseable telemetry for the whole
// process. Metric names and label keys are program-controlled
// identifiers, so the fuzzer draws them from a fixed set (driving the
// grouping/TYPE-line logic) while label values, metric kinds, and all
// numeric fields (including NaN/Inf via raw bit patterns) are
// adversarial.
//
// Oracles:
//   - ToJson() output parses under a strict JSON grammar checker and
//     stays on one line (the JSONL contract);
//   - ToPrometheus() output: quoted label values contain no raw quote,
//     backslash, or newline — every backslash starts one of the three
//     documented escapes — and each non-comment line is
//     `series value` with balanced braces.
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "telemetry/registry.h"
#include "tests/fuzz/fuzz_input.h"

namespace {

using hope::telemetry::MetricKind;
using hope::telemetry::RegistrySnapshot;

// ---------------------------------------------------------------------
// Minimal strict JSON validator (objects, arrays, strings, numbers,
// true/false/null). Returns false instead of throwing; the fuzz oracle
// only needs accept/reject.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    pos_++;  // '{'
    SkipWs();
    if (Peek() == '}') { pos_++; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      pos_++;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { pos_++; continue; }
      if (Peek() == '}') { pos_++; return true; }
      return false;
    }
  }

  bool Array() {
    pos_++;  // '['
    SkipWs();
    if (Peek() == ']') { pos_++; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { pos_++; continue; }
      if (Peek() == ']') { pos_++; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    pos_++;
    while (pos_ < s_.size()) {
      unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') { pos_++; return true; }
      if (c < 0x20) return false;  // raw control char — the bug class here
      if (c == '\\') {
        pos_++;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_];
        if (e == 'u') {
          if (pos_ + 4 >= s_.size()) return false;
          for (int i = 1; i <= 4; i++)
            if (!IsHex(s_[pos_ + i])) return false;
          pos_ += 4;
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return false;
        }
      }
      pos_++;
    }
    return false;  // unterminated
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') pos_++;
    if (!DigitRun()) return false;
    if (Peek() == '.') {
      pos_++;
      if (!DigitRun()) return false;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      pos_++;
      if (Peek() == '+' || Peek() == '-') pos_++;
      if (!DigitRun()) return false;
    }
    return pos_ > start;
  }

  bool DigitRun() {
    size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') pos_++;
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    size_t n = std::strlen(lit);
    if (s_.substr(pos_, n) != lit) return false;
    pos_ += n;
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  bool IsHex(char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
           (c >= 'A' && c <= 'F');
  }
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      pos_++;
  }

  std::string_view s_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Prometheus exposition line checks: quoted regions must contain only
// the three documented escapes and no raw quote/newline.
void CheckPromLine(std::string_view line) {
  if (line.empty() || line.substr(0, 2) == "# ") return;
  int braces = 0;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); i++) {
    char c = line[i];
    if (in_quotes) {
      HOPE_CHECK_MSG(c != '\n', "raw newline inside a label value");
      if (c == '\\') {
        HOPE_CHECK_MSG(i + 1 < line.size() &&
                           (line[i + 1] == '\\' || line[i + 1] == '"' ||
                            line[i + 1] == 'n'),
                       "undocumented escape in a label value");
        i++;  // consume the escaped char
      } else if (c == '"') {
        in_quotes = false;
      }
      continue;
    }
    if (c == '"') in_quotes = true;
    else if (c == '{') braces++;
    else if (c == '}') braces--;
  }
  HOPE_CHECK_MSG(!in_quotes, "unterminated label value quote");
  HOPE_CHECK_MSG(braces == 0, "unbalanced braces in a series line");
  // `series value`: the value after the last space must be numeric-ish
  // (AppendDouble/AppendU64 output, or "null" for non-finite).
  size_t sp = line.rfind(' ');
  HOPE_CHECK_MSG(sp != std::string_view::npos && sp + 1 < line.size(),
                 "series line has no value field");
}

double TakeDouble(hope::fuzz::FuzzInput* in) {
  uint64_t bits = in->TakeU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));  // NaN / Inf / denormals included
  return v;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  hope::fuzz::FuzzInput in(data, size);

  // Identifier-charset names and keys (program-controlled in production);
  // repeats across metrics drive the TYPE-line grouping.
  static constexpr const char* kNames[] = {
      "hope_ops_total", "hope_encode_ns", "a", "x_9",
  };
  static constexpr const char* kKeys[] = {"shard", "op", "k"};

  RegistrySnapshot snap;
  snap.ts_ns = static_cast<int64_t>(in.TakeU64());
  const size_t num_metrics = in.TakeByte() % 9;
  for (size_t m = 0; m < num_metrics; m++) {
    RegistrySnapshot::Metric metric;
    metric.name = kNames[in.TakeByte() % 4];
    const size_t num_labels = in.TakeByte() % 4;
    for (size_t l = 0; l < num_labels; l++)
      metric.labels.emplace_back(kKeys[in.TakeByte() % 3],
                                 in.TakeString(48));  // adversarial value
    switch (in.TakeByte() % 3) {
      case 0: metric.kind = MetricKind::kCounter; break;
      case 1: metric.kind = MetricKind::kGauge; break;
      default: metric.kind = MetricKind::kHistogram; break;
    }
    metric.value = TakeDouble(&in);
    metric.hist.count = in.TakeU64();
    metric.hist.p50 = in.TakeU64();
    metric.hist.p99 = in.TakeU64();
    metric.hist.p999 = in.TakeU64();
    metric.hist.max = in.TakeU64();
    metric.hist.mean = TakeDouble(&in);
    snap.metrics.push_back(std::move(metric));
  }

  const std::string json = snap.ToJson();
  HOPE_CHECK_MSG(json.find('\n') == std::string::npos,
                 "JSONL snapshot spans more than one line");
  HOPE_CHECK_MSG(JsonChecker(json).Valid(),
                 "snapshot JSON does not parse");

  const std::string prom = snap.ToPrometheus();
  size_t start = 0;
  while (start < prom.size()) {
    size_t end = prom.find('\n', start);
    if (end == std::string::npos) end = prom.size();
    CheckPromLine(std::string_view(prom).substr(start, end - start));
    start = end + 1;
  }
  return 0;
}
