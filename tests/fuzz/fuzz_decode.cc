// Fuzz target: Decoder::Decode over raw attacker-controlled bitstreams.
// hope_cli's decode subcommand feeds stdin hex straight into this path,
// so arbitrary bit salad must either decode or throw invalid_argument —
// never crash, loop, or read out of the trie.
//
// The first input byte selects a prebuilt dictionary (three schemes so
// both the 8-deep Single-Char trie and deep Hu-Tucker tries are walked);
// the next two bytes pick the claimed bit length, including the
// over-claim (bit_len > 8 * bytes) rejection path; the rest is the
// bitstream. For Single-Char the scheme is bijective on bytes, so any
// successfully decoded stream must re-encode to the exact same bits —
// a differential check that the decode trie and the encode dictionary
// agree code-for-code.
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "datasets/datasets.h"
#include "hope/hope.h"
#include "tests/fuzz/fuzz_input.h"

namespace {

using hope::Hope;
using hope::Scheme;

const Hope* DictFor(uint8_t selector) {
  // Built once per process from fixed samples: replay stays fast and the
  // fuzzer's coverage map is stable across inputs.
  static const auto* dicts = [] {
    auto samples = hope::GenerateDataset(hope::DatasetId::kEmail, 200,
                                         /*seed=*/21);
    auto* v = new std::vector<std::unique_ptr<Hope>>();
    for (Scheme s : {Scheme::kSingleChar, Scheme::kThreeGrams, Scheme::kAlm})
      v->push_back(Hope::Build(s, samples, /*dict_size_limit=*/1 << 10));
    return v;
  }();
  return (*dicts)[selector % dicts->size()].get();
}

bool FirstBitsEqual(std::string_view a, std::string_view b, size_t bits) {
  for (size_t i = 0; i < bits; i++) {
    int ba = (static_cast<uint8_t>(a[i / 8]) >> (7 - i % 8)) & 1;
    int bb = (static_cast<uint8_t>(b[i / 8]) >> (7 - i % 8)) & 1;
    if (ba != bb) return false;
  }
  return true;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  hope::fuzz::FuzzInput in(data, size);
  const uint8_t selector = in.TakeByte();
  const Hope* hope = DictFor(selector);

  // Two-byte bit-length claim: ranges past the stream on purpose so the
  // bit_len > 8 * size rejection is part of every run's surface.
  size_t claimed = in.TakeByte() | (static_cast<size_t>(in.TakeByte()) << 8);
  std::string_view stream = in.Rest();
  const size_t max_bits = stream.size() * 8;
  const size_t bit_len = claimed % (max_bits + 2);  // may exceed max_bits

  std::string decoded;
  try {
    decoded = hope->Decode(stream, bit_len);
  } catch (const std::invalid_argument&) {
    return 0;  // the documented rejection channel
  }
  HOPE_CHECK_MSG(bit_len <= max_bits,
                 "decode accepted a bit length past the input");

  if (hope->scheme() == Scheme::kSingleChar) {
    // Bijective scheme: one entry per byte, so decode and encode are
    // exact inverses on the bit level.
    size_t re_bits = 0;
    std::string re = hope->Encode(decoded, &re_bits);
    HOPE_CHECK_MSG(re_bits == bit_len,
                   "single-char re-encode changed the bit length");
    HOPE_CHECK_MSG(FirstBitsEqual(re, stream, bit_len),
                   "single-char re-encode changed the bit stream");
  } else {
    // Lossless schemes: decoded symbols re-encode to a decodable stream
    // (shape check only — interval alignment differs from the input's).
    size_t re_bits = 0;
    std::string re = hope->Encode(decoded, &re_bits);
    try {
      std::string again = hope->Decode(re, re_bits);
      HOPE_CHECK_MSG(again == decoded,
                     "decode(encode(decoded)) diverged from decoded");
    } catch (const std::exception&) {
      HOPE_CHECK_MSG(false, "re-encoded stream no longer decodes");
    }
  }
  return 0;
}
