#!/usr/bin/env python3
"""Regenerates the committed fuzz corpus under tests/fuzz/corpus/.

The corpus is deterministic and checked in: the replay ctests run it on
every build row, so each file doubles as a crash-regression test. The
fuzz_deserialize entries encode one malformed-blob bug class apiece from
the serialization-hardening PR (code.len 0/>64, bad symbol_len, huge
counts, non-prefix-free codes, ...): Deserialize must reject each one,
and if its validation is reverted the target's contract checks trap on
the replayed file.

Usage: python3 make_seeds.py [corpus-dir]   (default: ./corpus)
"""
import os
import struct
import sys

MAGIC = b"HOPEDICT1"

SINGLE_CHAR, DOUBLE_CHAR, ALM, THREE_GRAMS, FOUR_GRAMS, ALM_IMPROVED = range(6)


def entry(bound: bytes, symlen: int, code_bits: int, code_len: int) -> bytes:
    return (struct.pack("<I", len(bound)) + bound + struct.pack("<I", symlen)
            + struct.pack("<Q", code_bits) + bytes([code_len & 0xFF]))


def blob(scheme: int, entries: list, count: int = None) -> bytes:
    body = b"".join(entries)
    n = len(entries) if count is None else count
    return MAGIC + bytes([scheme]) + struct.pack("<I", n) + body


def single_char_entries():
    # 256 one-byte intervals, fixed 8-bit codes: the canonical accepted
    # blob (first bound is the empty string, standing for byte 0).
    out = []
    for i in range(256):
        bound = b"" if i == 0 else bytes([i])
        out.append(entry(bound, 1, i << 56, 8))
    return out


def alm_entries():
    # Four intervals, 2-bit codes — the smallest interesting VIFC dict.
    bounds = [b"", b"a", b"b", b"m"]
    return [entry(b, 1, i << 62, 2) for i, b in enumerate(bounds)]


def write(path: str, name: str, data: bytes):
    with open(os.path.join(path, name), "wb") as f:
        f.write(data)


def gen_deserialize(d: str):
    valid_sc = blob(SINGLE_CHAR, single_char_entries())
    valid_alm = blob(ALM, alm_entries())
    write(d, "valid_single_char", valid_sc)
    write(d, "valid_alm", valid_alm)
    # 3-grams default dictionary is the bitmap trie; short bounds only.
    write(d, "valid_3grams", blob(THREE_GRAMS, [
        entry(b"", 1, 0b00 << 62, 2),
        entry(b"a", 1, 0b01 << 62, 2),
        entry(b"ab", 2, 0b10 << 62, 2),
        entry(b"b", 1, 0b11 << 62, 2),
    ]))
    # Minimal accepted dictionary: one interval, one 1-bit code.
    write(d, "valid_minimal", blob(ALM, [entry(b"", 1, 0, 1)]))

    # --- malformed-blob bug classes (one file per class) --------------
    # A zero-length code would encode symbols to nothing: with the
    # validation reverted this dictionary is accepted and the probe walk
    # trips "at least one bit".
    write(d, "codelen_zero", blob(ALM, [entry(b"", 1, 0, 0)]))
    # Codes wider than the 64-bit accumulator: reverting the range check
    # sends len=65 into BitWriter/CodeBit shifts (UBSan traps).
    write(d, "codelen_65", blob(ALM, [
        entry(b"", 1, 0, 1), entry(b"a", 1, 1 << 63, 65)]))
    write(d, "codelen_255", blob(ALM, [entry(b"", 1, 0, 255)]))
    # symbol_len 0 spins the encode loop (consumed == 0); symbol_len
    # past the bound length overshoots remove_prefix.
    write(d, "symlen_zero", blob(ALM, [
        entry(b"", 1, 0b0 << 63, 1), entry(b"b", 0, 0b1 << 63, 1)]))
    write(d, "symlen_too_big", blob(ALM, [
        entry(b"", 1, 0b0 << 63, 1), entry(b"b", 3, 0b1 << 63, 1)]))
    # A corrupted count must not drive a huge reserve() before the
    # per-entry reads start failing.
    write(d, "count_huge", blob(ALM, [], count=0xFFFFFFFF))
    write(d, "count_one_past", blob(ALM, alm_entries(), count=5))
    # Prefix/duplicate codes break unique decodability.
    write(d, "nonprefix_codes", blob(ALM, [
        entry(b"", 1, 0b0 << 63, 1), entry(b"a", 1, 0b00 << 62, 2)]))
    write(d, "dup_codes", blob(ALM, [
        entry(b"", 1, 0b1 << 63, 1), entry(b"a", 1, 0b1 << 63, 1)]))
    # Boundary ordering and the implicit first interval.
    write(d, "unsorted_bounds", blob(ALM, [
        entry(b"", 1, 0b00 << 62, 2), entry(b"b", 1, 0b01 << 62, 2),
        entry(b"a", 1, 0b10 << 62, 2)]))
    write(d, "dup_bounds", blob(ALM, [
        entry(b"", 1, 0b00 << 62, 2), entry(b"a", 1, 0b01 << 62, 2),
        entry(b"a", 1, 0b10 << 62, 2)]))
    write(d, "first_bound_nonempty", blob(ALM, [
        entry(b"a", 1, 0b0 << 63, 1), entry(b"b", 1, 0b1 << 63, 1)]))
    # Nonzero bits beyond code.len smear into the next code in the
    # BitWriter's branch-free OR.
    write(d, "padding_bits", blob(ALM, [
        entry(b"", 1, (0b00 << 62) | 1, 2), entry(b"a", 1, 0b01 << 62, 2),
        entry(b"b", 1, 0b10 << 62, 2), entry(b"m", 1, 0b11 << 62, 2)]))
    # Array-dictionary structural mismatch: a Single-Char slot claiming
    # a 2-byte symbol (the release-mode overshoot fixed alongside the
    # HOPE_CHECK adoption).
    sc = single_char_entries()
    sc[65] = entry(bytes([65]), 2, 65 << 56, 8)
    write(d, "array_symlen_mismatch", blob(SINGLE_CHAR, sc))
    # Framing: truncation, trailing garbage, busted magic, huge bound.
    write(d, "truncated", valid_alm[:len(valid_alm) - 7])
    write(d, "trailing_garbage", valid_alm + b"\x00")
    write(d, "bad_magic", b"HOPEDICT2" + valid_alm[len(MAGIC):])
    write(d, "bad_scheme", MAGIC + bytes([6]) + valid_alm[len(MAGIC) + 1:])
    write(d, "boundlen_huge", MAGIC + bytes([ALM]) + struct.pack("<I", 1)
          + struct.pack("<I", 0xFFFFFFFF) + b"a" * 32)
    write(d, "empty", b"")
    write(d, "magic_only", MAGIC)


def gen_decode(d: str):
    # [dict selector][claimed bits lo][claimed bits hi][bitstream...]
    write(d, "single_char_ascii", bytes([0, 24, 0]) + b"abc")
    write(d, "single_char_exact", bytes([0, 8, 0]) + b"\x41")
    write(d, "three_grams_salad", bytes([1, 200, 0]) + bytes(range(32)))
    write(d, "alm_salad", bytes([2, 64, 0]) + b"\xff" * 16)
    write(d, "overclaim", bytes([0, 255, 255]) + b"xy")
    write(d, "empty_stream", bytes([1, 0, 0]))
    write(d, "partial_code", bytes([0, 3, 0]) + b"\x80")


def gen_encode_diff(d: str):
    # Repeated [len byte][bytes] keys (fuzz_input TakeString framing).
    def pack(keys):
        return b"".join(bytes([len(k)]) + k for k in keys)

    write(d, "emails", pack([b"alice@example.com", b"bob@test.org"]))
    write(d, "binary", pack([b"\x00\x01\x02", b"\xff\xfe\xfd", b"\x00" * 8]))
    write(d, "boundary_straddle", pack(
        [b"a", b"ab", b"abc", b"abcd", b"abcde"]))
    write(d, "high_bytes", pack([b"\xff" * 33, b"\x80\x7f" * 10]))
    write(d, "empty_and_one", pack([b"", b"z"]))
    write(d, "long_run", pack([b"m" * 64, b"mm" * 20]))


def gen_parse(d: str):
    def argv(*toks):
        return b"\x00".join(toks)

    write(d, "serve_full", argv(b"double-char", b"1000", b"4", b"8",
                                b"--stats-file", b"/tmp/s.jsonl",
                                b"--stats-interval", b"250"))
    write(d, "serve_bad_flag", argv(b"-x", b"100"))
    write(d, "serve_missing_value", argv(b"--stats-file"))
    write(d, "serve_too_many", argv(b"alm", b"1", b"2", b"3", b"4"))
    write(d, "numbers", argv(b"0", b"1", b"007", b"4294967296",
                             b"18446744073709551615",
                             b"18446744073709551616", b"12x", b"+7", b" 7"))
    write(d, "schemes", argv(b"single-char", b"3-grams", b"alm-improved",
                             b"Single-Char", b"alm "))
    write(d, "hex", argv(b"deadbeef", b"DEADBEEF", b"abc", b"0g",
                         b"00ff10"))


def gen_telemetry(d: str):
    # Raw driver bytes for the snapshot builder; the interesting content
    # is label values with quotes/backslashes/newlines/control bytes.
    write(d, "quote_label", bytes([0, 0, 0, 0, 0, 0, 0, 0,  # ts
                                   2,                       # metrics
                                   0, 1, 0]) + bytes([12]) + b'he said "hi"'
          + bytes([0]) + b"\x00" * 40)
    write(d, "backslash_newline", bytes([1] * 9) + bytes([1, 1, 1])
          + bytes([10]) + b'a\\b\nc\rd\te' + b"\x02" * 48)
    write(d, "control_bytes", bytes([7] * 12) + bytes([8])
          + bytes(range(1, 9)) + b"\xff" * 40)
    write(d, "nan_inf", bytes([3] * 10) + b"\x00\x00\x00\x00\x00\x00\xf0\x7f"
          + b"\x01\x00\x00\x00\x00\x00\xf0\xff" + b"\x55" * 30)
    write(d, "many_metrics", bytes([200]) * 120)


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else \
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "corpus")
    gens = {
        "fuzz_deserialize": gen_deserialize,
        "fuzz_decode": gen_decode,
        "fuzz_encode_diff": gen_encode_diff,
        "fuzz_parse": gen_parse,
        "fuzz_telemetry_export": gen_telemetry,
    }
    for target, gen in gens.items():
        d = os.path.join(root, target)
        os.makedirs(d, exist_ok=True)
        gen(d)
        print(f"{target}: {len(os.listdir(d))} seeds")


if __name__ == "__main__":
    main()
