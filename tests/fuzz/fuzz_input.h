// Tiny deterministic consumer over a fuzz input: the structure-aware
// targets slice one flat byte buffer into ints, strings, and choices.
// Exhaustion is not an error — every Take* degrades to zeros/empties so
// a truncated input still drives a deterministic (just shorter) test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace hope::fuzz {

class FuzzInput {
 public:
  FuzzInput(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }

  uint8_t TakeByte() { return pos_ < size_ ? data_[pos_++] : 0; }

  bool TakeBool() { return (TakeByte() & 1) != 0; }

  /// Little-endian u64 assembled from up to 8 remaining bytes.
  uint64_t TakeU64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; i++)
      v |= static_cast<uint64_t>(TakeByte()) << (8 * i);
    return v;
  }

  /// Uniform-ish pick in [0, bound) — bound must be nonzero.
  uint64_t TakeBelow(uint64_t bound) { return TakeU64() % bound; }

  /// Length-prefixed string: one byte picks the length (capped at
  /// max_len and at what's left), then that many raw bytes.
  std::string TakeString(size_t max_len) {
    size_t len = TakeByte();
    if (len > max_len) len = max_len;
    if (len > remaining()) len = remaining();
    std::string out(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return out;
  }

  /// Everything not yet consumed, without consuming it.
  std::string_view Rest() const {
    return {reinterpret_cast<const char*>(data_ + pos_), size_ - pos_};
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace hope::fuzz
