// Corpus-replay driver: links any LLVMFuzzerTestOneInput target into a
// plain binary that runs every file under the given corpus paths once.
// This is the half of the dual-mode harness that needs no libFuzzer —
// it runs on every CI row (gcc included) and under ASan/UBSan/TSan, so
// the committed crash-regression corpus is replayed on each build
// configuration even where -fsanitize=fuzzer is unavailable.
//
// Exit codes: 0 all inputs replayed, 2 a corpus path is missing or
// unreadable (a misconfigured test must not pass silently). A finding
// aborts the process (HOPE_CHECK / sanitizer report), which ctest
// reports as a failure pointing at the offending file via stderr.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool ReadFile(const std::filesystem::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (int i = 1; i < argc; i++) {
    const fs::path p = argv[i];
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p, ec))
        if (entry.is_regular_file()) files.push_back(entry.path());
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::fprintf(stderr, "replay: missing corpus path %s\n", argv[i]);
      return 2;
    }
  }
  std::sort(files.begin(), files.end());  // deterministic replay order

  // The empty input is always part of the contract.
  static const uint8_t kEmpty[1] = {0};
  LLVMFuzzerTestOneInput(kEmpty, 0);

  size_t replayed = 0;
  for (const auto& f : files) {
    std::string bytes;
    if (!ReadFile(f, &bytes)) {
      std::fprintf(stderr, "replay: cannot read %s\n", f.c_str());
      return 2;
    }
    std::fprintf(stderr, "replay: %s (%zu bytes)\n", f.c_str(), bytes.size());
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    replayed++;
  }
  std::printf("replayed %zu corpus inputs\n", replayed);
  return 0;
}
