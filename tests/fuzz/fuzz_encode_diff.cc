// Differential fuzz target for the encode hot path: for fuzz-derived
// keys, every devirtualized/SIMD leg — EncodeSpan (traced and untraced),
// EncodeMulti's interleaved descent, and the Encode facade — must be
// byte-identical to the naive per-symbol virtual Lookup loop, across
// every compatible scheme × dictionary implementation. This is the
// fuzzing twin of simd_equivalence_test: the unit test pins curated
// keys, the fuzzer feeds adversarial ones (NULs, 0xFF runs, boundary
// straddles) into exactly the same oracle.
//
// The CMake registration replays the corpus under HOPE_FUSED=never,
// HOPE_INTERLEAVE=never, and HOPE_POPCNT=never (plus the HOPE_NO_SIMD
// CI build), so each escape hatch's path diffs against the same scalar
// reference. Env vars are read at dictionary construction / descent
// time, before any fuzz input arrives.
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "datasets/datasets.h"
#include "hope/bit_writer.h"
#include "hope/hope.h"
#include "tests/fuzz/fuzz_input.h"

namespace {

using hope::BitWriter;
using hope::Dictionary;
using hope::DictImpl;
using hope::EncodeTrace;
using hope::Hope;
using hope::Scheme;

bool Compatible(Scheme scheme, DictImpl impl) {
  switch (impl) {
    case DictImpl::kArray:
      return scheme == Scheme::kSingleChar || scheme == Scheme::kDoubleChar;
    case DictImpl::kBitmapTrie:
      return scheme == Scheme::kSingleChar || scheme == Scheme::kDoubleChar ||
             scheme == Scheme::kThreeGrams || scheme == Scheme::kFourGrams;
    default:
      return true;
  }
}

const std::vector<std::unique_ptr<Hope>>& AllDicts() {
  // Built once per process: same fixed samples as the equivalence test's
  // spirit, small dictionary limit to keep replay startup short.
  static const auto* dicts = [] {
    auto keys = hope::GenerateDataset(hope::DatasetId::kEmail, 120,
                                      /*seed=*/31);
    auto urls = hope::GenerateDataset(hope::DatasetId::kUrl, 80, /*seed=*/32);
    keys.insert(keys.end(), urls.begin(), urls.end());
    auto* v = new std::vector<std::unique_ptr<Hope>>();
    constexpr Scheme kSchemes[] = {
        Scheme::kSingleChar, Scheme::kDoubleChar, Scheme::kAlm,
        Scheme::kThreeGrams, Scheme::kFourGrams,  Scheme::kAlmImproved,
    };
    constexpr DictImpl kImpls[] = {
        DictImpl::kBinarySearch,
        DictImpl::kArray,
        DictImpl::kBitmapTrie,
        DictImpl::kArt,
    };
    for (Scheme s : kSchemes)
      for (DictImpl i : kImpls) {
        if (!Compatible(s, i)) continue;
        v->push_back(Hope::Build(s, keys, /*dict_size_limit=*/1 << 10,
                                 /*stats=*/nullptr, i));
      }
    return v;
  }();
  return *dicts;
}

/// The scalar reference: the per-symbol virtual Lookup loop, with the
/// completeness contract checked at every step.
std::string RefEncode(const Dictionary& dict, std::string_view key,
                      size_t* bit_len, std::vector<EncodeTrace>* trace) {
  BitWriter writer;
  std::string_view src = key;
  size_t pos = 0;
  while (!src.empty()) {
    if (trace != nullptr)
      trace->push_back({static_cast<uint32_t>(pos),
                        static_cast<uint32_t>(writer.total_bits())});
    hope::LookupResult r = dict.Lookup(src);
    HOPE_CHECK_MSG(r.consumed >= 1 && r.consumed <= src.size(),
                   "lookup consumed bytes outside [1, remaining]");
    writer.Append(r.code);
    src.remove_prefix(r.consumed);
    pos += r.consumed;
  }
  *bit_len = writer.total_bits();
  return writer.TakeBytes();
}

void DiffOneDict(const Hope& hope, const std::vector<std::string>& keys) {
  const Dictionary& dict = hope.dict();
  for (const std::string& key : keys) {
    size_t ref_bits = 0;
    std::vector<EncodeTrace> ref_trace;
    std::string ref = RefEncode(dict, key, &ref_bits, &ref_trace);

    // Untraced EncodeSpan — the Encode hot path.
    BitWriter w;
    dict.EncodeSpan(key, 0, &w, nullptr);
    HOPE_CHECK_MSG(w.total_bits() == ref_bits,
                   "EncodeSpan bit length diverged from the Lookup loop");
    HOPE_CHECK_MSG(w.TakeBytes() == ref,
                   "EncodeSpan bytes diverged from the Lookup loop");

    // Traced EncodeSpan — the batch prefix-reuse path must record the
    // exact same lookup boundaries.
    BitWriter wt;
    std::vector<EncodeTrace> trace;
    dict.EncodeSpan(key, 0, &wt, &trace);
    HOPE_CHECK_MSG(wt.TakeBytes() == ref,
                   "traced EncodeSpan bytes diverged");
    HOPE_CHECK_MSG(trace.size() == ref_trace.size(),
                   "traced EncodeSpan recorded a different lookup count");
    for (size_t i = 0; i < trace.size(); i++) {
      HOPE_CHECK_MSG(trace[i].src_pos == ref_trace[i].src_pos &&
                         trace[i].bit_pos == ref_trace[i].bit_pos,
                     "traced EncodeSpan recorded different boundaries");
    }

    // Facade + losslessness: decode must reproduce the key exactly.
    size_t bits = 0;
    std::string enc = hope.Encode(key, &bits);
    HOPE_CHECK_MSG(enc == ref && bits == ref_bits,
                   "Encode facade diverged from the Lookup loop");
    HOPE_CHECK_MSG(hope.Decode(enc, bits) == key,
                   "decode(encode(key)) is not the key");
  }

  // EncodeMulti over the whole batch — the interleaved descent.
  std::vector<std::string_view> views(keys.begin(), keys.end());
  std::vector<std::string> out(keys.size());
  std::vector<size_t> bits(keys.size());
  dict.EncodeMulti(views.data(), views.size(), out.data(), bits.data());
  for (size_t i = 0; i < keys.size(); i++) {
    size_t ref_bits = 0;
    std::string ref = RefEncode(dict, keys[i], &ref_bits, nullptr);
    HOPE_CHECK_MSG(out[i] == ref && bits[i] == ref_bits,
                   "EncodeMulti diverged from the Lookup loop");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  hope::fuzz::FuzzInput in(data, size);
  // Up to 8 length-prefixed keys of up to 64 bytes; always include the
  // empty key (batch edge) so every input exercises it.
  std::vector<std::string> keys;
  keys.emplace_back();
  while (in.remaining() > 0 && keys.size() < 8)
    keys.push_back(in.TakeString(64));
  for (const auto& hope : AllDicts()) DiffOneDict(*hope, keys);
  return 0;
}
