// Randomized SuRF range-query differential test: a filter must never
// answer "definitely absent" for a range that actually contains a key
// (no false negatives), across suffix modes, key shapes and range kinds.
// Also measures that it does prune (answers false for a healthy fraction
// of empty ranges).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "datasets/datasets.h"
#include "hope/hope.h"
#include "surf/surf.h"

namespace hope {
namespace {

struct RangeCase {
  std::vector<std::string> keys;  // sorted unique
  std::set<std::string> present;
};

RangeCase MakeCase(std::vector<std::string> raw) {
  std::sort(raw.begin(), raw.end());
  raw.erase(std::unique(raw.begin(), raw.end()), raw.end());
  RangeCase c;
  c.present.insert(raw.begin(), raw.end());
  c.keys = std::move(raw);
  return c;
}

bool RefRangeNonEmpty(const std::set<std::string>& present,
                      const std::string& lo, const std::string& hi) {
  auto it = present.lower_bound(lo);
  return it != present.end() && *it <= hi;
}

class SurfRangeTest : public ::testing::TestWithParam<SurfSuffix> {};

TEST_P(SurfRangeTest, NoFalseNegativesRandomizedRanges) {
  for (uint64_t seed : {301, 302}) {
    RangeCase c = MakeCase(GenerateEmails(4000, seed));
    Surf surf(c.keys, GetParam());
    std::mt19937_64 rng(seed * 7);
    size_t empty_ranges = 0, pruned = 0;
    for (int iter = 0; iter < 3000; iter++) {
      // Range endpoints: mutations of existing keys.
      std::string lo = c.keys[rng() % c.keys.size()];
      switch (rng() % 4) {
        case 0: lo.pop_back(); break;
        case 1: lo.back() = static_cast<char>(lo.back() - 1); break;
        case 2: lo += static_cast<char>(rng() % 256); break;
        default: break;
      }
      std::string hi = lo;
      switch (rng() % 3) {
        case 0: hi.back() = static_cast<char>(hi.back() + 1); break;
        case 1: hi += std::string(1 + rng() % 3, '\x7f'); break;
        default: hi += "zzz"; break;
      }
      if (hi < lo) std::swap(lo, hi);
      bool ref = RefRangeNonEmpty(c.present, lo, hi);
      bool got = surf.MayContainRange(lo, hi);
      ASSERT_TRUE(got || !ref)
          << "false negative for range [" << lo << ", " << hi << "]";
      if (!ref) {
        empty_ranges++;
        pruned += !got;
      }
    }
    // Most generated empty ranges sit right next to stored keys, where
    // the truncated trie cannot prove emptiness (false positives by
    // design); but some diverge early and those must be pruned.
    if (empty_ranges > 200) {
      EXPECT_GT(pruned, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Suffixes, SurfRangeTest,
                         ::testing::Values(SurfSuffix::kNone,
                                           SurfSuffix::kHash8,
                                           SurfSuffix::kReal8),
                         [](const auto& info) {
                           switch (info.param) {
                             case SurfSuffix::kNone: return "None";
                             case SurfSuffix::kHash8: return "Hash8";
                             default: return "Real8";
                           }
                         });

TEST(SurfRangeTest, EncodedRangesThroughHope) {
  // End-to-end with HOPE pair encoding: the filter over encoded keys must
  // answer every [key, bumped-key] range positively.
  auto keys = GenerateUrls(3000, 303);
  auto hope = Hope::Build(Scheme::kDoubleChar, SampleKeys(keys, 0.05));
  std::vector<std::string> enc;
  enc.reserve(keys.size());
  for (const auto& k : keys) enc.push_back(hope->Encode(k));
  RangeCase c = MakeCase(std::move(enc));
  Surf surf(c.keys, SurfSuffix::kReal8);
  for (size_t i = 0; i < keys.size(); i += 3) {
    std::string end = keys[i];
    end.back() = static_cast<char>(end.back() + 1);
    auto [lo, hi] = hope->EncodePair(keys[i], end);
    ASSERT_TRUE(surf.MayContainRange(lo, hi)) << keys[i];
  }
}

}  // namespace
}  // namespace hope
