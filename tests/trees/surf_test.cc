#include "surf/surf.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "datasets/datasets.h"

namespace hope {
namespace {

std::vector<std::string> SortedUnique(std::vector<std::string> keys) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

class SurfSuffixTest : public ::testing::TestWithParam<SurfSuffix> {};

TEST_P(SurfSuffixTest, NoFalseNegativesPoint) {
  auto keys = SortedUnique(GenerateEmails(5000, 71));
  Surf surf(keys, GetParam());
  for (const auto& key : keys)
    ASSERT_TRUE(surf.MayContain(key)) << key;
}

TEST_P(SurfSuffixTest, NoFalseNegativesRange) {
  auto keys = SortedUnique(GenerateEmails(3000, 72));
  Surf surf(keys, GetParam());
  std::mt19937_64 rng(73);
  for (int i = 0; i < 500; i++) {
    const std::string& k = keys[rng() % keys.size()];
    // Closed range [k, k+1-last-char] as the paper builds for YCSB E.
    std::string end = k;
    end.back() = static_cast<char>(end.back() + 1);
    ASSERT_TRUE(surf.MayContainRange(k, end)) << k;
    // Any range that contains an existing key must answer true.
    std::string lo = k.substr(0, k.size() - 1);
    ASSERT_TRUE(surf.MayContainRange(lo, k)) << k;
  }
}

TEST_P(SurfSuffixTest, BinaryKeysWithZeros) {
  std::mt19937_64 rng(74);
  std::vector<std::string> keys;
  for (int i = 0; i < 2000; i++) {
    std::string s;
    size_t len = 1 + rng() % 16;
    for (size_t j = 0; j < len; j++)
      s.push_back(static_cast<char>(rng() % 3 == 0 ? 0 : rng() % 256));
    keys.push_back(std::move(s));
  }
  keys = SortedUnique(std::move(keys));
  Surf surf(keys, GetParam());
  for (const auto& key : keys) ASSERT_TRUE(surf.MayContain(key));
}

INSTANTIATE_TEST_SUITE_P(Suffixes, SurfSuffixTest,
                         ::testing::Values(SurfSuffix::kNone,
                                           SurfSuffix::kHash8,
                                           SurfSuffix::kReal8),
                         [](const auto& info) {
                           switch (info.param) {
                             case SurfSuffix::kNone: return "None";
                             case SurfSuffix::kHash8: return "Hash8";
                             default: return "Real8";
                           }
                         });

TEST(SurfTest, SuffixBitsReduceFalsePositives) {
  auto all = GenerateEmails(30000, 75);
  std::vector<std::string> keys(all.begin(), all.begin() + 20000);
  std::vector<std::string> probes(all.begin() + 20000, all.end());
  keys = SortedUnique(std::move(keys));
  std::set<std::string> present(keys.begin(), keys.end());

  Surf plain(keys, SurfSuffix::kNone);
  Surf real8(keys, SurfSuffix::kReal8);
  Surf hash8(keys, SurfSuffix::kHash8);
  size_t fp_plain = 0, fp_real = 0, fp_hash = 0, negatives = 0;
  for (const auto& p : probes) {
    if (present.count(p)) continue;
    negatives++;
    fp_plain += plain.MayContain(p);
    fp_real += real8.MayContain(p);
    fp_hash += hash8.MayContain(p);
  }
  ASSERT_GT(negatives, 5000u);
  // Fig. 11: suffix bits cut the false-positive rate substantially.
  EXPECT_LT(fp_real * 2, fp_plain);
  EXPECT_LT(fp_hash * 2, fp_plain);
}

TEST(SurfTest, AbsentRangeCanReturnFalse) {
  std::vector<std::string> keys{"apple", "banana", "cherry", "grape"};
  Surf surf(keys, SurfSuffix::kReal8);
  // A range strictly between stored keys with diverging first byte.
  EXPECT_FALSE(surf.MayContainRange("x", "z"));
  EXPECT_TRUE(surf.MayContainRange("a", "b"));
  EXPECT_TRUE(surf.MayContainRange("apple", "apple\x01"));
  EXPECT_FALSE(surf.MayContainRange("dog", "fig"));
}

TEST(SurfTest, MemoryFarSmallerThanKeys) {
  auto keys = SortedUnique(GenerateUrls(20000, 76));
  size_t raw = 0;
  for (auto& k : keys) raw += k.size();
  Surf surf(keys, SurfSuffix::kReal8);
  EXPECT_LT(surf.MemoryBytes(), raw / 4);  // succinct: way below raw keys
  EXPECT_GT(surf.AverageLeafDepth(), 1.0);
}

TEST(SurfTest, EmptyAndSingle) {
  Surf empty(std::vector<std::string>{}, SurfSuffix::kNone);
  EXPECT_FALSE(empty.MayContain("x"));
  EXPECT_FALSE(empty.MayContainRange("a", "b"));

  Surf one(std::vector<std::string>{"solo"}, SurfSuffix::kReal8);
  EXPECT_TRUE(one.MayContain("solo"));
  EXPECT_FALSE(one.MayContain("tolo"));
  EXPECT_TRUE(one.MayContainRange("snake", "sound"));
  EXPECT_FALSE(one.MayContainRange("t", "u"));
}

TEST(SurfTest, PrefixKeyHandling) {
  std::vector<std::string> keys{"a", "ab", "abc", "abd", "b"};
  Surf surf(keys, SurfSuffix::kReal8);
  for (const auto& k : keys) EXPECT_TRUE(surf.MayContain(k)) << k;
  EXPECT_FALSE(surf.MayContain("c"));
  EXPECT_FALSE(surf.MayContain(""));
}

}  // namespace
}  // namespace hope
