// Shared reference-model harness for the search-tree substrates: drives a
// tree (Insert/Lookup/Scan API) against std::map on the same operations
// and compares every result.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "datasets/datasets.h"

namespace hope {

/// Key corpora exercised by every tree test: realistic datasets plus
/// adversarial shapes (shared prefixes, prefix keys, embedded zeros,
/// high bytes).
inline std::string CorpusName(const ::testing::TestParamInfo<size_t>& info) {
  static const char* names[] = {"Email", "Url", "PrefixChains", "Binary"};
  return names[info.param];
}

inline std::vector<std::vector<std::string>> TestKeyCorpora() {
  std::vector<std::vector<std::string>> corpora;
  corpora.push_back(GenerateEmails(4000, 101));
  corpora.push_back(GenerateUrls(1500, 102));
  // Prefix chains: every key is a prefix of the next.
  std::vector<std::string> chains;
  for (int c = 0; c < 20; c++) {
    std::string base(1, static_cast<char>('a' + c));
    for (int i = 1; i <= 30; i++) chains.push_back(base + std::string(i, 'x'));
    chains.push_back(base);
  }
  corpora.push_back(std::move(chains));
  // Binary keys with embedded zeros and 0xFF (HOPE-encoded keys look like
  // this).
  std::mt19937_64 rng(103);
  std::set<std::string> binary_set;  // de-duplicated: the erase phase
                                     // removes each key exactly once
  while (binary_set.size() < 3000) {
    std::string s;
    size_t len = 1 + rng() % 24;
    for (size_t j = 0; j < len; j++)
      s.push_back(static_cast<char>(rng() % 4 == 0 ? 0
                                    : rng() % 4 == 1 ? 0xFF
                                                     : rng() % 256));
    binary_set.insert(std::move(s));
  }
  std::vector<std::string> binary(binary_set.begin(), binary_set.end());
  std::shuffle(binary.begin(), binary.end(), rng);
  corpora.push_back(std::move(binary));
  return corpora;
}

/// Inserts all keys, then cross-checks point lookups (hits and misses)
/// and range scans against std::map.
template <typename Tree>
void RunReferenceTest(Tree* tree, const std::vector<std::string>& keys,
                      uint64_t seed) {
  std::map<std::string, uint64_t> ref;
  uint64_t v = 1;
  for (const auto& key : keys) {
    tree->Insert(key, v);
    ref[key] = v;
    v++;
  }
  ASSERT_EQ(tree->size(), ref.size());

  // Point lookups: every inserted key hits with the right value.
  for (const auto& [key, val] : ref) {
    uint64_t got = 0;
    ASSERT_TRUE(tree->Lookup(key, &got)) << "missing key of size "
                                         << key.size();
    ASSERT_EQ(got, val);
  }
  // Misses: mutated keys absent from the reference.
  std::mt19937_64 rng(seed);
  size_t checked = 0;
  for (size_t i = 0; i < keys.size() && checked < 500; i += 7, checked++) {
    std::string probe = keys[i];
    probe.push_back(static_cast<char>(rng() % 256));
    if (ref.count(probe)) continue;
    ASSERT_FALSE(tree->Lookup(probe, nullptr));
    if (!probe.empty()) {
      probe.pop_back();
      probe.pop_back();
      if (!ref.count(probe)) {
        ASSERT_FALSE(tree->Lookup(probe, nullptr));
      }
    }
  }
  // Overwrite semantics.
  tree->Insert(keys[0], 999999);
  uint64_t got = 0;
  ASSERT_TRUE(tree->Lookup(keys[0], &got));
  ASSERT_EQ(got, 999999u);
  ASSERT_EQ(tree->size(), ref.size());
  tree->Insert(keys[0], ref[keys[0]]);

  // Deletion phase: erase ~half the keys (every other, plus misses),
  // then verify lookups, scans, and re-insertion.
  for (size_t i = 0; i < keys.size(); i += 2) {
    ASSERT_TRUE(tree->Erase(keys[i])) << "erase missed key " << i;
    ref.erase(keys[i]);
  }
  ASSERT_FALSE(tree->Erase("@@definitely-not-present@@"));
  if (!ref.empty()) {
    ASSERT_FALSE(tree->Erase(ref.begin()->first + std::string(1, '\x7f')));
  }
  ASSERT_EQ(tree->size(), ref.size());
  for (size_t i = 0; i < keys.size(); i++) {
    uint64_t got = 0;
    bool want = ref.count(keys[i]) > 0;
    ASSERT_EQ(tree->Lookup(keys[i], &got), want) << "post-erase lookup " << i;
    if (want) {
      ASSERT_EQ(got, ref[keys[i]]);
    }
  }
  // Scans over the half-deleted tree.
  for (size_t i = 0; i < keys.size(); i += 37) {
    std::vector<uint64_t> got_vals;
    tree->Scan(keys[i], 15, &got_vals);
    std::vector<uint64_t> want_vals;
    for (auto it = ref.lower_bound(keys[i]);
         it != ref.end() && want_vals.size() < 15; ++it)
      want_vals.push_back(it->second);
    ASSERT_EQ(got_vals, want_vals) << "post-erase scan from " << i;
  }
  // Re-insert the erased keys; the tree must fully recover.
  for (size_t i = 0; i < keys.size(); i += 2) {
    tree->Insert(keys[i], i + 1);
    ref[keys[i]] = i + 1;
  }
  ASSERT_EQ(tree->size(), ref.size());

  // Range scans from existing keys, mutated keys, and extremes.
  for (int iter = 0; iter < 200; iter++) {
    std::string start;
    switch (iter % 4) {
      case 0: start = keys[rng() % keys.size()]; break;
      case 1: {
        start = keys[rng() % keys.size()];
        start.push_back(static_cast<char>(rng() % 256));
        break;
      }
      case 2: {
        start = keys[rng() % keys.size()];
        if (!start.empty()) start.pop_back();
        break;
      }
      default: start = std::string(1, static_cast<char>(rng() % 256)); break;
    }
    size_t count = 1 + rng() % 40;
    std::vector<uint64_t> got_vals;
    size_t produced = tree->Scan(start, count, &got_vals);
    std::vector<uint64_t> want_vals;
    for (auto it = ref.lower_bound(start);
         it != ref.end() && want_vals.size() < count; ++it)
      want_vals.push_back(it->second);
    ASSERT_EQ(produced, want_vals.size()) << "scan from key iter " << iter;
    ASSERT_EQ(got_vals, want_vals) << "scan mismatch at iter " << iter;
  }
}

}  // namespace hope
