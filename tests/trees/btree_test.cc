#include "btree/btree.h"

#include <gtest/gtest.h>

#include "tests/trees/tree_test_utils.h"

namespace hope {
namespace {

TEST(BTreeTest, EmptyTree) {
  BTree t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.Lookup("x", nullptr));
  EXPECT_EQ(t.Scan("", 10, nullptr), 0u);
  EXPECT_EQ(t.Height(), 0);
  EXPECT_EQ(t.CheckInvariants(), "");
}

TEST(BTreeTest, SingleKey) {
  BTree t;
  t.Insert("hello", 7);
  uint64_t v = 0;
  EXPECT_TRUE(t.Lookup("hello", &v));
  EXPECT_EQ(v, 7u);
  EXPECT_FALSE(t.Lookup("hell", nullptr));
  EXPECT_FALSE(t.Lookup("hello!", nullptr));
  EXPECT_EQ(t.Height(), 1);
}

class BTreeCorpusTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BTreeCorpusTest, MatchesReferenceModel) {
  auto corpora = TestKeyCorpora();
  BTree t;
  RunReferenceTest(&t, corpora[GetParam()], 11 + GetParam());
  EXPECT_EQ(t.CheckInvariants(), "");
}

INSTANTIATE_TEST_SUITE_P(Corpora, BTreeCorpusTest,
                         ::testing::Values(0, 1, 2, 3), CorpusName);

TEST(BTreeTest, SortedInsertionKeepsInvariants) {
  auto keys = GenerateEmails(3000, 55);
  std::sort(keys.begin(), keys.end());
  BTree t;
  for (size_t i = 0; i < keys.size(); i++) t.Insert(keys[i], i);
  EXPECT_EQ(t.CheckInvariants(), "");
  EXPECT_EQ(t.size(), keys.size());
  // Full scan returns all values in key order.
  std::vector<uint64_t> vals;
  EXPECT_EQ(t.Scan("", keys.size() + 10, &vals), keys.size());
  for (size_t i = 0; i + 1 < vals.size(); i++)
    EXPECT_TRUE(keys[vals[i]] < keys[vals[i + 1]]);
}

TEST(BTreeTest, MemoryGrowsWithKeyBytes) {
  BTree small, large;
  for (int i = 0; i < 1000; i++) {
    std::string k = "k" + std::to_string(i);
    small.Insert(k, i);
    large.Insert(k + std::string(64, 'x') + k, i);
  }
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes() + 50000u);
}

TEST(BTreeTest, HeightIsLogarithmic) {
  BTree t;
  auto keys = GenerateEmails(10000, 56);
  for (size_t i = 0; i < keys.size(); i++) t.Insert(keys[i], i);
  // fanout >= 8 after splits: height <= log_8(10000) + 2 ~ 7.
  EXPECT_LE(t.Height(), 7);
  EXPECT_GE(t.Height(), 3);
}

}  // namespace
}  // namespace hope
