#include "art/art.h"

#include <gtest/gtest.h>

#include "tests/trees/tree_test_utils.h"

namespace hope {
namespace {

TEST(ArtTest, EmptyTree) {
  Art t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.Lookup("x", nullptr));
  EXPECT_EQ(t.Scan("", 10, nullptr), 0u);
  EXPECT_EQ(t.CheckInvariants(), "");
}

TEST(ArtTest, PrefixKeys) {
  // Keys that are strict prefixes of other keys must coexist (terminator
  // leaves, no key padding).
  Art t;
  t.Insert("a", 1);
  t.Insert("ab", 2);
  t.Insert("abc", 3);
  t.Insert("abcd", 4);
  t.Insert("b", 5);
  uint64_t v = 0;
  for (auto [k, want] : std::vector<std::pair<const char*, uint64_t>>{
           {"a", 1}, {"ab", 2}, {"abc", 3}, {"abcd", 4}, {"b", 5}}) {
    EXPECT_TRUE(t.Lookup(k, &v)) << k;
    EXPECT_EQ(v, want);
  }
  EXPECT_FALSE(t.Lookup("abcde", nullptr));
  EXPECT_FALSE(t.Lookup("", nullptr));
  EXPECT_EQ(t.CheckInvariants(), "");
  // Scan in key order.
  std::vector<uint64_t> vals;
  EXPECT_EQ(t.Scan("a", 10, &vals), 5u);
  EXPECT_EQ(vals, (std::vector<uint64_t>{1, 2, 3, 4, 5}));
}

TEST(ArtTest, LongCommonPrefixBeyondStoredBytes) {
  // Prefixes longer than the 8 stored bytes exercise the optimistic path
  // and the pessimistic fallbacks (insert splits, scans).
  Art t;
  std::string common(40, 'p');
  t.Insert(common + "alpha", 1);
  t.Insert(common + "beta", 2);
  t.Insert(common + "gamma", 3);
  uint64_t v = 0;
  EXPECT_TRUE(t.Lookup(common + "beta", &v));
  EXPECT_EQ(v, 2u);
  EXPECT_FALSE(t.Lookup(common + "delta", nullptr));
  // A key diverging inside the long prefix splits it correctly.
  std::string diverging = common.substr(0, 20) + "Q";
  t.Insert(diverging, 4);
  EXPECT_TRUE(t.Lookup(diverging, &v));
  EXPECT_EQ(v, 4u);
  EXPECT_TRUE(t.Lookup(common + "alpha", &v));
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(t.CheckInvariants(), "");
  std::vector<uint64_t> vals;
  EXPECT_EQ(t.Scan(common.substr(0, 10), 10, &vals), 4u);
  EXPECT_EQ(vals, (std::vector<uint64_t>{4, 1, 2, 3}));
}

class ArtCorpusTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ArtCorpusTest, MatchesReferenceModel) {
  auto corpora = TestKeyCorpora();
  Art t;
  RunReferenceTest(&t, corpora[GetParam()], 31 + GetParam());
  EXPECT_EQ(t.CheckInvariants(), "");
}

INSTANTIATE_TEST_SUITE_P(Corpora, ArtCorpusTest,
                         ::testing::Values(0, 1, 2, 3), CorpusName);

TEST(ArtTest, NodeGrowthThroughAllSizes) {
  // 256 distinct first bytes force Node4 -> 16 -> 48 -> 256 growth.
  Art t;
  for (int b = 0; b < 256; b++) {
    std::string k(1, static_cast<char>(b));
    t.Insert(k + "tail", static_cast<uint64_t>(b));
  }
  for (int b = 0; b < 256; b++) {
    std::string k(1, static_cast<char>(b));
    uint64_t v = 0;
    ASSERT_TRUE(t.Lookup(k + "tail", &v));
    ASSERT_EQ(v, static_cast<uint64_t>(b));
  }
  EXPECT_EQ(t.CheckInvariants(), "");
}

TEST(ArtTest, AverageLeafDepthShrinksWithCompressedKeys) {
  // Path compression keeps depth near the number of branch points.
  auto keys = GenerateEmails(5000, 61);
  Art t;
  for (size_t i = 0; i < keys.size(); i++) t.Insert(keys[i], i);
  double depth = t.AverageLeafDepth();
  EXPECT_GT(depth, 1.0);
  EXPECT_LT(depth, 24.0);  // far below key length + shared-prefix depth
}

TEST(ArtTest, MemoryExcludesTupleBytes) {
  // Index memory must not scale with key *tail* length (tails live in
  // leaves' tuples, not the index).
  Art short_keys, long_keys;
  for (int i = 0; i < 2000; i++) {
    std::string id = std::to_string(i * 7919 % 100000);
    short_keys.Insert(id + "s", i);
    long_keys.Insert(id + std::string(100, 'z'), i);
  }
  // Same branching structure; long tails add at most the 8-byte stored
  // prefixes, so memory stays within 2x.
  EXPECT_LT(long_keys.MemoryBytes(),
            short_keys.MemoryBytes() * 2);
}

}  // namespace
}  // namespace hope
