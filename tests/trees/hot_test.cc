#include "hot/hot.h"

#include <gtest/gtest.h>

#include "art/art.h"
#include "tests/trees/tree_test_utils.h"

namespace hope {
namespace {

TEST(HotTest, EmptyTree) {
  Hot t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.Lookup("x", nullptr));
  EXPECT_EQ(t.Scan("", 10, nullptr), 0u);
  EXPECT_EQ(t.CheckInvariants(), "");
}

TEST(HotTest, PrefixKeysViaEndOfKeyEdges) {
  Hot t;
  t.Insert("ab", 1);
  t.Insert("abc", 2);
  t.Insert("abcd", 3);
  t.Insert("x", 4);
  uint64_t v = 0;
  EXPECT_TRUE(t.Lookup("ab", &v));
  EXPECT_EQ(v, 1u);
  EXPECT_TRUE(t.Lookup("abc", &v));
  EXPECT_EQ(v, 2u);
  EXPECT_FALSE(t.Lookup("a", nullptr));
  EXPECT_FALSE(t.Lookup("abcde", nullptr));
  EXPECT_EQ(t.CheckInvariants(), "");
  std::vector<uint64_t> vals;
  EXPECT_EQ(t.Scan("ab", 10, &vals), 4u);
  EXPECT_EQ(vals, (std::vector<uint64_t>{1, 2, 3, 4}));
}

class HotCorpusTest : public ::testing::TestWithParam<size_t> {};

TEST_P(HotCorpusTest, MatchesReferenceModel) {
  auto corpora = TestKeyCorpora();
  Hot t;
  RunReferenceTest(&t, corpora[GetParam()], 41 + GetParam());
  EXPECT_EQ(t.CheckInvariants(), "");
}

INSTANTIATE_TEST_SUITE_P(Corpora, HotCorpusTest,
                         ::testing::Values(0, 1, 2, 3), CorpusName);

TEST(HotTest, StoresOnlyDiscriminativeBytes) {
  // Keys sharing a 100-byte prefix: the trie must stay tiny and shallow
  // because non-discriminative bytes are skipped entirely.
  Hot t;
  std::string common(100, 'c');
  for (int i = 0; i < 100; i++)
    t.Insert(common + std::to_string(i), static_cast<uint64_t>(i));
  EXPECT_EQ(t.CheckInvariants(), "");
  EXPECT_LT(t.AverageLeafDepth(), 4.0);
  EXPECT_LT(t.MemoryBytes(), 20000u);
  uint64_t v = 0;
  EXPECT_TRUE(t.Lookup(common + "42", &v));
  EXPECT_EQ(v, 42u);
  EXPECT_FALSE(t.Lookup(common + "100", nullptr));
}

TEST(HotTest, LowerHeightThanArt) {
  // The height-optimized structure must be shallower than ART on the same
  // keys (HOT's design goal).
  auto keys = GenerateEmails(5000, 62);
  Hot hot;
  Art art;
  for (size_t i = 0; i < keys.size(); i++) {
    hot.Insert(keys[i], i);
    art.Insert(keys[i], i);
  }
  EXPECT_LT(hot.AverageLeafDepth(), art.AverageLeafDepth() + 1.0);
}

TEST(HotTest, MemorySmallerThanArtOnSameKeys) {
  auto keys = GenerateUrls(4000, 63);
  Hot hot;
  Art art;
  for (size_t i = 0; i < keys.size(); i++) {
    hot.Insert(keys[i], i);
    art.Insert(keys[i], i);
  }
  EXPECT_LT(hot.MemoryBytes(), art.MemoryBytes());
}

}  // namespace
}  // namespace hope
