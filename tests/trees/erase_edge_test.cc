// Deletion edge cases shared across the four updatable trees: erasing
// down to the empty tree, interleaved insert/erase churn, and structural
// invariants after every phase.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "art/art.h"
#include "btree/btree.h"
#include "datasets/datasets.h"
#include "hot/hot.h"
#include "prefix_btree/prefix_btree.h"

namespace hope {
namespace {

template <typename Tree>
void EraseToEmpty() {
  Tree t;
  auto keys = GenerateEmails(2000, 201);
  for (size_t i = 0; i < keys.size(); i++) t.Insert(keys[i], i);
  // Erase in a different order than insertion.
  std::mt19937_64 rng(202);
  std::shuffle(keys.begin(), keys.end(), rng);
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(t.Erase(keys[i])) << i;
    ASSERT_FALSE(t.Lookup(keys[i], nullptr));
    if (i % 500 == 0) {
      ASSERT_EQ(t.CheckInvariants(), "");
    }
  }
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.Scan("", 10, nullptr), 0u);
  EXPECT_EQ(t.CheckInvariants(), "");
  // The tree is reusable after being emptied.
  t.Insert("phoenix", 1);
  uint64_t v = 0;
  EXPECT_TRUE(t.Lookup("phoenix", &v));
  EXPECT_EQ(v, 1u);
}

template <typename Tree>
void InsertEraseChurn() {
  Tree t;
  std::map<std::string, uint64_t> ref;
  auto keys = GenerateWikiTitles(1500, 203);
  std::mt19937_64 rng(204);
  for (int op = 0; op < 30000; op++) {
    const std::string& k = keys[rng() % keys.size()];
    if (rng() % 3 == 0) {
      ASSERT_EQ(t.Erase(k), ref.erase(k) > 0) << "op " << op;
    } else {
      uint64_t v = rng();
      t.Insert(k, v);
      ref[k] = v;
    }
    if (op % 5000 == 0) {
      ASSERT_EQ(t.size(), ref.size());
      ASSERT_EQ(t.CheckInvariants(), "");
    }
  }
  ASSERT_EQ(t.size(), ref.size());
  for (auto& [k, v] : ref) {
    uint64_t got = 0;
    ASSERT_TRUE(t.Lookup(k, &got));
    ASSERT_EQ(got, v);
  }
  ASSERT_EQ(t.CheckInvariants(), "");
}

TEST(EraseEdgeBTree, ToEmpty) { EraseToEmpty<BTree>(); }
TEST(EraseEdgeBTree, Churn) { InsertEraseChurn<BTree>(); }
TEST(EraseEdgePrefixBTree, ToEmpty) { EraseToEmpty<PrefixBTree>(); }
TEST(EraseEdgePrefixBTree, Churn) { InsertEraseChurn<PrefixBTree>(); }
TEST(EraseEdgeArt, ToEmpty) { EraseToEmpty<Art>(); }
TEST(EraseEdgeArt, Churn) { InsertEraseChurn<Art>(); }
TEST(EraseEdgeHot, ToEmpty) { EraseToEmpty<Hot>(); }
TEST(EraseEdgeHot, Churn) { InsertEraseChurn<Hot>(); }

TEST(EraseEdgeArt, CollapseRestoresPathCompression) {
  // Removing the middle key of a three-way branch collapses the node and
  // re-extends the prefix; lookups must keep working.
  Art t;
  std::string common(20, 'p');
  t.Insert(common + "aX", 1);
  t.Insert(common + "bY", 2);
  t.Insert(common + "cZ", 3);
  ASSERT_TRUE(t.Erase(common + "bY"));
  ASSERT_TRUE(t.Erase(common + "cZ"));
  uint64_t v = 0;
  ASSERT_TRUE(t.Lookup(common + "aX", &v));
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(t.CheckInvariants(), "");
  // Re-split the collapsed path.
  t.Insert(common.substr(0, 10) + "Q", 4);
  ASSERT_TRUE(t.Lookup(common + "aX", &v));
  ASSERT_TRUE(t.Lookup(common.substr(0, 10) + "Q", &v));
  EXPECT_EQ(v, 4u);
  EXPECT_EQ(t.CheckInvariants(), "");
}

TEST(EraseEdgeBTree, MemoryShrinksOnMerges) {
  BTree t;
  auto keys = GenerateEmails(5000, 205);
  for (size_t i = 0; i < keys.size(); i++) t.Insert(keys[i], i);
  size_t full = t.MemoryBytes();
  for (size_t i = 0; i < keys.size() - 10; i++) t.Erase(keys[i]);
  // Node bytes are released by merges (key arena is append-only).
  EXPECT_LT(t.MemoryBytes(), full);
  EXPECT_EQ(t.CheckInvariants(), "");
}

}  // namespace
}  // namespace hope
