#include "prefix_btree/prefix_btree.h"

#include <gtest/gtest.h>

#include "btree/btree.h"
#include "tests/trees/tree_test_utils.h"

namespace hope {
namespace {

TEST(ShortestSeparatorTest, Basics) {
  EXPECT_EQ(ShortestSeparator("abc", "abq"), "abq");
  EXPECT_EQ(ShortestSeparator("abc", "b"), "b");
  EXPECT_EQ(ShortestSeparator("abc", "abcd"), "abcd");
  EXPECT_EQ(ShortestSeparator("a", "c"), "c");
  // The separator s satisfies a < s <= b and is one byte past the lcp.
  std::string s = ShortestSeparator("com.gmail@alice", "com.gmail@bob");
  EXPECT_EQ(s, "com.gmail@b");
  EXPECT_LT(std::string("com.gmail@alice"), s);
  EXPECT_LE(s, std::string("com.gmail@bob"));
}

TEST(PrefixBTreeTest, EmptyTree) {
  PrefixBTree t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.Lookup("x", nullptr));
  EXPECT_EQ(t.Scan("", 10, nullptr), 0u);
  EXPECT_EQ(t.CheckInvariants(), "");
}

class PrefixBTreeCorpusTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PrefixBTreeCorpusTest, MatchesReferenceModel) {
  auto corpora = TestKeyCorpora();
  PrefixBTree t;
  RunReferenceTest(&t, corpora[GetParam()], 21 + GetParam());
  EXPECT_EQ(t.CheckInvariants(), "");
}

INSTANTIATE_TEST_SUITE_P(Corpora, PrefixBTreeCorpusTest,
                         ::testing::Values(0, 1, 2, 3), CorpusName);

TEST(PrefixBTreeTest, PrefixTruncationSavesMemoryOnSharedPrefixes) {
  // URL keys share long host prefixes: the Prefix B+tree must store far
  // fewer key bytes than the plain B+tree.
  auto keys = GenerateUrls(5000, 57);
  PrefixBTree pt;
  BTree bt;
  for (size_t i = 0; i < keys.size(); i++) {
    pt.Insert(keys[i], i);
    bt.Insert(keys[i], i);
  }
  EXPECT_EQ(pt.CheckInvariants(), "");
  EXPECT_LT(pt.MemoryBytes(), bt.MemoryBytes());
}

TEST(PrefixBTreeTest, LookupAfterPrefixShrink) {
  // Force a leaf whose prefix must shrink when a diverging key arrives.
  PrefixBTree t;
  t.Insert("com.gmail@aaaa", 1);
  t.Insert("com.gmail@aaab", 2);
  t.Insert("com.gmail@aaac", 3);
  t.Insert("org.apache@x", 4);  // shares no prefix
  uint64_t v = 0;
  EXPECT_TRUE(t.Lookup("com.gmail@aaab", &v));
  EXPECT_EQ(v, 2u);
  EXPECT_TRUE(t.Lookup("org.apache@x", &v));
  EXPECT_EQ(v, 4u);
  EXPECT_FALSE(t.Lookup("com.gmail@aaad", nullptr));
  EXPECT_EQ(t.CheckInvariants(), "");
}

TEST(PrefixBTreeTest, ManySplitsKeepSeparatorsShort) {
  auto keys = GenerateEmails(8000, 58);
  PrefixBTree t;
  for (size_t i = 0; i < keys.size(); i++) t.Insert(keys[i], i);
  EXPECT_EQ(t.CheckInvariants(), "");
  EXPECT_EQ(t.size(), keys.size());
}

}  // namespace
}  // namespace hope
