// ServerLoop: shared-nothing workers execute mixed op streams with
// exact accounting, end-to-end latency histograms merge across workers,
// self-checks stay clean, and shutdown is idempotent.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "btree/btree.h"
#include "dynamic/sharded_manager.h"
#include "serve/concurrent_index.h"
#include "serve/server_loop.h"
#include "telemetry/registry.h"

namespace hope::serve {
namespace {

using dynamic::ShardedDictionaryManager;

std::vector<std::string> NumberedKeys(size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; i++) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%04zu", i);
    keys.push_back(buf);
  }
  return keys;
}

struct Fixture {
  std::vector<std::string> keys;
  std::unique_ptr<ShardedDictionaryManager> mgr;
  std::unique_ptr<ConcurrentShardedIndex<BTree>> index;

  explicit Fixture(size_t n = 300, size_t shards = 4) : keys(NumberedKeys(n)) {
    ShardedDictionaryManager::Options opts;
    opts.num_shards = shards;
    opts.shard.scheme = Scheme::kSingleChar;
    opts.shard.dict_size_limit = 256;
    opts.min_shard_sample = 8;
    mgr = std::make_unique<ShardedDictionaryManager>(keys, opts);
    index = std::make_unique<ConcurrentShardedIndex<BTree>>(mgr.get());
  }
};

ServerLoop<BTree>::Options SmallLoopOptions() {
  ServerLoop<BTree>::Options opts;
  opts.num_workers = 3;
  opts.queue_capacity = 16;  // small: exercise backpressure
  opts.pin_workers = false;  // CI runners reject affinity; keep quiet
  return opts;
}

TEST(ServerLoopTest, MixedOpsExactAccountingAndCleanChecks) {
  Fixture fx;
  ServerLoop<BTree> loop(fx.index.get(), SmallLoopOptions());
  EXPECT_EQ(loop.num_workers(), 3u);

  // Phase 1: load every key with its fingerprint.
  for (const auto& k : fx.keys) {
    Request req;
    req.op = Request::Op::kInsert;
    req.key = k;
    req.value = KeyFingerprint(k);
    loop.Submit(std::move(req));
  }
  loop.WaitIdle();
  OpStats ins = loop.Snapshot(Request::Op::kInsert);
  EXPECT_EQ(ins.ops, fx.keys.size());
  EXPECT_EQ(ins.latency.count(), fx.keys.size());
  EXPECT_EQ(fx.index->size(), fx.keys.size());

  // Phase 2: checked lookups (all hit), one cold miss, checked scans,
  // and erases of a tail slice.
  for (const auto& k : fx.keys) {
    Request req;
    req.op = Request::Op::kLookup;
    req.check = true;
    req.key = k;
    loop.Submit(std::move(req));
  }
  {
    Request req;
    req.op = Request::Op::kLookup;
    req.key = "zzz-absent";
    loop.Submit(std::move(req));
  }
  for (size_t i = 0; i < 10; i++) {
    Request req;
    req.op = Request::Op::kScan;
    req.check = true;
    req.key = fx.keys[i * 7];
    req.scan_count = 25;
    loop.Submit(std::move(req));
  }
  const size_t erase_from = fx.keys.size() - 20;
  for (size_t i = erase_from; i < fx.keys.size(); i++) {
    Request req;
    req.op = Request::Op::kErase;
    req.key = fx.keys[i];
    loop.Submit(std::move(req));
  }
  loop.WaitIdle();

  OpStats lk = loop.Snapshot(Request::Op::kLookup);
  EXPECT_EQ(lk.ops, fx.keys.size() + 1);
  EXPECT_EQ(lk.hits, fx.keys.size());
  EXPECT_EQ(lk.check_failures, 0u);
  EXPECT_GT(lk.latency.Percentile(0.99), 0u);
  EXPECT_LE(lk.latency.Percentile(0.5), lk.latency.Percentile(0.999));

  OpStats sc = loop.Snapshot(Request::Op::kScan);
  EXPECT_EQ(sc.ops, 10u);
  EXPECT_EQ(sc.hits, 250u);  // 10 scans x 25 entries, all ranges full
  EXPECT_EQ(sc.scan_order_violations, 0u);

  OpStats er = loop.Snapshot(Request::Op::kErase);
  EXPECT_EQ(er.ops, 20u);
  EXPECT_EQ(er.hits, 20u);
  EXPECT_EQ(fx.index->size(), fx.keys.size() - 20);

  // Phase boundary: reset clears every worker's histograms.
  loop.ResetStats();
  EXPECT_EQ(loop.Snapshot(Request::Op::kLookup).ops, 0u);
  EXPECT_EQ(loop.Snapshot(Request::Op::kInsert).latency.count(), 0u);

  loop.Stop();
  loop.Stop();  // idempotent
}

TEST(ServerLoopTest, DetectsCorruptValues) {
  // Plant a wrong value and verify the check counter actually fires —
  // a self-check that cannot fail is not a check.
  Fixture fx;
  fx.index->Insert(fx.keys[0], 12345);  // not the fingerprint
  ServerLoop<BTree> loop(fx.index.get(), SmallLoopOptions());
  Request req;
  req.op = Request::Op::kLookup;
  req.check = true;
  req.key = fx.keys[0];
  loop.Submit(std::move(req));
  loop.WaitIdle();
  OpStats lk = loop.Snapshot(Request::Op::kLookup);
  EXPECT_EQ(lk.ops, 1u);
  EXPECT_EQ(lk.hits, 1u);
  EXPECT_EQ(lk.check_failures, 1u);
}

TEST(ServerLoopTest, QueueDelayAndPreStampedArrivals) {
  Fixture fx;
  ServerLoop<BTree> loop(fx.index.get(), SmallLoopOptions());
  // Closed-loop requests get stamped at Submit; every executed request
  // contributes one queue-delay sample.
  for (size_t i = 0; i < 50; i++) {
    Request req;
    req.op = Request::Op::kLookup;
    req.key = fx.keys[i];
    loop.Submit(std::move(req));
  }
  loop.WaitIdle();
  telemetry::HistogramSnapshot qd = loop.QueueDelaySnapshot();
  EXPECT_EQ(qd.count, 50u);

  // Open-loop: a pre-stamped enqueue_ns survives Submit (the generator
  // owns the arrival schedule), so an intentionally ancient stamp shows
  // up as a large queue delay — the coordinated-omission fix.
  loop.ResetStats();
  Request req;
  req.op = Request::Op::kLookup;
  req.key = fx.keys[0];
  req.enqueue_ns = ServerLoop<BTree>::NowNs() - 5'000'000'000ull;  // 5s ago
  loop.Submit(std::move(req));
  loop.WaitIdle();
  qd = loop.QueueDelaySnapshot();
  ASSERT_EQ(qd.count, 1u);
  EXPECT_GE(qd.Percentile(0.5), 4'000'000'000ull);
  // The per-op latency sees the same end-to-end window.
  OpStats lk = loop.Snapshot(Request::Op::kLookup);
  EXPECT_GE(lk.latency.Percentile(0.5), 4'000'000'000ull);
}

TEST(ServerLoopTest, RegistersMetricsAndStreamsSnapshots) {
  Fixture fx;
  telemetry::MetricRegistry registry;
  std::mutex mu;
  std::vector<telemetry::RegistrySnapshot> seen;
  ServerLoop<BTree>::Options opts = SmallLoopOptions();
  opts.registry = &registry;
  opts.stats_interval = std::chrono::milliseconds(20);
  opts.stats_sink = [&](const telemetry::RegistrySnapshot& snap) {
    std::lock_guard<std::mutex> lock(mu);
    seen.push_back(snap);
  };
  {
    ServerLoop<BTree> loop(fx.index.get(), opts);
    // Per-op latency histograms + counters, queue-delay histogram,
    // queue-depth and workers-pinned gauges all registered.
    EXPECT_GT(registry.size(), 10u);
    for (const auto& k : fx.keys) {
      Request req;
      req.op = Request::Op::kInsert;
      req.key = k;
      req.value = KeyFingerprint(k);
      loop.Submit(std::move(req));
    }
    loop.WaitIdle();
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    loop.Stop();
    // Stop emits a final snapshot, so the sink saw >= 2 (start + final)
    // and the final one carries the insert counts.
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_GE(seen.size(), 2u);
    const std::string json = seen.back().ToJson();
    EXPECT_NE(json.find("hope_server_ops_total{op=\\\"insert\\\"}"),
              std::string::npos)
        << json;
  }
  // RAII: loop destruction deregistered everything.
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ServerLoopTest, CompatSnapshotMatchesRegistry) {
  // Snapshot(op) is a thin view over the telemetry metrics: the counts
  // it reports must equal what the registry exports.
  Fixture fx;
  telemetry::MetricRegistry registry;
  ServerLoop<BTree>::Options opts = SmallLoopOptions();
  opts.registry = &registry;
  ServerLoop<BTree> loop(fx.index.get(), opts);
  for (const auto& k : fx.keys) {
    Request req;
    req.op = Request::Op::kLookup;
    req.check = true;
    req.key = k;
    loop.Submit(std::move(req));
  }
  loop.WaitIdle();
  const OpStats lk = loop.Snapshot(Request::Op::kLookup);
  double reg_ops = -1;
  for (const auto& m : registry.Snapshot().metrics)
    if (m.name == "hope_server_ops_total" && !m.labels.empty() &&
        m.labels[0].second == "lookup")
      reg_ops = m.value;
  EXPECT_EQ(reg_ops, static_cast<double>(lk.ops));
  EXPECT_EQ(lk.ops, fx.keys.size());
}

TEST(ServerLoopTest, DestructorStopsWithQueuedWork) {
  Fixture fx;
  auto loop =
      std::make_unique<ServerLoop<BTree>>(fx.index.get(), SmallLoopOptions());
  for (const auto& k : fx.keys) {
    Request req;
    req.op = Request::Op::kInsert;
    req.key = k;
    req.value = KeyFingerprint(k);
    loop->Submit(std::move(req));
  }
  // Destruction drains accepted work before joining.
  loop.reset();
  EXPECT_EQ(fx.index->size(), fx.keys.size());
}

}  // namespace
}  // namespace hope::serve
