// Regression test: concurrent ServerLoop::Stop() callers. The original
// Stop() was latched with a compare-exchange, so the losing caller
// returned immediately while the winner was still joining worker
// threads — anything the loser did next (reading final counters,
// tearing the loop down) raced live workers. Stop() now serializes
// callers behind a join mutex: EVERY caller returns only after all
// threads are joined, which makes the post-Stop() accounting below
// exact from either thread's point of view.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "btree/btree.h"
#include "dynamic/sharded_manager.h"
#include "serve/concurrent_index.h"
#include "serve/server_loop.h"

namespace hope::serve {
namespace {

using dynamic::ShardedDictionaryManager;

std::vector<std::string> NumberedKeys(size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; i++) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%04zu", i);
    keys.push_back(buf);
  }
  return keys;
}

TEST(ServerLoopStopRace, LosingStopCallerSeesFullyDrainedLoop) {
  // A handful of rounds so both orderings of the two callers occur.
  for (int round = 0; round < 5; round++) {
    std::vector<std::string> keys = NumberedKeys(400);
    ShardedDictionaryManager::Options mopts;
    mopts.num_shards = 4;
    mopts.shard.scheme = Scheme::kSingleChar;
    mopts.shard.dict_size_limit = 256;
    mopts.min_shard_sample = 8;
    ShardedDictionaryManager mgr(keys, mopts);
    ConcurrentShardedIndex<BTree> index(&mgr);

    ServerLoop<BTree>::Options opts;
    opts.num_workers = 2;
    opts.queue_capacity = 512;  // roomy: every submit lands pre-Stop
    opts.pin_workers = false;
    ServerLoop<BTree> loop(&index, opts);

    // Fill the queues with enough work that the workers are still
    // draining when the stops race (workers finish their queues before
    // exiting, so Stop() returning implies everything below executed).
    for (const auto& k : keys) {
      Request req;
      req.op = Request::Op::kInsert;
      req.key = k;
      req.value = KeyFingerprint(k);
      loop.Submit(std::move(req));
    }
    for (const auto& k : keys) {
      Request req;
      req.op = Request::Op::kLookup;
      req.key = k;
      req.check = true;
      loop.Submit(std::move(req));
    }
    const uint64_t submitted = 2 * keys.size();

    std::atomic<uint64_t> racer_seen{0};
    std::thread racer([&] {
      loop.Stop();
      // The racer's view immediately after ITS Stop() returns.
      racer_seen = loop.Snapshot(Request::Op::kInsert).ops +
                   loop.Snapshot(Request::Op::kLookup).ops;
    });
    loop.Stop();
    // This thread's view immediately after its own Stop() returns —
    // with the old latch, whichever caller lost the race observed a
    // partially drained loop here.
    const uint64_t main_seen = loop.Snapshot(Request::Op::kInsert).ops +
                               loop.Snapshot(Request::Op::kLookup).ops;
    racer.join();

    EXPECT_EQ(main_seen, submitted) << "round " << round;
    EXPECT_EQ(racer_seen.load(), submitted) << "round " << round;
    EXPECT_EQ(loop.Snapshot(Request::Op::kLookup).check_failures, 0u);

    // Third Stop() after completion: still idempotent.
    loop.Stop();
  }
}

}  // namespace
}  // namespace hope::serve
