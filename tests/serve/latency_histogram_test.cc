// LatencyHistogram: bucket mapping round-trips, bounded relative error,
// percentile semantics, and the cross-worker merge.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "serve/latency_histogram.h"

namespace hope::serve {
namespace {

TEST(LatencyHistogramTest, LinearRegionIsExact) {
  for (uint64_t v = 0; v < LatencyHistogram::kSubBucketCount; v++) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), v);
    EXPECT_EQ(LatencyHistogram::BucketUpperBound(v), v);
  }
}

TEST(LatencyHistogramTest, BucketIndexIsMonotoneAndBoundsContainValue) {
  // Sweep powers of two and their neighbours across the full range.
  std::vector<uint64_t> values;
  for (unsigned e = 0; e < 64; e++)
    for (int d = -2; d <= 2; d++) {
      uint64_t v = uint64_t{1} << e;
      if (d < 0 && v < static_cast<uint64_t>(-d)) continue;
      values.push_back(v + static_cast<uint64_t>(d));
    }
  std::sort(values.begin(), values.end());
  size_t prev_index = 0;
  for (uint64_t v : values) {
    size_t idx = LatencyHistogram::BucketIndex(v);
    ASSERT_LT(idx, LatencyHistogram::kNumBuckets) << "value " << v;
    EXPECT_LE(v, LatencyHistogram::BucketUpperBound(idx)) << "value " << v;
    EXPECT_GE(idx, prev_index) << "monotonicity at " << v;
    prev_index = idx;
  }
  // The largest value maps inside the table.
  EXPECT_EQ(LatencyHistogram::BucketIndex(~uint64_t{0}),
            LatencyHistogram::kNumBuckets - 1);
}

TEST(LatencyHistogramTest, RelativeErrorIsBounded) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 20000; i++) {
    uint64_t v = rng() >> (rng() % 40);  // spread across magnitudes
    size_t idx = LatencyHistogram::BucketIndex(v);
    uint64_t ub = LatencyHistogram::BucketUpperBound(idx);
    ASSERT_GE(ub, v);
    // Upper bound overestimates by at most one sub-bucket width ~ v/32.
    EXPECT_LE(static_cast<double>(ub - v),
              static_cast<double>(v) / LatencyHistogram::kSubBucketCount +
                  1.0)
        << "value " << v;
  }
}

TEST(LatencyHistogramTest, PercentilesOnKnownDistribution) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 1000; v++) h.Record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.Mean(), 500.5, 1e-9);
  // ~3.1% error bound on the bucketed quantiles; p100 is exact.
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.50)), 500.0, 500.0 * 0.04);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.99)), 990.0, 990.0 * 0.04);
  EXPECT_EQ(h.Percentile(1.0), 1000u);
  EXPECT_GE(h.Percentile(0.999), 990u);
}

TEST(LatencyHistogramTest, PercentileNeverExceedsRecordedMax) {
  LatencyHistogram h;
  h.Record(1'000'003);  // lands in a coarse bucket
  EXPECT_EQ(h.Percentile(0.5), 1'000'003u);
  EXPECT_EQ(h.Percentile(0.999), 1'000'003u);
}

TEST(LatencyHistogramTest, EmptyHistogramReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(LatencyHistogramTest, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, combined;
  std::mt19937_64 rng(11);
  for (int i = 0; i < 5000; i++) {
    uint64_t v = rng() % 1'000'000;
    (i % 2 ? a : b).Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.Mean(), combined.Mean());
  for (double q : {0.5, 0.9, 0.99, 0.999, 1.0})
    EXPECT_EQ(a.Percentile(q), combined.Percentile(q)) << q;
}

TEST(LatencyHistogramTest, ResetClears) {
  LatencyHistogram h;
  h.Record(123);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  h.Record(7);
  EXPECT_EQ(h.Percentile(1.0), 7u);
}

}  // namespace
}  // namespace hope::serve
