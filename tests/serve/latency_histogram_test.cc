// LatencyHistogram: bucket mapping round-trips, bounded relative error,
// percentile semantics, and the cross-worker merge.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "serve/latency_histogram.h"
#include "telemetry/metrics.h"

namespace hope::serve {
namespace {

TEST(LatencyHistogramTest, LinearRegionIsExact) {
  for (uint64_t v = 0; v < LatencyHistogram::kSubBucketCount; v++) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), v);
    EXPECT_EQ(LatencyHistogram::BucketUpperBound(v), v);
  }
}

TEST(LatencyHistogramTest, BucketIndexIsMonotoneAndBoundsContainValue) {
  // Sweep powers of two and their neighbours across the full range.
  std::vector<uint64_t> values;
  for (unsigned e = 0; e < 64; e++)
    for (int d = -2; d <= 2; d++) {
      uint64_t v = uint64_t{1} << e;
      if (d < 0 && v < static_cast<uint64_t>(-d)) continue;
      values.push_back(v + static_cast<uint64_t>(d));
    }
  std::sort(values.begin(), values.end());
  size_t prev_index = 0;
  for (uint64_t v : values) {
    size_t idx = LatencyHistogram::BucketIndex(v);
    ASSERT_LT(idx, LatencyHistogram::kNumBuckets) << "value " << v;
    EXPECT_LE(v, LatencyHistogram::BucketUpperBound(idx)) << "value " << v;
    EXPECT_GE(idx, prev_index) << "monotonicity at " << v;
    prev_index = idx;
  }
  // The largest value maps inside the table.
  EXPECT_EQ(LatencyHistogram::BucketIndex(~uint64_t{0}),
            LatencyHistogram::kNumBuckets - 1);
}

TEST(LatencyHistogramTest, RelativeErrorIsBounded) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 20000; i++) {
    uint64_t v = rng() >> (rng() % 40);  // spread across magnitudes
    size_t idx = LatencyHistogram::BucketIndex(v);
    uint64_t ub = LatencyHistogram::BucketUpperBound(idx);
    ASSERT_GE(ub, v);
    // Upper bound overestimates by at most one sub-bucket width ~ v/32.
    EXPECT_LE(static_cast<double>(ub - v),
              static_cast<double>(v) / LatencyHistogram::kSubBucketCount +
                  1.0)
        << "value " << v;
  }
}

TEST(LatencyHistogramTest, PercentilesOnKnownDistribution) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 1000; v++) h.Record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.Mean(), 500.5, 1e-9);
  // ~3.1% error bound on the bucketed quantiles; p100 is exact.
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.50)), 500.0, 500.0 * 0.04);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.99)), 990.0, 990.0 * 0.04);
  EXPECT_EQ(h.Percentile(1.0), 1000u);
  EXPECT_GE(h.Percentile(0.999), 990u);
}

TEST(LatencyHistogramTest, PercentileNeverExceedsRecordedMax) {
  LatencyHistogram h;
  h.Record(1'000'003);  // lands in a coarse bucket
  EXPECT_EQ(h.Percentile(0.5), 1'000'003u);
  EXPECT_EQ(h.Percentile(0.999), 1'000'003u);
}

TEST(LatencyHistogramTest, EmptyHistogramReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(LatencyHistogramTest, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, combined;
  std::mt19937_64 rng(11);
  for (int i = 0; i < 5000; i++) {
    uint64_t v = rng() % 1'000'000;
    (i % 2 ? a : b).Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.Mean(), combined.Mean());
  for (double q : {0.5, 0.9, 0.99, 0.999, 1.0})
    EXPECT_EQ(a.Percentile(q), combined.Percentile(q)) << q;
}

TEST(LatencyHistogramTest, ResetClears) {
  LatencyHistogram h;
  h.Record(123);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  h.Record(7);
  EXPECT_EQ(h.Percentile(1.0), 7u);
}

TEST(LatencyHistogramTest, SharedLayoutMatchesTelemetry) {
  // The layout constants are a cross-library contract: the serving
  // histogram and telemetry::Histogram must index identically so their
  // bucket counts can be merged bucket-for-bucket.
  EXPECT_EQ(LatencyHistogram::kNumBuckets, telemetry::kNumLogBuckets);
  EXPECT_EQ(LatencyHistogram::kSubBucketCount, telemetry::kSubBucketCount);
  // Exact boundary pins: 32 ends the unit region but its octave group
  // continues width-1 buckets through 63; 64 starts width-2 buckets.
  EXPECT_EQ(LatencyHistogram::BucketIndex(32), 32u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(63), 63u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(64), 64u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(65), 64u);
  for (uint64_t v : {0ull, 31ull, 32ull, 1000ull, ~0ull})
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), telemetry::LogBucketIndex(v));
}

TEST(LatencyHistogramTest, OverflowBucketReportsMax) {
  // A recorded UINT64_MAX must come back exactly: the overflow bucket's
  // upper bound is pinned, and the final-rank quantile path does not
  // interpolate (double math near 2^64 would round the top bits off).
  LatencyHistogram h;
  h.Record(~uint64_t{0});
  EXPECT_EQ(h.max(), ~uint64_t{0});
  EXPECT_EQ(h.Percentile(0.5), ~uint64_t{0});
  EXPECT_EQ(h.Percentile(0.999), ~uint64_t{0});
}

TEST(LatencyHistogramTest, SingleBucketInterpolation) {
  // All mass in one coarse bucket but at distinct values: rank
  // interpolation spreads the quantiles across the bucket instead of
  // collapsing p50 == p999 == upper bound (the old one-sided bias).
  // 1'000'003 and 1'015'000 share the [999424, 1015807] bucket.
  LatencyHistogram h;
  ASSERT_EQ(LatencyHistogram::BucketIndex(1'000'003),
            LatencyHistogram::BucketIndex(1'015'000));
  for (int i = 0; i < 500; i++) h.Record(1'000'003);
  for (int i = 0; i < 500; i++) h.Record(1'015'000);
  const uint64_t p50 = h.Percentile(0.50);
  const uint64_t p999 = h.Percentile(0.999);
  EXPECT_LT(p50, p999);
  // ...and the clamp to the recorded extremes bounds both.
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p999, h.max());

  // When every sample IS one exact value, the exact min/max clamp
  // collapses every quantile to it — tighter than any interpolation.
  LatencyHistogram point;
  for (int i = 0; i < 1000; i++) point.Record(1'000'003);
  EXPECT_EQ(point.Percentile(0.50), 1'000'003u);
  EXPECT_EQ(point.Percentile(0.999), 1'000'003u);
}

TEST(LatencyHistogramTest, EmptyPercentileEdge) {
  LatencyHistogram h;
  // q = 0 and q = 1 on empty data report 0, not garbage.
  EXPECT_EQ(h.Percentile(0.0), 0u);
  EXPECT_EQ(h.Percentile(1.0), 0u);
  // One sample: every quantile is that sample.
  h.Record(42);
  EXPECT_EQ(h.Percentile(0.0), 42u);
  EXPECT_EQ(h.Percentile(0.5), 42u);
  EXPECT_EQ(h.Percentile(1.0), 42u);
}

TEST(LatencyHistogramTest, AddBucketCountsBridgesTelemetrySnapshots) {
  // The compat path ServerLoop::Snapshot uses: fold a
  // telemetry::Histogram's bucket counts into a LatencyHistogram.
  telemetry::Histogram t;
  for (uint64_t v = 1; v <= 1000; v++) t.Record(v);
  const telemetry::HistogramSnapshot snap = t.Snapshot();
  LatencyHistogram h;
  h.AddBucketCounts(snap.counts.data(), snap.counts.size());
  EXPECT_EQ(h.count(), 1000u);
  // min/max are bucket-resolution after the bridge; quantiles keep the
  // ~3.1% bound.
  EXPECT_EQ(h.min(), 1u);
  EXPECT_GE(h.max(), 1000u);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.50)), 500.0, 500.0 * 0.04);
  EXPECT_NEAR(h.Mean(), 500.5, 500.5 * 0.04);
  // Folding into a non-empty histogram accumulates.
  h.AddBucketCounts(snap.counts.data(), snap.counts.size());
  EXPECT_EQ(h.count(), 2000u);
}

}  // namespace
}  // namespace hope::serve
