// ConcurrentShardedIndex correctness: CRUD and scans through the
// reader/writer split, and — the point of the class — migration
// transparency while a rebalance plan is applied in bounded batches:
// double-routed lookups, erases racing the migration of their own
// range, inserts landing in the post-plan owner mid-flight, and scan
// ordering across an in-flight plan.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "dynamic/sharded_manager.h"
#include "serve/concurrent_index.h"
#include "serve/server_loop.h"

namespace hope::serve {
namespace {

using dynamic::ShardedDictionaryManager;

std::vector<std::string> NumberedKeys(size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; i++) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%04zu", i);
    keys.push_back(buf);
  }
  return keys;
}

ShardedDictionaryManager::Options SmallShardOptions(size_t num_shards) {
  ShardedDictionaryManager::Options opts;
  opts.num_shards = num_shards;
  opts.shard.scheme = Scheme::kSingleChar;
  opts.shard.dict_size_limit = 256;
  opts.shard.stats.sample_every = 1;
  opts.min_shard_sample = 8;
  opts.traffic_ewma_alpha = 1.0;
  opts.min_rebalance_corpus = 16;
  opts.retrain_moved_shards = false;  // routing-only: deterministic
  return opts;
}

struct Fixture {
  std::vector<std::string> keys;
  std::unique_ptr<ShardedDictionaryManager> mgr;
  std::unique_ptr<ConcurrentShardedIndex<BTree>> index;

  explicit Fixture(size_t n = 200, size_t shards = 4) : keys(NumberedKeys(n)) {
    mgr = std::make_unique<ShardedDictionaryManager>(keys,
                                                     SmallShardOptions(shards));
    index = std::make_unique<ConcurrentShardedIndex<BTree>>(mgr.get());
    for (size_t i = 0; i < keys.size(); i++) index->Insert(keys[i], i);
  }

  /// Publishes a forced rebalance whose boundaries chase traffic on the
  /// top quarter of the key space; returns the plan (never null here).
  std::shared_ptr<const dynamic::RebalancePlan> ForcePlan() {
    for (int round = 0; round < 5; round++)
      for (size_t i = keys.size() * 3 / 4; i < keys.size(); i++)
        mgr->Encode(keys[i]);
    mgr->UpdateTrafficWeights();
    auto plan = mgr->RebalanceNow(/*force=*/true);
    EXPECT_NE(plan, nullptr);
    return plan;
  }

  void ExpectAllPresent(const char* where) {
    for (size_t i = 0; i < keys.size(); i++) {
      uint64_t v = ~uint64_t{0};
      ASSERT_TRUE(index->Lookup(keys[i], &v)) << where << ": " << keys[i];
      EXPECT_EQ(v, i) << where << ": " << keys[i];
    }
  }
};

TEST(ConcurrentIndexTest, InsertLookupEraseSpanShards) {
  Fixture fx;
  EXPECT_EQ(fx.index->num_shards(), 4u);
  EXPECT_EQ(fx.index->size(), fx.keys.size());
  fx.ExpectAllPresent("initial");

  uint64_t v = 0;
  EXPECT_FALSE(fx.index->Lookup("nope", &v));

  // Erase every third key; the rest survive.
  size_t erased = 0;
  for (size_t i = 0; i < fx.keys.size(); i += 3) {
    EXPECT_TRUE(fx.index->Erase(fx.keys[i]));
    erased++;
  }
  EXPECT_FALSE(fx.index->Erase(fx.keys[0]));  // already gone
  EXPECT_EQ(fx.index->size(), fx.keys.size() - erased);
  for (size_t i = 0; i < fx.keys.size(); i++) {
    EXPECT_EQ(fx.index->Lookup(fx.keys[i], &v), i % 3 != 0) << fx.keys[i];
  }

  // Overwrite updates in place.
  fx.index->Insert(fx.keys[1], 4242);
  ASSERT_TRUE(fx.index->Lookup(fx.keys[1], &v));
  EXPECT_EQ(v, 4242u);
  EXPECT_EQ(fx.index->size(), fx.keys.size() - erased);
}

TEST(ConcurrentIndexTest, ScanGlobalOrderAcrossShards) {
  Fixture fx;
  std::vector<uint64_t> out;
  EXPECT_EQ(fx.index->Scan(fx.keys[0], fx.keys.size(), &out),
            fx.keys.size());
  ASSERT_EQ(out.size(), fx.keys.size());
  for (size_t i = 0; i < out.size(); i++) EXPECT_EQ(out[i], i) << i;

  // Mid-range start, short scan.
  out.clear();
  EXPECT_EQ(fx.index->Scan(fx.keys[150], 20, &out), 20u);
  for (size_t i = 0; i < out.size(); i++) EXPECT_EQ(out[i], 150 + i);
}

TEST(ConcurrentIndexTest, BatchedMigrationKeepsEveryKeyVisible) {
  Fixture fx;
  auto plan = fx.ForcePlan();
  ASSERT_FALSE(plan->moves.empty());
  EXPECT_FALSE(fx.index->MigrationIdle());

  // Apply the plan one key per call; after EVERY batch, every key must
  // be visible through the double-routed read path — before its move
  // (old owner via fallback), after it (new owner via primary).
  size_t steps = 0;
  while (!fx.index->MigrationIdle()) {
    fx.index->PollMigration(/*max_keys=*/1);
    ASSERT_LT(++steps, 10000u) << "migration failed to make progress";
    fx.ExpectAllPresent("mid-migration");
  }
  EXPECT_GT(fx.index->entries_migrated(), 0u);
  EXPECT_EQ(fx.index->plans_applied(), 1u);
  EXPECT_EQ(fx.index->resyncs(), 0u);
  EXPECT_EQ(fx.index->size(), fx.keys.size());
  EXPECT_EQ(fx.index->router_version(), fx.mgr->router_version());
  fx.ExpectAllPresent("post-migration");
}

TEST(ConcurrentIndexTest, LookupMidPlanUsesFallbackBeforeAnyBatch) {
  Fixture fx;
  auto plan = fx.ForcePlan();
  // One poll begins the plan (router advances, nothing moved yet):
  // every key in a moved range now routes primary -> new owner, which
  // is empty for it, so a hit proves the old-owner fallback ran.
  fx.index->PollMigration(/*max_keys=*/1);
  ASSERT_FALSE(fx.index->MigrationIdle());
  EXPECT_EQ(fx.index->router_version(), plan->to->version());
  size_t double_routed = 0;
  for (size_t i = 0; i < fx.keys.size(); i++) {
    if (plan->to->Route(fx.keys[i]) != plan->from->Route(fx.keys[i]))
      double_routed++;
    uint64_t v = ~uint64_t{0};
    ASSERT_TRUE(fx.index->Lookup(fx.keys[i], &v)) << fx.keys[i];
    EXPECT_EQ(v, i);
  }
  EXPECT_GT(double_routed, 0u) << "plan moved no live keys";
  // Absent keys miss cleanly through both routes.
  uint64_t v = 0;
  EXPECT_FALSE(fx.index->Lookup("zzz-absent", &v));
  while (!fx.index->MigrationIdle()) fx.index->PollMigration(64);
}

TEST(ConcurrentIndexTest, EraseRacesMigrationOfItsOwnRange) {
  Fixture fx;
  auto plan = fx.ForcePlan();
  fx.index->PollMigration(/*max_keys=*/1);  // begin plan, nothing moved
  ASSERT_FALSE(fx.index->MigrationIdle());

  // Pick a key whose owner changes under the plan.
  size_t moved_i = fx.keys.size();
  for (size_t i = 0; i < fx.keys.size(); i++)
    if (plan->to->Route(fx.keys[i]) != plan->from->Route(fx.keys[i])) {
      moved_i = i;
      break;
    }
  ASSERT_LT(moved_i, fx.keys.size());

  // Erase while the key still lives in its OLD owner (double-routed
  // erase must reach through the fallback)...
  EXPECT_TRUE(fx.index->Erase(fx.keys[moved_i]));
  uint64_t v = 0;
  EXPECT_FALSE(fx.index->Lookup(fx.keys[moved_i], &v));

  // ...and a fresh insert of the same key lands in the NEW owner.
  fx.index->Insert(fx.keys[moved_i], 777);
  ASSERT_TRUE(fx.index->Lookup(fx.keys[moved_i], &v));
  EXPECT_EQ(v, 777u);

  // Migration completes without resurrecting the erased copy or
  // clobbering the fresh insert (InsertIfAbsent on the move path).
  size_t steps = 0;
  while (!fx.index->MigrationIdle()) {
    fx.index->PollMigration(/*max_keys=*/1);
    ASSERT_LT(++steps, 10000u);
  }
  ASSERT_TRUE(fx.index->Lookup(fx.keys[moved_i], &v));
  EXPECT_EQ(v, 777u);
  EXPECT_EQ(fx.index->size(), fx.keys.size());
  for (size_t i = 0; i < fx.keys.size(); i++) {
    ASSERT_TRUE(fx.index->Lookup(fx.keys[i], &v)) << fx.keys[i];
    EXPECT_EQ(v, i == moved_i ? 777u : i);
  }
}

TEST(ConcurrentIndexTest, ScanAcrossInFlightPlanDrainsAndStaysOrdered) {
  Fixture fx;
  fx.ForcePlan();
  // Leave the plan mid-move: begin + a few one-key batches.
  for (int i = 0; i < 5; i++) fx.index->PollMigration(/*max_keys=*/1);
  ASSERT_FALSE(fx.index->MigrationIdle());

  // Scan must first complete the plan (cross-shard order is undefined
  // mid-flight), then produce the full global order.
  std::vector<uint64_t> out;
  EXPECT_EQ(fx.index->Scan(fx.keys[0], fx.keys.size(), &out),
            fx.keys.size());
  ASSERT_EQ(out.size(), fx.keys.size());
  for (size_t i = 0; i < out.size(); i++) EXPECT_EQ(out[i], i) << i;
  EXPECT_TRUE(fx.index->MigrationIdle());
  EXPECT_EQ(fx.index->plans_applied(), 1u);
}

TEST(ConcurrentIndexTest, BackToBackPlansApplyInOrder) {
  Fixture fx;
  fx.ForcePlan();
  // A second plan lands while the first is unapplied; traffic hammers
  // the bottom quarter this time so boundaries swing back.
  for (int round = 0; round < 5; round++)
    for (size_t i = 0; i < fx.keys.size() / 4; i++) fx.mgr->Encode(fx.keys[i]);
  fx.mgr->UpdateTrafficWeights();
  ASSERT_NE(fx.mgr->RebalanceNow(/*force=*/true), nullptr);
  EXPECT_EQ(fx.mgr->router_version(), 2u);

  size_t steps = 0;
  while (!fx.index->MigrationIdle()) {
    fx.index->PollMigration(/*max_keys=*/3);
    ASSERT_LT(++steps, 10000u);
    fx.ExpectAllPresent("two-plan catch-up");
  }
  EXPECT_EQ(fx.index->plans_applied(), 2u);
  EXPECT_EQ(fx.index->router_version(), 2u);
  EXPECT_EQ(fx.index->size(), fx.keys.size());
}

TEST(ConcurrentIndexTest, DictionarySwapMidPlanStaysConsistent) {
  Fixture fx;
  // Default behaviour retrains moved shards: epochs swap while the plan
  // is applied, so migrated keys re-encode under new dictionaries.
  // (The index must die before its manager: reset it first.)
  auto opts = SmallShardOptions(4);
  opts.retrain_moved_shards = true;
  fx.index.reset();
  fx.mgr = std::make_unique<ShardedDictionaryManager>(fx.keys, opts);
  fx.index = std::make_unique<ConcurrentShardedIndex<BTree>>(fx.mgr.get());
  for (size_t i = 0; i < fx.keys.size(); i++) fx.index->Insert(fx.keys[i], i);

  fx.ForcePlan();
  size_t steps = 0;
  while (!fx.index->MigrationIdle()) {
    fx.index->PollMigration(/*max_keys=*/7);
    ASSERT_LT(++steps, 10000u);
    fx.ExpectAllPresent("retrain mid-plan");
  }
  fx.ExpectAllPresent("retrain done");
  std::vector<uint64_t> out;
  EXPECT_EQ(fx.index->Scan(fx.keys[0], fx.keys.size(), &out),
            fx.keys.size());
  for (size_t i = 0; i < out.size(); i++) EXPECT_EQ(out[i], i) << i;
}

TEST(ConcurrentIndexTest, KeyFingerprintIsOrderConsistent) {
  auto keys = NumberedKeys(50);
  for (size_t i = 1; i < keys.size(); i++)
    EXPECT_LE(KeyFingerprint(keys[i - 1]), KeyFingerprint(keys[i]));
  EXPECT_EQ(KeyFingerprint(""), 0u);
  EXPECT_LT(KeyFingerprint("a"), KeyFingerprint("b"));
  EXPECT_LT(KeyFingerprint("a"), KeyFingerprint("aa"));
}

}  // namespace
}  // namespace hope::serve
