// Serving-layer race stress (built for TSan): reader threads hammer
// double-routed lookups and writers churn inserts/erases while the main
// thread forces rebalance after rebalance (alternating hotspots, so
// ranges move back and forth, with dictionary retrains on moved shards)
// and a maintenance thread applies the plans in small batches. The
// invariant under all interleavings: a key that is never erased is
// always visible with its exact value, scans stay ordered, and nothing
// trips TSan/ASan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "btree/btree.h"
#include "dynamic/sharded_manager.h"
#include "serve/concurrent_index.h"
#include "serve/server_loop.h"

namespace hope::serve {
namespace {

using dynamic::ShardedDictionaryManager;

std::vector<std::string> PrefixedKeys(const char* prefix, size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; i++) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%s%04zu", prefix, i);
    keys.push_back(buf);
  }
  return keys;
}

TEST(ServeStressTest, ReadersStayConsistentUnderContinuousRebalance) {
  const size_t kStable = 300;
  const size_t kChurn = 100;
  const int kRebalances = 12;
  const int kReaders = 4;

  auto stable = PrefixedKeys("key", kStable);
  auto churn = PrefixedKeys("mov", kChurn);
  std::vector<std::string> corpus = stable;
  corpus.insert(corpus.end(), churn.begin(), churn.end());

  ShardedDictionaryManager::Options opts;
  opts.num_shards = 4;
  opts.shard.scheme = Scheme::kSingleChar;
  opts.shard.dict_size_limit = 256;
  opts.shard.stats.sample_every = 1;
  opts.min_shard_sample = 8;
  opts.traffic_ewma_alpha = 1.0;
  opts.min_rebalance_corpus = 16;
  // Default retrain stays on: rebalances also swap dictionaries on the
  // moved shards, so readers cross generation boundaries mid-stress.
  ShardedDictionaryManager mgr(corpus, opts);
  ConcurrentShardedIndex<BTree> index(&mgr);

  for (const auto& k : stable) index.Insert(k, KeyFingerprint(k));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> value_failures{0};
  std::atomic<uint64_t> miss_failures{0};
  std::atomic<uint64_t> scan_violations{0};
  std::atomic<uint64_t> lookups{0};

  std::vector<std::thread> threads;
  // Readers: stable keys must always hit with the exact fingerprint;
  // churn keys may hit or miss, but a hit must carry the fingerprint.
  for (int r = 0; r < kReaders; r++) {
    threads.emplace_back([&, r] {
      size_t i = static_cast<size_t>(r) * 37;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string& k = stable[i % stable.size()];
        uint64_t v = 0;
        if (!index.Lookup(k, &v))
          miss_failures.fetch_add(1, std::memory_order_relaxed);
        else if (v != KeyFingerprint(k))
          value_failures.fetch_add(1, std::memory_order_relaxed);
        const std::string& c = churn[i % churn.size()];
        if (index.Lookup(c, &v) && v != KeyFingerprint(c))
          value_failures.fetch_add(1, std::memory_order_relaxed);
        lookups.fetch_add(2, std::memory_order_relaxed);
        i++;
      }
    });
  }
  // Writer: insert/erase churn keys in rolling waves.
  threads.emplace_back([&] {
    size_t wave = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (const auto& c : churn) {
        if (stop.load(std::memory_order_relaxed)) return;
        if (wave % 2 == 0)
          index.Insert(c, KeyFingerprint(c));
        else
          index.Erase(c);
      }
      wave++;
    }
  });
  // Scanner: short ordered scans from rotating stable starts.
  threads.emplace_back([&] {
    std::vector<uint64_t> out;
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      out.clear();
      index.Scan(stable[(i * 31) % stable.size()], 16, &out);
      for (size_t j = 1; j < out.size(); j++)
        if (out[j] < out[j - 1])
          scan_violations.fetch_add(1, std::memory_order_relaxed);
      i++;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  // Maintenance: apply plans in small batches, as a server would.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (index.PollMigration(/*max_keys=*/32) == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  // Main: force rebalances with alternating hotspots so ranges move
  // back and forth between shards while everything above runs.
  for (int round = 0; round < kRebalances; round++) {
    const bool low = round % 2 == 0;
    for (int rep = 0; rep < 5; rep++)
      for (size_t i = 0; i < corpus.size() / 4; i++)
        mgr.Encode(low ? corpus[i] : corpus[corpus.size() - 1 - i]);
    mgr.UpdateTrafficWeights();
    mgr.RebalanceNow(/*force=*/true);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Let the last plans apply while traffic keeps flowing.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  for (auto& t : threads) t.join();

  EXPECT_EQ(miss_failures.load(), 0u);
  EXPECT_EQ(value_failures.load(), 0u);
  EXPECT_EQ(scan_violations.load(), 0u);
  EXPECT_GT(lookups.load(), 0u);

  // Quiesce and verify the final state exactly.
  size_t guard = 0;
  while (!index.MigrationIdle()) {
    index.PollMigration(1024);
    ASSERT_LT(++guard, 100000u);
  }
  for (const auto& k : stable) {
    uint64_t v = 0;
    ASSERT_TRUE(index.Lookup(k, &v)) << k;
    EXPECT_EQ(v, KeyFingerprint(k)) << k;
  }
  std::vector<uint64_t> out;
  EXPECT_GE(index.Scan(stable[0], kStable, &out), 1u);
  for (size_t j = 1; j < out.size(); j++) EXPECT_GE(out[j], out[j - 1]);
  EXPECT_GT(index.plans_applied() + index.resyncs(), 0u);
}

TEST(ServeStressTest, ServerLoopServesThroughForcedRebalances) {
  const size_t kKeys = 400;
  auto keys = PrefixedKeys("key", kKeys);

  ShardedDictionaryManager::Options opts;
  opts.num_shards = 4;
  opts.shard.scheme = Scheme::kSingleChar;
  opts.shard.dict_size_limit = 256;
  opts.shard.stats.sample_every = 1;
  opts.min_shard_sample = 8;
  opts.traffic_ewma_alpha = 1.0;
  opts.min_rebalance_corpus = 16;
  ShardedDictionaryManager mgr(keys, opts);
  ConcurrentShardedIndex<BTree> index(&mgr);

  ServerLoop<BTree>::Options loop_opts;
  loop_opts.num_workers = 3;
  loop_opts.queue_capacity = 64;
  loop_opts.pin_workers = false;
  loop_opts.migration_batch = 32;
  ServerLoop<BTree> loop(&index, loop_opts);

  for (const auto& k : keys) {
    Request req;
    req.op = Request::Op::kInsert;
    req.key = k;
    req.value = KeyFingerprint(k);
    loop.Submit(std::move(req));
  }
  loop.WaitIdle();

  // Interleave checked lookups and scans with forced rebalances; the
  // loop's own maintenance thread migrates underneath.
  for (int round = 0; round < 6; round++) {
    for (int rep = 0; rep < 5; rep++)
      for (size_t i = 0; i < kKeys / 4; i++)
        mgr.Encode(round % 2 == 0 ? keys[i] : keys[kKeys - 1 - i]);
    mgr.UpdateTrafficWeights();
    mgr.RebalanceNow(/*force=*/true);
    for (size_t i = 0; i < kKeys; i++) {
      Request req;
      req.op = Request::Op::kLookup;
      req.check = true;
      req.key = keys[i];
      loop.Submit(std::move(req));
      if (i % 50 == 0) {
        Request scan;
        scan.op = Request::Op::kScan;
        scan.check = true;
        scan.key = keys[i];
        scan.scan_count = 20;
        loop.Submit(std::move(scan));
      }
    }
    loop.WaitIdle();
  }

  OpStats lk = loop.Snapshot(Request::Op::kLookup);
  EXPECT_EQ(lk.ops, 6u * kKeys);
  EXPECT_EQ(lk.hits, 6u * kKeys) << "lookup missed during rebalance";
  EXPECT_EQ(lk.check_failures, 0u);
  OpStats sc = loop.Snapshot(Request::Op::kScan);
  EXPECT_EQ(sc.scan_order_violations, 0u);
  EXPECT_GT(sc.ops, 0u);
  loop.Stop();
  EXPECT_EQ(index.size(), kKeys);
}

}  // namespace
}  // namespace hope::serve
