// Negative-compile TU: writes a HOPE_GUARDED_BY field without holding
// its mutex. Must FAIL under -Wthread-safety -Werror=thread-safety and
// compile clean without the flag (negative_compile.cmake checks both).
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Bad {
 public:
  void Set(int v) { value_ = v; }  // no lock: analysis must object

 private:
  hope::Mutex mu_;
  int value_ HOPE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int BadGuardedFieldAnchor() {
  Bad b;
  b.Set(1);
  return 0;
}
