# Negative-compile driver for the thread-safety annotations, run as a
# ctest under Clang (see CMakeLists.txt here). For every bad_*.cc TU it
# proves BOTH directions:
#   1. with -Wthread-safety -Werror=thread-safety the TU fails — the
#      annotations fire;
#   2. without the flag the same TU compiles — the failure above is the
#      analysis objecting, not an unrelated compile error.
# The positive TU must compile WITH the flag (a redundant belt over the
# always-built thread_safety_positive target, kept here so this script
# is self-contained evidence).
#
# Expected -D inputs: COMPILER, SOURCE_DIR, INCLUDE_DIR, STD (e.g. 20).

set(base_flags -std=c++${STD} -fsyntax-only -I${INCLUDE_DIR})
set(tsa_flags -Wthread-safety -Werror=thread-safety)

set(failures 0)

function(check_compiles expect_success extra_flags tu)
  execute_process(
    COMMAND ${COMPILER} ${base_flags} ${extra_flags} ${SOURCE_DIR}/${tu}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(expect_success AND NOT rc EQUAL 0)
    message(SEND_ERROR
      "${tu}: expected to compile with [${extra_flags}] but failed:\n${err}")
    math(EXPR failures "${failures}+1")
    set(failures ${failures} PARENT_SCOPE)
  elseif(NOT expect_success AND rc EQUAL 0)
    message(SEND_ERROR
      "${tu}: expected -Wthread-safety to reject it, but it compiled — "
      "the annotations did not fire")
    math(EXPR failures "${failures}+1")
    set(failures ${failures} PARENT_SCOPE)
  endif()
endfunction()

file(GLOB bad_tus RELATIVE ${SOURCE_DIR} ${SOURCE_DIR}/bad_*.cc)
list(LENGTH bad_tus n_bad)
if(n_bad EQUAL 0)
  message(FATAL_ERROR "no bad_*.cc negative TUs found in ${SOURCE_DIR}")
endif()

foreach(tu IN LISTS bad_tus)
  check_compiles(FALSE "${tsa_flags}" ${tu})
  check_compiles(TRUE "" ${tu})
endforeach()

check_compiles(TRUE "${tsa_flags}" thread_safety_positive.cc)

if(failures GREATER 0)
  message(FATAL_ERROR "thread_safety_negative_test: ${failures} failure(s)")
endif()
message(STATUS
  "thread_safety_negative_test: ${n_bad} negative TU(s) rejected as expected")
