// Compile-only positive half of the thread-safety contract: exercises
// every wrapper and annotation shape the tree relies on, the way the
// tree uses them. Builds on every compiler; under Clang it must also be
// -Wthread-safety clean (hope_warnings adds the flag), so a regression
// in the wrappers' attributes breaks this target before it breaks the
// whole build.
#include <condition_variable>
#include <mutex>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Annotated {
 public:
  void Set(int v) HOPE_EXCLUDES(mu_) {
    hope::MutexLock lock(mu_);
    value_ = v;
  }

  int Get() const HOPE_EXCLUDES(mu_) {
    hope::MutexLock lock(mu_);
    return value_;
  }

  /// *Locked contract: caller holds the capability.
  void BumpLocked() HOPE_REQUIRES(mu_) { value_++; }

  void Bump() HOPE_EXCLUDES(mu_) {
    hope::MutexLock lock(mu_);
    BumpLocked();
  }

  /// TryLock + adopting RAII, as DrainGenerationsLocked does.
  bool TryBump() HOPE_EXCLUDES(mu_) {
    if (!mu_.TryLock()) return false;
    hope::MutexLock lock(mu_, std::adopt_lock);
    value_++;
    return true;
  }

  /// Explicit cv wait loop, as the worker/rebuilder loops do.
  void WaitNonZero() HOPE_EXCLUDES(mu_) {
    hope::UniqueLock lock(mu_);
    while (value_ == 0) cv_.wait(lock.native());
  }

  void Signal() HOPE_EXCLUDES(mu_) {
    {
      hope::MutexLock lock(mu_);
      value_ = 1;
    }
    cv_.notify_all();
  }

 private:
  mutable hope::Mutex mu_;
  std::condition_variable cv_;
  int value_ HOPE_GUARDED_BY(mu_) = 0;
};

class SharedAnnotated {
 public:
  int Read() const HOPE_EXCLUDES(mu_) {
    hope::ReaderLock lock(mu_);
    return value_;
  }

  void Write(int v) HOPE_EXCLUDES(mu_) {
    hope::WriterLock lock(mu_);
    value_ = v;
  }

  bool TryWrite(int v) HOPE_EXCLUDES(mu_) {
    if (!mu_.TryLock()) return false;
    hope::WriterLock lock(mu_, std::adopt_lock);
    value_ = v;
    return true;
  }

 private:
  mutable hope::SharedMutex mu_;
  int value_ HOPE_GUARDED_BY(mu_) = 0;
};

}  // namespace

// Anchor so the object file is never empty and the classes are used.
int ThreadSafetyPositiveAnchor() {
  Annotated a;
  a.Set(1);
  a.Bump();
  (void)a.TryBump();
  a.Signal();
  a.WaitNonZero();
  SharedAnnotated s;
  s.Write(2);
  (void)s.TryWrite(3);
  return a.Get() + s.Read();
}
