// Negative-compile TU: calls a HOPE_REQUIRES(*Locked-style) method
// without holding the capability. Must FAIL under -Wthread-safety
// -Werror=thread-safety and compile clean without the flag.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Bad {
 public:
  void BumpLocked() HOPE_REQUIRES(mu_) { value_++; }

  void Bump() { BumpLocked(); }  // contract violated: mu_ not held

 private:
  hope::Mutex mu_;
  int value_ HOPE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int BadRequiresAnchor() {
  Bad b;
  b.Bump();
  return 0;
}
