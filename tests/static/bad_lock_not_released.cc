// Negative-compile TU: acquires a capability manually and returns
// without releasing it. Must FAIL under -Wthread-safety
// -Werror=thread-safety and compile clean without the flag.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Bad {
 public:
  void Leak() {
    mu_.Lock();
    value_ = 1;
    // missing mu_.Unlock(): held capability leaks out of scope
  }

 private:
  hope::Mutex mu_;
  int value_ HOPE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int BadLockNotReleasedAnchor() {
  Bad b;
  b.Leak();
  return 0;
}
