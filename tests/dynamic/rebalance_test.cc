// Online shard re-balancing: weighted boundary derivation, router
// diffing, the versioned router swap (lock-free for readers), the
// weight-imbalance policy's hysteresis, and the index-side plan
// application that migrates moved key ranges between shards.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "btree/btree.h"
#include "dynamic/background_rebuilder.h"
#include "dynamic/sharded_index.h"
#include "dynamic/sharded_manager.h"

namespace hope::dynamic {
namespace {

std::vector<std::string> NumberedKeys(size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; i++) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%04zu", i);
    keys.push_back(buf);
  }
  return keys;
}

ShardedDictionaryManager::Options SmallShardOptions(size_t num_shards) {
  ShardedDictionaryManager::Options opts;
  opts.num_shards = num_shards;
  opts.shard.scheme = Scheme::kSingleChar;
  opts.shard.dict_size_limit = 256;
  opts.shard.stats.sample_every = 1;
  opts.min_shard_sample = 8;
  return opts;
}

TEST(WeightedBoundariesTest, UniformWeightsReproduceQuantiles) {
  std::vector<std::pair<std::string, double>> weighted;
  for (const auto& k : NumberedKeys(100)) weighted.emplace_back(k, 1.0);
  auto boundaries = DeriveWeightedBoundaries(std::move(weighted), 4);
  ASSERT_EQ(boundaries.size(), 3u);
  EXPECT_EQ(boundaries[0], "key0025");
  EXPECT_EQ(boundaries[1], "key0050");
  EXPECT_EQ(boundaries[2], "key0075");
}

TEST(WeightedBoundariesTest, HeavyKeysPullBoundariesTowardThemselves) {
  // d carries 5/8 of the weight: the single cut isolates it.
  std::vector<std::pair<std::string, double>> weighted = {
      {"a", 1.0}, {"b", 1.0}, {"c", 1.0}, {"d", 5.0}};
  auto boundaries = DeriveWeightedBoundaries(weighted, 2);
  ASSERT_EQ(boundaries.size(), 1u);
  EXPECT_EQ(boundaries[0], "d");
}

TEST(WeightedBoundariesTest, DuplicateKeysMergeTheirWeight) {
  std::vector<std::pair<std::string, double>> weighted = {
      {"a", 1.0}, {"a", 2.0}, {"b", 3.0}};
  auto boundaries = DeriveWeightedBoundaries(weighted, 2);
  ASSERT_EQ(boundaries.size(), 1u);
  EXPECT_EQ(boundaries[0], "b");
}

TEST(WeightedBoundariesTest, DegenerateInputsCollapse) {
  // All weight on the smallest key: no valid cut above it.
  EXPECT_TRUE(DeriveWeightedBoundaries({{"a", 10.0}, {"b", 0.0}}, 4).empty());
  // One key, empty input, single range.
  EXPECT_TRUE(DeriveWeightedBoundaries({{"a", 1.0}}, 4).empty());
  EXPECT_TRUE(DeriveWeightedBoundaries({}, 4).empty());
  EXPECT_TRUE(DeriveWeightedBoundaries({{"a", 1.0}, {"b", 1.0}}, 1).empty());
}

TEST(DiffRoutersTest, ComputesMovedElementaryRanges) {
  auto from = std::make_shared<const RouterVersion>(
      0, std::vector<std::string>{"k25", "k50", "k75"});
  auto to = std::make_shared<const RouterVersion>(
      1, std::vector<std::string>{"k80", "k85", "k90"});
  RebalancePlan plan = DiffRouters(from, to);
  EXPECT_EQ(plan.from, from);
  EXPECT_EQ(plan.to, to);
  // ["", k25) keeps owner 0; everything between k25 and k90 changes.
  ASSERT_EQ(plan.moves.size(), 5u);
  auto expect_move = [&](size_t i, size_t f, size_t t,
                         const std::string& begin, const std::string& end) {
    EXPECT_EQ(plan.moves[i].from_shard, f) << i;
    EXPECT_EQ(plan.moves[i].to_shard, t) << i;
    EXPECT_EQ(plan.moves[i].begin, begin) << i;
    ASSERT_TRUE(plan.moves[i].bounded) << i;
    EXPECT_EQ(plan.moves[i].end, end) << i;
  };
  expect_move(0, 1, 0, "k25", "k50");
  expect_move(1, 2, 0, "k50", "k75");
  expect_move(2, 3, 0, "k75", "k80");
  expect_move(3, 3, 1, "k80", "k85");
  expect_move(4, 3, 2, "k85", "k90");
  // [k90, inf) keeps owner 3 under both routers: no unbounded move.
}

TEST(DiffRoutersTest, IdenticalRoutersYieldEmptyPlanAndTailMoves) {
  auto same_a = std::make_shared<const RouterVersion>(
      0, std::vector<std::string>{"c", "f"});
  auto same_b = std::make_shared<const RouterVersion>(
      1, std::vector<std::string>{"c", "f"});
  EXPECT_TRUE(DiffRouters(same_a, same_b).empty());

  // Dropping the last boundary moves the tail range, unbounded above.
  auto to = std::make_shared<const RouterVersion>(
      1, std::vector<std::string>{"c"});
  RebalancePlan plan = DiffRouters(same_a, to);
  ASSERT_EQ(plan.moves.size(), 1u);
  EXPECT_EQ(plan.moves[0].from_shard, 2u);
  EXPECT_EQ(plan.moves[0].to_shard, 1u);
  EXPECT_EQ(plan.moves[0].begin, "f");
  EXPECT_FALSE(plan.moves[0].bounded);
}

TEST(WeightImbalancePolicyTest, HysteresisRequiresConsecutiveSkewedPolls) {
  auto policy = MakeWeightImbalancePolicy(/*trigger_ratio=*/2.0,
                                          /*min_keys=*/100,
                                          /*cooldown_seconds=*/0.0,
                                          /*consecutive_polls=*/2);
  RebalanceSignals skewed;
  skewed.max_over_mean = 3.0;
  skewed.keys_since_rebalance = 1000;
  skewed.seconds_since_rebalance = 10;

  RebalanceSignals balanced = skewed;
  balanced.max_over_mean = 1.1;

  EXPECT_FALSE(policy->ShouldRebalance(skewed));  // streak 1 of 2
  EXPECT_TRUE(policy->ShouldRebalance(skewed));   // streak 2: trigger
  // The trigger resets the streak.
  EXPECT_FALSE(policy->ShouldRebalance(skewed));
  // A balanced poll in between also resets it.
  EXPECT_FALSE(policy->ShouldRebalance(balanced));
  EXPECT_FALSE(policy->ShouldRebalance(skewed));
  EXPECT_TRUE(policy->ShouldRebalance(skewed));
}

TEST(WeightImbalancePolicyTest, GatesOnTrafficAndCooldown) {
  auto policy = MakeWeightImbalancePolicy(2.0, /*min_keys=*/500,
                                          /*cooldown_seconds=*/60.0,
                                          /*consecutive_polls=*/1);
  RebalanceSignals s;
  s.max_over_mean = 4.0;
  s.keys_since_rebalance = 499;  // not enough traffic
  s.seconds_since_rebalance = 120;
  EXPECT_FALSE(policy->ShouldRebalance(s));
  s.keys_since_rebalance = 500;
  s.seconds_since_rebalance = 30;  // inside the cooldown window
  EXPECT_FALSE(policy->ShouldRebalance(s));
  s.seconds_since_rebalance = 61;
  EXPECT_TRUE(policy->ShouldRebalance(s));
}

TEST(WeightImbalancePolicyTest, DegenerateParametersAreClamped) {
  // trigger NaN -> 1, consecutive 0 -> 1, cooldown NaN -> 0, min_keys
  // 0 -> 1: a single skewed poll with any traffic triggers.
  auto policy = MakeWeightImbalancePolicy(
      std::nan(""), 0, std::nan(""), 0);
  RebalanceSignals s;
  s.max_over_mean = 1.0;
  s.keys_since_rebalance = 1;
  s.seconds_since_rebalance = 0;
  EXPECT_TRUE(policy->ShouldRebalance(s));
}

TEST(ShardedManagerRebalanceTest, TrafficWeightsTrackEncodeCounts) {
  auto sample = NumberedKeys(100);
  auto opts = SmallShardOptions(4);
  opts.traffic_ewma_alpha = 1.0;  // weights = last observed shares
  ShardedDictionaryManager mgr(sample, opts);

  auto w0 = mgr.TrafficWeights();
  ASSERT_EQ(w0.size(), 4u);
  for (double w : w0) EXPECT_DOUBLE_EQ(w, 0.25);
  EXPECT_DOUBLE_EQ(mgr.WeightImbalance(), 1.0);

  // All traffic into the last shard's range.
  for (int i = 0; i < 200; i++) mgr.Encode("key0090");
  mgr.UpdateTrafficWeights();
  auto w1 = mgr.TrafficWeights();
  EXPECT_DOUBLE_EQ(w1[3], 1.0);
  EXPECT_DOUBLE_EQ(w1[0], 0.0);
  EXPECT_DOUBLE_EQ(mgr.WeightImbalance(), 4.0);

  // A poll with no traffic keeps the weights instead of inventing data.
  mgr.UpdateTrafficWeights();
  EXPECT_DOUBLE_EQ(mgr.TrafficWeights()[3], 1.0);
}

TEST(ShardedManagerRebalanceTest, ForcedRebalanceRederivesBoundaries) {
  auto sample = NumberedKeys(100);
  auto opts = SmallShardOptions(4);
  opts.traffic_ewma_alpha = 1.0;
  opts.min_rebalance_corpus = 16;
  opts.retrain_moved_shards = false;  // routing-only rebalance
  ShardedDictionaryManager mgr(sample, opts);
  auto before = mgr.router();
  EXPECT_EQ(before->version(), 0u);

  // Pin the plan history at v0 the way a lagging index would; without
  // any registered consumer the publish would prune its own plan
  // immediately.
  auto reg = mgr.RegisterIndex();
  EXPECT_EQ(reg.router->version(), 0u);

  // Hot traffic confined to the top quarter; the reservoirs of the cold
  // shards stay empty, so the re-derived boundaries live inside the hot
  // range.
  for (int round = 0; round < 5; round++)
    for (size_t i = 75; i < 100; i++) mgr.Encode(NumberedKeys(100)[i]);
  mgr.UpdateTrafficWeights();

  auto plan = mgr.RebalanceNow(/*force=*/true);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->from, before);
  EXPECT_EQ(plan->to->version(), 1u);
  EXPECT_EQ(mgr.router_version(), 1u);
  EXPECT_EQ(mgr.rebalances_published(), 1u);
  EXPECT_FALSE(plan->moves.empty());
  for (const auto& b : mgr.router()->boundaries())
    EXPECT_GE(b, std::string("key0075"));

  // Shards kept their dictionaries: no epoch moved.
  for (size_t s = 0; s < mgr.num_shards(); s++)
    EXPECT_EQ(mgr.shard(s).epoch(), 0u) << s;

  // The plan history replays for the registered consumer still at v0.
  auto plans = mgr.PlansSince(0);
  ASSERT_TRUE(plans.has_value());
  ASSERT_EQ(plans->size(), 1u);
  EXPECT_EQ((*plans)[0], plan);
  ASSERT_TRUE(mgr.PlansSince(1).has_value());
  EXPECT_TRUE(mgr.PlansSince(1)->empty());

  // Advancing the consumer releases the pin: the plan is pruned, and a
  // later PlansSince(0) reports the gap explicitly instead of silently
  // replaying across it.
  mgr.UpdateIndexVersion(reg.id, 1);
  EXPECT_EQ(mgr.plans_retained(), 0u);
  EXPECT_EQ(mgr.plans_floor(), 1u);
  EXPECT_EQ(mgr.plans_pruned(), 1u);
  EXPECT_FALSE(mgr.PlansSince(0).has_value());
  mgr.DeregisterIndex(reg.id);

  // Weights reset to balanced after the publish (hysteresis baseline).
  EXPECT_DOUBLE_EQ(mgr.WeightImbalance(), 1.0);
}

TEST(ShardedManagerRebalanceTest, RetrainRefreshesOnlyMovedShards) {
  auto sample = NumberedKeys(100);
  auto opts = SmallShardOptions(4);
  opts.traffic_ewma_alpha = 1.0;
  opts.min_rebalance_corpus = 16;
  ASSERT_TRUE(opts.retrain_moved_shards);  // the default
  ShardedDictionaryManager mgr(sample, opts);

  for (int round = 0; round < 5; round++)
    for (size_t i = 75; i < 100; i++) mgr.Encode(sample[i]);
  mgr.UpdateTrafficWeights();
  auto plan = mgr.RebalanceNow(/*force=*/true);
  ASSERT_NE(plan, nullptr);

  // Shards named in a move got a dictionary trained on their new range
  // (their slice of the hot corpus clears min_shard_sample here); shards
  // that kept their range kept epoch 0.
  std::vector<bool> affected(mgr.num_shards(), false);
  for (const auto& mv : plan->moves) {
    affected[mv.from_shard] = true;
    affected[mv.to_shard] = true;
  }
  size_t retrained = 0;
  for (size_t s = 0; s < mgr.num_shards(); s++) {
    if (!affected[s]) {
      EXPECT_EQ(mgr.shard(s).epoch(), 0u) << s;
    } else if (mgr.shard(s).epoch() > 0) {
      retrained++;
    }
  }
  EXPECT_GT(retrained, 0u);
}

TEST(ShardedManagerRebalanceTest, PolicyTriggersRebalanceUnderSkew) {
  auto sample = NumberedKeys(100);
  auto opts = SmallShardOptions(4);
  opts.traffic_ewma_alpha = 1.0;
  opts.min_rebalance_corpus = 16;
  ShardedDictionaryManager mgr(
      sample, opts, nullptr,
      MakeWeightImbalancePolicy(/*trigger_ratio=*/2.0, /*min_keys=*/50,
                                /*cooldown_seconds=*/0.0,
                                /*consecutive_polls=*/2));

  // Balanced traffic: polls stay quiet.
  for (const auto& k : sample) mgr.Encode(k);
  EXPECT_EQ(mgr.PollRebalance(), nullptr);
  EXPECT_EQ(mgr.PollRebalance(), nullptr);
  EXPECT_EQ(mgr.router_version(), 0u);

  // Skewed traffic: the second consecutive skewed poll triggers.
  std::shared_ptr<const RebalancePlan> plan;
  for (int round = 0; round < 10 && !plan; round++) {
    for (size_t i = 75; i < 100; i++) mgr.Encode(sample[i]);
    plan = mgr.PollRebalance();
  }
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(mgr.router_version(), 1u);
}

TEST(ShardedManagerRebalanceTest, NoOpWhenCorpusTooSmall) {
  auto sample = NumberedKeys(100);
  auto opts = SmallShardOptions(4);
  opts.min_rebalance_corpus = 1000;  // reservoirs can't reach this
  ShardedDictionaryManager mgr(sample, opts);
  for (const auto& k : sample) mgr.Encode(k);
  mgr.UpdateTrafficWeights();
  EXPECT_EQ(mgr.RebalanceNow(/*force=*/true), nullptr);
  EXPECT_EQ(mgr.router_version(), 0u);
}

// Readers keep routing wait-free through the epoch-guarded router
// pointer while the writer publishes re-derived versions (the TSan
// angle of the swap, now exercising the EBR retire path instead of the
// old retain-forever workaround). Retrain stays off so each swap is a
// pure router publish — no Hope::Build per 2ms cycle — and the test
// stresses swap frequency, not build throughput.
TEST(ShardedManagerRebalanceTest, RouteAndAcquireStaySafeAcrossSwaps) {
  auto sample = NumberedKeys(200);
  auto opts = SmallShardOptions(4);
  opts.min_rebalance_corpus = 16;
  opts.retrain_moved_shards = false;
  ShardedDictionaryManager mgr(sample, opts);
  for (const auto& k : sample) mgr.Encode(k);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; t++) {
    readers.emplace_back([&, t] {
      auto keys = NumberedKeys(200);
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_acquire)) {
        const std::string& key = keys[i++ % keys.size()];
        size_t shard = mgr.Route(key);
        ASSERT_LT(shard, mgr.num_shards());
        DictSnapshot snap = mgr.Acquire(key);
        ASSERT_NE(snap.hope, nullptr);
        mgr.Encode(key);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Alternate skewed traffic and forced rebalances so the router version
  // keeps moving while the readers run.
  uint64_t swaps = 0;
  for (int round = 0; round < 20; round++) {
    for (size_t i = 150; i < 200; i++) mgr.Encode(sample[i]);
    mgr.UpdateTrafficWeights();
    if (mgr.RebalanceNow(/*force=*/true)) swaps++;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(mgr.router_version(), swaps);

  // Every superseded router was retired (not retained forever), and with
  // the readers gone a couple of reclaim polls free all of them — the
  // manager owns only the live version.
  EXPECT_EQ(mgr.reclaimer().retired(), swaps);
  for (int i = 0; i < 10 && mgr.reclaimer().pending() > 0; i++)
    mgr.reclaimer().TryReclaim();
  EXPECT_EQ(mgr.reclaimer().reclaimed(), swaps);
}

struct IndexFixture {
  std::vector<std::string> keys;
  std::unique_ptr<ShardedDictionaryManager> mgr;

  explicit IndexFixture(size_t n = 100, size_t shards = 4) {
    keys = NumberedKeys(n);
    auto opts = SmallShardOptions(shards);
    opts.traffic_ewma_alpha = 1.0;
    opts.min_rebalance_corpus = 16;
    mgr = std::make_unique<ShardedDictionaryManager>(keys, opts);
  }

  /// Skews traffic into [lo, hi) and forces a router publish.
  std::shared_ptr<const RebalancePlan> SkewAndRebalance(size_t lo,
                                                        size_t hi) {
    for (int round = 0; round < 5; round++)
      for (size_t i = lo; i < hi; i++) mgr->Encode(keys[i]);
    mgr->UpdateTrafficWeights();
    return mgr->RebalanceNow(/*force=*/true);
  }
};

TEST(ShardedIndexRebalanceTest, ApplyRebalanceMigratesMovedRanges) {
  IndexFixture fx;
  ShardedVersionedIndex<BTree> index(fx.mgr.get());
  for (size_t i = 0; i < fx.keys.size(); i++) index.Insert(fx.keys[i], i);
  EXPECT_EQ(index.router_version(), 0u);

  auto plan = fx.SkewAndRebalance(75, 100);
  ASSERT_NE(plan, nullptr);

  // The index trails the manager until it syncs; the sync migrates the
  // moved ranges between the per-shard indexes.
  EXPECT_EQ(index.router_version(), 0u);
  size_t moved = index.SyncRouter();
  EXPECT_GT(moved, 0u);
  EXPECT_EQ(index.router_version(), 1u);
  EXPECT_EQ(index.size(), fx.keys.size());

  // Every entry now lives in the shard its new router names: lookups,
  // overwrites and erases keep routing consistently.
  for (size_t i = 0; i < fx.keys.size(); i++) {
    uint64_t v = 0;
    ASSERT_TRUE(index.Lookup(fx.keys[i], &v)) << fx.keys[i];
    EXPECT_EQ(v, i);
  }
  index.Insert(fx.keys[10], 999);
  uint64_t v = 0;
  ASSERT_TRUE(index.Lookup(fx.keys[10], &v));
  EXPECT_EQ(v, 999u);
  EXPECT_TRUE(index.Erase(fx.keys[10]));
  EXPECT_FALSE(index.Lookup(fx.keys[10], &v));
}

TEST(ShardedIndexRebalanceTest, LazySyncAppliesStackedPlans) {
  IndexFixture fx;
  ShardedVersionedIndex<BTree> index(fx.mgr.get());
  for (size_t i = 0; i < fx.keys.size(); i++) index.Insert(fx.keys[i], i);

  // Two rebalances while the index sleeps: hotspot at the top, then at
  // the bottom.
  ASSERT_NE(fx.SkewAndRebalance(75, 100), nullptr);
  ASSERT_NE(fx.SkewAndRebalance(0, 25), nullptr);
  EXPECT_EQ(fx.mgr->router_version(), 2u);

  // The next regular operation catches up through both plans.
  uint64_t v = 0;
  ASSERT_TRUE(index.Lookup(fx.keys[50], &v));
  EXPECT_EQ(v, 50u);
  EXPECT_EQ(index.router_version(), 2u);
  for (size_t i = 0; i < fx.keys.size(); i++) {
    ASSERT_TRUE(index.Lookup(fx.keys[i], &v)) << fx.keys[i];
    EXPECT_EQ(v, i);
  }
}

TEST(ShardedIndexRebalanceTest, ScanStaysOrderedImmediatelyAfterMigration) {
  IndexFixture fx;
  ShardedVersionedIndex<BTree> index(fx.mgr.get());
  for (size_t i = 0; i < fx.keys.size(); i++) index.Insert(fx.keys[i], i);

  ASSERT_NE(fx.SkewAndRebalance(75, 100), nullptr);

  // Scan without an explicit SyncRouter: the scan itself catches up and
  // must come back in global key order across the migrated boundaries.
  std::vector<uint64_t> out;
  size_t produced = index.Scan("", fx.keys.size() + 10, &out);
  EXPECT_EQ(index.router_version(), 1u);
  ASSERT_EQ(produced, fx.keys.size());
  for (size_t i = 0; i < out.size(); i++) EXPECT_EQ(out[i], i) << i;

  // Bounded mid-range scan across the new boundaries.
  out.clear();
  produced = index.Scan(fx.keys[40], 30, &out);
  ASSERT_EQ(produced, 30u);
  for (size_t i = 0; i < out.size(); i++) EXPECT_EQ(out[i], 40 + i) << i;
}

// The recovery path behind the PlansSince sentinel: when incremental
// plan history is unavailable, Resync() re-routes every entry through
// the manager's current router and lands on the same state the plan
// replay would have produced.
TEST(ShardedIndexRebalanceTest, ResyncRebuildsRoutingWithoutPlanHistory) {
  IndexFixture fx;
  ShardedVersionedIndex<BTree> index(fx.mgr.get());
  for (size_t i = 0; i < fx.keys.size(); i++) index.Insert(fx.keys[i], i);

  // Two stacked rebalances the index has not applied.
  ASSERT_NE(fx.SkewAndRebalance(75, 100), nullptr);
  ASSERT_NE(fx.SkewAndRebalance(0, 25), nullptr);
  EXPECT_EQ(index.router_version(), 0u);

  size_t moved = index.Resync();
  EXPECT_EQ(index.router_version(), 2u);
  EXPECT_EQ(index.resyncs(), 1u);
  EXPECT_GT(moved, 0u);
  EXPECT_EQ(index.size(), fx.keys.size());

  // Every key lives in the shard the current router names, so lookups
  // and ordered cross-shard scans behave exactly as after a plan-by-
  // plan catch-up.
  uint64_t v = 0;
  for (size_t i = 0; i < fx.keys.size(); i++) {
    ASSERT_TRUE(index.Lookup(fx.keys[i], &v)) << fx.keys[i];
    EXPECT_EQ(v, i);
  }
  std::vector<uint64_t> out;
  ASSERT_EQ(index.Scan("", fx.keys.size(), &out), fx.keys.size());
  for (size_t i = 0; i < out.size(); i++) EXPECT_EQ(out[i], i) << i;

  // The resync reported its version, releasing the plan pins.
  EXPECT_EQ(fx.mgr->plans_retained(), 0u);
}

TEST(VersionedIndexTest, ExtractRangeRemovesAndReturnsOrderedEntries) {
  auto keys = NumberedKeys(60);
  DictionaryManager::Options mopt;
  mopt.scheme = Scheme::kSingleChar;
  mopt.dict_size_limit = 256;
  DictionaryManager mgr(Hope::Build(Scheme::kSingleChar, keys, 256), mopt,
                        MakeNeverPolicy(), keys);
  VersionedIndex<BTree> index(&mgr);
  for (size_t i = 0; i < keys.size(); i++) index.Insert(keys[i], i);
  // A swap plus an erase exercise the drain + liveness filtering.
  mgr.Publish(Hope::Build(Scheme::kSingleChar, keys, 256));
  index.Erase(keys[25]);

  std::vector<std::pair<std::string, uint64_t>> out;
  size_t moved = index.ExtractRange(keys[20], &keys[40], &out);
  EXPECT_EQ(moved, 19u);  // [20, 40) minus the erased 25
  ASSERT_EQ(out.size(), 19u);
  for (size_t i = 1; i < out.size(); i++)
    EXPECT_LT(out[i - 1].first, out[i].first);
  for (const auto& [key, value] : out) {
    EXPECT_GE(key, keys[20]);
    EXPECT_LT(key, keys[40]);
    EXPECT_EQ(key, keys[value]);
    // Extracted entries are gone from the source index.
    EXPECT_FALSE(index.Lookup(key, nullptr));
  }
  EXPECT_EQ(index.size(), keys.size() - 20);

  // Unbounded extraction takes the whole tail.
  out.clear();
  EXPECT_EQ(index.ExtractRange(keys[40], nullptr, &out), 20u);
  EXPECT_EQ(index.size(), 20u);
}

// The shared worker loop also drives rebalancing: skewed traffic alone
// (no manual polling) must eventually re-derive the router.
TEST(RebalanceRebuilderTest, WorkerPollsRebalanceAlongsideRebuilds) {
  auto sample = NumberedKeys(200);
  auto opts = SmallShardOptions(4);
  opts.traffic_ewma_alpha = 1.0;
  opts.min_rebalance_corpus = 16;
  ShardedDictionaryManager mgr(
      sample, opts, nullptr,
      MakeWeightImbalancePolicy(2.0, /*min_keys=*/50,
                                /*cooldown_seconds=*/0.0,
                                /*consecutive_polls=*/2));
  BackgroundRebuilder::Options ropt;
  ropt.poll_interval = std::chrono::milliseconds(2);
  BackgroundRebuilder rebuilder(&mgr, ropt);

  for (int round = 0; round < 2000 && mgr.router_version() == 0; round++) {
    for (size_t i = 150; i < 200; i++) mgr.Encode(sample[i]);
    rebuilder.Nudge();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  rebuilder.Stop();
  EXPECT_GE(mgr.router_version(), 1u);
  EXPECT_GE(rebuilder.rebalances_completed(), 1u);
}

}  // namespace
}  // namespace hope::dynamic
