// ShardedVersionedIndex correctness: routing, per-shard generations that
// only open where a swap happened, lazy + eager migration, and range
// scans in global key order across shard boundaries.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "datasets/datasets.h"
#include "dynamic/sharded_index.h"
#include "dynamic/sharded_manager.h"

namespace hope::dynamic {
namespace {

constexpr Scheme kScheme = Scheme::kSingleChar;
constexpr size_t kLimit = 256;

struct Fixture {
  std::vector<std::string> keys;  // sorted, unique
  std::unique_ptr<ShardedDictionaryManager> mgr;

  explicit Fixture(size_t n = 600, size_t shards = 4) {
    keys = GenerateEmails(n, 17);
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    ShardedDictionaryManager::Options opts;
    opts.num_shards = shards;
    opts.shard.scheme = kScheme;
    opts.shard.dict_size_limit = kLimit;
    mgr = std::make_unique<ShardedDictionaryManager>(keys, opts);
  }

  /// Swap in a rebuilt dictionary on one shard (trained on that shard's
  /// keys, like a real rebuild would be).
  void SwapShard(size_t s) {
    std::vector<std::string> shard_keys;
    for (const auto& k : keys)
      if (mgr->Route(k) == s) shard_keys.push_back(k);
    if (shard_keys.empty()) shard_keys = keys;
    mgr->shard(s).Publish(Hope::Build(kScheme, shard_keys, kLimit));
  }
};

TEST(ShardedIndexTest, InsertLookupEraseRouteAcrossShards) {
  Fixture fx;
  ShardedVersionedIndex<BTree> index(fx.mgr.get());
  ASSERT_EQ(index.num_shards(), fx.mgr->num_shards());

  for (size_t i = 0; i < fx.keys.size(); i++) index.Insert(fx.keys[i], i);
  EXPECT_EQ(index.size(), fx.keys.size());
  // Entries landed in the owning shard's index.
  size_t spread = 0;
  for (size_t s = 0; s < index.num_shards(); s++)
    spread += index.shard(s).size() > 0 ? 1 : 0;
  EXPECT_GT(spread, 1u) << "keys should span multiple shards";

  for (size_t i = 0; i < fx.keys.size(); i++) {
    uint64_t v = 0;
    ASSERT_TRUE(index.Lookup(fx.keys[i], &v)) << fx.keys[i];
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(index.Lookup("zzz.not@present", nullptr));

  // Overwrite and erase route to the same shard.
  index.Insert(fx.keys[0], 999);
  uint64_t v = 0;
  ASSERT_TRUE(index.Lookup(fx.keys[0], &v));
  EXPECT_EQ(v, 999u);
  EXPECT_TRUE(index.Erase(fx.keys[1]));
  EXPECT_FALSE(index.Lookup(fx.keys[1], &v));
  EXPECT_FALSE(index.Erase(fx.keys[1]));
  EXPECT_EQ(index.size(), fx.keys.size() - 1);
}

TEST(ShardedIndexTest, SwapOpensGenerationOnlyInThatShard) {
  Fixture fx;
  ShardedVersionedIndex<BTree> index(fx.mgr.get());
  for (size_t i = 0; i < fx.keys.size(); i++) index.Insert(fx.keys[i], i);
  EXPECT_EQ(index.TotalGenerations(), index.num_shards());

  const size_t swapped = 2;
  fx.SwapShard(swapped);
  for (size_t s = 0; s < index.num_shards(); s++) index.shard(s).Refresh();
  EXPECT_EQ(index.TotalGenerations(), index.num_shards() + 1);
  EXPECT_EQ(index.shard(swapped).NumGenerations(), 2u);
  for (size_t s = 0; s < index.num_shards(); s++) {
    if (s != swapped) {
      EXPECT_EQ(index.shard(s).NumGenerations(), 1u) << "shard " << s;
    }
  }

  // Lookups stay correct everywhere; hits in the swapped shard's old
  // generation migrate lazily and eventually drain it.
  for (size_t i = 0; i < fx.keys.size(); i++) {
    uint64_t v = 0;
    ASSERT_TRUE(index.Lookup(fx.keys[i], &v)) << fx.keys[i];
    EXPECT_EQ(v, i);
  }
  EXPECT_EQ(index.TotalGenerations(), index.num_shards());
  EXPECT_EQ(index.size(), fx.keys.size());
}

TEST(ShardedIndexTest, MigrateAllDrainsEveryShard) {
  Fixture fx;
  ShardedVersionedIndex<BTree> index(fx.mgr.get());
  size_t half = fx.keys.size() / 2;
  for (size_t i = 0; i < half; i++) index.Insert(fx.keys[i], i);
  fx.SwapShard(0);
  fx.SwapShard(1);
  for (size_t i = half; i < fx.keys.size(); i++) index.Insert(fx.keys[i], i);

  size_t moved = index.MigrateAll();
  EXPECT_GT(moved, 0u);
  EXPECT_EQ(index.TotalGenerations(), index.num_shards());
  EXPECT_EQ(index.size(), fx.keys.size());
  for (size_t i = 0; i < fx.keys.size(); i++) {
    uint64_t v = 0;
    ASSERT_TRUE(index.Lookup(fx.keys[i], &v));
    EXPECT_EQ(v, i);
  }
}

TEST(ShardedIndexTest, ScanWalksShardsInBoundaryOrder) {
  Fixture fx;
  ShardedVersionedIndex<BTree> index(fx.mgr.get());
  for (size_t i = 0; i < fx.keys.size(); i++) index.Insert(fx.keys[i], i);

  // Swap one shard so Scan has to drain it first.
  fx.SwapShard(1);

  // Full scan from below every key: values come back in global key order
  // (fx.keys is sorted, so values must be 0..n-1 in order).
  std::vector<uint64_t> out;
  size_t produced = index.Scan("", fx.keys.size() + 10, &out);
  EXPECT_EQ(produced, fx.keys.size());
  ASSERT_EQ(out.size(), fx.keys.size());
  for (size_t i = 0; i < out.size(); i++) EXPECT_EQ(out[i], i) << i;

  // Bounded scan starting mid-corpus, crossing at least one boundary.
  size_t start = fx.keys.size() / 3;
  size_t count = fx.keys.size() / 2;
  out.clear();
  produced = index.Scan(fx.keys[start], count, &out);
  EXPECT_EQ(produced, count);
  ASSERT_EQ(out.size(), count);
  for (size_t i = 0; i < out.size(); i++) EXPECT_EQ(out[i], start + i);

  // Scan from past the last key produces nothing.
  out.clear();
  EXPECT_EQ(index.Scan(fx.keys.back() + "zzz", 10, &out), 0u);
}

// Edge cases around the boundary walk: start keys above the last
// boundary, shards with no entries mid-range, and counts that span every
// shard.
TEST(ShardedIndexTest, ScanEdgeCases) {
  Fixture fx;
  ShardedVersionedIndex<BTree> index(fx.mgr.get());
  auto router = fx.mgr->router();  // pin the version; boundaries() refs it
  const auto& boundaries = router->boundaries();
  ASSERT_GE(boundaries.size(), 2u);

  // Populate every shard EXCEPT one mid-range shard (shard 1 stays
  // empty) so the scan has to step over it without producing anything.
  std::vector<std::string> inserted;
  for (size_t i = 0; i < fx.keys.size(); i++) {
    if (fx.mgr->Route(fx.keys[i]) == 1) continue;
    index.Insert(fx.keys[i], i);
    inserted.push_back(fx.keys[i]);
  }
  ASSERT_LT(inserted.size(), fx.keys.size());

  // Full scan spanning all shards, count larger than everything: global
  // key order with the empty shard skipped.
  std::vector<uint64_t> out;
  size_t produced = index.Scan("", fx.keys.size() * 2, &out);
  EXPECT_EQ(produced, inserted.size());
  ASSERT_EQ(out.size(), inserted.size());
  for (size_t i = 0; i < out.size(); i++)
    EXPECT_EQ(fx.keys[out[i]], inserted[i]) << i;

  // Start key exactly at the last boundary: only the last shard serves.
  out.clear();
  produced = index.Scan(boundaries.back(), fx.keys.size(), &out);
  size_t expected_tail = 0;
  for (const auto& k : inserted)
    if (k >= boundaries.back()) expected_tail++;
  EXPECT_EQ(produced, expected_tail);

  // Start key above every inserted key but below infinity: nothing.
  out.clear();
  EXPECT_EQ(index.Scan(fx.keys.back() + "~", 5, &out), 0u);

  // A count of zero touches nothing.
  out.clear();
  EXPECT_EQ(index.Scan("", 0, &out), 0u);
  EXPECT_TRUE(out.empty());

  // A count that lands exactly on a shard boundary stops there.
  size_t first_shard_size = index.shard(0).size();
  ASSERT_GT(first_shard_size, 0u);
  out.clear();
  EXPECT_EQ(index.Scan("", first_shard_size, &out), first_shard_size);
}

}  // namespace
}  // namespace hope::dynamic
