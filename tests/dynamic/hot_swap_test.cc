// Correctness of the versioned hot-swap: snapshots acquired before a
// swap keep decoding their own encodings, policies trigger when they
// should, RebuildNow improves compression under drift, and the
// VersionedIndex stays consistent across epochs.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "btree/btree.h"
#include "datasets/datasets.h"
#include "dynamic/background_rebuilder.h"
#include "dynamic/dictionary_manager.h"
#include "dynamic/versioned_index.h"
#include "workload/drift.h"

namespace hope::dynamic {
namespace {

DriftingWorkload MakeDrift() {
  DriftOptions o;
  o.keys_per_phase = 2000;
  o.num_phases = 3;
  o.seed = 7;
  return DriftingWorkload(o);
}

DictionaryManager::Options SmallDict() {
  DictionaryManager::Options o;
  o.scheme = Scheme::kDoubleChar;
  o.dict_size_limit = size_t{1} << 12;
  o.stats.sample_every = 1;
  o.stats.reservoir_size = 1024;
  o.stats.ewma_alpha = 0.05;
  return o;
}

std::unique_ptr<Hope> BuildFrom(const std::vector<std::string>& keys,
                                double fraction = 0.25) {
  return Hope::Build(Scheme::kDoubleChar, SampleKeys(keys, fraction),
                     size_t{1} << 12);
}

TEST(HotSwapTest, OldSnapshotDecodesAcrossSwaps) {
  auto drift = MakeDrift();
  auto phase0 = drift.Phase(0);
  DictionaryManager mgr(BuildFrom(phase0), SmallDict(), MakeNeverPolicy(),
                        phase0);

  DictSnapshot old_snap = mgr.Acquire();
  EXPECT_EQ(old_snap.epoch, 0u);

  // A reader encodes under epoch 0 and holds on to the snapshot.
  std::vector<std::string> keys(phase0.begin(), phase0.begin() + 200);
  std::vector<std::string> encs;
  std::vector<size_t> bits(keys.size());
  for (size_t i = 0; i < keys.size(); i++)
    encs.push_back(old_snap.hope->Encode(keys[i], &bits[i]));

  // Three consecutive swaps while the reader still holds epoch 0.
  for (int swap = 1; swap <= 3; swap++) {
    uint64_t epoch = mgr.Publish(BuildFrom(drift.Phase(2)));
    EXPECT_EQ(epoch, static_cast<uint64_t>(swap));
    EXPECT_EQ(mgr.Acquire().epoch, static_cast<uint64_t>(swap));
  }

  // The held snapshot is immutable: its encodings still decode exactly,
  // and fresh encodes through it are unchanged.
  for (size_t i = 0; i < keys.size(); i++) {
    EXPECT_EQ(old_snap.hope->Decode(encs[i], bits[i]), keys[i]);
    EXPECT_EQ(old_snap.hope->Encode(keys[i]), encs[i]);
  }

  // The new epoch's encodings differ in general but also round-trip.
  DictSnapshot fresh = mgr.Acquire();
  for (size_t i = 0; i < 50; i++) {
    size_t b = 0;
    std::string e = fresh.hope->Encode(keys[i], &b);
    EXPECT_EQ(fresh.hope->Decode(e, b), keys[i]);
  }
}

TEST(HotSwapTest, SnapshotOutlivesManager) {
  auto drift = MakeDrift();
  auto phase0 = drift.Phase(0);
  DictSnapshot snap;
  {
    DictionaryManager mgr(BuildFrom(phase0), SmallDict(), MakeNeverPolicy(),
                          phase0);
    mgr.Publish(BuildFrom(drift.Phase(2)));
    snap = mgr.Acquire();
  }
  // The version pins its observer (the manager's collector), so encoding
  // through a snapshot after the manager died is safe (ASan-checked).
  for (size_t i = 0; i < 50; i++) {
    size_t bits = 0;
    std::string enc = snap.hope->Encode(phase0[i], &bits);
    EXPECT_EQ(snap.hope->Decode(enc, bits), phase0[i]);
  }
}

TEST(HotSwapTest, CompressionDropPolicyTriggersUnderDrift) {
  auto drift = MakeDrift();
  auto phase0 = drift.Phase(0);
  DictionaryManager mgr(BuildFrom(phase0), SmallDict(),
                        MakeCompressionDropPolicy(0.05, 64), phase0);
  ASSERT_GT(mgr.baseline_cpr(), 1.0);

  // On-distribution traffic: the EWMA hovers at the baseline.
  for (const auto& k : phase0) mgr.Encode(k);
  EXPECT_FALSE(mgr.ShouldRebuild());

  // Drifted traffic (pure Email-B): compression degrades past 5%.
  for (const auto& k : drift.Phase(2)) mgr.Encode(k);
  RebuildSignals s = mgr.Signals();
  EXPECT_LT(s.ewma_cpr, s.baseline_cpr);
  EXPECT_TRUE(mgr.ShouldRebuild());
}

TEST(HotSwapTest, RebuildNowImprovesCompressionAndBumpsEpoch) {
  auto drift = MakeDrift();
  auto phase0 = drift.Phase(0);
  DictionaryManager mgr(BuildFrom(phase0), SmallDict(),
                        MakeCompressionDropPolicy(0.05, 64), phase0);
  for (const auto& k : drift.Phase(2)) mgr.Encode(k);

  double stale_ewma = mgr.Signals().ewma_cpr;
  ASSERT_EQ(mgr.RebuildNow(), DictionaryManager::RebuildResult::kRebuilt);
  EXPECT_EQ(mgr.epoch(), 1u);
  EXPECT_EQ(mgr.rebuilds_published(), 1u);
  // The rebuilt dictionary (trained on the drifted reservoir) must beat
  // the stale dictionary's EWMA on that same traffic.
  EXPECT_GT(mgr.baseline_cpr(), stale_ewma);

  // Policy satisfied again: the fresh baseline makes ShouldRebuild false.
  EXPECT_FALSE(mgr.ShouldRebuild());
  EXPECT_EQ(mgr.RebuildNow(), DictionaryManager::RebuildResult::kNotTriggered);
}

TEST(HotSwapTest, RebuildNowWithoutDataReportsInsufficient) {
  auto phase0 = MakeDrift().Phase(0);
  DictionaryManager mgr(BuildFrom(phase0), SmallDict(), MakeNeverPolicy());
  EXPECT_EQ(mgr.RebuildNow(/*force=*/true),
            DictionaryManager::RebuildResult::kInsufficientData);
}

TEST(HotSwapTest, RejectedRebuildBacksOff) {
  auto drift = MakeDrift();
  auto phase0 = drift.Phase(0);
  auto opts = SmallDict();
  // An unbeatable gain gate makes every candidate rejectable, and a long
  // backoff makes the suppression observable.
  opts.min_cpr_gain = 10.0;
  opts.rebuild_backoff_seconds = 3600;
  DictionaryManager mgr(BuildFrom(phase0), opts,
                        MakeCompressionDropPolicy(0.05, 64), phase0);
  for (const auto& k : drift.Phase(2)) mgr.Encode(k);
  ASSERT_TRUE(mgr.ShouldRebuild());

  EXPECT_EQ(mgr.RebuildNow(),
            DictionaryManager::RebuildResult::kRejectedNoGain);
  EXPECT_EQ(mgr.rebuilds_rejected(), 1u);
  // The trigger condition persists, but the backoff suppresses the next
  // policy-driven attempt (no repeated build+validate burn) and tells
  // pollers to stand down…
  EXPECT_TRUE(mgr.InBackoff());
  EXPECT_FALSE(mgr.ShouldRebuild());
  EXPECT_EQ(mgr.RebuildNow(),
            DictionaryManager::RebuildResult::kNotTriggered);
  EXPECT_EQ(mgr.rebuilds_rejected(), 1u);
  // …while force bypasses it.
  EXPECT_EQ(mgr.RebuildNow(/*force=*/true),
            DictionaryManager::RebuildResult::kRejectedNoGain);
}

TEST(HotSwapTest, PublishWithEmptyReservoirKeepsBaseline) {
  auto drift = MakeDrift();
  auto phase0 = drift.Phase(0);
  DictionaryManager mgr(BuildFrom(phase0), SmallDict(), MakeNeverPolicy(),
                        phase0);
  double seeded = mgr.baseline_cpr();
  ASSERT_GT(seeded, 0);
  // Publishing before any traffic must not zero the baseline (which
  // would permanently disarm the compression-drop policy).
  mgr.Publish(BuildFrom(drift.Phase(2)));
  EXPECT_DOUBLE_EQ(mgr.baseline_cpr(), seeded);
}

TEST(HotSwapTest, VersionedIndexSurvivesSwapsWithLazyMigration) {
  auto drift = MakeDrift();
  auto phase0 = drift.Phase(0);
  DictionaryManager mgr(BuildFrom(phase0), SmallDict(), MakeNeverPolicy(),
                        phase0);
  VersionedIndex<BTree> index(&mgr);

  // Load 300 distinct keys under epoch 0.
  std::vector<std::string> keys;
  for (const auto& k : phase0) {
    if (keys.size() >= 300) break;
    if (keys.empty() || std::find(keys.begin(), keys.end(), k) == keys.end())
      keys.push_back(k);
  }
  for (size_t i = 0; i < keys.size(); i++) index.Insert(keys[i], i);
  EXPECT_EQ(index.size(), keys.size());
  EXPECT_EQ(index.NumGenerations(), 1u);

  // Swap; index picks the new epoch up lazily.
  mgr.Publish(BuildFrom(drift.Phase(2)));
  index.Refresh();
  EXPECT_EQ(index.NumGenerations(), 2u);
  EXPECT_EQ(index.CurrentEpoch(), 1u);

  // Every key is still found (hits in the old generation migrate).
  for (size_t i = 0; i < keys.size(); i++) {
    uint64_t v = 0;
    ASSERT_TRUE(index.Lookup(keys[i], &v)) << keys[i];
    EXPECT_EQ(v, i);
  }
  // All entries touched -> the old generation drained and was pruned.
  EXPECT_EQ(index.NumGenerations(), 1u);
  EXPECT_EQ(index.size(), keys.size());

  // Overwrites and erases work across another swap without migration.
  mgr.Publish(BuildFrom(drift.Phase(1)));
  index.Insert(keys[0], 999);
  uint64_t v = 0;
  ASSERT_TRUE(index.Lookup(keys[0], &v));
  EXPECT_EQ(v, 999u);
  EXPECT_TRUE(index.Erase(keys[1]));
  EXPECT_FALSE(index.Lookup(keys[1], &v));
  EXPECT_FALSE(index.Erase(keys[1]));
}

TEST(HotSwapTest, VersionedIndexMigrateAllDrainsGenerations) {
  auto drift = MakeDrift();
  auto phase0 = drift.Phase(0);
  DictionaryManager mgr(BuildFrom(phase0), SmallDict(), MakeNeverPolicy(),
                        phase0);
  VersionedIndex<BTree> index(&mgr);

  std::vector<std::string> keys(phase0.begin(), phase0.begin() + 100);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  size_t half = keys.size() / 2;
  for (size_t i = 0; i < half; i++) index.Insert(keys[i], i);
  mgr.Publish(BuildFrom(drift.Phase(2)));
  for (size_t i = half; i < keys.size(); i++) index.Insert(keys[i], i);
  EXPECT_EQ(index.NumGenerations(), 2u);

  size_t moved = index.MigrateAll();
  EXPECT_EQ(moved, half);
  EXPECT_EQ(index.NumGenerations(), 1u);
  EXPECT_EQ(index.size(), keys.size());
  for (size_t i = 0; i < keys.size(); i++) {
    uint64_t v = 0;
    ASSERT_TRUE(index.Lookup(keys[i], &v));
    EXPECT_EQ(v, i);
  }
  // Single generation again: the tree is scannable and order-preserving.
  EXPECT_EQ(index.tree().CheckInvariants(), "");
}

TEST(HotSwapTest, VersionedIndexCompactsInsertLog) {
  auto drift = MakeDrift();
  auto phase0 = drift.Phase(0);
  DictionaryManager mgr(BuildFrom(phase0), SmallDict(), MakeNeverPolicy(),
                        phase0);
  VersionedIndex<BTree> index(&mgr);

  // 50 distinct keys overwritten 100 times each: without compaction the
  // log would hold 5000 entries; with it, it stays within 4x live + 64.
  for (int round = 0; round < 100; round++)
    for (size_t i = 0; i < 50; i++)
      index.Insert(phase0[i], static_cast<uint64_t>(round));
  EXPECT_EQ(index.size(), 50u);
  EXPECT_LE(index.LogSize(), 4 * 50 + 64 + 1);

  // Compaction must not lose migration sources: swap and drain fully.
  mgr.Publish(BuildFrom(drift.Phase(2)));
  EXPECT_EQ(index.MigrateAll(), 50u);
  for (size_t i = 0; i < 50; i++) {
    uint64_t v = 0;
    ASSERT_TRUE(index.Lookup(phase0[i], &v));
    EXPECT_EQ(v, 99u);
  }
}

// Regression: migration appends (Lookup hits in an old generation,
// MigrateAll) must run log compaction like Insert appends do. A
// read-heavy migrate workload with interleaved erases used to grow the
// newest generation's log far past the documented 4x-live bound,
// because only Insert ever called CompactLog.
TEST(HotSwapTest, MigrationAppendsKeepInsertLogBounded) {
  auto drift = MakeDrift();
  auto phase0 = drift.Phase(0);
  DictionaryManager mgr(BuildFrom(phase0), SmallDict(), MakeNeverPolicy(),
                        phase0);
  VersionedIndex<BTree> index(&mgr);

  std::vector<std::string> keys(phase0.begin(), phase0.begin() + 600);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  ASSERT_GT(keys.size(), 500u);
  for (size_t i = 0; i < keys.size(); i++) index.Insert(keys[i], i);

  // Swap, then drain the old generation via lookups only, erasing each
  // migrated entry: the newest generation sees hundreds of migration
  // appends while its live count stays tiny — >4x the live entries, with
  // no Insert ever running.
  mgr.Publish(BuildFrom(drift.Phase(2)));
  for (size_t i = 0; i < keys.size(); i++) {
    uint64_t v = 0;
    ASSERT_TRUE(index.Lookup(keys[i], &v));
    EXPECT_EQ(v, i);
    EXPECT_TRUE(index.Erase(keys[i]));
  }
  EXPECT_EQ(index.size(), 0u);
  // The bound is checked at append time (live hovered around 1 during
  // the drain, so the log tops out near the 4*1 + 64 trigger); without
  // compaction on migration appends it would hold all ~550 keys.
  EXPECT_LE(index.LogSize(), 100u);

  // Same bound when MigrateAll does the draining.
  for (size_t i = 0; i < keys.size(); i++) index.Insert(keys[i], i);
  mgr.Publish(BuildFrom(drift.Phase(1)));
  index.Refresh();
  EXPECT_EQ(index.MigrateAll(), keys.size());
  EXPECT_LE(index.LogSize(), 4 * index.size() + 64 + 1);
  for (size_t i = 0; i < keys.size(); i++) {
    uint64_t v = 0;
    ASSERT_TRUE(index.Lookup(keys[i], &v));
    EXPECT_EQ(v, i);
  }
}

TEST(HotSwapTest, BackgroundRebuilderPublishesUnderDrift) {
  auto drift = MakeDrift();
  auto phase0 = drift.Phase(0);
  DictionaryManager mgr(BuildFrom(phase0), SmallDict(),
                        MakeCompressionDropPolicy(0.05, 64), phase0);
  BackgroundRebuilder::Options opts;
  opts.poll_interval = std::chrono::milliseconds(5);
  BackgroundRebuilder rebuilder(&mgr, opts);

  // Feed drifted traffic until the worker swaps (bounded by iterations,
  // not wall time, so sanitizer runs don't flake).
  auto drifted = drift.Phase(2);
  for (int round = 0; round < 200 && mgr.epoch() == 0; round++) {
    for (const auto& k : drifted) mgr.Encode(k);
    rebuilder.Nudge();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  rebuilder.Stop();
  EXPECT_GE(mgr.epoch(), 1u);
  EXPECT_GE(rebuilder.rebuilds_completed(), 1u);
}

}  // namespace
}  // namespace hope::dynamic
