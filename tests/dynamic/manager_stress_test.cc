// Concurrency stress for the dictionary manager: reader threads
// continuously acquire snapshots and round-trip keys through them while
// a writer publishes a stream of new dictionary versions (and, in the
// second test, while the background rebuilder swaps on its own). Run
// under ASan/UBSan in CI via the `dynamic` ctest label; any
// use-after-free of a retired version or torn snapshot shows up here.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/epoch_reclaim.h"
#include "datasets/datasets.h"
#include "dynamic/background_rebuilder.h"
#include "dynamic/dictionary_manager.h"
#include "workload/drift.h"

namespace hope::dynamic {
namespace {

DictionaryManager::Options StressOptions() {
  DictionaryManager::Options o;
  o.scheme = Scheme::kDoubleChar;
  o.dict_size_limit = size_t{1} << 12;
  o.stats.sample_every = 4;
  o.stats.reservoir_size = 512;
  // The stress tests exercise swap concurrency, not compression gains;
  // a negative gain gate lets every validated candidate publish.
  o.min_cpr_gain = -1;
  return o;
}

TEST(ManagerStressTest, ReadersSurviveConsecutivePublishes) {
  DriftOptions dopt;
  dopt.keys_per_phase = 1000;
  dopt.num_phases = 4;
  DriftingWorkload drift(dopt);
  auto phase0 = drift.Phase(0);

  // Single-Char keeps each published dictionary cheap to build: the test
  // exercises swap concurrency, and expensive Hu-Tucker builds only slow
  // sanitizer runs down (TSan on one core timed out with Double-Char).
  auto opts = StressOptions();
  opts.scheme = Scheme::kSingleChar;
  DictionaryManager mgr(
      Hope::Build(Scheme::kSingleChar, SampleKeys(phase0, 0.2),
                  size_t{1} << 12),
      opts, MakeNeverPolicy(), phase0);

  constexpr int kReaders = 4;
  constexpr int kSwaps = 6;  // acceptance requires >= 3 consecutive swaps
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> round_trips{0};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> max_epoch_seen{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; r++) {
    readers.emplace_back([&, r] {
      auto keys = drift.Phase(static_cast<size_t>(r) % drift.num_phases());
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        DictSnapshot snap = mgr.Acquire();
        const std::string& key = keys[i++ % keys.size()];
        size_t bits = 0;
        std::string enc = snap.hope->Encode(key, &bits);
        if (snap.hope->Decode(enc, bits) != key) {
          failures.fetch_add(1);
          return;
        }
        uint64_t seen = max_epoch_seen.load();
        while (snap.epoch > seen &&
               !max_epoch_seen.compare_exchange_weak(seen, snap.epoch)) {
        }
        round_trips.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
      }
    });
  }

  // Writer: publish kSwaps fresh dictionaries built from rotating phases
  // while the readers hammer Acquire().
  for (int s = 1; s <= kSwaps; s++) {
    auto corpus = drift.Phase(static_cast<size_t>(s) % drift.num_phases());
    uint64_t epoch = mgr.Publish(Hope::Build(
        Scheme::kSingleChar, SampleKeys(corpus, 0.2), size_t{1} << 12));
    EXPECT_EQ(epoch, static_cast<uint64_t>(s));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(round_trips.load(), 0u);
  EXPECT_EQ(mgr.epoch(), static_cast<uint64_t>(kSwaps));
  // At least one reader observed a post-swap epoch while others may still
  // have held older ones — the versions coexisted.
  EXPECT_GE(max_epoch_seen.load(), 3u);
}

TEST(ManagerStressTest, BackgroundRebuilderRacesReadersAndFeeders) {
  DriftOptions dopt;
  dopt.keys_per_phase = 800;
  dopt.num_phases = 3;
  DriftingWorkload drift(dopt);
  auto phase0 = drift.Phase(0);

  // Key-count policy: a rebuild every 2000 encodes keeps the rebuilder
  // genuinely busy for the whole test regardless of timing. Single-Char
  // keeps each rebuild cheap enough for single-core CI runners.
  auto opts = StressOptions();
  opts.scheme = Scheme::kSingleChar;
  DictionaryManager mgr(
      Hope::Build(Scheme::kSingleChar, SampleKeys(phase0, 0.2),
                  size_t{1} << 12),
      opts, MakeKeyCountPolicy(2000), phase0);
  BackgroundRebuilder::Options ropt;
  ropt.poll_interval = std::chrono::milliseconds(2);
  BackgroundRebuilder rebuilder(&mgr, ropt);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  // Feeders encode drifted traffic through the manager (driving the
  // collector and the key-count trigger); readers verify round-trips.
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; t++) {
    threads.emplace_back([&, t] {
      auto keys = drift.Phase(2 - static_cast<size_t>(t));
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        mgr.Encode(keys[i++ % keys.size()]);
        // Keep the rebuilder schedulable on single-core runners.
        std::this_thread::yield();
      }
    });
  }
  for (int t = 0; t < 2; t++) {
    threads.emplace_back([&, t] {
      auto keys = drift.Phase(static_cast<size_t>(t));
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        DictSnapshot snap = mgr.Acquire();
        const std::string& key = keys[i++ % keys.size()];
        size_t bits = 0;
        std::string enc = snap.hope->Encode(key, &bits);
        if (snap.hope->Decode(enc, bits) != key) {
          failures.fetch_add(1);
          return;
        }
        std::this_thread::yield();
      }
    });
  }

  // Run until the rebuilder has swapped at least 3 times (bounded).
  for (int spins = 0; spins < 2000 && mgr.rebuilds_published() < 3; spins++)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  stop.store(true);
  for (auto& t : threads) t.join();
  rebuilder.Stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(mgr.rebuilds_published(), 3u);
  EXPECT_GE(mgr.epoch(), 3u);
  EXPECT_GE(rebuilder.rebuilds_completed(), 3u);
}

// Teardown race regression (previously only publish-vs-acquire was
// stressed): the manager is destroyed while reader threads are still
// round-tripping through snapshots they acquired moments earlier. The
// destructor retires the final version and drains the reclaimer, so a
// reader whose Acquire() was in flight when teardown began finishes its
// guard before any Version is freed, and the snapshots themselves stay
// valid past destruction via their shared_ptr. ASan/TSan turn any
// drain bug here into a hard failure.
TEST(ManagerStressTest, DestructionDrainsWhileSnapshotsAreInUse) {
  DriftOptions dopt;
  dopt.keys_per_phase = 500;
  dopt.num_phases = 2;
  DriftingWorkload drift(dopt);
  auto phase0 = drift.Phase(0);

  auto opts = StressOptions();
  opts.scheme = Scheme::kSingleChar;
  auto mgr = std::make_unique<DictionaryManager>(
      Hope::Build(Scheme::kSingleChar, SampleKeys(phase0, 0.2),
                  size_t{1} << 12),
      opts, MakeNeverPolicy(), phase0);

  constexpr int kReaders = 4;
  std::atomic<bool> stop_acquiring{false};
  std::atomic<bool> stop_all{false};
  std::atomic<int> readers_detached{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; r++) {
    readers.emplace_back([&, r] {
      auto keys = drift.Phase(static_cast<size_t>(r) % drift.num_phases());
      size_t i = 0;
      // Phase 1: hammer Acquire() until teardown is requested. The last
      // snapshot is kept for phase 2 (the initial one guarantees a live
      // snapshot even if this thread is scheduled late).
      DictSnapshot snap = mgr->Acquire();
      while (!stop_acquiring.load(std::memory_order_acquire)) {
        snap = mgr->Acquire();
        std::this_thread::yield();
      }
      readers_detached.fetch_add(1);
      // Phase 2: the manager is being destroyed RIGHT NOW on the main
      // thread; the held snapshot must keep round-tripping regardless.
      while (!stop_all.load(std::memory_order_acquire)) {
        const std::string& key = keys[i++ % keys.size()];
        size_t bits = 0;
        std::string enc = snap.hope->Encode(key, &bits);
        if (snap.hope->Decode(enc, bits) != key) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }

  // Publish a stream of versions under the readers, then tear down the
  // manager the instant the readers stop issuing new Acquires — their
  // final guards and held snapshots race the destructor's drain.
  for (int s = 1; s <= 8; s++) {
    auto corpus = drift.Phase(static_cast<size_t>(s) % drift.num_phases());
    mgr->Publish(Hope::Build(Scheme::kSingleChar, SampleKeys(corpus, 0.2),
                             size_t{1} << 12));
  }
  stop_acquiring.store(true, std::memory_order_release);
  while (readers_detached.load() < kReaders) std::this_thread::yield();
  mgr.reset();  // destructor: retire final version + Drain()
  stop_all.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// Deterministic half of the teardown fix: a version whose grace period
// had not passed when the destructor ran (a reader was pinned across
// its retirement) is still freed by the destructor's drain — observed
// through the underlying Hope's weak reference expiring.
TEST(ManagerStressTest, DestructorFreesRetiresBlockedByPinnedReaders) {
  DriftOptions dopt;
  dopt.keys_per_phase = 300;
  dopt.num_phases = 2;
  DriftingWorkload drift(dopt);
  auto phase0 = drift.Phase(0);

  auto opts = StressOptions();
  opts.scheme = Scheme::kSingleChar;
  auto mgr = std::make_unique<DictionaryManager>(
      Hope::Build(Scheme::kSingleChar, SampleKeys(phase0, 0.3),
                  size_t{1} << 12),
      opts, MakeNeverPolicy(), phase0);

  std::weak_ptr<const Hope> old_version;
  {
    DictSnapshot snap = mgr->Acquire();
    old_version = snap.hope;
  }
  {
    // Pin a guard across the publish: the epoch cannot advance, so the
    // superseded epoch-0 Version stays in limbo past the publish.
    ebr::EpochReclaimer::Guard pin(mgr->reclaimer());
    mgr->Publish(Hope::Build(Scheme::kSingleChar, SampleKeys(phase0, 0.3),
                             size_t{1} << 12));
    EXPECT_EQ(mgr->reclaimer().pending(), 1u);
  }
  EXPECT_FALSE(old_version.expired());  // still parked in limbo

  mgr.reset();  // drain must free it (and the final version)
  EXPECT_TRUE(old_version.expired());
}

}  // namespace
}  // namespace hope::dynamic
