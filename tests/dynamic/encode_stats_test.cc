// Unit tests for the EncodeStatsCollector: EWMA math, reservoir
// behaviour, sampling cadence, and the rebuild bookkeeping the policies
// rely on.
#include "dynamic/encode_stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

namespace hope::dynamic {
namespace {

EncodeStatsCollector::Options EveryKey(size_t reservoir, double alpha) {
  EncodeStatsCollector::Options o;
  o.reservoir_size = reservoir;
  o.sample_every = 1;
  o.ewma_alpha = alpha;
  return o;
}

TEST(EncodeStatsTest, EwmaSeedsAtFirstSampleThenBlends) {
  EncodeStatsCollector c(EveryKey(16, 0.5));
  EXPECT_EQ(c.EwmaCompressionRate(), 0.0);

  // 8 source bytes -> 16 bits = 2 padded bytes: CPR 4.0. Seeds the EWMA.
  c.OnEncode("abcdefgh", 16);
  EXPECT_DOUBLE_EQ(c.EwmaCompressionRate(), 4.0);

  // 8 bytes -> 4 padded bytes: CPR 2.0. EWMA = 4 + 0.5 * (2 - 4) = 3.
  c.OnEncode("abcdefgh", 32);
  EXPECT_DOUBLE_EQ(c.EwmaCompressionRate(), 3.0);

  // Bit lengths are byte-padded like Hope::CompressionRate: 9 bits -> 2
  // bytes, CPR 1.0. EWMA = 3 + 0.5 * (1 - 3) = 2.
  c.OnEncode("ab", 9);
  EXPECT_DOUBLE_EQ(c.EwmaCompressionRate(), 2.0);
}

TEST(EncodeStatsTest, SamplingCadenceSkipsKeys) {
  EncodeStatsCollector::Options o;
  o.reservoir_size = 1000;
  o.sample_every = 4;
  EncodeStatsCollector c(o);
  for (int i = 0; i < 100; i++) c.OnEncode("key", 8);
  EXPECT_EQ(c.KeysObserved(), 100u);
  EXPECT_EQ(c.KeysSampled(), 25u);  // every 4th, starting with the first
  EXPECT_EQ(c.ReservoirFill(), 25u);
}

TEST(EncodeStatsTest, ReservoirHoldsEverythingBelowCapacity) {
  EncodeStatsCollector c(EveryKey(64, 0.1));
  for (int i = 0; i < 40; i++) c.OnEncode("key" + std::to_string(i), 8);
  auto snap = c.ReservoirSnapshot();
  ASSERT_EQ(snap.size(), 40u);
  std::set<std::string> uniq(snap.begin(), snap.end());
  EXPECT_EQ(uniq.size(), 40u);
}

TEST(EncodeStatsTest, ReservoirCapsAndStaysRepresentative) {
  EncodeStatsCollector c(EveryKey(100, 0.1));
  for (int i = 0; i < 10000; i++) c.OnEncode("key" + std::to_string(i), 8);
  auto snap = c.ReservoirSnapshot();
  ASSERT_EQ(snap.size(), 100u);

  // Uniform sampling: roughly half the survivors should come from the
  // second half of the stream. Bound loosely (deterministic seed, but we
  // don't want to pin the RNG's exact draw).
  size_t late = 0;
  for (const auto& k : snap) {
    int idx = std::stoi(k.substr(3));
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, 10000);
    if (idx >= 5000) late++;
  }
  EXPECT_GT(late, 20u);
  EXPECT_LT(late, 80u);
}

TEST(EncodeStatsTest, MarkRebuildResetsCountersAndReseedsEwma) {
  EncodeStatsCollector c(EveryKey(16, 0.5));
  for (int i = 0; i < 10; i++) c.OnEncode("abcdefgh", 32);
  EXPECT_EQ(c.KeysSinceRebuild(), 10u);

  c.MarkRebuild(3.5);
  EXPECT_EQ(c.KeysSinceRebuild(), 0u);
  EXPECT_DOUBLE_EQ(c.EwmaCompressionRate(), 3.5);
  EXPECT_EQ(c.ReservoirFill(), 10u);  // corpus survives the swap

  c.OnEncode("abcdefgh", 32);  // CPR 2.0 -> EWMA 2.75
  EXPECT_DOUBLE_EQ(c.EwmaCompressionRate(), 2.75);
  EXPECT_EQ(c.KeysSinceRebuild(), 1u);
}

TEST(EncodeStatsTest, MarkRebuildRestartsReservoirReplacementRate) {
  EncodeStatsCollector c(EveryKey(50, 0.1));
  // Age the stream: lifetime sampled count is 100x the capacity, so the
  // per-key replacement probability has decayed to ~1%.
  for (int i = 0; i < 5000; i++) c.OnEncode("old" + std::to_string(i), 8);

  c.MarkRebuild(2.0);
  for (int i = 0; i < 500; i++) c.OnEncode("new" + std::to_string(i), 8);

  // With the stream restarted at the swap, the 500 post-swap keys behave
  // like positions 51..550 and displace most of the old contents; without
  // the restart the expected number of "new" survivors is ~4.5.
  size_t fresh = 0;
  for (const auto& k : c.ReservoirSnapshot())
    if (k.rfind("new", 0) == 0) fresh++;
  EXPECT_GT(fresh, 25u);
}

// The recency-biased reservoir (reservoir_halflife > 0) keeps its size
// but decays old contents exponentially, so after a distribution flip
// the rebuild/rebalance corpus is dominated by the new distribution long
// before Algorithm R's 1/i replacement rate would get there.
TEST(EncodeStatsTest, RecencyBiasedReservoirTracksADistributionFlip) {
  auto opts = EveryKey(256, 0.1);
  opts.reservoir_halflife = 128;  // survival halves every 128 samples

  EncodeStatsCollector decayed(opts);
  EncodeStatsCollector uniform(EveryKey(256, 0.1));

  // Phase 1: 2000 keys of distribution A; phase 2: 1000 of B. Under
  // uniform sampling B's expected share is 1000/3000; under the decaying
  // reservoir, A's survival after 1000 B-samples is (1/2)^(1000/128),
  // under half a percent.
  for (int i = 0; i < 2000; i++) {
    decayed.OnEncode("aaa" + std::to_string(i), 8);
    uniform.OnEncode("aaa" + std::to_string(i), 8);
  }
  for (int i = 0; i < 1000; i++) {
    decayed.OnEncode("bbb" + std::to_string(i), 8);
    uniform.OnEncode("bbb" + std::to_string(i), 8);
  }

  auto count_b = [](const EncodeStatsCollector& c) {
    size_t b = 0;
    for (const auto& k : c.ReservoirSnapshot())
      if (k.rfind("bbb", 0) == 0) b++;
    return b;
  };
  size_t decayed_b = count_b(decayed);
  size_t uniform_b = count_b(uniform);
  ASSERT_EQ(decayed.ReservoirFill(), 256u);
  // Recent keys dominate the decayed reservoir...
  EXPECT_GT(decayed_b, 230u) << "decayed reservoir still holds old keys";
  // ...while the uniform one stays stream-proportional (loose bounds so
  // the RNG draw isn't pinned).
  EXPECT_GT(uniform_b, 40u);
  EXPECT_LT(uniform_b, 140u);
}

TEST(EncodeStatsTest, DegenerateHalflifeFallsBackToUniform) {
  auto nan_opts = EveryKey(64, 0.1);
  nan_opts.reservoir_halflife = std::nan("");
  auto neg_opts = EveryKey(64, 0.1);
  neg_opts.reservoir_halflife = -5;
  for (auto& opts : {nan_opts, neg_opts}) {
    EncodeStatsCollector c(opts);
    for (int i = 0; i < 500; i++) c.OnEncode("k" + std::to_string(i), 8);
    // Uniform behaviour: early keys survive at capacity/stream rate.
    size_t early = 0;
    for (const auto& k : c.ReservoirSnapshot())
      if (std::stoi(k.substr(1)) < 250) early++;
    EXPECT_GT(early, 10u);
  }
}

TEST(EncodeStatsTest, DegenerateOptionsAreClamped) {
  EncodeStatsCollector::Options o;
  o.reservoir_size = 0;
  o.sample_every = 0;
  o.ewma_alpha = 7.0;
  EncodeStatsCollector c(o);
  c.OnEncode("abcd", 16);
  c.OnEncode("abcdefgh", 16);
  EXPECT_EQ(c.ReservoirFill(), 1u);
  // alpha clamped to 1.0: EWMA tracks the last key exactly.
  EXPECT_DOUBLE_EQ(c.EwmaCompressionRate(), 4.0);
}

}  // namespace
}  // namespace hope::dynamic
