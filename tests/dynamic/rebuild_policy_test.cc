// Rebuild-policy predicates, in particular the factory-input clamps:
// every factory brings degenerate parameters to the nearest valid value
// (the way KeyCountPolicy clamps 0 -> 1) instead of producing a gate
// that fires never, always, or on every poll.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "dynamic/rebuild_policy.h"

namespace hope::dynamic {
namespace {

RebuildSignals Signals(double ewma, double baseline, size_t fill = 1000) {
  RebuildSignals s;
  s.ewma_cpr = ewma;
  s.baseline_cpr = baseline;
  s.reservoir_fill = fill;
  s.reservoir_capacity = 4096;
  return s;
}

TEST(RebuildPolicyTest, CompressionDropTriggersPastThreshold) {
  auto policy = MakeCompressionDropPolicy(0.05, 64);
  EXPECT_FALSE(policy->ShouldRebuild(Signals(2.0, 2.0)));
  EXPECT_FALSE(policy->ShouldRebuild(Signals(1.91, 2.0)));  // -4.5%
  EXPECT_TRUE(policy->ShouldRebuild(Signals(1.89, 2.0)));   // -5.5%
  // No data yet (unseeded EWMA or baseline) never triggers.
  EXPECT_FALSE(policy->ShouldRebuild(Signals(0.0, 2.0)));
  EXPECT_FALSE(policy->ShouldRebuild(Signals(1.5, 0.0)));
  // Reservoir below the fill floor never triggers.
  EXPECT_FALSE(policy->ShouldRebuild(Signals(1.0, 2.0, 63)));
  EXPECT_TRUE(policy->ShouldRebuild(Signals(1.0, 2.0, 64)));
}

TEST(RebuildPolicyTest, CompressionDropClampsDegenerateFraction) {
  // drop_fraction >= 1 would make the gate unfireable (EWMA < 0); it
  // clamps to 0.99 and still fires on a catastrophic drop.
  for (double degenerate : {1.0, 2.0, 1e9}) {
    auto policy = MakeCompressionDropPolicy(degenerate, 1);
    EXPECT_TRUE(policy->ShouldRebuild(Signals(0.019, 2.0))) << degenerate;
    EXPECT_FALSE(policy->ShouldRebuild(Signals(0.021, 2.0))) << degenerate;
  }
  // Negative and NaN clamp to 0: any drop below baseline fires, equality
  // does not (without the clamp, a negative fraction would fire on EWMA
  // *above* baseline too).
  for (double degenerate : {-0.5, -1e9,
                            std::numeric_limits<double>::quiet_NaN()}) {
    auto policy = MakeCompressionDropPolicy(degenerate, 1);
    EXPECT_TRUE(policy->ShouldRebuild(Signals(1.99, 2.0))) << degenerate;
    EXPECT_FALSE(policy->ShouldRebuild(Signals(2.0, 2.0))) << degenerate;
    EXPECT_FALSE(policy->ShouldRebuild(Signals(2.5, 2.0))) << degenerate;
  }
  // min_reservoir_fill 0 clamps to 1: an empty reservoir never triggers.
  auto policy = MakeCompressionDropPolicy(0.05, 0);
  EXPECT_FALSE(policy->ShouldRebuild(Signals(1.0, 2.0, 0)));
  EXPECT_TRUE(policy->ShouldRebuild(Signals(1.0, 2.0, 1)));
}

TEST(RebuildPolicyTest, KeyCountClampsZeroToOne) {
  auto policy = MakeKeyCountPolicy(0);
  RebuildSignals s;
  s.keys_since_rebuild = 0;
  EXPECT_FALSE(policy->ShouldRebuild(s));
  s.keys_since_rebuild = 1;
  EXPECT_TRUE(policy->ShouldRebuild(s));
}

TEST(RebuildPolicyTest, PeriodicClampsDegeneratePeriods) {
  // A zero/negative/NaN period would trigger on every poll, even with
  // zero elapsed time; it clamps to 1ms.
  for (double degenerate : {0.0, -5.0,
                            std::numeric_limits<double>::quiet_NaN()}) {
    auto policy = MakePeriodicPolicy(degenerate);
    RebuildSignals s;
    s.seconds_since_rebuild = 0;
    EXPECT_FALSE(policy->ShouldRebuild(s)) << degenerate;
    s.seconds_since_rebuild = 0.001;
    EXPECT_TRUE(policy->ShouldRebuild(s)) << degenerate;
  }
  // Valid periods pass through unclamped.
  auto policy = MakePeriodicPolicy(10.0);
  RebuildSignals s;
  s.seconds_since_rebuild = 9.9;
  EXPECT_FALSE(policy->ShouldRebuild(s));
  s.seconds_since_rebuild = 10.0;
  EXPECT_TRUE(policy->ShouldRebuild(s));
}

TEST(RebuildPolicyTest, AnyOfAndNever) {
  std::vector<std::unique_ptr<RebuildPolicy>> children;
  children.push_back(MakeKeyCountPolicy(10));
  children.push_back(MakePeriodicPolicy(100.0));
  auto any = MakeAnyOfPolicy(std::move(children));
  RebuildSignals s;
  EXPECT_FALSE(any->ShouldRebuild(s));
  s.keys_since_rebuild = 10;
  EXPECT_TRUE(any->ShouldRebuild(s));
  s.keys_since_rebuild = 0;
  s.seconds_since_rebuild = 100;
  EXPECT_TRUE(any->ShouldRebuild(s));

  EXPECT_FALSE(MakeNeverPolicy()->ShouldRebuild(s));
}

}  // namespace
}  // namespace hope::dynamic
