// RouterVersion boundary derivation and routing, and the per-shard
// independence of the ShardedDictionaryManager: drift confined to one
// shard's key range rebuilds that shard only, and one shared
// BackgroundRebuilder polls every shard.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datasets/datasets.h"
#include "dynamic/background_rebuilder.h"
#include "dynamic/sharded_manager.h"
#include "workload/drift.h"

namespace hope::dynamic {
namespace {

std::vector<std::string> NumberedKeys(size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; i++) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%04zu", i);
    keys.push_back(buf);
  }
  return keys;
}

TEST(RouterVersionTest, EqualWeightQuantileBoundaries) {
  auto sample = NumberedKeys(100);
  RouterVersion router(sample, 4);
  ASSERT_EQ(router.num_ranges(), 4u);
  EXPECT_EQ(router.version(), 0u);
  ASSERT_EQ(router.boundaries().size(), 3u);
  // Quantiles of the sorted sample at 25/50/75.
  EXPECT_EQ(router.boundaries()[0], "key0025");
  EXPECT_EQ(router.boundaries()[1], "key0050");
  EXPECT_EQ(router.boundaries()[2], "key0075");

  // Each shard owns an equal share of the sample.
  std::vector<size_t> counts(router.num_ranges(), 0);
  for (const auto& k : sample) counts[router.Route(k)]++;
  for (size_t c : counts) EXPECT_EQ(c, 25u);
}

TEST(RouterVersionTest, RoutingIsMonotoneAndBoundaryInclusive) {
  RouterVersion router(NumberedKeys(100), 4);
  // A boundary key starts its own shard.
  EXPECT_EQ(router.Route("key0025"), 1u);
  EXPECT_EQ(router.Route("key0024"), 0u);
  EXPECT_EQ(router.Route("key0075"), 3u);
  // Keys outside the sample range route to the edge shards.
  EXPECT_EQ(router.Route(""), 0u);
  EXPECT_EQ(router.Route("aaa"), 0u);
  EXPECT_EQ(router.Route("zzz"), 3u);
  // Monotone: sorted keys route to non-decreasing shards.
  auto sorted = NumberedKeys(100);
  size_t prev = 0;
  for (const auto& k : sorted) {
    size_t s = router.Route(k);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

TEST(RouterVersionTest, DegenerateSamplesCollapseShards) {
  // One distinct key: boundaries collapse to a single shard.
  std::vector<std::string> same(50, "dup");
  EXPECT_EQ(RouterVersion(same, 8).num_ranges(), 1u);
  // Empty sample: single shard covering everything.
  EXPECT_EQ(RouterVersion({}, 8).num_ranges(), 1u);
  // num_shards 0 clamps to 1.
  EXPECT_EQ(RouterVersion(NumberedKeys(10), 0).num_ranges(), 1u);
  // Two distinct values cannot support more than two ranges.
  std::vector<std::string> two;
  for (int i = 0; i < 50; i++) two.push_back(i % 2 ? "bbb" : "aaa");
  RouterVersion router(two, 8);
  EXPECT_LE(router.num_ranges(), 2u);
  EXPECT_LT(router.Route("aaa"), router.num_ranges());
  EXPECT_LT(router.Route("bbb"), router.num_ranges());
}

TEST(ShardedManagerTest, BuildsPerShardDictionariesWithOwnBaselines) {
  auto sample = GenerateEmails(2000, 3);
  ShardedDictionaryManager::Options opts;
  opts.num_shards = 4;
  opts.shard.scheme = Scheme::kSingleChar;
  opts.shard.dict_size_limit = 256;
  ShardedDictionaryManager mgr(sample, opts);
  ASSERT_EQ(mgr.num_shards(), 4u);
  for (size_t s = 0; s < mgr.num_shards(); s++) {
    EXPECT_EQ(mgr.shard(s).epoch(), 0u);
    EXPECT_GT(mgr.shard(s).baseline_cpr(), 1.0) << "shard " << s;
  }
  // Encode routes to the owning shard's dictionary.
  for (const auto& k : SampleKeys(sample, 0.05)) {
    size_t s = mgr.Route(k);
    auto snap = mgr.shard(s).Acquire();
    auto clone = snap.hope->Clone();  // observer-free comparison encode
    EXPECT_EQ(mgr.Encode(k), clone->Encode(k));
  }
}

TEST(ShardedManagerTest, EmptySampleThrows) {
  ShardedDictionaryManager::Options opts;
  EXPECT_THROW(ShardedDictionaryManager({}, opts), std::invalid_argument);
}

TEST(ShardedManagerTest, EpochsAndCountersAggregate) {
  auto sample = GenerateEmails(1000, 5);
  ShardedDictionaryManager::Options opts;
  opts.num_shards = 3;
  opts.shard.scheme = Scheme::kSingleChar;
  opts.shard.dict_size_limit = 256;
  ShardedDictionaryManager mgr(sample, opts);
  ASSERT_EQ(mgr.Epochs(), (std::vector<uint64_t>{0, 0, 0}));

  // Publish directly into shard 1; only its epoch moves.
  mgr.shard(1).Publish(Hope::Build(Scheme::kSingleChar, sample, 256));
  EXPECT_EQ(mgr.Epochs(), (std::vector<uint64_t>{0, 1, 0}));
  EXPECT_EQ(mgr.rebuilds_published(), 1u);
  EXPECT_EQ(mgr.rebuilds_rejected(), 0u);
}

// Drift confined to one shard's key range trips that shard's policy and
// leaves the others untouched — the point of sharding.
TEST(ShardedManagerTest, LocalizedDriftRebuildsOnlyTheDriftedShard) {
  DriftOptions dopt;
  dopt.model = DriftModel::kUrlStyle;
  dopt.keys_per_phase = 4000;
  dopt.num_phases = 2;
  dopt.seed = 11;
  DriftingWorkload drift(dopt);
  auto stable = drift.Phase(0);

  ShardedDictionaryManager::Options opts;
  opts.num_shards = 4;
  opts.shard.scheme = Scheme::kSingleChar;
  opts.shard.dict_size_limit = 256;
  opts.shard.stats.sample_every = 1;
  opts.shard.stats.ewma_alpha = 0.01;
  ShardedDictionaryManager mgr(
      SampleKeys(stable, 0.1), opts,
      [] { return MakeCompressionDropPolicy(0.05, 64); });

  // The victim is the shard owning the most query-style (part B) keys.
  std::vector<std::vector<std::string>> b_by_shard(mgr.num_shards());
  for (const auto& k : drift.part_b()) b_by_shard[mgr.Route(k)].push_back(k);
  size_t victim = 0;
  for (size_t s = 1; s < b_by_shard.size(); s++)
    if (b_by_shard[s].size() > b_by_shard[victim].size()) victim = s;
  ASSERT_FALSE(b_by_shard[victim].empty());

  // Stable traffic everywhere, then drifted traffic into the victim only.
  for (const auto& k : stable) mgr.Encode(k);
  for (int round = 0; round < 50 && !mgr.shard(victim).ShouldRebuild();
       round++)
    for (const auto& k : b_by_shard[victim]) mgr.Encode(k);

  EXPECT_TRUE(mgr.shard(victim).ShouldRebuild());
  EXPECT_TRUE(mgr.ShouldRebuild());
  for (size_t s = 0; s < mgr.num_shards(); s++) {
    if (s != victim) {
      EXPECT_FALSE(mgr.shard(s).ShouldRebuild()) << "shard " << s;
    }
  }

  // One polling pass rebuilds the victim and nothing else.
  size_t published = mgr.RebuildPending();
  EXPECT_EQ(published, 1u);
  EXPECT_GE(mgr.shard(victim).epoch(), 1u);
  for (size_t s = 0; s < mgr.num_shards(); s++) {
    if (s != victim) {
      EXPECT_EQ(mgr.shard(s).epoch(), 0u) << "shard " << s;
    }
  }
}

// A single shared worker loop serves every shard.
TEST(ShardedManagerTest, SharedBackgroundRebuilderPollsAllShards) {
  // Single-char dictionaries and a small reservoir keep each of the many
  // rebuild cycles cheap (this test exercises the shared polling loop,
  // not build quality), so it stays fast under TSan's ~10x slowdown.
  auto stable = GenerateEmails(2000, 13);

  ShardedDictionaryManager::Options opts;
  opts.num_shards = 4;
  opts.shard.scheme = Scheme::kSingleChar;
  opts.shard.dict_size_limit = 256;
  opts.shard.stats.sample_every = 1;
  opts.shard.stats.reservoir_size = 256;
  opts.shard.min_cpr_gain = -1;  // publish any candidate the policy asks for
  ShardedDictionaryManager mgr(SampleKeys(stable, 0.1), opts,
                               [] { return MakeKeyCountPolicy(500); });

  BackgroundRebuilder::Options ropt;
  ropt.poll_interval = std::chrono::milliseconds(5);
  BackgroundRebuilder rebuilder(&mgr, ropt);
  EXPECT_EQ(rebuilder.num_managers(), mgr.num_shards());

  // Traffic to every shard; the key-count policy trips per shard and the
  // shared loop publishes for each (bounded by iterations, not wall
  // time, so sanitizer runs don't flake).
  for (int round = 0; round < 400; round++) {
    for (const auto& k : stable) mgr.Encode(k);
    rebuilder.Nudge();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    bool all = true;
    for (size_t s = 0; s < mgr.num_shards(); s++)
      if (mgr.shard(s).epoch() == 0) all = false;
    if (all) break;
  }
  rebuilder.Stop();
  for (size_t s = 0; s < mgr.num_shards(); s++)
    EXPECT_GE(mgr.shard(s).epoch(), 1u) << "shard " << s;
  EXPECT_GE(rebuilder.rebuilds_completed(), mgr.num_shards());
}

}  // namespace
}  // namespace hope::dynamic
