// BackgroundRebuilder shutdown latency: Stop() takes effect between
// managers inside a sweep, so a long multi-shard poll delays shutdown by
// at most one manager's step — not the whole sweep. Regression for the
// many-shard case where each policy evaluation costs real time.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dynamic/background_rebuilder.h"
#include "dynamic/dictionary_manager.h"

namespace hope::dynamic {
namespace {

/// A policy whose evaluation takes real wall time, standing in for any
/// slow per-shard poll step (big signals assembly, slow storage, an
/// actual rebuild). Never triggers, so sweeps are pure policy time.
class SlowPolicy final : public RebuildPolicy {
 public:
  explicit SlowPolicy(std::chrono::milliseconds delay) : delay_(delay) {}
  bool ShouldRebuild(const RebuildSignals&) const override {
    std::this_thread::sleep_for(delay_);
    return false;
  }
  const char* Name() const override { return "slow"; }

 private:
  const std::chrono::milliseconds delay_;
};

TEST(RebuilderShutdownTest, StopDoesNotWaitOutAMultiShardSweep) {
  // 24 managers x 60ms of policy time = a ~1.4s sweep. With the stop
  // flag checked between managers, Stop() must return after at most one
  // manager's step plus scheduling noise.
  constexpr int kManagers = 24;
  constexpr auto kPolicyDelay = std::chrono::milliseconds(60);

  std::vector<std::string> sample;
  for (int i = 0; i < 64; i++) sample.push_back("key" + std::to_string(i));

  std::vector<std::unique_ptr<DictionaryManager>> owned;
  std::vector<DictionaryManager*> managers;
  DictionaryManager::Options mopt;
  mopt.scheme = Scheme::kSingleChar;
  mopt.dict_size_limit = 256;
  for (int i = 0; i < kManagers; i++) {
    owned.push_back(std::make_unique<DictionaryManager>(
        Hope::Build(Scheme::kSingleChar, sample, 256), mopt,
        std::make_unique<SlowPolicy>(kPolicyDelay), sample));
    managers.push_back(owned.back().get());
  }

  BackgroundRebuilder::Options ropt;
  ropt.poll_interval = std::chrono::milliseconds(1);
  BackgroundRebuilder rebuilder(managers, ropt);
  // Let the worker get well into a sweep before stopping.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  auto start = std::chrono::steady_clock::now();
  rebuilder.Stop();
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  // Full-sweep latency would be ~1.3s+ even ignoring overhead; one
  // manager's step is 60ms. 700ms splits them with margin for loaded CI
  // machines and sanitizer slowdown (sleeps don't scale under TSan).
  EXPECT_LT(elapsed.count(), 700) << "Stop() waited out the sweep";
}

}  // namespace
}  // namespace hope::dynamic
