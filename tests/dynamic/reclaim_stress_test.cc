// Bounded-memory regression tests for the epoch-reclaimed hot-swap
// paths: where the seed behavior grew linearly (every dictionary
// Version retained by outstanding shared_ptrs until quiesce, every
// RouterVersion and RebalancePlan retained for the manager's lifetime),
// these stress runs drive >= 1000 publish / rebalance cycles with
// readers spinning and assert — via the reclaimer's retired/reclaimed
// counters and the plan-history length — that live garbage stays flat.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "btree/btree.h"
#include "common/epoch_reclaim.h"
#include "dynamic/background_rebuilder.h"
#include "dynamic/dictionary_manager.h"
#include "dynamic/sharded_index.h"
#include "dynamic/sharded_manager.h"

namespace hope::dynamic {
namespace {

std::vector<std::string> PrefixedKeys(char prefix, size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; i++) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%c%04zu", prefix, i);
    keys.push_back(buf);
  }
  return keys;
}

// 1000 dictionary publishes against spinning readers: every superseded
// Version is retired and freed while the run is still going. The seed
// regime (atomic<shared_ptr> with no reclamation pressure, or
// retain-forever) would hold all 1000.
TEST(ReclaimStressTest, ThousandPublishesKeepLiveVersionsBounded) {
  auto keys = PrefixedKeys('k', 64);
  DictionaryManager::Options opts;
  opts.scheme = Scheme::kSingleChar;
  opts.dict_size_limit = 256;
  DictionaryManager mgr(Hope::Build(Scheme::kSingleChar, keys, 256), opts,
                        MakeNeverPolicy(), keys);
  // A pre-built template keeps the loop cost at Clone(), not Build().
  std::unique_ptr<Hope> base = Hope::Build(Scheme::kSingleChar, keys, 256);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; r++) {
    readers.emplace_back([&, r] {
      size_t i = static_cast<size_t>(r);
      while (!stop.load(std::memory_order_relaxed)) {
        DictSnapshot snap = mgr.Acquire();
        const std::string& key = keys[i++ % keys.size()];
        size_t bits = 0;
        std::string enc = snap.hope->Encode(key, &bits);
        if (snap.hope->Decode(enc, bits) != key) {
          failures.fetch_add(1);
          return;
        }
        std::this_thread::yield();
      }
    });
  }

  constexpr uint64_t kPublishes = 1000;
  uint64_t max_pending = 0;
  for (uint64_t s = 0; s < kPublishes; s++) {
    mgr.Publish(base->Clone());
    max_pending = std::max(max_pending, mgr.reclaimer().pending());
  }

  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mgr.epoch(), kPublishes);
  EXPECT_EQ(mgr.reclaimer().retired(), kPublishes);
  // Readers pin only across a snapshot copy, so the limbo list never
  // builds up more than a handful of versions — far from the linear
  // growth the retain-forever regime shows at 1000 publishes.
  EXPECT_LT(max_pending, 256u);
  // With the readers gone a final poll frees everything retired.
  for (int i = 0; i < 10 && mgr.reclaimer().pending() > 0; i++)
    mgr.reclaimer().TryReclaim();
  EXPECT_EQ(mgr.reclaimer().reclaimed(), kPublishes);
}

// 1000 forced rebalances with a registered, continuously syncing index
// and spinning Route() readers: superseded RouterVersions are retired
// and freed, and the plan history hovers at <= 2 entries instead of
// accumulating 1000 plans.
TEST(ReclaimStressTest, ThousandRebalancesKeepRoutersAndPlansBounded) {
  auto set_a = PrefixedKeys('a', 64);
  auto set_b = PrefixedKeys('b', 64);

  ShardedDictionaryManager::Options opts;
  opts.num_shards = 2;
  opts.shard.scheme = Scheme::kSingleChar;
  opts.shard.dict_size_limit = 256;
  opts.min_shard_sample = 8;
  opts.min_rebalance_corpus = 16;
  opts.retrain_moved_shards = false;  // router-only cycles
  ShardedDictionaryManager mgr(set_a, opts);
  ShardedVersionedIndex<BTree> index(&mgr);
  for (size_t i = 0; i < 20; i++) index.Insert(set_a[i], i);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; r++) {
    readers.emplace_back([&, r] {
      size_t i = static_cast<size_t>(r);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string& key = set_b[i++ % set_b.size()];
        if (mgr.Route(key) >= mgr.num_shards()) return;  // impossible
        std::this_thread::yield();
      }
    });
  }

  constexpr uint64_t kCycles = 1000;
  uint64_t published = 0;
  uint64_t max_pending = 0, max_plans = 0;
  for (uint64_t c = 0; c < kCycles; c++) {
    // Alternating reservoir contents flip the derived boundary between
    // the two key families, so every forced cycle publishes a plan.
    const auto& seed = (c % 2 == 0) ? set_b : set_a;
    for (size_t s = 0; s < mgr.num_shards(); s++)
      mgr.shard(s).stats().SeedReservoir(seed);
    auto plan = mgr.RebalanceNow(/*force=*/true);
    ASSERT_NE(plan, nullptr) << "cycle " << c;
    published++;
    index.SyncRouter();  // apply + release the plan pin
    max_pending = std::max(max_pending, mgr.reclaimer().pending());
    max_plans = std::max(max_plans, static_cast<uint64_t>(
                                        mgr.plans_retained()));
  }

  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(published, kCycles);
  EXPECT_EQ(mgr.rebalances_published(), kCycles);
  EXPECT_EQ(mgr.router_version(), kCycles);
  EXPECT_EQ(index.router_version(), kCycles);
  EXPECT_EQ(index.size(), 20u);

  // Routers: all retired, live garbage bounded, fully freed at the end.
  EXPECT_EQ(mgr.reclaimer().retired(), kCycles);
  EXPECT_LT(max_pending, 256u);
  for (int i = 0; i < 10 && mgr.reclaimer().pending() > 0; i++)
    mgr.reclaimer().TryReclaim();
  EXPECT_EQ(mgr.reclaimer().reclaimed(), kCycles);

  // Plans: the synced index keeps the history at a couple of entries;
  // 1000 cycles pruned ~1000 plans instead of retaining them.
  EXPECT_LE(max_plans, 2u);
  EXPECT_EQ(mgr.plans_retained(), 0u);
  EXPECT_EQ(mgr.plans_pruned(), kCycles);

  // All entries still resolve after 1000 migration-bearing plans.
  for (size_t i = 0; i < 20; i++) {
    uint64_t v = 0;
    ASSERT_TRUE(index.Lookup(set_a[i], &v)) << set_a[i];
    EXPECT_EQ(v, i);
  }
}

// The worker loop's per-cycle TryReclaim frees retires that were
// blocked by a pinned reader at publish time, even when no further
// publish ever runs — an idle manager must not park garbage forever.
TEST(ReclaimStressTest, BackgroundWorkerReclaimsIdleGarbage) {
  auto keys = PrefixedKeys('k', 64);
  DictionaryManager::Options opts;
  opts.scheme = Scheme::kSingleChar;
  opts.dict_size_limit = 256;
  DictionaryManager mgr(Hope::Build(Scheme::kSingleChar, keys, 256), opts,
                        MakeNeverPolicy(), keys);

  {
    // A pinned guard across the publish forces the retired version to
    // stay in limbo: the publish's own advance attempts are vetoed.
    ebr::EpochReclaimer::Guard pin(mgr.reclaimer());
    mgr.Publish(Hope::Build(Scheme::kSingleChar, keys, 256));
    EXPECT_EQ(mgr.reclaimer().pending(), 1u);
  }
  EXPECT_EQ(mgr.reclaimer().pending(), 1u);  // unpin alone frees nothing

  BackgroundRebuilder::Options ropt;
  ropt.poll_interval = std::chrono::milliseconds(2);
  BackgroundRebuilder rebuilder(&mgr, ropt);
  for (int i = 0; i < 2000 && mgr.reclaimer().pending() > 0; i++)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  rebuilder.Stop();

  EXPECT_EQ(mgr.reclaimer().pending(), 0u);
  EXPECT_GE(rebuilder.versions_reclaimed(), 1u);
}

}  // namespace
}  // namespace hope::dynamic
