#include "common/zipf.h"

#include <gtest/gtest.h>

#include <map>

namespace hope {
namespace {

TEST(ZipfTest, RanksAreSkewed) {
  std::mt19937_64 rng(1);
  ZipfDistribution zipf(1000, 0.99);
  std::map<size_t, size_t> hist;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; i++) hist[zipf(rng)]++;
  // Rank 0 must dominate rank 99 by roughly 100^0.99.
  EXPECT_GT(hist[0], hist[99] * 20);
  // All draws are in range.
  EXPECT_LT(hist.rbegin()->first, 1000u);
}

TEST(ZipfTest, UniformTheta0) {
  std::mt19937_64 rng(2);
  ZipfDistribution zipf(10, 0.0);
  std::map<size_t, size_t> hist;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; i++) hist[zipf(rng)]++;
  for (auto& [rank, count] : hist) {
    EXPECT_NEAR(static_cast<double>(count), kDraws / 10.0, kDraws * 0.01)
        << "rank " << rank;
  }
}

TEST(ZipfTest, ScrambledZipfSpreadsHotKeys) {
  std::mt19937_64 rng(3);
  ScrambledZipf sz(100000, 0.99);
  std::map<size_t, size_t> hist;
  for (int i = 0; i < 100000; i++) hist[sz(rng)]++;
  // The hottest item should not be item 0 with overwhelming probability
  // (the scramble spreads ranks across the space).
  size_t hottest = 0, hottest_count = 0;
  for (auto& [item, count] : hist)
    if (count > hottest_count) {
      hottest = item;
      hottest_count = count;
    }
  EXPECT_NE(hottest, 0u);
  EXPECT_GT(hottest_count, 1000u);  // still very skewed
}

TEST(ZipfTest, SingleItem) {
  std::mt19937_64 rng(4);
  ZipfDistribution zipf(1, 0.99);
  for (int i = 0; i < 100; i++) EXPECT_EQ(zipf(rng), 0u);
}

}  // namespace
}  // namespace hope
