// Unit and stress coverage for the EBR primitive itself: retire/reclaim
// ordering against pinned guards, guard nesting, exact deleter
// invocation counts, and a multi-threaded publish/read stress that
// asserts memory is actually freed (reclaimed > 0), not just retained.
// Runs under the `dynamic` ctest label so the TSan CI job covers the
// pin/advance protocol.
#include "common/epoch_reclaim.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace hope::ebr {
namespace {

TEST(EpochReclaimTest, RetireWithNoReadersFreesOnNextReclaim) {
  EpochReclaimer ebr;
  int freed = 0;
  ebr.Retire([&] { freed++; });
  EXPECT_EQ(ebr.retired(), 1u);
  // The retire itself attempts two advances; with no reader pinned the
  // batch ages straight to freeable.
  EXPECT_EQ(freed, 1);
  EXPECT_EQ(ebr.reclaimed(), 1u);
  EXPECT_EQ(ebr.pending(), 0u);
}

TEST(EpochReclaimTest, GuardBlocksReclamationUntilExit) {
  EpochReclaimer ebr;
  int freed = 0;
  std::optional<EpochReclaimer::Guard> guard;
  guard.emplace(ebr);
  ebr.Retire([&] { freed++; });
  // The pinned guard predates the retire: the epoch cannot advance past
  // it, so no amount of polling frees the object.
  for (int i = 0; i < 5; i++) ebr.TryReclaim();
  EXPECT_EQ(freed, 0);
  EXPECT_EQ(ebr.pending(), 1u);

  guard.reset();  // unpin
  for (int i = 0; i < 3 && freed == 0; i++) ebr.TryReclaim();
  EXPECT_EQ(freed, 1);
  EXPECT_EQ(ebr.pending(), 0u);
}

TEST(EpochReclaimTest, NestedGuardsUnpinOnlyAtOutermostExit) {
  EpochReclaimer ebr;
  int freed = 0;
  {
    EpochReclaimer::Guard outer(ebr);
    {
      EpochReclaimer::Guard inner(ebr);
      ebr.Retire([&] { freed++; });
    }
    // Inner exit must not unpin: the outer guard still protects loads.
    for (int i = 0; i < 5; i++) ebr.TryReclaim();
    EXPECT_EQ(freed, 0);
  }
  for (int i = 0; i < 3 && freed == 0; i++) ebr.TryReclaim();
  EXPECT_EQ(freed, 1);
}

TEST(EpochReclaimTest, ReclaimOrderRespectsRetireEpochs) {
  EpochReclaimer ebr;
  int freed_old = 0, freed_new = 0;
  // Retired before any reader: freeable immediately.
  ebr.Retire([&] { freed_old++; });
  EXPECT_EQ(freed_old, 1);

  // Retired while a reader is pinned: must wait for that reader even
  // though the earlier object is long gone.
  std::optional<EpochReclaimer::Guard> guard;
  guard.emplace(ebr);
  ebr.Retire([&] { freed_new++; });
  ebr.TryReclaim();
  EXPECT_EQ(freed_new, 0);
  guard.reset();
  for (int i = 0; i < 3 && freed_new == 0; i++) ebr.TryReclaim();
  EXPECT_EQ(freed_new, 1);
}

TEST(EpochReclaimTest, PointerRetireRunsTypedDeleter) {
  EpochReclaimer ebr;
  static int destroyed;
  destroyed = 0;
  struct Tracked {
    ~Tracked() { destroyed++; }
  };
  ebr.RetireDelete(new Tracked);
  ebr.Retire(new Tracked, [](void* p) { delete static_cast<Tracked*>(p); });
  for (int i = 0; i < 3 && ebr.pending() > 0; i++) ebr.TryReclaim();
  EXPECT_EQ(destroyed, 2);
  EXPECT_EQ(ebr.reclaimed(), 2u);
}

TEST(EpochReclaimTest, EveryDeleterRunsExactlyOnceThroughDrain) {
  constexpr int kObjects = 100;
  std::vector<int> counts(kObjects, 0);
  {
    EpochReclaimer ebr;
    std::optional<EpochReclaimer::Guard> guard;
    guard.emplace(ebr);
    for (int i = 0; i < kObjects; i++)
      ebr.Retire([&counts, i] { counts[i]++; });
    EXPECT_EQ(ebr.retired(), static_cast<uint64_t>(kObjects));
    EXPECT_EQ(ebr.reclaimed(), 0u);  // reader pinned across all retires
    guard.reset();
    // Destructor drains whatever polling has not freed yet.
  }
  for (int i = 0; i < kObjects; i++) EXPECT_EQ(counts[i], 1) << i;
}

TEST(EpochReclaimTest, GuardsOnDistinctReclaimersAreIndependent) {
  EpochReclaimer a, b;
  int freed = 0;
  EpochReclaimer::Guard guard_b(b);  // pins b only
  a.Retire([&] { freed++; });
  EXPECT_EQ(freed, 1);  // a has no pinned readers
  EXPECT_EQ(b.pending(), 0u);
}

// The TSan-facing stress: readers spin loading a published pointer
// inside guards while the writer hot-swaps it across >= 100 publishes.
// Asserts the grace period holds (payload integrity) AND that memory is
// actually freed while readers are still running (reclaimed > 0 before
// teardown) — the regression the old retain-forever regime would fail.
TEST(EpochReclaimStressTest, ReadersSurviveHundredsOfPublishes) {
  constexpr uint64_t kMask = 0x5a5a5a5a5a5a5a5aull;
  struct Node {
    uint64_t serial;
    uint64_t check;  // serial ^ kMask: torn or freed reads break this
  };

  EpochReclaimer ebr;
  std::atomic<Node*> published{new Node{0, kMask}};
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> reads{0};

  constexpr int kReaders = 4;
  constexpr uint64_t kPublishes = 150;

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; r++) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochReclaimer::Guard guard(ebr);
        Node* n = published.load(std::memory_order_seq_cst);
        if ((n->serial ^ kMask) != n->check) {
          failures.fetch_add(1);
          return;
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (uint64_t s = 1; s <= kPublishes; s++) {
    Node* fresh = new Node{s, s ^ kMask};
    Node* old = published.exchange(fresh, std::memory_order_seq_cst);
    ebr.RetireDelete(old);
    if (s % 10 == 0) std::this_thread::yield();
  }

  // Memory must be freed WHILE readers still spin — retention is the
  // bug this subsystem exists to fix. (Bounded wait: guards are brief,
  // but a loaded single-core runner may need a few extra polls.)
  for (int i = 0; i < 1000 && ebr.reclaimed() == 0; i++) {
    ebr.TryReclaim();
    std::this_thread::yield();
  }
  EXPECT_GT(ebr.reclaimed(), 0u);

  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(ebr.retired(), kPublishes);

  ebr.Drain();
  EXPECT_EQ(ebr.reclaimed(), kPublishes);
  EXPECT_EQ(ebr.pending(), 0u);
  delete published.load();
}

// Threads that exit release their slots; later threads recycle them, so
// churning through many short-lived reader threads neither leaks slots
// nor corrupts the epoch protocol.
TEST(EpochReclaimStressTest, ShortLivedThreadsRecycleSlots) {
  EpochReclaimer ebr;
  std::atomic<int> freed{0};
  for (int round = 0; round < 20; round++) {
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; t++) {
      threads.emplace_back([&] {
        EpochReclaimer::Guard guard(ebr);
        std::this_thread::yield();
      });
    }
    ebr.Retire([&] { freed.fetch_add(1); });
    for (auto& t : threads) t.join();
  }
  ebr.Drain();
  EXPECT_EQ(freed.load(), 20);
}

// The slot list compacts, not just recycles: after waves of wide thread
// fan-out die down, the list shrinks back to the recycling cushion
// instead of staying at the historical peak. A long-running server that
// once burst to hundreds of reader threads must not scan hundreds of
// slots on every Retire forever after.
TEST(EpochReclaimStressTest, SlotListShrinksAfterThreadChurn) {
  EpochReclaimer ebr;
  const size_t kWave = 24;
  for (int round = 0; round < 8; round++) {
    std::vector<std::thread> threads;
    std::atomic<size_t> inside{0};
    std::atomic<bool> release{false};
    for (size_t t = 0; t < kWave; t++) {
      threads.emplace_back([&] {
        EpochReclaimer::Guard guard(ebr);
        inside.fetch_add(1);
        while (!release.load()) std::this_thread::yield();
      });
    }
    // Hold all guards at once so the wave genuinely needs kWave slots.
    while (inside.load() < kWave) std::this_thread::yield();
    EXPECT_GE(ebr.slot_count(), kWave);
    release.store(true);
    for (auto& t : threads) t.join();
    ebr.TryReclaim();  // compaction runs on the reclaim path
  }
  // Everything released: the list holds at most the recycling cushion
  // (a small constant), not the kWave peak.
  ebr.TryReclaim();
  EXPECT_LE(ebr.slot_count(), 8u);
  // The survivors still work.
  {
    EpochReclaimer::Guard guard(ebr);
  }
  ebr.Retire([] {});
  ebr.Drain();
}

}  // namespace
}  // namespace hope::ebr
