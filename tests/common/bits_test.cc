#include "common/bits.h"

#include <gtest/gtest.h>

#include <random>

namespace hope {
namespace {

TEST(BitsTest, PopCount) {
  EXPECT_EQ(PopCount64(0), 0);
  EXPECT_EQ(PopCount64(~uint64_t{0}), 64);
  EXPECT_EQ(PopCount64(0xF0F0), 8);
}

TEST(BitsTest, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(4), 2);
  EXPECT_EQ(CeilLog2(5), 3);
  EXPECT_EQ(CeilLog2(1024), 10);
  EXPECT_EQ(CeilLog2(1025), 11);
}

TEST(BitsTest, GetSetBit) {
  uint64_t words[2] = {0, 0};
  SetBit(words, 0);
  SetBit(words, 63);
  SetBit(words, 64);
  SetBit(words, 127);
  EXPECT_TRUE(GetBit(words, 0));
  EXPECT_TRUE(GetBit(words, 63));
  EXPECT_TRUE(GetBit(words, 64));
  EXPECT_TRUE(GetBit(words, 127));
  EXPECT_FALSE(GetBit(words, 1));
  EXPECT_FALSE(GetBit(words, 65));
  // MSB-first within a word.
  EXPECT_EQ(words[0] >> 63, 1u);
}

TEST(BitsTest, CodeToString) {
  Code c{0b101ull << 61, 3};
  EXPECT_EQ(CodeToString(c), "101");
  EXPECT_TRUE(CodeBit(c, 0));
  EXPECT_FALSE(CodeBit(c, 1));
  EXPECT_TRUE(CodeBit(c, 2));
}

TEST(BitsTest, AppendCodeSingleByte) {
  std::string buf;
  size_t off = AppendCode(&buf, 0, Code{0b101ull << 61, 3});
  EXPECT_EQ(off, 3u);
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0b10100000);
  off = AppendCode(&buf, off, Code{0b11ull << 62, 2});
  EXPECT_EQ(off, 5u);
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0b10111000);
}

TEST(BitsTest, AppendCodeSpansBytes) {
  std::string buf;
  size_t off = AppendCode(&buf, 0, Code{0x3Full << 58, 6});   // 111111
  off = AppendCode(&buf, off, Code{0b0000011ull << 57, 7});   // 0000011
  EXPECT_EQ(off, 13u);
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0b11111100);
  EXPECT_EQ(static_cast<uint8_t>(buf[1]), 0b00011000);
}

TEST(BitsTest, CompareBitStringsBasic) {
  std::string a{"\x80", 1};  // bit 1
  std::string b{"\x00", 1};  // bit 0
  EXPECT_GT(CompareBitStrings(a, 1, b, 1), 0);
  EXPECT_LT(CompareBitStrings(b, 1, a, 1), 0);
  EXPECT_EQ(CompareBitStrings(a, 1, a, 1), 0);
}

TEST(BitsTest, CompareBitStringsPrefix) {
  std::string a{"\xA0", 1};  // 101
  std::string b{"\xA8", 1};  // 10101
  EXPECT_LT(CompareBitStrings(a, 3, b, 5), 0);  // prefix < extension
  EXPECT_GT(CompareBitStrings(b, 5, a, 3), 0);
  EXPECT_EQ(CompareBitStrings(a, 3, b, 3), 0);  // same first 3 bits
}

TEST(BitsTest, CompareBitStringsRandomAgainstReference) {
  std::mt19937_64 rng(7);
  for (int iter = 0; iter < 2000; iter++) {
    size_t abits = rng() % 40, bbits = rng() % 40;
    std::string a((abits + 7) / 8, '\0'), b((bbits + 7) / 8, '\0');
    std::string abin, bbin;
    for (size_t i = 0; i < abits; i++)
      if (rng() & 1) {
        a[i / 8] = static_cast<char>(static_cast<uint8_t>(a[i / 8]) |
                                     (1 << (7 - i % 8)));
      }
    for (size_t i = 0; i < bbits; i++)
      if (rng() & 1) {
        b[i / 8] = static_cast<char>(static_cast<uint8_t>(b[i / 8]) |
                                     (1 << (7 - i % 8)));
      }
    for (size_t i = 0; i < abits; i++)
      abin += ((static_cast<uint8_t>(a[i / 8]) >> (7 - i % 8)) & 1) ? '1'
                                                                    : '0';
    for (size_t i = 0; i < bbits; i++)
      bbin += ((static_cast<uint8_t>(b[i / 8]) >> (7 - i % 8)) & 1) ? '1'
                                                                    : '0';
    int expect = abin < bbin ? -1 : (abin == bbin ? 0 : 1);
    int got = CompareBitStrings(a, abits, b, bbits);
    got = got < 0 ? -1 : (got == 0 ? 0 : 1);
    EXPECT_EQ(got, expect) << "a=" << abin << " b=" << bbin;
  }
}

}  // namespace
}  // namespace hope
