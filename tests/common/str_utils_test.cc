#include "common/str_utils.h"

#include <gtest/gtest.h>

namespace hope {
namespace {

TEST(StrUtilsTest, LcpLen) {
  EXPECT_EQ(LcpLen("", ""), 0u);
  EXPECT_EQ(LcpLen("abc", "abd"), 2u);
  EXPECT_EQ(LcpLen("abc", "abc"), 3u);
  EXPECT_EQ(LcpLen("abc", "abcde"), 3u);
  EXPECT_EQ(LcpLen("xyz", "abc"), 0u);
}

TEST(StrUtilsTest, Successor) {
  EXPECT_EQ(Successor("abc"), std::string("abc\0", 4));
  EXPECT_EQ(Successor(""), std::string("\0", 1));
}

TEST(StrUtilsTest, PrefixUpperBound) {
  EXPECT_EQ(PrefixUpperBound("abc"), "abd");
  EXPECT_EQ(PrefixUpperBound(std::string("ab\xff", 3)), "ac");
  EXPECT_EQ(PrefixUpperBound(std::string("\xff\xff", 2)), "");
  EXPECT_EQ(PrefixUpperBound(std::string("a\xff\xff", 3)), "b");
}

TEST(StrUtilsTest, IntervalCommonPrefixSimple) {
  // [abc, abd): common prefix "abc".
  EXPECT_EQ(IntervalCommonPrefix("abc", "abd"), "abc");
  // [inh, ion): common prefix "i" (paper Fig. 4d example).
  EXPECT_EQ(IntervalCommonPrefix("inh", "ion"), "i");
  // [sioo, t): common prefix "s" (paper Fig. 4c example).
  EXPECT_EQ(IntervalCommonPrefix("sioo", "t"), "s");
  // [azz, b): all members start with "a".
  EXPECT_EQ(IntervalCommonPrefix("azz", "b"), "a");
}

TEST(StrUtilsTest, IntervalCommonPrefixTrailingZeros) {
  // [b, b\0): contains only "b"; pred(b\0) = "b".
  EXPECT_EQ(IntervalCommonPrefix("b", std::string("b\0", 2)), "b");
  // [ab, ab\0\0): contains only "ab" and "ab\0".
  EXPECT_EQ(IntervalCommonPrefix("ab", std::string("ab\0\0", 4)), "ab");
}

TEST(StrUtilsTest, IntervalCommonPrefixNoCommon) {
  // [az, c): spans "b" so no common prefix.
  EXPECT_EQ(IntervalCommonPrefix("az", "c"), "");
  // ["", x): contains "" (no bytes).
  EXPECT_EQ(IntervalCommonPrefix("", "foo"), "");
}

TEST(StrUtilsTest, IntervalCommonPrefixUnbounded) {
  // [x, +inf): only all-0xFF lower bounds share a prefix with +inf side.
  EXPECT_EQ(IntervalCommonPrefix("abc", ""), "");
  EXPECT_EQ(IntervalCommonPrefix(std::string("\xff", 1), ""),
            std::string("\xff", 1));
  EXPECT_EQ(IntervalCommonPrefix(std::string("\xff\xff", 2), ""),
            std::string("\xff\xff", 2));
}

}  // namespace
}  // namespace hope
