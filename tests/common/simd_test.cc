// Exhaustive pinning of the encode-hot-path kernels in common/simd.h:
// every dispatched kernel must agree with its naive scalar reference for
// all 256 bit positions / all slot counts / randomized byte content. The
// HOPE_NO_SIMD CI row re-runs this suite on the portable tier.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>

#include "common/simd.h"

namespace hope {
namespace {

using Bitmap = uint64_t[4];

void FillPattern(Bitmap bm, int pattern, std::mt19937_64* rng) {
  switch (pattern) {
    case 0:  // empty
      std::memset(bm, 0, 32);
      break;
    case 1:  // full
      std::memset(bm, 0xFF, 32);
      break;
    case 2:  // single bit per word boundary region
      std::memset(bm, 0, 32);
      bm[0] = uint64_t{1} << 63;  // position 0
      bm[1] = uint64_t{1};        // position 127
      bm[3] = uint64_t{1};        // position 255
      break;
    case 3:  // alternating
      for (int w = 0; w < 4; w++) bm[w] = 0xAAAAAAAAAAAAAAAAull;
      break;
    default:  // random
      for (int w = 0; w < 4; w++) bm[w] = (*rng)();
      break;
  }
}

TEST(SimdBitmapTest, Rank256BelowMatchesScalarExhaustively) {
  std::mt19937_64 rng(42);
  Bitmap bm;
  for (int pattern = 0; pattern < 32; pattern++) {
    FillPattern(bm, pattern, &rng);
    for (unsigned b = 0; b <= 256; b++) {
      ASSERT_EQ(simd::Rank256Below(bm, b), simd::scalar::Rank256Below(bm, b))
          << "pattern " << pattern << " b " << b;
    }
  }
}

TEST(SimdBitmapTest, PrevSetBit256MatchesScalarExhaustively) {
  std::mt19937_64 rng(43);
  Bitmap bm;
  for (int pattern = 0; pattern < 32; pattern++) {
    FillPattern(bm, pattern, &rng);
    for (unsigned b = 0; b <= 256; b++) {
      ASSERT_EQ(simd::PrevSetBit256(bm, b),
                simd::scalar::PrevSetBit256(bm, b))
          << "pattern " << pattern << " b " << b;
    }
  }
}

TEST(SimdBitmapTest, PrevSetBitIsStrictlyBelow) {
  // The off-by-one that matters: a set bit at position b must never be
  // returned for query b ("strictly below" contract).
  Bitmap bm;
  std::memset(bm, 0, 32);
  for (unsigned p = 0; p < 256; p += 7) bm[p >> 6] |= uint64_t{1}
                                                      << (63 - (p & 63));
  for (unsigned b = 0; b <= 256; b++) {
    int prev = simd::PrevSetBit256(bm, b);
    if (prev >= 0) EXPECT_LT(static_cast<unsigned>(prev), b);
  }
}

TEST(SimdByteScanTest, FindByteEq16MatchesScalarForAllCounts) {
  std::mt19937_64 rng(44);
  for (int trial = 0; trial < 200; trial++) {
    uint8_t keys[16];
    for (auto& k : keys) k = static_cast<uint8_t>(rng());
    for (int n = 0; n <= 16; n++) {
      for (int probe = 0; probe < 16; probe++) {
        uint8_t b = trial % 2 ? keys[probe]  // guaranteed present value
                              : static_cast<uint8_t>(rng());
        ASSERT_EQ(simd::FindByteEq16(keys, n, b),
                  simd::scalar::FindByteEq(keys, n, b))
            << "n " << n << " b " << int(b);
      }
    }
  }
}

TEST(SimdByteScanTest, CountBytesLt16MatchesScalarForAllBounds) {
  std::mt19937_64 rng(45);
  for (int trial = 0; trial < 50; trial++) {
    uint8_t keys[16];
    for (auto& k : keys) k = static_cast<uint8_t>(rng());
    for (int n = 0; n <= 16; n++) {
      for (unsigned bound = 0; bound <= 256; bound += (bound < 8 ? 1 : 3)) {
        ASSERT_EQ(simd::CountBytesLt16(keys, n, bound),
                  simd::scalar::CountBytesLt(keys, n, bound))
            << "n " << n << " bound " << bound;
      }
    }
  }
}

TEST(SimdByteScanTest, Node4KernelsMatchScalar) {
  std::mt19937_64 rng(46);
  for (int trial = 0; trial < 500; trial++) {
    uint8_t keys[4];
    for (auto& k : keys) k = static_cast<uint8_t>(rng());
    for (int n = 0; n <= 4; n++) {
      for (int probe = 0; probe < 8; probe++) {
        uint8_t b = probe < 4 ? keys[probe] : static_cast<uint8_t>(rng());
        ASSERT_EQ(simd::FindByteEq4(keys, n, b),
                  simd::scalar::FindByteEq(keys, n, b));
      }
      for (unsigned bound : {0u, 1u, 127u, 128u, 255u, 256u,
                             static_cast<unsigned>(rng() % 257)}) {
        ASSERT_EQ(simd::CountBytesLt4(keys, n, bound),
                  simd::scalar::CountBytesLt(keys, n, bound));
      }
    }
  }
}

TEST(SimdLcpTest, MatchesScalarAcrossWordBoundaries) {
  std::mt19937_64 rng(47);
  // Every (length, mismatch position) pair around the 8-byte word size,
  // with embedded NULs to catch any C-string shortcut.
  for (size_t len = 0; len <= 24; len++) {
    for (size_t diff = 0; diff <= len; diff++) {
      std::string a(len, '\0');
      for (auto& c : a) c = static_cast<char>(rng());
      std::string b = a;
      if (diff < len) b[diff] = static_cast<char>(b[diff] + 1);
      if (len > 2) a[len / 2] = b[len / 2] = '\0';
      size_t expect = simd::scalar::LcpLen(a, b);
      ASSERT_EQ(simd::LcpLen(a, b), expect) << "len " << len << " diff "
                                            << diff;
      // Unequal lengths exercise the min() clamp and the tail loop.
      ASSERT_EQ(simd::LcpLen(a.substr(0, len / 2), b),
                simd::scalar::LcpLen(a.substr(0, len / 2), b));
    }
  }
}

TEST(SimdLcpTest, SharedPrefixAtLeastMatchesLcp) {
  std::mt19937_64 rng(48);
  for (int trial = 0; trial < 2000; trial++) {
    size_t la = rng() % 12, lb = rng() % 12;
    std::string a(la, '\0'), b(lb, '\0');
    for (auto& c : a) c = static_cast<char>(rng() % 4);  // force overlaps
    for (auto& c : b) c = static_cast<char>(rng() % 4);
    size_t lcp = simd::scalar::LcpLen(a, b);
    for (size_t len = 0; len <= 12; len++) {
      bool expect = a.size() >= len && b.size() >= len && lcp >= len;
      ASSERT_EQ(simd::SharedPrefixAtLeast(a, b, len), expect)
          << "a " << a << " b " << b << " len " << len;
    }
  }
}

TEST(SimdPopCountTest, MatchesBuiltin) {
  std::mt19937_64 rng(49);
  EXPECT_EQ(simd::PopCount64(0), 0);
  EXPECT_EQ(simd::PopCount64(~uint64_t{0}), 64);
  for (int trial = 0; trial < 10000; trial++) {
    uint64_t x = rng();
    ASSERT_EQ(simd::PopCount64(x), __builtin_popcountll(x));
  }
}

// The runtime-dispatched hardware popcount must agree with the portable
// form on every input shape: the templated rank helpers differ only in
// which of the two they inline, so this equality is what makes the
// Hw == true and Hw == false encode paths interchangeable.
TEST(SimdPopCountTest, HardwareMatchesPortable) {
  if (!simd::HavePopcnt()) {
    // Portable fallback aliases PopCount64; nothing to cross-check.
    EXPECT_EQ(simd::PopCount64Hw(0x5555555555555555ull),
              simd::PopCount64(0x5555555555555555ull));
    return;
  }
  std::mt19937_64 rng(50);
  EXPECT_EQ(simd::PopCount64Hw(0), 0);
  EXPECT_EQ(simd::PopCount64Hw(~uint64_t{0}), 64);
  for (unsigned b = 0; b < 64; b++)
    ASSERT_EQ(simd::PopCount64Hw(uint64_t{1} << b), 1);
  for (int trial = 0; trial < 10000; trial++) {
    uint64_t x = rng();
    ASSERT_EQ(simd::PopCount64Hw(x), simd::PopCount64(x));
  }
}

}  // namespace
}  // namespace hope
