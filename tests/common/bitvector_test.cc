#include "common/bitvector.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace hope {
namespace {

// Reference implementation for cross-checking.
struct RefBits {
  std::vector<bool> bits;
  size_t Rank1(size_t pos) const {
    size_t r = 0;
    for (size_t i = 0; i < pos; i++) r += bits[i];
    return r;
  }
  size_t Select1(size_t i) const {
    size_t seen = 0;
    for (size_t p = 0; p < bits.size(); p++)
      if (bits[p] && seen++ == i) return p;
    return bits.size();
  }
  size_t Select0(size_t i) const {
    size_t seen = 0;
    for (size_t p = 0; p < bits.size(); p++)
      if (!bits[p] && seen++ == i) return p;
    return bits.size();
  }
};

class BitVectorParamTest : public ::testing::TestWithParam<
                               std::tuple<size_t, double, uint64_t>> {};

TEST_P(BitVectorParamTest, MatchesReference) {
  auto [n, density, seed] = GetParam();
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution coin(density);
  BitVector bv;
  RefBits ref;
  for (size_t i = 0; i < n; i++) {
    bool b = coin(rng);
    bv.PushBack(b);
    ref.bits.push_back(b);
  }
  bv.Finalize();
  ASSERT_EQ(bv.size(), n);
  size_t ones = ref.Rank1(n);
  EXPECT_EQ(bv.num_ones(), ones);
  // Rank at a spread of positions including boundaries.
  for (size_t pos = 0; pos <= n; pos += std::max<size_t>(1, n / 97))
    EXPECT_EQ(bv.Rank1(pos), ref.Rank1(pos)) << "pos=" << pos;
  EXPECT_EQ(bv.Rank1(n), ones);
  for (size_t i = 0; i < ones; i += std::max<size_t>(1, ones / 61))
    EXPECT_EQ(bv.Select1(i), ref.Select1(i)) << "i=" << i;
  size_t zeros = n - ones;
  for (size_t i = 0; i < zeros; i += std::max<size_t>(1, zeros / 61))
    EXPECT_EQ(bv.Select0(i), ref.Select0(i)) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BitVectorParamTest,
    ::testing::Values(
        std::make_tuple(size_t{1}, 1.0, 1),
        std::make_tuple(size_t{63}, 0.5, 2),
        std::make_tuple(size_t{64}, 0.5, 3),
        std::make_tuple(size_t{65}, 0.5, 4),
        std::make_tuple(size_t{512}, 0.5, 5),
        std::make_tuple(size_t{513}, 0.01, 6),
        std::make_tuple(size_t{4096}, 0.99, 7),
        std::make_tuple(size_t{100000}, 0.5, 8),
        std::make_tuple(size_t{100000}, 0.001, 9),
        std::make_tuple(size_t{100001}, 0.93, 10)));

TEST(BitVectorTest, RankSelectInverse) {
  std::mt19937_64 rng(99);
  BitVector bv;
  for (int i = 0; i < 20000; i++) bv.PushBack(rng() % 3 == 0);
  bv.Finalize();
  for (size_t i = 0; i < bv.num_ones(); i++) {
    size_t pos = bv.Select1(i);
    EXPECT_TRUE(bv.Get(pos));
    EXPECT_EQ(bv.Rank1(pos), i);
    EXPECT_EQ(bv.Rank1(pos + 1), i + 1);
  }
}

TEST(BitVectorTest, NextPrevOne) {
  BitVector bv;
  std::vector<size_t> set_positions = {0, 5, 63, 64, 100, 511, 512, 700};
  size_t n = 800;
  size_t idx = 0;
  for (size_t i = 0; i < n; i++) {
    bool b = idx < set_positions.size() && set_positions[idx] == i;
    if (b) idx++;
    bv.PushBack(b);
  }
  bv.Finalize();
  EXPECT_EQ(bv.NextOne(0), 0u);
  EXPECT_EQ(bv.NextOne(1), 5u);
  EXPECT_EQ(bv.NextOne(6), 63u);
  EXPECT_EQ(bv.NextOne(65), 100u);
  EXPECT_EQ(bv.NextOne(701), n);
  EXPECT_EQ(bv.PrevOne(799), 700u);
  EXPECT_EQ(bv.PrevOne(700), 700u);
  EXPECT_EQ(bv.PrevOne(699), 512u);
  EXPECT_EQ(bv.PrevOne(4), 0u);
  EXPECT_EQ(bv.PrevOne(0), 0u);
}

TEST(BitVectorTest, AppendZerosAndSet) {
  BitVector bv;
  bv.AppendZeros(300);
  bv.Set(7);
  bv.Set(255);
  bv.Finalize();
  EXPECT_EQ(bv.num_ones(), 2u);
  EXPECT_EQ(bv.Select1(0), 7u);
  EXPECT_EQ(bv.Select1(1), 255u);
}

TEST(BitVectorTest, EmptyVector) {
  BitVector bv;
  bv.Finalize();
  EXPECT_EQ(bv.size(), 0u);
  EXPECT_EQ(bv.num_ones(), 0u);
  EXPECT_EQ(bv.Rank1(0), 0u);
}

#if GTEST_HAS_DEATH_TEST
// Out-of-range queries must fail fast in every build mode. These used to be
// plain asserts, which compile out under NDEBUG — exactly the builds that
// serve untrusted input — leaving Select1 to scan past the last word and
// return garbage. The HOPE_CHECK contracts are always on; pin that here.
TEST(BitVectorDeathTest, Rank1PastEndAborts) {
  BitVector bv;
  bv.PushBack(true);
  bv.PushBack(false);
  bv.Finalize();
  EXPECT_DEATH(bv.Rank1(bv.size() + 1), "Rank1 position out of range");
}

TEST(BitVectorDeathTest, Select1PastLastOneAborts) {
  BitVector bv;
  bv.AppendZeros(100);
  bv.Set(7);
  bv.Finalize();
  EXPECT_DEATH(bv.Select1(1), "Select1 index out of range");
}

TEST(BitVectorDeathTest, Select0PastLastZeroAborts) {
  BitVector bv;
  bv.PushBack(true);
  bv.PushBack(false);
  bv.PushBack(true);
  bv.Finalize();
  EXPECT_DEATH(bv.Select0(1), "Select0 index out of range");
}
#endif  // GTEST_HAS_DEATH_TEST

}  // namespace
}  // namespace hope
