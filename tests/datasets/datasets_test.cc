#include "datasets/datasets.h"

#include <gtest/gtest.h>

#include <set>

namespace hope {
namespace {

class DatasetParamTest : public ::testing::TestWithParam<DatasetId> {};

TEST_P(DatasetParamTest, UniqueNonEmptyDeterministic) {
  DatasetId id = GetParam();
  auto keys = GenerateDataset(id, 5000, 42);
  ASSERT_EQ(keys.size(), 5000u);
  std::set<std::string> uniq(keys.begin(), keys.end());
  EXPECT_EQ(uniq.size(), keys.size());
  for (const auto& k : keys) EXPECT_FALSE(k.empty());
  // Deterministic per seed.
  auto again = GenerateDataset(id, 5000, 42);
  EXPECT_EQ(keys, again);
  auto other = GenerateDataset(id, 5000, 43);
  EXPECT_NE(keys, other);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetParamTest,
                         ::testing::Values(DatasetId::kEmail, DatasetId::kWiki,
                                           DatasetId::kUrl));

TEST(DatasetsTest, EmailShape) {
  auto keys = GenerateEmails(20000, 7);
  double total = 0;
  size_t gmail = 0;
  for (const auto& k : keys) {
    total += static_cast<double>(k.size());
    EXPECT_NE(k.find('@'), std::string::npos) << k;
    // Host-reversed: starts with a TLD segment, not with a user name.
    EXPECT_TRUE(k.find('.') < k.find('@')) << k;
    if (k.rfind("com.gmail@", 0) == 0) gmail++;
  }
  double avg = total / static_cast<double>(keys.size());
  EXPECT_GT(avg, 15.0);
  EXPECT_LT(avg, 30.0);  // paper: ~22 bytes
  // Provider skew: gmail is the hottest host.
  EXPECT_GT(gmail, keys.size() / 20);
}

TEST(DatasetsTest, WikiShape) {
  auto keys = GenerateWikiTitles(20000, 7);
  double total = 0;
  for (const auto& k : keys) total += static_cast<double>(k.size());
  double avg = total / static_cast<double>(keys.size());
  EXPECT_GT(avg, 12.0);
  EXPECT_LT(avg, 30.0);  // paper: ~21 bytes
  // Titles start with an uppercase letter.
  EXPECT_TRUE(isupper(static_cast<unsigned char>(keys[0][0])));
}

TEST(DatasetsTest, UrlShape) {
  auto keys = GenerateUrls(20000, 7);
  double total = 0;
  for (const auto& k : keys) {
    total += static_cast<double>(k.size());
    EXPECT_EQ(k.rfind("http://", 0), 0u) << k;
  }
  double avg = total / static_cast<double>(keys.size());
  EXPECT_GT(avg, 30.0);
  EXPECT_LT(avg, 120.0);  // paper: ~104 bytes; shape matters, not exact
}

TEST(DatasetsTest, SampleKeys) {
  auto keys = GenerateEmails(1000, 9);
  auto s = SampleKeys(keys, 0.01);
  EXPECT_EQ(s.size(), 10u);
  EXPECT_EQ(s[0], keys[0]);
  EXPECT_EQ(SampleKeys(keys, 0.0).size(), 1u);
  EXPECT_EQ(SampleKeys(keys, 2.0).size(), keys.size());
}

}  // namespace
}  // namespace hope
