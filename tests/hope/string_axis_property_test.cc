// Property tests of the string-axis model (§3.1) on *randomized*
// dictionaries: generate random interval divisions of the string axis,
// assign Hu-Tucker or fixed codes, and verify the theorem of §3.1 — the
// resulting encoding is complete, order-preserving, and uniquely
// decodable — on random binary probes.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "common/bits.h"
#include "common/str_utils.h"
#include "hope/code_assigner.h"
#include "hope/decoder.h"
#include "hope/dictionary.h"
#include "hope/encoder.h"
#include "hope/symbol_selector.h"

namespace hope {
namespace {

/// Builds a random complete interval division: random "selected" symbol
/// boundaries of random lengths, with gap intervals filling the rest via
/// AddGapIntervals (the same mechanism the real selectors use).
std::vector<IntervalSpec> RandomIntervals(std::mt19937_64* rng,
                                          size_t num_symbols,
                                          size_t max_symbol_len) {
  std::set<std::string> symbols;
  while (symbols.size() < num_symbols) {
    std::string s;
    size_t len = 1 + (*rng)() % max_symbol_len;
    for (size_t i = 0; i < len; i++)
      s.push_back(static_cast<char>((*rng)() % 256));
    // Keep the set prefix-free the same way blending does: reject s if
    // any stored symbol is a prefix of s, or s prefixes a stored symbol.
    bool conflict = false;
    for (size_t len = 1; len < s.size() && !conflict; len++)
      conflict = symbols.count(s.substr(0, len)) > 0;
    auto ext = symbols.lower_bound(s);
    if (ext != symbols.end() && ext->compare(0, s.size(), s) == 0)
      conflict = true;  // covers equality and extensions of s
    if (!conflict) symbols.insert(std::move(s));
  }
  std::vector<IntervalSpec> intervals;
  std::string cur;
  for (const auto& sym : symbols) {
    AddGapIntervals(cur, sym, &intervals);
    intervals.push_back({sym, sym, 0});
    cur = PrefixUpperBound(sym);
    if (cur.empty()) return intervals;
  }
  AddGapIntervals(cur, "", &intervals);
  return intervals;
}

class StringAxisPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(StringAxisPropertyTest, RandomDictionariesPreserveOrder) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()));
  for (int round = 0; round < 6; round++) {
    auto intervals = RandomIntervals(&rng, 5 + rng() % 60, 1 + rng() % 6);
    ASSERT_EQ(ValidateIntervals(intervals), "") << "round " << round;

    // Random weights; alternate Hu-Tucker and fixed-length codes.
    std::vector<double> weights(intervals.size());
    for (auto& w : weights)
      w = std::uniform_real_distribution<double>(0, 10)(rng);
    std::vector<Code> codes = round % 2 == 0
                                  ? AssignHuTuckerCodes(weights)
                                  : AssignFixedLengthCodes(intervals.size());
    std::vector<DictEntry> entries;
    for (size_t i = 0; i < intervals.size(); i++)
      entries.push_back({intervals[i].left_bound,
                         static_cast<uint32_t>(intervals[i].symbol.size()),
                         codes[i]});
    Encoder encoder(MakeBinarySearchDict(entries));
    Decoder decoder(entries);

    // Random binary probes, plus neighbors differing in one byte.
    std::vector<std::string> probes;
    for (int i = 0; i < 120; i++) {
      std::string s;
      size_t len = 1 + rng() % 12;
      for (size_t j = 0; j < len; j++)
        s.push_back(static_cast<char>(rng() % 256));
      probes.push_back(s);
      if (!s.empty()) {
        s.back() = static_cast<char>(static_cast<uint8_t>(s.back()) + 1);
        probes.push_back(s);  // adjacent key
      }
    }
    struct Enc {
      std::string bytes;
      size_t bits;
    };
    std::vector<Enc> enc(probes.size());
    for (size_t i = 0; i < probes.size(); i++) {
      enc[i].bytes = encoder.Encode(probes[i], &enc[i].bits);
      // Unique decodability (lossless round trip).
      ASSERT_EQ(decoder.Decode(enc[i].bytes, enc[i].bits), probes[i]);
    }
    // Order preservation as bit strings.
    for (size_t i = 0; i < probes.size(); i += 3) {
      for (size_t j = 1; j < probes.size(); j += 5) {
        int key_cmp = probes[i].compare(probes[j]);
        int enc_cmp = CompareBitStrings(enc[i].bytes, enc[i].bits,
                                        enc[j].bytes, enc[j].bits);
        int a = key_cmp < 0 ? -1 : (key_cmp == 0 ? 0 : 1);
        int b = enc_cmp < 0 ? -1 : (enc_cmp == 0 ? 0 : 1);
        ASSERT_EQ(a, b) << "order violated in round " << round;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StringAxisPropertyTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace hope
