// Satellite coverage: Encode -> Decode must be the identity for every
// (Scheme, DictImpl) combination on the email and URL sample datasets.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datasets/datasets.h"
#include "hope/hope.h"

namespace hope {
namespace {

constexpr Scheme kSchemes[] = {
    Scheme::kSingleChar, Scheme::kDoubleChar,  Scheme::kAlm,
    Scheme::kThreeGrams, Scheme::kFourGrams,   Scheme::kAlmImproved,
};

constexpr DictImpl kImpls[] = {
    DictImpl::kBinarySearch,
    DictImpl::kArray,
    DictImpl::kBitmapTrie,
    DictImpl::kArt,
};

const char* ImplName(DictImpl impl) {
  switch (impl) {
    case DictImpl::kDefault:
      return "default";
    case DictImpl::kBinarySearch:
      return "binary-search";
    case DictImpl::kArray:
      return "array";
    case DictImpl::kBitmapTrie:
      return "bitmap-trie";
    case DictImpl::kArt:
      return "art";
  }
  return "?";
}

// The array dictionary only represents 1- or 2-byte fixed-interval
// boundaries, and the bitmap trie only bounded n-gram boundaries; the
// variable-interval schemes cannot be forced into them.
bool Compatible(Scheme scheme, DictImpl impl) {
  switch (impl) {
    case DictImpl::kArray:
      return scheme == Scheme::kSingleChar || scheme == Scheme::kDoubleChar;
    case DictImpl::kBitmapTrie:
      return scheme == Scheme::kSingleChar || scheme == Scheme::kDoubleChar ||
             scheme == Scheme::kThreeGrams || scheme == Scheme::kFourGrams;
    default:
      return true;
  }
}

class RoundTripMatrixTest : public ::testing::TestWithParam<DatasetId> {};

TEST_P(RoundTripMatrixTest, EncodeDecodeIdentity) {
  const auto keys = GenerateDataset(GetParam(), 400, /*seed=*/7);
  const auto samples = SampleKeys(keys, 0.25);
  for (Scheme scheme : kSchemes) {
    for (DictImpl impl : kImpls) {
      if (!Compatible(scheme, impl)) continue;
      SCOPED_TRACE(std::string(SchemeName(scheme)) + " / " + ImplName(impl));
      auto hope =
          Hope::Build(scheme, samples, /*dict_size_limit=*/1 << 12,
                      /*stats=*/nullptr, impl);
      ASSERT_NE(hope, nullptr);
      for (const std::string& key : keys) {
        size_t bits = 0;
        const std::string enc = hope->Encode(key, &bits);
        ASSERT_EQ(hope->Decode(enc, bits), key) << "key: " << key;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(EmailUrl, RoundTripMatrixTest,
                         ::testing::Values(DatasetId::kEmail, DatasetId::kUrl),
                         [](const auto& info) {
                           return std::string(DatasetName(info.param));
                         });

}  // namespace
}  // namespace hope
