// Cross-checks every dictionary implementation against the binary-search
// reference on all six schemes: lookups must return identical codes and
// consume identical byte counts for arbitrary inputs.
#include "hope/dictionary.h"

#include <gtest/gtest.h>

#include <random>

#include "datasets/datasets.h"
#include "hope/code_assigner.h"
#include "hope/hope.h"
#include "hope/symbol_selector.h"

namespace hope {
namespace {

std::vector<DictEntry> MakeEntries(Scheme scheme, size_t limit) {
  auto keys = GenerateEmails(3000, 5);
  return BuildDictEntries(scheme, keys, limit);
}

std::vector<std::string> ProbeStrings() {
  std::vector<std::string> probes;
  auto keys = GenerateEmails(500, 77);
  probes.insert(probes.end(), keys.begin(), keys.end());
  auto wiki = GenerateWikiTitles(200, 78);
  probes.insert(probes.end(), wiki.begin(), wiki.end());
  // Adversarial probes: every single byte, short strings, binary bytes.
  for (int c = 0; c < 256; c++)
    probes.push_back(std::string(1, static_cast<char>(c)));
  std::mt19937_64 rng(79);
  for (int i = 0; i < 500; i++) {
    std::string s;
    size_t len = 1 + rng() % 12;
    for (size_t j = 0; j < len; j++)
      s.push_back(static_cast<char>(rng() % 256));
    probes.push_back(std::move(s));
  }
  return probes;
}

void CrossCheck(const Dictionary& dut, const Dictionary& ref) {
  for (const auto& probe : ProbeStrings()) {
    LookupResult a = dut.Lookup(probe);
    LookupResult b = ref.Lookup(probe);
    ASSERT_EQ(CodeToString(a.code), CodeToString(b.code))
        << dut.Name() << " code mismatch on probe of size " << probe.size();
    ASSERT_EQ(a.consumed, b.consumed)
        << dut.Name() << " consumed mismatch";
    ASSERT_GT(a.consumed, 0u);
    ASSERT_LE(a.consumed, probe.size());
  }
}

TEST(ArrayDictTest, MatchesReferenceSingleChar) {
  auto entries = MakeEntries(Scheme::kSingleChar, 256);
  auto dut = MakeArrayDict(entries, 1);
  auto ref = MakeBinarySearchDict(entries);
  EXPECT_EQ(dut->NumEntries(), 256u);
  CrossCheck(*dut, *ref);
}

TEST(ArrayDictTest, MatchesReferenceDoubleChar) {
  auto entries = MakeEntries(Scheme::kDoubleChar, 0);
  auto dut = MakeArrayDict(entries, 2);
  auto ref = MakeBinarySearchDict(entries);
  EXPECT_EQ(dut->NumEntries(), 256u * 257u);
  CrossCheck(*dut, *ref);
}

class BitmapTrieParamTest
    : public ::testing::TestWithParam<std::tuple<int, size_t>> {};

TEST_P(BitmapTrieParamTest, MatchesReference) {
  auto [n, limit] = GetParam();
  auto entries = MakeEntries(
      n == 3 ? Scheme::kThreeGrams : Scheme::kFourGrams, limit);
  auto dut = MakeBitmapTrieDict(entries, n);
  auto ref = MakeBinarySearchDict(entries);
  CrossCheck(*dut, *ref);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BitmapTrieParamTest,
    ::testing::Combine(::testing::Values(3, 4),
                       ::testing::Values(size_t{64}, size_t{1024},
                                         size_t{8192})));

class ArtDictParamTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ArtDictParamTest, MatchesReference) {
  auto entries = MakeEntries(Scheme::kAlmImproved, GetParam());
  auto dut = MakeArtDict(entries);
  auto ref = MakeBinarySearchDict(entries);
  CrossCheck(*dut, *ref);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ArtDictParamTest,
                         ::testing::Values(size_t{64}, size_t{1024},
                                           size_t{8192}));

TEST(ArtDictTest, MatchesReferenceOnAlmFixedLen) {
  auto entries = MakeEntries(Scheme::kAlm, 1024);
  auto dut = MakeArtDict(entries);
  auto ref = MakeBinarySearchDict(entries);
  CrossCheck(*dut, *ref);
}

TEST(DictionaryTest, HandcraftedPredecessorCases) {
  // Boundaries: "" , "in", "ing", "inh", "io", "t" (mixed lengths).
  std::vector<std::string> bounds{"", "in", "ing", "inh", "io", "t"};
  std::vector<DictEntry> entries;
  auto codes = AssignFixedLengthCodes(bounds.size());
  for (size_t i = 0; i < bounds.size(); i++)
    entries.push_back(
        {bounds[i], std::max<uint32_t>(1, bounds[i].size()), codes[i]});
  auto art = MakeArtDict(entries);
  auto ref = MakeBinarySearchDict(entries);
  for (const char* probe :
       {"in", "inz", "ing", "ingo", "inga", "i", "h", "ioz", "io", "s",
        "t", "tz", "zebra", "a", "\x01"}) {
    LookupResult a = art->Lookup(probe);
    LookupResult b = ref->Lookup(probe);
    EXPECT_EQ(CodeToString(a.code), CodeToString(b.code)) << probe;
  }
}

TEST(DictionaryTest, MemoryAccountingSane) {
  auto entries = MakeEntries(Scheme::kThreeGrams, 4096);
  auto bt = MakeBitmapTrieDict(entries, 3);
  auto bs = MakeBinarySearchDict(entries);
  auto art = MakeArtDict(entries);
  EXPECT_GT(bt->MemoryBytes(), 0u);
  EXPECT_GT(bs->MemoryBytes(), 0u);
  EXPECT_GT(art->MemoryBytes(), 0u);
  // The ART dictionary is larger than the succinct bitmap-trie (§6.1).
  EXPECT_GT(art->MemoryBytes(), bt->MemoryBytes());
}

}  // namespace
}  // namespace hope
