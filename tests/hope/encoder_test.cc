#include "hope/encoder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "datasets/datasets.h"
#include "hope/hope.h"

namespace hope {
namespace {

TEST(BitWriterTest, AppendAndTake) {
  BitWriter w;
  w.Append(Code{0b101ull << 61, 3});
  w.Append(Code{0b01ull << 62, 2});
  EXPECT_EQ(w.total_bits(), 5u);
  std::string bytes = w.TakeBytes();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(static_cast<uint8_t>(bytes[0]), 0b10101000);
}

TEST(BitWriterTest, CrossesWordBoundary) {
  BitWriter w;
  const Code all_ones7{uint64_t{0x7F} << 57, 7};  // 1111111, rest zero
  for (int i = 0; i < 10; i++) w.Append(all_ones7);
  EXPECT_EQ(w.total_bits(), 70u);
  std::string bytes = w.TakeBytes();
  ASSERT_EQ(bytes.size(), 9u);
  for (int i = 0; i < 8; i++)
    EXPECT_EQ(static_cast<uint8_t>(bytes[i]), 0xFF);
  EXPECT_EQ(static_cast<uint8_t>(bytes[8]), 0b11111100);  // 70-64=6 ones
}

TEST(BitWriterTest, SixtyFourBitCode) {
  BitWriter w;
  w.Append(Code{0xDEADBEEFCAFEF00Dull, 64});
  std::string bytes = w.TakeBytes();
  ASSERT_EQ(bytes.size(), 8u);
  EXPECT_EQ(static_cast<uint8_t>(bytes[0]), 0xDE);
  EXPECT_EQ(static_cast<uint8_t>(bytes[7]), 0x0D);
}

TEST(BitWriterTest, InitFromPrefix) {
  BitWriter w;
  w.Append(Code{0b10110ull << 59, 5});
  w.Append(Code{0b0011ull << 60, 4});
  std::string full = w.TakeBytes();
  size_t bits = w.total_bits();

  BitWriter w2;
  w2.InitFromPrefix(full, 5);
  w2.Append(Code{0b0011ull << 60, 4});
  EXPECT_EQ(w2.total_bits(), bits);
  EXPECT_EQ(w2.TakeBytes(), full);
}

class SchemeEncoderTest : public ::testing::TestWithParam<Scheme> {
 protected:
  void SetUp() override {
    keys_ = GenerateEmails(3000, 21);
    hope_ = Hope::Build(GetParam(), keys_, 1024);
  }
  std::vector<std::string> keys_;
  std::unique_ptr<Hope> hope_;
};

TEST_P(SchemeEncoderTest, OrderPreservedOnBitStrings) {
  // Encoded keys must compare (as bit strings) exactly like the sources.
  std::vector<std::string> probes(keys_.begin(), keys_.begin() + 400);
  auto wiki = GenerateWikiTitles(100, 22);  // out-of-distribution keys
  probes.insert(probes.end(), wiki.begin(), wiki.end());
  std::vector<std::pair<std::string, size_t>> enc;
  for (auto& p : probes) {
    size_t bits = 0;
    enc.emplace_back(hope_->Encode(p, &bits), bits);
  }
  for (size_t i = 0; i < probes.size(); i += 7) {
    for (size_t j = 0; j < probes.size(); j += 11) {
      int src_cmp = probes[i].compare(probes[j]);
      int enc_cmp = CompareBitStrings(enc[i].first, enc[i].second,
                                      enc[j].first, enc[j].second);
      int a = src_cmp < 0 ? -1 : (src_cmp == 0 ? 0 : 1);
      int b = enc_cmp < 0 ? -1 : (enc_cmp == 0 ? 0 : 1);
      ASSERT_EQ(a, b) << "order violated: \"" << probes[i] << "\" vs \""
                      << probes[j] << "\"";
    }
  }
}

TEST_P(SchemeEncoderTest, LosslessRoundTrip) {
  std::vector<std::string> probes(keys_.begin(), keys_.begin() + 300);
  auto urls = GenerateUrls(50, 23);  // arbitrary unseen inputs
  probes.insert(probes.end(), urls.begin(), urls.end());
  std::mt19937_64 rng(24);
  for (int i = 0; i < 100; i++) {  // random binary strings
    std::string s;
    for (size_t j = 0; j < 1 + rng() % 20; j++)
      s.push_back(static_cast<char>(rng() % 256));
    probes.push_back(std::move(s));
  }
  for (const auto& p : probes) {
    size_t bits = 0;
    std::string e = hope_->Encode(p, &bits);
    EXPECT_EQ(hope_->Decode(e, bits), p);
  }
}

TEST_P(SchemeEncoderTest, BatchEncodingMatchesIndividual) {
  std::vector<std::string> sorted(keys_.begin(), keys_.begin() + 500);
  std::sort(sorted.begin(), sorted.end());
  size_t batch_bits = 0;
  auto batch = hope_->EncodeBatch(sorted, &batch_bits);
  ASSERT_EQ(batch.size(), sorted.size());
  size_t indiv_bits = 0;
  for (size_t i = 0; i < sorted.size(); i++) {
    size_t bits = 0;
    std::string e = hope_->Encode(sorted[i], &bits);
    indiv_bits += bits;
    ASSERT_EQ(batch[i], e) << "batch mismatch at " << i << ": "
                           << sorted[i];
  }
  EXPECT_EQ(batch_bits, indiv_bits);
}

TEST_P(SchemeEncoderTest, ParallelBatchIsByteIdenticalToSequential) {
  // The chunked fan-out must be invisible in the output: same encodings
  // and same bit total for any thread count, above and below the
  // parallel threshold (6000 > kParallelBatchMin = 4096 > 1000).
  std::vector<std::string> sorted(keys_.begin(), keys_.begin() + 1000);
  std::vector<std::string> big = keys_;
  big.insert(big.end(), keys_.begin(), keys_.end());  // 6000 > threshold
  std::sort(sorted.begin(), sorted.end());
  std::sort(big.begin(), big.end());
  for (const auto* batch : {&sorted, &big}) {
    size_t seq_bits = 0, par_bits = 0;
    auto seq = hope_->EncodeBatch(*batch, &seq_bits, 1);
    auto par = hope_->EncodeBatch(*batch, &par_bits, 4);
    EXPECT_EQ(seq, par);
    EXPECT_EQ(seq_bits, par_bits);
    size_t auto_bits = 0;
    EXPECT_EQ(hope_->EncodeBatch(*batch, &auto_bits, 0), seq);
    EXPECT_EQ(auto_bits, seq_bits);
  }
}

TEST_P(SchemeEncoderTest, PairEncodingMatchesIndividual) {
  auto [a, b] = hope_->EncodePair("com.gmail@aaa", "com.gmail@aab");
  EXPECT_EQ(a, hope_->Encode("com.gmail@aaa"));
  EXPECT_EQ(b, hope_->Encode("com.gmail@aab"));
}

TEST_P(SchemeEncoderTest, CompressesRealKeys) {
  // All schemes must actually compress email keys.
  double cpr = hope_->CompressionRate(
      std::vector<std::string>(keys_.begin(), keys_.begin() + 500));
  EXPECT_GT(cpr, 1.0) << SchemeName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeEncoderTest,
    ::testing::Values(Scheme::kSingleChar, Scheme::kDoubleChar,
                      Scheme::kThreeGrams, Scheme::kFourGrams, Scheme::kAlm,
                      Scheme::kAlmImproved),
    [](const ::testing::TestParamInfo<Scheme>& info) {
      std::string name = SchemeName(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

}  // namespace
}  // namespace hope
