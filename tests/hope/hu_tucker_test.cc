#include "hope/hu_tucker.h"

#include <gtest/gtest.h>

#include <random>

namespace hope {
namespace {

bool IsBitPrefix(const Code& a, const Code& b) {
  if (a.len > b.len) return false;
  if (a.len == 0) return true;
  uint64_t mask = ~uint64_t{0} << (64 - a.len);
  return (a.bits & mask) == (b.bits & mask);
}

bool CodeLess(const Code& a, const Code& b) {
  return CodeToString(a) < CodeToString(b);
}

double ExpectedLength(const std::vector<double>& weights,
                      const std::vector<Code>& codes) {
  double total = 0;
  for (size_t i = 0; i < weights.size(); i++)
    total += weights[i] * codes[i].len;
  return total;
}

void CheckAlphabeticPrefixCode(const std::vector<Code>& codes) {
  for (size_t i = 0; i + 1 < codes.size(); i++)
    EXPECT_TRUE(CodeLess(codes[i], codes[i + 1]))
        << "codes not monotone at " << i << ": " << CodeToString(codes[i])
        << " vs " << CodeToString(codes[i + 1]);
  for (size_t i = 0; i < codes.size(); i++) {
    for (size_t j = 0; j < codes.size(); j++) {
      if (i == j) continue;
      EXPECT_FALSE(IsBitPrefix(codes[i], codes[j]))
          << CodeToString(codes[i]) << " prefixes " << CodeToString(codes[j]);
    }
  }
}

TEST(HuTuckerTest, Empty) { EXPECT_TRUE(HuTuckerCodes({}).empty()); }

TEST(HuTuckerTest, SingleSymbol) {
  auto codes = HuTuckerCodes({5.0});
  ASSERT_EQ(codes.size(), 1u);
  EXPECT_EQ(codes[0].len, 1);
}

TEST(HuTuckerTest, TwoSymbols) {
  auto codes = HuTuckerCodes({1.0, 9.0});
  ASSERT_EQ(codes.size(), 2u);
  EXPECT_EQ(CodeToString(codes[0]), "0");
  EXPECT_EQ(CodeToString(codes[1]), "1");
}

TEST(HuTuckerTest, UniformWeightsGiveBalancedTree) {
  auto codes = HuTuckerCodes(std::vector<double>(8, 1.0));
  ASSERT_EQ(codes.size(), 8u);
  for (auto& c : codes) EXPECT_EQ(c.len, 3);
  CheckAlphabeticPrefixCode(codes);
}

TEST(HuTuckerTest, SkewedWeightsGiveShortHotCodes) {
  // A very hot middle symbol must receive a shorter code.
  std::vector<double> w{1, 1, 1000, 1, 1};
  auto codes = HuTuckerCodes(w);
  CheckAlphabeticPrefixCode(codes);
  EXPECT_LE(codes[2].len, 2);
  EXPECT_GT(codes[0].len, codes[2].len);
}

TEST(HuTuckerTest, KnownExample) {
  // Classic Hu-Tucker example: weights whose optimal alphabetic tree
  // differs from the Huffman tree.
  std::vector<double> w{3, 1, 4, 1, 5, 9, 2, 6};
  auto codes = HuTuckerCodes(w);
  CheckAlphabeticPrefixCode(codes);
  EXPECT_DOUBLE_EQ(ExpectedLength(w, codes),
                   OptimalAlphabeticCostBruteForce(w));
}

class HuTuckerRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(HuTuckerRandomTest, OptimalAndValidOnRandomInputs) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int> nsym(1, 24);
  std::uniform_real_distribution<double> weight(0.0, 100.0);
  for (int iter = 0; iter < 50; iter++) {
    int n = nsym(rng);
    std::vector<double> w(n);
    for (auto& x : w) x = weight(rng);
    auto codes = HuTuckerCodes(w);
    ASSERT_EQ(codes.size(), w.size());
    CheckAlphabeticPrefixCode(codes);
    if (n >= 2) {
      double got = ExpectedLength(w, codes);
      double opt = OptimalAlphabeticCostBruteForce(w);
      EXPECT_NEAR(got, opt, 1e-6 * std::max(1.0, opt))
          << "suboptimal alphabetic code for n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HuTuckerRandomTest,
                         ::testing::Range(1, 11));

TEST(HuTuckerTest, ZeroWeightsDoNotBreak) {
  std::vector<double> w{0, 0, 5, 0, 0, 7, 0};
  auto codes = HuTuckerCodes(w);
  CheckAlphabeticPrefixCode(codes);
  // Hot symbols still get short codes.
  EXPECT_LE(codes[2].len, 3);
  EXPECT_LE(codes[5].len, 3);
}

TEST(HuTuckerTest, LargeInputHasBoundedDepth) {
  std::mt19937_64 rng(42);
  std::vector<double> w(1 << 12);
  for (auto& x : w) x = std::uniform_real_distribution<double>(0, 1)(rng);
  w[100] = 1e9;  // extreme skew
  auto codes = HuTuckerCodes(w);
  for (auto& c : codes) EXPECT_LE(c.len, 64);
  for (size_t i = 0; i + 1 < codes.size(); i++)
    EXPECT_TRUE(CodeLess(codes[i], codes[i + 1]));
}

TEST(HuTuckerTest, DepthsMatchCodes) {
  std::vector<double> w{2, 7, 1, 8, 2, 8};
  auto depths = HuTuckerDepths(w);
  auto codes = HuTuckerCodes(w);
  ASSERT_EQ(depths.size(), codes.size());
  for (size_t i = 0; i < w.size(); i++)
    EXPECT_EQ(depths[i], codes[i].len);
}

}  // namespace
}  // namespace hope
