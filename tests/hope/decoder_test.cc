#include "hope/decoder.h"

#include <gtest/gtest.h>

#include "datasets/datasets.h"
#include "hope/code_assigner.h"
#include "hope/hope.h"

namespace hope {
namespace {

std::vector<DictEntry> TinyDict() {
  // Boundaries "", "a", "b" with symbols "\0", "a", "b".
  std::vector<DictEntry> entries;
  auto codes = AssignFixedLengthCodes(3);
  entries.push_back({"", 1, codes[0]});
  entries.push_back({"a", 1, codes[1]});
  entries.push_back({"b", 1, codes[2]});
  return entries;
}

TEST(DecoderTest, DecodesCodeSequence) {
  Decoder dec(TinyDict());
  // codes: 00 -> "\0", 01 -> "a", 10 -> "b"; sequence a b a = 01 10 01.
  std::string bytes{static_cast<char>(0b01100100)};
  EXPECT_EQ(dec.Decode(bytes, 6), "aba");
}

TEST(DecoderTest, EmptyInput) {
  Decoder dec(TinyDict());
  EXPECT_EQ(dec.Decode("", 0), "");
}

TEST(DecoderTest, RejectsPartialTrailingCode) {
  Decoder dec(TinyDict());
  std::string bytes{static_cast<char>(0b01100000)};
  EXPECT_THROW(dec.Decode(bytes, 5), std::invalid_argument);  // 2+2+1 bits
}

TEST(DecoderTest, RejectsBitLengthBeyondInput) {
  // A bit length longer than the byte buffer must throw, not read past
  // the end (the CLI feeds attacker-controlled "<bitlen> <hex>" lines).
  Decoder dec(TinyDict());
  std::string bytes{static_cast<char>(0b01100100)};
  EXPECT_THROW(dec.Decode(bytes, 9), std::invalid_argument);
  EXPECT_THROW(dec.Decode(bytes, 999), std::invalid_argument);
  EXPECT_THROW(dec.Decode("", 1), std::invalid_argument);
}

TEST(DecoderTest, RejectsUnassignedCode) {
  Decoder dec(TinyDict());
  std::string bytes{static_cast<char>(0b11000000)};  // 11 is not a code
  EXPECT_THROW(dec.Decode(bytes, 2), std::invalid_argument);
}

TEST(DecoderTest, RejectsDuplicateCodes) {
  auto entries = TinyDict();
  entries[2].code = entries[1].code;
  EXPECT_THROW(Decoder dec(entries), std::invalid_argument);
}

TEST(DecoderTest, HeadEntryDecodesToNulByte) {
  Decoder dec(TinyDict());
  std::string bytes{static_cast<char>(0b00000000)};
  EXPECT_EQ(dec.Decode(bytes, 2), std::string(1, '\0'));
}

TEST(DecoderTest, RoundTripLongKeysAllSchemes) {
  auto keys = GenerateUrls(400, 95);
  for (Scheme scheme : {Scheme::kDoubleChar, Scheme::kFourGrams}) {
    auto hope = Hope::Build(scheme, keys, 2048);
    for (size_t i = 0; i < keys.size(); i += 7) {
      size_t bits = 0;
      std::string enc = hope->Encode(keys[i], &bits);
      EXPECT_EQ(hope->Decode(enc, bits), keys[i]);
    }
  }
}

}  // namespace
}  // namespace hope
