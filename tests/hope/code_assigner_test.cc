#include "hope/code_assigner.h"

#include <gtest/gtest.h>

#include <random>

#include "hope/hu_tucker.h"

namespace hope {
namespace {

bool IsBitPrefix(const Code& a, const Code& b) {
  if (a.len > b.len) return false;
  uint64_t mask = a.len == 0 ? 0 : ~uint64_t{0} << (64 - a.len);
  return (a.bits & mask) == (b.bits & mask);
}

void CheckMonotonePrefixFree(const std::vector<Code>& codes) {
  for (size_t i = 0; i + 1 < codes.size(); i++)
    ASSERT_LT(CodeToString(codes[i]), CodeToString(codes[i + 1])) << i;
  for (size_t i = 0; i + 1 < codes.size(); i++) {
    // With monotone codes, prefix violations can only involve neighbors
    // in code order... but check all pairs to be thorough on small n.
    for (size_t j = 0; j < codes.size(); j++) {
      if (i == j) continue;
      ASSERT_FALSE(IsBitPrefix(codes[i], codes[j]))
          << CodeToString(codes[i]) << " prefixes " << CodeToString(codes[j]);
    }
  }
}

TEST(FixedLengthCodesTest, MonotoneAndSized) {
  auto codes = AssignFixedLengthCodes(5);
  ASSERT_EQ(codes.size(), 5u);
  for (auto& c : codes) EXPECT_EQ(c.len, 3);  // ceil(log2(5))
  CheckMonotonePrefixFree(codes);
  EXPECT_EQ(CodeToString(codes[0]), "000");
  EXPECT_EQ(CodeToString(codes[4]), "100");
}

TEST(FixedLengthCodesTest, SingleEntry) {
  auto codes = AssignFixedLengthCodes(1);
  ASSERT_EQ(codes.size(), 1u);
  EXPECT_EQ(codes[0].len, 1);
}

class RangeCodesTest : public ::testing::TestWithParam<int> {};

TEST_P(RangeCodesTest, MonotonePrefixFreeOnRandomWeights) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int> nsym(2, 40);
  for (int iter = 0; iter < 30; iter++) {
    int n = nsym(rng);
    std::vector<double> w(n);
    for (auto& x : w)
      x = std::uniform_real_distribution<double>(0.01, 100.0)(rng);
    auto codes = AssignRangeCodes(w);
    ASSERT_EQ(codes.size(), w.size());
    CheckMonotonePrefixFree(codes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeCodesTest, ::testing::Range(1, 6));

TEST(RangeCodesTest, HotSymbolsGetShortCodes) {
  std::vector<double> w{1, 1, 1000, 1, 1};
  auto codes = AssignRangeCodes(w);
  EXPECT_LE(codes[2].len, 3);
  EXPECT_GT(codes[0].len, codes[2].len);
}

TEST(RangeCodesTest, NeverBeatsHuTucker) {
  // The paper (§4.2): "Range Encoding ... requires more bits than
  // Hu-Tucker to ensure that codes are exactly on range boundaries".
  std::mt19937_64 rng(99);
  for (int iter = 0; iter < 20; iter++) {
    int n = 2 + static_cast<int>(rng() % 64);
    std::vector<double> w(n);
    for (auto& x : w)
      x = std::uniform_real_distribution<double>(0.1, 50.0)(rng);
    auto range = AssignRangeCodes(w);
    auto hu = AssignHuTuckerCodes(w);
    EXPECT_GE(ExpectedCodeLength(w, range) + 1e-9,
              ExpectedCodeLength(w, hu));
  }
}

TEST(ExpectedCodeLengthTest, Basics) {
  std::vector<double> w{1, 3};
  std::vector<Code> codes{{0, 2}, {uint64_t{1} << 63, 1}};
  // (1*2 + 3*1) / 4 = 1.25
  EXPECT_DOUBLE_EQ(ExpectedCodeLength(w, codes), 1.25);
}

}  // namespace
}  // namespace hope
