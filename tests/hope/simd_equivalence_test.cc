// Differential coverage for the devirtualized/SIMD encode hot path: for
// every scheme × dictionary implementation, EncodeSpan (one virtual call
// per key), EncodeMulti (interleaved multi-key descent), and the batch
// paths must produce encodings byte-identical to the naive per-symbol
// Lookup loop — the scalar reference the seed encoder used. Runs on both
// CI rows, so the SIMD tiers and the HOPE_NO_SIMD portable fallbacks are
// each proven against the same reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "datasets/datasets.h"
#include "hope/bit_writer.h"
#include "hope/hope.h"

namespace hope {
namespace {

constexpr Scheme kSchemes[] = {
    Scheme::kSingleChar, Scheme::kDoubleChar,  Scheme::kAlm,
    Scheme::kThreeGrams, Scheme::kFourGrams,   Scheme::kAlmImproved,
};

constexpr DictImpl kImpls[] = {
    DictImpl::kBinarySearch,
    DictImpl::kArray,
    DictImpl::kBitmapTrie,
    DictImpl::kArt,
};

const char* ImplName(DictImpl impl) {
  switch (impl) {
    case DictImpl::kDefault: return "default";
    case DictImpl::kBinarySearch: return "binary-search";
    case DictImpl::kArray: return "array";
    case DictImpl::kBitmapTrie: return "bitmap-trie";
    case DictImpl::kArt: return "art";
  }
  return "?";
}

bool Compatible(Scheme scheme, DictImpl impl) {
  switch (impl) {
    case DictImpl::kArray:
      return scheme == Scheme::kSingleChar || scheme == Scheme::kDoubleChar;
    case DictImpl::kBitmapTrie:
      return scheme == Scheme::kSingleChar || scheme == Scheme::kDoubleChar ||
             scheme == Scheme::kThreeGrams || scheme == Scheme::kFourGrams;
    default:
      return true;
  }
}

/// The scalar reference: the per-symbol virtual Lookup loop exactly as the
/// seed encoder ran it, including the trace the batch path consumes.
std::string RefEncode(const Dictionary& dict, std::string_view key,
                      size_t* bit_len,
                      std::vector<EncodeTrace>* trace = nullptr) {
  BitWriter writer;
  std::string_view src = key;
  size_t pos = 0;
  while (!src.empty()) {
    if (trace)
      trace->push_back({static_cast<uint32_t>(pos),
                        static_cast<uint32_t>(writer.total_bits())});
    LookupResult r = dict.Lookup(src);
    EXPECT_GT(r.consumed, 0u);
    EXPECT_LE(r.consumed, src.size());
    if (r.consumed == 0) break;  // avoid an infinite loop on contract break
    writer.Append(r.code);
    src.remove_prefix(r.consumed);
    pos += r.consumed;
  }
  *bit_len = writer.total_bits();
  return writer.TakeBytes();
}

std::vector<std::string> TestKeys() {
  auto keys = GenerateDataset(DatasetId::kEmail, 300, /*seed=*/11);
  auto urls = GenerateDataset(DatasetId::kUrl, 200, /*seed=*/12);
  keys.insert(keys.end(), urls.begin(), urls.end());
  // Random binary keys: all byte values, embedded NULs, varied lengths.
  std::mt19937_64 rng(13);
  for (int i = 0; i < 300; i++) {
    std::string k(rng() % 24, '\0');
    for (auto& c : k) c = static_cast<char>(rng());
    keys.push_back(std::move(k));
  }
  keys.emplace_back();  // empty key
  keys.emplace_back(1, '\0');
  keys.emplace_back(6, '\xff');
  return keys;
}

class SimdEquivalenceTest : public ::testing::Test {
 protected:
  void ForEachDict(
      const std::function<void(const Hope&, Scheme, DictImpl)>& fn) {
    const auto samples = SampleKeys(TestKeys(), 0.3);
    for (Scheme scheme : kSchemes) {
      for (DictImpl impl : kImpls) {
        if (!Compatible(scheme, impl)) continue;
        SCOPED_TRACE(std::string(SchemeName(scheme)) + " / " +
                     ImplName(impl));
        auto hope = Hope::Build(scheme, samples, /*dict_size_limit=*/1 << 12,
                                /*stats=*/nullptr, impl);
        ASSERT_NE(hope, nullptr);
        fn(*hope, scheme, impl);
      }
    }
  }
};

TEST_F(SimdEquivalenceTest, EncodeSpanMatchesLookupLoop) {
  const auto keys = TestKeys();
  ForEachDict([&](const Hope& hope, Scheme, DictImpl) {
    const Dictionary& dict = hope.dict();
    for (const std::string& key : keys) {
      size_t ref_bits = 0;
      std::vector<EncodeTrace> ref_trace;
      std::string ref = RefEncode(dict, key, &ref_bits, &ref_trace);

      // Untraced EncodeSpan (the Encode hot path).
      BitWriter w;
      dict.EncodeSpan(key, 0, &w, nullptr);
      EXPECT_EQ(w.TakeBytes(), ref) << "key: " << key;
      EXPECT_EQ(w.total_bits(), ref_bits);

      // Traced EncodeSpan (the batch prefix-reuse path) must record the
      // exact same lookup boundaries.
      BitWriter wt;
      std::vector<EncodeTrace> trace;
      dict.EncodeSpan(key, 0, &wt, &trace);
      EXPECT_EQ(wt.TakeBytes(), ref);
      ASSERT_EQ(trace.size(), ref_trace.size());
      for (size_t i = 0; i < trace.size(); i++) {
        EXPECT_EQ(trace[i].src_pos, ref_trace[i].src_pos);
        EXPECT_EQ(trace[i].bit_pos, ref_trace[i].bit_pos);
      }
    }
  });
}

TEST_F(SimdEquivalenceTest, EncodeMultiMatchesLookupLoop) {
  auto keys = TestKeys();
  // Shuffle so the interleaved descent sees unrelated neighbors (the
  // arrangement EncodeRange hands it).
  std::shuffle(keys.begin(), keys.end(), std::mt19937_64(14));
  ForEachDict([&](const Hope& hope, Scheme, DictImpl) {
    const Dictionary& dict = hope.dict();
    std::vector<std::string_view> views(keys.begin(), keys.end());
    std::vector<std::string> out(keys.size());
    std::vector<size_t> bits(keys.size());
    dict.EncodeMulti(views.data(), views.size(), out.data(), bits.data());
    for (size_t i = 0; i < keys.size(); i++) {
      size_t ref_bits = 0;
      std::string ref = RefEncode(dict, keys[i], &ref_bits);
      ASSERT_EQ(out[i], ref) << "key: " << keys[i];
      ASSERT_EQ(bits[i], ref_bits) << "key: " << keys[i];
    }
  });
}

/// RAII env toggle for the A/B escape hatches; restores on scope exit so
/// a failing leg cannot leak configuration into later tests.
struct EnvGuard {
  EnvGuard(const char* name, const char* value) : name_(name) {
    setenv(name, value, 1);
  }
  ~EnvGuard() { unsetenv(name_); }
  const char* name_;
};

TEST_F(SimdEquivalenceTest, EscapeHatchPathsMatchLookupLoop) {
  // HOPE_FUSED=never pins the classic rank-only walk (fused dispatch
  // table off — read at dictionary construction, and ForEachDict builds
  // fresh) and HOPE_INTERLEAVE=always forces the round-robin multi-key
  // descent even on cache-resident dictionaries: together they exercise
  // the two paths the auto-tuning skips at test scale.
  EnvGuard fused("HOPE_FUSED", "never");
  EnvGuard interleave("HOPE_INTERLEAVE", "always");
  auto keys = TestKeys();
  std::shuffle(keys.begin(), keys.end(), std::mt19937_64(16));
  ForEachDict([&](const Hope& hope, Scheme, DictImpl) {
    const Dictionary& dict = hope.dict();
    for (const std::string& key : keys) {
      size_t ref_bits = 0;
      std::string ref = RefEncode(dict, key, &ref_bits);
      BitWriter w;
      dict.EncodeSpan(key, 0, &w, nullptr);
      ASSERT_EQ(w.TakeBytes(), ref) << "key: " << key;
      ASSERT_EQ(w.total_bits(), ref_bits);
    }
    std::vector<std::string_view> views(keys.begin(), keys.end());
    std::vector<std::string> out(keys.size());
    std::vector<size_t> bits(keys.size());
    dict.EncodeMulti(views.data(), views.size(), out.data(), bits.data());
    for (size_t i = 0; i < keys.size(); i++) {
      size_t ref_bits = 0;
      std::string ref = RefEncode(dict, keys[i], &ref_bits);
      ASSERT_EQ(out[i], ref) << "key: " << keys[i];
      ASSERT_EQ(bits[i], ref_bits);
    }
  });
}

TEST_F(SimdEquivalenceTest, BatchPathsMatchPerKeyEncode) {
  auto sorted = TestKeys();
  std::sort(sorted.begin(), sorted.end());
  auto shuffled = sorted;
  std::shuffle(shuffled.begin(), shuffled.end(), std::mt19937_64(15));
  ForEachDict([&](const Hope& hope, Scheme, DictImpl) {
    for (const auto* batch : {&sorted, &shuffled}) {
      size_t total = 0;
      auto enc = hope.EncodeBatch(*batch, &total);
      size_t ref_total = 0;
      for (size_t i = 0; i < batch->size(); i++) {
        size_t bits = 0;
        ASSERT_EQ(enc[i], hope.Encode((*batch)[i], &bits))
            << "key: " << (*batch)[i];
        ref_total += bits;
      }
      EXPECT_EQ(total, ref_total);
    }
  });
}

}  // namespace
}  // namespace hope
