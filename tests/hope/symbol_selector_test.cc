#include "hope/symbol_selector.h"

#include <gtest/gtest.h>

#include "common/str_utils.h"
#include "datasets/datasets.h"

namespace hope {
namespace {

std::vector<std::string> SmallSample() {
  return {"com.gmail@alice", "com.gmail@bob",   "com.yahoo@carol",
          "com.gmail@dave",  "org.apache@eve",  "com.gmail@frank",
          "net.att@grace",   "com.yahoo@heidi", "com.gmail@ivan"};
}

TEST(GapIntervalsTest, WholeAxis) {
  std::vector<IntervalSpec> out;
  AddGapIntervals("", "", &out);
  // One interval per first byte.
  ASSERT_EQ(out.size(), 256u);
  EXPECT_EQ(out[0].left_bound, "");
  EXPECT_EQ(out[0].symbol, std::string(1, '\0'));
  EXPECT_EQ(out[255].symbol, std::string(1, '\xff'));
  EXPECT_EQ(ValidateIntervals(out), "");
}

TEST(GapIntervalsTest, SingleCommonPrefix) {
  std::vector<IntervalSpec> out;
  AddGapIntervals("inh", "ion", &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].left_bound, "inh");
  EXPECT_EQ(out[0].symbol, "i");
}

TEST(GapIntervalsTest, SplitsAtByteBoundaries) {
  std::vector<IntervalSpec> out;
  AddGapIntervals("ax", "cat", &out);
  // [ax, b) symbol a; [b, c) symbol b; [c, cat) symbol c.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].left_bound, "ax");
  EXPECT_EQ(out[0].symbol, "a");
  EXPECT_EQ(out[1].left_bound, "b");
  EXPECT_EQ(out[1].symbol, "b");
  EXPECT_EQ(out[2].left_bound, "c");
  EXPECT_EQ(out[2].symbol, "c");
}

TEST(GapIntervalsTest, EmptyGapEmitsNothing) {
  std::vector<IntervalSpec> out;
  AddGapIntervals("abc", "abc", &out);
  EXPECT_TRUE(out.empty());
  AddGapIntervals("abd", "abc", &out);
  EXPECT_TRUE(out.empty());
}

class SelectorParamTest
    : public ::testing::TestWithParam<std::tuple<int, size_t>> {};

TEST_P(SelectorParamTest, ProducesValidCompleteIntervals) {
  auto [which, limit] = GetParam();
  std::unique_ptr<SymbolSelector> sel;
  switch (which) {
    case 0: sel = MakeSingleCharSelector(); break;
    case 1: sel = MakeDoubleCharSelector(); break;
    case 2: sel = MakeNGramSelector(3); break;
    case 3: sel = MakeNGramSelector(4); break;
    case 4: sel = MakeAlmSelector(); break;
    default: sel = MakeAlmImprovedSelector(); break;
  }
  auto keys = GenerateEmails(2000, 11);
  auto intervals = sel->Select(keys, limit);
  ASSERT_FALSE(intervals.empty());
  EXPECT_EQ(ValidateIntervals(intervals), "");
  // Test-encode fills weights and never gets stuck.
  TestEncodeWeights(keys, &intervals);
  double total = 0;
  for (auto& spec : intervals) total += spec.weight;
  EXPECT_GT(total, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SelectorParamTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5),
                       ::testing::Values(size_t{256}, size_t{4096})));

TEST(SelectorTest, SingleCharLayout) {
  auto intervals = MakeSingleCharSelector()->Select({}, 0);
  ASSERT_EQ(intervals.size(), 256u);
  EXPECT_EQ(intervals[0].left_bound, "");
  EXPECT_EQ(intervals[static_cast<size_t>('a')].symbol, "a");
  EXPECT_EQ(ValidateIntervals(intervals), "");
}

TEST(SelectorTest, DoubleCharLayoutWithTerminators) {
  auto intervals = MakeDoubleCharSelector()->Select({}, 0);
  ASSERT_EQ(intervals.size(), 256u * 257u);
  EXPECT_EQ(ValidateIntervals(intervals), "");
  // Terminator entry for 'b' covers exactly the string "b".
  size_t b_term = static_cast<size_t>('b') * 257;
  EXPECT_EQ(intervals[b_term].left_bound, "b");
  EXPECT_EQ(intervals[b_term].symbol, "b");
  EXPECT_EQ(intervals[b_term + 1].left_bound, std::string("b\0", 2));
}

TEST(SelectorTest, NGramSelectsFrequentPatterns) {
  std::vector<std::string> keys;
  for (int i = 0; i < 500; i++) keys.push_back("singing");
  auto intervals = MakeNGramSelector(3)->Select(keys, 64);
  EXPECT_EQ(ValidateIntervals(intervals), "");
  bool found_ing = false;
  for (auto& spec : intervals)
    if (spec.symbol == "ing") found_ing = true;
  EXPECT_TRUE(found_ing);
}

TEST(SelectorTest, AlmSelectsLongFrequentPatterns) {
  auto keys = SmallSample();
  // Duplicate keys so long substrings dominate the len*freq score.
  std::vector<std::string> big;
  for (int i = 0; i < 50; i++)
    big.insert(big.end(), keys.begin(), keys.end());
  auto intervals = MakeAlmImprovedSelector()->Select(big, 128);
  EXPECT_EQ(ValidateIntervals(intervals), "");
  // A long common pattern ("com.gmail@...") must appear as a symbol; gap
  // symbols may prefix selected symbols (Fig. 4c shows "s" next to
  // "sion"), so we only require that *some* long symbol was selected.
  size_t longest = 0;
  for (auto& spec : intervals) longest = std::max(longest, spec.symbol.size());
  EXPECT_GE(longest, 5u);
}

TEST(SelectorTest, AlmBlendingResolvesPrefixConflicts) {
  // "sig" and "sigmod" both score highly; after blending, encoding a key
  // that contains "sigmod" must still work and the intervals stay valid.
  std::vector<std::string> keys;
  for (int i = 0; i < 200; i++) {
    keys.push_back("sigmod2020");
    keys.push_back("sigir2020");
    keys.push_back("sig");
  }
  auto intervals = MakeAlmImprovedSelector()->Select(keys, 64);
  EXPECT_EQ(ValidateIntervals(intervals), "");
  TestEncodeWeights(keys, &intervals);  // must not get stuck
}

TEST(SelectorTest, ValidateCatchesBrokenIntervals) {
  std::vector<IntervalSpec> bad1;  // does not start at -infinity
  bad1.push_back({"a", "a", 0});
  EXPECT_NE(ValidateIntervals(bad1), "");

  std::vector<IntervalSpec> bad2;  // empty symbol
  bad2.push_back({"", "", 0});
  EXPECT_NE(ValidateIntervals(bad2), "");

  std::vector<IntervalSpec> bad3;  // interval extends past symbol range
  bad3.push_back({"", std::string(1, '\0'), 0});
  bad3.push_back({"a", "a", 0});
  bad3.push_back({"b", "a", 0});  // symbol "a" cannot cover [b, ...)
  EXPECT_NE(ValidateIntervals(bad3), "");
}

TEST(TestEncodeTest, CountsMatchManualTrace) {
  // Dictionary: ["", a) -> \0 region splits; simple two-interval axis over
  // single chars for a tiny alphabet.
  std::vector<IntervalSpec> intervals;
  AddGapIntervals("", "", &intervals);  // one interval per byte
  std::vector<std::string> keys{"ab", "ba", "aa"};
  TestEncodeWeights(keys, &intervals);
  EXPECT_DOUBLE_EQ(intervals[static_cast<size_t>('a')].weight, 4.0);
  EXPECT_DOUBLE_EQ(intervals[static_cast<size_t>('b')].weight, 2.0);
}

}  // namespace
}  // namespace hope
