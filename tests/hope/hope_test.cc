// End-to-end facade tests: build stats, compression-rate ordering across
// schemes, dictionary-implementation equivalence, distribution shift.
#include "hope/hope.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "datasets/datasets.h"

namespace hope {
namespace {

TEST(HopeTest, BuildStatsPopulated) {
  auto keys = GenerateEmails(2000, 31);
  BuildStats stats;
  auto hope = Hope::Build(Scheme::kThreeGrams, keys, 1024, &stats);
  EXPECT_EQ(stats.num_entries, hope->dict().NumEntries());
  EXPECT_GT(stats.num_entries, 512u);
  EXPECT_GT(stats.dict_memory_bytes, 0u);
  EXPECT_GE(stats.symbol_select_seconds, 0.0);
  EXPECT_GE(stats.code_assign_seconds, 0.0);
  EXPECT_GE(stats.dict_build_seconds, 0.0);
}

TEST(HopeTest, HigherOrderSchemesCompressBetter) {
  auto keys = GenerateEmails(20000, 32);
  auto sample = SampleKeys(keys, 0.2);
  auto single = Hope::Build(Scheme::kSingleChar, sample);
  auto dbl = Hope::Build(Scheme::kDoubleChar, sample);
  auto grams3 = Hope::Build(Scheme::kThreeGrams, sample, 1 << 14);
  double cpr1 = single->CompressionRate(keys);
  double cpr2 = dbl->CompressionRate(keys);
  double cpr3 = grams3->CompressionRate(keys);
  // Fig. 8 ordering: Double-Char > Single-Char; 3-Grams (large dict)
  // > Single-Char.
  EXPECT_GT(cpr2, cpr1);
  EXPECT_GT(cpr3, cpr1);
  EXPECT_GT(cpr1, 1.2);  // email keys compress well even per-char
}

TEST(HopeTest, LargerDictImprovesVivcCompression) {
  auto keys = GenerateEmails(20000, 33);
  auto sample = SampleKeys(keys, 0.2);
  auto small = Hope::Build(Scheme::kThreeGrams, sample, 256);
  auto large = Hope::Build(Scheme::kThreeGrams, sample, 1 << 14);
  EXPECT_GT(large->CompressionRate(keys),
            small->CompressionRate(keys) * 0.999);
}

TEST(HopeTest, DictImplsAgreeEndToEnd) {
  auto keys = GenerateEmails(3000, 34);
  auto a = Hope::Build(Scheme::kFourGrams, keys, 2048, nullptr,
                       DictImpl::kBitmapTrie);
  auto b = Hope::Build(Scheme::kFourGrams, keys, 2048, nullptr,
                       DictImpl::kBinarySearch);
  auto c = Hope::Build(Scheme::kFourGrams, keys, 2048, nullptr,
                       DictImpl::kArt);
  for (size_t i = 0; i < 300; i++) {
    EXPECT_EQ(a->Encode(keys[i]), b->Encode(keys[i]));
    EXPECT_EQ(a->Encode(keys[i]), c->Encode(keys[i]));
  }
}

TEST(HopeTest, ArbitraryKeysEncodableAfterDistributionShift) {
  // Build on emails, encode wiki titles and URLs: completeness means the
  // dictionary still encodes everything, order-preserved (Appendix C).
  auto emails = GenerateEmails(3000, 35);
  auto hope = Hope::Build(Scheme::kDoubleChar, emails);
  auto wiki = GenerateWikiTitles(500, 36);
  std::vector<std::string> sorted = wiki;
  std::sort(sorted.begin(), sorted.end());
  std::string prev_enc;
  size_t prev_bits = 0;
  for (size_t i = 0; i < sorted.size(); i++) {
    size_t bits = 0;
    std::string enc = hope->Encode(sorted[i], &bits);
    EXPECT_EQ(hope->Decode(enc, bits), sorted[i]);
    if (i > 0) {
      EXPECT_LT(CompareBitStrings(prev_enc, prev_bits, enc, bits), 0)
          << sorted[i - 1] << " vs " << sorted[i];
    }
    prev_enc = enc;
    prev_bits = bits;
  }
}

TEST(HopeTest, CompressionRateDropsOnShiftButStaysValid) {
  auto emails = GenerateEmails(30000, 37);
  // Split by provider as in Appendix C.
  std::vector<std::string> part_a, part_b;
  for (auto& k : emails) {
    if (k.rfind("com.gmail@", 0) == 0 || k.rfind("com.yahoo@", 0) == 0)
      part_a.push_back(k);
    else
      part_b.push_back(k);
  }
  ASSERT_GT(part_a.size(), 1000u);
  ASSERT_GT(part_b.size(), 1000u);
  auto dict_a = Hope::Build(Scheme::kThreeGrams, SampleKeys(part_a, 0.1),
                            1 << 12);
  double aa = dict_a->CompressionRate(part_a);
  double ab = dict_a->CompressionRate(part_b);
  EXPECT_GT(aa, 1.0);
  EXPECT_GT(ab, 1.0);  // still compresses, just less
  EXPECT_GT(aa, ab);   // matched distribution compresses better
}

TEST(HopeTest, SchemeNames) {
  EXPECT_STREQ(SchemeName(Scheme::kSingleChar), "Single-Char");
  EXPECT_STREQ(SchemeName(Scheme::kAlmImproved), "ALM-Improved");
}

}  // namespace
}  // namespace hope
