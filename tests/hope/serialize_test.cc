#include <gtest/gtest.h>

#include "datasets/datasets.h"
#include "hope/hope.h"

namespace hope {
namespace {

class SerializeSchemeTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(SerializeSchemeTest, RoundTripReproducesEncodings) {
  auto keys = GenerateEmails(2000, 91);
  auto original = Hope::Build(GetParam(), keys, 1024);
  std::string blob = original->Serialize();
  auto loaded = Hope::Deserialize(blob);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->scheme(), GetParam());
  EXPECT_EQ(loaded->dict().NumEntries(), original->dict().NumEntries());
  auto probes = GenerateWikiTitles(300, 92);
  probes.insert(probes.end(), keys.begin(), keys.begin() + 300);
  for (const auto& p : probes) {
    size_t b1 = 0, b2 = 0;
    std::string e1 = original->Encode(p, &b1);
    std::string e2 = loaded->Encode(p, &b2);
    ASSERT_EQ(e1, e2) << p;
    ASSERT_EQ(b1, b2);
    ASSERT_EQ(loaded->Decode(e2, b2), p);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SerializeSchemeTest,
    ::testing::Values(Scheme::kSingleChar, Scheme::kDoubleChar,
                      Scheme::kThreeGrams, Scheme::kFourGrams, Scheme::kAlm,
                      Scheme::kAlmImproved),
    [](const ::testing::TestParamInfo<Scheme>& info) {
      std::string name = SchemeName(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST(SerializeTest, RejectsGarbage) {
  EXPECT_EQ(Hope::Deserialize(""), nullptr);
  EXPECT_EQ(Hope::Deserialize("not a dictionary"), nullptr);
  EXPECT_EQ(Hope::Deserialize(std::string(100, '\x42')), nullptr);
}

TEST(SerializeTest, RejectsTruncationAndTrailingBytes) {
  auto keys = GenerateEmails(500, 93);
  auto hope = Hope::Build(Scheme::kThreeGrams, keys, 256);
  std::string blob = hope->Serialize();
  for (size_t cut : {blob.size() - 1, blob.size() / 2, size_t{12}})
    EXPECT_EQ(Hope::Deserialize(std::string_view(blob).substr(0, cut)),
              nullptr)
        << "cut=" << cut;
  EXPECT_EQ(Hope::Deserialize(blob + "x"), nullptr);
}

TEST(SerializeTest, RejectsCorruptedOrder) {
  auto keys = GenerateEmails(500, 94);
  auto hope = Hope::Build(Scheme::kThreeGrams, keys, 256);
  std::string blob = hope->Serialize();
  // Flip bytes in the middle; the loader must never crash and usually
  // reject (a flip inside code bits may legitimately load).
  for (size_t pos = 16; pos < blob.size(); pos += 97) {
    std::string bad = blob;
    bad[pos] = static_cast<char>(bad[pos] ^ 0xFF);
    auto loaded = Hope::Deserialize(bad);  // must not crash
    (void)loaded;
  }
}

}  // namespace
}  // namespace hope
