#include <gtest/gtest.h>

#include "datasets/datasets.h"
#include "hope/hope.h"

namespace hope {
namespace {

class SerializeSchemeTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(SerializeSchemeTest, RoundTripReproducesEncodings) {
  auto keys = GenerateEmails(2000, 91);
  auto original = Hope::Build(GetParam(), keys, 1024);
  std::string blob = original->Serialize();
  auto loaded = Hope::Deserialize(blob);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->scheme(), GetParam());
  EXPECT_EQ(loaded->dict().NumEntries(), original->dict().NumEntries());
  auto probes = GenerateWikiTitles(300, 92);
  probes.insert(probes.end(), keys.begin(), keys.begin() + 300);
  for (const auto& p : probes) {
    size_t b1 = 0, b2 = 0;
    std::string e1 = original->Encode(p, &b1);
    std::string e2 = loaded->Encode(p, &b2);
    ASSERT_EQ(e1, e2) << p;
    ASSERT_EQ(b1, b2);
    ASSERT_EQ(loaded->Decode(e2, b2), p);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SerializeSchemeTest,
    ::testing::Values(Scheme::kSingleChar, Scheme::kDoubleChar,
                      Scheme::kThreeGrams, Scheme::kFourGrams, Scheme::kAlm,
                      Scheme::kAlmImproved),
    [](const ::testing::TestParamInfo<Scheme>& info) {
      std::string name = SchemeName(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST(SerializeTest, RejectsGarbage) {
  EXPECT_EQ(Hope::Deserialize(""), nullptr);
  EXPECT_EQ(Hope::Deserialize("not a dictionary"), nullptr);
  EXPECT_EQ(Hope::Deserialize(std::string(100, '\x42')), nullptr);
}

TEST(SerializeTest, RejectsTruncationAndTrailingBytes) {
  auto keys = GenerateEmails(500, 93);
  auto hope = Hope::Build(Scheme::kThreeGrams, keys, 256);
  std::string blob = hope->Serialize();
  for (size_t cut : {blob.size() - 1, blob.size() / 2, size_t{12}})
    EXPECT_EQ(Hope::Deserialize(std::string_view(blob).substr(0, cut)),
              nullptr)
        << "cut=" << cut;
  EXPECT_EQ(Hope::Deserialize(blob + "x"), nullptr);
}

TEST(SerializeTest, RejectsCorruptedOrder) {
  auto keys = GenerateEmails(500, 94);
  auto hope = Hope::Build(Scheme::kThreeGrams, keys, 256);
  std::string blob = hope->Serialize();
  // Flip bytes in the middle; the loader must never crash and usually
  // reject (a flip inside code bits may legitimately load).
  for (size_t pos = 16; pos < blob.size(); pos += 97) {
    std::string bad = blob;
    bad[pos] = static_cast<char>(bad[pos] ^ 0xFF);
    auto loaded = Hope::Deserialize(bad);  // must not crash
    (void)loaded;
  }
}

struct BlobEntry {
  std::string left_bound;
  uint32_t symbol_len;
  uint64_t code_bits;
  uint8_t code_len;
};

// Handcrafts a Scheme::kAlm blob (the ART dictionary accepts arbitrary
// entry counts, so nothing but the field validations under test can
// reject it) with the given entries.
std::string AlmBlob(const std::vector<BlobEntry>& entries) {
  std::string blob = "HOPEDICT1";
  blob.push_back(2);  // Scheme::kAlm
  auto put_u32 = [&](uint32_t v) {
    for (int i = 0; i < 4; i++)
      blob.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  };
  put_u32(static_cast<uint32_t>(entries.size()));
  for (const BlobEntry& e : entries) {
    put_u32(static_cast<uint32_t>(e.left_bound.size()));
    blob += e.left_bound;
    put_u32(e.symbol_len);
    for (int i = 0; i < 8; i++)
      blob.push_back(static_cast<char>((e.code_bits >> (8 * i)) & 0xFF));
    blob.push_back(static_cast<char>(e.code_len));
  }
  return blob;
}

constexpr uint64_t kMsb = uint64_t{1} << 63;

TEST(SerializeTest, AcceptsMinimalWellFormedBlob) {
  // Baseline showing AlmBlob layouts are loadable at all — without this,
  // the rejection cases below could pass for unrelated reasons.
  auto loaded = Hope::Deserialize(
      AlmBlob({{"", 1, 0, 1}, {"a", 1, kMsb, 1}}));
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->dict().NumEntries(), 2u);
}

TEST(SerializeTest, RejectsMalformedEntryFields) {
  // Oversized code length (would shift out of the 64-bit code word).
  EXPECT_EQ(Hope::Deserialize(AlmBlob({{"", 1, 0, 200}})), nullptr);
  EXPECT_EQ(Hope::Deserialize(AlmBlob({{"", 1, 0, 65}})), nullptr);
  // A zero-length code would encode its symbol to nothing (lossy decode).
  EXPECT_EQ(Hope::Deserialize(AlmBlob({{"", 1, 0, 0}})), nullptr);
  // Nonzero bits beyond the code length break the BitWriter invariant.
  EXPECT_EQ(Hope::Deserialize(AlmBlob({{"", 1, uint64_t{1}, 1}})), nullptr);
  // A lookup must consume at least one byte, and the symbol is a prefix
  // of the left bound.
  EXPECT_EQ(Hope::Deserialize(AlmBlob({{"", 0, 0, 1}})), nullptr);
  EXPECT_EQ(Hope::Deserialize(AlmBlob({{"", 7, 0, 1}})), nullptr);
}

TEST(SerializeTest, RejectsNonPrefixFreeCodes) {
  // "0" is a prefix of "00": decoding would emit the first symbol early.
  EXPECT_EQ(Hope::Deserialize(
                AlmBlob({{"", 1, 0, 1}, {"a", 1, 0, 2}})),
            nullptr);
  // Duplicate codes.
  EXPECT_EQ(Hope::Deserialize(
                AlmBlob({{"", 1, 0, 1}, {"a", 1, 0, 1}})),
            nullptr);
}

TEST(SerializeTest, RejectsHugeEntryCount) {
  auto keys = GenerateEmails(100, 95);
  auto hope = Hope::Build(Scheme::kSingleChar, keys, 256);
  std::string blob = hope->Serialize();
  // Overwrite the count with 0xFFFFFFFF; the loader must reject it
  // without attempting a multi-gigabyte allocation.
  for (size_t i = 10; i < 14; i++) blob[i] = '\xFF';
  EXPECT_EQ(Hope::Deserialize(blob), nullptr);
}

}  // namespace
}  // namespace hope
