#!/usr/bin/env bash
# Exit-code and detection contract of tools/bench_diff.py (documented in
# its module docstring: 0 no regressions, 1 regressions, 2 usage /
# malformed input). Exercises file-vs-file and dir-vs-dir modes against
# synthesized reports shaped like bench_common.h JsonReport output.
set -u

diff_tool="$1"
python="${2:-python3}"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT
fail=0

expect() {
  local want="$1"
  shift
  "$python" "$diff_tool" "$@" >/dev/null 2>&1
  local got=$?
  if [[ "$got" -ne "$want" ]]; then
    echo "FAIL: bench_diff $* -> exit $got (want $want)"
    fail=1
  fi
}

base="$work/base.json"
cat > "$base" <<'EOF'
{
  "bench": "dynamic_rebuild",
  "keys": 1000,
  "rows": [
    {"series": "phase", "phase": 0, "managed_cpr": 2.0, "epoch": 0},
    {"series": "phase", "phase": 1, "managed_cpr": 1.9, "epoch": 1},
    {"series": "summary", "managed_cpr_final": 1.9, "rebal_spread": 1.1,
     "ns_per_char_b1": 10.0, "rebuilds": 4}
  ]
}
EOF

# Identical results: clean pass.
cp "$base" "$work/same.json"
expect 0 "$base" "$work/same.json"

# CPR drop beyond 5%: regression.
sed 's/"managed_cpr_final": 1.9/"managed_cpr_final": 1.7/' "$base" \
  > "$work/cpr_drop.json"
expect 1 "$base" "$work/cpr_drop.json"

# CPR drop within the default 5% gate: pass.
sed 's/"managed_cpr_final": 1.9/"managed_cpr_final": 1.85/' "$base" \
  > "$work/cpr_small.json"
expect 0 "$base" "$work/cpr_small.json"
# ...but a tightened gate catches it.
expect 1 "$base" "$work/cpr_small.json" --cpr-threshold 0.01

# Latency up 50% (default gate 25%): regression; CPR improving does not
# mask it.
sed -e 's/"ns_per_char_b1": 10.0/"ns_per_char_b1": 15.0/' \
    -e 's/"managed_cpr_final": 1.9/"managed_cpr_final": 2.5/' "$base" \
  > "$work/lat_up.json"
expect 1 "$base" "$work/lat_up.json"
# A loose latency gate lets it through; inf disables the family
# entirely (the cross-machine CI mode) without touching the spread gate.
expect 0 "$base" "$work/lat_up.json" --latency-threshold 0.6
expect 0 "$base" "$work/lat_up.json" --latency-threshold inf
sed 's/"rebal_spread": 1.1/"rebal_spread": 2.0/' "$work/lat_up.json" \
  > "$work/lat_inf_spread_up.json"
expect 1 "$base" "$work/lat_inf_spread_up.json" --latency-threshold inf

# Spread (load imbalance) counts as lower-is-better.
sed 's/"rebal_spread": 1.1/"rebal_spread": 2.0/' "$base" \
  > "$work/spread_up.json"
expect 1 "$base" "$work/spread_up.json"

# Non-metric counters (epoch, rebuilds) never gate.
sed 's/"rebuilds": 4/"rebuilds": 9/' "$base" > "$work/counts.json"
expect 0 "$base" "$work/counts.json"

# Improvements never gate.
sed 's/"managed_cpr_final": 1.9/"managed_cpr_final": 2.4/' "$base" \
  > "$work/better.json"
expect 0 "$base" "$work/better.json"

# Directory mode: shared files compared, one-sided files only noted.
mkdir -p "$work/a" "$work/b"
cp "$base" "$work/a/BENCH_dynamic.json"
cp "$work/cpr_drop.json" "$work/b/BENCH_dynamic.json"
cp "$base" "$work/a/BENCH_only_in_baseline.json"
expect 1 "$work/a" "$work/b"
cp "$base" "$work/b/BENCH_dynamic.json"
expect 0 "$work/a" "$work/b"

# Volatile descriptive strings (shard_epochs-style) are not identity:
# a row whose epoch string shifted still matches, so a CPR drop in it
# is still caught...
base_epochs="$work/base_epochs.json"
cat > "$base_epochs" <<'EOF'
{
  "bench": "dynamic_rebuild",
  "keys": 1000,
  "rows": [
    {"series": "rebalance_phase", "phase": 1, "rebal_cpr": 2.0,
     "rebal_shard_epochs": "0/0/3/0"}
  ]
}
EOF
sed -e 's|"0/0/3/0"|"0/0/2/0"|' -e 's/"rebal_cpr": 2.0/"rebal_cpr": 1.5/' \
  "$base_epochs" > "$work/epochs_shift.json"
expect 1 "$base_epochs" "$work/epochs_shift.json"
# ...and an epoch-string shift alone never gates.
sed 's|"0/0/3/0"|"0/0/2/0"|' "$base_epochs" > "$work/epochs_only.json"
expect 0 "$base_epochs" "$work/epochs_only.json"

# A different run configuration (keys / full_scale) is skipped loudly,
# never reported as a perf regression.
sed -e 's/"keys": 1000/"keys": 50/' \
    -e 's/"managed_cpr_final": 1.9/"managed_cpr_final": 1.0/' "$base" \
  > "$work/other_config.json"
expect 0 "$base" "$work/other_config.json"

# Serving rows: latency (*_ns), throughput (*ops_per_sec), correctness
# (*_failures / *_violations) families, identity includes "op".
serving="$work/serving.json"
cat > "$serving" <<'EOF'
{
  "bench": "serving",
  "keys": 1000,
  "rows": [
    {"series": "serving", "phase": "read_heavy", "op": "lookup",
     "p99_ns": 1000.0, "ops_per_sec": 50000.0, "check_failures": 0,
     "scan_order_violations": 0},
    {"series": "serving", "phase": "read_heavy", "op": "scan",
     "p99_ns": 9000.0, "ops_per_sec": 2000.0, "check_failures": 0,
     "scan_order_violations": 0}
  ]
}
EOF
cp "$serving" "$work/serving_same.json"
expect 0 "$serving" "$work/serving_same.json"

# Tail latency up 50%: gated by --latency-threshold, inf disables.
sed 's/"p99_ns": 1000.0/"p99_ns": 1500.0/' "$serving" \
  > "$work/serving_lat.json"
expect 1 "$serving" "$work/serving_lat.json"
expect 0 "$serving" "$work/serving_lat.json" --latency-threshold inf

# Throughput down 50%: gated by --throughput-threshold, inf disables.
sed 's/"ops_per_sec": 50000.0/"ops_per_sec": 25000.0/' "$serving" \
  > "$work/serving_tput.json"
expect 1 "$serving" "$work/serving_tput.json"
expect 0 "$serving" "$work/serving_tput.json" --throughput-threshold inf
expect 0 "$serving" "$work/serving_tput.json" --throughput-threshold 1.5

# Correctness counters: ANY increase fails, even 0 -> 1, and no
# threshold flag exempts it.
sed 's/"scan_order_violations": 0}$/"scan_order_violations": 1}/' \
  "$serving" > "$work/serving_corrupt.json"
expect 1 "$serving" "$work/serving_corrupt.json"
expect 1 "$serving" "$work/serving_corrupt.json" \
  --latency-threshold inf --throughput-threshold inf

# Identity includes "op": swapping op names un-matches rows (noted, not
# silently compared across different ops).
sed -e 's/"op": "lookup"/"op": "erase"/' "$serving" \
  > "$work/serving_op.json"
expect 0 "$serving" "$work/serving_op.json"

# Telemetry rows: telemetry_* health rates take --telemetry-threshold
# (default 0.5), telemetry_*_ns ride the latency family, *_rejects and
# *check_failures are zero-tolerance correctness, and "mode" is
# identity (open vs closed loop rows never compare against each other).
telem="$work/telemetry.json"
cat > "$telem" <<'EOF'
{
  "bench": "serving",
  "keys": 1000,
  "rows": [
    {"series": "telemetry", "phase": "read_heavy", "mode": "closed",
     "telemetry_rebuild_rejects": 0, "telemetry_check_failures": 0,
     "telemetry_lookup_slow_paths_per_mop": 10.0,
     "telemetry_ebr_pending": 4.0,
     "telemetry_queue_delay_p99_ns": 100000.0}
  ]
}
EOF
cp "$telem" "$work/telem_same.json"
expect 0 "$telem" "$work/telem_same.json"

# Slow-path rate up 40%: within the default 50% telemetry gate...
sed 's/"telemetry_lookup_slow_paths_per_mop": 10.0/"telemetry_lookup_slow_paths_per_mop": 14.0/' \
  "$telem" > "$work/telem_rate_small.json"
expect 0 "$telem" "$work/telem_rate_small.json"
# ...up 100%: regression; a loosened/disabled gate lets it through.
sed 's/"telemetry_lookup_slow_paths_per_mop": 10.0/"telemetry_lookup_slow_paths_per_mop": 20.0/' \
  "$telem" > "$work/telem_rate_big.json"
expect 1 "$telem" "$work/telem_rate_big.json"
expect 0 "$telem" "$work/telem_rate_big.json" --telemetry-threshold 1.5
expect 0 "$telem" "$work/telem_rate_big.json" --telemetry-threshold inf

# telemetry_*_ns is a latency, so --latency-threshold governs it.
sed 's/"telemetry_queue_delay_p99_ns": 100000.0/"telemetry_queue_delay_p99_ns": 150000.0/' \
  "$telem" > "$work/telem_lat.json"
expect 1 "$telem" "$work/telem_lat.json"
expect 0 "$telem" "$work/telem_lat.json" --latency-threshold inf

# *_rejects: any increase fails, even 0 -> 1, no flag exempts it.
sed 's/"telemetry_rebuild_rejects": 0/"telemetry_rebuild_rejects": 1/' \
  "$telem" > "$work/telem_reject.json"
expect 1 "$telem" "$work/telem_reject.json"
expect 1 "$telem" "$work/telem_reject.json" \
  --latency-threshold inf --telemetry-threshold inf

# "mode" is identity: flipping it un-matches the row (noted, not gated).
sed 's/"mode": "closed"/"mode": "open"/' "$telem" > "$work/telem_mode.json"
expect 0 "$telem" "$work/telem_mode.json"
expect 2 "$telem" "$work/telem_same.json" --telemetry-threshold -1

# Encode-hot rows: cycles_per_* rides the latency family, *chars_per_sec*
# (including batch-suffixed mchars_per_sec_b32) the throughput family,
# and "mode" is identity (single vs sorted_b32 never compare).
hot="$work/encode_hot.json"
cat > "$hot" <<'EOF'
{
  "bench": "encode_hot",
  "keys": 1000,
  "rows": [
    {"series": "encode_hot", "scheme": "3-Grams", "mode": "single",
     "ns_per_char": 20.0, "mchars_per_sec": 50.0, "cycles_per_byte": 60.0},
    {"series": "encode_hot", "scheme": "3-Grams", "mode": "sorted_b32",
     "ns_per_char": 5.0, "mchars_per_sec": 200.0, "cycles_per_byte": 15.0},
    {"series": "fig14", "scheme": "3-Grams", "mchars_per_sec_b32": 210.0}
  ]
}
EOF
cp "$hot" "$work/hot_same.json"
expect 0 "$hot" "$work/hot_same.json"

# Throughput down 50% (mchars_per_sec): gated, inf/loose disables.
sed 's/"mchars_per_sec": 200.0/"mchars_per_sec": 100.0/' "$hot" \
  > "$work/hot_tput.json"
expect 1 "$hot" "$work/hot_tput.json"
expect 0 "$hot" "$work/hot_tput.json" --throughput-threshold inf
expect 0 "$hot" "$work/hot_tput.json" --throughput-threshold 1.5

# Batch-suffixed throughput twin (mchars_per_sec_b32) gates the same way.
sed 's/"mchars_per_sec_b32": 210.0/"mchars_per_sec_b32": 100.0/' "$hot" \
  > "$work/hot_tput_b32.json"
expect 1 "$hot" "$work/hot_tput_b32.json"
expect 0 "$hot" "$work/hot_tput_b32.json" --throughput-threshold inf

# cycles_per_byte up 50%: latency family, --latency-threshold governs.
sed 's/"cycles_per_byte": 15.0/"cycles_per_byte": 22.5/' "$hot" \
  > "$work/hot_cyc.json"
expect 1 "$hot" "$work/hot_cyc.json"
expect 0 "$hot" "$work/hot_cyc.json" --latency-threshold inf

# "mode" is identity: flipping it un-matches the row (noted, not gated),
# so a would-be regression hiding behind a mode rename never fires.
sed -e 's/"mode": "sorted_b32"/"mode": "shuffled_b32"/' \
    -e 's/"mchars_per_sec": 200.0/"mchars_per_sec": 100.0/' "$hot" \
  > "$work/hot_mode.json"
expect 0 "$hot" "$work/hot_mode.json"

# A null metric (cycle counter unavailable on one machine) never gates.
sed 's/"cycles_per_byte": 15.0/"cycles_per_byte": null/' "$hot" \
  > "$work/hot_null.json"
expect 0 "$hot" "$work/hot_null.json"
expect 0 "$work/hot_null.json" "$hot"

# --history: dated run subdirectories; candidate gates against the
# LATEST run (regression vs latest fails even if older runs were worse).
hist="$work/history"
mkdir -p "$hist/2026-08-01" "$hist/2026-08-02" "$work/hist_cand"
sed 's/"ops_per_sec": 50000.0/"ops_per_sec": 20000.0/' "$serving" \
  > "$hist/2026-08-01/BENCH_serving.json"
cp "$serving" "$hist/2026-08-02/BENCH_serving.json"
cp "$serving" "$work/hist_cand/BENCH_serving.json"
expect 0 "$hist" "$work/hist_cand" --history
# Candidate regresses vs latest (even though it beats the oldest run).
sed 's/"ops_per_sec": 50000.0/"ops_per_sec": 30000.0/' "$serving" \
  > "$work/hist_cand/BENCH_serving.json"
expect 1 "$hist" "$work/hist_cand" --history
# Trend output mentions best/worst/latest.
if ! "$python" "$diff_tool" "$hist" "$work/hist_cand" --history 2>/dev/null \
    | grep -q "best .* worst .* latest"; then
  echo "FAIL: --history printed no trend line"
  fail=1
fi
# Empty history directory: usage error.
mkdir -p "$work/hist_empty"
expect 2 "$work/hist_empty" "$work/hist_cand" --history
# --history with a file baseline: usage error.
expect 2 "$serving" "$work/hist_cand" --history

# Malformed input and bad usage.
echo '{"rows": "nope"}' > "$work/broken.json"
expect 2 "$base" "$work/broken.json"
expect 2 "$base" "$work/does_not_exist.json"
expect 2 "$base" "$work/a"           # file vs dir
expect 2 "$base" "$work/same.json" --cpr-threshold -1
expect 2 "$base" "$work/same.json" --throughput-threshold -1

if [[ "$fail" -ne 0 ]]; then
  echo "bench_diff_test FAILED"
  exit 1
fi
echo "bench_diff_test OK"
