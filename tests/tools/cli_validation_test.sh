#!/usr/bin/env bash
# Exit-code contract of hope_cli argument validation (documented in the
# CLI header: 0 ok, 1 runtime error, 2 usage error). Probes the cheap
# paths only — selftest/drift runs are covered by hope_cli_smoke.
set -u

cli="$1"
fail=0

expect() {
  local want="$1"
  shift
  "$cli" "$@" >/dev/null 2>&1
  local got=$?
  if [[ "$got" -ne "$want" ]]; then
    echo "FAIL: hope_cli $* -> exit $got (want $want)"
    fail=1
  fi
}

# drift shards argument: 0, negative, non-numeric, trailing junk and
# absurd values are usage errors.
expect 2 drift double-char 100 0
expect 2 drift double-char 100 -3
expect 2 drift double-char 100 abc
expect 2 drift double-char 100 12x
expect 2 drift double-char 100 257
expect 2 drift double-char 100 99999999999999999999
# keys_per_phase validation predates this PR; keep it covered.
expect 2 drift double-char 0
expect 2 drift double-char -5
# mode argument: unknown modes, or a mode without a sharded demo.
expect 2 drift double-char 100 4 bogus-mode
expect 2 drift double-char 100 1 rebalance
expect 2 drift double-char 100 1 localized
# serve arguments share the digits-only ParsePositiveUint contract:
# keys, workers, shards each reject non-numeric, signed, zero, trailing
# junk and out-of-range values (workers > 64, shards > 256 or < 2).
expect 2 serve single-char abc
expect 2 serve single-char +7
expect 2 serve single-char 0
expect 2 serve single-char 100 0
expect 2 serve single-char 100 2x
expect 2 serve single-char 100 65
expect 2 serve single-char 100 2 0
expect 2 serve single-char 100 2 1
expect 2 serve single-char 100 2 257
expect 2 serve single-char 100 2 -4
expect 2 serve single-char 99999999999999999999
expect 2 serve bogus-scheme
# bad scheme / subcommand / missing args.
expect 2 drift bogus-scheme
expect 2 bogus-subcommand
expect 2 build double-char only-two-args
# help is success, and prints the drift modes and the serve demo.
expect 0 --help
expect 0 help
if ! "$cli" --help 2>/dev/null | grep -q rebalance; then
  echo "FAIL: --help does not mention the rebalance demo"
  fail=1
fi
if ! "$cli" --help 2>/dev/null | grep -q serve; then
  echo "FAIL: --help does not mention the serve demo"
  fail=1
fi

exit "$fail"
