// Linter fixture (never compiled): a raw load with no Guard anywhere
// in scope. Expected: exactly 1 violation (rule 1).
#include <atomic>

struct Version { int epoch; };

class Bad {
 public:
  int Read() {
    return current_.load(std::memory_order_seq_cst)->epoch;  // BAD
  }

  void Store(const Version* v) {
    // Writer side is not flagged: stores/exchanges are publisher
    // operations serialized by the publisher's own mutex.
    current_.store(v, std::memory_order_seq_cst);
  }

 private:
  HOPE_EBR_PUBLISHED std::atomic<const Version*> current_{nullptr};
};
