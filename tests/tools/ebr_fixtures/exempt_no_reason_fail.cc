// Linter fixture (never compiled): a bare `ebr-exempt` with no reason
// does not suppress — the reason is the audit trail. Expected: exactly
// 1 violation (reason-less exempt).
#include <atomic>

struct Version { int epoch; };

class Bad {
 public:
  int Read() {
    return current_.load(std::memory_order_seq_cst)->epoch;  // ebr-exempt
  }

 private:
  HOPE_EBR_PUBLISHED std::atomic<const Version*> current_{nullptr};
};
