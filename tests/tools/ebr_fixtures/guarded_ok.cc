// Linter fixture (never compiled): every load is dominated by a live
// Guard, and the only Retire runs after the shared lock is dropped.
// Expected: 0 violations.
#include <atomic>

struct Version { int epoch; };

class Good {
 public:
  int ReadDirect() {
    ebr::EpochReclaimer::Guard guard(reclaimer_);
    return current_.load(std::memory_order_seq_cst)->epoch;
  }

  int ReadFromEnclosingScope() {
    ebr::EpochReclaimer::Guard guard(reclaimer_);
    for (int i = 0; i < 2; i++) {
      if (i == 1) {
        // Guard lives in an enclosing scope that is still open here.
        return current_.load(std::memory_order_seq_cst)->epoch;
      }
    }
    return 0;
  }

  void RetireAfterLockDropped() {
    {
      WriterLock lk(mu_);
      table_.insert();
    }
    reclaimer_.Retire([] {});
  }

 private:
  HOPE_EBR_PUBLISHED std::atomic<const Version*> current_{nullptr};
};
