// Linter fixture (never compiled): retiring while a reader-blocking
// shared-mutex lock is in scope — once via the repo's WriterLock, once
// via a raw std::shared_lock. Expected: exactly 2 violations (rule 2).
#include <atomic>

struct Version { int epoch; };

class Bad {
 public:
  void RetireUnderWriterLock() {
    WriterLock lk(mu_);
    table_.erase();
    reclaimer_.Retire([] {});  // BAD: readers block on mu_
  }

  void RetireUnderStdSharedLock() {
    std::shared_lock<std::shared_mutex> lk(raw_mu_);
    reclaimer_.RetireDelete(victim_);  // BAD
  }

  void RetireUnderPlainMutexIsFine() {
    MutexLock lk(publish_mu_);
    reclaimer_.Retire([] {});  // plain Mutex: readers never block here
  }

 private:
  HOPE_EBR_PUBLISHED std::atomic<const Version*> current_{nullptr};
};
