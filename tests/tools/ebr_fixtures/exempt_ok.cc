// Linter fixture (never compiled): unguarded loads carrying a reasoned
// `ebr-exempt` suppression in each accepted placement. Expected: 0
// violations.
#include <atomic>

struct Version { int epoch; };

class Exempted {
 public:
  ~Exempted() {
    // ebr-exempt: destructor — no concurrent publisher exists.
    delete current_.load(std::memory_order_seq_cst);
  }

  int SameLine() {
    return current_.load()->epoch;  // ebr-exempt: publisher mutex held.
  }

  int WrappedStatement() {
    // ebr-exempt: publisher mutex held — the pointee cannot be retired
    // while publishes are serialized with this reader.
    int epoch =
        current_.load(std::memory_order_relaxed)->epoch;
    return epoch;
  }

 private:
  HOPE_EBR_PUBLISHED std::atomic<const Version*> current_{nullptr};
};
