// Linter fixture (never compiled): the Guard's scope closed before the
// load, so the epoch is no longer pinned. Expected: exactly 1
// violation (rule 1).
#include <atomic>

struct Version { int epoch; };

class Bad {
 public:
  int Read() {
    {
      ebr::EpochReclaimer::Guard guard(reclaimer_);
      Touch();
    }
    // The guard above is gone: the grace period may elapse mid-read.
    return current_.load(std::memory_order_seq_cst)->epoch;  // BAD
  }

  int GuardInPriorFunction() {
    ebr::EpochReclaimer::Guard guard(reclaimer_);
    return 0;
  }

 private:
  HOPE_EBR_PUBLISHED std::atomic<const Version*> current_{nullptr};
};
