#!/usr/bin/env bash
# Live stats export contract of `hope_cli serve --stats-file`: the run
# streams JSON-lines registry snapshots (at least two — the stats
# thread emits one at start and one at shutdown, plus interval ticks),
# every line is one self-contained JSON object, and the snapshots carry
# counters from at least four subsystems (server loop, dictionary
# managers, rebalance/router, migration, EBR). Also pins the usage
# contract: bad flags and bad interval values exit 2.
set -u

cli="$1"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT
fail=0

out="$work/stats.jsonl"
if ! "$cli" serve single-char 2000 2 4 --stats-file "$out" \
    --stats-interval 50 >/dev/null 2>&1; then
  echo "FAIL: serve --stats-file exited non-zero"
  fail=1
fi

if [[ ! -s "$out" ]]; then
  echo "FAIL: no stats file written"
  fail=1
else
  lines=$(wc -l < "$out")
  if [[ "$lines" -lt 2 ]]; then
    echo "FAIL: expected >= 2 JSONL snapshots, got $lines"
    fail=1
  fi
  # Every line is one JSON object with a timestamp and a metrics map.
  while IFS= read -r line; do
    case "$line" in
      '{"ts_ns":'*'"metrics":{'*'}}') ;;
      *)
        echo "FAIL: malformed snapshot line: ${line:0:80}..."
        fail=1
        break
        ;;
    esac
  done < "$out"
  # The final snapshot must span the stack: one counter family per
  # subsystem layer, all present in the same line.
  last=$(tail -n 1 "$out")
  for family in hope_server_ hope_dict_ hope_rebalance_ hope_migration_ \
                hope_ebr_ hope_rebuilder_; do
    if [[ "$last" != *"$family"* ]]; then
      echo "FAIL: final snapshot missing $family metrics"
      fail=1
    fi
  done
  # The server loop actually counted the demo's requests.
  if ! grep -q 'hope_server_ops_total[^:]*":[1-9]' <<< "$last"; then
    echo "FAIL: hope_server_ops_total never advanced"
    fail=1
  fi
fi

expect_usage() {
  "$cli" "$@" >/dev/null 2>&1
  local got=$?
  if [[ "$got" -ne 2 ]]; then
    echo "FAIL: $* -> exit $got (want 2)"
    fail=1
  fi
}

expect_usage serve single-char 2000 2 4 --stats-interval abc
expect_usage serve single-char 2000 2 4 --stats-interval 0
expect_usage serve single-char 2000 2 4 --no-such-flag
expect_usage serve single-char 2000 2 4 extra-positional

# An unwritable stats path is a runtime error (1), not a crash.
"$cli" serve single-char 2000 2 4 \
  --stats-file /nonexistent-dir/stats.jsonl >/dev/null 2>&1
if [[ $? -ne 1 ]]; then
  echo "FAIL: unwritable --stats-file did not exit 1"
  fail=1
fi

if [[ "$fail" -ne 0 ]]; then
  echo "stats_export_test FAILED"
  exit 1
fi
echo "stats_export_test OK"
