#!/usr/bin/env bash
# Exit-code and detection contract of tools/check_ebr_guards.py against
# the fixtures in ebr_fixtures/ (0 clean, 1 violations, 2 usage error).
# Each fixture documents its expected violation count in its header
# comment; this script is the executable form of those comments.
set -u

linter="$1"
python="${2:-python3}"
fixtures="$(cd "$(dirname "$0")/ebr_fixtures" && pwd)"
fail=0

expect() {
  local want_code="$1" want_violations="$2"
  shift 2
  local out
  out="$("$python" "$linter" "$@" 2>/dev/null)"
  local got=$?
  if [[ "$got" -ne "$want_code" ]]; then
    echo "FAIL: check_ebr_guards $* -> exit $got (want $want_code)"
    fail=1
  fi
  local nviol
  nviol="$(printf '%s\n' "$out" | grep -c ': error: ')"
  if [[ "$nviol" -ne "$want_violations" ]]; then
    echo "FAIL: check_ebr_guards $* -> $nviol violations" \
         "(want $want_violations)"
    printf '%s\n' "$out"
    fail=1
  fi
}

# Clean fixtures.
expect 0 0 "$fixtures/guarded_ok.cc"
expect 0 0 "$fixtures/exempt_ok.cc"

# Rule 1: unguarded loads.
expect 1 1 "$fixtures/unguarded_fail.cc"
expect 1 1 "$fixtures/out_of_scope_guard_fail.cc"

# Reason-less ebr-exempt is itself a violation.
expect 1 1 "$fixtures/exempt_no_reason_fail.cc"

# Rule 2: retire under a reader-blocking lock (plain Mutex exempt).
expect 1 2 "$fixtures/retire_under_shared_lock_fail.cc"

# Directory mode aggregates: 1 + 1 + 1 + 2 = 5 violations.
expect 1 5 "$fixtures"

# --exclude drops the failing fixtures.
expect 0 0 "$fixtures" \
  --exclude unguarded_fail --exclude out_of_scope_guard_fail \
  --exclude exempt_no_reason --exclude retire_under_shared_lock

# Field discovery: every fixture declares current_ as EBR-published.
if ! "$python" "$linter" --list-fields "$fixtures" | grep -q '^current_'; then
  echo "FAIL: --list-fields did not discover current_"
  fail=1
fi

# Usage errors.
expect 2 0 "$fixtures/does_not_exist.cc"

if [[ "$fail" -ne 0 ]]; then
  echo "check_ebr_guards_test FAILED"
  exit 1
fi
echo "check_ebr_guards_test OK"
