// End-to-end integration (§5): HOPE in front of each search tree. For
// every scheme/tree combination: loading the tree with encoded keys and
// querying through the encoder must return exactly the same results as
// the uncompressed tree, for point lookups and range scans, and the
// tree + dictionary must be smaller on compressible workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "art/art.h"
#include "btree/btree.h"
#include "datasets/datasets.h"
#include "hope/hope.h"
#include "hot/hot.h"
#include "prefix_btree/prefix_btree.h"
#include "surf/surf.h"
#include "workload/workload.h"

namespace hope {
namespace {

struct Fixture {
  std::vector<std::string> keys;
  std::unique_ptr<Hope> hope;

  explicit Fixture(Scheme scheme, size_t nkeys = 6000) {
    keys = GenerateEmails(nkeys, 81);
    auto sample = SampleKeys(keys, 0.05);
    hope = Hope::Build(scheme, sample, 1 << 12);
  }
};

template <typename Tree>
void CheckTreeEquivalence(Scheme scheme) {
  Fixture fx(scheme);
  Tree plain, compressed;
  for (size_t i = 0; i < fx.keys.size(); i++) {
    plain.Insert(fx.keys[i], i);
    compressed.Insert(fx.hope->Encode(fx.keys[i]), i);
  }
  ASSERT_EQ(plain.size(), compressed.size())
      << "padded-encoding collision for " << SchemeName(scheme);

  // Point queries (hits and misses) agree.
  auto queries = GenerateZipfQueries(fx.keys.size(), 2000, 82);
  for (uint32_t q : queries) {
    uint64_t v1 = 0, v2 = 0;
    ASSERT_TRUE(plain.Lookup(fx.keys[q], &v1));
    ASSERT_TRUE(compressed.Lookup(fx.hope->Encode(fx.keys[q]), &v2));
    ASSERT_EQ(v1, v2);
  }
  auto misses = GenerateWikiTitles(300, 83);
  for (const auto& m : misses) {
    ASSERT_EQ(plain.Lookup(m, nullptr),
              compressed.Lookup(fx.hope->Encode(m), nullptr));
  }

  // Range scans agree: order preservation means the same value sequence.
  for (size_t i = 0; i < 200; i++) {
    const std::string& start = fx.keys[queries[i]];
    std::vector<uint64_t> v1, v2;
    size_t n1 = plain.Scan(start, 20, &v1);
    size_t n2 = compressed.Scan(fx.hope->Encode(start), 20, &v2);
    ASSERT_EQ(n1, n2) << "scan count mismatch from " << start;
    ASSERT_EQ(v1, v2) << "scan order mismatch from " << start;
  }
}

TEST(IntegrationBTree, DoubleChar) { CheckTreeEquivalence<BTree>(Scheme::kDoubleChar); }
TEST(IntegrationBTree, ThreeGrams) { CheckTreeEquivalence<BTree>(Scheme::kThreeGrams); }
TEST(IntegrationPrefixBTree, DoubleChar) {
  CheckTreeEquivalence<PrefixBTree>(Scheme::kDoubleChar);
}
TEST(IntegrationPrefixBTree, AlmImproved) {
  CheckTreeEquivalence<PrefixBTree>(Scheme::kAlmImproved);
}
TEST(IntegrationArt, SingleChar) { CheckTreeEquivalence<Art>(Scheme::kSingleChar); }
TEST(IntegrationArt, FourGrams) { CheckTreeEquivalence<Art>(Scheme::kFourGrams); }
TEST(IntegrationHot, DoubleChar) { CheckTreeEquivalence<Hot>(Scheme::kDoubleChar); }
TEST(IntegrationHot, Alm) { CheckTreeEquivalence<Hot>(Scheme::kAlm); }

TEST(IntegrationMemory, CompressedBTreeIsSmaller) {
  // A dictionary sized for the corpus (4K entries for 30K keys; the paper
  // uses 64K entries for 25M keys) must pay for itself: the compressed
  // tree plus the dictionary beats the uncompressed tree.
  auto keys = GenerateEmails(30000, 86);
  auto hope = Hope::Build(Scheme::kThreeGrams, SampleKeys(keys, 0.05),
                          1 << 12);
  BTree plain, compressed;
  for (size_t i = 0; i < keys.size(); i++) {
    plain.Insert(keys[i], i);
    compressed.Insert(hope->Encode(keys[i]), i);
  }
  size_t with_dict = compressed.MemoryBytes() + hope->dict().MemoryBytes();
  EXPECT_LT(with_dict, plain.MemoryBytes());
}

TEST(IntegrationSurf, CompressedFilterNoFalseNegatives) {
  Fixture fx(Scheme::kDoubleChar, 8000);
  std::vector<std::string> enc;
  enc.reserve(fx.keys.size());
  for (const auto& k : fx.keys) enc.push_back(fx.hope->Encode(k));
  std::sort(enc.begin(), enc.end());
  enc.erase(std::unique(enc.begin(), enc.end()), enc.end());
  Surf surf(enc, SurfSuffix::kReal8);
  for (const auto& k : fx.keys)
    ASSERT_TRUE(surf.MayContain(fx.hope->Encode(k)));
  // Range queries as the paper builds them: [key, key-with-last-byte+1].
  for (size_t i = 0; i < 500; i++) {
    std::string end = fx.keys[i];
    end.back() = static_cast<char>(end.back() + 1);
    auto [e1, e2] = fx.hope->EncodePair(fx.keys[i], end);
    ASSERT_TRUE(surf.MayContainRange(e1, e2));
  }
}

TEST(IntegrationSurf, CompressedFilterSmallerAndLower) {
  auto keys = GenerateEmails(20000, 84);
  auto hope = Hope::Build(Scheme::kDoubleChar, SampleKeys(keys, 0.05));
  std::vector<std::string> plain_sorted = keys;
  std::sort(plain_sorted.begin(), plain_sorted.end());
  std::vector<std::string> enc_sorted;
  for (const auto& k : keys) enc_sorted.push_back(hope->Encode(k));
  std::sort(enc_sorted.begin(), enc_sorted.end());
  Surf plain(plain_sorted, SurfSuffix::kReal8);
  Surf compressed(enc_sorted, SurfSuffix::kReal8);
  // Fig. 10: compressed tries are shorter and smaller.
  EXPECT_LT(compressed.AverageLeafDepth(), plain.AverageLeafDepth());
  EXPECT_LT(compressed.MemoryBytes(), plain.MemoryBytes());
}

TEST(IntegrationOrder, EncodedOrderMatchesOriginalAcrossTrees) {
  // Sorting encoded keys must equal encoding sorted keys, for a scheme of
  // each category.
  auto keys = GenerateUrls(3000, 85);
  for (Scheme scheme : {Scheme::kSingleChar, Scheme::kAlm,
                        Scheme::kThreeGrams, Scheme::kAlmImproved}) {
    auto hope = Hope::Build(scheme, SampleKeys(keys, 0.05), 1 << 10);
    std::vector<std::string> enc;
    for (const auto& k : keys) enc.push_back(hope->Encode(k));
    std::vector<size_t> by_plain(keys.size()), by_enc(keys.size());
    for (size_t i = 0; i < keys.size(); i++) by_plain[i] = by_enc[i] = i;
    std::sort(by_plain.begin(), by_plain.end(),
              [&](size_t a, size_t b) { return keys[a] < keys[b]; });
    std::sort(by_enc.begin(), by_enc.end(),
              [&](size_t a, size_t b) { return enc[a] < enc[b]; });
    EXPECT_EQ(by_plain, by_enc) << SchemeName(scheme);
  }
}

}  // namespace
}  // namespace hope
