// Multi-writer stress for the wait-free metric path, built to run under
// TSan (the telemetry ctest label rides the dynamic|serve|telemetry
// TSan CI job): writer threads hammer counters/histograms/gauges and a
// trace log while reader threads snapshot the registry concurrently.
// Correctness bar: no data races flagged, reader-observed totals are
// monotone while writers run, and the final counts are exact once the
// writers join.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/registry.h"
#include "telemetry/trace_log.h"

namespace hope::telemetry {
namespace {

TEST(TelemetryStress, WritersVsRegistrySnapshots) {
  MetricRegistry reg;
  Counter ops;
  Gauge depth;
  Histogram lat;
  TraceLog trace(256);
  auto r1 = reg.RegisterCounter("ops_total", {}, &ops);
  auto r2 = reg.RegisterGauge("depth", {}, &depth);
  auto r3 = reg.RegisterHistogram("lat_ns", {}, &lat);
  auto r4 = reg.RegisterCallback("trace_total", {}, MetricKind::kCounter,
                                 [&trace] {
                                   return static_cast<double>(
                                       trace.total_recorded());
                                 });

  constexpr int kWriters = 6;
  constexpr uint64_t kPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; t++)
    writers.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerWriter; i++) {
        ops.Add();
        lat.Record(i % 5000 + 1);
        depth.Add(i % 2 == 0 ? 1 : -1);
        if (i % 512 == 0)
          trace.Record(TraceEventType::kMigrationBatch, t, i);
      }
    });

  // Two readers race the writers: one through the registry (snapshot +
  // quantiles + callback), one through the raw accessors checking
  // monotonicity of the summed totals.
  std::thread registry_reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const RegistrySnapshot snap = reg.Snapshot();
      ASSERT_EQ(snap.metrics.size(), 4u);
      (void)snap.ToJson();
    }
  });
  std::thread monotone_reader([&] {
    uint64_t prev_ops = 0, prev_lat = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t o = ops.Value();
      const uint64_t l = lat.Count();
      EXPECT_GE(o, prev_ops);
      EXPECT_GE(l, prev_lat);
      prev_ops = o;
      prev_lat = l;
    }
  });

  for (auto& w : writers) w.join();
  stop.store(true);
  registry_reader.join();
  monotone_reader.join();

  // Exact once quiesced.
  EXPECT_EQ(ops.Value(), kWriters * kPerWriter);
  EXPECT_EQ(lat.Snapshot().count, kWriters * kPerWriter);
  EXPECT_EQ(depth.Value(), 0);
  EXPECT_EQ(trace.total_recorded(),
            kWriters * (kPerWriter / 512 + (kPerWriter % 512 ? 1 : 0)));
}

TEST(TelemetryStress, RegistrationChurnVsSnapshots) {
  // Scoped subsystems come and go while a reader snapshots: the RAII
  // deregistration path must never leave a dangling metric pointer
  // visible to Snapshot().
  MetricRegistry reg;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const RegistrySnapshot snap = reg.Snapshot();
      for (const auto& m : snap.metrics) EXPECT_GE(m.value, 0.0);
    }
  });
  std::vector<std::thread> churners;
  for (int t = 0; t < 4; t++)
    churners.emplace_back([&reg, t] {
      for (int i = 0; i < 500; i++) {
        Counter c;
        c.Add(static_cast<uint64_t>(i));
        auto r = reg.RegisterCounter("churn_" + std::to_string(t), {}, &c);
        (void)reg.Snapshot();
      }
    });
  for (auto& c : churners) c.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(reg.size(), 0u);
}

}  // namespace
}  // namespace hope::telemetry
