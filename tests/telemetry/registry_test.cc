// MetricRegistry contract: registration/snapshot round trip, RAII
// deregistration (the dangling-pointer guard the whole attach scheme
// rests on), and golden renderings of the two export formats — the
// JSONL line `--stats-file` streams and the Prometheus text exposition.
#include "telemetry/registry.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "telemetry/metrics.h"

namespace hope::telemetry {
namespace {

TEST(Registry, RegisterSnapshotRoundTrip) {
  MetricRegistry reg;
  Counter c;
  Gauge g;
  Histogram h;
  c.Add(3);
  g.Set(-7);
  h.Record(5);
  h.Record(5);
  auto rc = reg.RegisterCounter("ops_total", {{"op", "lookup"}}, &c);
  auto rg = reg.RegisterGauge("depth", {}, &g);
  auto rh = reg.RegisterHistogram("lat_ns", {}, &h);
  auto rb = reg.RegisterCallback("derived", {}, MetricKind::kGauge,
                                 [] { return 2.5; });
  EXPECT_EQ(reg.size(), 4u);

  const RegistrySnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.metrics.size(), 4u);
  EXPECT_GT(snap.ts_ns, 0);
  // Sorted by name: depth, derived, lat_ns, ops_total.
  EXPECT_EQ(snap.metrics[0].name, "depth");
  EXPECT_EQ(snap.metrics[0].value, -7.0);
  EXPECT_EQ(snap.metrics[1].name, "derived");
  EXPECT_EQ(snap.metrics[1].value, 2.5);
  EXPECT_EQ(snap.metrics[2].name, "lat_ns");
  EXPECT_EQ(snap.metrics[2].hist.count, 2u);
  EXPECT_EQ(snap.metrics[2].hist.p50, 5u);
  EXPECT_EQ(snap.metrics[2].hist.max, 5u);
  EXPECT_EQ(snap.metrics[3].name, "ops_total");
  EXPECT_EQ(snap.metrics[3].value, 3.0);
  ASSERT_EQ(snap.metrics[3].labels.size(), 1u);
  EXPECT_EQ(snap.metrics[3].labels[0].second, "lookup");
}

TEST(Registry, RegistrationIsRaii) {
  MetricRegistry reg;
  Counter c;
  {
    auto r = reg.RegisterCounter("scoped", {}, &c);
    EXPECT_EQ(reg.size(), 1u);
  }
  // Out of scope: the entry (and its raw pointer) is gone, so a
  // snapshot cannot dereference the dead metric.
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_TRUE(reg.Snapshot().metrics.empty());
}

TEST(Registry, RegistrationMovesCleanly) {
  MetricRegistry reg;
  Counter c;
  auto r1 = reg.RegisterCounter("moved", {}, &c);
  MetricRegistry::Registration r2 = std::move(r1);
  EXPECT_EQ(reg.size(), 1u);  // move does not deregister
  r2 = MetricRegistry::Registration();
  EXPECT_EQ(reg.size(), 0u);  // move-assign releases the old handle
}

TEST(Registry, SameNameDifferentLabelsCoexist) {
  MetricRegistry reg;
  Counter a, b;
  a.Add(1);
  b.Add(2);
  auto ra = reg.RegisterCounter("ops_total", {{"op", "scan"}}, &a);
  auto rb = reg.RegisterCounter("ops_total", {{"op", "lookup"}}, &b);
  const RegistrySnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.metrics.size(), 2u);
  // Same name sorts by labels: lookup before scan.
  EXPECT_EQ(snap.metrics[0].labels[0].second, "lookup");
  EXPECT_EQ(snap.metrics[0].value, 2.0);
  EXPECT_EQ(snap.metrics[1].labels[0].second, "scan");
  EXPECT_EQ(snap.metrics[1].value, 1.0);
}

RegistrySnapshot GoldenSnapshot() {
  RegistrySnapshot snap;
  snap.ts_ns = 42;
  RegistrySnapshot::Metric h;
  h.name = "hope_latency_ns";
  h.kind = MetricKind::kHistogram;
  h.hist = {/*count=*/10, /*p50=*/4, /*p99=*/9, /*p999=*/9, /*max=*/9,
            /*mean=*/4.5};
  RegistrySnapshot::Metric c1;
  c1.name = "hope_ops_total";
  c1.labels = {{"op", "lookup"}};
  c1.kind = MetricKind::kCounter;
  c1.value = 3;
  RegistrySnapshot::Metric c2;
  c2.name = "hope_ops_total";
  c2.labels = {{"op", "scan"}};
  c2.kind = MetricKind::kCounter;
  c2.value = 4;
  RegistrySnapshot::Metric g;
  g.name = "hope_queue_depth";
  g.kind = MetricKind::kGauge;
  g.value = 2;
  snap.metrics = {h, c1, c2, g};  // already (name, labels)-sorted
  return snap;
}

TEST(Registry, GoldenJson) {
  EXPECT_EQ(
      GoldenSnapshot().ToJson(),
      "{\"ts_ns\":42,\"metrics\":{"
      "\"hope_latency_ns\":{\"count\":10,\"p50_ns\":4,\"p99_ns\":9,"
      "\"p999_ns\":9,\"max_ns\":9,\"mean_ns\":4.5},"
      "\"hope_ops_total{op=\\\"lookup\\\"}\":3,"
      "\"hope_ops_total{op=\\\"scan\\\"}\":4,"
      "\"hope_queue_depth\":2}}");
}

TEST(Registry, GoldenPrometheus) {
  // One # TYPE line per distinct name (the two ops_total series share
  // one), histograms as summaries with quantile labels plus _sum/_count.
  EXPECT_EQ(GoldenSnapshot().ToPrometheus(),
            "# TYPE hope_latency_ns summary\n"
            "hope_latency_ns{quantile=\"0.5\"} 4\n"
            "hope_latency_ns{quantile=\"0.99\"} 9\n"
            "hope_latency_ns{quantile=\"0.999\"} 9\n"
            "hope_latency_ns_sum 45\n"
            "hope_latency_ns_count 10\n"
            "# TYPE hope_ops_total counter\n"
            "hope_ops_total{op=\"lookup\"} 3\n"
            "hope_ops_total{op=\"scan\"} 4\n"
            "# TYPE hope_queue_depth gauge\n"
            "hope_queue_depth 2\n");
}

TEST(Registry, LabelValuesEscape) {
  RegistrySnapshot snap;
  RegistrySnapshot::Metric m;
  m.name = "weird";
  m.labels = {{"path", "a\\b\"c\nd"}};
  m.kind = MetricKind::kGauge;
  m.value = 1;
  snap.metrics = {m};
  // Prometheus: backslash, quote, newline escaped per the format spec.
  EXPECT_EQ(snap.ToPrometheus(),
            "# TYPE weird gauge\n"
            "weird{path=\"a\\\\b\\\"c\\nd\"} 1\n");
  // JSON: the rendered series (including its prom-escaped label) is
  // itself a JSON string — still one parseable line, no raw newline.
  const std::string json = snap.ToJson();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("a\\\\\\\\b"), std::string::npos) << json;
}

TEST(Registry, HistogramQuantilesComeFromLiveBuckets) {
  MetricRegistry reg;
  Histogram h;
  for (uint64_t i = 0; i < 100; i++) h.Record(i);
  auto r = reg.RegisterHistogram("lat", {}, &h);
  const RegistrySnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.metrics.size(), 1u);
  EXPECT_EQ(snap.metrics[0].hist.count, 100u);
  EXPECT_EQ(snap.metrics[0].hist.p50, 49u);
  EXPECT_EQ(snap.metrics[0].hist.p999, 99u);
  EXPECT_EQ(snap.metrics[0].hist.max, 99u);
}

}  // namespace
}  // namespace hope::telemetry
