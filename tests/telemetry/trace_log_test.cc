// TraceLog ring contract: global 1-based sequence that never wraps,
// snapshot returns the newest `capacity` events oldest first, capacity
// rounds up to a power of two, and concurrent recorders never tear or
// duplicate a sequence number.
#include "telemetry/trace_log.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

namespace hope::telemetry {
namespace {

TEST(TraceLog, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceLog(0).capacity(), 8u);
  EXPECT_EQ(TraceLog(1).capacity(), 8u);
  EXPECT_EQ(TraceLog(8).capacity(), 8u);
  EXPECT_EQ(TraceLog(9).capacity(), 16u);
  EXPECT_EQ(TraceLog(4096).capacity(), 4096u);
}

TEST(TraceLog, RecordsInOrder) {
  TraceLog log(16);
  log.Record(TraceEventType::kRebuildStart, 3, 7);
  log.Record(TraceEventType::kRebuildFinish, 3, 8, 1234);
  log.Record(TraceEventType::kRebalancePublish, -1, 2, 5);
  const std::vector<TraceEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[0].type, TraceEventType::kRebuildStart);
  EXPECT_EQ(events[0].shard, 3);
  EXPECT_EQ(events[0].a, 7u);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_EQ(events[1].b, 1234u);
  EXPECT_EQ(events[2].type, TraceEventType::kRebalancePublish);
  EXPECT_EQ(events[2].shard, -1);
  // Timestamps are steady-clock and nondecreasing in record order.
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
  EXPECT_LE(events[1].ts_ns, events[2].ts_ns);
  EXPECT_EQ(log.total_recorded(), 3u);
}

TEST(TraceLog, WraparoundKeepsNewest) {
  TraceLog log(8);
  for (uint64_t i = 0; i < 20; i++)
    log.Record(TraceEventType::kMigrationBatch, static_cast<int32_t>(i), i);
  EXPECT_EQ(log.total_recorded(), 20u);
  const std::vector<TraceEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The newest 8 of 20, oldest first: seq 13..20.
  for (size_t i = 0; i < events.size(); i++) {
    EXPECT_EQ(events[i].seq, 13 + i);
    EXPECT_EQ(events[i].a, 12 + i);
  }
}

TEST(TraceLog, ToStringNamesTheType) {
  TraceLog log;
  log.Record(TraceEventType::kEbrReclaim, -1, 4, 2);
  const std::string s = log.Snapshot()[0].ToString();
  EXPECT_NE(s.find("ebr-reclaim"), std::string::npos) << s;
  EXPECT_NE(s.find("seq=1"), std::string::npos) << s;
  EXPECT_NE(s.find("a=4"), std::string::npos) << s;
}

TEST(TraceLog, EveryTypeHasAName) {
  for (int t = 0; t <= static_cast<int>(TraceEventType::kEbrReclaim); t++) {
    const char* name = TraceEventTypeName(static_cast<TraceEventType>(t));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
}

TEST(TraceLog, ConcurrentRecordersKeepSequenceDense) {
  TraceLog log(1024);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++)
    threads.emplace_back([&log, t] {
      for (uint64_t i = 0; i < kPerThread; i++)
        log.Record(TraceEventType::kEpochAdvance, t, i);
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(log.total_recorded(), kThreads * kPerThread);
  const std::vector<TraceEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), kThreads * kPerThread);
  // Sequences are dense 1..N with no duplicates and snapshot order
  // matches sequence order.
  std::set<uint64_t> seqs;
  for (size_t i = 0; i < events.size(); i++) {
    EXPECT_EQ(events[i].seq, i + 1);
    seqs.insert(events[i].seq);
  }
  EXPECT_EQ(seqs.size(), events.size());
}

}  // namespace
}  // namespace hope::telemetry
