// Wait-free metric primitives: bucket-layout math pinned exactly (the
// serving layer's LatencyHistogram shares the layout bucket-for-bucket,
// so these constants are a cross-library contract), counters exact
// under multi-threaded writers, histogram quantile edge cases (empty,
// single bucket, overflow bucket).
#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "telemetry/log_buckets.h"

namespace hope::telemetry {
namespace {

TEST(LogBuckets, UnitRegionIsExact) {
  // Values below 2^kSubBucketBits get unit-width buckets: index == value
  // and lower == upper == value.
  for (uint64_t v = 0; v < kSubBucketCount; v++) {
    EXPECT_EQ(LogBucketIndex(v), v);
    EXPECT_EQ(LogBucketLowerBound(v), v);
    EXPECT_EQ(LogBucketUpperBound(v), v);
  }
  // The first octave group continues the linear region seamlessly
  // (sub-bucket width still 1), so 32..63 stay exact too.
  EXPECT_EQ(LogBucketIndex(32), 32u);
  EXPECT_EQ(LogBucketIndex(63), 63u);
  EXPECT_EQ(LogBucketUpperBound(LogBucketIndex(63)), 63u);
}

TEST(LogBuckets, BoundsBracketTheirValue) {
  std::vector<uint64_t> probes = {0,  1,   31,   32,   33,  63,
                                  64, 100, 1000, 4096, 4097};
  for (unsigned p = 6; p < 64; p++) {
    probes.push_back(uint64_t{1} << p);
    probes.push_back((uint64_t{1} << p) - 1);
    probes.push_back((uint64_t{1} << p) + 1);
  }
  probes.push_back(~uint64_t{0});
  for (uint64_t v : probes) {
    const size_t i = LogBucketIndex(v);
    ASSERT_LT(i, kNumLogBuckets) << v;
    EXPECT_LE(LogBucketLowerBound(i), v) << v;
    EXPECT_GE(LogBucketUpperBound(i), v) << v;
  }
}

TEST(LogBuckets, RelativeErrorBounded) {
  // Above the linear region a bucket's width is at most lower/32, i.e.
  // the upper-bound overestimate is <= ~3.1%.
  for (uint64_t v = kSubBucketCount; v < (uint64_t{1} << 40);
       v += v / 3 + 1) {
    const size_t i = LogBucketIndex(v);
    const uint64_t lo = LogBucketLowerBound(i);
    const uint64_t hi = LogBucketUpperBound(i);
    EXPECT_LE(hi - lo, lo / kSubBucketCount) << v;
  }
}

TEST(LogBuckets, OverflowBucketReportsMax) {
  // The final bucket's bound is pinned to UINT64_MAX explicitly — a
  // histogram holding UINT64_MAX must report it, not a wrapped 0.
  EXPECT_EQ(LogBucketIndex(~uint64_t{0}), kNumLogBuckets - 1);
  EXPECT_EQ(LogBucketUpperBound(kNumLogBuckets - 1), ~uint64_t{0});
}

TEST(LogBuckets, QuantileEmptyAndClamp) {
  std::vector<uint64_t> counts(kNumLogBuckets, 0);
  EXPECT_EQ(QuantileFromCounts(counts.data(), counts.size(), 0, 0.5, 0,
                               ~uint64_t{0}),
            0u);
  // Exhausted scan (total larger than the counts say) lands on
  // clamp_max, never past it.
  counts[5] = 1;
  EXPECT_EQ(
      QuantileFromCounts(counts.data(), counts.size(), 100, 0.999, 0, 77),
      77u);
}

TEST(LogBuckets, SingleBucketInterpolates) {
  // All mass in one wide bucket: quantiles interpolate by rank instead
  // of all collapsing to the bucket's upper bound.
  std::vector<uint64_t> counts(kNumLogBuckets, 0);
  const uint64_t v = 1000;
  const size_t i = LogBucketIndex(v);
  counts[i] = 100;
  const uint64_t lo = LogBucketLowerBound(i);
  const uint64_t hi = LogBucketUpperBound(i);
  ASSERT_LT(lo, hi);
  const uint64_t p50 =
      QuantileFromCounts(counts.data(), counts.size(), 100, 0.50, lo, hi);
  const uint64_t p999 =
      QuantileFromCounts(counts.data(), counts.size(), 100, 0.999, lo, hi);
  EXPECT_LT(p50, p999);
  EXPECT_GE(p50, lo);
  EXPECT_LE(p999, hi);
}

TEST(Counter, SumsAcrossThreads) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++)
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; i++) c.Add();
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
  c.Add(41);
  c.Add();
  EXPECT_EQ(c.Value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Set(-5);
  EXPECT_EQ(g.Value(), -5);
}

TEST(Histogram, ExactInUnitRegion) {
  Histogram h;
  for (uint64_t v = 0; v < 10; v++) h.Record(v);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 10u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 9u);
  // Unit buckets make quantiles exact: target rank ceil(q*10).
  EXPECT_EQ(s.Percentile(0.50), 4u);
  EXPECT_EQ(s.Percentile(1.0), 9u);
  EXPECT_NEAR(s.mean, 4.5, 1e-9);
}

TEST(Histogram, OverflowValueRoundTrips) {
  Histogram h;
  h.Record(~uint64_t{0});
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.max, ~uint64_t{0});
  EXPECT_EQ(s.Percentile(0.999), ~uint64_t{0});
}

TEST(Histogram, CountMonotoneUnderWriters) {
  Histogram h;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t v = 1;
    while (!stop.load(std::memory_order_relaxed)) h.Record(v++ % 100000);
  });
  uint64_t prev = 0;
  for (int i = 0; i < 1000; i++) {
    const uint64_t n = h.Count();
    EXPECT_GE(n, prev);
    prev = n;
  }
  stop.store(true);
  writer.join();
  EXPECT_EQ(h.Snapshot().count, h.Count());
}

}  // namespace
}  // namespace hope::telemetry
