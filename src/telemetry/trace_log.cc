#include "telemetry/trace_log.h"

#include <chrono>
#include <cstdio>

namespace hope::telemetry {

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kRebuildStart: return "rebuild-start";
    case TraceEventType::kRebuildFinish: return "rebuild-finish";
    case TraceEventType::kRebuildReject: return "rebuild-reject";
    case TraceEventType::kRebalancePublish: return "rebalance-publish";
    case TraceEventType::kPlanApplyBegin: return "plan-apply-begin";
    case TraceEventType::kPlanRetired: return "plan-retired";
    case TraceEventType::kMigrationBatch: return "migration-batch";
    case TraceEventType::kResync: return "resync";
    case TraceEventType::kEpochAdvance: return "epoch-advance";
    case TraceEventType::kEbrReclaim: return "ebr-reclaim";
  }
  return "?";
}

std::string TraceEvent::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "seq=%llu ts_ns=%lld %s shard=%d a=%llu b=%llu",
                static_cast<unsigned long long>(seq),
                static_cast<long long>(ts_ns), TraceEventTypeName(type),
                shard, static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  return buf;
}

int64_t TraceLog::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TraceLog::TraceLog(size_t capacity) {
  size_t cap = 8;
  while (cap < capacity && cap < (size_t{1} << 20)) cap <<= 1;
  MutexLock lock(mu_);
  ring_.resize(cap);
  capacity_ = cap;
}

void TraceLog::Record(TraceEventType type, int32_t shard, uint64_t a,
                      uint64_t b) {
  const int64_t now = NowNs();
  MutexLock lock(mu_);
  TraceEvent& slot = ring_[(next_seq_ - 1) & (ring_.size() - 1)];
  slot.seq = next_seq_++;
  slot.ts_ns = now;
  slot.type = type;
  slot.shard = shard;
  slot.a = a;
  slot.b = b;
}

std::vector<TraceEvent> TraceLog::Snapshot() const {
  MutexLock lock(mu_);
  const uint64_t total = next_seq_ - 1;
  const uint64_t n = total < ring_.size() ? total : ring_.size();
  std::vector<TraceEvent> out;
  out.reserve(n);
  for (uint64_t seq = total - n + 1; seq <= total; seq++)
    out.push_back(ring_[(seq - 1) & (ring_.size() - 1)]);
  return out;
}

uint64_t TraceLog::total_recorded() const {
  MutexLock lock(mu_);
  return next_seq_ - 1;
}

}  // namespace hope::telemetry
