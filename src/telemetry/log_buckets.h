// Shared log-bucket layout for latency-style value histograms, in the
// HdrHistogram shape: values below 2^kSubBucketBits get exact unit-width
// buckets; above that, each power-of-two octave is subdivided into
// 2^kSubBucketBits linear sub-buckets, bounding a bucket's width at
// ~3.1% of its magnitude. One layout, two users: serve/latency_histogram
// (single-writer, merged at phase boundaries) and telemetry::Histogram
// (atomic buckets, multi-writer) index into identically shaped arrays,
// so their counts can be merged and compared bucket-for-bucket.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace hope::telemetry {

/// Sub-bucket resolution: 2^5 = 32 linear sub-buckets per octave,
/// bounding the bucket-upper-bound overestimate at ~3.1%.
inline constexpr unsigned kSubBucketBits = 5;
inline constexpr uint64_t kSubBucketCount = uint64_t{1} << kSubBucketBits;
/// Buckets for the full uint64 range: the unit-width linear region plus
/// one sub-bucket group per octave kSubBucketBits..63.
inline constexpr size_t kNumLogBuckets =
    static_cast<size_t>((64 - kSubBucketBits + 1) * kSubBucketCount);

inline size_t LogBucketIndex(uint64_t value) {
  if (value < kSubBucketCount) return static_cast<size_t>(value);
  // value in [2^e, 2^(e+1)): shift its top kSubBucketBits+1 bits down so
  // (value >> shift) lands in [kSubBucketCount, 2*kSubBucketCount), then
  // place octave e's group after the groups of all lower octaves. The
  // first group (e == kSubBucketBits) continues the linear region
  // seamlessly: its sub-buckets still have width 1.
  unsigned e = 63u - static_cast<unsigned>(__builtin_clzll(value));
  unsigned shift = e - kSubBucketBits;
  uint64_t sub = (value >> shift) - kSubBucketCount;
  return static_cast<size_t>(
      (uint64_t{e - kSubBucketBits + 1} << kSubBucketBits) + sub);
}

/// Inclusive smallest value mapping to bucket `index`.
inline uint64_t LogBucketLowerBound(size_t index) {
  if (index < kSubBucketCount) return static_cast<uint64_t>(index);
  uint64_t group = index >> kSubBucketBits;  // >= 1
  uint64_t sub = index & (kSubBucketCount - 1);
  unsigned shift = static_cast<unsigned>(group - 1);
  return (kSubBucketCount + sub) << shift;
}

/// Inclusive largest value mapping to bucket `index`. The final bucket's
/// bound is pinned to UINT64_MAX explicitly — the closed-form
/// low + width - 1 only lands there through unsigned wraparound, and the
/// overflow bucket's bound is part of the quantile contract (a histogram
/// holding UINT64_MAX must report it, not 0).
inline uint64_t LogBucketUpperBound(size_t index) {
  if (index >= kNumLogBuckets - 1) return ~uint64_t{0};
  if (index < kSubBucketCount) return static_cast<uint64_t>(index);
  uint64_t group = index >> kSubBucketBits;  // >= 1
  uint64_t sub = index & (kSubBucketCount - 1);
  unsigned shift = static_cast<unsigned>(group - 1);
  uint64_t low = (kSubBucketCount + sub) << shift;
  uint64_t width = uint64_t{1} << shift;
  return low + width - 1;
}

/// Value at quantile q in [0, 1] over raw bucket counts, interpolated
/// within the selected bucket by rank: with c samples in the bucket and
/// the target rank t falling f = (t - cum_before) / c of the way through
/// them, the reported value is lower + f * (upper - lower). In the
/// unit-width linear region this is exact; in wider buckets it removes
/// the old one-sided bias of always reporting the bucket's upper bound
/// (a single-bucket histogram then reported p50 == p999 == upper). The
/// result is clamped to [clamp_min, clamp_max] so known exact extremes
/// (a recorded min/max) bound the estimate. `total` == 0 reports 0.
inline uint64_t QuantileFromCounts(const uint64_t* counts, size_t n,
                                   uint64_t total, double q,
                                   uint64_t clamp_min, uint64_t clamp_max) {
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (target == 0) target = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < n; i++) {
    if (counts[i] == 0) continue;
    if (cumulative + counts[i] >= target) {
      const uint64_t lower = LogBucketLowerBound(i);
      const uint64_t upper = LogBucketUpperBound(i);
      const uint64_t in_bucket = target - cumulative;
      uint64_t value;
      if (in_bucket >= counts[i]) {
        // Final rank in the bucket: the answer is the bucket's upper
        // bound exactly. (Also dodges double roundoff — in the 2^64-wide
        // overflow bucket, frac * (upper - lower) loses the low bits and
        // would report less than a recorded UINT64_MAX.)
        value = upper;
      } else {
        const double frac = static_cast<double>(in_bucket) /
                            static_cast<double>(counts[i]);
        value = lower + static_cast<uint64_t>(
                            frac * static_cast<double>(upper - lower));
      }
      return std::clamp(value, clamp_min, clamp_max);
    }
    cumulative += counts[i];
  }
  return clamp_max;
}

}  // namespace hope::telemetry
