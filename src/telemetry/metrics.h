// Wait-free metric primitives: the hot-path cost of every update is one
// relaxed atomic RMW, with aggregation deferred to read time.
//
//   Counter    — monotone total, striped across cache-line-aligned slots
//                hashed by thread so concurrent writers on different
//                threads rarely share a line; Value() sums the stripes.
//   Gauge      — point-in-time signed value, single atomic.
//   Histogram  — log-bucketed value distribution (telemetry/log_buckets
//                .h layout, identical to serve::LatencyHistogram);
//                Record() is one relaxed fetch_add on the value's
//                bucket, and count/mean/min/max are derived from the
//                bucket counts at snapshot time rather than maintained
//                on the write path (an exact atomic max would need a
//                CAS loop — more than one relaxed atomic per update).
//
// None of these allocate after construction; all are safe for
// concurrent writers and concurrent readers. Snapshot values taken
// while writers are active are monotone across successive reads
// (per-slot atomic coherence) and exact once writers quiesce. Reset()
// is quiesce-only: resetting under concurrent writers loses no memory
// safety but can double-count or drop in-flight updates.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "telemetry/log_buckets.h"

namespace hope::telemetry {

/// Stripe picked once per thread: threads round-robin over the stripe
/// space on first use, so steady-state writers land on distinct cache
/// lines without any per-update hashing.
size_t ThreadStripeSeed();

class Counter {
 public:
  static constexpr size_t kStripes = 16;

  void Add(uint64_t n = 1) {
    stripes_[ThreadStripeSeed() & (kStripes - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Stripe& s : stripes_)
      sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  /// Quiesce-only (phase boundaries).
  void Reset() {
    for (Stripe& s : stripes_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> v{0};
  };
  Stripe stripes_[kStripes];
};

class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Read-side view of a Histogram: raw bucket counts plus the derived
/// aggregates. min/max are bucket-resolution (the bounds of the first
/// and last populated bucket), mean is midpoint-weighted — the standard
/// ~3.1% trade for a write path that touches exactly one atomic.
struct HistogramSnapshot {
  std::vector<uint64_t> counts;  ///< kNumLogBuckets entries
  uint64_t count = 0;
  uint64_t min = 0;   ///< lower bound of the first populated bucket
  uint64_t max = 0;   ///< upper bound of the last populated bucket
  double mean = 0.0;  ///< midpoint-weighted

  uint64_t Percentile(double q) const {
    return QuantileFromCounts(counts.data(), counts.size(), count, q, min,
                              max);
  }
};

class Histogram {
 public:
  void Record(uint64_t value) {
    buckets_[LogBucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;

  /// Sum of bucket counts (monotone across successive reads).
  uint64_t Count() const {
    uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }

  /// Quiesce-only (phase boundaries).
  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kNumLogBuckets] = {};
};

}  // namespace hope::telemetry
