// MetricRegistry: the process-wide name → metric directory and its
// snapshot/export layer.
//
// Registration is cold-path (a mutex-guarded vector insert, done once at
// subsystem construction); the hot path never touches the registry —
// subsystems update their own Counter/Gauge/Histogram objects (one
// relaxed atomic per update, telemetry/metrics.h) or keep their existing
// plain-atomic counters and register a read callback over the accessor.
// Snapshot() walks the directory under the mutex, reads every metric,
// and returns a value-typed RegistrySnapshot that renders as one
// JSON line (the `--stats-file` JSONL format) or as Prometheus text
// exposition (histograms as summaries with quantile labels).
//
// Lifetime: Register* returns a movable RAII Registration that removes
// the entry when destroyed, so a test-scoped ServerLoop or manager can
// attach to the Global() registry without dangling pointers outliving
// it — subsystems store their registrations as members, destroyed
// before the metrics they point at.
//
// Lock order: the registry mutex is held while value callbacks run, and
// callbacks may take subsystem locks (a traffic-weights mutex, say), so
// never call into the registry while holding a lock a callback needs.
// Subsystems keep that trivially: they register from constructors/
// attach methods, outside their own locks.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "telemetry/metrics.h"

namespace hope::telemetry {

/// Label set, rendered in the given order (callers pass them sorted or
/// semantically ordered; the registry does not reorder).
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One exported snapshot: values only, detached from the live metrics.
struct RegistrySnapshot {
  /// Derived histogram values (bucket counts stay in the live object).
  struct HistValues {
    uint64_t count = 0;
    uint64_t p50 = 0;
    uint64_t p99 = 0;
    uint64_t p999 = 0;
    uint64_t max = 0;
    double mean = 0.0;
  };

  struct Metric {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    double value = 0.0;  ///< counter/gauge/callback
    HistValues hist;     ///< kHistogram only
  };

  int64_t ts_ns = 0;            ///< steady-clock nanoseconds
  std::vector<Metric> metrics;  ///< sorted by (name, labels)

  /// One JSON object on one line:
  ///   {"ts_ns":N,"metrics":{"name{k=\"v\"}":value,...}}
  /// Histograms render as nested objects with count/p50_ns/p99_ns/
  /// p999_ns/mean_ns/max_ns fields.
  std::string ToJson() const;

  /// Prometheus text exposition: one # TYPE line per metric name,
  /// histograms as summaries with quantile labels, label values escaped
  /// per the format spec (backslash, double-quote, newline).
  std::string ToPrometheus() const;
};

class MetricRegistry {
 public:
  /// RAII handle: deregisters on destruction. Movable so subsystems can
  /// collect their registrations in a vector member (declared after the
  /// metrics it exposes, so deregistration runs first on teardown).
  class Registration {
   public:
    Registration() = default;
    Registration(Registration&& other) noexcept
        : registry_(other.registry_), id_(other.id_) {
      other.registry_ = nullptr;
    }
    Registration& operator=(Registration&& other) noexcept {
      if (this != &other) {
        Release();
        registry_ = other.registry_;
        id_ = other.id_;
        other.registry_ = nullptr;
      }
      return *this;
    }
    ~Registration() { Release(); }

    Registration(const Registration&) = delete;
    Registration& operator=(const Registration&) = delete;

   private:
    friend class MetricRegistry;
    Registration(MetricRegistry* registry, uint64_t id)
        : registry_(registry), id_(id) {}
    void Release();
    MetricRegistry* registry_ = nullptr;
    uint64_t id_ = 0;
  };

  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The metric object must outlive the returned Registration.
  [[nodiscard]] Registration RegisterCounter(std::string name, Labels labels,
                                             const Counter* counter);
  [[nodiscard]] Registration RegisterGauge(std::string name, Labels labels,
                                           const Gauge* gauge);
  [[nodiscard]] Registration RegisterHistogram(std::string name,
                                               Labels labels,
                                               const Histogram* histogram);
  /// Adapter for subsystems that already expose plain-atomic accessors:
  /// the callback is invoked at snapshot time (under the registry mutex;
  /// it may take subsystem locks — see the lock-order note above).
  [[nodiscard]] Registration RegisterCallback(std::string name, Labels labels,
                                              MetricKind kind,
                                              std::function<double()> read);

  /// Point-in-time read of every registered metric, sorted by name then
  /// labels. Wait-free for hot-path writers (they never see the mutex).
  RegistrySnapshot Snapshot() const HOPE_EXCLUDES(mu_);

  size_t size() const HOPE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return entries_.size();
  }

  /// Process-wide default instance (CLI and benches create their own
  /// scoped registries; Global() serves embedders that want exactly
  /// one).
  static MetricRegistry& Global();

 private:
  struct Entry {
    uint64_t id = 0;
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
    std::function<double()> read;
  };

  Registration Add(Entry entry) HOPE_EXCLUDES(mu_);
  void Remove(uint64_t id) HOPE_EXCLUDES(mu_);

  mutable Mutex mu_;
  std::vector<Entry> entries_ HOPE_GUARDED_BY(mu_);
  uint64_t next_id_ HOPE_GUARDED_BY(mu_) = 1;
};

}  // namespace hope::telemetry
