#include "telemetry/metrics.h"

namespace hope::telemetry {

size_t ThreadStripeSeed() {
  static std::atomic<size_t> next{0};
  // One RMW per thread lifetime; every later call is a plain TLS read.
  thread_local const size_t seed =
      next.fetch_add(1, std::memory_order_relaxed);
  return seed;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.counts.resize(kNumLogBuckets);
  size_t first = kNumLogBuckets, last = 0;
  double weighted = 0.0;
  for (size_t i = 0; i < kNumLogBuckets; i++) {
    const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    snap.counts[i] = c;
    if (c == 0) continue;
    snap.count += c;
    if (first == kNumLogBuckets) first = i;
    last = i;
    // Midpoint via lo/2 + hi/2: lo + hi overflows in the top octave.
    const double mid =
        static_cast<double>(LogBucketLowerBound(i)) / 2.0 +
        static_cast<double>(LogBucketUpperBound(i)) / 2.0;
    weighted += mid * static_cast<double>(c);
  }
  if (snap.count > 0) {
    snap.min = LogBucketLowerBound(first);
    snap.max = LogBucketUpperBound(last);
    snap.mean = weighted / static_cast<double>(snap.count);
  }
  return snap;
}

}  // namespace hope::telemetry
