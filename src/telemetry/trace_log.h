// TraceLog: a bounded ring buffer of structured lifecycle events with
// steady-clock timestamps — the "what happened, when, in what order"
// companion to the registry's "how much". Subsystems record rare
// control-plane transitions (rebuild start/finish/reject, rebalance
// publish, plan apply/retire, migration batches, EBR epoch advances and
// reclaims); a snapshot returns the newest `capacity` events oldest
// first, so a stuck rebuilder or a migration stall is diagnosable from
// the event stream alone (the motivating case: PR 6's rebuilder wedge
// was invisible for a full PR cycle because nothing reported that the
// rebuild sweep had parked the worker).
//
// Recording takes a mutex: lifecycle events are control-plane rate
// (rebuilds per second at most, not requests per second), so a leaf
// mutex is simpler and cheaper than a lock-free ring — and it is never
// on an encode/lookup path. The mutex is a leaf: Record() calls nothing
// that locks, so it composes with any caller-held lock (EBR's state
// mutex, the managers' rebalance mutex).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hope::telemetry {

enum class TraceEventType : uint8_t {
  kRebuildStart,      ///< a = shard epoch at start
  kRebuildFinish,     ///< a = new epoch, b = duration ns
  kRebuildReject,     ///< a = RebuildResult enum value, b = duration ns
  kRebalancePublish,  ///< a = new router version, b = plan move count
  kPlanApplyBegin,    ///< a = router version the plan takes effect at
  kPlanRetired,       ///< a = router version fully applied
  kMigrationBatch,    ///< shard = destination, a = entries moved
  kResync,            ///< a = entries re-binned
  kEpochAdvance,      ///< a = new global EBR epoch
  kEbrReclaim,        ///< a = objects freed, b = still pending
};

const char* TraceEventTypeName(TraceEventType type);

struct TraceEvent {
  uint64_t seq = 0;    ///< global order, 1-based, never wraps
  int64_t ts_ns = 0;   ///< steady-clock nanoseconds
  TraceEventType type = TraceEventType::kRebuildStart;
  int32_t shard = -1;  ///< shard index when meaningful, -1 otherwise
  uint64_t a = 0;      ///< type-specific payload (see enum comments)
  uint64_t b = 0;

  /// "seq=12 ts_ns=... rebuild-finish shard=3 a=2 b=1804" (debug/dump).
  std::string ToString() const;
};

class TraceLog {
 public:
  /// Capacity is rounded up to a power of two, minimum 8.
  explicit TraceLog(size_t capacity = 4096);

  void Record(TraceEventType type, int32_t shard = -1, uint64_t a = 0,
              uint64_t b = 0);

  /// The newest min(capacity, total_recorded) events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  /// Events ever recorded (snapshot keeps only the newest `capacity`).
  uint64_t total_recorded() const;

  size_t capacity() const { return capacity_; }

  static int64_t NowNs();

 private:
  mutable Mutex mu_;
  /// slot = (seq - 1) & (capacity - 1); sized once in the constructor,
  /// never resized after.
  std::vector<TraceEvent> ring_ HOPE_GUARDED_BY(mu_);
  uint64_t next_seq_ HOPE_GUARDED_BY(mu_) = 1;
  size_t capacity_ = 0;  ///< immutable after construction
};

}  // namespace hope::telemetry
