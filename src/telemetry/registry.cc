#include "telemetry/registry.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "telemetry/trace_log.h"

namespace hope::telemetry {

namespace {

/// JSON string-content escaping (quotes, backslash, control chars).
void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Prometheus label-value escaping: backslash, double-quote, newline.
void AppendPromEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

/// `name{k="v",k2="v2"}` (bare name when no labels). `extra` appends one
/// more label pair (the summary quantile) inside the same brace set.
std::string RenderSeries(const std::string& name, const Labels& labels,
                         const char* extra_key = nullptr,
                         const char* extra_value = nullptr) {
  std::string out = name;
  if (labels.empty() && extra_key == nullptr) return out;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    AppendPromEscaped(out, v);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
  return out;
}

void AppendDouble(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  // Integral values (counters via callbacks, most gauges) render without
  // a fractional part so JSONL output stays grep-friendly.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
  } else {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out += buf;
  }
}

void AppendU64(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "summary";
  }
  return "untyped";
}

}  // namespace

std::string RegistrySnapshot::ToJson() const {
  std::string out = "{\"ts_ns\":";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(ts_ns));
  out += buf;
  out += ",\"metrics\":{";
  bool first = true;
  for (const Metric& m : metrics) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(out, RenderSeries(m.name, m.labels));
    out += "\":";
    if (m.kind == MetricKind::kHistogram) {
      out += "{\"count\":";
      AppendU64(out, m.hist.count);
      out += ",\"p50_ns\":";
      AppendU64(out, m.hist.p50);
      out += ",\"p99_ns\":";
      AppendU64(out, m.hist.p99);
      out += ",\"p999_ns\":";
      AppendU64(out, m.hist.p999);
      out += ",\"max_ns\":";
      AppendU64(out, m.hist.max);
      out += ",\"mean_ns\":";
      AppendDouble(out, m.hist.mean);
      out += '}';
    } else {
      AppendDouble(out, m.value);
    }
  }
  out += "}}";
  return out;
}

std::string RegistrySnapshot::ToPrometheus() const {
  std::string out;
  const std::string* prev_name = nullptr;
  for (const Metric& m : metrics) {
    if (prev_name == nullptr || *prev_name != m.name) {
      out += "# TYPE ";
      out += m.name;
      out += ' ';
      out += KindName(m.kind);
      out += '\n';
      prev_name = &m.name;
    }
    if (m.kind == MetricKind::kHistogram) {
      static constexpr struct {
        const char* label;
        double q;
      } kQuantiles[] = {{"0.5", 0.5}, {"0.99", 0.99}, {"0.999", 0.999}};
      const uint64_t qv[] = {m.hist.p50, m.hist.p99, m.hist.p999};
      for (size_t i = 0; i < 3; i++) {
        out += RenderSeries(m.name, m.labels, "quantile", kQuantiles[i].label);
        out += ' ';
        AppendU64(out, qv[i]);
        out += '\n';
        (void)kQuantiles[i].q;
      }
      out += RenderSeries(m.name + "_sum", m.labels);
      out += ' ';
      AppendDouble(out, m.hist.mean * static_cast<double>(m.hist.count));
      out += '\n';
      out += RenderSeries(m.name + "_count", m.labels);
      out += ' ';
      AppendU64(out, m.hist.count);
      out += '\n';
    } else {
      out += RenderSeries(m.name, m.labels);
      out += ' ';
      AppendDouble(out, m.value);
      out += '\n';
    }
  }
  return out;
}

void MetricRegistry::Registration::Release() {
  if (registry_ != nullptr) {
    registry_->Remove(id_);
    registry_ = nullptr;
  }
}

MetricRegistry::Registration MetricRegistry::RegisterCounter(
    std::string name, Labels labels, const Counter* counter) {
  Entry e;
  e.name = std::move(name);
  e.labels = std::move(labels);
  e.kind = MetricKind::kCounter;
  e.counter = counter;
  return Add(std::move(e));
}

MetricRegistry::Registration MetricRegistry::RegisterGauge(
    std::string name, Labels labels, const Gauge* gauge) {
  Entry e;
  e.name = std::move(name);
  e.labels = std::move(labels);
  e.kind = MetricKind::kGauge;
  e.gauge = gauge;
  return Add(std::move(e));
}

MetricRegistry::Registration MetricRegistry::RegisterHistogram(
    std::string name, Labels labels, const Histogram* histogram) {
  Entry e;
  e.name = std::move(name);
  e.labels = std::move(labels);
  e.kind = MetricKind::kHistogram;
  e.histogram = histogram;
  return Add(std::move(e));
}

MetricRegistry::Registration MetricRegistry::RegisterCallback(
    std::string name, Labels labels, MetricKind kind,
    std::function<double()> read) {
  Entry e;
  e.name = std::move(name);
  e.labels = std::move(labels);
  e.kind = kind;
  e.read = std::move(read);
  return Add(std::move(e));
}

MetricRegistry::Registration MetricRegistry::Add(Entry entry) {
  MutexLock lock(mu_);
  entry.id = next_id_++;
  const uint64_t id = entry.id;
  entries_.push_back(std::move(entry));
  return Registration(this, id);
}

void MetricRegistry::Remove(uint64_t id) {
  MutexLock lock(mu_);
  for (size_t i = 0; i < entries_.size(); i++) {
    if (entries_[i].id == id) {
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

RegistrySnapshot MetricRegistry::Snapshot() const {
  RegistrySnapshot snap;
  snap.ts_ns = TraceLog::NowNs();
  MutexLock lock(mu_);
  snap.metrics.reserve(entries_.size());
  for (const Entry& e : entries_) {
    RegistrySnapshot::Metric m;
    m.name = e.name;
    m.labels = e.labels;
    m.kind = e.kind;
    if (e.counter != nullptr) {
      m.value = static_cast<double>(e.counter->Value());
    } else if (e.gauge != nullptr) {
      m.value = static_cast<double>(e.gauge->Value());
    } else if (e.histogram != nullptr) {
      const HistogramSnapshot h = e.histogram->Snapshot();
      m.hist.count = h.count;
      m.hist.p50 = h.Percentile(0.50);
      m.hist.p99 = h.Percentile(0.99);
      m.hist.p999 = h.Percentile(0.999);
      m.hist.max = h.max;
      m.hist.mean = h.mean;
    } else if (e.read) {
      m.value = e.read();
    }
    snap.metrics.push_back(std::move(m));
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const RegistrySnapshot::Metric& a,
               const RegistrySnapshot::Metric& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return snap;
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* instance = new MetricRegistry();
  return *instance;
}

}  // namespace hope::telemetry
