// Adaptive Radix Tree (Leis et al., ICDE'13) as used in the paper's
// evaluation (§5): adaptive node sizes (Node4/16/48/256), *optimistic*
// path compression (a node stores its prefix length but only the first 8
// prefix bytes; lookups skip the rest and verify against the full key
// stored with the tuple), and single-value leaves holding a pointer to
// the externally-owned key ("the DBMS verifies the match when it
// retrieves the tuple"). MemoryBytes() counts index structures only —
// nodes and leaves — not tuple key bytes, mirroring the paper's
// accounting (ART "only stores partial keys", Fig. 7).
//
// Prefix keys (a key that is a strict prefix of another) are supported
// via a per-node terminator leaf instead of key padding, so arbitrary
// byte strings — including HOPE-encoded keys with embedded zeros — are
// safe.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace hope {

class Art {
 public:
  Art() = default;
  ~Art();

  Art(const Art&) = delete;
  Art& operator=(const Art&) = delete;

  /// Inserts a key/value pair; overwrites the value if the key exists.
  /// The key is interned into the tuple arena (simulating the record the
  /// index points at).
  void Insert(std::string_view key, uint64_t value);

  bool Lookup(std::string_view key, uint64_t* value) const;

  /// Removes a key. Returns false if the key was absent. Nodes left with
  /// a single entry are collapsed back into their parent path and
  /// oversized nodes shrink to the next size class.
  bool Erase(std::string_view key);

  /// Scans up to `count` entries starting at the first key >= start, in
  /// key order. Returns the number of entries produced.
  size_t Scan(std::string_view start, size_t count,
              std::vector<uint64_t>* out) const;

  size_t size() const { return size_; }

  /// Index memory: nodes + leaves (tuple keys excluded).
  size_t MemoryBytes() const { return memory_; }

  /// Average number of node levels above a leaf (trie height statistic).
  double AverageLeafDepth() const;

  /// Validates trie invariants ("" when consistent). Test hook.
  std::string CheckInvariants() const;

 // Node layout types are public so the implementation file's free
  // helper functions (node ops shared with Grow/AddChild) can use them;
  // they are not part of the supported API.
  struct Node;
  struct Leaf;

  /// Children are tagged pointers: bit 0 set = Leaf, clear = Node.
  using Child = void*;

 private:

  static bool IsLeaf(Child c) {
    return (reinterpret_cast<uintptr_t>(c) & 1) != 0;
  }
  static Leaf* AsLeaf(Child c) {
    return reinterpret_cast<Leaf*>(reinterpret_cast<uintptr_t>(c) & ~uintptr_t{1});
  }
  static Node* AsNode(Child c) { return reinterpret_cast<Node*>(c); }
  static Child TagLeaf(Leaf* l) {
    return reinterpret_cast<Child>(reinterpret_cast<uintptr_t>(l) | 1);
  }

  const std::string* Intern(std::string_view key);
  Leaf* NewLeaf(std::string_view key, uint64_t value);

  void InsertIntoSlot(Child* slot, std::string_view key, uint64_t value,
                      size_t depth);
  bool EraseFromSlot(Child* slot, std::string_view key, size_t depth);
  void CollapseIfNeeded(Child* slot, size_t depth);
  const Leaf* MinLeaf(Child c) const;
  size_t EmitAll(Child c, size_t count, size_t produced,
                 std::vector<uint64_t>* out) const;
  size_t EmitGE(Child c, std::string_view start, size_t depth, size_t count,
                size_t produced, std::vector<uint64_t>* out) const;
  void FreeChild(Child c);
  std::string CheckChild(Child c, std::string* path) const;
  void DepthStats(Child c, size_t depth, size_t* total, size_t* leaves) const;

  Child root_ = nullptr;
  std::deque<std::string> tuples_;  // externally-owned full keys
  size_t size_ = 0;
  size_t memory_ = 0;
};

}  // namespace hope
