#include "art/art.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/str_utils.h"

namespace hope {

namespace {
enum NodeType : uint8_t { kNode4, kNode16, kNode48, kNode256 };
constexpr size_t kMaxStoredPrefix = 8;
}  // namespace

struct Art::Leaf {
  const std::string* key;  // tuple-owned full key
  uint64_t value;
};

struct Art::Node {
  NodeType type;
  uint16_t num_children = 0;
  uint32_t prefix_len = 0;  // full length; only 8 bytes stored (optimistic)
  uint8_t prefix[kMaxStoredPrefix];
  Leaf* term_leaf = nullptr;  // key that ends exactly at this node
};

namespace {

struct Node4 : Art::Node {
  uint8_t keys[4];
  Art::Child children[4];
};
struct Node16 : Art::Node {
  uint8_t keys[16];
  Art::Child children[16];
};
struct Node48 : Art::Node {
  uint8_t child_index[256];
  Art::Child children[48];
};
struct Node256 : Art::Node {
  Art::Child children[256];
};

size_t NodeSize(NodeType t) {
  switch (t) {
    case kNode4: return sizeof(Node4);
    case kNode16: return sizeof(Node16);
    case kNode48: return sizeof(Node48);
    case kNode256: return sizeof(Node256);
  }
  return 0;
}

void DeleteNode(Art::Node* n) {
  switch (n->type) {
    case kNode4: delete static_cast<Node4*>(n); break;
    case kNode16: delete static_cast<Node16*>(n); break;
    case kNode48: delete static_cast<Node48*>(n); break;
    case kNode256: delete static_cast<Node256*>(n); break;
  }
}

Art::Child* FindChildSlot(Art::Node* n, uint8_t b) {
  switch (n->type) {
    case kNode4: {
      auto* x = static_cast<Node4*>(n);
      for (int i = 0; i < x->num_children; i++)
        if (x->keys[i] == b) return &x->children[i];
      return nullptr;
    }
    case kNode16: {
      auto* x = static_cast<Node16*>(n);
      for (int i = 0; i < x->num_children; i++)
        if (x->keys[i] == b) return &x->children[i];
      return nullptr;
    }
    case kNode48: {
      auto* x = static_cast<Node48*>(n);
      return x->child_index[b] == 0xFF ? nullptr
                                       : &x->children[x->child_index[b]];
    }
    case kNode256: {
      auto* x = static_cast<Node256*>(n);
      return x->children[b] ? &x->children[b] : nullptr;
    }
  }
  return nullptr;
}

const Art::Child* FindChild(const Art::Node* n, uint8_t b) {
  return FindChildSlot(const_cast<Art::Node*>(n), b);
}

bool IsFull(const Art::Node* n) {
  switch (n->type) {
    case kNode4: return n->num_children >= 4;
    case kNode16: return n->num_children >= 16;
    case kNode48: return n->num_children >= 48;
    case kNode256: return false;
  }
  return false;
}

/// Calls fn(byte, child) for each child in ascending byte order. Returns
/// false early if fn returns false.
template <typename Fn>
bool ForEachChild(const Art::Node* n, Fn fn) {
  switch (n->type) {
    case kNode4: {
      auto* x = static_cast<const Node4*>(n);
      for (int i = 0; i < x->num_children; i++)
        if (!fn(x->keys[i], x->children[i])) return false;
      return true;
    }
    case kNode16: {
      auto* x = static_cast<const Node16*>(n);
      for (int i = 0; i < x->num_children; i++)
        if (!fn(x->keys[i], x->children[i])) return false;
      return true;
    }
    case kNode48: {
      auto* x = static_cast<const Node48*>(n);
      for (int b = 0; b < 256; b++)
        if (x->child_index[b] != 0xFF)
          if (!fn(static_cast<uint8_t>(b), x->children[x->child_index[b]]))
            return false;
      return true;
    }
    case kNode256: {
      auto* x = static_cast<const Node256*>(n);
      for (int b = 0; b < 256; b++)
        if (x->children[b])
          if (!fn(static_cast<uint8_t>(b), x->children[b])) return false;
      return true;
    }
  }
  return true;
}

}  // namespace

Art::~Art() {
  if (root_) FreeChild(root_);
}

void Art::FreeChild(Child c) {
  if (IsLeaf(c)) {
    delete AsLeaf(c);
    return;
  }
  Node* n = AsNode(c);
  ForEachChild(n, [&](uint8_t, Child child) {
    FreeChild(child);
    return true;
  });
  if (n->term_leaf) delete n->term_leaf;
  DeleteNode(n);
}

const std::string* Art::Intern(std::string_view key) {
  tuples_.emplace_back(key);
  return &tuples_.back();
}

Art::Leaf* Art::NewLeaf(std::string_view key, uint64_t value) {
  auto* leaf = new Leaf{Intern(key), value};
  memory_ += sizeof(Leaf);
  size_++;
  return leaf;
}

namespace {

Art::Node* NewNode(NodeType t, size_t* memory) {
  *memory += NodeSize(t);
  Art::Node* n = nullptr;
  switch (t) {
    case kNode4: n = new Node4(); break;
    case kNode16: n = new Node16(); break;
    case kNode48: {
      auto* x = new Node48();
      std::memset(x->child_index, 0xFF, sizeof(x->child_index));
      n = x;
      break;
    }
    case kNode256: {
      auto* x = new Node256();
      std::memset(x->children, 0, sizeof(x->children));
      n = x;
      break;
    }
  }
  n->type = t;
  return n;
}

template <size_t N, typename ChildT>
int InsertSorted(uint8_t (&keys)[N], ChildT (&children)[N], int count,
                 uint8_t b, ChildT child) {
  int pos = count;
  while (pos > 0 && keys[pos - 1] > b) {
    keys[pos] = keys[pos - 1];
    children[pos] = children[pos - 1];
    pos--;
  }
  keys[pos] = b;
  children[pos] = child;
  return pos;
}

Art::Node* Grow(Art::Node* old, size_t* memory) {
  Art::Node* bigger = nullptr;
  switch (old->type) {
    case kNode4: {
      auto* o = static_cast<Node4*>(old);
      auto* n = static_cast<Node16*>(NewNode(kNode16, memory));
      std::copy(o->keys, o->keys + 4, n->keys);
      std::copy(o->children, o->children + 4, n->children);
      n->num_children = 4;
      bigger = n;
      break;
    }
    case kNode16: {
      auto* o = static_cast<Node16*>(old);
      auto* n = static_cast<Node48*>(NewNode(kNode48, memory));
      for (int i = 0; i < 16; i++) {
        n->child_index[o->keys[i]] = static_cast<uint8_t>(i);
        n->children[i] = o->children[i];
      }
      n->num_children = 16;
      bigger = n;
      break;
    }
    case kNode48: {
      auto* o = static_cast<Node48*>(old);
      auto* n = static_cast<Node256*>(NewNode(kNode256, memory));
      for (int b = 0; b < 256; b++)
        if (o->child_index[b] != 0xFF)
          n->children[b] = o->children[o->child_index[b]];
      n->num_children = o->num_children;
      bigger = n;
      break;
    }
    case kNode256:
      assert(false);
      return old;
  }
  bigger->prefix_len = old->prefix_len;
  std::copy(old->prefix, old->prefix + kMaxStoredPrefix, bigger->prefix);
  bigger->term_leaf = old->term_leaf;
  *memory -= NodeSize(old->type);
  DeleteNode(old);
  return bigger;
}

Art::Child* AddChild(Art::Node*& node, uint8_t b, Art::Child child,
                     size_t* memory) {
  if (IsFull(node)) node = Grow(node, memory);
  switch (node->type) {
    case kNode4: {
      auto* x = static_cast<Node4*>(node);
      int pos = InsertSorted(x->keys, x->children, x->num_children, b, child);
      x->num_children++;
      return &x->children[pos];
    }
    case kNode16: {
      auto* x = static_cast<Node16*>(node);
      int pos = InsertSorted(x->keys, x->children, x->num_children, b, child);
      x->num_children++;
      return &x->children[pos];
    }
    case kNode48: {
      auto* x = static_cast<Node48*>(node);
      x->child_index[b] = static_cast<uint8_t>(x->num_children);
      x->children[x->num_children] = child;
      return &x->children[x->num_children++];
    }
    case kNode256: {
      auto* x = static_cast<Node256*>(node);
      x->children[b] = child;
      x->num_children++;
      return &x->children[b];
    }
  }
  return nullptr;
}

void SetStoredPrefix(Art::Node* n, std::string_view full_prefix) {
  n->prefix_len = static_cast<uint32_t>(full_prefix.size());
  size_t stored = std::min(full_prefix.size(), kMaxStoredPrefix);
  std::memcpy(n->prefix, full_prefix.data(), stored);
}

}  // namespace

const Art::Leaf* Art::MinLeaf(Child c) const {
  while (!IsLeaf(c)) {
    const Node* n = AsNode(c);
    if (n->term_leaf) return n->term_leaf;
    const Leaf* result = nullptr;
    ForEachChild(n, [&](uint8_t, Child child) {
      c = child;
      return false;  // first (smallest) child only
    });
    (void)result;
  }
  return AsLeaf(c);
}

void Art::InsertIntoSlot(Child* slot, std::string_view key, uint64_t value,
                         size_t depth) {
  while (true) {
    Child c = *slot;
    if (IsLeaf(c)) {
      Leaf* leaf = AsLeaf(c);
      const std::string& lkey = *leaf->key;
      if (lkey == key) {
        leaf->value = value;
        return;
      }
      // Split into a node holding the common part after `depth`.
      std::string_view krest = key.substr(depth);
      std::string_view lrest = std::string_view(lkey).substr(depth);
      size_t lcp = LcpLen(krest, lrest);
      Node* node = NewNode(kNode4, &memory_);
      SetStoredPrefix(node, krest.substr(0, lcp));
      Leaf* new_leaf = NewLeaf(key, value);
      if (depth + lcp == key.size()) {
        node->term_leaf = new_leaf;
      } else {
        AddChild(node, static_cast<uint8_t>(key[depth + lcp]),
                 TagLeaf(new_leaf), &memory_);
      }
      if (depth + lcp == lkey.size()) {
        node->term_leaf = leaf;
      } else {
        AddChild(node, static_cast<uint8_t>(lkey[depth + lcp]), c, &memory_);
      }
      *slot = node;
      return;
    }

    Node* node = AsNode(c);
    // Compare the node's (possibly truncated) prefix. When the stored
    // bytes are exhausted we compare against a representative leaf (the
    // pessimistic fallback inserts need for correctness).
    size_t plen = node->prefix_len;
    std::string_view krest = key.substr(depth);
    size_t check = std::min<size_t>(plen, krest.size());
    size_t m = 0;  // matched bytes
    const std::string* rep = nullptr;
    while (m < check) {
      uint8_t pb;
      if (m < kMaxStoredPrefix) {
        pb = node->prefix[m];
      } else {
        if (!rep) rep = MinLeaf(c)->key;
        pb = static_cast<uint8_t>((*rep)[depth + m]);
      }
      if (static_cast<uint8_t>(krest[m]) != pb) break;
      m++;
    }
    if (m < plen) {
      // Mismatch (or key exhausted) inside the prefix: split the prefix.
      if (!rep && plen > kMaxStoredPrefix) rep = MinLeaf(c)->key;
      std::string_view full_prefix =
          rep ? std::string_view(*rep).substr(depth, plen)
              : std::string_view(reinterpret_cast<const char*>(node->prefix),
                                 plen);
      Node* parent = NewNode(kNode4, &memory_);
      SetStoredPrefix(parent, full_prefix.substr(0, m));
      // Old node keeps the tail of the prefix (after the branch byte).
      uint8_t old_branch = static_cast<uint8_t>(full_prefix[m]);
      std::string old_tail(full_prefix.substr(m + 1));
      SetStoredPrefix(node, old_tail);
      AddChild(parent, old_branch, c, &memory_);
      Leaf* new_leaf = NewLeaf(key, value);
      if (depth + m == key.size()) {
        parent->term_leaf = new_leaf;
      } else {
        AddChild(parent, static_cast<uint8_t>(key[depth + m]),
                 TagLeaf(new_leaf), &memory_);
      }
      *slot = parent;
      return;
    }
    depth += plen;
    if (depth == key.size()) {
      if (node->term_leaf) {
        node->term_leaf->value = value;
      } else {
        node->term_leaf = NewLeaf(key, value);
      }
      return;
    }
    uint8_t b = static_cast<uint8_t>(key[depth]);
    Child* child_slot = FindChildSlot(node, b);
    if (!child_slot) {
      Leaf* leaf = NewLeaf(key, value);
      Node* grown = node;
      AddChild(grown, b, TagLeaf(leaf), &memory_);
      if (grown != node) *slot = grown;
      return;
    }
    slot = child_slot;
    depth++;
  }
}

void Art::Insert(std::string_view key, uint64_t value) {
  if (!root_) {
    root_ = TagLeaf(NewLeaf(key, value));
    return;
  }
  InsertIntoSlot(&root_, key, value, 0);
}

namespace {

void RemoveChildEntry(Art::Node* node, uint8_t b) {
  switch (node->type) {
    case kNode4: {
      auto* x = static_cast<Node4*>(node);
      int pos = 0;
      while (x->keys[pos] != b) pos++;
      for (int i = pos; i + 1 < x->num_children; i++) {
        x->keys[i] = x->keys[i + 1];
        x->children[i] = x->children[i + 1];
      }
      x->num_children--;
      break;
    }
    case kNode16: {
      auto* x = static_cast<Node16*>(node);
      int pos = 0;
      while (x->keys[pos] != b) pos++;
      for (int i = pos; i + 1 < x->num_children; i++) {
        x->keys[i] = x->keys[i + 1];
        x->children[i] = x->children[i + 1];
      }
      x->num_children--;
      break;
    }
    case kNode48: {
      auto* x = static_cast<Node48*>(node);
      uint8_t idx = x->child_index[b];
      x->child_index[b] = 0xFF;
      uint8_t last = static_cast<uint8_t>(x->num_children - 1);
      if (idx != last) {
        // Move the last stored child into the freed slot.
        x->children[idx] = x->children[last];
        for (int k = 0; k < 256; k++)
          if (x->child_index[k] == last) {
            x->child_index[k] = idx;
            break;
          }
      }
      x->num_children--;
      break;
    }
    case kNode256: {
      auto* x = static_cast<Node256*>(node);
      x->children[b] = nullptr;
      x->num_children--;
      break;
    }
  }
}

/// The single remaining (byte, child) entry of a node with exactly one
/// child and no terminator.
std::pair<uint8_t, Art::Child> OnlyChild(const Art::Node* n) {
  std::pair<uint8_t, Art::Child> result{0, nullptr};
  ForEachChild(n, [&](uint8_t b, Art::Child c) {
    result = {b, c};
    return false;
  });
  return result;
}

/// Shrinks a node to the next-smaller size class when sparse enough
/// (with slack so alternating insert/erase does not thrash).
Art::Node* MaybeShrink(Art::Node* n, size_t* memory) {
  auto transplant = [&](Art::Node* smaller) {
    smaller->prefix_len = n->prefix_len;
    std::copy(n->prefix, n->prefix + kMaxStoredPrefix, smaller->prefix);
    smaller->term_leaf = n->term_leaf;
    *memory -= NodeSize(n->type);
    DeleteNode(n);
    return smaller;
  };
  switch (n->type) {
    case kNode16: {
      if (n->num_children > 3) return n;
      auto* x = static_cast<Node16*>(n);
      auto* s = static_cast<Node4*>(NewNode(kNode4, memory));
      for (int i = 0; i < x->num_children; i++) {
        s->keys[i] = x->keys[i];
        s->children[i] = x->children[i];
      }
      s->num_children = x->num_children;
      return transplant(s);
    }
    case kNode48: {
      if (n->num_children > 12) return n;
      auto* x = static_cast<Node48*>(n);
      auto* s = static_cast<Node16*>(NewNode(kNode16, memory));
      int out = 0;
      for (int b = 0; b < 256; b++)
        if (x->child_index[b] != 0xFF) {
          s->keys[out] = static_cast<uint8_t>(b);
          s->children[out++] = x->children[x->child_index[b]];
        }
      s->num_children = static_cast<uint16_t>(out);
      return transplant(s);
    }
    case kNode256: {
      if (n->num_children > 40) return n;
      auto* x = static_cast<Node256*>(n);
      auto* s = static_cast<Node48*>(NewNode(kNode48, memory));
      int out = 0;
      for (int b = 0; b < 256; b++)
        if (x->children[b]) {
          s->child_index[b] = static_cast<uint8_t>(out);
          s->children[out++] = x->children[b];
        }
      s->num_children = static_cast<uint16_t>(out);
      return transplant(s);
    }
    case kNode4:
      return n;
  }
  return n;
}

}  // namespace

void Art::CollapseIfNeeded(Child* slot, size_t /*depth*/) {
  Node* n = AsNode(*slot);
  size_t entries = n->num_children + (n->term_leaf ? 1 : 0);
  if (entries >= 2) {
    *slot = MaybeShrink(n, &memory_);
    return;
  }
  assert(entries == 1);
  if (n->num_children == 0) {
    // Only the terminator remains: the leaf replaces the node (leaves
    // carry their full key, so no prefix bookkeeping is needed).
    *slot = TagLeaf(n->term_leaf);
    n->term_leaf = nullptr;
    memory_ -= NodeSize(n->type);
    DeleteNode(n);
    return;
  }
  auto [b, only] = OnlyChild(n);
  if (IsLeaf(only)) {
    *slot = only;
  } else {
    // Path compression restore: the child absorbs this node's prefix
    // plus the branch byte.
    Node* c = AsNode(only);
    uint8_t stored[kMaxStoredPrefix];
    size_t pos = 0;
    for (size_t i = 0; i < n->prefix_len && pos < kMaxStoredPrefix; i++)
      stored[pos++] = n->prefix[i];  // prefix_len < 8 here iff pos < 8 stops
    if (pos < kMaxStoredPrefix && n->prefix_len == pos) {
      stored[pos++] = b;
      for (size_t i = 0; i < c->prefix_len && pos < kMaxStoredPrefix; i++)
        stored[pos++] = c->prefix[i];
    }
    c->prefix_len = n->prefix_len + 1 + c->prefix_len;
    std::copy(stored, stored + pos, c->prefix);
    *slot = only;
  }
  memory_ -= NodeSize(n->type);
  DeleteNode(n);
}

bool Art::EraseFromSlot(Child* slot, std::string_view key, size_t depth) {
  Child c = *slot;
  if (IsLeaf(c)) {
    Leaf* leaf = AsLeaf(c);
    if (*leaf->key != key) return false;
    delete leaf;
    memory_ -= sizeof(Leaf);
    size_--;
    *slot = nullptr;  // the caller unlinks the child entry
    return true;
  }
  Node* n = AsNode(c);
  size_t plen = n->prefix_len;
  if (depth + plen > key.size()) return false;
  // Exact prefix check (pessimistic beyond the stored bytes).
  size_t stored = std::min<size_t>(plen, kMaxStoredPrefix);
  for (size_t i = 0; i < stored; i++)
    if (static_cast<uint8_t>(key[depth + i]) != n->prefix[i]) return false;
  if (plen > kMaxStoredPrefix) {
    const std::string& rep = *MinLeaf(c)->key;
    for (size_t i = kMaxStoredPrefix; i < plen; i++)
      if (key[depth + i] != rep[depth + i]) return false;
  }
  depth += plen;
  if (depth == key.size()) {
    if (!n->term_leaf || *n->term_leaf->key != key) return false;
    delete n->term_leaf;
    n->term_leaf = nullptr;
    memory_ -= sizeof(Leaf);
    size_--;
    CollapseIfNeeded(slot, depth);
    return true;
  }
  uint8_t b = static_cast<uint8_t>(key[depth]);
  Child* child_slot = FindChildSlot(n, b);
  if (!child_slot) return false;
  if (!EraseFromSlot(child_slot, key, depth + 1)) return false;
  if (*child_slot == nullptr) RemoveChildEntry(n, b);
  CollapseIfNeeded(slot, depth);
  return true;
}

bool Art::Erase(std::string_view key) {
  if (!root_) return false;
  if (IsLeaf(root_)) {
    Leaf* leaf = AsLeaf(root_);
    if (*leaf->key != key) return false;
    delete leaf;
    memory_ -= sizeof(Leaf);
    size_--;
    root_ = nullptr;
    return true;
  }
  bool erased = EraseFromSlot(&root_, key, 0);
  return erased;
}

bool Art::Lookup(std::string_view key, uint64_t* value) const {
  Child c = root_;
  if (!c) return false;
  size_t depth = 0;
  while (!IsLeaf(c)) {
    const Node* n = AsNode(c);
    // Optimistic skip: compare only the stored prefix bytes.
    size_t plen = n->prefix_len;
    if (depth + plen > key.size()) return false;
    size_t check = std::min<size_t>(plen, kMaxStoredPrefix);
    for (size_t i = 0; i < check; i++)
      if (static_cast<uint8_t>(key[depth + i]) != n->prefix[i]) return false;
    depth += plen;
    if (depth == key.size()) {
      if (!n->term_leaf || *n->term_leaf->key != key) return false;
      if (value) *value = n->term_leaf->value;
      return true;
    }
    const Child* child = FindChild(n, static_cast<uint8_t>(key[depth]));
    if (!child) return false;
    c = *child;
    depth++;
  }
  const Leaf* leaf = AsLeaf(c);
  if (*leaf->key != key) return false;  // final verification
  if (value) *value = leaf->value;
  return true;
}

size_t Art::EmitAll(Child c, size_t count, size_t produced,
                    std::vector<uint64_t>* out) const {
  if (produced >= count) return produced;
  if (IsLeaf(c)) {
    if (out) out->push_back(AsLeaf(c)->value);
    return produced + 1;
  }
  const Node* n = AsNode(c);
  if (n->term_leaf) {
    if (out) out->push_back(n->term_leaf->value);
    produced++;
  }
  ForEachChild(n, [&](uint8_t, Child child) {
    produced = EmitAll(child, count, produced, out);
    return produced < count;
  });
  return produced;
}

size_t Art::EmitGE(Child c, std::string_view start, size_t depth,
                   size_t count, size_t produced,
                   std::vector<uint64_t>* out) const {
  if (produced >= count) return produced;
  if (IsLeaf(c)) {
    const Leaf* leaf = AsLeaf(c);
    if (std::string_view(*leaf->key) >= start) {
      if (out) out->push_back(leaf->value);
      produced++;
    }
    return produced;
  }
  const Node* n = AsNode(c);
  // Compare the node's full prefix against start[depth..]: scans must be
  // exact, so fall back to a representative key beyond the stored bytes.
  size_t plen = n->prefix_len;
  std::string_view srest =
      depth <= start.size() ? start.substr(depth) : std::string_view();
  size_t check = std::min<size_t>(plen, srest.size());
  const std::string* rep = nullptr;
  for (size_t i = 0; i < check; i++) {
    uint8_t pb;
    if (i < kMaxStoredPrefix) {
      pb = n->prefix[i];
    } else {
      if (!rep) rep = MinLeaf(c)->key;
      pb = static_cast<uint8_t>((*rep)[depth + i]);
    }
    uint8_t sb = static_cast<uint8_t>(srest[i]);
    if (pb < sb) return produced;                        // subtree < start
    if (pb > sb) return EmitAll(c, count, produced, out);  // subtree > start
  }
  if (srest.size() <= plen) {
    // start is exhausted within (or at the end of) the prefix: the whole
    // subtree is >= start.
    return EmitAll(c, count, produced, out);
  }
  depth += plen;
  // term_leaf's key equals the path, which is shorter than start: skip it.
  uint8_t sb = static_cast<uint8_t>(start[depth]);
  bool aborted = !ForEachChild(n, [&](uint8_t b, Child child) {
    if (b < sb) return true;
    if (b == sb)
      produced = EmitGE(child, start, depth + 1, count, produced, out);
    else
      produced = EmitAll(child, count, produced, out);
    return produced < count;
  });
  (void)aborted;
  return produced;
}

size_t Art::Scan(std::string_view start, size_t count,
                 std::vector<uint64_t>* out) const {
  if (!root_) return 0;
  return EmitGE(root_, start, 0, count, 0, out);
}

void Art::DepthStats(Child c, size_t depth, size_t* total,
                     size_t* leaves) const {
  if (IsLeaf(c)) {
    *total += depth;
    *leaves += 1;
    return;
  }
  const Node* n = AsNode(c);
  if (n->term_leaf) {
    *total += depth + 1;
    *leaves += 1;
  }
  ForEachChild(n, [&](uint8_t, Child child) {
    DepthStats(child, depth + 1, total, leaves);
    return true;
  });
}

double Art::AverageLeafDepth() const {
  if (!root_) return 0;
  size_t total = 0, leaves = 0;
  DepthStats(root_, 0, &total, &leaves);
  return leaves == 0 ? 0 : static_cast<double>(total) /
                               static_cast<double>(leaves);
}

std::string Art::CheckChild(Child c, std::string* path) const {
  if (IsLeaf(c)) {
    const Leaf* leaf = AsLeaf(c);
    // The path must be a prefix of the leaf key (stored prefix bytes may
    // be truncated, so compare only what the path knows).
    if (leaf->key->size() < path->size()) return "leaf key shorter than path";
    for (size_t i = 0; i < path->size(); i++) {
      char p = (*path)[i];
      if (p != '\x01' && (*leaf->key)[i] != p)  // \x01 marks skipped bytes
        return "leaf key does not match path";
    }
    return "";
  }
  const Node* n = AsNode(c);
  if (!n->term_leaf && n->num_children + (n->term_leaf ? 1 : 0) < 2 &&
      path->empty() == false)
    return "non-root node with fewer than two entries";
  size_t base = path->size();
  for (size_t i = 0; i < n->prefix_len; i++)
    path->push_back(i < kMaxStoredPrefix
                        ? static_cast<char>(n->prefix[i])
                        : '\x01');
  if (n->term_leaf) {
    if (n->term_leaf->key->size() != path->size())
      return "terminator key length mismatch";
  }
  uint8_t prev = 0;
  bool first = true;
  std::string err;
  ForEachChild(n, [&](uint8_t b, Child child) {
    if (!first && b <= prev) {
      err = "children out of order";
      return false;
    }
    first = false;
    prev = b;
    path->push_back(static_cast<char>(b));
    err = CheckChild(child, path);
    path->pop_back();
    return err.empty();
  });
  path->resize(base);
  return err;
}

std::string Art::CheckInvariants() const {
  if (!root_) return "";
  std::string path;
  return CheckChild(root_, &path);
}

}  // namespace hope
