// Symbol selection (§3.3 / §4.2): divides the string axis into connected,
// disjoint intervals with non-empty common prefixes, using the heuristics
// of each compression scheme, and computes interval access weights with a
// test-encode pass over the sample keys.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hope/interval.h"

namespace hope {

/// Base class of the per-scheme interval-division heuristics.
class SymbolSelector {
 public:
  virtual ~SymbolSelector() = default;

  /// Divides the string axis into intervals given sampled keys and a
  /// target dictionary size. The result is sorted by left bound, complete
  /// (first bound is ""), and each interval has a non-empty symbol.
  /// Weights are *not* yet filled (see TestEncodeWeights).
  virtual std::vector<IntervalSpec> Select(
      const std::vector<std::string>& samples, size_t dict_limit) = 0;
};

/// Appends connected intervals covering the gap [lo, hi) (hi == "" means
/// +infinity), splitting at first-byte boundaries whenever the whole gap
/// has no common prefix, so that every emitted interval has a non-empty
/// symbol.
void AddGapIntervals(const std::string& lo, const std::string& hi,
                     std::vector<IntervalSpec>* out);

/// Runs a test encode of the samples against the intervals (binary search
/// per lookup) and fills each interval's access weight (§4.2: "it performs
/// a test encoding of the sample keys ... to obtain the probability that a
/// source string falls into each interval").
void TestEncodeWeights(const std::vector<std::string>& samples,
                       std::vector<IntervalSpec>* intervals);

/// Checks the string-axis invariants (§3.1): sorted connected boundaries
/// starting at "", non-empty symbols, and each symbol being the prefix of
/// every string in its interval. Returns an error description or "" if OK.
std::string ValidateIntervals(const std::vector<IntervalSpec>& intervals);

/// Factory helpers for the six schemes' selectors.
std::unique_ptr<SymbolSelector> MakeSingleCharSelector();
std::unique_ptr<SymbolSelector> MakeDoubleCharSelector();
std::unique_ptr<SymbolSelector> MakeNGramSelector(int n);  // n = 3 or 4
std::unique_ptr<SymbolSelector> MakeAlmSelector();
std::unique_ptr<SymbolSelector> MakeAlmImprovedSelector();

}  // namespace hope
