// Code assignment (§4.2): fixed-length monotone codes or optimal
// order-preserving prefix codes (Hu-Tucker).
#pragma once

#include <vector>

#include "common/bits.h"

namespace hope {

/// Assigns monotonically increasing fixed-length codes 0..n-1, each of
/// ceil(log2(n)) bits (at least 1 bit).
std::vector<Code> AssignFixedLengthCodes(size_t n);

/// Assigns optimal order-preserving prefix codes for the given weights
/// (delegates to the Hu-Tucker / Garsia-Wachs implementation).
std::vector<Code> AssignHuTuckerCodes(const std::vector<double>& weights);

/// Range-Encoding alternative the paper mentions in §4.2 (Martin, 1979 —
/// the integer form of arithmetic coding): code i is the shortest bit
/// prefix of the cumulative-probability interval [cum_i, cum_i + p_i)
/// that lies fully inside it (Shannon-Fano-Elias style, len_i =
/// ceil(log2(1/p_i)) + 1). Order-preserving and prefix-free by
/// construction but, as the paper notes, needs more bits than Hu-Tucker
/// to pin codes onto range boundaries. Implemented for the ablation
/// bench.
std::vector<Code> AssignRangeCodes(const std::vector<double>& weights);

/// Expected code length sum(w_i * len_i) / sum(w_i); used by tests and
/// the assigner ablation.
double ExpectedCodeLength(const std::vector<double>& weights,
                          const std::vector<Code>& codes);

}  // namespace hope
