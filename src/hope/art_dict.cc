// ART-based dictionary for the ALM / ALM-Improved schemes (§4.2).
//
// A radix tree with adaptive node sizes (Node4/16/48/256, after Leis et
// al.) modified as the paper describes: it supports prefix keys (a
// boundary may end at an interior node — the terminator entry), stores
// full prefixes structurally (no optimistic common-prefix skipping, since
// there is no tuple to verify against), and its leaves carry dictionary
// entries instead of tuple pointers. Lookup is a predecessor ("<=")
// search.
// Node4/16 child scans are SIMD (one compare + movemask, after Leis et
// al. §5); Node48/256 carry a 256-bit presence bitmap so the predecessor
// child is one branch-free PrevSetBit instead of a backward slot scan.
// EncodeSpan devirtualizes the per-key loop and EncodeMulti interleaves a
// group of independent descents so their cache misses overlap — ART is
// the deepest dictionary (arbitrary-length boundaries), so it benefits
// the most.
#include <cstring>
#include <stdexcept>

#include "common/check.h"
#include "common/simd.h"
#include "hope/dictionary.h"

namespace hope {

namespace {

enum NodeType : uint8_t { kNode4, kNode16, kNode48, kNode256 };

struct ArtNode {
  NodeType type;
  uint16_t num_children = 0;
  int32_t term_entry = -1;
};

struct ArtNode4 : ArtNode {
  uint8_t keys[4];
  ArtNode* children[4];
};

struct ArtNode16 : ArtNode {
  uint8_t keys[16];
  ArtNode* children[16];
};

struct ArtNode48 : ArtNode {
  uint8_t child_index[256];  // 0xFF = none
  ArtNode* children[48];
  uint64_t bm[4] = {0, 0, 0, 0};  // present keys, MSB-first per word
};

struct ArtNode256 : ArtNode {
  ArtNode* children[256];
  uint64_t bm[4] = {0, 0, 0, 0};  // present keys, MSB-first per word
};

/// Marks key b present in a node's 256-bit bitmap (same MSB-first layout
/// as the bitmap trie, so simd::PrevSetBit256 serves both).
inline void SetBit256(uint64_t bm[4], uint8_t b) {
  bm[b >> 6] |= uint64_t{1} << (63 - (b & 63));
}

void DeleteNode(ArtNode* node) {
  // Destructors are trivial but delete must see the true type.
  switch (node->type) {
    case kNode4: delete static_cast<ArtNode4*>(node); break;
    case kNode16: delete static_cast<ArtNode16*>(node); break;
    case kNode48: delete static_cast<ArtNode48*>(node); break;
    case kNode256: delete static_cast<ArtNode256*>(node); break;
  }
}

size_t NodeSize(NodeType type) {
  switch (type) {
    case kNode4: return sizeof(ArtNode4);
    case kNode16: return sizeof(ArtNode16);
    case kNode48: return sizeof(ArtNode48);
    case kNode256: return sizeof(ArtNode256);
  }
  return 0;
}

ArtNode* FindChild(const ArtNode* node, uint8_t b) {
  switch (node->type) {
    case kNode4: {
      auto* n = static_cast<const ArtNode4*>(node);
      for (int i = 0; i < n->num_children; i++)
        if (n->keys[i] == b) return n->children[i];
      return nullptr;
    }
    case kNode16: {
      // One vector compare + movemask over all 16 key slots.
      auto* n = static_cast<const ArtNode16*>(node);
      int i = simd::FindByteEq16(n->keys, n->num_children, b);
      return i >= 0 ? n->children[i] : nullptr;
    }
    case kNode48: {
      auto* n = static_cast<const ArtNode48*>(node);
      return n->child_index[b] == 0xFF ? nullptr
                                       : n->children[n->child_index[b]];
    }
    case kNode256: {
      auto* n = static_cast<const ArtNode256*>(node);
      return n->children[b];
    }
  }
  return nullptr;
}

/// Largest child with key strictly below b (pass 256 for "max child").
ArtNode* PrevChild(const ArtNode* node, int b) {
  switch (node->type) {
    case kNode4: {
      auto* n = static_cast<const ArtNode4*>(node);
      ArtNode* best = nullptr;
      for (int i = 0; i < n->num_children && n->keys[i] < b; i++)
        best = n->children[i];  // keys sorted ascending
      return best;
    }
    case kNode16: {
      auto* n = static_cast<const ArtNode16*>(node);
      int c = simd::CountBytesLt16(n->keys, n->num_children,
                                   static_cast<unsigned>(b));
      return c > 0 ? n->children[c - 1] : nullptr;
    }
    case kNode48: {
      // Presence bitmap: one branch-free PrevSetBit instead of scanning
      // up to 256 child_index slots backwards.
      auto* n = static_cast<const ArtNode48*>(node);
      int k = simd::PrevSetBit256(n->bm, static_cast<unsigned>(b));
      return k >= 0 ? n->children[n->child_index[k]] : nullptr;
    }
    case kNode256: {
      auto* n = static_cast<const ArtNode256*>(node);
      int k = simd::PrevSetBit256(n->bm, static_cast<unsigned>(b));
      return k >= 0 ? n->children[k] : nullptr;
    }
  }
  return nullptr;
}

class ArtDict : public Dictionary {
 public:
  explicit ArtDict(const std::vector<DictEntry>& entries) {
    root_ = NewNode(kNode4);
    payload_.reserve(entries.size());
    for (size_t i = 0; i < entries.size(); i++) {
      payload_.push_back(PackEntry(entries[i]));
      Insert(entries[i].left_bound, static_cast<int32_t>(i));
    }
    num_entries_ = entries.size();
  }

  ~ArtDict() override { Free(root_); }

  ArtDict(const ArtDict&) = delete;
  ArtDict& operator=(const ArtDict&) = delete;

  LookupResult Lookup(std::string_view src) const override {
    return Result(LookupEntry(src));
  }

  // Devirtualized hot path: all descents for one key run inside this
  // concrete type — one virtual call per key instead of one per symbol.
  void EncodeSpan(std::string_view src, size_t base, BitWriter* writer,
                  std::vector<EncodeTrace>* trace) const override {
    size_t pos = base;
    while (pos < src.size()) {
      if (trace)
        trace->push_back({static_cast<uint32_t>(pos),
                          static_cast<uint32_t>(writer->total_bits())});
      LookupResult r = Result(LookupEntry(src.substr(pos)));
      writer->Append(r.code);
      pos += r.consumed;
    }
  }

  // Interleaved multi-key descent: advance kGroup independent lookups
  // round-robin, one node visit each per step, so the group's pointer
  // chases miss the cache concurrently instead of back-to-back. This is
  // what gives the ALM family real batch scaling — its descents are the
  // deepest and the per-node dependency chain cannot be vectorized.
  void EncodeMulti(const std::string_view* keys, size_t n, std::string* out,
                   size_t* bits) const override {
    if (n < 2 || !UseInterleavedDescent(MemoryBytes())) {
      Dictionary::EncodeMulti(keys, n, out, bits);
      return;
    }
    Cursor cur[kGroup];
    size_t next = 0;
    auto load = [&](Cursor& c) {
      while (next < n) {
        c.key = keys[next];
        c.out_idx = next++;
        if (c.key.empty()) {  // empty key: empty encoding, zero bits
          out[c.out_idx].clear();
          bits[c.out_idx] = 0;
          continue;
        }
        c.pos = 0;
        c.writer.Clear();
        c.writer.ReserveBits(c.key.size() * 8);
        StartLookup(c);
        c.live = true;
        return true;
      }
      c.live = false;
      return false;
    };
    int nlive = 0;
    for (auto& c : cur)
      if (load(c)) nlive++;
    while (nlive > 0) {
      for (auto& c : cur) {
        if (!c.live) continue;
        int32_t entry = Step(c);
        if (entry < 0) continue;
        LookupResult r = Result(entry);
        c.writer.Append(r.code);
        c.pos += r.consumed;
        if (c.pos < c.key.size()) {
          StartLookup(c);
        } else {
          out[c.out_idx] = c.writer.TakeBytes();
          bits[c.out_idx] = c.writer.total_bits();
          if (!load(c)) nlive--;
        }
      }
    }
  }

  size_t NumEntries() const override { return num_entries_; }

  size_t MemoryBytes() const override {
    return memory_ + payload_.capacity() * sizeof(PackedCode);
  }

  size_t MaxLookahead() const override {
    return std::numeric_limits<size_t>::max();
  }

  const char* Name() const override { return "art"; }

 private:
  static constexpr int kGroup = 8;

  /// One in-flight lookup of the interleaved walk: output state plus the
  /// micro-state of the descent (mirrors LookupEntry's locals).
  struct Cursor {
    std::string_view key;
    size_t out_idx = 0;
    size_t pos = 0;  ///< encode position within key
    BitWriter writer;
    bool live = false;
    // descent micro-state
    bool resolving = false;
    int32_t cand_entry = -1;
    const ArtNode* cand_subtree = nullptr;
    const ArtNode* node = nullptr;
    size_t d = 0;
  };

  void StartLookup(Cursor& c) const {
    c.resolving = false;
    c.cand_entry = -1;
    c.cand_subtree = nullptr;
    c.node = root_;
    c.d = 0;
  }

  /// Advances one lookup by one node visit. Returns the resolved entry id,
  /// or -1 while the descent is still in flight. Step-for-step equivalent
  /// to LookupEntry (pinned by simd_equivalence_test).
  int32_t Step(Cursor& c) const {
    if (c.resolving) {
      // Max-descent: the largest boundary in the candidate subtree.
      const ArtNode* mc = PrevChild(c.node, 256);
      if (!mc) {
        HOPE_DCHECK(c.node->term_entry >= 0);
        return c.node->term_entry;
      }
      c.node = mc;
      simd::PrefetchRead(mc);
      return -1;
    }
    const ArtNode* node = c.node;
    if (node->term_entry >= 0) {
      c.cand_entry = node->term_entry;
      c.cand_subtree = nullptr;
    }
    std::string_view rest = c.key.substr(c.pos);
    if (c.d >= rest.size()) return Finish(c);
    uint8_t b = static_cast<uint8_t>(rest[c.d]);
    if (const ArtNode* prev = PrevChild(node, b)) c.cand_subtree = prev;
    const ArtNode* next = FindChild(node, b);
    if (!next) return Finish(c);
    c.node = next;
    c.d++;
    simd::PrefetchRead(next);
    return -1;
  }

  /// The walk diverged (or the key ran out): either the candidate is an
  /// already-resolved terminator entry, or switch to max-descent of the
  /// candidate sibling subtree.
  int32_t Finish(Cursor& c) const {
    if (c.cand_subtree) {
      c.resolving = true;
      c.node = c.cand_subtree;
      simd::PrefetchRead(c.node);
      return -1;
    }
    HOPE_DCHECK_MSG(c.cand_entry >= 0,
                    "complete dictionary: \"\" is a boundary");
    return c.cand_entry;
  }

  int32_t LookupEntry(std::string_view src) const {
    int32_t cand_entry = -1;
    const ArtNode* cand_subtree = nullptr;

    const ArtNode* node = root_;
    size_t d = 0;
    while (true) {
      if (node->term_entry >= 0) {
        cand_entry = node->term_entry;
        cand_subtree = nullptr;
      }
      if (d >= src.size()) break;
      uint8_t b = static_cast<uint8_t>(src[d]);
      if (const ArtNode* prev = PrevChild(node, b)) cand_subtree = prev;
      const ArtNode* next = FindChild(node, b);
      if (!next) break;
      node = next;
      d++;
    }
    if (cand_subtree) {
      // Max-descent: the largest boundary in the subtree.
      const ArtNode* cur = cand_subtree;
      while (const ArtNode* mc = PrevChild(cur, 256)) cur = mc;
      HOPE_DCHECK(cur->term_entry >= 0);
      return cur->term_entry;
    }
    HOPE_DCHECK_MSG(cand_entry >= 0,
                    "complete dictionary: \"\" is a boundary");
    return cand_entry;
  }

  LookupResult Result(int32_t entry) const {
    return UnpackEntry(payload_[entry]);
  }

  ArtNode* NewNode(NodeType type) {
    memory_ += NodeSize(type);
    switch (type) {
      case kNode4: {
        auto* n = new ArtNode4();
        n->type = kNode4;
        return n;
      }
      case kNode16: {
        auto* n = new ArtNode16();
        n->type = kNode16;
        return n;
      }
      case kNode48: {
        auto* n = new ArtNode48();
        n->type = kNode48;
        std::memset(n->child_index, 0xFF, sizeof(n->child_index));
        return n;
      }
      case kNode256: {
        auto* n = new ArtNode256();
        n->type = kNode256;
        std::memset(n->children, 0, sizeof(n->children));
        return n;
      }
    }
    return nullptr;
  }

  void Insert(const std::string& boundary, int32_t entry) {
    ArtNode** slot = &root_;
    for (char ch : boundary) {
      uint8_t b = static_cast<uint8_t>(ch);
      ArtNode* node = *slot;
      if (ArtNode** child_slot = FindChildSlot(node, b)) {
        slot = child_slot;
        continue;
      }
      if (IsFull(node)) {
        node = Grow(node);
        *slot = node;
      }
      slot = AddChild(node, b, NewNode(kNode4));
    }
    (*slot)->term_entry = entry;
  }

  static ArtNode** FindChildSlot(ArtNode* node, uint8_t b) {
    switch (node->type) {
      case kNode4: {
        auto* n = static_cast<ArtNode4*>(node);
        for (int i = 0; i < n->num_children; i++)
          if (n->keys[i] == b) return &n->children[i];
        return nullptr;
      }
      case kNode16: {
        auto* n = static_cast<ArtNode16*>(node);
        for (int i = 0; i < n->num_children; i++)
          if (n->keys[i] == b) return &n->children[i];
        return nullptr;
      }
      case kNode48: {
        auto* n = static_cast<ArtNode48*>(node);
        return n->child_index[b] == 0xFF ? nullptr
                                         : &n->children[n->child_index[b]];
      }
      case kNode256: {
        auto* n = static_cast<ArtNode256*>(node);
        return n->children[b] ? &n->children[b] : nullptr;
      }
    }
    return nullptr;
  }

  static bool IsFull(const ArtNode* node) {
    switch (node->type) {
      case kNode4: return node->num_children >= 4;
      case kNode16: return node->num_children >= 16;
      case kNode48: return node->num_children >= 48;
      case kNode256: return false;
    }
    return false;
  }

  /// Adds a child to a non-full node; returns the slot holding the child.
  static ArtNode** AddChild(ArtNode* node, uint8_t b, ArtNode* child) {
    switch (node->type) {
      case kNode4: {
        auto* n = static_cast<ArtNode4*>(node);
        int pos = InsertSorted(n->keys, n->children, n->num_children, b,
                               child);
        n->num_children++;
        return &n->children[pos];
      }
      case kNode16: {
        auto* n = static_cast<ArtNode16*>(node);
        int pos = InsertSorted(n->keys, n->children, n->num_children, b,
                               child);
        n->num_children++;
        return &n->children[pos];
      }
      case kNode48: {
        auto* n = static_cast<ArtNode48*>(node);
        n->child_index[b] = static_cast<uint8_t>(n->num_children);
        n->children[n->num_children] = child;
        SetBit256(n->bm, b);
        return &n->children[n->num_children++];
      }
      case kNode256: {
        auto* n = static_cast<ArtNode256*>(node);
        n->children[b] = child;
        n->num_children++;
        SetBit256(n->bm, b);
        return &n->children[b];
      }
    }
    return nullptr;
  }

  template <size_t N>
  static int InsertSorted(uint8_t (&keys)[N], ArtNode* (&children)[N],
                          int count, uint8_t b, ArtNode* child) {
    int pos = count;
    while (pos > 0 && keys[pos - 1] > b) {
      keys[pos] = keys[pos - 1];
      children[pos] = children[pos - 1];
      pos--;
    }
    keys[pos] = b;
    children[pos] = child;
    return pos;
  }

  /// Grows a full node to the next size class and returns the new node;
  /// the caller fixes the parent slot.
  ArtNode* Grow(ArtNode* old) {
    ArtNode* bigger = nullptr;
    switch (old->type) {
      case kNode4: {
        auto* o = static_cast<ArtNode4*>(old);
        auto* n = static_cast<ArtNode16*>(NewNode(kNode16));
        for (int i = 0; i < 4; i++) {
          n->keys[i] = o->keys[i];
          n->children[i] = o->children[i];
        }
        n->num_children = 4;
        bigger = n;
        break;
      }
      case kNode16: {
        auto* o = static_cast<ArtNode16*>(old);
        auto* n = static_cast<ArtNode48*>(NewNode(kNode48));
        for (int i = 0; i < 16; i++) {
          n->child_index[o->keys[i]] = static_cast<uint8_t>(i);
          n->children[i] = o->children[i];
          SetBit256(n->bm, o->keys[i]);
        }
        n->num_children = 16;
        bigger = n;
        break;
      }
      case kNode48: {
        auto* o = static_cast<ArtNode48*>(old);
        auto* n = static_cast<ArtNode256*>(NewNode(kNode256));
        for (int b = 0; b < 256; b++)
          if (o->child_index[b] != 0xFF)
            n->children[b] = o->children[o->child_index[b]];
        std::memcpy(n->bm, o->bm, sizeof(n->bm));
        n->num_children = o->num_children;
        bigger = n;
        break;
      }
      case kNode256:
        HOPE_CHECK_MSG(false, "Node256 never grows");
        return old;
    }
    bigger->term_entry = old->term_entry;
    memory_ -= NodeSize(old->type);
    DeleteNode(old);
    return bigger;
  }

  void Free(ArtNode* node) {
    if (!node) return;
    switch (node->type) {
      case kNode4: {
        auto* n = static_cast<ArtNode4*>(node);
        for (int i = 0; i < n->num_children; i++) Free(n->children[i]);
        break;
      }
      case kNode16: {
        auto* n = static_cast<ArtNode16*>(node);
        for (int i = 0; i < n->num_children; i++) Free(n->children[i]);
        break;
      }
      case kNode48: {
        auto* n = static_cast<ArtNode48*>(node);
        for (int i = 0; i < n->num_children; i++) Free(n->children[i]);
        break;
      }
      case kNode256: {
        auto* n = static_cast<ArtNode256*>(node);
        for (int b = 0; b < 256; b++) Free(n->children[b]);
        break;
      }
    }
    DeleteNode(node);
  }

  ArtNode* root_ = nullptr;
  std::vector<PackedCode> payload_;
  size_t num_entries_ = 0;
  size_t memory_ = 0;
};

}  // namespace

std::unique_ptr<Dictionary> MakeArtDict(const std::vector<DictEntry>& entries) {
  return std::make_unique<ArtDict>(entries);
}

}  // namespace hope
