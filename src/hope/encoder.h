// The Encoder (§4.2): repeatedly looks the remaining source string up in
// the dictionary, concatenates the returned codes into 64-bit buffers,
// and emits the zero-padded byte string. Includes the batch-encoding
// optimization for sorted key runs (Appendix B): the shared prefix of
// consecutive keys is encoded once when the dictionary's lookahead allows
// proving the lookups are identical.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "hope/dictionary.h"

namespace hope {

/// Append-only bit writer backed by a 64-bit accumulator.
class BitWriter {
 public:
  void Clear() {
    buf_.clear();
    acc_ = 0;
    acc_bits_ = 0;
    total_bits_ = 0;
  }

  /// Seeds the writer with the first `bits` bits of an existing encoding.
  void InitFromPrefix(const std::string& bytes, size_t bits);

  void Append(Code code);

  /// Zero-pads to a byte boundary and returns the bytes; the writer keeps
  /// its state so the caller can read total_bits().
  std::string TakeBytes();

  size_t total_bits() const { return total_bits_; }

 private:
  std::string buf_;
  uint64_t acc_ = 0;   // left-aligned pending bits
  int acc_bits_ = 0;   // number of pending bits (< 64)
  size_t total_bits_ = 0;

  void FlushAcc();
};

/// Stateless encoder over a dictionary.
class Encoder {
 public:
  explicit Encoder(std::unique_ptr<Dictionary> dict)
      : dict_(std::move(dict)) {}

  /// Encodes one key. The result is the code bit string zero-padded to a
  /// byte boundary; `bit_len` (optional) receives the exact bit length.
  std::string Encode(std::string_view key, size_t* bit_len = nullptr) const;

  /// Encodes a sorted run of keys, skipping re-encoding of shared
  /// prefixes where the dictionary's bounded lookahead proves the lookups
  /// identical (Appendix B). Falls back to per-key encoding for
  /// unbounded-lookahead dictionaries (ALM family).
  std::vector<std::string> EncodeBatch(const std::vector<std::string>& keys,
                                       size_t* total_bits = nullptr) const;

  /// Pair encoding for closed-range queries (batch of two).
  std::pair<std::string, std::string> EncodePair(std::string_view a,
                                                 std::string_view b) const;

  const Dictionary& dict() const { return *dict_; }

 private:
  /// One lookup step boundary: the source position where a lookup started
  /// and the bit position of the output before its code was appended.
  struct TracePoint {
    uint32_t src_pos;
    uint32_t bit_pos;
  };

  std::string EncodeWithTrace(std::string_view key, size_t resume_src,
                              BitWriter* writer,
                              std::vector<TracePoint>* trace) const;

  std::unique_ptr<Dictionary> dict_;
};

}  // namespace hope
