// The Encoder (§4.2): repeatedly looks the remaining source string up in
// the dictionary, concatenates the returned codes into 64-bit buffers,
// and emits the zero-padded byte string. Includes the batch-encoding
// optimization for sorted key runs (Appendix B): the shared prefix of
// consecutive keys is encoded once when the dictionary's lookahead allows
// proving the lookups are identical.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "hope/bit_writer.h"
#include "hope/dictionary.h"

namespace hope {

/// Observes every completed encode. Implementations must be thread-safe:
/// EncodeBatch may invoke the observer from its worker threads, and
/// multiple readers may share one encoder. Used by the dynamic dictionary
/// manager to sample recent keys and track the achieved compression rate
/// without the core library depending on it.
class EncodeObserver {
 public:
  virtual ~EncodeObserver() = default;
  virtual void OnEncode(std::string_view key, size_t bit_len) = 0;
};

/// Stateless encoder over a dictionary.
class Encoder {
 public:
  explicit Encoder(std::unique_ptr<Dictionary> dict)
      : dict_(std::move(dict)) {}

  /// Encodes one key. The result is the code bit string zero-padded to a
  /// byte boundary; `bit_len` (optional) receives the exact bit length.
  std::string Encode(std::string_view key, size_t* bit_len = nullptr) const;

  /// Encodes a sorted run of keys, skipping re-encoding of shared
  /// prefixes where the dictionary's bounded lookahead proves the lookups
  /// identical (Appendix B). Runs without reusable prefixes (including
  /// the unbounded-lookahead ALM family) go through the dictionary's
  /// multi-key path, which interleaves independent descents to overlap
  /// cache misses.
  ///
  /// `num_threads` fans the batch out over contiguous chunks (keys are
  /// independent, so the output is byte-identical for any thread count):
  /// 1 = sequential, 0 = hardware concurrency. Batches smaller than
  /// kParallelBatchMin always take the deterministic sequential path.
  std::vector<std::string> EncodeBatch(const std::vector<std::string>& keys,
                                       size_t* total_bits = nullptr,
                                       unsigned num_threads = 1) const;

  /// Pair encoding for closed-range queries (batch of two).
  std::pair<std::string, std::string> EncodePair(std::string_view a,
                                                 std::string_view b) const;

  const Dictionary& dict() const { return *dict_; }

  /// Installs a stats hook invoked after every Encode/EncodeBatch key
  /// (nullptr detaches). Not owned; must outlive the encoder and be set
  /// before the encoder is shared across threads.
  void set_observer(EncodeObserver* observer) { observer_ = observer; }
  EncodeObserver* observer() const { return observer_; }

  /// Minimum batch size before EncodeBatch considers spawning threads.
  static constexpr size_t kParallelBatchMin = 4096;

 private:
  std::string EncodeWithTrace(std::string_view key, size_t resume_src,
                              BitWriter* writer,
                              std::vector<EncodeTrace>* trace) const;

  /// Sequential batch core over keys[begin, end), writing into
  /// out[begin, end) (preallocated by the caller). Shared-prefix reuse
  /// applies within the range; `bits_sum` receives the range's bit total.
  void EncodeRange(const std::vector<std::string>& keys, size_t begin,
                   size_t end, std::vector<std::string>* out,
                   size_t* bits_sum) const;

  std::unique_ptr<Dictionary> dict_;
  EncodeObserver* observer_ = nullptr;
};

}  // namespace hope
