// Double-Char selector (§3.3): fixed-length double-character intervals
// [c0c1, c0c1+1), plus one terminator interval [c0∅, c0'\0') per first
// byte that covers the lone one-byte string "c0" (the paper's ∅
// terminator that fills the gaps between [a\xff, b) and [b\0, b\1)).
#include "hope/symbol_selector.h"

namespace hope {

namespace {

class DoubleCharSelector : public SymbolSelector {
 public:
  std::vector<IntervalSpec> Select(const std::vector<std::string>& samples,
                                   size_t dict_limit) override {
    (void)samples;
    (void)dict_limit;  // fixed 256*257-entry dictionary
    std::vector<IntervalSpec> intervals;
    intervals.reserve(256 * 257);
    for (int c0 = 0; c0 < 256; c0++) {
      // Terminator entry: covers exactly the string "c0".
      IntervalSpec term;
      term.left_bound =
          c0 == 0 ? std::string() : std::string(1, static_cast<char>(c0));
      term.symbol = std::string(1, static_cast<char>(c0));
      intervals.push_back(std::move(term));
      for (int c1 = 0; c1 < 256; c1++) {
        IntervalSpec spec;
        spec.left_bound.push_back(static_cast<char>(c0));
        spec.left_bound.push_back(static_cast<char>(c1));
        spec.symbol = spec.left_bound;
        intervals.push_back(std::move(spec));
      }
    }
    return intervals;
  }
};

}  // namespace

std::unique_ptr<SymbolSelector> MakeDoubleCharSelector() {
  return std::make_unique<DoubleCharSelector>();
}

}  // namespace hope
