#include "hope/hope.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "hope/code_assigner.h"
#include "hope/symbol_selector.h"

namespace hope {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::unique_ptr<SymbolSelector> MakeSelector(Scheme scheme) {
  switch (scheme) {
    case Scheme::kSingleChar: return MakeSingleCharSelector();
    case Scheme::kDoubleChar: return MakeDoubleCharSelector();
    case Scheme::kThreeGrams: return MakeNGramSelector(3);
    case Scheme::kFourGrams: return MakeNGramSelector(4);
    case Scheme::kAlm: return MakeAlmSelector();
    case Scheme::kAlmImproved: return MakeAlmImprovedSelector();
  }
  throw std::invalid_argument("unknown scheme");
}

DictImpl DefaultImpl(Scheme scheme) {
  switch (scheme) {
    case Scheme::kSingleChar:
    case Scheme::kDoubleChar: return DictImpl::kArray;
    case Scheme::kThreeGrams:
    case Scheme::kFourGrams: return DictImpl::kBitmapTrie;
    case Scheme::kAlm:
    case Scheme::kAlmImproved: return DictImpl::kArt;
  }
  return DictImpl::kBinarySearch;
}

bool UsesHuTucker(Scheme scheme) { return scheme != Scheme::kAlm; }

}  // namespace

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kSingleChar: return "Single-Char";
    case Scheme::kDoubleChar: return "Double-Char";
    case Scheme::kAlm: return "ALM";
    case Scheme::kThreeGrams: return "3-Grams";
    case Scheme::kFourGrams: return "4-Grams";
    case Scheme::kAlmImproved: return "ALM-Improved";
  }
  return "?";
}

std::vector<DictEntry> BuildDictEntries(
    Scheme scheme, const std::vector<std::string>& samples,
    size_t dict_size_limit, BuildStats* stats) {
  auto t0 = std::chrono::steady_clock::now();
  auto selector = MakeSelector(scheme);
  std::vector<IntervalSpec> intervals =
      selector->Select(samples, dict_size_limit);
  // The test-encode pass that derives interval access probabilities is
  // part of symbol selection (§4.2).
  if (UsesHuTucker(scheme)) TestEncodeWeights(samples, &intervals);
  double select_s = SecondsSince(t0);

  t0 = std::chrono::steady_clock::now();
  std::vector<Code> codes;
  if (UsesHuTucker(scheme)) {
    std::vector<double> weights;
    weights.reserve(intervals.size());
    for (const auto& spec : intervals) weights.push_back(spec.weight);
    codes = AssignHuTuckerCodes(weights);
  } else {
    codes = AssignFixedLengthCodes(intervals.size());
  }
  double assign_s = SecondsSince(t0);

  std::vector<DictEntry> entries;
  entries.reserve(intervals.size());
  for (size_t i = 0; i < intervals.size(); i++) {
    entries.push_back({std::move(intervals[i].left_bound),
                       static_cast<uint32_t>(intervals[i].symbol.size()),
                       codes[i]});
  }
  if (stats) {
    stats->symbol_select_seconds = select_s;
    stats->code_assign_seconds = assign_s;
    stats->num_entries = entries.size();
  }
  return entries;
}

std::unique_ptr<Hope> Hope::FromEntries(Scheme scheme,
                                        std::vector<DictEntry> entries,
                                        DictImpl impl, BuildStats* stats) {
  auto decoder = std::make_unique<Decoder>(entries);
  auto t0 = std::chrono::steady_clock::now();
  if (impl == DictImpl::kDefault) impl = DefaultImpl(scheme);
  std::unique_ptr<Dictionary> dict;
  switch (impl) {
    case DictImpl::kArray:
      dict = MakeArrayDict(entries,
                           scheme == Scheme::kSingleChar ? 1 : 2);
      break;
    case DictImpl::kBitmapTrie:
      dict = MakeBitmapTrieDict(entries,
                                scheme == Scheme::kThreeGrams ? 3 : 4);
      break;
    case DictImpl::kArt:
      dict = MakeArtDict(entries);
      break;
    case DictImpl::kBinarySearch:
    case DictImpl::kDefault:
      dict = MakeBinarySearchDict(entries);
      break;
  }
  if (stats) {
    stats->dict_build_seconds = SecondsSince(t0);
    stats->dict_memory_bytes = dict->MemoryBytes();
  }
  auto encoder = std::make_unique<Encoder>(std::move(dict));
  return std::unique_ptr<Hope>(new Hope(scheme, std::move(encoder),
                                        std::move(decoder),
                                        std::move(entries)));
}

std::unique_ptr<Hope> Hope::Build(Scheme scheme,
                                  const std::vector<std::string>& samples,
                                  size_t dict_size_limit, BuildStats* stats,
                                  DictImpl impl) {
  std::vector<DictEntry> entries =
      BuildDictEntries(scheme, samples, dict_size_limit, stats);
  return FromEntries(scheme, std::move(entries), impl, stats);
}

namespace {

constexpr char kMagic[] = "HOPEDICT1";
constexpr size_t kMagicLen = sizeof(kMagic) - 1;

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; i++)
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; i++)
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

bool GetU32(std::string_view* in, uint32_t* v) {
  if (in->size() < 4) return false;
  *v = 0;
  for (int i = 0; i < 4; i++)
    *v |= static_cast<uint32_t>(static_cast<uint8_t>((*in)[i])) << (8 * i);
  in->remove_prefix(4);
  return true;
}

bool GetU64(std::string_view* in, uint64_t* v) {
  if (in->size() < 8) return false;
  *v = 0;
  for (int i = 0; i < 8; i++)
    *v |= static_cast<uint64_t>(static_cast<uint8_t>((*in)[i])) << (8 * i);
  in->remove_prefix(8);
  return true;
}

}  // namespace

std::string Hope::Serialize() const {
  std::string out(kMagic, kMagicLen);
  out.push_back(static_cast<char>(scheme_));
  PutU32(&out, static_cast<uint32_t>(entries_.size()));
  for (const DictEntry& e : entries_) {
    PutU32(&out, static_cast<uint32_t>(e.left_bound.size()));
    out += e.left_bound;
    PutU32(&out, e.symbol_len);
    PutU64(&out, e.code.bits);
    out.push_back(static_cast<char>(e.code.len));
  }
  return out;
}

std::unique_ptr<Hope> Hope::Deserialize(std::string_view bytes) {
  if (bytes.size() < kMagicLen + 5 ||
      bytes.substr(0, kMagicLen) != std::string_view(kMagic, kMagicLen))
    return nullptr;
  bytes.remove_prefix(kMagicLen);
  auto scheme = static_cast<Scheme>(bytes[0]);
  if (static_cast<uint8_t>(scheme) > static_cast<uint8_t>(Scheme::kAlmImproved))
    return nullptr;
  bytes.remove_prefix(1);
  uint32_t count = 0;
  if (!GetU32(&bytes, &count)) return nullptr;
  // Each entry occupies at least 4+4+8+1 bytes; reject impossible counts
  // before reserving (a corrupted count must not trigger a huge allocation).
  if (static_cast<uint64_t>(count) * 17 > bytes.size()) return nullptr;
  std::vector<DictEntry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    uint32_t blen = 0, symlen = 0;
    uint64_t code_bits = 0;
    if (!GetU32(&bytes, &blen) || bytes.size() < blen) return nullptr;
    DictEntry e;
    e.left_bound.assign(bytes.data(), blen);
    bytes.remove_prefix(blen);
    if (!GetU32(&bytes, &symlen)) return nullptr;
    // The symbol is a prefix of the left bound (the "" entry stands for
    // the 1-byte symbol '\0'); a lookup must consume at least one byte.
    if (symlen < 1 || symlen > std::max<uint32_t>(1, blen)) return nullptr;
    e.symbol_len = symlen;
    if (!GetU64(&bytes, &code_bits) || bytes.empty()) return nullptr;
    e.code.bits = code_bits;
    e.code.len = static_cast<uint8_t>(bytes[0]);
    bytes.remove_prefix(1);
    // Codes are 1..64 bits (a zero-length code would encode symbols to
    // nothing, silently breaking the decode round-trip), left-aligned,
    // zero beyond `len` (the BitWriter relies on that invariant for
    // branch-free ORs).
    if (e.code.len < 1 || e.code.len > 64) return nullptr;
    if (e.code.len < 64 &&
        (e.code.bits & (~uint64_t{0} >> e.code.len)) != 0)
      return nullptr;
    if (i > 0 && !(entries.back().left_bound < e.left_bound)) return nullptr;
    entries.push_back(std::move(e));
  }
  if (!bytes.empty()) return nullptr;
  if (entries.empty() || !entries[0].left_bound.empty()) return nullptr;
  try {
    return FromEntries(scheme, std::move(entries), DictImpl::kDefault,
                       nullptr);
  } catch (const std::exception&) {
    // Structurally invalid for the scheme's dictionary (e.g. wrong entry
    // count for an array dictionary).
    return nullptr;
  }
}

std::unique_ptr<Hope> Hope::Clone() const {
  return FromEntries(scheme_, entries_, DictImpl::kDefault, nullptr);
}

double Hope::CompressionRate(const std::vector<std::string>& keys) const {
  size_t original = 0, compressed_bits = 0;
  for (const auto& key : keys) {
    size_t bits = 0;
    Encode(key, &bits);
    original += key.size();
    compressed_bits += (bits + 7) / 8 * 8;
  }
  if (compressed_bits == 0) return 1.0;
  return static_cast<double>(original) /
         (static_cast<double>(compressed_bits) / 8.0);
}

}  // namespace hope
