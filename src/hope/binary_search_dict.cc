// Sorted-array dictionary with binary-search lookup. Works for every
// scheme; used as the ablation baseline the paper compares the
// bitmap-trie against (§6.1: "2.3x faster than binary-searching the
// dictionary entries").
#include <algorithm>
#include <string>

#include "hope/dictionary.h"

namespace hope {

namespace {

class BinarySearchDict : public Dictionary {
 public:
  explicit BinarySearchDict(std::vector<DictEntry> entries) {
    payload_.reserve(entries.size());
    offsets_.reserve(entries.size() + 1);
    for (auto& e : entries) {
      offsets_.push_back(static_cast<uint32_t>(blob_.size()));
      blob_ += e.left_bound;
      payload_.push_back(PackEntry(e));
    }
    offsets_.push_back(static_cast<uint32_t>(blob_.size()));
    num_entries_ = entries.size();
  }

  LookupResult Lookup(std::string_view src) const override {
    // Last boundary <= src. Invariant: boundary(lo) <= src (boundary 0 is
    // "", which is <= everything).
    size_t lo = 0, hi = num_entries_;
    while (hi - lo > 1) {
      size_t mid = (lo + hi) / 2;
      if (Boundary(mid) <= src)
        lo = mid;
      else
        hi = mid;
    }
    return UnpackEntry(payload_[lo]);
  }

  size_t NumEntries() const override { return num_entries_; }

  size_t MemoryBytes() const override {
    return blob_.capacity() + offsets_.capacity() * sizeof(uint32_t) +
           payload_.capacity() * sizeof(PackedCode);
  }

  size_t MaxLookahead() const override {
    return std::numeric_limits<size_t>::max();
  }

  const char* Name() const override { return "binary-search"; }

 private:
  std::string_view Boundary(size_t i) const {
    return std::string_view(blob_).substr(offsets_[i],
                                          offsets_[i + 1] - offsets_[i]);
  }

  std::string blob_;
  std::vector<uint32_t> offsets_;
  std::vector<PackedCode> payload_;
  size_t num_entries_ = 0;
};

}  // namespace

std::unique_ptr<Dictionary> MakeBinarySearchDict(
    std::vector<DictEntry> entries) {
  return std::make_unique<BinarySearchDict>(std::move(entries));
}

}  // namespace hope
