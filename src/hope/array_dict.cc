// Array dictionary for the fixed-length-interval schemes (§4.2).
//
// Single-Char: 256 slots, one per byte. Double-Char: 256*257 slots — for
// each first byte c0, slot c0*257 is the terminator entry ∅ (covering the
// lone one-byte string "c0") followed by 256 slots for c0c1. Symbols and
// boundaries are implied by the slot index, so an entry stores only the
// code and the symbol length; a lookup is a single array access.
#include <stdexcept>

#include "hope/dictionary.h"

namespace hope {

namespace {

class ArrayDict : public Dictionary {
 public:
  ArrayDict(const std::vector<DictEntry>& entries, int chars)
      : chars_(chars) {
    size_t expected = chars == 1 ? 256 : 256 * 257;
    if (entries.size() != expected)
      throw std::invalid_argument("ArrayDict: wrong entry count");
    slots_.resize(expected);
    for (size_t i = 0; i < entries.size(); i++) {
      // The interval layout is fixed, so the sorted entry order *is* the
      // slot order — and the slot dictates the symbol length. A
      // deserialized blob that disagrees must be rejected here: a
      // terminator slot claiming 2 consumed bytes would overshoot a
      // 1-byte tail in the encode loop (this was an assert, compiled out
      // exactly in the release builds that load untrusted blobs).
      if (entries[i].symbol_len != SlotSymbolLen(i))
        throw std::invalid_argument("ArrayDict: symbol_len mismatch");
      slots_[i] = PackEntry(entries[i]);
    }
  }

  LookupResult Lookup(std::string_view src) const override {
    size_t idx;
    if (chars_ == 1) {
      idx = static_cast<uint8_t>(src[0]);
    } else {
      size_t c0 = static_cast<uint8_t>(src[0]);
      idx = src.size() >= 2 ? c0 * 257 + static_cast<uint8_t>(src[1]) + 1
                            : c0 * 257;  // terminator entry
    }
    return UnpackEntry(slots_[idx]);
  }

  size_t NumEntries() const override { return slots_.size(); }

  size_t MemoryBytes() const override {
    return slots_.capacity() * sizeof(PackedCode);
  }

  size_t MaxLookahead() const override { return static_cast<size_t>(chars_); }

  const char* Name() const override {
    return chars_ == 1 ? "array-1" : "array-2";
  }

  // Devirtualized hot path: the whole key is consumed with direct slot
  // indexing — no virtual dispatch per symbol.
  void EncodeSpan(std::string_view src, size_t base, BitWriter* writer,
                  std::vector<EncodeTrace>* trace) const override {
    if (trace)
      EncodeSpanImpl<true>(src, base, writer, trace);
    else
      EncodeSpanImpl<false>(src, base, writer, nullptr);
  }

 private:
  template <bool kTrace>
  void EncodeSpanImpl(std::string_view src, size_t pos, BitWriter* writer,
                      std::vector<EncodeTrace>* trace) const {
    const size_t n = src.size();
    if (chars_ == 1) {
      while (pos < n) {
        if constexpr (kTrace)
          trace->push_back({static_cast<uint32_t>(pos),
                            static_cast<uint32_t>(writer->total_bits())});
        writer->Append(
            UnpackEntry(slots_[static_cast<uint8_t>(src[pos])]).code);
        pos++;
      }
      return;
    }
    while (pos < n) {
      if constexpr (kTrace)
        trace->push_back({static_cast<uint32_t>(pos),
                          static_cast<uint32_t>(writer->total_bits())});
      size_t c0 = static_cast<uint8_t>(src[pos]);
      size_t idx = n - pos >= 2
                       ? c0 * 257 + static_cast<uint8_t>(src[pos + 1]) + 1
                       : c0 * 257;  // terminator entry
      LookupResult r = UnpackEntry(slots_[idx]);
      writer->Append(r.code);
      pos += r.consumed;
    }
  }

  uint8_t SlotSymbolLen(size_t idx) const {
    if (chars_ == 1) return 1;
    return idx % 257 == 0 ? 1 : 2;
  }

  std::vector<PackedCode> slots_;
  int chars_;
};

}  // namespace

std::unique_ptr<Dictionary> MakeArrayDict(const std::vector<DictEntry>& entries,
                                          int chars) {
  return std::make_unique<ArrayDict>(entries, chars);
}

}  // namespace hope
