// 3-Grams / 4-Grams selector (§3.3): VIVC schemes whose interval
// boundaries are n-character strings. The selector picks the top
// dict_limit/2 most frequent n-grams from the samples and fills every gap
// between adjacent selected grams with gap intervals.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/str_utils.h"
#include "hope/symbol_selector.h"

namespace hope {

namespace {

class NGramSelector : public SymbolSelector {
 public:
  explicit NGramSelector(int n) : n_(n) {}

  std::vector<IntervalSpec> Select(const std::vector<std::string>& samples,
                                   size_t dict_limit) override {
    // Count every n-byte substring occurrence.
    std::unordered_map<std::string, uint64_t> counts;
    counts.reserve(1 << 16);
    for (const std::string& key : samples) {
      if (key.size() < static_cast<size_t>(n_)) continue;
      for (size_t i = 0; i + n_ <= key.size(); i++)
        counts[key.substr(i, n_)]++;
    }

    // Top dict_limit/2 by frequency (gaps take roughly the other half).
    size_t target = std::max<size_t>(1, dict_limit / 2);
    std::vector<std::pair<uint64_t, std::string>> ranked;
    ranked.reserve(counts.size());
    for (auto& [gram, cnt] : counts) ranked.emplace_back(cnt, gram);
    if (ranked.size() > target) {
      std::nth_element(ranked.begin(), ranked.begin() + target, ranked.end(),
                       std::greater<>());
      ranked.resize(target);
    }
    std::vector<std::string> grams;
    grams.reserve(ranked.size());
    for (auto& [cnt, gram] : ranked) grams.push_back(std::move(gram));
    std::sort(grams.begin(), grams.end());

    // Build intervals: a [g, PrefixUpperBound(g)) interval per selected
    // gram, and gap intervals between them. Same-length grams guarantee
    // PrefixUpperBound(g) <= next gram.
    std::vector<IntervalSpec> intervals;
    intervals.reserve(grams.size() * 2 + 260);
    std::string cur;  // "" = -infinity
    bool covered_to_inf = false;
    for (const std::string& g : grams) {
      AddGapIntervals(cur, g, &intervals);
      intervals.push_back({g, g, 0});
      cur = PrefixUpperBound(g);
      if (cur.empty()) {  // g was all-0xFF: covered to +infinity
        covered_to_inf = true;
        break;
      }
    }
    if (!covered_to_inf) AddGapIntervals(cur, std::string(), &intervals);
    return intervals;
  }

 private:
  int n_;
};

}  // namespace

std::unique_ptr<SymbolSelector> MakeNGramSelector(int n) {
  return std::make_unique<NGramSelector>(n);
}

}  // namespace hope
