// Bitmap-trie dictionary for the 3-Grams / 4-Grams schemes (§4.2, Fig. 6).
//
// An n-level trie stored as per-level node arrays. Each node holds a
// 256-bit bitmap of its branches plus the rank (index) of its first child
// in the next level, so following a branch costs one popcount. Boundaries
// shorter than n bytes terminate at an internal node (the paper borrows a
// bit from the counter for the terminator ∅; we store an explicit entry
// id). A lookup finds the last boundary <= src by walking the trie and
// falling back to the largest smaller branch when the walk diverges.
//
// The hot path is devirtualized (EncodeSpan consumes a whole key in one
// virtual call) and fuses the top two trie levels into a precomputed
// dispatch table: one 16-bit load on (byte0, byte1) replaces the first
// two node visits — bitmap tests, ranks and the candidate bookkeeping —
// and pairs that diverge within those levels collapse to their fully
// resolved predecessor entry. A parallel 256-entry table answers the
// 1-byte tail lookups every key ends with. Batch encoding can additionally
// interleave a group
// of independent descents (EncodeMulti) so their cache misses overlap;
// that only pays once the trie outgrows the cache (see
// Dictionary::UseInterleavedDescent).
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "common/check.h"
#include "common/simd.h"
#include "hope/dictionary.h"

namespace hope {

namespace {

struct TrieNode {
  uint64_t bm[4] = {0, 0, 0, 0};
  uint32_t child_base = 0;  ///< index of first child in the next level
  int32_t term_entry = -1;  ///< entry id when the path itself is a boundary
  uint32_t entry_base = 0;  ///< last level: entry id of the first set bit
  /// Cumulative popcount of bm[0..w): turns RankBelow into one byte load
  /// plus one masked popcount (the struct had 4 bytes of padding anyway).
  /// cum[3] <= 192, so uint8_t never overflows. Filled by FinishNode once
  /// the bitmap is complete.
  uint8_t cum[4] = {0, 0, 0, 0};

  void SetBit(unsigned b) { bm[b >> 6] |= uint64_t{1} << (63 - (b & 63)); }
  bool GetBit(unsigned b) const {
    return (bm[b >> 6] >> (63 - (b & 63))) & 1;
  }
  void FinishNode() {
    unsigned r = 0;
    for (unsigned w = 0; w < 4; w++) {
      cum[w] = static_cast<uint8_t>(r);
      r += simd::PopCount64(bm[w]);
    }
  }
  /// Number of set bits strictly below position b (b <= 256). The
  /// template variant lets hot loops hoist the runtime POPCNT probe
  /// (simd::HavePopcnt) and inline the hardware instruction.
  template <bool Hw>
  unsigned RankBelowT(unsigned b) const {
    if (b >= 256) return Total();
    unsigned w = b >> 6, bit = b & 63;
    unsigned r = cum[w];
    if (bit)
      r += static_cast<unsigned>(simd::PopCount64T<Hw>(bm[w] >> (64 - bit)));
    return r;
  }
  unsigned RankBelow(unsigned b) const { return RankBelowT<false>(b); }
  /// Total number of set bits.
  template <bool Hw>
  unsigned TotalT() const {
    return cum[3] + static_cast<unsigned>(simd::PopCount64T<Hw>(bm[3]));
  }
  unsigned Total() const { return TotalT<false>(); }
  bool HasBranches() const { return (bm[0] | bm[1] | bm[2] | bm[3]) != 0; }
};
static_assert(sizeof(TrieNode) == 48,
              "cum ranks live in what used to be padding");

class BitmapTrieDict : public Dictionary {
 public:
  BitmapTrieDict(const std::vector<DictEntry>& entries, int n) : n_(n) {
    levels_.resize(n);
    payload_.reserve(entries.size());
    for (const auto& e : entries) {
      if (e.left_bound.size() > static_cast<size_t>(n))
        throw std::invalid_argument("BitmapTrieDict: boundary too long");
      payload_.push_back(PackEntry(e));
    }
    Build(entries, 0, entries.size(), 0);
    for (auto& level : levels_)
      for (auto& nd : level) nd.FinishNode();
    num_entries_ = entries.size();
    BuildFused();  // after FinishNode: the replay ranks through cum
  }

  LookupResult Lookup(std::string_view src) const override {
    return Result(LookupEntry(src));
  }

  size_t NumEntries() const override { return num_entries_; }

  size_t MemoryBytes() const override {
    size_t bytes = payload_.capacity() * sizeof(PackedCode);
    for (const auto& level : levels_)
      bytes += level.capacity() * sizeof(TrieNode);
    bytes += fused_slots_.capacity() * sizeof(uint16_t);
    return bytes;
  }

  size_t MaxLookahead() const override { return static_cast<size_t>(n_); }

  const char* Name() const override {
    return n_ == 3 ? "bitmap-trie-3" : "bitmap-trie-4";
  }

  // Devirtualized hot path: all descents for one key run inside this
  // concrete type — one virtual call per key instead of one per gram —
  // and each descent with at least two bytes left starts from the fused
  // (byte0, byte1) table instead of walking the top two levels.
  void EncodeSpan(std::string_view src, size_t base, BitWriter* writer,
                  std::vector<EncodeTrace>* trace) const override {
    if (fused_) {
      // n_ is 3 or 4 by construction; the templated body unrolls the
      // below-table walk, keeps the hoisted array pointers live across
      // grams (through the Dictionary pointer they would be re-chased
      // after every append, since the writer's byte buffer may alias) and
      // bakes the POPCNT probe in so each rank is one instruction.
      const bool hw = simd::HavePopcnt();
      if (n_ == 3)
        return hw ? EncodeSpanFused<3, true>(src, base, writer, trace)
                  : EncodeSpanFused<3, false>(src, base, writer, trace);
      return hw ? EncodeSpanFused<4, true>(src, base, writer, trace)
                : EncodeSpanFused<4, false>(src, base, writer, trace);
    }
    size_t pos = base;
    while (pos < src.size()) {
      if (trace)
        trace->push_back({static_cast<uint32_t>(pos),
                          static_cast<uint32_t>(writer->total_bits())});
      std::string_view rest = src.substr(pos);
      int64_t entry;
      if (rest.size() >= 2) {
        entry = LookupEntry(rest);
      } else {
        int32_t e = fused_single_[static_cast<uint8_t>(rest[0])];
        entry = e >= 0 ? e : LookupEntry(rest);
      }
      LookupResult r = Result(entry);
      writer->Append(r.code);
      pos += r.consumed;
    }
  }

  // Interleaved multi-key descent: advance kGroup independent lookups
  // round-robin, one node visit each per step, so the group's cache
  // misses are in flight together instead of serialized.
  void EncodeMulti(const std::string_view* keys, size_t n, std::string* out,
                   size_t* bits) const override {
    if (n < 2 || !UseInterleavedDescent(MemoryBytes())) {
      Dictionary::EncodeMulti(keys, n, out, bits);
      return;
    }
    Cursor cur[kGroup];
    size_t next = 0;
    auto load = [&](Cursor& c) {
      while (next < n) {
        c.key = keys[next];
        c.out_idx = next++;
        if (c.key.empty()) {  // empty key: empty encoding, zero bits
          out[c.out_idx].clear();
          bits[c.out_idx] = 0;
          continue;
        }
        c.pos = 0;
        c.writer.Clear();
        c.writer.ReserveBits(c.key.size() * 8);
        StartLookup(c);
        c.live = true;
        return true;
      }
      c.live = false;
      return false;
    };
    int nlive = 0;
    for (auto& c : cur)
      if (load(c)) nlive++;
    while (nlive > 0) {
      for (auto& c : cur) {
        if (!c.live) continue;
        int64_t entry = Step(c);
        if (entry < 0) continue;
        LookupResult r = Result(entry);
        c.writer.Append(r.code);
        c.pos += r.consumed;
        if (c.pos < c.key.size()) {
          StartLookup(c);
        } else {
          out[c.out_idx] = c.writer.TakeBytes();
          bits[c.out_idx] = c.writer.total_bits();
          if (!load(c)) nlive--;
        }
      }
    }
  }

 private:
  static constexpr int kGroup = 8;

  /// One in-flight lookup of the interleaved walk: output state plus the
  /// micro-state of the descent (mirrors LookupEntry's locals).
  struct Cursor {
    std::string_view key;
    size_t out_idx = 0;
    size_t pos = 0;  ///< encode position within key
    BitWriter writer;
    bool live = false;
    // descent micro-state
    bool resolving = false;
    int32_t cand_entry = -1;
    int cand_level = -1;
    uint32_t cand_node = 0;
    uint32_t cand_rank = 0;
    uint32_t node = 0;
    int d = 0;
  };

  void StartLookup(Cursor& c) const {
    c.resolving = false;
    c.cand_entry = -1;
    c.cand_level = -1;
    c.cand_node = 0;
    c.cand_rank = 0;
    c.node = 0;
    c.d = 0;
  }

  /// Advances one lookup by one node visit. Returns the resolved entry id,
  /// or -1 while the descent is still in flight. Step-for-step equivalent
  /// to LookupEntry (pinned by simd_equivalence_test).
  int64_t Step(Cursor& c) const {
    if (c.resolving) {
      const TrieNode& nd = levels_[c.d][c.node];
      unsigned total = nd.Total();
      if (total == 0) {
        HOPE_DCHECK(nd.term_entry >= 0);
        return nd.term_entry;
      }
      if (c.d == n_ - 1) return nd.entry_base + total - 1;
      c.node = nd.child_base + total - 1;
      c.d++;
      simd::PrefetchRead(&levels_[c.d][c.node]);
      return -1;
    }
    const TrieNode& nd = levels_[c.d][c.node];
    if (nd.term_entry >= 0) {
      c.cand_entry = nd.term_entry;
      c.cand_level = -1;
    }
    std::string_view rest = c.key.substr(c.pos);
    if (static_cast<size_t>(c.d) >= rest.size()) return FinishOrResolve(c);
    unsigned b = static_cast<uint8_t>(rest[c.d]);
    if (c.d == n_ - 1) {
      unsigned k = nd.RankBelow(b + 1);
      if (k > 0) return nd.entry_base + k - 1;
      return FinishOrResolve(c);
    }
    unsigned k = nd.RankBelow(b);
    if (k > 0) {
      c.cand_level = c.d;
      c.cand_node = c.node;
      c.cand_rank = k - 1;
      c.cand_entry = -1;
    }
    if (!nd.GetBit(b)) return FinishOrResolve(c);
    c.node = nd.child_base + k;
    c.d++;
    simd::PrefetchRead(&levels_[c.d][c.node]);
    return -1;
  }

  /// The walk diverged (or the key ran out): either the candidate is an
  /// already-resolved terminator entry, or switch to max-descent of the
  /// candidate sibling subtree.
  int64_t FinishOrResolve(Cursor& c) const {
    if (c.cand_level < 0) {
      HOPE_DCHECK_MSG(c.cand_entry >= 0,
                      "complete dictionary: root has a boundary");
      return c.cand_entry;
    }
    const TrieNode& nd = levels_[c.cand_level][c.cand_node];
    c.node = nd.child_base + c.cand_rank;
    c.d = c.cand_level + 1;
    c.resolving = true;
    simd::PrefetchRead(&levels_[c.d][c.node]);
    return -1;
  }

  // The descent is rank-only: `k = RankBelow(b)` answers every question a
  // level asks. At the last level the predecessor among the node's
  // entries is the (RankBelow(b + 1) - 1)-th — one masked popcount
  // replaces the prev-set-bit scan plus a second rank. At internal levels
  // the largest smaller sibling (the candidate) is the (k - 1)-th child,
  // and the max-descent resolve takes the (Total() - 1)-th child at every
  // hop, so no bit positions are ever rediscovered.
  int64_t LookupEntry(std::string_view src) const {
    // Candidate for the predecessor: either a terminator entry on the
    // descent path or a smaller sibling branch to resolve by max-descent.
    int32_t cand_entry = -1;
    int cand_level = -1;
    uint32_t cand_node = 0;
    uint32_t cand_rank = 0;

    uint32_t node = 0;
    int d = 0;
    while (true) {
      const TrieNode& nd = levels_[d][node];
      if (nd.term_entry >= 0) {
        cand_entry = nd.term_entry;
        cand_level = -1;  // resolved candidate
      }
      if (static_cast<size_t>(d) >= src.size()) break;
      unsigned b = static_cast<uint8_t>(src[d]);
      if (d == n_ - 1) {
        // Bits at the last level are entries themselves.
        unsigned k = nd.RankBelow(b + 1);
        if (k > 0) return nd.entry_base + k - 1;
        break;
      }
      unsigned k = nd.RankBelow(b);
      if (k > 0) {
        cand_level = d;
        cand_node = node;
        cand_rank = k - 1;
        cand_entry = -1;
      }
      if (!nd.GetBit(b)) break;
      node = nd.child_base + k;
      d++;
    }

    if (cand_level < 0) {
      HOPE_DCHECK_MSG(cand_entry >= 0,
                      "complete dictionary: root has a boundary");
      return cand_entry;
    }
    return ResolveMaxDescent(cand_level, cand_node, cand_rank);
  }

  /// Resolve: the largest boundary in the subtree under the cand_rank-th
  /// child of (cand_level, cand_node). Hw defaults off so the classic
  /// paths stay portable; the fused span passes its hoisted probe.
  template <bool Hw = false>
  int64_t ResolveMaxDescent(int cand_level, uint32_t cand_node,
                            uint32_t cand_rank) const {
    const TrieNode* nd = &levels_[cand_level][cand_node];
    uint32_t child = nd->child_base + cand_rank;
    int e = cand_level + 1;
    while (true) {
      const TrieNode& cur = levels_[e][child];
      unsigned total = cur.TotalT<Hw>();
      if (total == 0) {
        HOPE_DCHECK(cur.term_entry >= 0);
        return cur.term_entry;
      }
      if (e == n_ - 1) return cur.entry_base + total - 1;
      child = cur.child_base + total - 1;
      e++;
    }
  }

  /// Fused hot loop, N = n_ and the POPCNT probe fixed at compile time.
  /// Result-identical to the generic EncodeSpan loop (pinned by
  /// simd_equivalence_test); the wins are mechanical: the slot/node/
  /// payload array pointers live in locals for the whole key, the
  /// below-table walk unrolls (at N = 3 it is a single last-level rank),
  /// each rank's popcount inlines to the picked form, and the trace bit
  /// positions come from a local counter instead of re-reading the writer
  /// after every append.
  template <int N, bool Hw>
  void EncodeSpanFused(std::string_view src, size_t base, BitWriter* writer,
                       std::vector<EncodeTrace>* trace) const {
    const char* s = src.data();
    const size_t len = src.size();
    const uint16_t* slots = fused_slots_.data();
    const PackedCode* pay = payload_.data();
    const TrieNode* lvl[N];
    for (int d = 0; d < N; d++) lvl[d] = levels_[d].data();
    size_t pos = base;
    BitWriter::Local acc(writer);
    while (pos < len) {
      if (trace)
        trace->push_back({static_cast<uint32_t>(pos),
                          static_cast<uint32_t>(acc.total_bits())});
      const size_t rem = len - pos;
      int64_t entry;
      if (rem >= 2) {
        // Speculative prefetch of the next gram's slot assuming this one
        // consumes N bytes (the common case): the next slot address
        // otherwise waits on this gram's payload decode for `consumed`.
        if (rem >= static_cast<size_t>(N) + 2)
          simd::PrefetchRead(
              &slots[(static_cast<size_t>(static_cast<uint8_t>(s[pos + N]))
                      << 8) |
                     static_cast<uint8_t>(s[pos + N + 1])]);
        const uint16_t slot =
            slots[(static_cast<size_t>(static_cast<uint8_t>(s[pos])) << 8) |
                  static_cast<uint8_t>(s[pos + 1])];
        if (!(slot & kFusedEntryFlag)) {
          // Continue the rank-only walk below the table (same candidate
          // rules as LookupEntry; a walk that diverges down here with no
          // local candidate re-runs the classic walk — rare: it needs an
          // unseen suffix under a seen two-byte prefix with no smaller
          // sibling anywhere below).
          if constexpr (N == 3) {
            // One level left: the rank answers directly, and the node's
            // terminator only matters when the rank misses (k == 0) or
            // the key ends here — so compute the rank first and leave
            // the terminator load off the hit path.
            const TrieNode& nd = lvl[2][slot];
            unsigned k =
                rem >= 3 ? nd.RankBelowT<Hw>(
                               static_cast<uint8_t>(s[pos + 2]) + 1u)
                         : 0;
            if (k > 0)
              entry = nd.entry_base + static_cast<int64_t>(k) - 1;
            else if (nd.term_entry >= 0)
              entry = nd.term_entry;
            else
              entry = LookupEntry(src.substr(pos));
          } else {
            entry = -1;
            int32_t cand_entry = -1;
            int cand_level = -1;
            uint32_t cand_node = 0;
            uint32_t cand_rank = 0;
            uint32_t node = slot;
            for (int d = 2; d < N; d++) {
              const TrieNode& nd = lvl[d][node];
              if (nd.term_entry >= 0) {
                cand_entry = nd.term_entry;
                cand_level = -1;
              }
              if (static_cast<size_t>(d) >= rem) break;
              unsigned b = static_cast<uint8_t>(s[pos + d]);
              if (d == N - 1) {
                unsigned k = nd.RankBelowT<Hw>(b + 1);
                if (k > 0) entry = nd.entry_base + k - 1;
                break;
              }
              unsigned k = nd.RankBelowT<Hw>(b);
              if (k > 0) {
                cand_level = d;
                cand_node = node;
                cand_rank = k - 1;
                cand_entry = -1;
              }
              if (!nd.GetBit(b)) break;
              node = nd.child_base + k;
            }
            if (entry < 0) {
              if (cand_level >= 0)
                entry = ResolveMaxDescent<Hw>(cand_level, cand_node, cand_rank);
              else if (cand_entry >= 0)
                entry = cand_entry;
              else
                entry = LookupEntry(src.substr(pos));
            }
          }
        } else if (slot != kFusedClassic) {
          entry = slot & kFusedValueMask;
        } else {
          entry = LookupEntry(src.substr(pos));
        }
      } else {
        int32_t e = fused_single_[static_cast<uint8_t>(s[pos])];
        entry = e >= 0 ? e : LookupEntry(src.substr(pos));
      }
      LookupResult r = UnpackEntry(pay[entry]);
      acc.Append(r.code);
      pos += r.consumed;
    }
  }

  /// Precomputes the fused (byte0, byte1) dispatch table by replaying the
  /// level-0/1 walk for every pair (a first byte the root lacks collapses
  /// its whole row to one resolved entry). Build cost is 64K bounded
  /// max-descents — microseconds next to dictionary selection — and the
  /// replay reuses the same candidate rules as LookupEntry, so the table
  /// is correct by construction. The packed slots index with 15 bits, so
  /// dictionaries too large for them (never hit by the sample-driven gram
  /// selectors) simply keep the classic walk.
  void BuildFused() {
    std::memset(fused_single_, -1, sizeof(fused_single_));
    if (const char* env = std::getenv("HOPE_FUSED"))
      if (std::strcmp(env, "never") == 0) return;  // A/B escape hatch
    // Single-byte answers are exact entry ids (no packing), so they are
    // built regardless of the 15-bit slot cap below. Replayed with the
    // LookupEntry candidate rules; -1 (incomplete dictionary) defers to
    // the classic walk at lookup time.
    {
      const TrieNode& root = levels_[0][0];
      for (unsigned b = 0; b < 256; b++) {
        int32_t ce = root.term_entry;
        int cl = -1;
        uint32_t cr = 0;
        unsigned k0 = root.RankBelow(b);
        if (k0 > 0) {
          cl = 0;
          cr = k0 - 1;
          ce = -1;
        }
        if (root.GetBit(b)) {
          // Boundaries extending byte b all sort above the 1-byte key, so
          // only a terminator at its child can beat the candidate.
          const TrieNode& n1 = levels_[1][root.child_base + k0];
          if (n1.term_entry >= 0) {
            ce = n1.term_entry;
            cl = -1;
          }
        }
        fused_single_[b] = ResolveFallback(ce, cl, 0, cr);
      }
    }
    if (num_entries_ > kFusedValueMask - 1 ||
        levels_[2].size() > kFusedValueMask)
      return;
    fused_ = true;
    fused_slots_.assign(size_t{256} * 256, kFusedClassic);
    const TrieNode& root = levels_[0][0];
    for (unsigned c0 = 0; c0 < 256; c0++) {
      uint16_t* row = &fused_slots_[static_cast<size_t>(c0) << 8];
      // Candidate state after consuming byte0 at the root.
      int32_t ce0 = root.term_entry;
      int cl0 = -1;
      uint32_t cr0 = 0;
      unsigned k0 = root.RankBelow(c0);
      if (k0 > 0) {
        cl0 = 0;
        cr0 = k0 - 1;
        ce0 = -1;
      }
      if (!root.GetBit(c0)) {
        // The whole row diverges at byte0 and resolves identically.
        int32_t entry = ResolveFallback(ce0, cl0, 0, cr0);
        if (entry >= 0)
          std::fill(row, row + 256,
                    static_cast<uint16_t>(kFusedEntryFlag | entry));
        continue;
      }
      const uint32_t node1 = root.child_base + k0;
      const TrieNode& n1 = levels_[1][node1];
      for (unsigned c1 = 0; c1 < 256; c1++) {
        unsigned k1 = n1.RankBelow(c1);
        if (n1.GetBit(c1)) {
          row[c1] = static_cast<uint16_t>(n1.child_base + k1);
          continue;
        }
        // Diverged within the top two levels: fold the candidate rules
        // (terminator beats an earlier candidate; a smaller sibling beats
        // both) into one resolved entry.
        int32_t ce = ce0;
        int cl = cl0;
        uint32_t cn = 0;
        uint32_t cr = cr0;
        if (n1.term_entry >= 0) {
          ce = n1.term_entry;
          cl = -1;
        }
        if (k1 > 0) {
          cl = 1;
          cn = node1;
          cr = k1 - 1;
          ce = -1;
        }
        int32_t entry = ResolveFallback(ce, cl, cn, cr);
        if (entry >= 0)
          row[c1] = static_cast<uint16_t>(kFusedEntryFlag | entry);
      }
    }
  }

  /// Resolves a build-time candidate to an entry id. A missing candidate
  /// (incomplete dictionary below the smallest boundary) stores -1; the
  /// classic path would hit the same completeness assert for such queries.
  int32_t ResolveFallback(int32_t ce, int cl, uint32_t cn,
                          uint32_t cr) const {
    if (cl < 0) return ce;
    return static_cast<int32_t>(ResolveMaxDescent(cl, cn, cr));
  }

  LookupResult Result(int64_t entry) const {
    return UnpackEntry(payload_[entry]);
  }

  /// Builds the node for entries[lo, hi) at depth d (all sharing the first
  /// d bytes) and recursively builds its children. Returns the node index
  /// within its level. Children of one node are contiguous because the
  /// recursion finishes a node's children before its parent's siblings.
  uint32_t Build(const std::vector<DictEntry>& entries, size_t lo, size_t hi,
                 int d) {
    uint32_t idx = static_cast<uint32_t>(levels_[d].size());
    levels_[d].push_back(TrieNode());
    if (lo < hi && entries[lo].left_bound.size() == static_cast<size_t>(d)) {
      levels_[d][idx].term_entry = static_cast<int32_t>(lo);
      lo++;
    }
    if (d == n_ - 1) {
      levels_[d][idx].entry_base = static_cast<uint32_t>(lo);
      for (size_t i = lo; i < hi; i++) {
        HOPE_DCHECK(entries[i].left_bound.size() == static_cast<size_t>(n_));
        levels_[d][idx].SetBit(
            static_cast<uint8_t>(entries[i].left_bound[d]));
      }
      return idx;
    }
    if (lo < hi) {
      // Group by byte at position d and recurse in order.
      uint32_t child_base = static_cast<uint32_t>(levels_[d + 1].size());
      levels_[d][idx].child_base = child_base;
      size_t i = lo;
      while (i < hi) {
        uint8_t b = static_cast<uint8_t>(entries[i].left_bound[d]);
        size_t j = i;
        while (j < hi &&
               static_cast<uint8_t>(entries[j].left_bound[d]) == b)
          j++;
        levels_[d][idx].SetBit(b);
        Build(entries, i, j, d + 1);
        i = j;
      }
    }
    return idx;
  }

  /// Fused-table slots are 16 bits so a full row set costs 128 KiB, not
  /// 512: bit 15 clear = level-2 node index reached by the (byte0, byte1)
  /// descent; bit 15 set = resolved predecessor entry for a pair that
  /// diverges within the top two levels; all-ones = defer to the classic
  /// walk (no candidate, i.e. an incomplete dictionary).
  static constexpr uint16_t kFusedEntryFlag = 0x8000;
  static constexpr uint16_t kFusedValueMask = 0x7FFF;
  static constexpr uint16_t kFusedClassic = 0xFFFF;

  int n_;
  std::vector<std::vector<TrieNode>> levels_;
  std::vector<PackedCode> payload_;
  size_t num_entries_ = 0;
  bool fused_ = false;  ///< fused table built (see BuildFused)
  std::vector<uint16_t> fused_slots_;  ///< flat [byte0 << 8 | byte1]
  int32_t fused_single_[256];          ///< 1-byte lookup answers, -1 = walk
};

}  // namespace

std::unique_ptr<Dictionary> MakeBitmapTrieDict(
    const std::vector<DictEntry>& entries, int n) {
  return std::make_unique<BitmapTrieDict>(entries, n);
}

}  // namespace hope
