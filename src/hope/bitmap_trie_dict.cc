// Bitmap-trie dictionary for the 3-Grams / 4-Grams schemes (§4.2, Fig. 6).
//
// An n-level trie stored as per-level node arrays. Each node holds a
// 256-bit bitmap of its branches plus the rank (index) of its first child
// in the next level, so following a branch costs one popcount. Boundaries
// shorter than n bytes terminate at an internal node (the paper borrows a
// bit from the counter for the terminator ∅; we store an explicit entry
// id). A lookup finds the last boundary <= src by walking the trie and
// falling back to the largest smaller branch when the walk diverges.
#include <cassert>
#include <stdexcept>

#include "hope/dictionary.h"

namespace hope {

namespace {

struct TrieNode {
  uint64_t bm[4] = {0, 0, 0, 0};
  uint32_t child_base = 0;  ///< index of first child in the next level
  int32_t term_entry = -1;  ///< entry id when the path itself is a boundary
  uint32_t entry_base = 0;  ///< last level: entry id of the first set bit

  void SetBit(unsigned b) { bm[b >> 6] |= uint64_t{1} << (63 - (b & 63)); }
  bool GetBit(unsigned b) const {
    return (bm[b >> 6] >> (63 - (b & 63))) & 1;
  }
  /// Number of set bits strictly below position b.
  unsigned RankBelow(unsigned b) const {
    unsigned word = b >> 6, bit = b & 63;
    unsigned r = 0;
    for (unsigned w = 0; w < word; w++) r += __builtin_popcountll(bm[w]);
    if (bit != 0) r += __builtin_popcountll(bm[word] >> (64 - bit));
    return r;
  }
  /// Largest set bit strictly below position b, or -1.
  int PrevSetBit(unsigned b) const {
    if (b == 0) return -1;
    unsigned pos = b - 1;
    int word = static_cast<int>(pos >> 6);
    uint64_t w = bm[word] & (~uint64_t{0} << (63 - (pos & 63)));
    while (true) {
      if (w != 0) return word * 64 + (63 - __builtin_ctzll(w));
      if (word == 0) return -1;
      word--;
      w = bm[word];
    }
  }
  /// Largest set bit, or -1 if the bitmap is empty.
  int MaxSetBit() const { return PrevSetBit(256); }
  bool HasBranches() const { return (bm[0] | bm[1] | bm[2] | bm[3]) != 0; }
};

class BitmapTrieDict : public Dictionary {
 public:
  BitmapTrieDict(const std::vector<DictEntry>& entries, int n) : n_(n) {
    levels_.resize(n);
    payload_.reserve(entries.size());
    for (const auto& e : entries) {
      if (e.left_bound.size() > static_cast<size_t>(n))
        throw std::invalid_argument("BitmapTrieDict: boundary too long");
      payload_.push_back(PackEntry(e));
    }
    Build(entries, 0, entries.size(), 0);
    num_entries_ = entries.size();
  }

  LookupResult Lookup(std::string_view src) const override {
    // Candidate for the predecessor: either a terminator entry on the
    // descent path or a smaller sibling branch to resolve by max-descent.
    int32_t cand_entry = -1;
    int cand_level = -1;
    uint32_t cand_node = 0;
    int cand_byte = -1;

    uint32_t node = 0;
    int d = 0;
    while (true) {
      const TrieNode& nd = levels_[d][node];
      if (nd.term_entry >= 0) {
        cand_entry = nd.term_entry;
        cand_level = -1;  // resolved candidate
      }
      if (static_cast<size_t>(d) >= src.size()) break;
      unsigned b = static_cast<uint8_t>(src[d]);
      if (d == n_ - 1) {
        // Bits at the last level are entries themselves.
        if (nd.GetBit(b)) return Result(nd.entry_base + nd.RankBelow(b));
        int pb = nd.PrevSetBit(b);
        if (pb >= 0) return Result(nd.entry_base + nd.RankBelow(pb));
        break;
      }
      int pb = nd.PrevSetBit(b);
      if (pb >= 0) {
        cand_level = d;
        cand_node = node;
        cand_byte = pb;
        cand_entry = -1;
      }
      if (!nd.GetBit(b)) break;
      node = nd.child_base + nd.RankBelow(b);
      d++;
    }

    if (cand_level < 0) {
      assert(cand_entry >= 0 && "complete dictionary: root has a boundary");
      return Result(cand_entry);
    }
    // Resolve: the largest boundary in the subtree under
    // (cand_node, cand_byte).
    const TrieNode* nd = &levels_[cand_level][cand_node];
    uint32_t child = nd->child_base + nd->RankBelow(cand_byte);
    int e = cand_level + 1;
    while (true) {
      const TrieNode& cur = levels_[e][child];
      if (e == n_ - 1) {
        int mb = cur.MaxSetBit();
        if (mb >= 0) return Result(cur.entry_base + cur.RankBelow(mb));
        assert(cur.term_entry >= 0);
        return Result(cur.term_entry);
      }
      int mb = cur.MaxSetBit();
      if (mb < 0) {
        assert(cur.term_entry >= 0);
        return Result(cur.term_entry);
      }
      child = cur.child_base + cur.RankBelow(static_cast<unsigned>(mb));
      e++;
    }
  }

  size_t NumEntries() const override { return num_entries_; }

  size_t MemoryBytes() const override {
    size_t bytes = payload_.capacity() * sizeof(PackedCode);
    for (const auto& level : levels_)
      bytes += level.capacity() * sizeof(TrieNode);
    return bytes;
  }

  size_t MaxLookahead() const override { return static_cast<size_t>(n_); }

  const char* Name() const override {
    return n_ == 3 ? "bitmap-trie-3" : "bitmap-trie-4";
  }

 private:
  LookupResult Result(int64_t entry) const {
    return UnpackEntry(payload_[entry]);
  }

  /// Builds the node for entries[lo, hi) at depth d (all sharing the first
  /// d bytes) and recursively builds its children. Returns the node index
  /// within its level. Children of one node are contiguous because the
  /// recursion finishes a node's children before its parent's siblings.
  uint32_t Build(const std::vector<DictEntry>& entries, size_t lo, size_t hi,
                 int d) {
    uint32_t idx = static_cast<uint32_t>(levels_[d].size());
    levels_[d].push_back(TrieNode());
    if (lo < hi && entries[lo].left_bound.size() == static_cast<size_t>(d)) {
      levels_[d][idx].term_entry = static_cast<int32_t>(lo);
      lo++;
    }
    if (d == n_ - 1) {
      levels_[d][idx].entry_base = static_cast<uint32_t>(lo);
      for (size_t i = lo; i < hi; i++) {
        assert(entries[i].left_bound.size() == static_cast<size_t>(n_));
        levels_[d][idx].SetBit(
            static_cast<uint8_t>(entries[i].left_bound[d]));
      }
      return idx;
    }
    if (lo < hi) {
      // Group by byte at position d and recurse in order.
      uint32_t child_base = static_cast<uint32_t>(levels_[d + 1].size());
      levels_[d][idx].child_base = child_base;
      size_t i = lo;
      while (i < hi) {
        uint8_t b = static_cast<uint8_t>(entries[i].left_bound[d]);
        size_t j = i;
        while (j < hi &&
               static_cast<uint8_t>(entries[j].left_bound[d]) == b)
          j++;
        levels_[d][idx].SetBit(b);
        Build(entries, i, j, d + 1);
        i = j;
      }
    }
    return idx;
  }

  int n_;
  std::vector<std::vector<TrieNode>> levels_;
  std::vector<PackedCode> payload_;
  size_t num_entries_ = 0;
};

}  // namespace

std::unique_ptr<Dictionary> MakeBitmapTrieDict(
    const std::vector<DictEntry>& entries, int n) {
  return std::make_unique<BitmapTrieDict>(entries, n);
}

}  // namespace hope
