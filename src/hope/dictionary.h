// Dictionary data structures (§4.2): map an interval (via its left
// boundary) to a code. A lookup is a "greater than or equal to" query:
// find the entry whose interval contains the source string, i.e. the last
// boundary <= src. Completeness guarantees every lookup succeeds and
// consumes at least one byte.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hope/bit_writer.h"
#include "hope/interval.h"

namespace hope {

/// One lookup step boundary recorded by EncodeSpan: the source position
/// where a lookup started and the writer's bit position before its code
/// was appended. The encoder's batch shared-prefix reuse (Appendix B)
/// consumes these; no trailing sentinel is recorded — the encoder appends
/// its own (key_len, total_bits) entry.
struct EncodeTrace {
  uint32_t src_pos;
  uint32_t bit_pos;
};

/// Abstract dictionary. Implementations: array (Single-/Double-Char),
/// bitmap-trie (3-/4-Grams), ART-based (ALM, ALM-Improved), and a
/// binary-search baseline used for ablation.
class Dictionary {
 public:
  virtual ~Dictionary() = default;

  /// Finds the entry whose interval contains `src` (non-empty) and returns
  /// its code and the number of bytes consumed (the symbol length).
  virtual LookupResult Lookup(std::string_view src) const = 0;

  virtual size_t NumEntries() const = 0;

  /// Approximate heap size of the structure in bytes.
  virtual size_t MemoryBytes() const = 0;

  /// How many leading bytes of `src` a lookup may inspect; used by batch
  /// encoding to find a safe aligned prefix. Unbounded (ALM) returns
  /// SIZE_MAX, which disables batching.
  virtual size_t MaxLookahead() const = 0;

  virtual const char* Name() const = 0;

  /// Encodes src[base..) into `writer` — the devirtualized per-key hot
  /// path: one virtual call per key instead of one per symbol. If `trace`
  /// is non-null, appends one EncodeTrace per lookup (absolute positions).
  /// The default implementation is the Lookup loop; concrete dictionaries
  /// override it to keep the whole descent inside one type. Output must be
  /// byte-identical to the Lookup loop for every implementation (pinned by
  /// simd_equivalence_test).
  virtual void EncodeSpan(std::string_view src, size_t base, BitWriter* writer,
                          std::vector<EncodeTrace>* trace) const;

  /// Encodes n independent keys, writing the padded bytes into out[i] and
  /// exact bit lengths into bits[i]. Default is a per-key EncodeSpan loop;
  /// the trie-backed dictionaries override it with an interleaved
  /// group-of-G descent that overlaps cache misses across keys. Per-key
  /// output must stay byte-identical to EncodeSpan.
  virtual void EncodeMulti(const std::string_view* keys, size_t n,
                           std::string* out, size_t* bits) const;

 protected:
  /// Whether EncodeMulti should interleave independent descents, given the
  /// dictionary's resident size. Cache-resident dictionaries lose to the
  /// straight per-key loop (the cursor state machine costs more than the
  /// misses it hides), so interleaving only pays past a working-set
  /// threshold. HOPE_INTERLEAVE=always|never overrides for testing and for
  /// deployments that know their cache budget.
  static bool UseInterleavedDescent(size_t memory_bytes);
};

/// Factory functions. `entries` must be sorted by left bound, with the
/// first bound == "" (complete dictionary).
std::unique_ptr<Dictionary> MakeBinarySearchDict(
    std::vector<DictEntry> entries);
/// `chars` is 1 (Single-Char, 256 entries) or 2 (Double-Char, 256*257).
std::unique_ptr<Dictionary> MakeArrayDict(const std::vector<DictEntry>& entries,
                                          int chars);
/// `n` is the gram length (3 or 4); boundaries must be at most n bytes.
std::unique_ptr<Dictionary> MakeBitmapTrieDict(
    const std::vector<DictEntry>& entries, int n);
/// Arbitrary-length boundaries (ALM family).
std::unique_ptr<Dictionary> MakeArtDict(const std::vector<DictEntry>& entries);

}  // namespace hope
