// Dictionary data structures (§4.2): map an interval (via its left
// boundary) to a code. A lookup is a "greater than or equal to" query:
// find the entry whose interval contains the source string, i.e. the last
// boundary <= src. Completeness guarantees every lookup succeeds and
// consumes at least one byte.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string_view>
#include <vector>

#include "hope/interval.h"

namespace hope {

/// Abstract dictionary. Implementations: array (Single-/Double-Char),
/// bitmap-trie (3-/4-Grams), ART-based (ALM, ALM-Improved), and a
/// binary-search baseline used for ablation.
class Dictionary {
 public:
  virtual ~Dictionary() = default;

  /// Finds the entry whose interval contains `src` (non-empty) and returns
  /// its code and the number of bytes consumed (the symbol length).
  virtual LookupResult Lookup(std::string_view src) const = 0;

  virtual size_t NumEntries() const = 0;

  /// Approximate heap size of the structure in bytes.
  virtual size_t MemoryBytes() const = 0;

  /// How many leading bytes of `src` a lookup may inspect; used by batch
  /// encoding to find a safe aligned prefix. Unbounded (ALM) returns
  /// SIZE_MAX, which disables batching.
  virtual size_t MaxLookahead() const = 0;

  virtual const char* Name() const = 0;
};

/// Factory functions. `entries` must be sorted by left bound, with the
/// first bound == "" (complete dictionary).
std::unique_ptr<Dictionary> MakeBinarySearchDict(
    std::vector<DictEntry> entries);
/// `chars` is 1 (Single-Char, 256 entries) or 2 (Double-Char, 256*257).
std::unique_ptr<Dictionary> MakeArrayDict(const std::vector<DictEntry>& entries,
                                          int chars);
/// `n` is the gram length (3 or 4); boundaries must be at most n bytes.
std::unique_ptr<Dictionary> MakeBitmapTrieDict(
    const std::vector<DictEntry>& entries, int n);
/// Arbitrary-length boundaries (ALM family).
std::unique_ptr<Dictionary> MakeArtDict(const std::vector<DictEntry>& entries);

}  // namespace hope
