// Optimal order-preserving (alphabetic) prefix codes.
//
// The paper assigns Hu-Tucker codes to dictionary intervals (§4.2). We
// compute the same optimal alphabetic binary tree with the Garsia-Wachs
// algorithm, which is provably cost-equivalent to Hu-Tucker and has a
// simpler O(n^2) combination phase (near-linear in practice thanks to
// scan resumption). Codes are emitted in alphabetic order, so
// c_0 < c_1 < ... < c_{n-1} as bit strings, and the code set is
// prefix-free — exactly the properties §3.1 requires for an
// order-preserving dictionary.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bits.h"

namespace hope {

/// Computes optimal alphabetic (order-preserving) prefix codes for the
/// given non-negative weights. Weights are access frequencies/probabilities
/// of the dictionary intervals in lexicographic order.
///
/// Guarantees:
///  - codes are monotonically increasing bit strings,
///  - the code set is prefix-free,
///  - expected code length Σ w_i · len(c_i) is minimal among all
///    alphabetic prefix codes,
///  - every code is at most 64 bits (tiny weights are floored to keep the
///    tree depth bounded; this can only affect entries whose weight is
///    below total / 2^40).
///
/// n == 0 returns {}; n == 1 returns a single 1-bit code "0".
std::vector<Code> HuTuckerCodes(const std::vector<double>& weights);

/// Returns the optimal leaf depths (code lengths) without materializing
/// codes. Exposed for tests and the build-time benchmark.
std::vector<int> HuTuckerDepths(const std::vector<double>& weights);

/// Exhaustive O(n^3) dynamic program for the optimal alphabetic tree cost
/// (Knuth). Used by tests to validate optimality on small inputs.
double OptimalAlphabeticCostBruteForce(const std::vector<double>& weights);

}  // namespace hope
