// ALM and ALM-Improved selectors (§3.3): VIFC/VIVC schemes with
// variable-length interval boundaries.
//
// ALM scores substring patterns by len(s) * freq(s) and selects the top
// ones (equivalent to the paper's threshold W, found by binary search: the
// top-k cutoff *is* that threshold). ALM counts every substring of every
// length (capped at kMaxAlmSubstring bytes, see DESIGN.md §3); the
// ALM-Improved variant only counts sample-string suffixes, which is the
// paper's build-time optimization.
//
// Because selected patterns of different lengths may violate the prefix
// property (both "sig" and "sigmod" selected), a blending pass
// redistributes each prefix pattern's count to its longest selected
// extension and drops the prefix pattern, exactly as described in §4.2.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/str_utils.h"
#include "hope/symbol_selector.h"

namespace hope {

namespace {

// Substring-length cap for ALM statistics; Email/Wiki keys average
// 21-22 bytes, so 16-byte patterns already exceed any common pattern.
constexpr size_t kMaxAlmSubstring = 16;
// ALM's all-substring counting is super-linear in sample bytes; cap the
// number of keys used for statistics (the interval probabilities are
// still computed on the full sample by TestEncodeWeights).
constexpr size_t kMaxAlmStatsKeys = 20000;
constexpr size_t kMaxAlmImprovedStatsKeys = 100000;
constexpr size_t kMaxSuffixLen = 24;

struct Candidate {
  std::string pattern;
  uint64_t count = 0;
  double Score() const {
    return static_cast<double>(pattern.size()) * static_cast<double>(count);
  }
};

// Resolves prefix-property violations: every candidate that is a strict
// prefix of another candidate donates its count to its *longest* selected
// extension and is removed. Candidates must be sorted; the result stays
// sorted and is prefix-free.
std::vector<Candidate> Blend(std::vector<Candidate> cands) {
  // Sorted order puts every extension of cands[i] in a contiguous range
  // right after it. Process from the end so donations cascade.
  for (size_t i = cands.size(); i-- > 0;) {
    if (i + 1 >= cands.size()) continue;
    const std::string& s = cands[i].pattern;
    if (cands[i + 1].pattern.compare(0, s.size(), s) != 0) continue;
    // s is a prefix of at least one later candidate: find its longest
    // extension within [s, PrefixUpperBound(s)).
    size_t best = i + 1;
    for (size_t j = i + 1; j < cands.size() &&
                           cands[j].pattern.compare(0, s.size(), s) == 0;
         j++) {
      if (cands[j].pattern.size() > cands[best].pattern.size()) best = j;
    }
    cands[best].count += cands[i].count;
    cands[i].count = 0;  // mark for removal
  }
  std::vector<Candidate> out;
  out.reserve(cands.size());
  for (auto& c : cands)
    if (c.count > 0) out.push_back(std::move(c));
  return out;
}

// Shared interval construction from a sorted prefix-free pattern set.
std::vector<IntervalSpec> BuildIntervals(const std::vector<Candidate>& sel) {
  std::vector<IntervalSpec> intervals;
  intervals.reserve(sel.size() * 2 + 260);
  std::string cur;  // "" = -infinity
  bool covered_to_inf = false;
  for (const Candidate& c : sel) {
    AddGapIntervals(cur, c.pattern, &intervals);
    intervals.push_back({c.pattern, c.pattern, 0});
    cur = PrefixUpperBound(c.pattern);
    if (cur.empty()) {
      covered_to_inf = true;
      break;
    }
  }
  if (!covered_to_inf) AddGapIntervals(cur, std::string(), &intervals);
  return intervals;
}

std::vector<IntervalSpec> SelectFromCounts(
    std::unordered_map<std::string, uint64_t> counts, size_t dict_limit) {
  std::vector<Candidate> cands;
  cands.reserve(counts.size());
  for (auto& [pattern, cnt] : counts)
    cands.push_back({pattern, cnt});
  counts.clear();

  // Top-k by score (== the paper's threshold W found by binary search);
  // take some slack because blending removes prefix patterns.
  size_t target = std::max<size_t>(1, dict_limit / 2);
  size_t take = std::min(cands.size(), target + target / 4);
  std::nth_element(cands.begin(), cands.begin() + take, cands.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.Score() > b.Score();
                   });
  cands.resize(take);
  std::sort(cands.begin(), cands.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.pattern < b.pattern;
            });
  cands = Blend(std::move(cands));
  if (cands.size() > target) {
    // Trim the lowest-scoring survivors to the target size.
    std::vector<Candidate> ranked = cands;
    std::nth_element(ranked.begin(), ranked.begin() + target, ranked.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.Score() > b.Score();
                     });
    double cutoff = ranked[target - 1].Score();
    std::vector<Candidate> trimmed;
    trimmed.reserve(target);
    for (auto& c : cands) {
      if (c.Score() >= cutoff && trimmed.size() < target)
        trimmed.push_back(std::move(c));
    }
    cands = std::move(trimmed);
  }
  return BuildIntervals(cands);
}

class AlmSelector : public SymbolSelector {
 public:
  std::vector<IntervalSpec> Select(const std::vector<std::string>& samples,
                                   size_t dict_limit) override {
    std::unordered_map<std::string, uint64_t> counts;
    counts.reserve(1 << 20);
    size_t nkeys = std::min(samples.size(), kMaxAlmStatsKeys);
    for (size_t k = 0; k < nkeys; k++) {
      const std::string& key = samples[k];
      for (size_t i = 0; i < key.size(); i++) {
        size_t max_len = std::min(kMaxAlmSubstring, key.size() - i);
        for (size_t len = 1; len <= max_len; len++)
          counts[key.substr(i, len)]++;
      }
    }
    return SelectFromCounts(std::move(counts), dict_limit);
  }
};

class AlmImprovedSelector : public SymbolSelector {
 public:
  std::vector<IntervalSpec> Select(const std::vector<std::string>& samples,
                                   size_t dict_limit) override {
    // Count only suffixes of the sample strings (§3.3: "we simplify this
    // by only collecting statistics for substrings that are suffixes of
    // the sample source strings"). A pattern's frequency is the number of
    // suffixes it prefixes, so short prefixes of each suffix are counted
    // too (up to kMaxShortPrefix bytes — beyond that, only the full
    // capped suffix remains a candidate, which keeps the map linear in
    // the sample size unlike ALM's all-substrings pass).
    constexpr size_t kMaxShortPrefix = 8;
    std::unordered_map<std::string, uint64_t> counts;
    counts.reserve(1 << 20);
    size_t nkeys = std::min(samples.size(), kMaxAlmImprovedStatsKeys);
    for (size_t k = 0; k < nkeys; k++) {
      const std::string& key = samples[k];
      for (size_t i = 0; i < key.size(); i++) {
        size_t remaining = key.size() - i;
        size_t max_short = std::min(kMaxShortPrefix, remaining);
        for (size_t len = 1; len <= max_short; len++)
          counts[key.substr(i, len)]++;
        if (remaining > kMaxShortPrefix)
          counts[key.substr(i, std::min(kMaxSuffixLen, remaining))]++;
      }
    }
    return SelectFromCounts(std::move(counts), dict_limit);
  }
};

}  // namespace

std::unique_ptr<SymbolSelector> MakeAlmSelector() {
  return std::make_unique<AlmSelector>();
}

std::unique_ptr<SymbolSelector> MakeAlmImprovedSelector() {
  return std::make_unique<AlmImprovedSelector>();
}

}  // namespace hope
