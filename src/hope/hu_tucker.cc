#include "hope/hu_tucker.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/check.h"

namespace hope {

namespace {

// A work-list item during the Garsia-Wachs combination phase.
struct WorkItem {
  double weight;
  int32_t node;  // index into the merge-tree node array
};

struct MergeNode {
  int32_t left = -1;   // -1 for leaves
  int32_t right = -1;
};

// Runs one Garsia-Wachs combination phase with the given weight floor and
// returns the depth of each leaf (leaf i corresponds to weights[i]).
std::vector<int> GarsiaWachsDepthsFloored(const std::vector<double>& weights,
                                          double floor_w) {
  const size_t n = weights.size();
  std::vector<int> depths(n, 0);
  if (n <= 1) {
    if (n == 1) depths[0] = 1;  // single symbol still needs one bit
    return depths;
  }

  // The merge tree: first n entries are leaves.
  std::vector<MergeNode> nodes(n);
  nodes.reserve(2 * n);

  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<WorkItem> list;
  list.reserve(n + 2);
  list.push_back({kInf, -1});  // left sentinel
  for (size_t i = 0; i < n; i++)
    list.push_back({std::max(weights[i], floor_w), static_cast<int32_t>(i)});
  list.push_back({kInf, -1});  // right sentinel

  // Repeatedly find the leftmost i (1-based into list) such that
  // list[i-1].weight <= list[i+1].weight, merge (i-1, i), and move the
  // merged node left past all smaller weights. Scanning resumes near the
  // insertion point: positions to its left were already verified to have
  // no local minimum and are unchanged.
  size_t scan = 1;
  for (size_t merges = 0; merges < n - 1; merges++) {
    // Find leftmost local-minimum pair.
    size_t i = std::max<size_t>(scan, 1);
    while (!(list[i - 1].weight <= list[i + 1].weight)) i++;
    // Merge list[i-1] and list[i].
    double w = list[i - 1].weight + list[i].weight;
    int32_t id = static_cast<int32_t>(nodes.size());
    nodes.push_back({list[i - 1].node, list[i].node});
    // Remove both items.
    list.erase(list.begin() + static_cast<long>(i - 1),
               list.begin() + static_cast<long>(i + 1));
    // Move left: insert after the rightmost element with weight >= w.
    size_t j = i - 1;  // insertion candidate position (item now at j is the
                       // one that followed the pair)
    while (list[j - 1].weight < w) j--;
    list.insert(list.begin() + static_cast<long>(j), {w, id});
    scan = j > 1 ? j - 1 : 1;
  }

  HOPE_DCHECK(list.size() == 3);  // two sentinels + root
  int32_t root = list[1].node;

  // Compute leaf depths by iterative DFS over the merge tree.
  std::vector<std::pair<int32_t, int>> stack;
  stack.emplace_back(root, 0);
  while (!stack.empty()) {
    auto [id, d] = stack.back();
    stack.pop_back();
    const MergeNode& nd = nodes[id];
    if (nd.left == -1 && nd.right == -1) {
      depths[id] = d;
      continue;
    }
    stack.emplace_back(nd.left, d + 1);
    stack.emplace_back(nd.right, d + 1);
  }
  return depths;
}

// Floors tiny weights so the optimal tree stays shallow enough for
// fixed-width code storage (the paper stores 32-bit codes in its
// dictionaries). A floor of total/2^20 bounds the depth near
// log_phi(2^20) ~ 29; the loop raises the floor in the (theoretical)
// case the bound is still exceeded. Only entries with probability below
// ~1e-6 are affected, which costs no measurable compression.
std::vector<int> GarsiaWachsDepths(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  if (total <= 0) total = 1;
  double floor_w = total / std::pow(2.0, 20);
  while (true) {
    std::vector<int> depths = GarsiaWachsDepthsFloored(weights, floor_w);
    int max_depth = 0;
    for (int d : depths) max_depth = std::max(max_depth, d);
    if (max_depth <= 32) return depths;
    floor_w *= 16;
  }
}

}  // namespace

std::vector<int> HuTuckerDepths(const std::vector<double>& weights) {
  return GarsiaWachsDepths(weights);
}

std::vector<Code> HuTuckerCodes(const std::vector<double>& weights) {
  const size_t n = weights.size();
  std::vector<Code> codes(n);
  if (n == 0) return codes;
  if (n == 1) {
    codes[0] = Code{0, 1};  // "0"
    return codes;
  }
  std::vector<int> depths = GarsiaWachsDepths(weights);

  // Phase 3: rebuild an alphabetic tree from the (valid) depth sequence
  // using the classic stack construction, then read codes off the tree.
  // Canonical direct assignment: maintain a left-aligned code value;
  // for each next leaf, increment at the previous depth then adjust to the
  // new depth. The Garsia-Wachs depth sequence always admits this.
  uint64_t code = 0;  // left-aligned in 64 bits
  int prev_len = depths[0];
  if (prev_len > 64) throw std::runtime_error("Hu-Tucker code exceeds 64 bits");
  codes[0] = Code{0, static_cast<uint8_t>(prev_len)};
  for (size_t i = 1; i < n; i++) {
    int len = depths[i];
    if (len > 64) throw std::runtime_error("Hu-Tucker code exceeds 64 bits");
    // Increment the previous code at its own length.
    uint64_t inc = uint64_t{1} << (64 - prev_len);
    code += inc;  // cannot overflow: last code at each length is all-ones
                  // only for the final leaf
    // Truncate or extend (with zeros) to the new length.
    if (len < 64)
      code &= ~(~uint64_t{0} >> len);
    codes[i] = Code{code, static_cast<uint8_t>(len)};
    prev_len = len;
  }
  return codes;
}

double OptimalAlphabeticCostBruteForce(const std::vector<double>& weights) {
  const size_t n = weights.size();
  if (n == 0) return 0;
  if (n == 1) return weights[0];
  // cost[i][j]: optimal total weighted depth for leaves i..j.
  // cost(i,j) = min_k cost(i,k) + cost(k+1,j) + sum(i..j), cost(i,i) = 0.
  std::vector<double> prefix(n + 1, 0);
  for (size_t i = 0; i < n; i++) prefix[i + 1] = prefix[i] + weights[i];
  std::vector<std::vector<double>> cost(n, std::vector<double>(n, 0));
  for (size_t len = 2; len <= n; len++) {
    for (size_t i = 0; i + len <= n; i++) {
      size_t j = i + len - 1;
      double best = std::numeric_limits<double>::infinity();
      for (size_t k = i; k < j; k++)
        best = std::min(best, cost[i][k] + cost[k + 1][j]);
      cost[i][j] = best + (prefix[j + 1] - prefix[i]);
    }
  }
  return cost[0][n - 1];
}

}  // namespace hope
