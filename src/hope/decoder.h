// Optional decoder (§4.1: "Building a decoder is optional because our
// target workload for search trees does not require reconstructing the
// original keys"). We implement it anyway: the tests use it to prove that
// every scheme is lossless, and covering-index users can reconstruct keys.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "hope/interval.h"

namespace hope {

/// Walks a binary trie over the (prefix-free) code set, emitting each
/// matched entry's symbol.
class Decoder {
 public:
  /// Builds from finalized dictionary entries. Symbols are reconstructed
  /// from the boundaries (symbol == left_bound prefix of symbol_len bytes;
  /// the head entry with left_bound "" has symbol "\0").
  explicit Decoder(const std::vector<DictEntry>& entries);

  /// Decodes exactly `bit_len` bits of the encoded byte string back into
  /// the original key. `bit_len` must be the exact value reported by the
  /// encoder; the zero padding is not self-delimiting.
  std::string Decode(std::string_view bytes, size_t bit_len) const;

  size_t MemoryBytes() const;

 private:
  struct TrieNode {
    int32_t child[2] = {-1, -1};
    int32_t entry = -1;
  };

  std::vector<TrieNode> nodes_;
  std::vector<std::string> symbols_;
};

}  // namespace hope
