#include "hope/encoder.h"

#include <cassert>

#include "common/str_utils.h"

namespace hope {

void BitWriter::InitFromPrefix(const std::string& bytes, size_t bits) {
  Clear();
  size_t full_bytes = bits / 8;
  buf_.assign(bytes, 0, full_bytes);
  total_bits_ = full_bytes * 8;
  size_t rem = bits - total_bits_;
  if (rem > 0) {
    uint8_t last = static_cast<uint8_t>(bytes[full_bytes]);
    // Keep the top `rem` bits of the partial byte in the accumulator.
    acc_ = (static_cast<uint64_t>(last) << 56) &
           ~(~uint64_t{0} >> rem);
    acc_bits_ = static_cast<int>(rem);
    total_bits_ += rem;
  }
}

void BitWriter::Append(Code code) {
  uint64_t bits = code.bits;
  int len = code.len;
  total_bits_ += len;
  int room = 64 - acc_bits_;
  if (len < room) {
    if (len > 0) acc_ |= bits >> acc_bits_;
    acc_bits_ += len;
    return;
  }
  // Fill the accumulator and flush a full word.
  acc_ |= acc_bits_ > 0 ? bits >> acc_bits_ : bits;
  FlushAcc();
  int taken = room;
  acc_ = taken < 64 ? bits << taken : 0;
  acc_bits_ = len - taken;
}

void BitWriter::FlushAcc() {
  char word[8];
  for (int i = 0; i < 8; i++)
    word[i] = static_cast<char>((acc_ >> (56 - 8 * i)) & 0xFF);
  buf_.append(word, 8);
  acc_ = 0;
  acc_bits_ = 0;
}

std::string BitWriter::TakeBytes() {
  std::string out = buf_;
  int bytes = (acc_bits_ + 7) / 8;
  for (int i = 0; i < bytes; i++)
    out.push_back(static_cast<char>((acc_ >> (56 - 8 * i)) & 0xFF));
  return out;
}

std::string Encoder::EncodeWithTrace(std::string_view key, size_t resume_src,
                                     BitWriter* writer,
                                     std::vector<TracePoint>* trace) const {
  std::string_view src = key.substr(resume_src);
  size_t pos = resume_src;
  while (!src.empty()) {
    if (trace)
      trace->push_back({static_cast<uint32_t>(pos),
                        static_cast<uint32_t>(writer->total_bits())});
    LookupResult r = dict_->Lookup(src);
    assert(r.consumed > 0 && r.consumed <= src.size());
    writer->Append(r.code);
    src.remove_prefix(r.consumed);
    pos += r.consumed;
  }
  if (trace)
    trace->push_back({static_cast<uint32_t>(pos),
                      static_cast<uint32_t>(writer->total_bits())});
  return writer->TakeBytes();
}

std::string Encoder::Encode(std::string_view key, size_t* bit_len) const {
  BitWriter writer;
  std::string out = EncodeWithTrace(key, 0, &writer, nullptr);
  if (bit_len) *bit_len = writer.total_bits();
  return out;
}

std::vector<std::string> Encoder::EncodeBatch(
    const std::vector<std::string>& keys, size_t* total_bits) const {
  std::vector<std::string> out;
  out.reserve(keys.size());
  size_t bits_sum = 0;
  const size_t lookahead = dict_->MaxLookahead();
  if (lookahead == std::numeric_limits<size_t>::max()) {
    // Unbounded lookahead (ALM family): arbitrary-length symbols prevent
    // determining an aligned shared prefix a priori (Appendix B).
    for (const auto& key : keys) {
      size_t bits = 0;
      out.push_back(Encode(key, &bits));
      bits_sum += bits;
    }
    if (total_bits) *total_bits = bits_sum;
    return out;
  }

  std::vector<TracePoint> trace, next_trace;
  BitWriter writer;
  for (size_t i = 0; i < keys.size(); i++) {
    const std::string& key = keys[i];
    writer.Clear();
    next_trace.clear();
    size_t resume = 0;
    if (i > 0) {
      size_t l = LcpLen(keys[i - 1], key);
      // Reuse lookups [0, j): every reused lookup must have inspected
      // only bytes inside the common prefix, i.e.
      // trace[j-1].src_pos + lookahead <= l. trace.back() is a sentinel
      // at (key_len, total_bits), so j == trace.size()-1 reuses the whole
      // previous key.
      size_t j = 0;
      while (j + 1 < trace.size() &&
             trace[j].src_pos + lookahead <= l)
        j++;
      if (j > 0) {
        writer.InitFromPrefix(out[i - 1], trace[j].bit_pos);
        next_trace.assign(trace.begin(), trace.begin() + static_cast<long>(j));
        resume = trace[j].src_pos;
      }
    }
    out.push_back(EncodeWithTrace(key, resume, &writer, &next_trace));
    bits_sum += writer.total_bits();
    std::swap(trace, next_trace);
  }
  if (total_bits) *total_bits = bits_sum;
  return out;
}

std::pair<std::string, std::string> Encoder::EncodePair(
    std::string_view a, std::string_view b) const {
  std::vector<std::string> keys{std::string(a), std::string(b)};
  auto enc = EncodeBatch(keys);
  return {std::move(enc[0]), std::move(enc[1])};
}

}  // namespace hope
