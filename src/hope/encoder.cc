#include "hope/encoder.h"

#include <algorithm>
#include <thread>

#include "common/simd.h"

namespace hope {

std::string Encoder::EncodeWithTrace(std::string_view key, size_t resume_src,
                                     BitWriter* writer,
                                     std::vector<EncodeTrace>* trace) const {
  dict_->EncodeSpan(key, resume_src, writer, trace);
  if (trace)
    trace->push_back({static_cast<uint32_t>(key.size()),
                      static_cast<uint32_t>(writer->total_bits())});
  return writer->TakeBytes();
}

std::string Encoder::Encode(std::string_view key, size_t* bit_len) const {
  BitWriter writer;
  writer.ReserveBits(key.size() * 8);
  std::string out = EncodeWithTrace(key, 0, &writer, nullptr);
  if (bit_len) *bit_len = writer.total_bits();
  if (observer_) observer_->OnEncode(key, writer.total_bits());
  return out;
}

void Encoder::EncodeRange(const std::vector<std::string>& keys, size_t begin,
                          size_t end, std::vector<std::string>* out,
                          size_t* bits_sum) const {
  size_t bits = 0;
  const size_t lookahead = dict_->MaxLookahead();
  const size_t n = end - begin;
  if (n == 0) {
    *bits_sum = 0;
    return;
  }
  if (n == 1) {
    // Single key: no prefix to reuse and no batch to fan out — encode
    // straight through the devirtualized span with zero setup.
    const std::string& key = keys[begin];
    BitWriter writer;
    writer.ReserveBits(key.size() * 8);
    (*out)[begin] = EncodeWithTrace(key, 0, &writer, nullptr);
    *bits_sum = writer.total_bits();
    if (observer_) observer_->OnEncode(key, writer.total_bits());
    return;
  }

  // Shared-prefix reuse (Appendix B) only ever fires when some adjacent
  // pair shares at least `lookahead` leading bytes. The prescan is a
  // bounded memcmp per pair (lookahead <= 4 for the gram dictionaries);
  // unbounded-lookahead dictionaries (ALM family) can never reuse.
  bool any_reuse = false;
  if (lookahead != std::numeric_limits<size_t>::max()) {
    for (size_t i = begin + 1; i < end && !any_reuse; i++)
      any_reuse =
          simd::SharedPrefixAtLeast(keys[i - 1], keys[i], lookahead);
  }

  if (!any_reuse) {
    // No prefix to reuse: hand the whole run to the dictionary's
    // multi-key path (interleaved descent in the trie-backed impls when
    // the working set warrants it). Per-key output is byte-identical to
    // Encode, so slicing and path choice never change the encoding.
    // Typical batch widths fit the stack buffers; larger runs (e.g. the
    // full-parallel chunks) fall back to heap scratch.
    constexpr size_t kStackBatch = 64;
    std::string_view views_buf[kStackBatch];
    size_t bits_buf[kStackBatch];
    std::vector<std::string_view> views_heap;
    std::vector<size_t> bits_heap;
    std::string_view* views = views_buf;
    size_t* key_bits = bits_buf;
    if (n > kStackBatch) {
      views_heap.resize(n);
      bits_heap.resize(n);
      views = views_heap.data();
      key_bits = bits_heap.data();
    }
    for (size_t i = 0; i < n; i++) views[i] = keys[begin + i];
    dict_->EncodeMulti(views, n, out->data() + begin, key_bits);
    for (size_t i = 0; i < n; i++) {
      bits += key_bits[i];
      if (observer_) observer_->OnEncode(views[i], key_bits[i]);
    }
    *bits_sum = bits;
    return;
  }

  // The writer's state flows from key to key: after encoding key i-1 it
  // holds exactly that key's bits, so reusing a shared prefix is a rewind
  // (TruncateToBits) rather than a copy back out of the previous output.
  std::vector<EncodeTrace> trace;
  BitWriter writer;
  writer.ReserveBits(keys[begin].size() * 8);
  for (size_t i = begin; i < end; i++) {
    const std::string& key = keys[i];
    size_t resume = 0;
    size_t resume_bits = 0;
    if (i > begin) {
      size_t l = simd::LcpLen(keys[i - 1], key);
      // Reuse lookups [0, j): every reused lookup must have inspected
      // only bytes inside the common prefix, i.e.
      // trace[j-1].src_pos + lookahead <= l. trace.back() is a sentinel
      // at (key_len, total_bits), so j == trace.size()-1 reuses the whole
      // previous key. The trace is truncated in place (EncodeTrace is
      // trivially destructible, so resize-down is a size store) and the
      // span appends the fresh tail onto the kept prefix.
      size_t j = 0;
      while (j + 1 < trace.size() &&
             trace[j].src_pos + lookahead <= l)
        j++;
      if (j > 0) {
        resume = trace[j].src_pos;
        resume_bits = trace[j].bit_pos;
      }
      trace.resize(j);
    }
    writer.TruncateToBits(resume_bits);
    dict_->EncodeSpan(key, resume, &writer, &trace);
    trace.push_back({static_cast<uint32_t>(key.size()),
                     static_cast<uint32_t>(writer.total_bits())});
    writer.CopyBytesTo(&(*out)[i]);
    bits += writer.total_bits();
    if (observer_) observer_->OnEncode(key, writer.total_bits());
  }
  *bits_sum = bits;
}

std::vector<std::string> Encoder::EncodeBatch(
    const std::vector<std::string>& keys, size_t* total_bits,
    unsigned num_threads) const {
  std::vector<std::string> out(keys.size());
  if (num_threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw ? hw : 1;
  }
  // Chunked fan-out: each worker runs the sequential algorithm on a
  // contiguous slice. Per-key encodings do not depend on the slicing, so
  // the output is identical to the single-threaded path; only the
  // shared-prefix reuse at the (num_threads - 1) chunk seams is forgone.
  if (keys.size() < kParallelBatchMin) num_threads = 1;
  num_threads = static_cast<unsigned>(
      std::min<size_t>(num_threads, std::max<size_t>(keys.size(), 1)));
  if (num_threads <= 1) {
    size_t bits = 0;
    EncodeRange(keys, 0, keys.size(), &out, &bits);
    if (total_bits) *total_bits = bits;
    return out;
  }

  std::vector<size_t> chunk_bits(num_threads, 0);
  std::vector<std::exception_ptr> errors(num_threads);
  std::vector<std::thread> workers;
  workers.reserve(num_threads - 1);
  const size_t per = (keys.size() + num_threads - 1) / num_threads;
  auto run_chunk = [this, &keys, &out, &chunk_bits, &errors](unsigned t,
                                                            size_t begin,
                                                            size_t end) {
    try {
      EncodeRange(keys, begin, end, &out, &chunk_bits[t]);
    } catch (...) {
      // Captured and rethrown on the calling thread after the join — an
      // exception escaping a worker would otherwise std::terminate.
      errors[t] = std::current_exception();
    }
  };
  unsigned spawned = 1;  // chunk 0 runs on the calling thread
  try {
    for (unsigned t = 1; t < num_threads; t++) {
      size_t begin = std::min(keys.size(), per * t);
      size_t end = std::min(keys.size(), begin + per);
      workers.emplace_back(run_chunk, t, begin, end);
      spawned = t + 1;
    }
  } catch (const std::system_error&) {
    // Thread creation failed (e.g. process thread limit): finish the
    // unspawned chunks on this thread rather than aborting the batch.
  }
  run_chunk(0, 0, std::min(keys.size(), per));
  for (unsigned t = spawned; t < num_threads; t++) {
    size_t begin = std::min(keys.size(), per * t);
    size_t end = std::min(keys.size(), begin + per);
    run_chunk(t, begin, end);
  }
  for (auto& w : workers) w.join();
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
  if (total_bits) {
    size_t bits = 0;
    for (size_t b : chunk_bits) bits += b;
    *total_bits = bits;
  }
  return out;
}

std::pair<std::string, std::string> Encoder::EncodePair(
    std::string_view a, std::string_view b) const {
  std::vector<std::string> keys{std::string(a), std::string(b)};
  auto enc = EncodeBatch(keys);
  return {std::move(enc[0]), std::move(enc[1])};
}

}  // namespace hope
