#include "hope/encoder.h"

#include <algorithm>
#include <cassert>
#include <thread>

#include "common/str_utils.h"

namespace hope {

void BitWriter::InitFromPrefix(const std::string& bytes, size_t bits) {
  Clear();
  size_t full_bytes = bits / 8;
  buf_.assign(bytes, 0, full_bytes);
  total_bits_ = full_bytes * 8;
  size_t rem = bits - total_bits_;
  if (rem > 0) {
    uint8_t last = static_cast<uint8_t>(bytes[full_bytes]);
    // Keep the top `rem` bits of the partial byte in the accumulator.
    acc_ = (static_cast<uint64_t>(last) << 56) &
           ~(~uint64_t{0} >> rem);
    acc_bits_ = static_cast<int>(rem);
    total_bits_ += rem;
  }
}

void BitWriter::Append(Code code) {
  uint64_t bits = code.bits;
  int len = code.len;
  total_bits_ += len;
  int room = 64 - acc_bits_;
  if (len < room) {
    if (len > 0) acc_ |= bits >> acc_bits_;
    acc_bits_ += len;
    return;
  }
  // Fill the accumulator and flush a full word.
  acc_ |= acc_bits_ > 0 ? bits >> acc_bits_ : bits;
  FlushAcc();
  int taken = room;
  acc_ = taken < 64 ? bits << taken : 0;
  acc_bits_ = len - taken;
}

void BitWriter::FlushAcc() {
  char word[8];
  for (int i = 0; i < 8; i++)
    word[i] = static_cast<char>((acc_ >> (56 - 8 * i)) & 0xFF);
  buf_.append(word, 8);
  acc_ = 0;
  acc_bits_ = 0;
}

std::string BitWriter::TakeBytes() {
  std::string out = buf_;
  int bytes = (acc_bits_ + 7) / 8;
  for (int i = 0; i < bytes; i++)
    out.push_back(static_cast<char>((acc_ >> (56 - 8 * i)) & 0xFF));
  return out;
}

std::string Encoder::EncodeWithTrace(std::string_view key, size_t resume_src,
                                     BitWriter* writer,
                                     std::vector<TracePoint>* trace) const {
  std::string_view src = key.substr(resume_src);
  size_t pos = resume_src;
  while (!src.empty()) {
    if (trace)
      trace->push_back({static_cast<uint32_t>(pos),
                        static_cast<uint32_t>(writer->total_bits())});
    LookupResult r = dict_->Lookup(src);
    assert(r.consumed > 0 && r.consumed <= src.size());
    writer->Append(r.code);
    src.remove_prefix(r.consumed);
    pos += r.consumed;
  }
  if (trace)
    trace->push_back({static_cast<uint32_t>(pos),
                      static_cast<uint32_t>(writer->total_bits())});
  return writer->TakeBytes();
}

std::string Encoder::Encode(std::string_view key, size_t* bit_len) const {
  BitWriter writer;
  std::string out = EncodeWithTrace(key, 0, &writer, nullptr);
  if (bit_len) *bit_len = writer.total_bits();
  if (observer_) observer_->OnEncode(key, writer.total_bits());
  return out;
}

void Encoder::EncodeRange(const std::vector<std::string>& keys, size_t begin,
                          size_t end, std::vector<std::string>* out,
                          size_t* bits_sum) const {
  size_t bits = 0;
  const size_t lookahead = dict_->MaxLookahead();
  if (lookahead == std::numeric_limits<size_t>::max()) {
    // Unbounded lookahead (ALM family): arbitrary-length symbols prevent
    // determining an aligned shared prefix a priori (Appendix B).
    for (size_t i = begin; i < end; i++) {
      size_t key_bits = 0;
      (*out)[i] = Encode(keys[i], &key_bits);
      bits += key_bits;
    }
    *bits_sum = bits;
    return;
  }

  std::vector<TracePoint> trace, next_trace;
  BitWriter writer;
  for (size_t i = begin; i < end; i++) {
    const std::string& key = keys[i];
    writer.Clear();
    next_trace.clear();
    size_t resume = 0;
    if (i > begin) {
      size_t l = LcpLen(keys[i - 1], key);
      // Reuse lookups [0, j): every reused lookup must have inspected
      // only bytes inside the common prefix, i.e.
      // trace[j-1].src_pos + lookahead <= l. trace.back() is a sentinel
      // at (key_len, total_bits), so j == trace.size()-1 reuses the whole
      // previous key.
      size_t j = 0;
      while (j + 1 < trace.size() &&
             trace[j].src_pos + lookahead <= l)
        j++;
      if (j > 0) {
        writer.InitFromPrefix((*out)[i - 1], trace[j].bit_pos);
        next_trace.assign(trace.begin(), trace.begin() + static_cast<long>(j));
        resume = trace[j].src_pos;
      }
    }
    (*out)[i] = EncodeWithTrace(key, resume, &writer, &next_trace);
    bits += writer.total_bits();
    if (observer_) observer_->OnEncode(key, writer.total_bits());
    std::swap(trace, next_trace);
  }
  *bits_sum = bits;
}

std::vector<std::string> Encoder::EncodeBatch(
    const std::vector<std::string>& keys, size_t* total_bits,
    unsigned num_threads) const {
  std::vector<std::string> out(keys.size());
  if (num_threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw ? hw : 1;
  }
  // Chunked fan-out: each worker runs the sequential algorithm on a
  // contiguous slice. Per-key encodings do not depend on the slicing, so
  // the output is identical to the single-threaded path; only the
  // shared-prefix reuse at the (num_threads - 1) chunk seams is forgone.
  if (keys.size() < kParallelBatchMin) num_threads = 1;
  num_threads = static_cast<unsigned>(
      std::min<size_t>(num_threads, std::max<size_t>(keys.size(), 1)));
  if (num_threads <= 1) {
    size_t bits = 0;
    EncodeRange(keys, 0, keys.size(), &out, &bits);
    if (total_bits) *total_bits = bits;
    return out;
  }

  std::vector<size_t> chunk_bits(num_threads, 0);
  std::vector<std::exception_ptr> errors(num_threads);
  std::vector<std::thread> workers;
  workers.reserve(num_threads - 1);
  const size_t per = (keys.size() + num_threads - 1) / num_threads;
  auto run_chunk = [this, &keys, &out, &chunk_bits, &errors](unsigned t,
                                                            size_t begin,
                                                            size_t end) {
    try {
      EncodeRange(keys, begin, end, &out, &chunk_bits[t]);
    } catch (...) {
      // Captured and rethrown on the calling thread after the join — an
      // exception escaping a worker would otherwise std::terminate.
      errors[t] = std::current_exception();
    }
  };
  unsigned spawned = 1;  // chunk 0 runs on the calling thread
  try {
    for (unsigned t = 1; t < num_threads; t++) {
      size_t begin = std::min(keys.size(), per * t);
      size_t end = std::min(keys.size(), begin + per);
      workers.emplace_back(run_chunk, t, begin, end);
      spawned = t + 1;
    }
  } catch (const std::system_error&) {
    // Thread creation failed (e.g. process thread limit): finish the
    // unspawned chunks on this thread rather than aborting the batch.
  }
  run_chunk(0, 0, std::min(keys.size(), per));
  for (unsigned t = spawned; t < num_threads; t++) {
    size_t begin = std::min(keys.size(), per * t);
    size_t end = std::min(keys.size(), begin + per);
    run_chunk(t, begin, end);
  }
  for (auto& w : workers) w.join();
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
  if (total_bits) {
    size_t bits = 0;
    for (size_t b : chunk_bits) bits += b;
    *total_bits = bits;
  }
  return out;
}

std::pair<std::string, std::string> Encoder::EncodePair(
    std::string_view a, std::string_view b) const {
  std::vector<std::string> keys{std::string(a), std::string(b)};
  auto enc = EncodeBatch(keys);
  return {std::move(enc[0]), std::move(enc[1])};
}

}  // namespace hope
