#include "hope/dictionary.h"

#include <cstdlib>
#include <cstring>

#include "common/check.h"

namespace hope {

bool Dictionary::UseInterleavedDescent(size_t memory_bytes) {
  // Measured on the tracked bench set: with the dictionary resident in
  // the cache hierarchy the straight devirtualized loop beats the
  // interleaved walk by 1.5-2x (there are no misses to overlap, and the
  // round-robin cursor state machine defeats the branch predictor) — and
  // the bench host's 260 MiB LLC keeps even 2^16-entry dictionaries
  // resident, so the auto threshold is deliberately conservative: only a
  // working set clearly past common LLC sizes interleaves by default.
  constexpr size_t kAutoThresholdBytes = size_t{64} << 20;
  if (const char* env = std::getenv("HOPE_INTERLEAVE")) {
    if (std::strcmp(env, "always") == 0) return true;
    if (std::strcmp(env, "never") == 0) return false;
  }
  return memory_bytes >= kAutoThresholdBytes;
}

void Dictionary::EncodeSpan(std::string_view src, size_t base,
                            BitWriter* writer,
                            std::vector<EncodeTrace>* trace) const {
  std::string_view rest = src.substr(base);
  size_t pos = base;
  while (!rest.empty()) {
    if (trace)
      trace->push_back({static_cast<uint32_t>(pos),
                        static_cast<uint32_t>(writer->total_bits())});
    LookupResult r = Lookup(rest);
    // Always-on: remove_prefix past the end is UB, and consumed == 0
    // spins forever. The concrete-impl ctors validate the structural
    // invariants that make their own overshoot-free loops safe; this
    // generic loop is the one path that dereferences the contract, so it
    // traps instead of trusting a (possibly deserialized) dictionary.
    HOPE_CHECK_MSG(r.consumed > 0 && r.consumed <= rest.size(),
                   "dictionary lookup violated the consumed-bytes contract");
    writer->Append(r.code);
    rest.remove_prefix(r.consumed);
    pos += r.consumed;
  }
}

void Dictionary::EncodeMulti(const std::string_view* keys, size_t n,
                             std::string* out, size_t* bits) const {
  BitWriter writer;
  for (size_t i = 0; i < n; i++) {
    writer.Clear();
    EncodeSpan(keys[i], 0, &writer, nullptr);
    out[i] = writer.TakeBytes();
    bits[i] = writer.total_bits();
  }
}

}  // namespace hope
