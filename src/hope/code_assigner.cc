#include "hope/code_assigner.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "hope/hu_tucker.h"

namespace hope {

std::vector<Code> AssignFixedLengthCodes(size_t n) {
  std::vector<Code> codes(n);
  int len = std::max(1, CeilLog2(n));
  for (size_t i = 0; i < n; i++) {
    codes[i].len = static_cast<uint8_t>(len);
    codes[i].bits = static_cast<uint64_t>(i) << (64 - len);
  }
  return codes;
}

std::vector<Code> AssignHuTuckerCodes(const std::vector<double>& weights) {
  return HuTuckerCodes(weights);
}

std::vector<Code> AssignRangeCodes(const std::vector<double>& weights) {
  const size_t n = weights.size();
  std::vector<Code> codes(n);
  if (n == 0) return codes;
  if (n == 1) {
    codes[0] = Code{0, 1};
    return codes;
  }
  // Scale to integer frequencies with a floor, as in the Hu-Tucker path.
  double total = 0;
  for (double w : weights) total += w;
  if (total <= 0) total = 1;
  const uint64_t kScale = uint64_t{1} << 20;
  std::vector<uint64_t> freq(n);
  uint64_t T = 0;
  for (size_t i = 0; i < n; i++) {
    freq[i] = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::llround(weights[i] / total * static_cast<double>(kScale))));
    T += freq[i];
  }
  // Shannon-Fano-Elias over the cumulative distribution: code i is the
  // smallest l_i-bit grid point at or above cum_i, with 2^-l_i <= p_i/2
  // so the grid cell fits inside [cum_i, cum_i + p_i). Cells inside
  // disjoint intervals are never nested, hence the code is prefix-free
  // and monotone.
  unsigned __int128 cum = 0;
  for (size_t i = 0; i < n; i++) {
    uint64_t need = (2 * T + freq[i] - 1) / freq[i];  // ceil(2T / P_i)
    int l = CeilLog2(need);
    if (l > 62) throw std::runtime_error("range code exceeds 62 bits");
    unsigned __int128 pow = static_cast<unsigned __int128>(1) << l;
    uint64_t v = static_cast<uint64_t>((cum * pow + T - 1) / T);  // ceil
    codes[i].len = static_cast<uint8_t>(l);
    codes[i].bits = static_cast<uint64_t>(v) << (64 - l);
    cum += freq[i];
  }
  return codes;
}

double ExpectedCodeLength(const std::vector<double>& weights,
                          const std::vector<Code>& codes) {
  double total = 0, bits = 0;
  for (size_t i = 0; i < weights.size(); i++) {
    total += weights[i];
    bits += weights[i] * codes[i].len;
  }
  return total <= 0 ? 0 : bits / total;
}

}  // namespace hope
