#include "hope/decoder.h"

#include <stdexcept>

#include "common/check.h"

namespace hope {

Decoder::Decoder(const std::vector<DictEntry>& entries) {
  nodes_.push_back(TrieNode());
  symbols_.reserve(entries.size());
  for (size_t i = 0; i < entries.size(); i++) {
    const DictEntry& e = entries[i];
    if (e.code.len > 64)
      throw std::invalid_argument("Decoder: code longer than 64 bits");
    symbols_.push_back(e.left_bound.empty()
                           ? std::string(1, '\0')
                           : e.left_bound.substr(0, e.symbol_len));
    int32_t node = 0;
    for (int b = 0; b < e.code.len; b++) {
      int bit = CodeBit(e.code, b);
      if (nodes_[node].entry >= 0)
        throw std::invalid_argument("Decoder: code is not prefix-free");
      if (nodes_[node].child[bit] < 0) {
        nodes_[node].child[bit] = static_cast<int32_t>(nodes_.size());
        nodes_.push_back(TrieNode());
      }
      node = nodes_[node].child[bit];
    }
    if (nodes_[node].entry >= 0)
      throw std::invalid_argument("Decoder: duplicate code");
    if (nodes_[node].child[0] >= 0 || nodes_[node].child[1] >= 0)
      throw std::invalid_argument("Decoder: code is not prefix-free");
    nodes_[node].entry = static_cast<int32_t>(i);
  }
}

std::string Decoder::Decode(std::string_view bytes, size_t bit_len) const {
  if (bit_len > bytes.size() * 8)
    throw std::invalid_argument("Decoder: bit length exceeds input");
  std::string out;
  out.reserve(bit_len / 4);
  int32_t node = 0;
  for (size_t i = 0; i < bit_len; i++) {
    int bit = (static_cast<uint8_t>(bytes[i / 8]) >> (7 - (i % 8))) & 1;
    node = nodes_[node].child[bit];
    if (node < 0)
      throw std::invalid_argument("Decoder: invalid code sequence");
    // Child indices are produced by the constructor and always in range;
    // live under sanitizers so a trie-construction bug traps at the read.
    HOPE_DCHECK(static_cast<size_t>(node) < nodes_.size());
    if (nodes_[node].entry >= 0) {
      HOPE_DCHECK(static_cast<size_t>(nodes_[node].entry) < symbols_.size());
      out += symbols_[nodes_[node].entry];
      node = 0;
    }
  }
  if (node != 0)
    throw std::invalid_argument("Decoder: trailing partial code");
  return out;
}

size_t Decoder::MemoryBytes() const {
  size_t bytes = nodes_.capacity() * sizeof(TrieNode);
  for (const auto& s : symbols_) bytes += s.capacity();
  return bytes;
}

}  // namespace hope
