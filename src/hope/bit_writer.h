// Append-only bit writer backed by a 64-bit accumulator. Codes are
// left-aligned (Code invariant: bits beyond `len` are zero), so a full
// accumulator flushes as one big-endian word — a byteswap + memcpy, not a
// byte loop — which runs once per 64 output bits on every key.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/bits.h"

namespace hope {

namespace detail {
inline uint64_t ToBigEndian64(uint64_t x) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  return x;
#else
  return __builtin_bswap64(x);
#endif
}
}  // namespace detail

/// Append-only bit writer backed by a 64-bit accumulator.
class BitWriter {
 public:
  void Clear() {
    buf_.clear();
    acc_ = 0;
    acc_bits_ = 0;
    total_bits_ = 0;
  }

  /// Pre-sizes the backing buffer for an expected output size; purely an
  /// allocation hint (EncodeRange estimates a bit budget per chunk).
  void ReserveBits(size_t bits) { buf_.reserve(bits / 8 + 8); }

  /// Rewinds the writer to its state after the first `bits` bits were
  /// appended (`bits` <= total_bits()). Equivalent to InitFromPrefix on
  /// this writer's own output, but with no byte copying — the batch
  /// encoder's shared-prefix reuse rewinds the previous key's tail off
  /// instead of re-seeding from the previous output string.
  void TruncateToBits(size_t bits) {
    size_t flushed = buf_.size() * 8;
    if (bits >= flushed) {
      // The cut lands inside the accumulator: drop pending bits.
      int keep = static_cast<int>(bits - flushed);
      acc_ = keep > 0 ? acc_ & ~(~uint64_t{0} >> keep) : 0;
      acc_bits_ = keep;
    } else {
      size_t full = bits / 8;
      int rem = static_cast<int>(bits % 8);
      acc_ = rem > 0 ? (static_cast<uint64_t>(static_cast<uint8_t>(
                            buf_[full]))
                        << 56) &
                           ~(~uint64_t{0} >> rem)
                     : 0;
      acc_bits_ = rem;
      buf_.resize(full);
    }
    total_bits_ = bits;
  }

  /// Seeds the writer with the first `bits` bits of an existing encoding.
  void InitFromPrefix(const std::string& bytes, size_t bits) {
    Clear();
    size_t full_bytes = bits / 8;
    buf_.assign(bytes, 0, full_bytes);
    total_bits_ = full_bytes * 8;
    size_t rem = bits - total_bits_;
    if (rem > 0) {
      uint8_t last = static_cast<uint8_t>(bytes[full_bytes]);
      // Keep the top `rem` bits of the partial byte in the accumulator.
      acc_ = (static_cast<uint64_t>(last) << 56) & ~(~uint64_t{0} >> rem);
      acc_bits_ = static_cast<int>(rem);
      total_bits_ += rem;
    }
  }

  void Append(Code code) {
    uint64_t bits = code.bits;
    int len = code.len;
    total_bits_ += len;
    int room = 64 - acc_bits_;
    if (len < room) {
      if (len > 0) acc_ |= bits >> acc_bits_;
      acc_bits_ += len;
      return;
    }
    // Fill the accumulator and flush a full word.
    acc_ |= acc_bits_ > 0 ? bits >> acc_bits_ : bits;
    FlushAcc();
    int taken = room;
    acc_ = taken < 64 ? bits << taken : 0;
    acc_bits_ = len - taken;
  }

  /// Zero-pads to a byte boundary and returns the bytes; the writer keeps
  /// its state so the caller can read total_bits().
  std::string TakeBytes() const {
    std::string out;
    CopyBytesTo(&out);
    return out;
  }

  /// TakeBytes into an existing string, reusing its capacity — the batch
  /// path writes straight into the caller's output slot instead of
  /// constructing a temporary.
  void CopyBytesTo(std::string* out) const {
    size_t bytes = static_cast<size_t>(acc_bits_ + 7) / 8;
    // The accumulator's bits beyond acc_bits_ are zero (Code invariant),
    // so the top `bytes` big-endian bytes are already zero-padded.
    uint64_t be = detail::ToBigEndian64(acc_);
    constexpr size_t kStage = 40;
    if (buf_.size() <= kStage - 8) {
      // Short encoding (the per-key common case): stage everything in one
      // buffer so the copy-out is a single assign, not assign + append.
      char stage[kStage];
      std::memcpy(stage, buf_.data(), buf_.size());
      std::memcpy(stage + buf_.size(), &be, 8);
      out->assign(stage, buf_.size() + bytes);
      return;
    }
    out->reserve(buf_.size() + bytes);
    *out = buf_;
    out->append(reinterpret_cast<const char*>(&be), bytes);
  }

  size_t total_bits() const { return total_bits_; }

  /// Stack-local mirror of the accumulator state for hot append loops.
  /// Appends through a BitWriter* reload acc_/acc_bits_ around every store
  /// the compiler cannot disambiguate (the byte buffer holds chars, which
  /// may alias anything); the mirror keeps them in locals the whole span
  /// and syncs back on destruction. While a Local is live, the writer's
  /// own state is stale — read total_bits() from the Local, not the
  /// writer, and let it go out of scope before touching the writer again.
  class Local {
   public:
    explicit Local(BitWriter* w)
        : w_(w),
          acc_(w->acc_),
          acc_bits_(w->acc_bits_),
          total_bits_(w->total_bits_) {}
    ~Local() {
      w_->acc_ = acc_;
      w_->acc_bits_ = acc_bits_;
      w_->total_bits_ = total_bits_;
    }
    Local(const Local&) = delete;
    Local& operator=(const Local&) = delete;

    void Append(Code code) {
      uint64_t bits = code.bits;
      int len = code.len;
      total_bits_ += static_cast<size_t>(len);
      int room = 64 - acc_bits_;
      if (len < room) {
        if (len > 0) acc_ |= bits >> acc_bits_;
        acc_bits_ += len;
        return;
      }
      acc_ |= acc_bits_ > 0 ? bits >> acc_bits_ : bits;
      w_->AppendWord(acc_);
      int taken = room;
      acc_ = taken < 64 ? bits << taken : 0;
      acc_bits_ = len - taken;
    }

    size_t total_bits() const { return total_bits_; }

   private:
    BitWriter* w_;
    uint64_t acc_;
    int acc_bits_;
    size_t total_bits_;
  };

 private:
  std::string buf_;
  uint64_t acc_ = 0;   // left-aligned pending bits
  int acc_bits_ = 0;   // number of pending bits (< 64)
  size_t total_bits_ = 0;

  void AppendWord(uint64_t acc) {
    uint64_t be = detail::ToBigEndian64(acc);
    buf_.append(reinterpret_cast<const char*>(&be), 8);
  }

  void FlushAcc() {
    AppendWord(acc_);
    acc_ = 0;
    acc_bits_ = 0;
  }
};

}  // namespace hope
