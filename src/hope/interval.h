// Core data model for the string-axis compression model (§3.1).
//
// A dictionary encoding scheme is a list of connected, disjoint intervals
// [b_i, b_{i+1}) covering the whole string axis. Each interval carries a
// non-empty symbol s_i (the common prefix of every string in the interval)
// and, after code assignment, an order-preserving prefix code c_i.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bits.h"

namespace hope {

/// An interval produced by a symbol selector, before code assignment.
/// Intervals are kept sorted by `left_bound`; interval i spans
/// [left_bound_i, left_bound_{i+1}), the last one extends to +infinity.
struct IntervalSpec {
  std::string left_bound;  ///< inclusive lower boundary
  std::string symbol;      ///< non-empty common prefix of the interval
  double weight = 0;       ///< access frequency (filled by test encode)
};

/// A finalized dictionary entry: boundary, symbol length, and code.
struct DictEntry {
  std::string left_bound;
  uint32_t symbol_len = 0;  ///< bytes consumed when this entry is hit
  Code code;
};

/// Result of a dictionary lookup: the code to emit and the number of
/// source bytes consumed.
struct LookupResult {
  Code code;
  uint32_t consumed = 0;
};

/// Dictionaries store entries packed to 8 bytes, like the paper's 32-bit
/// code + 8-bit length layout (§4.2). Hu-Tucker weights are floored so
/// codes never exceed 32 bits (see hu_tucker.cc).
struct PackedCode {
  uint32_t bits = 0;  ///< left-aligned in 32 bits
  uint8_t len = 0;
  uint8_t symbol_len = 0;
};

inline PackedCode PackEntry(const DictEntry& e) {
  if (e.code.len > 32 || e.symbol_len > 255)
    throw std::invalid_argument("dictionary entry exceeds packed layout");
  PackedCode p;
  p.bits = static_cast<uint32_t>(e.code.bits >> 32);
  p.len = e.code.len;
  p.symbol_len = static_cast<uint8_t>(e.symbol_len);
  return p;
}

inline LookupResult UnpackEntry(PackedCode p) {
  return {Code{static_cast<uint64_t>(p.bits) << 32, p.len}, p.symbol_len};
}

}  // namespace hope
