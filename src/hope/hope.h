// Public facade of the High-speed Order-Preserving Encoder.
//
// Typical use:
//
//   std::vector<std::string> samples = ...;   // ~1% of the keys
//   auto hope = hope::Hope::Build(hope::Scheme::kDoubleChar, samples);
//   std::string enc = hope->Encode(key);      // order-preserving
//
// Encoded keys compare in the same order as the originals (§3.1), and any
// key — sampled or not — can be encoded thanks to dictionary completeness.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hope/decoder.h"
#include "hope/dictionary.h"
#include "hope/encoder.h"

namespace hope {

/// The six compression schemes of §3.3.
enum class Scheme {
  kSingleChar,   ///< FIVC: per-byte intervals, Hu-Tucker codes
  kDoubleChar,   ///< FIVC: per-byte-pair intervals, Hu-Tucker codes
  kAlm,          ///< VIFC: ALM intervals, fixed-length codes
  kThreeGrams,   ///< VIVC: 3-gram intervals, Hu-Tucker codes
  kFourGrams,    ///< VIVC: 4-gram intervals, Hu-Tucker codes
  kAlmImproved,  ///< VIVC: suffix-statistics ALM, Hu-Tucker codes
};

const char* SchemeName(Scheme scheme);

/// Dictionary structure override (Table 1 defaults apply when kDefault).
enum class DictImpl {
  kDefault,
  kBinarySearch,  ///< sorted-array baseline (ablation)
  kArray,
  kBitmapTrie,
  kArt,
};

/// Per-module build-time breakdown (Fig. 9).
struct BuildStats {
  double symbol_select_seconds = 0;
  double code_assign_seconds = 0;
  double dict_build_seconds = 0;
  size_t num_entries = 0;
  size_t dict_memory_bytes = 0;

  double TotalSeconds() const {
    return symbol_select_seconds + code_assign_seconds + dict_build_seconds;
  }
};

/// A built HOPE instance: a dictionary plus an encoder (and a decoder for
/// losslessness checks / covering reads).
class Hope {
 public:
  /// Builds the dictionary from sampled keys (the build phase, §4.1).
  /// `dict_size_limit` bounds the number of dictionary entries for the
  /// variable-interval schemes; Single-/Double-Char are fixed-size.
  static std::unique_ptr<Hope> Build(Scheme scheme,
                                     const std::vector<std::string>& samples,
                                     size_t dict_size_limit = size_t{1} << 16,
                                     BuildStats* stats = nullptr,
                                     DictImpl impl = DictImpl::kDefault);

  std::string Encode(std::string_view key, size_t* bit_len = nullptr) const {
    return encoder_->Encode(key, bit_len);
  }

  std::vector<std::string> EncodeBatch(const std::vector<std::string>& keys,
                                       size_t* total_bits = nullptr,
                                       unsigned num_threads = 1) const {
    return encoder_->EncodeBatch(keys, total_bits, num_threads);
  }

  std::pair<std::string, std::string> EncodePair(std::string_view a,
                                                 std::string_view b) const {
    return encoder_->EncodePair(a, b);
  }

  /// Reconstructs a key from its encoding and exact bit length.
  std::string Decode(std::string_view bytes, size_t bit_len) const {
    return decoder_->Decode(bytes, bit_len);
  }

  const Dictionary& dict() const { return encoder_->dict(); }
  const Encoder& encoder() const { return *encoder_; }
  Scheme scheme() const { return scheme_; }

  /// Installs an encode-path stats hook (see EncodeObserver). Must be
  /// called before the instance is shared across threads — the dynamic
  /// DictionaryManager attaches its collector here before publishing a
  /// version as `shared_ptr<const Hope>`.
  void SetEncodeObserver(EncodeObserver* observer) {
    encoder_->set_observer(observer);
  }

  /// Uncompressed bytes / compressed bytes over a key set (§6.1).
  double CompressionRate(const std::vector<std::string>& keys) const;

  /// Serializes the scheme and dictionary entries into a portable byte
  /// string, so the (possibly expensive) build phase runs once and the
  /// encoder can be reloaded with Deserialize(). The serialized
  /// dictionary reproduces the exact same encodings.
  std::string Serialize() const;

  /// Rebuilds an encoder from Serialize() output. Returns nullptr on a
  /// malformed input.
  static std::unique_ptr<Hope> Deserialize(std::string_view bytes);

  /// Fresh instance over the same dictionary entries (identical
  /// encodings, no observer attached). The supported way to measure a
  /// managed/observed instance without feeding its stats hook.
  std::unique_ptr<Hope> Clone() const;

 private:
  Hope(Scheme scheme, std::unique_ptr<Encoder> encoder,
       std::unique_ptr<Decoder> decoder, std::vector<DictEntry> entries)
      : scheme_(scheme),
        encoder_(std::move(encoder)),
        decoder_(std::move(decoder)),
        entries_(std::move(entries)) {}

  static std::unique_ptr<Hope> FromEntries(Scheme scheme,
                                           std::vector<DictEntry> entries,
                                           DictImpl impl, BuildStats* stats);

  Scheme scheme_;
  std::unique_ptr<Encoder> encoder_;
  std::unique_ptr<Decoder> decoder_;
  std::vector<DictEntry> entries_;  ///< retained for Serialize()
};

/// Exposed for tests and benchmarks: runs only the symbol-selection and
/// code-assignment phases, returning finalized entries.
std::vector<DictEntry> BuildDictEntries(
    Scheme scheme, const std::vector<std::string>& samples,
    size_t dict_size_limit, BuildStats* stats = nullptr);

}  // namespace hope
