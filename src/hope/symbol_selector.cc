#include "hope/symbol_selector.h"

#include <algorithm>

#include "common/check.h"
#include "common/str_utils.h"

namespace hope {

void AddGapIntervals(const std::string& lo, const std::string& hi,
                     std::vector<IntervalSpec>* out) {
  std::string cur = lo;
  while (true) {
    if (!hi.empty() && cur >= hi) return;
    std::string prefix = IntervalCommonPrefix(cur, hi);
    if (!prefix.empty()) {
      out->push_back({cur, std::move(prefix), 0});
      return;
    }
    // No common prefix across the whole gap: peel off the first-byte
    // region of `cur`. Every non-empty string in [cur, b+1) starts with b
    // (for cur == "" the region is ["", "\x01") with symbol "\x00").
    unsigned b = cur.empty() ? 0 : static_cast<unsigned char>(cur[0]);
    out->push_back({cur, std::string(1, static_cast<char>(b)), 0});
    if (b == 255) return;  // region [cur, +inf) covered
    std::string region_end(1, static_cast<char>(b + 1));
    if (!hi.empty() && hi <= region_end) return;  // gap ends inside region
    cur = std::move(region_end);
  }
}

void TestEncodeWeights(const std::vector<std::string>& samples,
                       std::vector<IntervalSpec>* intervals) {
  // Sorted boundary binary search: the entry for a source string is the
  // last interval whose left bound is <= the string.
  auto& iv = *intervals;
  for (auto& spec : iv) spec.weight = 0;
  auto lookup = [&iv](std::string_view src) -> size_t {
    size_t lo = 0, hi = iv.size();  // invariant: iv[lo].left_bound <= src
    while (hi - lo > 1) {
      size_t mid = (lo + hi) / 2;
      if (std::string_view(iv[mid].left_bound) <= src)
        lo = mid;
      else
        hi = mid;
    }
    return lo;
  };
  for (const std::string& key : samples) {
    std::string_view src(key);
    while (!src.empty()) {
      size_t idx = lookup(src);
      iv[idx].weight += 1;
      size_t consumed = iv[idx].symbol.size();
      HOPE_DCHECK(consumed > 0 && consumed <= src.size());
      src.remove_prefix(consumed);
    }
  }
}

std::string ValidateIntervals(const std::vector<IntervalSpec>& intervals) {
  if (intervals.empty()) return "no intervals";
  if (!intervals[0].left_bound.empty())
    return "first interval does not start at -infinity";
  for (size_t i = 0; i < intervals.size(); i++) {
    const auto& spec = intervals[i];
    const std::string& lb = spec.left_bound;
    if (spec.symbol.empty())
      return "empty symbol at index " + std::to_string(i);
    if (i + 1 < intervals.size() &&
        !(lb < intervals[i + 1].left_bound))
      return "boundaries not strictly increasing at index " +
             std::to_string(i);
    // Lower end: every non-empty string >= lb in the interval must start
    // with the symbol. This requires lb itself to start with the symbol,
    // except the head interval (lb == ""), whose shortest non-empty member
    // is "\0" and therefore requires the symbol to be exactly "\0".
    size_t lcp = LcpLen(lb, spec.symbol);
    bool lb_has_symbol_prefix = lcp == spec.symbol.size();
    bool head_like = lb.empty() && spec.symbol == std::string(1, '\0');
    if (!lb_has_symbol_prefix && !head_like)
      return "left bound does not start with symbol at index " +
             std::to_string(i);
    // Upper end: the interval must not extend past the symbol's range.
    std::string ub = PrefixUpperBound(spec.symbol);
    if (i + 1 < intervals.size()) {
      const std::string& next = intervals[i + 1].left_bound;
      if (!ub.empty() && next > ub)
        return "interval extends past symbol range at index " +
               std::to_string(i);
    } else if (!ub.empty()) {
      return "last interval's symbol does not cover +infinity";
    }
  }
  return "";
}

}  // namespace hope
