// Single-Char selector (§3.3): 256 fixed-length intervals [c, c+1), one
// per byte value. This is the interval layout of classic Hu-Tucker /
// Huffman character coding.
#include "hope/symbol_selector.h"

namespace hope {

namespace {

class SingleCharSelector : public SymbolSelector {
 public:
  std::vector<IntervalSpec> Select(const std::vector<std::string>& samples,
                                   size_t dict_limit) override {
    (void)samples;
    (void)dict_limit;  // fixed 256-entry dictionary
    std::vector<IntervalSpec> intervals;
    intervals.reserve(256);
    for (int c = 0; c < 256; c++) {
      IntervalSpec spec;
      // The first interval starts at -infinity ("") so the dictionary is
      // complete; its symbol "\0" still prefixes every non-empty member.
      spec.left_bound =
          c == 0 ? std::string() : std::string(1, static_cast<char>(c));
      spec.symbol = std::string(1, static_cast<char>(c));
      intervals.push_back(std::move(spec));
    }
    return intervals;
  }
};

}  // namespace

std::unique_ptr<SymbolSelector> MakeSingleCharSelector() {
  return std::make_unique<SingleCharSelector>();
}

}  // namespace hope
