// ConcurrentShardedIndex<Tree>: the serving-grade counterpart of
// dynamic/sharded_index.h — same per-shard VersionedIndex storage, but
// built for many reader threads and per-shard serialized writers
// instead of one coarse single-writer loop.
//
// Read path (lock-free in shape, in the style of the btree24 optimistic
// DataStructureWrapper): routing state is published through atomic raw
// pointers guarded by the manager's EpochReclaimer — readers pin an
// ebr::Guard, load the RouterVersion (and the in-flight RebalancePlan,
// if any), and route without taking the migration lock. Shard probes
// take that shard's shared_mutex in shared mode and run
// VersionedIndex::Peek, the const non-migrating lookup, so readers only
// ever wait on a shard's writer, never on each other and never on the
// migration of some other shard.
//
// Write path: Insert/Erase take the owning shard's lock exclusively.
// An insert validates its routing *after* acquiring the shard lock and
// re-routes if a rebalance moved the key's range in between — the lock
// order (router advance, then cursor collection under the source
// shard's lock) makes the recheck sufficient: a key inserted into a
// shard that still owns it is either caught by the migration cursor or
// was never migrated away.
//
// Migration-transparent reads: PollMigration() applies rebalance plans
// in bounded batches instead of stop-the-world. When a plan starts, the
// plan pointer is published first and then the router advances to
// plan->to, so writers immediately target the new owners while the keys
// are still moving. A lookup that misses in the new owner and whose key
// lies in a moved range falls back to the old owner (double-routing).
// Every batch commits under BOTH shard locks and bumps migration_seq_
// before unlocking; a reader that missed in both owners re-reads the
// sequence and retries if it changed — the only way a live key can miss
// both probes is a batch committing between them, and that batch bumped
// the sequence. After a bounded number of optimistic retries the reader
// falls back to probing under the migration lock, which excludes batch
// commits entirely.
//
// Erase double-routes too, and erases in *both* owners (a key can
// transiently exist in both: a fresh insert into the new owner plus a
// stale not-yet-migrated copy in the old one; the stale copy must not
// outlive the erase or the next batch would resurrect the key — though
// even then InsertIfAbsent, not Insert, is what moves keys, so a
// migrated copy can never clobber a concurrent writer's fresher value).
//
// Scan() drains: it completes any in-flight plan (cross-shard order is
// undefined mid-plan — moved ranges interleave two shards' encodings)
// and then walks shards in boundary order under exclusive locks. Short
// scans are therefore heavier than points during a rebalance; that is
// the documented trade, and bench_serving measures it.
//
// Lock order (deadlock freedom): migration_mu_ before any shard mutex;
// shard mutexes in ascending shard index when two are held (batch
// commits). Readers take only one shard lock at a time.
//
// The manager must outlive the index, as with ShardedVersionedIndex.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/epoch_reclaim.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "dynamic/sharded_manager.h"
#include "dynamic/versioned_index.h"
#include "telemetry/registry.h"
#include "telemetry/trace_log.h"

namespace hope::serve {

template <typename Tree>
class ConcurrentShardedIndex {
 public:
  /// `manager` must outlive the index. Registers as a plan consumer so
  /// unapplied history is never pruned; adopts the current router.
  explicit ConcurrentShardedIndex(dynamic::ShardedDictionaryManager* manager)
      : manager_(manager) {
    auto reg = manager->RegisterIndex();
    registration_id_ = reg.id;
    router_ = std::move(reg.router);
    router_ptr_.store(router_.get(), std::memory_order_seq_cst);
    shards_.reserve(manager->num_shards());
    for (size_t i = 0; i < manager->num_shards(); i++)
      shards_.push_back(std::make_unique<Shard>(&manager->shard(i)));
  }

  ~ConcurrentShardedIndex() {
    manager_->DeregisterIndex(registration_id_);
    // Straggler readers pinned before destruction may still hold the
    // raw router/plan pointers; route the final references through the
    // reclaimer so they outlive any such pin (the manager's contract).
    // The lock is held for the same reason: a maintenance poller racing
    // destruction is already UB, but holding migration_mu_ keeps the
    // mig_/router_ handoff ordered against any straggling PollMigration.
    MutexLock mlk(migration_mu_);
    inflight_plan_.store(nullptr, std::memory_order_seq_cst);
    if (mig_.plan)
      manager_->reclaimer().Retire(
          [keep = std::move(mig_.plan)]() mutable { keep.reset(); });
    manager_->reclaimer().Retire(
        [keep = std::move(router_)]() mutable { keep.reset(); });
  }

  ConcurrentShardedIndex(const ConcurrentShardedIndex&) = delete;
  ConcurrentShardedIndex& operator=(const ConcurrentShardedIndex&) = delete;

  /// Wait-free routing snapshot (shard affinity for worker queues).
  size_t Route(const std::string& key) const {
    ebr::EpochReclaimer::Guard guard(manager_->reclaimer());
    return router_ptr_.load(std::memory_order_seq_cst)->Route(key);
  }

  void Insert(const std::string& key, uint64_t value)
      HOPE_EXCLUDES(migration_mu_) {
    for (int attempt = 0; attempt < kOptimisticRetries; attempt++) {
      size_t s = Route(key);
      WriterLock lk(shards_[s]->mu);
      // Revalidate under the shard lock: if a plan advanced the router
      // after we routed, inserting here could land the key in a shard
      // whose migration cursor was already collected — stranding it on
      // the wrong side of the new boundary forever. The recheck is
      // ordered after any such cursor collection by this very lock.
      if (Route(key) == s) {
        shards_[s]->index.Insert(key, value);
        return;
      }
    }
    // Rebalances keep racing the route (pathological); pin the routing
    // state still.
    MutexLock mlk(migration_mu_);
    size_t s = Route(key);
    WriterLock lk(shards_[s]->mu);
    shards_[s]->index.Insert(key, value);
  }

  bool Lookup(const std::string& key, uint64_t* value) const
      HOPE_EXCLUDES(migration_mu_) {
    for (int attempt = 0; attempt < kOptimisticRetries; attempt++) {
      const uint64_t seq = migration_seq_.load(std::memory_order_seq_cst);
      size_t primary = 0, fallback = kNoShard;
      RouteBoth(key, &primary, &fallback);
      if (ProbeShard(primary, key, value)) return true;
      if (fallback != kNoShard && ProbeShard(fallback, key, value))
        return true;
      // No batch committed across the two probes: the missing key was
      // genuinely absent in its owner (and, if double-routed, in its
      // previous owner too) at a single point in the commit order.
      if (migration_seq_.load(std::memory_order_seq_cst) == seq)
        return false;
    }
    lookup_slow_paths_.fetch_add(1, std::memory_order_relaxed);
    MutexLock mlk(migration_mu_);
    size_t primary = 0, fallback = kNoShard;
    RouteBoth(key, &primary, &fallback);
    if (ProbeShard(primary, key, value)) return true;
    return fallback != kNoShard && ProbeShard(fallback, key, value);
  }

  bool Erase(const std::string& key) HOPE_EXCLUDES(migration_mu_) {
    for (int attempt = 0; attempt < kOptimisticRetries; attempt++) {
      const uint64_t seq = migration_seq_.load(std::memory_order_seq_cst);
      size_t primary = 0, fallback = kNoShard;
      RouteBoth(key, &primary, &fallback);
      bool erased = EraseInShard(primary, key);
      if (fallback != kNoShard) erased |= EraseInShard(fallback, key);
      if (erased) return true;
      if (migration_seq_.load(std::memory_order_seq_cst) == seq)
        return false;
    }
    MutexLock mlk(migration_mu_);
    size_t primary = 0, fallback = kNoShard;
    RouteBoth(key, &primary, &fallback);
    bool erased = EraseInShard(primary, key);
    if (fallback != kNoShard) erased |= EraseInShard(fallback, key);
    return erased;
  }

  /// Ordered scan from the first key >= start, in global key order.
  /// Serializes with migration: any in-flight plan is completed first
  /// (mid-plan cross-shard order is undefined), and no batch can commit
  /// while the scan holds the migration lock.
  size_t Scan(const std::string& start, size_t count,
              std::vector<uint64_t>* out) HOPE_EXCLUDES(migration_mu_) {
    MutexLock mlk(migration_mu_);
    ApplyAllLocked();
    size_t produced = 0;
    const size_t first = router_->Route(start);
    for (size_t s = first; s < shards_.size() && produced < count; s++) {
      WriterLock lk(shards_[s]->mu);
      dynamic::VersionedIndex<Tree>& shard = shards_[s]->index;
      shard.MigrateAll();
      std::string enc = s == first ? shard.snapshot().hope->Encode(start)
                                   : std::string();
      produced += shard.tree().Scan(enc, count - produced, out);
    }
    return produced;
  }

  /// Applies pending rebalance plans in batches of at most `max_keys`
  /// keys, off the serving path (a maintenance thread loops this).
  /// Bounded work per call: readers double-route and writers re-route
  /// while a plan is mid-flight, so there is no hurry. Returns entries
  /// moved this call (0 also while another poller holds the lock).
  size_t PollMigration(size_t max_keys = 512)
      HOPE_EXCLUDES(migration_mu_) {
    if (!migration_mu_.TryLock()) return 0;
    MutexLock mlk(migration_mu_, std::adopt_lock);
    size_t moved = PollLocked(max_keys);
    if (!mig_.plan) DrainGenerationsLocked();
    return moved;
  }

  /// True when every published plan has been fully applied here.
  bool MigrationIdle() const HOPE_EXCLUDES(migration_mu_) {
    MutexLock mlk(migration_mu_);
    return !mig_.plan &&
           router_->version() == manager_->router_version();
  }

  uint64_t router_version() const {
    ebr::EpochReclaimer::Guard guard(manager_->reclaimer());
    return router_ptr_.load(std::memory_order_seq_cst)->version();
  }

  size_t size() const {
    size_t n = 0;
    for (const auto& shard : shards_) {
      ReaderLock lk(shard->mu);
      n += shard->index.size();
    }
    return n;
  }

  size_t num_shards() const { return shards_.size(); }

  /// Lifetime counters.
  uint64_t plans_applied() const {
    return plans_applied_.load(std::memory_order_relaxed);
  }
  uint64_t entries_migrated() const {
    return entries_migrated_.load(std::memory_order_relaxed);
  }
  uint64_t resyncs() const {
    return resyncs_.load(std::memory_order_relaxed);
  }
  /// Readers that exhausted optimistic retries and took the migration
  /// lock (expected ~0; a hot counter here means batches are too small).
  uint64_t lookup_slow_paths() const {
    return lookup_slow_paths_.load(std::memory_order_relaxed);
  }

  /// Registers the migration counters (hope_migration_*,
  /// hope_lookup_slow_paths_total) on `registry` — the accessors above
  /// stay the thin views — and routes plan/batch/resync lifecycle
  /// events to `trace`. Either sink may be null; both must outlive the
  /// index. Attach before migration polling starts.
  void AttachTelemetry(telemetry::MetricRegistry* registry,
                       telemetry::TraceLog* trace) {
    trace_.store(trace, std::memory_order_relaxed);
    if (registry == nullptr) return;
    using MK = telemetry::MetricKind;
    auto add = [&](const char* name, std::function<double()> read) {
      registrations_.push_back(registry->RegisterCallback(
          name, {}, MK::kCounter, std::move(read)));
    };
    add("hope_migration_plans_applied_total",
        [this] { return static_cast<double>(plans_applied()); });
    add("hope_migration_entries_total",
        [this] { return static_cast<double>(entries_migrated()); });
    add("hope_migration_resyncs_total",
        [this] { return static_cast<double>(resyncs()); });
    add("hope_lookup_slow_paths_total",
        [this] { return static_cast<double>(lookup_slow_paths()); });
  }

 private:
  static constexpr size_t kNoShard = ~size_t{0};
  static constexpr int kOptimisticRetries = 8;

  struct Shard {
    explicit Shard(dynamic::DictionaryManager* manager) : index(manager) {}
    mutable SharedMutex mu;
    dynamic::VersionedIndex<Tree> index HOPE_GUARDED_BY(mu);
  };

  /// In-flight plan cursor (guarded by migration_mu_). Keys of the
  /// current move are captured once under the source shard's lock, then
  /// extracted in batches; keys erased or overwritten in between are
  /// simply skipped by ExtractKeys/InsertIfAbsent.
  struct MigrationState {
    std::shared_ptr<const dynamic::RebalancePlan> plan;
    size_t move_idx = 0;
    bool collected = false;
    std::vector<std::string> keys;
    size_t pos = 0;
  };

  /// One guard covers both loads so plan and router come from the same
  /// pinned epoch. While a plan is in flight the router is plan->to;
  /// the fallback is the key's owner under plan->from when it differs.
  void RouteBoth(const std::string& key, size_t* primary,
                 size_t* fallback) const {
    ebr::EpochReclaimer::Guard guard(manager_->reclaimer());
    *primary = router_ptr_.load(std::memory_order_seq_cst)->Route(key);
    *fallback = kNoShard;
    const dynamic::RebalancePlan* plan =
        inflight_plan_.load(std::memory_order_seq_cst);
    if (plan != nullptr) {
      size_t old_owner = plan->from->Route(key);
      if (old_owner != *primary) *fallback = old_owner;
    }
  }

  bool ProbeShard(size_t s, const std::string& key, uint64_t* value) const {
    ReaderLock lk(shards_[s]->mu);
    return shards_[s]->index.Peek(key, value);
  }

  bool EraseInShard(size_t s, const std::string& key) {
    WriterLock lk(shards_[s]->mu);
    return shards_[s]->index.Erase(key);
  }

  /// Publishes `next` and retires the previous router reference through
  /// the manager's reclaimer; the sequence bump sends optimistic
  /// readers around again.
  void PublishRouterLocked(std::shared_ptr<const dynamic::RouterVersion> next)
      HOPE_REQUIRES(migration_mu_) {
    auto old = std::move(router_);
    router_ = std::move(next);
    router_ptr_.store(router_.get(), std::memory_order_seq_cst);
    manager_->reclaimer().Retire([keep = std::move(old)]() mutable {
      keep.reset();
    });
    migration_seq_.fetch_add(1, std::memory_order_seq_cst);
  }

  /// Callable only with no plan in flight.
  void BeginPlanLocked(std::shared_ptr<const dynamic::RebalancePlan> plan)
      HOPE_REQUIRES(migration_mu_) {
    mig_ = MigrationState{};
    mig_.plan = std::move(plan);
    // Publish the plan before the router: readers must never see the
    // new routing without the double-route fallback.
    inflight_plan_.store(mig_.plan.get(), std::memory_order_seq_cst);
    PublishRouterLocked(mig_.plan->to);
    if (telemetry::TraceLog* t = trace_.load(std::memory_order_relaxed))
      t->Record(telemetry::TraceEventType::kPlanApplyBegin, -1,
                mig_.plan->to->version(), mig_.plan->moves.size());
  }

  /// Callable only with a fully-moved plan.
  void CompletePlanLocked() HOPE_REQUIRES(migration_mu_) {
    inflight_plan_.store(nullptr, std::memory_order_seq_cst);
    manager_->reclaimer().Retire(
        [keep = std::move(mig_.plan)]() mutable { keep.reset(); });
    mig_ = MigrationState{};
    plans_applied_.fetch_add(1, std::memory_order_relaxed);
    manager_->UpdateIndexVersion(registration_id_, router_->version());
    migration_seq_.fetch_add(1, std::memory_order_seq_cst);
    if (telemetry::TraceLog* t = trace_.load(std::memory_order_relaxed))
      t->Record(telemetry::TraceEventType::kPlanRetired, -1,
                router_->version());
  }

  /// One bounded unit of migration work; always makes progress (collect
  /// a cursor, commit a batch, advance a move, or complete the plan).
  //
  // NO_TSA: the batch-commit block locks both shards in ascending index
  // order via `shards_[std::min(..)]` / `shards_[std::max(..)]` aliases,
  // then touches them as `shards_[mv.from_shard]` / `shards_[mv.to_shard]`
  // — the analysis cannot prove the min/max aliases cover both names.
  // Invariant preserved: both shard locks are held (ascending order, no
  // deadlock) around every index access in that block, and migration_mu_
  // is held throughout per the REQUIRES contract.
  size_t StepLocked(size_t* budget) HOPE_REQUIRES(migration_mu_)
      HOPE_NO_THREAD_SAFETY_ANALYSIS {
    const dynamic::RebalancePlan& plan = *mig_.plan;
    if (mig_.move_idx >= plan.moves.size()) {
      CompletePlanLocked();
      return 0;
    }
    const dynamic::RebalancePlan::Move& mv = plan.moves[mig_.move_idx];
    if (!mig_.collected) {
      WriterLock lk(shards_[mv.from_shard]->mu);
      mig_.keys = shards_[mv.from_shard]->index.CollectRangeKeys(
          mv.begin, mv.bounded ? &mv.end : nullptr);
      mig_.pos = 0;
      mig_.collected = true;
      return 0;
    }
    if (mig_.pos >= mig_.keys.size()) {
      mig_.move_idx++;
      mig_.collected = false;
      mig_.keys.clear();
      return 0;
    }
    const size_t n = std::min(*budget, mig_.keys.size() - mig_.pos);
    std::vector<std::string> batch(
        mig_.keys.begin() + static_cast<long>(mig_.pos),
        mig_.keys.begin() + static_cast<long>(mig_.pos + n));
    std::vector<std::pair<std::string, uint64_t>> extracted;
    {
      // Both shard locks, ascending index; commit the batch and bump
      // the sequence BEFORE unlocking, so a reader that probed either
      // side after this batch observes the bump at validation time.
      Shard& lo = *shards_[std::min(mv.from_shard, mv.to_shard)];
      Shard& hi = *shards_[std::max(mv.from_shard, mv.to_shard)];
      WriterLock lk_lo(lo.mu);
      WriterLock lk_hi(hi.mu);
      shards_[mv.from_shard]->index.ExtractKeys(batch, &extracted);
      for (auto& [key, value] : extracted)
        shards_[mv.to_shard]->index.InsertIfAbsent(key, value);
      migration_seq_.fetch_add(1, std::memory_order_seq_cst);
    }
    mig_.pos += n;
    *budget -= n;
    entries_migrated_.fetch_add(extracted.size(), std::memory_order_relaxed);
    if (!extracted.empty()) {
      if (telemetry::TraceLog* t = trace_.load(std::memory_order_relaxed))
        t->Record(telemetry::TraceEventType::kMigrationBatch,
                  static_cast<int32_t>(mv.to_shard), extracted.size());
    }
    return extracted.size();
  }

  size_t PollLocked(size_t budget) HOPE_REQUIRES(migration_mu_) {
    size_t moved = 0;
    while (budget > 0) {
      if (!mig_.plan) {
        if (router_->version() == manager_->router_version()) break;
        auto plans = manager_->PlansSince(router_->version());
        if (!plans) {
          moved += ResyncLocked();
          continue;
        }
        if (plans->empty()) break;
        BeginPlanLocked(std::move((*plans)[0]));
      }
      moved += StepLocked(&budget);
    }
    return moved;
  }

  /// Completes every pending plan (Scan's barrier). Each iteration
  /// strictly advances the router version (or finishes the in-flight
  /// plan), so this terminates even while the manager keeps publishing.
  void ApplyAllLocked() HOPE_REQUIRES(migration_mu_) {
    while (mig_.plan || router_->version() != manager_->router_version()) {
      const uint64_t before = router_->version();
      const bool had_plan = mig_.plan != nullptr;
      PollLocked(~size_t{0} >> 1);
      if (!mig_.plan && !had_plan && router_->version() == before)
        break;  // no progress possible (defensive; contract makes this
                // unreachable)
    }
  }

  /// Callable only with no plan in flight. Recovery for a pruned-history
  /// gap (unreachable while registered — kept for the same contract
  /// reason as ShardedVersionedIndex::Resync). All shard locks are held
  /// across the re-route, so readers block briefly; the sequence bump
  /// retries any lookup that raced the router swap.
  //
  // NO_TSA: every shard lock is acquired into a std::vector of RAII
  // locks, which the analysis cannot track (no per-element capability).
  // Invariant preserved: all shard locks are held (ascending index
  // order) for the whole body, and migration_mu_ is held per the
  // REQUIRES contract.
  size_t ResyncLocked() HOPE_REQUIRES(migration_mu_)
      HOPE_NO_THREAD_SAFETY_ANALYSIS {
    std::shared_ptr<const dynamic::RouterVersion> target = manager_->router();
    std::vector<std::unique_lock<std::shared_mutex>> locks;
    locks.reserve(shards_.size());
    for (auto& shard : shards_) locks.emplace_back(shard->mu.native());
    size_t moved = 0;
    std::vector<std::vector<std::pair<std::string, uint64_t>>> rebinned(
        shards_.size());
    std::vector<std::pair<std::string, uint64_t>> entries;
    for (size_t s = 0; s < shards_.size(); s++) {
      entries.clear();
      shards_[s]->index.ExtractRange(std::string(), nullptr, &entries);
      for (auto& [key, value] : entries) {
        size_t owner = target->Route(key);
        if (owner != s) moved++;
        rebinned[owner].emplace_back(std::move(key), value);
      }
    }
    for (size_t s = 0; s < shards_.size(); s++)
      for (auto& [key, value] : rebinned[s])
        shards_[s]->index.InsertMigrated(key, value);
    PublishRouterLocked(std::move(target));
    manager_->UpdateIndexVersion(registration_id_, router_->version());
    resyncs_.fetch_add(1, std::memory_order_relaxed);
    entries_migrated_.fetch_add(moved, std::memory_order_relaxed);
    if (telemetry::TraceLog* t = trace_.load(std::memory_order_relaxed))
      t->Record(telemetry::TraceEventType::kResync, -1, moved);
    return moved;
  }

  /// Idle maintenance: drain multi-generation shards (dictionary
  /// hot-swaps open generations; Peek never drains) so the read path
  /// stays short. TryLock keeps this off any shard a writer is busy in;
  /// the adopting WriterLock tells the analysis the success branch
  /// holds the capability.
  void DrainGenerationsLocked() HOPE_REQUIRES(migration_mu_) {
    for (auto& shard : shards_) {
      if (!shard->mu.TryLock()) continue;
      WriterLock lk(shard->mu, std::adopt_lock);
      if (shard->index.NumGenerations() > 1) shard->index.MigrateAll();
    }
  }

  dynamic::ShardedDictionaryManager* manager_;
  uint64_t registration_id_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Reader-visible routing state: raw pointers published seq_cst,
  /// pointees kept alive by router_/mig_.plan (owned under
  /// migration_mu_) and freed through the manager's reclaimer after the
  /// EBR grace period. Raw loads require a live ebr Guard
  /// (tools/check_ebr_guards.py enforces this).
  HOPE_EBR_PUBLISHED std::atomic<const dynamic::RouterVersion*> router_ptr_{
      nullptr};
  HOPE_EBR_PUBLISHED std::atomic<const dynamic::RebalancePlan*> inflight_plan_{
      nullptr};
  /// Bumped (under the shard locks involved) on every committed batch,
  /// plan begin, and plan completion — the optimistic validation token.
  mutable std::atomic<uint64_t> migration_seq_{0};

  mutable Mutex migration_mu_;  ///< plan application, scans, resync
  std::shared_ptr<const dynamic::RouterVersion> router_
      HOPE_GUARDED_BY(migration_mu_);
  MigrationState mig_ HOPE_GUARDED_BY(migration_mu_);

  std::atomic<uint64_t> plans_applied_{0};
  std::atomic<uint64_t> entries_migrated_{0};
  std::atomic<uint64_t> resyncs_{0};
  mutable std::atomic<uint64_t> lookup_slow_paths_{0};

  /// Lifecycle sink (set once by AttachTelemetry, read relaxed under
  /// migration_mu_) and the metric registrations' RAII handles.
  std::atomic<telemetry::TraceLog*> trace_{nullptr};
  std::vector<telemetry::MetricRegistry::Registration> registrations_;
};

}  // namespace hope::serve
