// Thread-to-CPU pinning for the shared-nothing worker loop. Best-effort:
// on platforms without an affinity API (or inside restricted cgroups)
// pinning reports failure and the caller keeps running unpinned — the
// serving layer treats affinity as a tail-latency optimization, never a
// correctness requirement.
#pragma once

namespace hope::serve {

/// Logical CPUs visible to this process (>= 1).
unsigned NumCpus();

/// Pins the calling thread to `cpu` (modulo the platform's CPU-set
/// size). Returns false when unsupported or rejected by the OS.
bool PinCurrentThreadToCpu(unsigned cpu);

}  // namespace hope::serve
