#include "serve/latency_histogram.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace hope::serve {

LatencyHistogram::LatencyHistogram() { std::memset(buckets_, 0, sizeof(buckets_)); }

size_t LatencyHistogram::BucketIndex(uint64_t value) {
  if (value < kSubBucketCount) return static_cast<size_t>(value);
  // value in [2^e, 2^(e+1)): shift its top kSubBucketBits+1 bits down so
  // (value >> shift) lands in [kSubBucketCount, 2*kSubBucketCount), then
  // place octave e's group after the groups of all lower octaves. The
  // first group (e == kSubBucketBits) continues the linear region
  // seamlessly: its sub-buckets still have width 1.
  unsigned e = 63u - static_cast<unsigned>(__builtin_clzll(value));
  unsigned shift = e - kSubBucketBits;
  uint64_t sub = (value >> shift) - kSubBucketCount;
  return static_cast<size_t>(
      (uint64_t{e - kSubBucketBits + 1} << kSubBucketBits) + sub);
}

uint64_t LatencyHistogram::BucketUpperBound(size_t index) {
  if (index < kSubBucketCount) return static_cast<uint64_t>(index);
  uint64_t group = index >> kSubBucketBits;  // >= 1
  uint64_t sub = index & (kSubBucketCount - 1);
  unsigned e = static_cast<unsigned>(group - 1) + kSubBucketBits;
  unsigned shift = e - kSubBucketBits;
  uint64_t low = (kSubBucketCount + sub) << shift;
  uint64_t width = uint64_t{1} << shift;
  return low + width - 1;
}

void LatencyHistogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)]++;
  count_++;
  sum_ += value;
  max_ = std::max(max_, value);
  min_ = std::min(min_, value);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < kNumBuckets; i++) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
  min_ = std::min(min_, other.min_);
}

void LatencyHistogram::Reset() {
  std::memset(buckets_, 0, sizeof(buckets_));
  count_ = 0;
  sum_ = 0;
  max_ = 0;
  min_ = ~uint64_t{0};
}

uint64_t LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  if (target == 0) target = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; i++) {
    cumulative += buckets_[i];
    if (cumulative >= target) {
      // The recorded max is exact and lives in the last populated
      // bucket; never report that bucket's (coarser) upper bound above
      // it.
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

double LatencyHistogram::Mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

}  // namespace hope::serve
