#include "serve/latency_histogram.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace hope::serve {

LatencyHistogram::LatencyHistogram() { std::memset(buckets_, 0, sizeof(buckets_)); }

size_t LatencyHistogram::BucketIndex(uint64_t value) {
  return telemetry::LogBucketIndex(value);
}

uint64_t LatencyHistogram::BucketUpperBound(size_t index) {
  return telemetry::LogBucketUpperBound(index);
}

void LatencyHistogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)]++;
  count_++;
  sum_ += value;
  max_ = std::max(max_, value);
  min_ = std::min(min_, value);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < kNumBuckets; i++) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
  min_ = std::min(min_, other.min_);
}

void LatencyHistogram::AddBucketCounts(const uint64_t* counts, size_t n) {
  if (n > kNumBuckets) n = kNumBuckets;
  for (size_t i = 0; i < n; i++) {
    const uint64_t c = counts[i];
    if (c == 0) continue;
    const uint64_t lower = telemetry::LogBucketLowerBound(i);
    const uint64_t upper = BucketUpperBound(i);
    buckets_[i] += c;
    count_ += c;
    // Midpoint via lower + (upper - lower) / 2: lower + upper overflows
    // in the top octave.
    sum_ += (lower + (upper - lower) / 2) * c;
    max_ = std::max(max_, upper);
    min_ = std::min(min_, lower);
  }
}

void LatencyHistogram::Reset() {
  std::memset(buckets_, 0, sizeof(buckets_));
  count_ = 0;
  sum_ = 0;
  max_ = 0;
  min_ = ~uint64_t{0};
}

uint64_t LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  // Rank-interpolated within the selected bucket, clamped so the exact
  // recorded extremes bound the estimate (the recorded max lives in the
  // last populated bucket; never report that bucket's coarser upper
  // bound above it).
  return telemetry::QuantileFromCounts(buckets_, kNumBuckets, count_, q,
                                       min(), max_);
}

double LatencyHistogram::Mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

}  // namespace hope::serve
