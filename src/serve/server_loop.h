// ServerLoop<Tree>: shared-nothing serving harness over a
// ConcurrentShardedIndex. N workers, each pinned to a CPU (best-effort)
// with its own bounded request queue and its own per-op latency
// histograms — no cross-worker shared mutable state on the hot path, so
// adding workers scales reads the way the index's shared locks allow.
//
// Requests are routed by shard affinity: Submit() routes the key
// through the index's wait-free Route() and enqueues on worker
// (shard % num_workers), so one shard's writer serialization maps to
// one queue and workers mostly touch disjoint shards. A maintenance
// thread applies rebalance plans in bounded batches (PollMigration)
// and drains dictionary generations while workers keep serving —
// migration-transparent by construction.
//
// Latency is measured end-to-end (enqueue to completion, steady clock),
// which is what an SLO sees: queueing delay counts — and the queueing
// component is also recorded on its own histogram, which is what makes
// open-loop (coordinated-omission-free) benchmark runs diagnosable.
// Measurement is telemetry-native: each op type has a wait-free
// telemetry::Histogram plus striped counters shared by all workers (one
// relaxed atomic per update — cheaper than the per-worker stats mutex
// it replaces, and snapshot-able mid-phase without stalling anyone).
// Snapshot()/ResetStats() keep their historical OpStats shape as a
// compatibility view over the telemetry objects.
//
// Self-checking: a request with `check` set verifies the serving
// invariant value == KeyFingerprint(key) on every hit, and scans verify
// value order is non-decreasing (fingerprints are order-consistent with
// keys). Violations are counted, never thrown — the benchmarks gate on
// the counters staying zero while rebalances run underneath.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "serve/concurrent_index.h"
#include "serve/cpu_pin.h"
#include "serve/latency_histogram.h"
#include "telemetry/metrics.h"
#include "telemetry/registry.h"

namespace hope::serve {

/// Stable 8-byte order-consistent digest of a key: the first 8 bytes
/// big-endian, zero-padded. key1 <= key2 implies
/// KeyFingerprint(key1) <= KeyFingerprint(key2), so stored-value order
/// mirrors key order (non-strictly) and any lookup hit is verifiable
/// without a shadow map.
inline uint64_t KeyFingerprint(const std::string& key) {
  uint64_t fp = 0;
  for (size_t i = 0; i < 8; i++) {
    fp <<= 8;
    if (i < key.size()) fp |= static_cast<unsigned char>(key[i]);
  }
  return fp;
}

struct Request {
  enum class Op : uint8_t { kLookup = 0, kInsert = 1, kErase = 2, kScan = 3 };
  static constexpr size_t kNumOps = 4;

  Op op = Op::kLookup;
  /// Lookup: verify hits carry KeyFingerprint(key). Scan: verify value
  /// order.
  bool check = false;
  std::string key;
  uint64_t value = 0;      ///< insert payload
  uint32_t scan_count = 0; ///< scan length
  /// Stamped by Submit() when 0. An open-loop generator pre-stamps the
  /// intended arrival time instead, so end-to-end latency includes the
  /// schedule slip a saturated loop would otherwise hide (coordinated
  /// omission).
  uint64_t enqueue_ns = 0;
};

/// Merged per-op measurement snapshot.
struct OpStats {
  LatencyHistogram latency;
  uint64_t ops = 0;
  uint64_t hits = 0;  ///< lookup hits / erase hits / scan entries
  uint64_t check_failures = 0;
  uint64_t scan_order_violations = 0;
};

template <typename Tree>
class ServerLoop {
 public:
  struct Options {
    size_t num_workers = 4;
    size_t queue_capacity = 1024;  ///< per worker; Submit blocks when full
    bool pin_workers = true;
    size_t migration_batch = 512;  ///< keys per PollMigration call
    unsigned migration_poll_us = 200;  ///< idle sleep between polls

    /// Optional: register the loop's metrics (latency/queue-delay
    /// histograms, per-op counters, queue-depth gauge) here. Must
    /// outlive the loop.
    telemetry::MetricRegistry* registry = nullptr;
    /// With `registry` and a sink: a stats thread delivers a registry
    /// snapshot at start, every `stats_interval`, and once more at
    /// Stop() — so even a short run exports at least two snapshots.
    std::chrono::milliseconds stats_interval{0};
    std::function<void(const telemetry::RegistrySnapshot&)> stats_sink;
  };

  /// `index` must outlive the loop. Workers and the migration
  /// maintenance thread start immediately.
  ServerLoop(ConcurrentShardedIndex<Tree>* index, Options options)
      : index_(index), opt_(options) {
    if (opt_.num_workers == 0) opt_.num_workers = 1;
    if (opt_.queue_capacity == 0) opt_.queue_capacity = 1;
    if (opt_.registry != nullptr) RegisterMetrics();
    workers_.reserve(opt_.num_workers);
    for (size_t w = 0; w < opt_.num_workers; w++)
      workers_.push_back(std::make_unique<Worker>());
    for (size_t w = 0; w < opt_.num_workers; w++)
      workers_[w]->thread =
          std::thread([this, w] { WorkerMain(*workers_[w], w); });
    maintenance_ = std::thread([this] { MaintenanceMain(); });
    if (opt_.registry != nullptr && opt_.stats_sink &&
        opt_.stats_interval.count() > 0)
      stats_thread_ = std::thread([this] { StatsMain(); });
  }

  ~ServerLoop() { Stop(); }

  ServerLoop(const ServerLoop&) = delete;
  ServerLoop& operator=(const ServerLoop&) = delete;

  /// Enqueues on the worker owning the key's shard; blocks while that
  /// queue is full (natural backpressure — the benchmark's arrival rate
  /// is then bounded by service rate, as in a closed-loop load test).
  void Submit(Request req) {
    if (req.enqueue_ns == 0) req.enqueue_ns = NowNs();
    Worker& wk = *workers_[index_->Route(req.key) % workers_.size()];
    {
      UniqueLock lk(wk.mu);
      // Explicit wait loop (see common/mutex.h): a predicate lambda
      // reading wk.queue would be analyzed with an empty lock set.
      while (wk.queue.size() >= opt_.queue_capacity &&
             !stop_.load(std::memory_order_acquire))
        wk.cv_space.wait(lk.native());
      if (stop_.load(std::memory_order_acquire)) return;
      pending_.fetch_add(1, std::memory_order_relaxed);
      wk.queue.push_back(std::move(req));
    }
    wk.cv_work.notify_one();
  }

  /// Blocks until every submitted request has completed. Migration may
  /// still be in flight — use index()->MigrationIdle() for that.
  void WaitIdle() const {
    while (pending_.load(std::memory_order_acquire) != 0)
      std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  /// Drains queues and joins all threads. Idempotent; runs at
  /// destruction. Safe to call concurrently: every caller returns only
  /// after all threads are joined.
  void Stop() HOPE_EXCLUDES(join_mu_) {
    // Serialize the whole join sequence. The previous compare-exchange
    // latch let a second concurrent caller return immediately while the
    // first was still joining — if that second caller was the
    // destructor, members were torn down under live worker threads.
    MutexLock join(join_mu_);
    if (joined_) return;
    stop_.store(true, std::memory_order_release);
    for (auto& wk : workers_) {
      // Lock and release the queue mutex after the flag is set: a
      // worker that read stop_ == false is then guaranteed to already
      // be inside wait(), so the notify below cannot be lost.
      { MutexLock lk(wk->mu); }
      wk->cv_work.notify_all();
      wk->cv_space.notify_all();
    }
    for (auto& wk : workers_) wk->thread.join();
    maintenance_.join();
    if (stats_thread_.joinable()) {
      { MutexLock lk(stats_mu_); }
      stats_cv_.notify_all();
      stats_thread_.join();
    }
    joined_ = true;
  }

  /// Merged stats for one op — the historical OpStats shape,
  /// reconstructed from the telemetry objects. Count and the counters
  /// are exact; Mean() is midpoint-approximated and min/max are
  /// bucket-resolution (raw bucket counts carry no exact extremes).
  /// Take at quiesce points (after WaitIdle) for exact phase numbers.
  OpStats Snapshot(Request::Op op) const {
    const PerOpTelemetry& t = per_op_[static_cast<size_t>(op)];
    OpStats merged;
    const telemetry::HistogramSnapshot h = t.latency.Snapshot();
    merged.latency.AddBucketCounts(h.counts.data(), h.counts.size());
    merged.ops = t.ops.Value();
    merged.hits = t.hits.Value();
    merged.check_failures = t.check_failures.Value();
    merged.scan_order_violations = t.scan_order_violations.Value();
    return merged;
  }

  /// Queue-delay distribution (Submit/pre-stamped arrival to execution
  /// start) across all ops — the coordinated-omission signal.
  telemetry::HistogramSnapshot QueueDelaySnapshot() const {
    return queue_delay_.Snapshot();
  }

  /// Clears histograms and counters (phase boundary; quiesce first —
  /// call after WaitIdle, as resetting under load can drop in-flight
  /// updates).
  void ResetStats() {
    for (PerOpTelemetry& t : per_op_) {
      t.latency.Reset();
      t.ops.Reset();
      t.hits.Reset();
      t.check_failures.Reset();
      t.scan_order_violations.Reset();
    }
    queue_delay_.Reset();
  }

  /// Workers that were successfully pinned to a CPU.
  size_t workers_pinned() const {
    return pinned_.load(std::memory_order_relaxed);
  }

  size_t num_workers() const { return workers_.size(); }
  ConcurrentShardedIndex<Tree>* index() const { return index_; }

  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  struct Worker {
    Mutex mu;
    std::condition_variable cv_work;
    std::condition_variable cv_space;
    std::deque<Request> queue HOPE_GUARDED_BY(mu);

    std::vector<uint64_t> scan_buf;  ///< worker-thread-local, reused
    std::thread thread;
  };

  /// Shared by all workers: every update is one relaxed atomic (striped
  /// counters, atomic histogram buckets), so there is no cross-worker
  /// contention to speak of and no mutex on the record path.
  struct PerOpTelemetry {
    telemetry::Histogram latency;
    telemetry::Counter ops;
    telemetry::Counter hits;
    telemetry::Counter check_failures;
    telemetry::Counter scan_order_violations;
  };

  void RegisterMetrics() {
    static constexpr const char* kOpNames[Request::kNumOps] = {
        "lookup", "insert", "erase", "scan"};
    auto& reg = *opt_.registry;
    for (size_t i = 0; i < Request::kNumOps; i++) {
      const telemetry::Labels labels{{"op", kOpNames[i]}};
      PerOpTelemetry& t = per_op_[i];
      registrations_.push_back(
          reg.RegisterHistogram("hope_server_latency_ns", labels, &t.latency));
      registrations_.push_back(
          reg.RegisterCounter("hope_server_ops_total", labels, &t.ops));
      registrations_.push_back(
          reg.RegisterCounter("hope_server_hits_total", labels, &t.hits));
      registrations_.push_back(reg.RegisterCounter(
          "hope_server_check_failures_total", labels, &t.check_failures));
      registrations_.push_back(
          reg.RegisterCounter("hope_server_scan_order_violations_total",
                              labels, &t.scan_order_violations));
    }
    registrations_.push_back(
        reg.RegisterHistogram("hope_server_queue_delay_ns", {}, &queue_delay_));
    registrations_.push_back(reg.RegisterCallback(
        "hope_server_queue_depth", {}, telemetry::MetricKind::kGauge, [this] {
          return static_cast<double>(
              pending_.load(std::memory_order_relaxed));
        }));
    registrations_.push_back(reg.RegisterCallback(
        "hope_server_workers_pinned", {}, telemetry::MetricKind::kGauge,
        [this] {
          return static_cast<double>(pinned_.load(std::memory_order_relaxed));
        }));
  }

  void StatsMain() {
    EmitStats();
    UniqueLock lk(stats_mu_);
    // The predicate reads only the atomic stop_ flag (nothing guarded
    // by stats_mu_), so the lambda is safe under the analysis.
    while (!stats_cv_.wait_for(lk.native(), opt_.stats_interval, [this] {
      return stop_.load(std::memory_order_acquire);
    })) {
      lk.Unlock();
      EmitStats();
      lk.Lock();
    }
    lk.Unlock();
    EmitStats();  // final snapshot: even a short run exports two
  }

  void EmitStats() { opt_.stats_sink(opt_.registry->Snapshot()); }

  void WorkerMain(Worker& wk, size_t worker_index) {
    if (opt_.pin_workers &&
        PinCurrentThreadToCpu(static_cast<unsigned>(worker_index) %
                              NumCpus()))
      pinned_.fetch_add(1, std::memory_order_relaxed);
    std::deque<Request> batch;
    for (;;) {
      {
        UniqueLock lk(wk.mu);
        // Explicit wait loop (see common/mutex.h): a predicate lambda
        // reading wk.queue would be analyzed with an empty lock set.
        while (wk.queue.empty() && !stop_.load(std::memory_order_acquire))
          wk.cv_work.wait(lk.native());
        if (wk.queue.empty() && stop_.load(std::memory_order_acquire)) return;
        batch.swap(wk.queue);
      }
      wk.cv_space.notify_all();
      for (Request& req : batch) Execute(wk, req);
      size_t done = batch.size();
      batch.clear();
      pending_.fetch_sub(done, std::memory_order_release);
    }
  }

  void Execute(Worker& wk, Request& req) {
    const uint64_t start = NowNs();
    queue_delay_.Record(start > req.enqueue_ns ? start - req.enqueue_ns : 0);
    uint64_t check_failures = 0;
    uint64_t scan_order_violations = 0;
    uint64_t hits = 0;
    switch (req.op) {
      case Request::Op::kLookup: {
        uint64_t value = 0;
        if (index_->Lookup(req.key, &value)) {
          hits = 1;
          if (req.check && value != KeyFingerprint(req.key))
            check_failures = 1;
        }
        break;
      }
      case Request::Op::kInsert:
        index_->Insert(req.key, req.value);
        break;
      case Request::Op::kErase:
        if (index_->Erase(req.key)) hits = 1;
        break;
      case Request::Op::kScan: {
        wk.scan_buf.clear();
        hits = index_->Scan(req.key, req.scan_count, &wk.scan_buf);
        if (req.check)
          for (size_t i = 1; i < wk.scan_buf.size(); i++)
            if (wk.scan_buf[i] < wk.scan_buf[i - 1]) scan_order_violations++;
        break;
      }
    }
    const uint64_t now = NowNs();
    const uint64_t latency = now > req.enqueue_ns ? now - req.enqueue_ns : 0;
    PerOpTelemetry& t = per_op_[static_cast<size_t>(req.op)];
    t.latency.Record(latency);
    t.ops.Add();
    if (hits != 0) t.hits.Add(hits);
    if (check_failures != 0) t.check_failures.Add(check_failures);
    if (scan_order_violations != 0)
      t.scan_order_violations.Add(scan_order_violations);
  }

  void MaintenanceMain() {
    for (;;) {
      // Check stop with a queue-mutex-free atomic read; migration work
      // is try-lock based so this thread never blocks shutdown.
      if (stop_.load(std::memory_order_acquire)) return;
      if (index_->PollMigration(opt_.migration_batch) == 0)
        std::this_thread::sleep_for(
            std::chrono::microseconds(opt_.migration_poll_us));
    }
  }

  ConcurrentShardedIndex<Tree>* index_;
  Options opt_;
  /// Telemetry objects precede registrations_ so the RAII handles (which
  /// deregister from opt_.registry) are destroyed first.
  PerOpTelemetry per_op_[Request::kNumOps];
  telemetry::Histogram queue_delay_;
  std::vector<telemetry::MetricRegistry::Registration> registrations_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread maintenance_;
  std::thread stats_thread_;
  Mutex stats_mu_;                    ///< stats thread's interruptible sleep
  std::condition_variable stats_cv_;
  /// Serializes Stop() callers; joined_ flips only after every thread
  /// is joined, so a losing caller blocks until shutdown is complete.
  Mutex join_mu_;
  bool joined_ HOPE_GUARDED_BY(join_mu_) = false;
  /// Stop() latch and shutdown flag in one: workers read it inside
  /// their wait predicates (under their queue mutex, but the flag
  /// itself is cross-worker so it must be atomic).
  std::atomic<bool> stop_{false};
  mutable std::atomic<uint64_t> pending_{0};
  std::atomic<size_t> pinned_{0};
};

}  // namespace hope::serve
