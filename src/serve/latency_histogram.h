// Log-bucketed latency histogram in the HdrHistogram shape: fixed
// memory, bounded relative error, mergeable across workers.
//
// Values below 2^kSubBucketBits get exact unit-width buckets; above
// that, each power-of-two octave is subdivided into 2^kSubBucketBits
// linear sub-buckets, so a recorded value lands in a bucket whose width
// is at most 1/2^kSubBucketBits of its magnitude (~3.1% relative error
// at the default 5 bits). That is the standard trade for tail-latency
// reporting: p999 of a multi-second spike and p50 of a 300ns hit fit
// the same 15KB fixed array, with no allocation on the record path.
//
// Not thread-safe: the serving layer keeps one histogram per worker
// (shared-nothing) and merges snapshots at phase boundaries. The bucket
// layout itself lives in telemetry/log_buckets.h, shared with
// telemetry::Histogram so the two index identically shaped arrays and
// counts can merge bucket-for-bucket (AddBucketCounts).
#pragma once

#include <cstddef>
#include <cstdint>

#include "telemetry/log_buckets.h"

namespace hope::serve {

class LatencyHistogram {
 public:
  /// Layout constants re-exported from telemetry/log_buckets.h.
  static constexpr unsigned kSubBucketBits = telemetry::kSubBucketBits;
  static constexpr uint64_t kSubBucketCount = telemetry::kSubBucketCount;
  static constexpr size_t kNumBuckets = telemetry::kNumLogBuckets;

  LatencyHistogram();

  /// Records one value (nanoseconds by convention, but unit-agnostic).
  void Record(uint64_t value);

  /// Adds another histogram's counts (the cross-worker merge).
  void Merge(const LatencyHistogram& other);

  /// Adds raw bucket counts in the shared log_buckets layout (`n` capped
  /// at kNumBuckets) — the bridge from a telemetry::HistogramSnapshot
  /// back into the phase-report path. Count is exact; sum (and so Mean)
  /// is midpoint-approximated and min/max are bucket-resolution, since
  /// raw counts carry no exact extremes.
  void AddBucketCounts(const uint64_t* counts, size_t n);

  void Reset();

  /// Value at quantile q in [0, 1]: rank-interpolated within the bucket
  /// where the cumulative count reaches ceil(q * count) — exact in the
  /// unit-width linear region, off by at most one bucket width (~3.1%)
  /// above it — clamped to the exact recorded [min, max]. An empty
  /// histogram reports 0.
  uint64_t Percentile(double q) const;

  uint64_t count() const { return count_; }
  uint64_t max() const { return max_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  double Mean() const;

  /// Bucket mapping, exposed for tests: index for a value and the
  /// inclusive upper bound of bucket `index`.
  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketUpperBound(size_t index);

 private:
  uint64_t buckets_[kNumBuckets];
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
  uint64_t min_ = ~uint64_t{0};
};

}  // namespace hope::serve
