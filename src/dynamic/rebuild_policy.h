// Pluggable rebuild triggers: given a view of the collector's statistics,
// decide whether dictionary staleness warrants a background rebuild.
// Policies are pure predicates — the manager serializes evaluation, so
// implementations need no internal locking.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace hope::dynamic {

/// Snapshot of the signals a policy may consult, assembled by the
/// DictionaryManager from its collector and publish history.
struct RebuildSignals {
  double ewma_cpr = 0;       ///< current EWMA compression rate (0 = no data)
  double baseline_cpr = 0;   ///< CPR measured when the live dict was published
  uint64_t keys_since_rebuild = 0;
  double seconds_since_rebuild = 0;
  size_t reservoir_fill = 0;
  size_t reservoir_capacity = 0;
};

class RebuildPolicy {
 public:
  virtual ~RebuildPolicy() = default;
  virtual bool ShouldRebuild(const RebuildSignals& s) const = 0;
  virtual const char* Name() const = 0;
};

/// Triggers when the EWMA compression rate falls more than
/// `drop_fraction` below the published baseline (e.g. 0.05 = 5% worse),
/// once at least `min_reservoir_fill` keys are available to rebuild from.
/// Degenerate inputs clamp to the nearest valid value: drop_fraction to
/// [0, 0.99] (NaN -> 0; at 1.0+ the gate could never fire, at < 0 it
/// would fire on any wobble), min_reservoir_fill 0 -> 1.
std::unique_ptr<RebuildPolicy> MakeCompressionDropPolicy(
    double drop_fraction, size_t min_reservoir_fill = 256);

/// Triggers every `every_n_keys` observed encodes (0 clamps to 1).
std::unique_ptr<RebuildPolicy> MakeKeyCountPolicy(uint64_t every_n_keys);

/// Triggers every `every_seconds` of wall time. Non-positive or NaN
/// periods clamp to 0.001s (a zero period would trigger on every poll,
/// even with zero elapsed time since the last rebuild).
std::unique_ptr<RebuildPolicy> MakePeriodicPolicy(double every_seconds);

/// Triggers when any child policy triggers.
std::unique_ptr<RebuildPolicy> MakeAnyOfPolicy(
    std::vector<std::unique_ptr<RebuildPolicy>> children);

/// Never triggers (manual RebuildNow(force) only).
std::unique_ptr<RebuildPolicy> MakeNeverPolicy();

}  // namespace hope::dynamic
