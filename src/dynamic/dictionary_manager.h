// The dynamic dictionary manager: owns immutable, reference-counted HOPE
// dictionary versions and swaps in fresh ones as the key distribution
// drifts away from the build sample.
//
//   readers ──Acquire()──► {epoch, shared_ptr<const Hope>}   (lock-free)
//   encodes ──observer──► EncodeStatsCollector (reservoir + CPR EWMA)
//   RebuildPolicy ──ShouldRebuild()──► BackgroundRebuilder ──RebuildNow()
//   candidate Hope ──validate──► Publish() ──► new epoch, old versions
//                                              live until last reader drops
//
// A snapshot stays valid for as long as the caller holds it — even past
// the manager's destruction: versions are immutable and reference-counted
// (each one also pins the stats collector its observer hook points at),
// so a reader that acquired epoch N can keep encoding/decoding with it
// while epoch N+1 (or N+5) is live.
//
// The current version is published through a plain atomic<const
// Version*> protected by epoch-based reclamation (common/epoch_reclaim
// .h): Acquire() pins an ebr::Guard, loads the pointer wait-free, and
// copies the refcounted Hope handle out before unpinning; Publish swaps
// the pointer and Retire()s the predecessor, which is freed once every
// reader pinned at or before the swap has exited. (atomic<shared_ptr>
// solved lifetime but libstdc++-12's _Sp_atomic futex protocol trips
// TSan under publish/acquire contention, and retaining raw pointers
// forever — the router layer's first workaround — leaks on exactly the
// long-running servers this layer targets.) Teardown drains the
// reclaimer, so destruction waits out in-flight readers instead of
// freeing a Version under them.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/epoch_reclaim.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "dynamic/encode_stats.h"
#include "dynamic/rebuild_policy.h"
#include "hope/hope.h"
#include "telemetry/registry.h"

namespace hope::dynamic {

/// An acquired dictionary version. Copyable; keeps the version alive.
struct DictSnapshot {
  uint64_t epoch = 0;
  std::shared_ptr<const Hope> hope;
};

class DictionaryManager {
 public:
  struct Options {
    Scheme scheme = Scheme::kDoubleChar;       ///< scheme for rebuilds
    size_t dict_size_limit = size_t{1} << 14;  ///< entry cap for rebuilds
    EncodeStatsCollector::Options stats;
    /// Candidate validation: every reservoir key must round-trip
    /// encode→decode through the candidate before it may be published.
    bool validate_roundtrip = true;
    /// Candidate must beat the live dictionary's reservoir CPR by this
    /// fraction (0 = any improvement; negative disables the gate).
    double min_cpr_gain = 0.0;
    /// After a rejected candidate, suppress policy-triggered rebuilds for
    /// this long: when traffic is intrinsically less compressible the
    /// trigger condition persists, and without backoff the background
    /// worker would repeat the full build+validate cycle every poll.
    double rebuild_backoff_seconds = 5.0;
  };

  enum class RebuildResult {
    kRebuilt,            ///< candidate validated and published
    kNotTriggered,       ///< policy quiet, or rejection backoff active
    kInsufficientData,   ///< reservoir too small to build from
    kRejectedBuildError, ///< Hope::Build failed on the reservoir corpus
    kRejectedRoundTrip,  ///< candidate failed lossless validation
    kRejectedNoGain,     ///< candidate did not improve compression enough
  };
  static const char* RebuildResultName(RebuildResult r);

  /// Takes ownership of the initial dictionary (epoch 0) and attaches the
  /// stats collector to its encode path. `policy` decides when rebuilds
  /// trigger; pass MakeNeverPolicy() for manual-only management.
  /// `baseline_keys` (typically the build sample) seeds the baseline
  /// compression rate the drop policy compares against; without it the
  /// baseline stays unknown until the first publish.
  DictionaryManager(std::unique_ptr<Hope> initial, Options options,
                    std::unique_ptr<RebuildPolicy> policy,
                    const std::vector<std::string>& baseline_keys = {});

  DictionaryManager(const DictionaryManager&) = delete;
  DictionaryManager& operator=(const DictionaryManager&) = delete;

  /// Retires the final version and drains the reclaimer: destruction
  /// blocks until every Acquire() that was already inside its guard
  /// when teardown began has exited, so those readers never touch a
  /// freed Version. (An Acquire() that starts after destruction has
  /// begun is undefined, as for any method on a dying object.)
  /// Snapshots already returned stay valid — they own the Hope via
  /// shared_ptr, not the guard.
  ~DictionaryManager();

  /// Wait-free reader snapshot of the current version (an epoch-guarded
  /// pointer load plus a refcount bump).
  DictSnapshot Acquire() const;

  uint64_t epoch() const {
    ebr::EpochReclaimer::Guard guard(reclaimer_);
    return current_.load(std::memory_order_seq_cst)->epoch;
  }

  /// Convenience: encode through the current version (feeds the stats
  /// collector via the observer hook).
  std::string Encode(std::string_view key, size_t* bit_len = nullptr) const {
    return Acquire().hope->Encode(key, bit_len);
  }

  EncodeStatsCollector& stats() { return *collector_; }
  const EncodeStatsCollector& stats() const { return *collector_; }
  const RebuildPolicy& policy() const { return *policy_; }

  /// Assembles the policy inputs from the collector and publish history.
  RebuildSignals Signals() const;

  /// True while a rejected candidate's backoff window is active; rebuild
  /// attempts are suppressed (pollers should stop nudging).
  bool InBackoff() const;

  /// True when the policy wants a rebuild and no rejection backoff is
  /// active (used by BackgroundRebuilder and external pollers).
  bool ShouldRebuild() const {
    return !InBackoff() && policy_->ShouldRebuild(Signals());
  }

  /// Rebuilds a candidate from the reservoir, validates it, and publishes
  /// it on success. `force` skips the policy check (not the validation).
  /// Serialized internally — concurrent callers queue on a mutex; readers
  /// are never blocked.
  RebuildResult RebuildNow(bool force = false) HOPE_EXCLUDES(rebuild_mu_);

  /// Installs an externally built candidate unconditionally (validation
  /// belongs to the RebuildNow path), attaching the stats collector and
  /// bumping the epoch. Returns the new epoch. The fresh baseline CPR is
  /// measured on `baseline_keys` when given (e.g. the corpus the caller
  /// built the candidate from), else on the reservoir.
  uint64_t Publish(std::unique_ptr<Hope> candidate,
                   const std::vector<std::string>* baseline_keys = nullptr)
      HOPE_EXCLUDES(rebuild_mu_);

  /// Lifetime counters (relaxed reads; exact only when rebuilds quiesce).
  uint64_t rebuilds_published() const { return published_.load(); }
  uint64_t rebuilds_rejected() const { return rejected_.load(); }
  double baseline_cpr() const { return baseline_cpr_.load(); }

  /// The manager's version reclaimer: retired/reclaimed counters bound
  /// the live-garbage Version count, and pollers (BackgroundRebuilder)
  /// call TryReclaim() so idle periods still free the limbo list.
  ebr::EpochReclaimer& reclaimer() const { return reclaimer_; }

  /// Registers the manager's counters/gauges (hope_dict_*, plus its
  /// reclaimer's hope_ebr_* under scope="dict") on `registry` — the
  /// existing accessors above stay the thin views they always were —
  /// and routes rebuild + EBR lifecycle events to `trace`. Labels carry
  /// shard=`shard` when >= 0 (the sharded manager's per-shard identity).
  /// Either sink may be null; both must outlive the manager. Attach
  /// before concurrent rebuild activity starts: attachment is a plain
  /// store the rebuild path reads relaxed.
  void AttachTelemetry(telemetry::MetricRegistry* registry,
                       telemetry::TraceLog* trace, int shard = -1);

 private:
  struct Version {
    uint64_t epoch;
    std::shared_ptr<const Hope> hope;
  };

  uint64_t PublishLocked(std::unique_ptr<Hope> candidate, double fresh_cpr)
      HOPE_REQUIRES(rebuild_mu_);

  /// Attaches the collector as the observer and returns a shared_ptr
  /// whose deleter also pins the collector, so a snapshot that outlives
  /// the manager never encodes through a dangling observer.
  std::shared_ptr<const Hope> WrapVersion(std::unique_ptr<Hope> hope);

  const Options options_;
  std::unique_ptr<RebuildPolicy> policy_;
  std::shared_ptr<EncodeStatsCollector> collector_;

  /// Grace periods for current_'s pointees (mutable: pinning a read
  /// guard mutates reclaimer state even on const paths).
  mutable ebr::EpochReclaimer reclaimer_;
  /// Hot-path publication point. Readers load it inside an ebr::Guard;
  /// PublishLocked swaps it and retires the predecessor.
  HOPE_EBR_PUBLISHED std::atomic<const Version*> current_;
  Mutex rebuild_mu_;  ///< serializes RebuildNow/Publish
  /// Rejection-backoff deadline, steady_clock nanoseconds since epoch
  /// (atomic so lockless ShouldRebuild()/InBackoff() can read it).
  std::atomic<int64_t> backoff_until_ns_{0};
  std::atomic<double> baseline_cpr_{0};
  std::atomic<uint64_t> published_{0};
  std::atomic<uint64_t> rejected_{0};

  /// Lifecycle sink + the shard label rebuild events carry (-1 =
  /// unsharded). Set once by AttachTelemetry, read relaxed on the
  /// (mutex-serialized) rebuild path.
  std::atomic<telemetry::TraceLog*> trace_{nullptr};
  std::atomic<int32_t> trace_shard_{-1};
  std::vector<telemetry::MetricRegistry::Registration> registrations_;
};

}  // namespace hope::dynamic
