#include "dynamic/rebalance_policy.h"

#include <algorithm>
#include <cmath>

namespace hope::dynamic {

namespace {

class WeightImbalancePolicy final : public RebalancePolicy {
 public:
  WeightImbalancePolicy(double trigger_ratio, uint64_t min_keys,
                        double cooldown_seconds, uint32_t consecutive_polls)
      : trigger_ratio_(std::isnan(trigger_ratio)
                           ? 1.0
                           : std::max(trigger_ratio, 1.0)),
        min_keys_(std::max<uint64_t>(min_keys, 1)),
        cooldown_seconds_(std::isnan(cooldown_seconds)
                              ? 0.0
                              : std::max(cooldown_seconds, 0.0)),
        consecutive_polls_(std::max<uint32_t>(consecutive_polls, 1)) {}

  bool ShouldRebalance(const RebalanceSignals& s) override {
    bool skewed = s.max_over_mean >= trigger_ratio_ &&
                  s.keys_since_rebalance >= min_keys_ &&
                  s.seconds_since_rebalance >= cooldown_seconds_;
    if (!skewed) {
      streak_ = 0;
      return false;
    }
    if (++streak_ < consecutive_polls_) return false;
    streak_ = 0;
    return true;
  }

  const char* Name() const override { return "weight-imbalance"; }

 private:
  const double trigger_ratio_;
  const uint64_t min_keys_;
  const double cooldown_seconds_;
  const uint32_t consecutive_polls_;
  uint32_t streak_ = 0;
};

class NeverRebalancePolicy final : public RebalancePolicy {
 public:
  bool ShouldRebalance(const RebalanceSignals&) override { return false; }
  const char* Name() const override { return "never"; }
};

}  // namespace

std::unique_ptr<RebalancePolicy> MakeWeightImbalancePolicy(
    double trigger_ratio, uint64_t min_keys, double cooldown_seconds,
    uint32_t consecutive_polls) {
  return std::make_unique<WeightImbalancePolicy>(
      trigger_ratio, min_keys, cooldown_seconds, consecutive_polls);
}

std::unique_ptr<RebalancePolicy> MakeNeverRebalancePolicy() {
  return std::make_unique<NeverRebalancePolicy>();
}

}  // namespace hope::dynamic
