#include "dynamic/dictionary_manager.h"

#include <stdexcept>
#include <utility>
#include <vector>

#include "telemetry/trace_log.h"

namespace hope::dynamic {

namespace {

/// Below this many reservoir keys a rebuild would overfit a handful of
/// strings; wait for the collector to see more traffic.
constexpr size_t kMinRebuildCorpus = 16;

/// Mean per-key compression rate (PerKeyCpr averaged over the corpus) —
/// the same statistic the collector's EWMA tracks, so gate comparisons
/// and published baselines are apples-to-apples with it (the aggregate
/// byte-total ratio of Hope::CompressionRate weighs long keys more and
/// diverges from the EWMA whenever key lengths vary).
double MeanKeyCpr(const Hope& hope, const std::vector<std::string>& keys) {
  if (keys.empty()) return 0;
  double sum = 0;
  for (const auto& key : keys) {
    size_t bits = 0;
    hope.Encode(key, &bits);
    sum += PerKeyCpr(key.size(), bits);
  }
  return sum / static_cast<double>(keys.size());
}

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* DictionaryManager::RebuildResultName(RebuildResult r) {
  switch (r) {
    case RebuildResult::kRebuilt: return "rebuilt";
    case RebuildResult::kNotTriggered: return "not-triggered";
    case RebuildResult::kInsufficientData: return "insufficient-data";
    case RebuildResult::kRejectedBuildError: return "rejected-build-error";
    case RebuildResult::kRejectedRoundTrip: return "rejected-round-trip";
    case RebuildResult::kRejectedNoGain: return "rejected-no-gain";
  }
  return "?";
}

bool DictionaryManager::InBackoff() const {
  return SteadyNowNs() < backoff_until_ns_.load(std::memory_order_relaxed);
}

DictionaryManager::DictionaryManager(std::unique_ptr<Hope> initial,
                                     Options options,
                                     std::unique_ptr<RebuildPolicy> policy,
                                     const std::vector<std::string>& baseline_keys)
    : options_(options),
      policy_(std::move(policy)),
      collector_(std::make_shared<EncodeStatsCollector>(options.stats)) {
  if (!initial) throw std::invalid_argument("initial dictionary is null");
  if (!policy_) policy_ = MakeNeverPolicy();
  // Measure the baseline before the observer is attached so the
  // measurement itself does not feed the stats.
  double baseline = 0;
  if (!baseline_keys.empty()) {
    baseline = MeanKeyCpr(*initial, baseline_keys);
    baseline_cpr_.store(baseline);
  }
  collector_->MarkRebuild(baseline);
  current_.store(new Version{0, WrapVersion(std::move(initial))},
                 std::memory_order_seq_cst);
}

DictionaryManager::~DictionaryManager() {
  // Retire the final version and wait out the grace period. Guarantee:
  // a reader already pinned when this retire runs (it entered Acquire()
  // before destruction began) is safe — its pin predates the retire
  // tag, so the second epoch advance (and therefore the free) waits for
  // its guard to exit, and the pointer deliberately stays published so
  // a pinned reader that has not yet loaded current_ still finds a
  // valid Version (a nullptr store would turn that window into a null
  // deref). This is the documented exception to Retire()'s
  // unreachability precondition: an Acquire() that BEGINS after
  // destruction has started is a use of a dying object and undefined
  // like any other such call — the drain cannot and does not protect
  // it. Drain also frees versions retired by earlier publishes whose
  // grace period had not yet passed.
  // ebr-exempt: destructor — no concurrent publisher exists, and Drain()
  // below waits out pinned readers before the Version is freed.
  reclaimer_.RetireDelete(current_.load(std::memory_order_seq_cst));
  reclaimer_.Drain();
}

std::shared_ptr<const Hope> DictionaryManager::WrapVersion(
    std::unique_ptr<Hope> hope) {
  hope->SetEncodeObserver(collector_.get());
  // The deleter captures the collector so any outstanding snapshot keeps
  // the observer alive even after the manager is destroyed.
  return std::shared_ptr<const Hope>(
      hope.release(),
      [keep = collector_](const Hope* p) { delete p; });
}

DictSnapshot DictionaryManager::Acquire() const {
  // The guard pins the epoch across the raw load AND the shared_ptr
  // copy: the Version cannot be freed until the guard exits, and the
  // copied Hope handle keeps the snapshot valid indefinitely after.
  ebr::EpochReclaimer::Guard guard(reclaimer_);
  const Version* v = current_.load(std::memory_order_seq_cst);
  return DictSnapshot{v->epoch, v->hope};
}

RebuildSignals DictionaryManager::Signals() const {
  RebuildSignals s;
  s.ewma_cpr = collector_->EwmaCompressionRate();
  s.baseline_cpr = baseline_cpr_.load();
  s.keys_since_rebuild = collector_->KeysSinceRebuild();
  s.seconds_since_rebuild = collector_->SecondsSinceRebuild();
  s.reservoir_fill = collector_->ReservoirFill();
  s.reservoir_capacity = collector_->reservoir_capacity();
  return s;
}

DictionaryManager::RebuildResult DictionaryManager::RebuildNow(bool force) {
  MutexLock lock(rebuild_mu_);
  if (!force) {
    if (InBackoff()) return RebuildResult::kNotTriggered;
    if (!policy_->ShouldRebuild(Signals()))
      return RebuildResult::kNotTriggered;
  }
  telemetry::TraceLog* trace = trace_.load(std::memory_order_relaxed);
  const int32_t shard = trace_shard_.load(std::memory_order_relaxed);
  const int64_t t0 = SteadyNowNs();
  auto elapsed = [t0] {
    return static_cast<uint64_t>(SteadyNowNs() - t0);
  };
  auto reject = [&, this](RebuildResult r) {
    rejected_.fetch_add(1);
    backoff_until_ns_.store(
        SteadyNowNs() +
            static_cast<int64_t>(options_.rebuild_backoff_seconds * 1e9),
        std::memory_order_relaxed);
    if (trace != nullptr)
      trace->Record(telemetry::TraceEventType::kRebuildReject, shard,
                    static_cast<uint64_t>(r), elapsed());
    return r;
  };

  std::vector<std::string> corpus = collector_->ReservoirSnapshot();
  if (corpus.size() < kMinRebuildCorpus)
    return RebuildResult::kInsufficientData;

  // Every start event pairs with a finish or reject (the policy and
  // corpus gates above emit nothing — they fire every poll).
  // ebr-exempt: rebuild_mu_ is held — publishes (the only retire source
  // for current_) are serialized with us, so the pointee cannot be freed
  // under this read.
  if (trace != nullptr)
    trace->Record(telemetry::TraceEventType::kRebuildStart, shard,
                  current_.load(std::memory_order_relaxed)->epoch);

  std::unique_ptr<Hope> candidate;
  try {
    candidate = Hope::Build(options_.scheme, corpus, options_.dict_size_limit);
  } catch (const std::exception&) {
    return reject(RebuildResult::kRejectedBuildError);
  }

  if (options_.validate_roundtrip) {
    for (const std::string& key : corpus) {
      size_t bits = 0;
      std::string enc = candidate->Encode(key, &bits);
      if (candidate->Decode(enc, bits) != key)
        return reject(RebuildResult::kRejectedRoundTrip);
    }
  }

  // The EWMA approximates the live dictionary's mean per-key CPR on
  // recent keys, so the candidate is gated on the same statistic over the
  // reservoir (measuring the live dictionary directly would feed the
  // observer and pollute the very stats being compared).
  double candidate_cpr = MeanKeyCpr(*candidate, corpus);
  double live_cpr = collector_->EwmaCompressionRate();
  if (options_.min_cpr_gain >= 0 && live_cpr > 0 &&
      candidate_cpr < live_cpr * (1.0 + options_.min_cpr_gain))
    return reject(RebuildResult::kRejectedNoGain);

  const uint64_t new_epoch = PublishLocked(std::move(candidate), candidate_cpr);
  if (trace != nullptr)
    trace->Record(telemetry::TraceEventType::kRebuildFinish, shard, new_epoch,
                  elapsed());
  return RebuildResult::kRebuilt;
}

uint64_t DictionaryManager::Publish(
    std::unique_ptr<Hope> candidate,
    const std::vector<std::string>* baseline_keys) {
  MutexLock lock(rebuild_mu_);
  std::vector<std::string> corpus =
      baseline_keys ? *baseline_keys : collector_->ReservoirSnapshot();
  // With no traffic observed yet there is nothing to measure the
  // candidate on; carry the previous baseline forward rather than storing
  // 0, which would unseed the EWMA and permanently disable the
  // compression-drop policy.
  double fresh_cpr = corpus.empty() ? baseline_cpr_.load()
                                    : MeanKeyCpr(*candidate, corpus);
  return PublishLocked(std::move(candidate), fresh_cpr);
}

uint64_t DictionaryManager::PublishLocked(std::unique_ptr<Hope> candidate,
                                          double fresh_cpr) {
  // rebuild_mu_ is held, so the relaxed epoch read cannot race another
  // publish; swap first, then retire — the predecessor must be
  // unreachable before it enters the limbo list.
  // ebr-exempt: rebuild_mu_ is held — publishes are serialized, so the
  // predecessor cannot be retired until this writer does it below.
  uint64_t epoch =
      current_.load(std::memory_order_relaxed)->epoch + 1;
  const Version* old = current_.exchange(
      new Version{epoch, WrapVersion(std::move(candidate))},
      std::memory_order_seq_cst);
  reclaimer_.RetireDelete(old);
  baseline_cpr_.store(fresh_cpr);
  collector_->MarkRebuild(fresh_cpr);
  published_.fetch_add(1);
  return epoch;
}

void DictionaryManager::AttachTelemetry(telemetry::MetricRegistry* registry,
                                        telemetry::TraceLog* trace,
                                        int shard) {
  trace_shard_.store(shard, std::memory_order_relaxed);
  trace_.store(trace, std::memory_order_relaxed);
  reclaimer_.SetTraceLog(trace);
  if (registry == nullptr) return;
  telemetry::Labels labels;
  if (shard >= 0) labels.emplace_back("shard", std::to_string(shard));
  using MK = telemetry::MetricKind;
  auto add = [&](const char* name, MK kind, std::function<double()> read) {
    registrations_.push_back(
        registry->RegisterCallback(name, labels, kind, std::move(read)));
  };
  add("hope_dict_rebuilds_published_total", MK::kCounter,
      [this] { return static_cast<double>(rebuilds_published()); });
  add("hope_dict_rebuilds_rejected_total", MK::kCounter,
      [this] { return static_cast<double>(rebuilds_rejected()); });
  add("hope_dict_epoch", MK::kGauge,
      [this] { return static_cast<double>(epoch()); });
  add("hope_dict_baseline_cpr", MK::kGauge, [this] { return baseline_cpr(); });

  telemetry::Labels ebr_labels{{"scope", "dict"}};
  for (auto& l : labels) ebr_labels.push_back(l);
  auto ebr_regs = reclaimer_.RegisterMetrics(registry, std::move(ebr_labels));
  for (auto& r : ebr_regs) registrations_.push_back(std::move(r));
}

}  // namespace hope::dynamic
