// Pluggable shard re-balancing triggers: given the sharded manager's
// traffic-weight view, decide whether the load skew warrants re-deriving
// the router's boundaries. Unlike RebuildPolicy's pure predicates,
// rebalance policies may keep hysteresis state (e.g. a consecutive-poll
// counter) — the ShardedDictionaryManager serializes every evaluation
// under its rebalance mutex, so implementations still need no locking.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace hope::dynamic {

/// Snapshot of the signals a rebalance policy may consult, assembled by
/// the ShardedDictionaryManager from its traffic tracker and rebalance
/// history.
struct RebalanceSignals {
  /// Per-shard EWMA traffic shares in boundary order (sum ~1 once any
  /// traffic has been observed; initialized to 1/N).
  std::vector<double> weights;
  /// max(weights) / mean(weights): 1.0 = perfectly balanced, N = all
  /// traffic on one of N shards.
  double max_over_mean = 1.0;
  uint64_t keys_since_rebalance = 0;
  double seconds_since_rebalance = 0;
  uint64_t router_version = 0;
};

class RebalancePolicy {
 public:
  virtual ~RebalancePolicy() = default;
  /// Non-const: policies may advance hysteresis state on every call. The
  /// manager evaluates under its rebalance mutex (one caller at a time).
  virtual bool ShouldRebalance(const RebalanceSignals& s) = 0;
  virtual const char* Name() const = 0;
};

/// Triggers when max/mean shard traffic weight stays at or above
/// `trigger_ratio` for `consecutive_polls` consecutive evaluations
/// (hysteresis: one skewed poll after a traffic burst doesn't thrash the
/// router), with at least `min_keys` keys observed and at least
/// `cooldown_seconds` elapsed since the last rebalance. A non-qualifying
/// poll resets the consecutive counter. Degenerate inputs clamp:
/// trigger_ratio to >= 1 (NaN -> 1), min_keys 0 -> 1, cooldown to >= 0
/// (NaN -> 0), consecutive_polls 0 -> 1.
std::unique_ptr<RebalancePolicy> MakeWeightImbalancePolicy(
    double trigger_ratio, uint64_t min_keys = 1024,
    double cooldown_seconds = 1.0, uint32_t consecutive_polls = 2);

/// Never triggers (manual RebalanceNow(force) only).
std::unique_ptr<RebalancePolicy> MakeNeverRebalancePolicy();

}  // namespace hope::dynamic
