// VersionedIndex<Tree>: an adapter over the existing tree wrappers that
// stores HOPE-encoded keys and stays correct across dictionary hot-swaps.
//
// Encodings from different dictionary versions are not mutually
// order-consistent, so versions cannot share one ordered structure.
// Instead the index keeps one *generation* per adopted dictionary epoch:
// a tree whose keys were all encoded under that generation's snapshot
// (which the DictSnapshot keeps alive), plus an insert log of original
// keys that serves as the migration source. New inserts always land in
// the newest generation; lookups probe newest-to-oldest and lazily
// migrate any hit found in an old generation by re-encoding it under the
// current dictionary, so old generations drain as their keys are touched.
// MigrateAll() drains them eagerly (required before range scans, which
// only make sense within a single generation's encoding).
//
// The adapter is externally synchronized — it never locks. The classic
// embedding is single-writer: one thread mutates the index while the
// DictionaryManager swaps dictionaries underneath it (the swap itself
// stays concurrent-safe via immutable snapshots). The serving layer
// (serve/concurrent_index.h) instead wraps each shard's index in a
// shared_mutex and splits the API: Peek() is the const read path, safe
// under a shared lock concurrently with other Peek()s (it migrates
// nothing and its lazy probe-encoder build is once_flag-protected);
// every mutating call requires the exclusive lock.
//
// Tree must provide: Insert(string_view, uint64_t),
// Lookup(string_view, uint64_t*) const, Erase(string_view), size().
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "dynamic/dictionary_manager.h"

namespace hope::dynamic {

template <typename Tree>
class VersionedIndex {
 public:
  /// `manager` must outlive the index. Adopts the current epoch.
  explicit VersionedIndex(DictionaryManager* manager) : manager_(manager) {
    gens_.push_back(std::make_unique<Generation>(manager_->Acquire()));
  }

  /// Adopts the manager's current epoch if it moved since the last call;
  /// inserts and lookups call this themselves, so explicit calls are only
  /// needed to pick up a swap eagerly. One Acquire() serves both the
  /// epoch comparison and the adopted snapshot — a single reader guard
  /// per refresh, and no TOCTOU window between a separate epoch() probe
  /// and the acquisition.
  void Refresh() {
    DictSnapshot snap = manager_->Acquire();
    if (snap.epoch != gens_.back()->dict.epoch)
      gens_.push_back(std::make_unique<Generation>(std::move(snap)));
  }

  void Insert(const std::string& key, uint64_t value) {
    Refresh();
    // Evict any stale copy so an old generation can never shadow the
    // fresh value after this one migrates or is erased.
    for (size_t g = 0; g + 1 < gens_.size(); g++)
      gens_[g]->tree.Erase(gens_[g]->ProbeEncode(key));
    Generation& newest = *gens_.back();
    newest.tree.Insert(newest.Encode(key), value);
    newest.log.push_back(key);
    CompactLog(newest);
  }

  /// Migration insert (cross-shard rebalance): same shape as Insert but
  /// every encode goes through the observer-free probe — bulk-moving
  /// thousands of entries through the serving encode would flood the
  /// destination shard's stats collector with phantom traffic (EWMA,
  /// reservoir, and the rebalance policy's own traffic weights).
  void InsertMigrated(const std::string& key, uint64_t value) {
    Refresh();
    for (size_t g = 0; g + 1 < gens_.size(); g++)
      gens_[g]->tree.Erase(gens_[g]->ProbeEncode(key));
    Generation& newest = *gens_.back();
    newest.tree.Insert(newest.ProbeEncode(key), value);
    newest.log.push_back(key);
    CompactLog(newest);
  }

  /// Point lookup; a hit in an old generation migrates the entry into the
  /// newest one (re-encoded under the current dictionary).
  bool Lookup(const std::string& key, uint64_t* value) {
    Refresh();
    // The newest-generation encode is the one real serving encode (it
    // feeds the stats collector); old-generation probes and the
    // migration insert reuse it or go through the observer-free clone.
    std::string newest_enc = gens_.back()->Encode(key);
    for (size_t g = gens_.size(); g-- > 0;) {
      Generation& gen = *gens_[g];
      std::string enc = g + 1 == gens_.size() ? newest_enc
                                              : gen.ProbeEncode(key);
      uint64_t v = 0;
      if (!gen.tree.Lookup(enc, &v)) continue;
      if (g + 1 < gens_.size()) {
        gen.tree.Erase(enc);
        Generation& newest = *gens_.back();
        newest.tree.Insert(newest_enc, v);
        newest.log.push_back(key);
        // Migration appends count against the log bound just like insert
        // appends: a read-heavy migrate workload (lookups draining an old
        // generation while erases shrink the live set) would otherwise
        // grow the log far past the 4x-live bound with no Insert ever
        // running compaction.
        CompactLog(newest);
        PruneEmpty();
      }
      if (value) *value = v;
      return true;
    }
    return false;
  }

  /// Read-only point lookup: probes every generation newest-to-oldest
  /// without migrating hits, adopting epochs, or otherwise mutating the
  /// index. This is the concurrent reader path — safe under a shared
  /// lock alongside other Peek()s. The newest-generation encode is real
  /// serving traffic and feeds the stats collector (the collector is
  /// thread-safe); old-generation probes use the observer-free clone.
  /// Old generations drain via the writer path (Lookup/MigrateAll), not
  /// here, so a Peek-only workload leaves generation counts unchanged.
  bool Peek(const std::string& key, uint64_t* value) const {
    for (size_t g = gens_.size(); g-- > 0;) {
      const Generation& gen = *gens_[g];
      std::string enc = g + 1 == gens_.size() ? gen.Encode(key)
                                              : gen.ProbeEncode(key);
      uint64_t v = 0;
      if (gen.tree.Lookup(enc, &v)) {
        if (value) *value = v;
        return true;
      }
    }
    return false;
  }

  bool Erase(const std::string& key) {
    bool erased = false;
    for (auto& gen : gens_)
      erased |= gen->tree.Erase(gen->ProbeEncode(key));
    PruneEmpty();
    return erased;
  }

  /// Migration insert that never clobbers: if the key is already live in
  /// any generation the existing value wins and nothing changes. The
  /// cross-shard migration path needs this — a concurrent writer may
  /// have inserted a fresher value into the destination shard after the
  /// migration batch captured the source entry, and replaying the stale
  /// copy over it would undo the write. Returns true when inserted.
  bool InsertIfAbsent(const std::string& key, uint64_t value) {
    Refresh();
    for (auto& gen : gens_) {
      uint64_t v = 0;
      if (gen->tree.Lookup(gen->ProbeEncode(key), &v)) return false;
    }
    Generation& newest = *gens_.back();
    newest.tree.Insert(newest.ProbeEncode(key), value);
    newest.log.push_back(key);
    CompactLog(newest);
    return true;
  }

  /// Sorted live original keys in [begin, end) (`end == nullptr` =
  /// unbounded above), without removing them. Drains old generations
  /// first so one tree + log pair answers. This is the migration cursor
  /// for incremental cross-shard moves: capture the key list once, then
  /// ExtractKeys() it in bounded batches.
  std::vector<std::string> CollectRangeKeys(const std::string& begin,
                                            const std::string* end) {
    MigrateAll();
    Generation& gen = *gens_.back();
    std::unordered_set<std::string_view> seen;
    std::vector<std::string> out;
    for (const std::string& key : gen.log) {
      if (!seen.insert(key).second) continue;
      if (key < begin || (end && key >= *end)) continue;
      uint64_t v = 0;
      if (gen.tree.Lookup(gen.ProbeEncode(key), &v)) out.push_back(key);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Removes exactly the listed keys (those still live — keys erased or
  /// already moved since the cursor was captured are skipped) and
  /// appends {key, value} pairs to `out`. Returns entries extracted.
  size_t ExtractKeys(const std::vector<std::string>& keys,
                     std::vector<std::pair<std::string, uint64_t>>* out) {
    size_t extracted = 0;
    for (const std::string& key : keys) {
      for (size_t g = gens_.size(); g-- > 0;) {
        Generation& gen = *gens_[g];
        std::string enc = gen.ProbeEncode(key);
        uint64_t v = 0;
        if (!gen.tree.Lookup(enc, &v)) continue;
        gen.tree.Erase(enc);
        out->emplace_back(key, v);
        extracted++;
        break;
      }
    }
    PruneEmpty();
    return extracted;
  }

  /// Eagerly drains every old generation through its insert log. Returns
  /// the number of entries moved; afterwards NumGenerations() == 1.
  size_t MigrateAll() {
    Refresh();
    size_t moved = 0;
    for (size_t g = 0; g + 1 < gens_.size(); g++) {
      Generation& gen = *gens_[g];
      for (const std::string& key : gen.log) {
        std::string enc = gen.ProbeEncode(key);
        uint64_t v = 0;
        // Logged keys may have been erased or already migrated (the log
        // is append-only); only live entries move.
        if (!gen.tree.Lookup(enc, &v)) continue;
        gen.tree.Erase(enc);
        Generation& newest = *gens_.back();
        newest.tree.Insert(newest.ProbeEncode(key), v);
        newest.log.push_back(key);
        moved++;
      }
      // Same bound as the Insert/Lookup append paths; one check per
      // drained generation keeps the drain loop linear.
      CompactLog(*gens_.back());
    }
    gens_.erase(gens_.begin(), gens_.end() - 1);
    return moved;
  }

  /// Removes every live entry whose original key is in [begin, end) —
  /// `end == nullptr` means unbounded above — and appends the
  /// {original key, value} pairs to `out` in ascending key order. Drains
  /// old generations first, so the extraction walks one tree + log pair.
  /// This is the migration source for cross-shard re-balancing: the
  /// caller re-encodes the extracted keys under the destination shard's
  /// dictionary by inserting them there.
  size_t ExtractRange(const std::string& begin, const std::string* end,
                      std::vector<std::pair<std::string, uint64_t>>* out) {
    MigrateAll();
    Generation& gen = *gens_.back();
    const size_t before = out->size();
    // The log is append-only (duplicates, erased keys); visit each
    // distinct key once and keep only live out-of-range keys in the log.
    std::unordered_set<std::string> seen;
    std::vector<std::string> kept;
    kept.reserve(gen.log.size());
    for (std::string& key : gen.log) {
      if (!seen.insert(key).second) continue;
      std::string enc = gen.ProbeEncode(key);
      uint64_t v = 0;
      if (!gen.tree.Lookup(enc, &v)) continue;
      if (key >= begin && (!end || key < *end)) {
        gen.tree.Erase(enc);
        out->emplace_back(std::move(key), v);
      } else {
        kept.push_back(std::move(key));
      }
    }
    gen.log = std::move(kept);
    std::sort(out->begin() + static_cast<long>(before), out->end());
    return out->size() - before;
  }

  size_t size() const {
    size_t n = 0;
    for (const auto& gen : gens_) n += gen->tree.size();
    return n;
  }

  size_t NumGenerations() const { return gens_.size(); }
  uint64_t CurrentEpoch() const { return gens_.back()->dict.epoch; }

  /// Newest generation's insert-log length (diagnostic; stays within a
  /// constant factor of live entries thanks to compaction).
  size_t LogSize() const { return gens_.back()->log.size(); }

  /// The newest generation's tree — valid for scans once
  /// NumGenerations() == 1 (call MigrateAll() first).
  const Tree& tree() const { return gens_.back()->tree; }
  const DictSnapshot& snapshot() const { return gens_.back()->dict; }

 private:
  struct Generation {
    explicit Generation(DictSnapshot snapshot) : dict(std::move(snapshot)) {}

    /// Serving encode: goes through the manager-published version, so it
    /// feeds the stats collector like any other live traffic. Use ONLY
    /// for encodes that represent a real request (newest-generation
    /// insert/lookup of the caller's key).
    std::string Encode(const std::string& key) const {
      return dict.hope->Encode(key);
    }

    /// Maintenance encode: eviction passes, old-generation probes,
    /// migration and log compaction re-encode keys mechanically; routing
    /// them through the published version would pollute the EWMA/
    /// reservoir with retired-dictionary stats and synthetic bursts. The
    /// observer-free clone is built lazily on first maintenance touch;
    /// once_flag makes the build safe under concurrent Peek()s (Encode
    /// itself is const and stateless, so the built clone is shareable).
    std::string ProbeEncode(const std::string& key) const {
      std::call_once(probe_once, [this] { probe = dict.hope->Clone(); });
      return probe->Encode(key);
    }

    DictSnapshot dict;
    mutable std::once_flag probe_once;
    mutable std::unique_ptr<Hope> probe;  ///< observer-free clone (lazy)
    Tree tree;
    std::vector<std::string> log;  ///< original keys inserted here
  };

  /// Bounds the append-only insert log: once it outgrows the live entry
  /// count by 4x (overwrites, erased keys, migrated re-appends), rewrite
  /// it with the deduplicated live keys. The geometric trigger keeps the
  /// amortized cost per insert constant, and log size tracks live
  /// entries, not lifetime inserts.
  void CompactLog(Generation& gen) {
    if (gen.log.size() <= 4 * gen.tree.size() + 64) return;
    std::unordered_set<std::string_view> seen;
    std::vector<std::string> live;
    live.reserve(gen.tree.size());
    for (const std::string& key : gen.log) {
      if (!seen.insert(key).second) continue;
      uint64_t v = 0;
      if (gen.tree.Lookup(gen.ProbeEncode(key), &v)) live.push_back(key);
    }
    gen.log = std::move(live);
  }

  void PruneEmpty() {
    // Drop drained old generations (never the newest) so probes and the
    // per-insert eviction pass stay short.
    for (size_t g = gens_.size() - 1; g-- > 0;)
      if (gens_[g]->tree.size() == 0)
        gens_.erase(gens_.begin() + static_cast<long>(g));
  }

  DictionaryManager* manager_;
  std::vector<std::unique_ptr<Generation>> gens_;  ///< oldest .. newest
};

}  // namespace hope::dynamic
