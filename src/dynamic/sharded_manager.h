// Per-key-range sharding of the dynamic dictionary manager, with online
// shard re-balancing.
//
// A single global DictionaryManager forces a whole-corpus rebuild even
// when only one key region drifted (the fig-15 experiment drifts one
// email-provider region while the rest of the keyspace stays stable).
// Sharding localizes maintenance to what actually changed:
//
//   RouterVersion    — an immutable set of N-1 range boundaries plus a
//                      version number. The initial version derives
//                      equal-weight quantiles from the build sample;
//                      later versions are re-derived from live traffic.
//                      Route(key) is a binary search.
//   ShardedDictionaryManager
//                    — one DictionaryManager per range, each with its own
//                      epoch counter, stats collector, and rebuild
//                      policy, so drift in one range triggers a rebuild
//                      of only that shard's dictionary. The current
//                      RouterVersion is published through an atomic
//                      pointer whose pointees are retained for the
//                      manager's lifetime (the versioned-publication
//                      idea of DictionaryManager, with retention instead
//                      of refcounting so the read side is a single
//                      wait-free pointer load), so Route()/Acquire()
//                      never block while the boundaries move.
//   RebalancePolicy (rebalance_policy.h)
//                    — decides, from per-shard encode-count EWMA traffic
//                      weights, when the load skew warrants re-deriving
//                      boundaries; RebalanceNow() computes equal-weight
//                      boundaries from the union of the per-shard
//                      reservoirs and publishes the next RouterVersion
//                      together with a RebalancePlan describing which key
//                      ranges change owner.
//   BackgroundRebuilder (background_rebuilder.h)
//                    — a single shared worker loop polls every shard's
//                      rebuild policy and the manager's rebalance policy.
//
// A rebalance moves only routing, never dictionaries: shards that keep
// their range keep their epochs and dictionaries untouched, and a reader
// that routed through the previous RouterVersion keeps encoding through
// the shard it picked (every shard dictionary encodes every key; only
// compression quality is range-tuned). Index entries do have to follow
// their new owner — ShardedVersionedIndex::ApplyRebalance (sharded
// index.h) consumes the RebalancePlan and migrates the moved ranges.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dynamic/dictionary_manager.h"
#include "dynamic/rebalance_policy.h"

namespace hope::dynamic {

/// An immutable, versioned set of range boundaries mapping keys to shard
/// indices. Version 0 derives equal-weight quantiles from a build
/// sample; re-balanced versions are built from explicit boundaries.
/// Immutable after construction, so a shared_ptr<const RouterVersion>
/// snapshot can be read concurrently with a router swap.
class RouterVersion {
 public:
  /// Derives min(num_shards, distinct quantile keys + 1) ranges from the
  /// sample: boundary i is the sorted sample's (i+1)/N quantile, so each
  /// shard covers an equal share of the sample's weight. `num_shards` is
  /// clamped to >= 1; duplicate quantile keys collapse (a sample with one
  /// distinct key yields a single range). An empty sample yields a single
  /// range covering everything.
  RouterVersion(std::vector<std::string> sample, size_t num_shards);

  /// A re-derived router: `boundaries` must be sorted and strictly
  /// increasing (the manager's boundary derivation guarantees this).
  RouterVersion(uint64_t version, std::vector<std::string> boundaries)
      : version_(version), boundaries_(std::move(boundaries)) {}

  /// Shard index for a key: the number of boundaries <= key. Keys below
  /// every boundary go to shard 0; a key equal to boundary i belongs to
  /// shard i+1 (boundaries are inclusive starts of their range).
  size_t Route(std::string_view key) const {
    auto it = std::upper_bound(
        boundaries_.begin(), boundaries_.end(), key,
        [](std::string_view k, const std::string& b) {
          return k < std::string_view(b);
        });
    return static_cast<size_t>(it - boundaries_.begin());
  }

  /// Monotonically increasing across publishes; 0 = built from sample.
  uint64_t version() const { return version_; }

  size_t num_ranges() const { return boundaries_.size() + 1; }

  /// Sorted, strictly increasing; boundaries()[i] is the first key of
  /// shard i+1. Size num_ranges() - 1.
  const std::vector<std::string>& boundaries() const { return boundaries_; }

 private:
  uint64_t version_ = 0;
  std::vector<std::string> boundaries_;
};

/// The key ranges that change owner between two consecutive router
/// versions. Produced by ShardedDictionaryManager::RebalanceNow() and
/// consumed by ShardedVersionedIndex::ApplyRebalance(), which migrates
/// the moved entries. Shards not named in any move keep their range (and
/// their dictionaries and epochs) untouched.
struct RebalancePlan {
  struct Move {
    size_t from_shard = 0;
    size_t to_shard = 0;
    std::string begin;   ///< inclusive first key of the moved range
    std::string end;     ///< exclusive end; meaningful only when bounded
    bool bounded = true; ///< false: the range extends to +infinity
  };

  std::shared_ptr<const RouterVersion> from;  ///< router before the swap
  std::shared_ptr<const RouterVersion> to;    ///< router after the swap
  std::vector<Move> moves;                    ///< in ascending key order

  bool empty() const { return moves.empty(); }
};

/// Equal-weight boundary derivation over a weighted key multiset: cuts
/// `num_ranges` ranges so each holds ~1/num_ranges of the total weight.
/// Duplicate keys merge their weight; boundaries are strictly increasing
/// and never equal to the smallest key (shard 0 must own a non-empty
/// range), so fewer than num_ranges - 1 boundaries come back when the
/// key set cannot support them. Exposed for tests.
std::vector<std::string> DeriveWeightedBoundaries(
    std::vector<std::pair<std::string, double>> weighted, size_t num_ranges);

/// Diffs two routers into the elementary key ranges whose owner changes
/// (ranges between consecutive merged boundaries, ascending). Exposed
/// for tests.
RebalancePlan DiffRouters(std::shared_ptr<const RouterVersion> from,
                          std::shared_ptr<const RouterVersion> to);

/// A DictionaryManager per key range. Each shard's dictionary is built
/// from the sample keys routed to it (falling back to the whole sample
/// when a partition is too small to train on), and each shard runs its
/// own EncodeStatsCollector and RebuildPolicy, so rebuild decisions are
/// per-range: traffic drifting inside shard i trips shard i's policy and
/// leaves every other shard's epoch untouched.
///
/// The shard count is fixed at construction; what moves under load is
/// the routing. PollRebalance() (called by BackgroundRebuilder's worker)
/// folds per-shard encode counts into EWMA traffic weights, asks the
/// RebalancePolicy whether the skew warrants action, and on trigger
/// publishes a re-derived RouterVersion plus the RebalancePlan an index
/// needs to migrate the moved ranges.
class ShardedDictionaryManager {
 public:
  /// Fresh policy per shard (policies are stateless predicates today, but
  /// per-shard instances keep the door open for stateful ones). A null
  /// factory gives every shard MakeNeverPolicy().
  using PolicyFactory = std::function<std::unique_ptr<RebuildPolicy>()>;

  struct Options {
    size_t num_shards = 4;              ///< requested; router may collapse
    DictionaryManager::Options shard;   ///< applied to every shard manager
    /// A shard whose sample partition has fewer keys than this trains its
    /// initial dictionary on the whole sample instead (a handful of keys
    /// would overfit); its baseline still comes from its own partition.
    size_t min_shard_sample = 64;
    /// Weight of each PollRebalance() traffic observation when folding
    /// per-shard encode-count shares into the EWMA weights.
    double traffic_ewma_alpha = 0.3;
    /// RebalanceNow() refuses to re-derive boundaries from fewer than
    /// this many reservoir keys (union over shards): a handful of keys
    /// would anchor boundaries on noise.
    size_t min_rebalance_corpus = 64;
    /// After a rebalance, shards whose range changed (they appear in a
    /// plan move) get a dictionary retrained on their new range's slice
    /// of the rebalance corpus — their old dictionary was tuned to keys
    /// they no longer own. Shards that keep their range keep their
    /// dictionary and epoch untouched either way. Slices smaller than
    /// min_shard_sample skip the retrain (the next policy-triggered
    /// rebuild adapts them once traffic arrives).
    bool retrain_moved_shards = true;
  };

  /// Builds the router and every shard's initial dictionary from
  /// `sample` (must be non-empty). Throws std::invalid_argument on an
  /// empty sample and propagates Hope::Build failures. A null
  /// `rebalance_policy` disables policy-triggered rebalancing
  /// (RebalanceNow(force=true) still works).
  ShardedDictionaryManager(
      const std::vector<std::string>& sample, Options options,
      PolicyFactory policy_factory = nullptr,
      std::unique_ptr<RebalancePolicy> rebalance_policy = nullptr);

  ShardedDictionaryManager(const ShardedDictionaryManager&) = delete;
  ShardedDictionaryManager& operator=(const ShardedDictionaryManager&) = delete;

  /// Shared-ownership snapshot of the current router version (immutable;
  /// stays valid for as long as the caller holds it, even past the
  /// manager). Takes the rebalance mutex — use Route()/router_version()
  /// on hot paths.
  std::shared_ptr<const RouterVersion> router() const {
    std::lock_guard<std::mutex> lock(rebalance_mu_);
    return versions_.back();
  }
  uint64_t router_version() const {
    return router_ptr_.load(std::memory_order_acquire)->version();
  }

  size_t num_shards() const { return shards_.size(); }

  /// Wait-free: one atomic pointer load. Every published RouterVersion
  /// is retained for the manager's lifetime (a handful of boundary
  /// strings per rebalance), so a reader mid-Route() never races
  /// reclamation — publication is a plain pointer store, not a
  /// shared_ptr swap.
  size_t Route(std::string_view key) const {
    return router_ptr_.load(std::memory_order_acquire)->Route(key);
  }

  DictionaryManager& shard(size_t i) { return *shards_[i]; }
  const DictionaryManager& shard(size_t i) const { return *shards_[i]; }
  DictionaryManager& ShardFor(std::string_view key) {
    return *shards_[Route(key)];
  }

  /// Lock-free snapshot of the owning shard's current version.
  DictSnapshot Acquire(std::string_view key) const {
    return shards_[Route(key)]->Acquire();
  }

  /// Encode through the owning shard (feeds that shard's collector).
  std::string Encode(std::string_view key, size_t* bit_len = nullptr) const {
    return shards_[Route(key)]->Encode(key, bit_len);
  }

  /// Per-shard epochs in boundary order (diagnostics / bench output).
  std::vector<uint64_t> Epochs() const;

  /// True when any shard's policy wants a rebuild.
  bool ShouldRebuild() const;

  /// Polls every shard once: RebuildNow() on each, in boundary order.
  /// Returns the number of shards that published. Used by tests and by
  /// callers without a BackgroundRebuilder; the shared worker loop calls
  /// the per-shard managers directly.
  size_t RebuildPending();

  /// Folds the per-shard encode counts observed since the previous call
  /// into the EWMA traffic weights. Called by PollRebalance(); exposed
  /// for tests and manual polling.
  void UpdateTrafficWeights();

  /// Current EWMA traffic shares in boundary order (sum ~1).
  std::vector<double> TrafficWeights() const;

  /// max/mean of the current traffic weights (1.0 = balanced).
  double WeightImbalance() const;

  /// One worker-loop step: updates the traffic weights, evaluates the
  /// rebalance policy, and runs RebalanceNow() on trigger. Returns the
  /// published plan, or null when the policy stayed quiet or the
  /// re-derivation was a no-op.
  std::shared_ptr<const RebalancePlan> PollRebalance();

  /// Re-derives equal-weight boundaries from the union of the per-shard
  /// reservoirs (each shard's keys weighted by its traffic share), diffs
  /// them against the current router, and — when anything moves —
  /// publishes the next RouterVersion and returns the plan. Both paths
  /// fold the latest traffic into the weights first. Returns null when
  /// `force` is false and the policy declines, when the reservoirs hold
  /// fewer than Options::min_rebalance_corpus keys, or when the
  /// re-derived boundaries equal the current ones. Serialized
  /// internally; readers are never blocked.
  std::shared_ptr<const RebalancePlan> RebalanceNow(bool force = false);

  /// Plans published after router version `since_version`, oldest first
  /// (plans_[k] takes version k to k+1, so an index at version v applies
  /// PlansSince(v) in order to catch up).
  std::vector<std::shared_ptr<const RebalancePlan>> PlansSince(
      uint64_t since_version) const;

  /// Sums over shards (each counter is itself relaxed).
  uint64_t rebuilds_published() const;
  uint64_t rebuilds_rejected() const;

  /// Router publishes since construction (== router_version()).
  uint64_t rebalances_published() const { return rebalances_.load(); }

  /// Triggered rebalances that published nothing: the corpus was too
  /// small, or the re-derived boundaries matched the current ones (a
  /// stale-corpus symptom when paired with persistent imbalance).
  uint64_t rebalances_noop() const { return rebalance_noops_.load(); }

 private:
  std::shared_ptr<const RebalancePlan> RebalanceLocked();
  double WeightImbalanceLocked() const;  ///< requires rebalance_mu_

  const Options options_;
  /// Hot-path router: readers load the raw pointer wait-free. The
  /// pointees are owned by versions_ and never freed before destruction.
  std::atomic<const RouterVersion*> router_ptr_;
  std::vector<std::unique_ptr<DictionaryManager>> shards_;

  std::unique_ptr<RebalancePolicy> rebalance_policy_;
  mutable std::mutex rebalance_mu_;  ///< versions, weights, plans, Rebalance
  /// Every router version ever published, oldest first (versions_.back()
  /// is current). Retained for the manager's lifetime so router_ptr_
  /// readers never race reclamation; one entry per rebalance.
  std::vector<std::shared_ptr<const RouterVersion>> versions_;
  std::vector<double> weights_;          ///< EWMA traffic shares
  std::vector<uint64_t> last_observed_;  ///< per-shard KeysObserved marks
  uint64_t observed_at_rebalance_ = 0;   ///< total encodes at last publish
  std::chrono::steady_clock::time_point last_rebalance_;
  std::vector<std::shared_ptr<const RebalancePlan>> plans_;
  std::atomic<uint64_t> rebalances_{0};
  std::atomic<uint64_t> rebalance_noops_{0};
};

}  // namespace hope::dynamic
