// Per-key-range sharding of the dynamic dictionary manager.
//
// A single global DictionaryManager forces a whole-corpus rebuild even
// when only one key region drifted (the fig-15 experiment drifts one
// email-provider region while the rest of the keyspace stays stable).
// Sharding localizes maintenance to what actually changed:
//
//   ShardRouter      — N-1 range boundaries derived from the build sample
//                      (equal-weight quantiles over the sorted keys);
//                      Route(key) is a binary search.
//   ShardedDictionaryManager
//                    — one DictionaryManager per range, each with its own
//                      epoch counter, stats collector, and rebuild
//                      policy, so drift in one range triggers a rebuild
//                      of only that shard's dictionary.
//   BackgroundRebuilder (background_rebuilder.h)
//                    — a single shared worker loop polls every shard.
//
// Shards never exchange keys: a key's shard is fixed by the router for
// the manager's lifetime, so per-shard epochs advance independently and
// a reader holding shard i's snapshot is unaffected by shard j's swap.
// ShardedVersionedIndex (sharded_index.h) builds the index counterpart
// on top of this.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dynamic/dictionary_manager.h"

namespace hope::dynamic {

/// Maps keys to shard indices via range boundaries derived from a build
/// sample: boundary i is the sorted sample's (i+1)/N quantile, so each
/// shard covers an equal share of the sample's weight. Immutable after
/// construction; Route() is safe to call concurrently.
class ShardRouter {
 public:
  /// Derives min(num_shards, distinct quantile keys + 1) ranges from the
  /// sample. `num_shards` is clamped to >= 1; duplicate quantile keys
  /// collapse (a sample with one distinct key yields a single shard).
  /// An empty sample yields a single shard covering everything.
  ShardRouter(std::vector<std::string> sample, size_t num_shards);

  /// Shard index for a key: the number of boundaries <= key. Keys below
  /// every boundary go to shard 0; a key equal to boundary i belongs to
  /// shard i+1 (boundaries are inclusive starts of their range).
  size_t Route(std::string_view key) const {
    auto it = std::upper_bound(
        boundaries_.begin(), boundaries_.end(), key,
        [](std::string_view k, const std::string& b) {
          return k < std::string_view(b);
        });
    return static_cast<size_t>(it - boundaries_.begin());
  }

  size_t num_shards() const { return boundaries_.size() + 1; }

  /// Sorted, strictly increasing; boundaries()[i] is the first key of
  /// shard i+1. Size num_shards() - 1.
  const std::vector<std::string>& boundaries() const { return boundaries_; }

 private:
  std::vector<std::string> boundaries_;
};

/// A DictionaryManager per key range. Each shard's dictionary is built
/// from the sample keys routed to it (falling back to the whole sample
/// when a partition is too small to train on), and each shard runs its
/// own EncodeStatsCollector and RebuildPolicy, so rebuild decisions are
/// per-range: traffic drifting inside shard i trips shard i's policy and
/// leaves every other shard's epoch untouched.
class ShardedDictionaryManager {
 public:
  /// Fresh policy per shard (policies are stateless predicates today, but
  /// per-shard instances keep the door open for stateful ones). A null
  /// factory gives every shard MakeNeverPolicy().
  using PolicyFactory = std::function<std::unique_ptr<RebuildPolicy>()>;

  struct Options {
    size_t num_shards = 4;              ///< requested; router may collapse
    DictionaryManager::Options shard;   ///< applied to every shard manager
    /// A shard whose sample partition has fewer keys than this trains its
    /// initial dictionary on the whole sample instead (a handful of keys
    /// would overfit); its baseline still comes from its own partition.
    size_t min_shard_sample = 64;
  };

  /// Builds the router and every shard's initial dictionary from
  /// `sample` (must be non-empty). Throws std::invalid_argument on an
  /// empty sample and propagates Hope::Build failures.
  ShardedDictionaryManager(const std::vector<std::string>& sample,
                           Options options,
                           PolicyFactory policy_factory = nullptr);

  ShardedDictionaryManager(const ShardedDictionaryManager&) = delete;
  ShardedDictionaryManager& operator=(const ShardedDictionaryManager&) = delete;

  const ShardRouter& router() const { return router_; }
  size_t num_shards() const { return shards_.size(); }
  size_t Route(std::string_view key) const { return router_.Route(key); }

  DictionaryManager& shard(size_t i) { return *shards_[i]; }
  const DictionaryManager& shard(size_t i) const { return *shards_[i]; }
  DictionaryManager& ShardFor(std::string_view key) {
    return *shards_[router_.Route(key)];
  }

  /// Lock-free snapshot of the owning shard's current version.
  DictSnapshot Acquire(std::string_view key) const {
    return shards_[router_.Route(key)]->Acquire();
  }

  /// Encode through the owning shard (feeds that shard's collector).
  std::string Encode(std::string_view key, size_t* bit_len = nullptr) const {
    return shards_[router_.Route(key)]->Encode(key, bit_len);
  }

  /// Per-shard epochs in boundary order (diagnostics / bench output).
  std::vector<uint64_t> Epochs() const;

  /// True when any shard's policy wants a rebuild.
  bool ShouldRebuild() const;

  /// Polls every shard once: RebuildNow() on each, in boundary order.
  /// Returns the number of shards that published. Used by tests and by
  /// callers without a BackgroundRebuilder; the shared worker loop calls
  /// the per-shard managers directly.
  size_t RebuildPending();

  /// Sums over shards (each counter is itself relaxed).
  uint64_t rebuilds_published() const;
  uint64_t rebuilds_rejected() const;

 private:
  ShardRouter router_;
  std::vector<std::unique_ptr<DictionaryManager>> shards_;
};

}  // namespace hope::dynamic
