// Per-key-range sharding of the dynamic dictionary manager, with online
// shard re-balancing.
//
// A single global DictionaryManager forces a whole-corpus rebuild even
// when only one key region drifted (the fig-15 experiment drifts one
// email-provider region while the rest of the keyspace stays stable).
// Sharding localizes maintenance to what actually changed:
//
//   RouterVersion    — an immutable set of N-1 range boundaries plus a
//                      version number. The initial version derives
//                      equal-weight quantiles from the build sample;
//                      later versions are re-derived from live traffic.
//                      Route(key) is a binary search.
//   ShardedDictionaryManager
//                    — one DictionaryManager per range, each with its own
//                      epoch counter, stats collector, and rebuild
//                      policy, so drift in one range triggers a rebuild
//                      of only that shard's dictionary. The current
//                      RouterVersion is published through an atomic raw
//                      pointer under epoch-based reclamation (common/
//                      epoch_reclaim.h): Route()/router_version() pin an
//                      ebr::Guard around a wait-free pointer load, and a
//                      rebalance retires the superseded version, which
//                      is freed once the grace period passes AND every
//                      shared_ptr holder (plans, lagging indexes) lets
//                      go — instead of the old retain-forever list that
//                      leaked a version per rebalance for the manager's
//                      lifetime.
//   RebalancePolicy (rebalance_policy.h)
//                    — decides, from per-shard encode-count EWMA traffic
//                      weights, when the load skew warrants re-deriving
//                      boundaries; RebalanceNow() computes equal-weight
//                      boundaries from the union of the per-shard
//                      reservoirs and publishes the next RouterVersion
//                      together with a RebalancePlan describing which key
//                      ranges change owner.
//   BackgroundRebuilder (background_rebuilder.h)
//                    — a single shared worker loop polls every shard's
//                      rebuild policy and the manager's rebalance policy.
//
// A rebalance moves only routing, never dictionaries: shards that keep
// their range keep their epochs and dictionaries untouched, and a reader
// that routed through the previous RouterVersion keeps encoding through
// the shard it picked (every shard dictionary encodes every key; only
// compression quality is range-tuned). Index entries do have to follow
// their new owner — ShardedVersionedIndex::ApplyRebalance (sharded
// index.h) consumes the RebalancePlan and migrates the moved ranges.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/epoch_reclaim.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "dynamic/dictionary_manager.h"
#include "dynamic/rebalance_policy.h"

namespace hope::dynamic {

/// An immutable, versioned set of range boundaries mapping keys to shard
/// indices. Version 0 derives equal-weight quantiles from a build
/// sample; re-balanced versions are built from explicit boundaries.
/// Immutable after construction, so a shared_ptr<const RouterVersion>
/// snapshot can be read concurrently with a router swap.
class RouterVersion {
 public:
  /// Derives min(num_shards, distinct quantile keys + 1) ranges from the
  /// sample: boundary i is the sorted sample's (i+1)/N quantile, so each
  /// shard covers an equal share of the sample's weight. `num_shards` is
  /// clamped to >= 1; duplicate quantile keys collapse (a sample with one
  /// distinct key yields a single range). An empty sample yields a single
  /// range covering everything.
  RouterVersion(std::vector<std::string> sample, size_t num_shards);

  /// A re-derived router: `boundaries` must be sorted and strictly
  /// increasing (the manager's boundary derivation guarantees this).
  RouterVersion(uint64_t version, std::vector<std::string> boundaries)
      : version_(version), boundaries_(std::move(boundaries)) {}

  /// Shard index for a key: the number of boundaries <= key. Keys below
  /// every boundary go to shard 0; a key equal to boundary i belongs to
  /// shard i+1 (boundaries are inclusive starts of their range).
  size_t Route(std::string_view key) const {
    auto it = std::upper_bound(
        boundaries_.begin(), boundaries_.end(), key,
        [](std::string_view k, const std::string& b) {
          return k < std::string_view(b);
        });
    return static_cast<size_t>(it - boundaries_.begin());
  }

  /// Monotonically increasing across publishes; 0 = built from sample.
  uint64_t version() const { return version_; }

  size_t num_ranges() const { return boundaries_.size() + 1; }

  /// Sorted, strictly increasing; boundaries()[i] is the first key of
  /// shard i+1. Size num_ranges() - 1.
  const std::vector<std::string>& boundaries() const { return boundaries_; }

 private:
  uint64_t version_ = 0;
  std::vector<std::string> boundaries_;
};

/// The key ranges that change owner between two consecutive router
/// versions. Produced by ShardedDictionaryManager::RebalanceNow() and
/// consumed by ShardedVersionedIndex::ApplyRebalance(), which migrates
/// the moved entries. Shards not named in any move keep their range (and
/// their dictionaries and epochs) untouched.
struct RebalancePlan {
  struct Move {
    size_t from_shard = 0;
    size_t to_shard = 0;
    std::string begin;   ///< inclusive first key of the moved range
    std::string end;     ///< exclusive end; meaningful only when bounded
    bool bounded = true; ///< false: the range extends to +infinity
  };

  std::shared_ptr<const RouterVersion> from;  ///< router before the swap
  std::shared_ptr<const RouterVersion> to;    ///< router after the swap
  std::vector<Move> moves;                    ///< in ascending key order

  bool empty() const { return moves.empty(); }
};

/// Equal-weight boundary derivation over a weighted key multiset: cuts
/// `num_ranges` ranges so each holds ~1/num_ranges of the total weight.
/// Duplicate keys merge their weight; boundaries are strictly increasing
/// and never equal to the smallest key (shard 0 must own a non-empty
/// range), so fewer than num_ranges - 1 boundaries come back when the
/// key set cannot support them. Exposed for tests.
std::vector<std::string> DeriveWeightedBoundaries(
    std::vector<std::pair<std::string, double>> weighted, size_t num_ranges);

/// Diffs two routers into the elementary key ranges whose owner changes
/// (ranges between consecutive merged boundaries, ascending). Exposed
/// for tests.
RebalancePlan DiffRouters(std::shared_ptr<const RouterVersion> from,
                          std::shared_ptr<const RouterVersion> to);

/// A DictionaryManager per key range. Each shard's dictionary is built
/// from the sample keys routed to it (falling back to the whole sample
/// when a partition is too small to train on), and each shard runs its
/// own EncodeStatsCollector and RebuildPolicy, so rebuild decisions are
/// per-range: traffic drifting inside shard i trips shard i's policy and
/// leaves every other shard's epoch untouched.
///
/// The shard count is fixed at construction; what moves under load is
/// the routing. PollRebalance() (called by BackgroundRebuilder's worker)
/// folds per-shard encode counts into EWMA traffic weights, asks the
/// RebalancePolicy whether the skew warrants action, and on trigger
/// publishes a re-derived RouterVersion plus the RebalancePlan an index
/// needs to migrate the moved ranges.
class ShardedDictionaryManager {
 public:
  /// Fresh policy per shard (policies are stateless predicates today, but
  /// per-shard instances keep the door open for stateful ones). A null
  /// factory gives every shard MakeNeverPolicy().
  using PolicyFactory = std::function<std::unique_ptr<RebuildPolicy>()>;

  struct Options {
    size_t num_shards = 4;              ///< requested; router may collapse
    DictionaryManager::Options shard;   ///< applied to every shard manager
    /// A shard whose sample partition has fewer keys than this trains its
    /// initial dictionary on the whole sample instead (a handful of keys
    /// would overfit); its baseline still comes from its own partition.
    size_t min_shard_sample = 64;
    /// Weight of each PollRebalance() traffic observation when folding
    /// per-shard encode-count shares into the EWMA weights.
    double traffic_ewma_alpha = 0.3;
    /// RebalanceNow() refuses to re-derive boundaries from fewer than
    /// this many reservoir keys (union over shards): a handful of keys
    /// would anchor boundaries on noise.
    size_t min_rebalance_corpus = 64;
    /// After a rebalance, shards whose range changed (they appear in a
    /// plan move) get a dictionary retrained on their new range's slice
    /// of the rebalance corpus — their old dictionary was tuned to keys
    /// they no longer own. Shards that keep their range keep their
    /// dictionary and epoch untouched either way. Slices smaller than
    /// min_shard_sample skip the retrain (the next policy-triggered
    /// rebuild adapts them once traffic arrives).
    bool retrain_moved_shards = true;
  };

  /// Builds the router and every shard's initial dictionary from
  /// `sample` (must be non-empty). Throws std::invalid_argument on an
  /// empty sample and propagates Hope::Build failures. A null
  /// `rebalance_policy` disables policy-triggered rebalancing
  /// (RebalanceNow(force=true) still works).
  ShardedDictionaryManager(
      const std::vector<std::string>& sample, Options options,
      PolicyFactory policy_factory = nullptr,
      std::unique_ptr<RebalancePolicy> rebalance_policy = nullptr);

  ShardedDictionaryManager(const ShardedDictionaryManager&) = delete;
  ShardedDictionaryManager& operator=(const ShardedDictionaryManager&) = delete;

  /// Retires the final router version and drains the reclaimer, so
  /// destruction waits out in-flight Route() readers. Registered
  /// indexes must deregister first (they must not outlive the manager).
  ~ShardedDictionaryManager();

  /// Shared-ownership snapshot of the current router version (immutable;
  /// stays valid for as long as the caller holds it, even past the
  /// manager). Takes the rebalance mutex — use Route()/router_version()
  /// on hot paths.
  std::shared_ptr<const RouterVersion> router() const
      HOPE_EXCLUDES(rebalance_mu_) {
    MutexLock lock(rebalance_mu_);
    return current_router_;
  }
  uint64_t router_version() const {
    ebr::EpochReclaimer::Guard guard(reclaimer_);
    return router_ptr_.load(std::memory_order_seq_cst)->version();
  }

  size_t num_shards() const { return shards_.size(); }

  /// Wait-free: an epoch-guarded atomic pointer load. The guard pins the
  /// RouterVersion across the binary search; a rebalance publishing
  /// concurrently retires the superseded version, which is freed only
  /// after every pinned reader exits (and every plan/index shared_ptr
  /// holder releases it).
  size_t Route(std::string_view key) const {
    ebr::EpochReclaimer::Guard guard(reclaimer_);
    return router_ptr_.load(std::memory_order_seq_cst)->Route(key);
  }

  DictionaryManager& shard(size_t i) { return *shards_[i]; }
  const DictionaryManager& shard(size_t i) const { return *shards_[i]; }
  DictionaryManager& ShardFor(std::string_view key) {
    return *shards_[Route(key)];
  }

  /// Lock-free snapshot of the owning shard's current version.
  DictSnapshot Acquire(std::string_view key) const {
    return shards_[Route(key)]->Acquire();
  }

  /// Encode through the owning shard (feeds that shard's collector).
  std::string Encode(std::string_view key, size_t* bit_len = nullptr) const {
    return shards_[Route(key)]->Encode(key, bit_len);
  }

  /// Per-shard epochs in boundary order (diagnostics / bench output).
  std::vector<uint64_t> Epochs() const;

  /// True when any shard's policy wants a rebuild.
  bool ShouldRebuild() const;

  /// Polls every shard once: RebuildNow() on each, in boundary order.
  /// Returns the number of shards that published. Used by tests and by
  /// callers without a BackgroundRebuilder; the shared worker loop calls
  /// the per-shard managers directly.
  size_t RebuildPending();

  /// Folds the per-shard encode counts observed since the previous call
  /// into the EWMA traffic weights. Called by PollRebalance(); exposed
  /// for tests and manual polling.
  void UpdateTrafficWeights() HOPE_EXCLUDES(rebalance_mu_);

  /// Current EWMA traffic shares in boundary order (sum ~1).
  std::vector<double> TrafficWeights() const HOPE_EXCLUDES(rebalance_mu_);

  /// max/mean of the current traffic weights (1.0 = balanced).
  double WeightImbalance() const HOPE_EXCLUDES(rebalance_mu_);

  /// One worker-loop step: updates the traffic weights, evaluates the
  /// rebalance policy, and runs RebalanceNow() on trigger. Returns the
  /// published plan, or null when the policy stayed quiet or the
  /// re-derivation was a no-op.
  std::shared_ptr<const RebalancePlan> PollRebalance()
      HOPE_EXCLUDES(rebalance_mu_);

  /// Re-derives equal-weight boundaries from the union of the per-shard
  /// reservoirs (each shard's keys weighted by its traffic share), diffs
  /// them against the current router, and — when anything moves —
  /// publishes the next RouterVersion and returns the plan. Both paths
  /// fold the latest traffic into the weights first. Returns null when
  /// `force` is false and the policy declines, when the reservoirs hold
  /// fewer than Options::min_rebalance_corpus keys, or when the
  /// re-derived boundaries equal the current ones. Serialized
  /// internally; readers are never blocked.
  std::shared_ptr<const RebalancePlan> RebalanceNow(bool force = false)
      HOPE_EXCLUDES(rebalance_mu_);

  /// A registered index's pin on the plan history: plans taking the
  /// router from `router->version()` onward are retained until the index
  /// advances (UpdateIndexVersion) or deregisters. `router` is the
  /// version current at registration, captured under the same lock so no
  /// plan can be published-and-pruned between the two.
  struct IndexRegistration {
    uint64_t id = 0;
    std::shared_ptr<const RouterVersion> router;
  };

  /// Registers a consumer of the plan history (a ShardedVersionedIndex),
  /// pinned at the current router version.
  IndexRegistration RegisterIndex();

  /// Records that index `id` has applied every plan up to `version`
  /// (its router snapshot's version). Plans no index still needs are
  /// pruned.
  void UpdateIndexVersion(uint64_t id, uint64_t version);

  /// Drops the pin. Unknown ids are ignored.
  void DeregisterIndex(uint64_t id);

  /// Plans published after router version `since_version`, oldest first
  /// (the plan at history index k takes version k to k+1, so an index at
  /// version v applies *PlansSince(v) in order to catch up). Returns
  /// std::nullopt when `since_version` predates the pruned history
  /// floor: the caller cannot catch up incrementally and must do a full
  /// resync — silently replaying from the gap would mis-route every key
  /// whose move was in a pruned plan. Registered indexes never see the
  /// sentinel (their pin blocks pruning).
  std::optional<std::vector<std::shared_ptr<const RebalancePlan>>> PlansSince(
      uint64_t since_version) const;

  /// Oldest router version the retained plan history can take forward
  /// (PlansSince(v) succeeds iff v >= plans_floor()).
  uint64_t plans_floor() const HOPE_EXCLUDES(rebalance_mu_) {
    MutexLock lock(rebalance_mu_);
    return plans_base_;
  }

  /// Currently retained plans (bounded by the laggiest registered
  /// index, not by manager lifetime).
  size_t plans_retained() const HOPE_EXCLUDES(rebalance_mu_) {
    MutexLock lock(rebalance_mu_);
    return plans_.size();
  }

  /// Plans dropped by pruning since construction.
  uint64_t plans_pruned() const { return plans_pruned_.load(); }

  /// Grace periods for superseded RouterVersions (retired/reclaimed
  /// counters; TryReclaim for idle-period polling).
  ebr::EpochReclaimer& reclaimer() const { return reclaimer_; }

  /// Sums over shards (each counter is itself relaxed).
  uint64_t rebuilds_published() const;
  uint64_t rebuilds_rejected() const;

  /// Router publishes since construction (== router_version()).
  uint64_t rebalances_published() const { return rebalances_.load(); }

  /// Triggered rebalances that published nothing: the corpus was too
  /// small, or the re-derived boundaries matched the current ones (a
  /// stale-corpus symptom when paired with persistent imbalance).
  uint64_t rebalances_noop() const { return rebalance_noops_.load(); }

  /// Wires the whole sharded stack in one call: registers the rebalance
  /// counters/gauges (hope_rebalance_*, hope_router_version, plus the
  /// router reclaimer's hope_ebr_* under scope="router") and attaches
  /// every shard manager with its shard label; router publishes record
  /// kRebalancePublish on `trace`. Either sink may be null; both must
  /// outlive the manager. Attach before background polling starts.
  void AttachTelemetry(telemetry::MetricRegistry* registry,
                       telemetry::TraceLog* trace);

 private:
  std::shared_ptr<const RebalancePlan> RebalanceLocked()
      HOPE_REQUIRES(rebalance_mu_);
  double WeightImbalanceLocked() const HOPE_REQUIRES(rebalance_mu_);
  /// Drops plans below the minimum version any registered index still
  /// needs (or below the current version when none is registered).
  void PrunePlansLocked() HOPE_REQUIRES(rebalance_mu_);

  const Options options_;
  /// Grace periods for router_ptr_'s pointees (mutable: read guards pin
  /// it on const paths).
  mutable ebr::EpochReclaimer reclaimer_;
  /// Hot-path router: readers load the raw pointer inside an ebr::Guard.
  /// The pointee is co-owned by current_router_ (and any plans/indexes
  /// holding it); on supersession the manager's reference is released
  /// through Retire, i.e. only after the grace period.
  HOPE_EBR_PUBLISHED std::atomic<const RouterVersion*> router_ptr_;
  std::vector<std::unique_ptr<DictionaryManager>> shards_;

  std::unique_ptr<RebalancePolicy> rebalance_policy_;
  mutable Mutex rebalance_mu_;  ///< router, weights, plans, Rebalance
  /// The current router version (the only one the manager itself owns;
  /// superseded versions live on exactly as long as plans or index
  /// snapshots reference them, plus the EBR grace period).
  std::shared_ptr<const RouterVersion> current_router_
      HOPE_GUARDED_BY(rebalance_mu_);
  /// EWMA traffic shares.
  std::vector<double> weights_ HOPE_GUARDED_BY(rebalance_mu_);
  /// Per-shard KeysObserved marks.
  std::vector<uint64_t> last_observed_ HOPE_GUARDED_BY(rebalance_mu_);
  /// Total encodes at last publish.
  uint64_t observed_at_rebalance_ HOPE_GUARDED_BY(rebalance_mu_) = 0;
  std::chrono::steady_clock::time_point last_rebalance_
      HOPE_GUARDED_BY(rebalance_mu_);
  /// Retained plan history, oldest first: plans_[k] takes router version
  /// plans_base_ + k to plans_base_ + k + 1. Pruned against the
  /// registered-index pins, so it is bounded by the laggiest consumer.
  std::deque<std::shared_ptr<const RebalancePlan>> plans_
      HOPE_GUARDED_BY(rebalance_mu_);
  /// Version plans_.front() starts from.
  uint64_t plans_base_ HOPE_GUARDED_BY(rebalance_mu_) = 0;
  /// Registered plan consumers: id -> last applied router version.
  std::unordered_map<uint64_t, uint64_t> index_versions_
      HOPE_GUARDED_BY(rebalance_mu_);
  uint64_t next_index_id_ HOPE_GUARDED_BY(rebalance_mu_) = 1;
  std::atomic<uint64_t> plans_pruned_{0};
  std::atomic<uint64_t> rebalances_{0};
  std::atomic<uint64_t> rebalance_noops_{0};

  /// Lifecycle sink (set once by AttachTelemetry, read relaxed under
  /// rebalance_mu_) and the metric registrations' RAII handles.
  std::atomic<telemetry::TraceLog*> trace_{nullptr};
  std::vector<telemetry::MetricRegistry::Registration> registrations_;
};

}  // namespace hope::dynamic
