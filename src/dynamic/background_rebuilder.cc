#include "dynamic/background_rebuilder.h"

namespace hope::dynamic {

BackgroundRebuilder::BackgroundRebuilder(DictionaryManager* manager,
                                         Options options)
    : manager_(manager), options_(options), worker_([this] { Loop(); }) {}

BackgroundRebuilder::~BackgroundRebuilder() { Stop(); }

void BackgroundRebuilder::Nudge() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    nudged_ = true;
  }
  cv_.notify_one();
}

void BackgroundRebuilder::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_one();
  if (worker_.joinable()) worker_.join();
}

void BackgroundRebuilder::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, options_.poll_interval,
                 [this] { return stop_ || nudged_; });
    if (stop_) break;
    nudged_ = false;
    // Run the cycle unlocked so Nudge()/Stop() never wait on a build.
    lock.unlock();
    cycles_.fetch_add(1);
    // RebuildNow re-checks the policy under its own mutex (the
    // authoritative, race-free evaluation), so no pre-check here.
    if (manager_->RebuildNow() == DictionaryManager::RebuildResult::kRebuilt)
      rebuilds_.fetch_add(1);
    lock.lock();
  }
}

}  // namespace hope::dynamic
