#include "dynamic/background_rebuilder.h"

#include "dynamic/sharded_manager.h"

namespace hope::dynamic {

namespace {

std::vector<DictionaryManager*> AllShards(ShardedDictionaryManager* sharded) {
  std::vector<DictionaryManager*> managers;
  managers.reserve(sharded->num_shards());
  for (size_t i = 0; i < sharded->num_shards(); i++)
    managers.push_back(&sharded->shard(i));
  return managers;
}

}  // namespace

BackgroundRebuilder::BackgroundRebuilder(
    std::vector<DictionaryManager*> managers, Options options)
    : managers_(std::move(managers)),
      options_(options),
      worker_([this] { Loop(); }) {}

BackgroundRebuilder::BackgroundRebuilder(ShardedDictionaryManager* sharded,
                                         Options options)
    : BackgroundRebuilder(AllShards(sharded), options) {}

BackgroundRebuilder::~BackgroundRebuilder() { Stop(); }

void BackgroundRebuilder::Nudge() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    nudged_ = true;
  }
  cv_.notify_one();
}

void BackgroundRebuilder::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_one();
  if (worker_.joinable()) worker_.join();
}

void BackgroundRebuilder::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, options_.poll_interval,
                 [this] { return stop_ || nudged_; });
    if (stop_) break;
    nudged_ = false;
    // Run the cycle unlocked so Nudge()/Stop() never wait on a build.
    lock.unlock();
    cycles_.fetch_add(1);
    // RebuildNow re-checks each policy under the manager's own mutex (the
    // authoritative, race-free evaluation), so no pre-check here. Shards
    // whose policy is quiet return kNotTriggered in microseconds, so one
    // drifted shard never starves the others of polling.
    for (DictionaryManager* manager : managers_) {
      if (manager->RebuildNow() == DictionaryManager::RebuildResult::kRebuilt)
        rebuilds_.fetch_add(1);
    }
    lock.lock();
  }
}

}  // namespace hope::dynamic
