#include "dynamic/background_rebuilder.h"

#include "dynamic/sharded_manager.h"

namespace hope::dynamic {

namespace {

std::vector<DictionaryManager*> AllShards(ShardedDictionaryManager* sharded) {
  std::vector<DictionaryManager*> managers;
  managers.reserve(sharded->num_shards());
  for (size_t i = 0; i < sharded->num_shards(); i++)
    managers.push_back(&sharded->shard(i));
  return managers;
}

}  // namespace

BackgroundRebuilder::BackgroundRebuilder(
    std::vector<DictionaryManager*> managers,
    std::vector<ShardedDictionaryManager*> sharded, Options options)
    : managers_(std::move(managers)),
      sharded_(std::move(sharded)),
      options_(options),
      worker_([this] { Loop(); }) {}

BackgroundRebuilder::BackgroundRebuilder(
    std::vector<DictionaryManager*> managers, Options options)
    : BackgroundRebuilder(std::move(managers), {}, options) {}

BackgroundRebuilder::BackgroundRebuilder(ShardedDictionaryManager* sharded,
                                         Options options)
    : BackgroundRebuilder(AllShards(sharded), {sharded}, options) {}

BackgroundRebuilder::~BackgroundRebuilder() { Stop(); }

void BackgroundRebuilder::Nudge() {
  {
    MutexLock lock(mu_);
    nudged_ = true;
  }
  cv_.notify_one();
}

void BackgroundRebuilder::Stop() {
  {
    MutexLock lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  stop_requested_.store(true, std::memory_order_relaxed);
  cv_.notify_one();
  if (worker_.joinable()) worker_.join();
}

void BackgroundRebuilder::Loop() {
  UniqueLock lock(mu_);
  while (!stop_) {
    // Explicit wait loop (not cv_.wait_for with a predicate lambda):
    // the analysis checks lambda bodies with an empty lock set, so a
    // predicate reading stop_/nudged_ would be flagged even though the
    // cv holds mu_ whenever it runs. Semantics are identical — wait out
    // at most one poll interval, waking early on stop or nudge.
    const auto deadline =
        std::chrono::steady_clock::now() + options_.poll_interval;
    while (!stop_ && !nudged_) {
      if (cv_.wait_until(lock.native(), deadline) ==
          std::cv_status::timeout)
        break;
    }
    if (stop_) break;
    nudged_ = false;
    // Run the cycle unlocked so Nudge()/Stop() never wait on a build.
    lock.Unlock();
    cycles_.fetch_add(1);
    // Rebalance rides the same loop: traffic weights fold in once per
    // cycle and the router re-derives when the policy trips. It runs
    // BEFORE the rebuild sweep: a quiet rebalance poll costs
    // microseconds while one drifted shard's rebuild can take seconds,
    // and ordering the cheap step first bounds router staleness by the
    // poll interval instead of by the slowest dictionary build.
    for (ShardedDictionaryManager* sharded : sharded_) {
      if (stop_requested_.load(std::memory_order_relaxed)) break;
      if (sharded->PollRebalance()) rebalances_.fetch_add(1);
    }
    // RebuildNow re-checks each policy under the manager's own mutex (the
    // authoritative, race-free evaluation), so no pre-check here. Shards
    // whose policy is quiet return kNotTriggered in microseconds, so one
    // drifted shard never starves the others of polling. The stop flag is
    // re-checked between managers: with many shards (or a shard mid-
    // build) Stop() waits for at most one manager's step, not the sweep.
    for (DictionaryManager* manager : managers_) {
      if (stop_requested_.load(std::memory_order_relaxed)) break;
      if (manager->RebuildNow() == DictionaryManager::RebuildResult::kRebuilt)
        rebuilds_.fetch_add(1);
    }
    // Epoch reclamation rides it too: retired versions age out only when
    // the epoch advances, and publishes are the only other advance site,
    // so an idle manager would otherwise park its limbo list until the
    // next publish. One TryReclaim per reclaimer per cycle keeps the
    // live-garbage bound flat regardless of publish cadence. (This is
    // also where the worker thread's epoch slot gets registered, on its
    // first guard-free scan — TryReclaim never pins, so the worker can
    // never hold the epoch back.)
    if (!stop_requested_.load(std::memory_order_relaxed)) {
      for (DictionaryManager* manager : managers_)
        reclaims_.fetch_add(manager->reclaimer().TryReclaim());
      for (ShardedDictionaryManager* sharded : sharded_)
        reclaims_.fetch_add(sharded->reclaimer().TryReclaim());
    }
    lock.Lock();
  }
}

void BackgroundRebuilder::AttachTelemetry(
    telemetry::MetricRegistry* registry) {
  if (registry == nullptr) return;
  using MK = telemetry::MetricKind;
  auto add = [&](const char* name, std::function<double()> read) {
    registrations_.push_back(
        registry->RegisterCallback(name, {}, MK::kCounter, std::move(read)));
  };
  add("hope_rebuilder_cycles_total",
      [this] { return static_cast<double>(cycles()); });
  add("hope_rebuilder_rebuilds_total",
      [this] { return static_cast<double>(rebuilds_completed()); });
  add("hope_rebuilder_rebalances_total",
      [this] { return static_cast<double>(rebalances_completed()); });
  add("hope_rebuilder_reclaims_total",
      [this] { return static_cast<double>(versions_reclaimed()); });
}

}  // namespace hope::dynamic
