// ShardedVersionedIndex<Tree>: the index counterpart of the
// ShardedDictionaryManager. One VersionedIndex per shard; inserts,
// lookups and erases route through the RouterVersion to the shard that
// owns the key's range, so a dictionary swap in shard i only opens a new
// generation in shard i's index — the other shards keep serving out of
// their single generation with no migration work.
//
// Range scans come back cheaply because the router's boundaries are
// ranges over the *original* key order: shard i's keys all precede shard
// i+1's keys, and within a shard HOPE encodings preserve order. Scan()
// therefore drains each touched shard to a single generation (scans only
// make sense within one generation's encoding) and walks shards in
// boundary order.
//
// Re-balancing: the index pins its own RouterVersion snapshot and keeps
// routing through it — staying correct — while the manager publishes new
// versions underneath. SyncRouter() (run automatically at the top of
// every mutating/reading call) catches the index up one plan at a time:
// ApplyRebalance() extracts each moved range from its old owner in key
// order and re-inserts it into the new owner, where the keys are
// re-encoded under that shard's dictionary. The cross-shard Scan
// ordering invariant (shard i's keys precede shard i+1's) holds before
// and after every applied plan because the migration physically moves
// exactly the keys whose owner changed.
//
// The index registers with the manager (RegisterIndex) so the plan
// history it still needs is never pruned, and reports each applied plan
// (UpdateIndexVersion) so history it no longer needs can be. If
// PlansSince ever reports a pruned gap anyway (possible only for
// consumers that bypass registration), Resync() rebuilds routing from
// scratch instead of silently replaying from the gap.
//
// Single-writer like VersionedIndex: one thread mutates the index while
// the shard managers swap dictionaries (and the router) underneath it.
//
// Tree must provide: Insert(string_view, uint64_t),
// Lookup(string_view, uint64_t*) const, Erase(string_view), size(), and
// for Scan(): Scan(string_view start, size_t count, vector<uint64_t>*).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dynamic/sharded_manager.h"
#include "dynamic/versioned_index.h"

namespace hope::dynamic {

template <typename Tree>
class ShardedVersionedIndex {
 public:
  /// `manager` must outlive the index. Adopts every shard's current epoch
  /// and the manager's current router version, and registers as a plan
  /// consumer so the history between that version and the manager's is
  /// retained until applied here.
  explicit ShardedVersionedIndex(ShardedDictionaryManager* manager)
      : manager_(manager) {
    auto reg = manager->RegisterIndex();
    registration_id_ = reg.id;
    router_ = std::move(reg.router);
    shards_.reserve(manager->num_shards());
    for (size_t i = 0; i < manager->num_shards(); i++)
      shards_.push_back(
          std::make_unique<VersionedIndex<Tree>>(&manager->shard(i)));
  }

  ~ShardedVersionedIndex() { manager_->DeregisterIndex(registration_id_); }

  ShardedVersionedIndex(const ShardedVersionedIndex&) = delete;
  ShardedVersionedIndex& operator=(const ShardedVersionedIndex&) = delete;

  void Insert(const std::string& key, uint64_t value) {
    SyncRouter();
    ShardFor(key).Insert(key, value);
  }

  bool Lookup(const std::string& key, uint64_t* value) {
    SyncRouter();
    return ShardFor(key).Lookup(key, value);
  }

  bool Erase(const std::string& key) {
    SyncRouter();
    return ShardFor(key).Erase(key);
  }

  /// Drains every shard's old generations. Returns total entries moved;
  /// afterwards every shard has a single generation.
  size_t MigrateAll() {
    SyncRouter();
    size_t moved = 0;
    for (auto& shard : shards_) moved += shard->MigrateAll();
    return moved;
  }

  /// Scans up to `count` entries from the first key >= start, in global
  /// key order, across shard boundaries. Touched shards are drained to a
  /// single generation first (the per-shard equivalent of calling
  /// MigrateAll() before tree() scans). Returns entries produced.
  size_t Scan(const std::string& start, size_t count,
              std::vector<uint64_t>* out) {
    SyncRouter();
    size_t produced = 0;
    const size_t first = router_->Route(start);
    for (size_t s = first; s < shards_.size() && produced < count; s++) {
      VersionedIndex<Tree>& shard = *shards_[s];
      shard.MigrateAll();
      // The start bound only constrains the first shard: every later
      // shard's range lies entirely above it. Encodings preserve order
      // within a shard, so the encoded bound scans correctly.
      std::string enc = s == first ? shard.snapshot().hope->Encode(start)
                                   : std::string();
      produced += shard.tree().Scan(enc, count - produced, out);
    }
    return produced;
  }

  /// Applies every rebalance plan the manager published since this
  /// index's router version, in order. Returns entries migrated between
  /// shards. Called automatically by Insert/Lookup/Erase/Scan/
  /// MigrateAll; explicit calls just apply pending plans eagerly.
  size_t SyncRouter() {
    if (router_->version() == manager_->router_version()) return 0;
    auto plans = manager_->PlansSince(router_->version());
    // Registration makes a pruned gap unreachable on this path, but the
    // contract is explicit: nullopt means the incremental history is
    // gone, and the only correct recovery is a full re-route.
    if (!plans) return Resync();
    size_t moved = 0;
    for (const auto& plan : *plans) moved += ApplyRebalance(*plan);
    return moved;
  }

  /// Full catch-up without plan history: drains every shard, extracts
  /// all entries, and re-inserts each through the manager's current
  /// router. O(total entries) — the incremental plan replay is the fast
  /// path; this is the recovery path for a pruned history gap.
  size_t Resync() {
    std::shared_ptr<const RouterVersion> target = manager_->router();
    size_t moved = 0;
    // Two phases — extract everything, then insert: an entry moving to
    // a not-yet-drained shard would otherwise be extracted and
    // re-encoded a second time when the loop reached its destination.
    std::vector<std::vector<std::pair<std::string, uint64_t>>> rebinned(
        shards_.size());
    std::vector<std::pair<std::string, uint64_t>> entries;
    for (size_t s = 0; s < shards_.size(); s++) {
      entries.clear();
      // "" is <= every key, so the unbounded extract empties the shard.
      shards_[s]->ExtractRange(std::string(), nullptr, &entries);
      for (auto& [key, value] : entries) {
        size_t owner = target->Route(key);
        if (owner != s) moved++;
        rebinned[owner].emplace_back(std::move(key), value);
      }
    }
    for (size_t s = 0; s < shards_.size(); s++)
      for (auto& [key, value] : rebinned[s])
        shards_[s]->InsertMigrated(key, value);
    router_ = std::move(target);
    manager_->UpdateIndexVersion(registration_id_, router_->version());
    resyncs_++;
    entries_rebalanced_ += moved;
    return moved;
  }

  /// Applies one plan: for each moved range, extracts the live entries
  /// from the old owner (ordered by original key) and re-inserts them
  /// into the new owner, re-encoding under that shard's current
  /// dictionary. The plan must take the index's current router version
  /// to its successor (SyncRouter feeds plans sequentially); other plans
  /// are ignored. Returns entries migrated.
  size_t ApplyRebalance(const RebalancePlan& plan) {
    if (!plan.to || !plan.from ||
        plan.from->version() != router_->version())
      return 0;
    size_t moved = 0;
    std::vector<std::pair<std::string, uint64_t>> entries;
    for (const RebalancePlan::Move& mv : plan.moves) {
      entries.clear();
      shards_[mv.from_shard]->ExtractRange(
          mv.begin, mv.bounded ? &mv.end : nullptr, &entries);
      // InsertMigrated, not Insert: migration re-encodes are maintenance,
      // and must not feed the destination's collector as fake traffic.
      for (auto& [key, value] : entries)
        shards_[mv.to_shard]->InsertMigrated(key, value);
      moved += entries.size();
    }
    router_ = plan.to;
    plans_applied_++;
    entries_rebalanced_ += moved;
    // Release the pin on the plan just applied so the manager can prune
    // it once every other registered index has also advanced past it.
    manager_->UpdateIndexVersion(registration_id_, router_->version());
    return moved;
  }

  /// Lifetime counters: plans applied and entries moved between shards
  /// by ApplyRebalance (not generation drains within a shard).
  uint64_t plans_applied() const { return plans_applied_; }
  uint64_t entries_rebalanced() const { return entries_rebalanced_; }
  /// Full re-routes taken because the plan history was pruned.
  uint64_t resyncs() const { return resyncs_; }

  /// The router version this index currently routes through (trails the
  /// manager's until the next SyncRouter()).
  uint64_t router_version() const { return router_->version(); }

  size_t size() const {
    size_t n = 0;
    for (const auto& shard : shards_) n += shard->size();
    return n;
  }

  size_t num_shards() const { return shards_.size(); }
  VersionedIndex<Tree>& shard(size_t i) { return *shards_[i]; }
  const VersionedIndex<Tree>& shard(size_t i) const { return *shards_[i]; }

  /// Sum of per-shard generation counts (== num_shards() when fully
  /// migrated everywhere).
  size_t TotalGenerations() const {
    size_t n = 0;
    for (const auto& shard : shards_) n += shard->NumGenerations();
    return n;
  }

 private:
  VersionedIndex<Tree>& ShardFor(const std::string& key) {
    return *shards_[router_->Route(key)];
  }

  ShardedDictionaryManager* manager_;
  std::shared_ptr<const RouterVersion> router_;  ///< the index's snapshot
  uint64_t registration_id_ = 0;  ///< plan-history pin (RegisterIndex)
  std::vector<std::unique_ptr<VersionedIndex<Tree>>> shards_;
  uint64_t plans_applied_ = 0;
  uint64_t entries_rebalanced_ = 0;
  uint64_t resyncs_ = 0;
};

}  // namespace hope::dynamic
