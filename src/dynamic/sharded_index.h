// ShardedVersionedIndex<Tree>: the index counterpart of the
// ShardedDictionaryManager. One VersionedIndex per shard; inserts,
// lookups and erases route through the ShardRouter to the shard that
// owns the key's range, so a dictionary swap in shard i only opens a new
// generation in shard i's index — the other shards keep serving out of
// their single generation with no migration work.
//
// Range scans come back cheaply because the router's boundaries are
// ranges over the *original* key order: shard i's keys all precede shard
// i+1's keys, and within a shard HOPE encodings preserve order. Scan()
// therefore drains each touched shard to a single generation (scans only
// make sense within one generation's encoding) and walks shards in
// boundary order.
//
// Single-writer like VersionedIndex: one thread mutates the index while
// the shard managers swap dictionaries underneath it.
//
// Tree must provide: Insert(string_view, uint64_t),
// Lookup(string_view, uint64_t*) const, Erase(string_view), size(), and
// for Scan(): Scan(string_view start, size_t count, vector<uint64_t>*).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dynamic/sharded_manager.h"
#include "dynamic/versioned_index.h"

namespace hope::dynamic {

template <typename Tree>
class ShardedVersionedIndex {
 public:
  /// `manager` must outlive the index. Adopts every shard's current epoch.
  explicit ShardedVersionedIndex(ShardedDictionaryManager* manager)
      : manager_(manager) {
    shards_.reserve(manager->num_shards());
    for (size_t i = 0; i < manager->num_shards(); i++)
      shards_.push_back(
          std::make_unique<VersionedIndex<Tree>>(&manager->shard(i)));
  }

  void Insert(const std::string& key, uint64_t value) {
    ShardFor(key).Insert(key, value);
  }

  bool Lookup(const std::string& key, uint64_t* value) {
    return ShardFor(key).Lookup(key, value);
  }

  bool Erase(const std::string& key) { return ShardFor(key).Erase(key); }

  /// Drains every shard's old generations. Returns total entries moved;
  /// afterwards every shard has a single generation.
  size_t MigrateAll() {
    size_t moved = 0;
    for (auto& shard : shards_) moved += shard->MigrateAll();
    return moved;
  }

  /// Scans up to `count` entries from the first key >= start, in global
  /// key order, across shard boundaries. Touched shards are drained to a
  /// single generation first (the per-shard equivalent of calling
  /// MigrateAll() before tree() scans). Returns entries produced.
  size_t Scan(const std::string& start, size_t count,
              std::vector<uint64_t>* out) {
    size_t produced = 0;
    const size_t first = manager_->Route(start);
    for (size_t s = first; s < shards_.size() && produced < count; s++) {
      VersionedIndex<Tree>& shard = *shards_[s];
      shard.MigrateAll();
      // The start bound only constrains the first shard: every later
      // shard's range lies entirely above it. Encodings preserve order
      // within a shard, so the encoded bound scans correctly.
      std::string enc = s == first ? shard.snapshot().hope->Encode(start)
                                   : std::string();
      produced += shard.tree().Scan(enc, count - produced, out);
    }
    return produced;
  }

  size_t size() const {
    size_t n = 0;
    for (const auto& shard : shards_) n += shard->size();
    return n;
  }

  size_t num_shards() const { return shards_.size(); }
  VersionedIndex<Tree>& shard(size_t i) { return *shards_[i]; }
  const VersionedIndex<Tree>& shard(size_t i) const { return *shards_[i]; }

  /// Sum of per-shard generation counts (== num_shards() when fully
  /// migrated everywhere).
  size_t TotalGenerations() const {
    size_t n = 0;
    for (const auto& shard : shards_) n += shard->NumGenerations();
    return n;
  }

 private:
  VersionedIndex<Tree>& ShardFor(const std::string& key) {
    return *shards_[manager_->Route(key)];
  }

  ShardedDictionaryManager* manager_;
  std::vector<std::unique_ptr<VersionedIndex<Tree>>> shards_;
};

}  // namespace hope::dynamic
