#include "dynamic/sharded_manager.h"

#include <stdexcept>
#include <utility>

namespace hope::dynamic {

ShardRouter::ShardRouter(std::vector<std::string> sample, size_t num_shards) {
  if (num_shards < 1) num_shards = 1;
  if (sample.empty() || num_shards == 1) return;
  std::sort(sample.begin(), sample.end());
  boundaries_.reserve(num_shards - 1);
  for (size_t i = 1; i < num_shards; i++) {
    // Equal-weight quantiles over the sorted sample (duplicates keep
    // their weight, so a hot key pulls boundaries toward itself).
    const std::string& b = sample[i * sample.size() / num_shards];
    // Strictly increasing boundaries only: equal quantile keys collapse
    // into one range, and a boundary at the sample minimum would leave
    // shard 0 empty over the sample.
    if ((boundaries_.empty() && b > sample.front()) ||
        (!boundaries_.empty() && b > boundaries_.back()))
      boundaries_.push_back(b);
  }
}

ShardedDictionaryManager::ShardedDictionaryManager(
    const std::vector<std::string>& sample, Options options,
    PolicyFactory policy_factory)
    : router_(sample, options.num_shards) {
  if (sample.empty())
    throw std::invalid_argument("sharded manager needs a non-empty sample");

  std::vector<std::vector<std::string>> partitions(router_.num_shards());
  for (const std::string& key : sample)
    partitions[router_.Route(key)].push_back(key);

  shards_.reserve(router_.num_shards());
  for (auto& partition : partitions) {
    // Tiny partitions (skewed samples, collapsed boundaries) train on the
    // whole sample so every shard starts with a usable dictionary; the
    // shard's baseline CPR still comes from its own keys.
    const std::vector<std::string>& corpus =
        partition.size() >= options.min_shard_sample ? partition : sample;
    auto initial = Hope::Build(options.shard.scheme, corpus,
                               options.shard.dict_size_limit);
    const std::vector<std::string>& baseline =
        partition.empty() ? sample : partition;
    shards_.push_back(std::make_unique<DictionaryManager>(
        std::move(initial), options.shard,
        policy_factory ? policy_factory() : MakeNeverPolicy(), baseline));
  }
}

std::vector<uint64_t> ShardedDictionaryManager::Epochs() const {
  std::vector<uint64_t> epochs;
  epochs.reserve(shards_.size());
  for (const auto& shard : shards_) epochs.push_back(shard->epoch());
  return epochs;
}

bool ShardedDictionaryManager::ShouldRebuild() const {
  for (const auto& shard : shards_)
    if (shard->ShouldRebuild()) return true;
  return false;
}

size_t ShardedDictionaryManager::RebuildPending() {
  size_t published = 0;
  for (auto& shard : shards_)
    if (shard->RebuildNow() == DictionaryManager::RebuildResult::kRebuilt)
      published++;
  return published;
}

uint64_t ShardedDictionaryManager::rebuilds_published() const {
  uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->rebuilds_published();
  return n;
}

uint64_t ShardedDictionaryManager::rebuilds_rejected() const {
  uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->rebuilds_rejected();
  return n;
}

}  // namespace hope::dynamic
