#include "dynamic/sharded_manager.h"

#include <stdexcept>
#include <utility>

#include "telemetry/trace_log.h"

namespace hope::dynamic {

RouterVersion::RouterVersion(std::vector<std::string> sample,
                             size_t num_shards) {
  if (num_shards < 1) num_shards = 1;
  if (sample.empty() || num_shards == 1) return;
  std::sort(sample.begin(), sample.end());
  boundaries_.reserve(num_shards - 1);
  for (size_t i = 1; i < num_shards; i++) {
    // Equal-weight quantiles over the sorted sample (duplicates keep
    // their weight, so a hot key pulls boundaries toward itself).
    const std::string& b = sample[i * sample.size() / num_shards];
    // Strictly increasing boundaries only: equal quantile keys collapse
    // into one range, and a boundary at the sample minimum would leave
    // shard 0 empty over the sample.
    if ((boundaries_.empty() && b > sample.front()) ||
        (!boundaries_.empty() && b > boundaries_.back()))
      boundaries_.push_back(b);
  }
}

std::vector<std::string> DeriveWeightedBoundaries(
    std::vector<std::pair<std::string, double>> weighted, size_t num_ranges) {
  if (num_ranges < 2 || weighted.empty()) return {};
  std::sort(weighted.begin(), weighted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // Merge duplicate keys so one hot key is a single cut candidate whose
  // weight is its full traffic share.
  size_t w = 0;
  for (size_t r = 1; r < weighted.size(); r++) {
    if (weighted[r].first == weighted[w].first) {
      weighted[w].second += weighted[r].second;
    } else if (++w != r) {  // guard the self-move when nothing merged yet
      weighted[w] = std::move(weighted[r]);
    }
  }
  weighted.resize(w + 1);

  double total = 0;
  for (const auto& [key, weight] : weighted) total += weight;
  if (!(total > 0)) return {};

  std::vector<std::string> boundaries;
  boundaries.reserve(num_ranges - 1);
  size_t j = 0;
  double cum = weighted[0].second;
  for (size_t i = 1; i < num_ranges; i++) {
    double target = static_cast<double>(i) * total /
                    static_cast<double>(num_ranges);
    // The boundary is the first key whose cumulative weight strictly
    // exceeds the target (matches the unweighted quantile rule: uniform
    // weights reproduce sample[i * n / N]).
    while (j + 1 < weighted.size() && cum <= target)
      cum += weighted[++j].second;
    const std::string& b = weighted[j].first;
    if ((boundaries.empty() && b > weighted.front().first) ||
        (!boundaries.empty() && b > boundaries.back()))
      boundaries.push_back(b);
  }
  return boundaries;
}

RebalancePlan DiffRouters(std::shared_ptr<const RouterVersion> from,
                          std::shared_ptr<const RouterVersion> to) {
  RebalancePlan plan;
  plan.from = from;
  plan.to = to;

  // Elementary intervals between consecutive merged boundaries: within
  // each, ownership is constant under both routers, so routing the
  // interval's first key decides the whole interval.
  std::vector<std::string> cuts;
  cuts.reserve(from->boundaries().size() + to->boundaries().size());
  std::merge(from->boundaries().begin(), from->boundaries().end(),
             to->boundaries().begin(), to->boundaries().end(),
             std::back_inserter(cuts));
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  // Crossing a cut always changes at least one router's owner (every cut
  // is a boundary of one of them), so each changed interval is its own
  // move — no two adjacent intervals share a from->to mapping.
  auto add = [&](const std::string& begin, const std::string* end) {
    size_t f = from->Route(begin);
    size_t t = to->Route(begin);
    if (f == t) return;
    plan.moves.push_back(
        {f, t, begin, end ? *end : std::string(), end != nullptr});
  };

  std::string prev;  // "" is below every boundary: the global minimum
  for (const std::string& cut : cuts) {
    add(prev, &cut);
    prev = cut;
  }
  add(prev, nullptr);
  return plan;
}

ShardedDictionaryManager::ShardedDictionaryManager(
    const std::vector<std::string>& sample, Options options,
    PolicyFactory policy_factory,
    std::unique_ptr<RebalancePolicy> rebalance_policy)
    : options_([&] {
        Options o = options;
        o.traffic_ewma_alpha = std::clamp(o.traffic_ewma_alpha, 1e-6, 1.0);
        o.min_rebalance_corpus = std::max<size_t>(o.min_rebalance_corpus, 2);
        return o;
      }()),
      rebalance_policy_(std::move(rebalance_policy)),
      last_rebalance_(std::chrono::steady_clock::now()) {
  if (sample.empty())
    throw std::invalid_argument("sharded manager needs a non-empty sample");

  current_router_ =
      std::make_shared<const RouterVersion>(sample, options_.num_shards);
  router_ptr_.store(current_router_.get(), std::memory_order_seq_cst);

  const std::shared_ptr<const RouterVersion>& router = current_router_;
  std::vector<std::vector<std::string>> partitions(router->num_ranges());
  for (const std::string& key : sample)
    partitions[router->Route(key)].push_back(key);

  shards_.reserve(router->num_ranges());
  for (auto& partition : partitions) {
    // Tiny partitions (skewed samples, collapsed boundaries) train on the
    // whole sample so every shard starts with a usable dictionary; the
    // shard's baseline CPR still comes from its own keys.
    const std::vector<std::string>& corpus =
        partition.size() >= options_.min_shard_sample ? partition : sample;
    auto initial = Hope::Build(options_.shard.scheme, corpus,
                               options_.shard.dict_size_limit);
    const std::vector<std::string>& baseline =
        partition.empty() ? sample : partition;
    shards_.push_back(std::make_unique<DictionaryManager>(
        std::move(initial), options_.shard,
        policy_factory ? policy_factory() : MakeNeverPolicy(), baseline));
  }
  weights_.assign(shards_.size(), 1.0 / static_cast<double>(shards_.size()));
  last_observed_.assign(shards_.size(), 0);
}

ShardedDictionaryManager::~ShardedDictionaryManager() {
  // Hand the manager's reference on the final router to the reclaimer
  // and wait out the grace period. Same teardown contract as
  // ~DictionaryManager: a reader pinned before this retire runs blocks
  // the free until its guard exits (the raw pointer stays published so
  // such a reader still finds a valid version), while a Route() that
  // BEGINS after destruction has started is a use of a dying object and
  // undefined regardless. Index snapshots holding the version keep it
  // alive past the drain.
  {
    MutexLock lock(rebalance_mu_);
    reclaimer_.Retire(
        [keep = std::move(current_router_)]() mutable { keep.reset(); });
  }
  reclaimer_.Drain();
}

std::vector<uint64_t> ShardedDictionaryManager::Epochs() const {
  std::vector<uint64_t> epochs;
  epochs.reserve(shards_.size());
  for (const auto& shard : shards_) epochs.push_back(shard->epoch());
  return epochs;
}

bool ShardedDictionaryManager::ShouldRebuild() const {
  for (const auto& shard : shards_)
    if (shard->ShouldRebuild()) return true;
  return false;
}

size_t ShardedDictionaryManager::RebuildPending() {
  size_t published = 0;
  for (auto& shard : shards_)
    if (shard->RebuildNow() == DictionaryManager::RebuildResult::kRebuilt)
      published++;
  return published;
}

void ShardedDictionaryManager::UpdateTrafficWeights() {
  MutexLock lock(rebalance_mu_);
  std::vector<uint64_t> deltas(shards_.size());
  uint64_t total = 0;
  for (size_t s = 0; s < shards_.size(); s++) {
    uint64_t observed = shards_[s]->stats().KeysObserved();
    deltas[s] = observed - last_observed_[s];
    last_observed_[s] = observed;
    total += deltas[s];
  }
  // No traffic since the last poll: keep the weights (folding in a 0/0
  // share would invent data).
  if (total == 0) return;
  for (size_t s = 0; s < shards_.size(); s++) {
    double share =
        static_cast<double>(deltas[s]) / static_cast<double>(total);
    weights_[s] += options_.traffic_ewma_alpha * (share - weights_[s]);
  }
}

std::vector<double> ShardedDictionaryManager::TrafficWeights() const {
  MutexLock lock(rebalance_mu_);
  return weights_;
}

double ShardedDictionaryManager::WeightImbalanceLocked() const {
  double sum = 0, max = 0;
  for (double w : weights_) {
    sum += w;
    max = std::max(max, w);
  }
  if (!(sum > 0)) return 1.0;
  return max / (sum / static_cast<double>(weights_.size()));
}

double ShardedDictionaryManager::WeightImbalance() const {
  MutexLock lock(rebalance_mu_);
  return WeightImbalanceLocked();
}

std::shared_ptr<const RebalancePlan>
ShardedDictionaryManager::PollRebalance() {
  UpdateTrafficWeights();
  MutexLock lock(rebalance_mu_);
  if (!rebalance_policy_) return nullptr;

  RebalanceSignals signals;
  signals.weights = weights_;
  signals.max_over_mean = WeightImbalanceLocked();
  uint64_t observed_total = 0;
  for (uint64_t o : last_observed_) observed_total += o;
  signals.keys_since_rebalance = observed_total - observed_at_rebalance_;
  signals.seconds_since_rebalance =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    last_rebalance_)
          .count();
  signals.router_version = current_router_->version();

  if (!rebalance_policy_->ShouldRebalance(signals)) return nullptr;
  return RebalanceLocked();
}

std::shared_ptr<const RebalancePlan> ShardedDictionaryManager::RebalanceNow(
    bool force) {
  if (!force) return PollRebalance();
  // Fold in the latest traffic before deriving: a forced rebalance with
  // stale weights would underweight the hot shard's reservoir.
  UpdateTrafficWeights();
  MutexLock lock(rebalance_mu_);
  return RebalanceLocked();
}

std::shared_ptr<const RebalancePlan>
ShardedDictionaryManager::RebalanceLocked() {
  std::shared_ptr<const RouterVersion> current = current_router_;

  // The rebalance corpus is the union of the per-shard reservoirs, each
  // shard's keys weighted by its traffic share: a reservoir holds a
  // fixed-size sample of its shard's stream, so per-key weight w_s/|R_s|
  // makes the union reflect traffic, not reservoir capacity.
  std::vector<std::pair<std::string, double>> weighted;
  for (size_t s = 0; s < shards_.size(); s++) {
    std::vector<std::string> reservoir =
        shards_[s]->stats().ReservoirSnapshot();
    if (reservoir.empty()) continue;
    double per_key = std::max(weights_[s], 1e-6) /
                     static_cast<double>(reservoir.size());
    for (std::string& key : reservoir)
      weighted.emplace_back(std::move(key), per_key);
  }
  if (weighted.size() < options_.min_rebalance_corpus) {
    rebalance_noops_.fetch_add(1);
    return nullptr;
  }

  // Keep the plain keys: the retrain step partitions them by the new
  // boundaries (DeriveWeightedBoundaries consumes the pairs).
  std::vector<std::string> corpus;
  if (options_.retrain_moved_shards) {
    corpus.reserve(weighted.size());
    for (const auto& [key, weight] : weighted) corpus.push_back(key);
  }

  std::vector<std::string> boundaries =
      DeriveWeightedBoundaries(std::move(weighted), shards_.size());
  if (boundaries == current->boundaries()) {
    rebalance_noops_.fetch_add(1);
    return nullptr;
  }

  auto next = std::make_shared<const RouterVersion>(current->version() + 1,
                                                    std::move(boundaries));
  auto plan = std::make_shared<const RebalancePlan>(DiffRouters(current, next));

  // Retrain BEFORE publishing: the new version becomes visible (via the
  // wait-free router_version()) only once fully prepared, so an index
  // that sees it and calls PlansSince()/router() never waits out the
  // dictionary builds on rebalance_mu_. Shards whose range changed get a
  // dictionary trained on their new range's slice of the corpus;
  // everyone else keeps dictionary + epoch.
  if (options_.retrain_moved_shards && !plan->moves.empty()) {
    std::vector<bool> affected(shards_.size(), false);
    for (const RebalancePlan::Move& mv : plan->moves) {
      affected[mv.from_shard] = true;
      affected[mv.to_shard] = true;
    }
    std::vector<std::vector<std::string>> parts(shards_.size());
    for (std::string& key : corpus)
      parts[next->Route(key)].push_back(std::move(key));
    for (size_t s = 0; s < shards_.size(); s++) {
      if (!affected[s]) continue;
      if (parts[s].size() >= options_.min_shard_sample) {
        try {
          shards_[s]->Publish(Hope::Build(options_.shard.scheme, parts[s],
                                          options_.shard.dict_size_limit),
                              &parts[s]);
        } catch (const std::exception&) {
          // Keep the old dictionary; the shard's own rebuild policy will
          // adapt it once the migrated traffic arrives.
        }
      }
      // The corpus migrates with the routing: a moved shard's sampled
      // stream history describes keys it no longer owns, so its
      // reservoir restarts from the new range's slice (possibly empty —
      // it refills as the migrated traffic arrives). Seed only a quarter
      // of the capacity: the slice is already one derivation old, and a
      // full-capacity seed would dominate the next derivation too —
      // back-to-back rebalances would then feed on their own output
      // instead of fresh traffic.
      size_t seed_cap = std::max<size_t>(
          1, shards_[s]->stats().reservoir_capacity() / 4);
      if (parts[s].size() > seed_cap) parts[s].resize(seed_cap);
      shards_[s]->stats().SeedReservoir(std::move(parts[s]));
    }
  }

  plans_.push_back(plan);
  current_router_ = next;
  router_ptr_.store(next.get(), std::memory_order_seq_cst);
  // Swap first, retire second: the manager's reference on the
  // superseded version is released only after every reader pinned at or
  // before the swap exits. The plan's from/to handles (and any index
  // snapshot) keep the pointee alive beyond the grace period for
  // shared_ptr holders, who need no guard.
  reclaimer_.Retire([keep = std::move(current)]() mutable { keep.reset(); });
  rebalances_.fetch_add(1);
  if (telemetry::TraceLog* t = trace_.load(std::memory_order_relaxed))
    t->Record(telemetry::TraceEventType::kRebalancePublish, -1,
              next->version(), plan->moves.size());
  PrunePlansLocked();

  // Reset the hysteresis baseline: the new boundaries equalize expected
  // load, so the skew EWMA starts over from balanced (keeping the old
  // weights would immediately re-trigger the policy on stale skew).
  weights_.assign(shards_.size(), 1.0 / static_cast<double>(shards_.size()));
  uint64_t observed_total = 0;
  for (size_t s = 0; s < shards_.size(); s++) {
    last_observed_[s] = shards_[s]->stats().KeysObserved();
    observed_total += last_observed_[s];
  }
  observed_at_rebalance_ = observed_total;
  last_rebalance_ = std::chrono::steady_clock::now();
  return plan;
}

std::optional<std::vector<std::shared_ptr<const RebalancePlan>>>
ShardedDictionaryManager::PlansSince(uint64_t since_version) const {
  MutexLock lock(rebalance_mu_);
  // plans_[k] takes router version plans_base_ + k to plans_base_ + k+1.
  if (since_version < plans_base_) return std::nullopt;  // pruned gap
  size_t offset = static_cast<size_t>(since_version - plans_base_);
  if (offset >= plans_.size())
    return std::vector<std::shared_ptr<const RebalancePlan>>{};
  return std::vector<std::shared_ptr<const RebalancePlan>>(
      plans_.begin() + static_cast<long>(offset), plans_.end());
}

ShardedDictionaryManager::IndexRegistration
ShardedDictionaryManager::RegisterIndex() {
  MutexLock lock(rebalance_mu_);
  // Pin and snapshot under one lock hold: a rebalance publishing between
  // the two could otherwise prune the very plan the new index needs
  // first.
  IndexRegistration reg;
  reg.id = next_index_id_++;
  reg.router = current_router_;
  index_versions_.emplace(reg.id, reg.router->version());
  return reg;
}

void ShardedDictionaryManager::UpdateIndexVersion(uint64_t id,
                                                  uint64_t version) {
  MutexLock lock(rebalance_mu_);
  auto it = index_versions_.find(id);
  if (it == index_versions_.end()) return;
  it->second = std::max(it->second, version);
  PrunePlansLocked();
}

void ShardedDictionaryManager::DeregisterIndex(uint64_t id) {
  MutexLock lock(rebalance_mu_);
  if (index_versions_.erase(id) == 0) return;
  PrunePlansLocked();
}

void ShardedDictionaryManager::PrunePlansLocked() {
  uint64_t min_pinned = current_router_->version();
  for (const auto& [id, version] : index_versions_)
    min_pinned = std::min(min_pinned, version);
  if (min_pinned <= plans_base_) return;
  size_t drop = std::min(static_cast<size_t>(min_pinned - plans_base_),
                         plans_.size());
  // Dropping a plan releases its from/to RouterVersion references
  // directly — plans are only ever reached through shared_ptr, never
  // through the guarded raw pointer, so no grace period is needed here.
  // The superseded RouterVersion's raw-reader grace is handled by the
  // Retire at publish time.
  plans_.erase(plans_.begin(), plans_.begin() + static_cast<long>(drop));
  plans_base_ += drop;
  plans_pruned_.fetch_add(drop);
}

uint64_t ShardedDictionaryManager::rebuilds_published() const {
  uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->rebuilds_published();
  return n;
}

uint64_t ShardedDictionaryManager::rebuilds_rejected() const {
  uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->rebuilds_rejected();
  return n;
}

void ShardedDictionaryManager::AttachTelemetry(
    telemetry::MetricRegistry* registry, telemetry::TraceLog* trace) {
  trace_.store(trace, std::memory_order_relaxed);
  reclaimer_.SetTraceLog(trace);
  for (size_t s = 0; s < shards_.size(); s++)
    shards_[s]->AttachTelemetry(registry, trace, static_cast<int>(s));
  if (registry == nullptr) return;
  using MK = telemetry::MetricKind;
  auto add = [&](const char* name, MK kind, std::function<double()> read) {
    registrations_.push_back(
        registry->RegisterCallback(name, {}, kind, std::move(read)));
  };
  add("hope_rebalance_published_total", MK::kCounter,
      [this] { return static_cast<double>(rebalances_published()); });
  add("hope_rebalance_noop_total", MK::kCounter,
      [this] { return static_cast<double>(rebalances_noop()); });
  add("hope_rebalance_plans_pruned_total", MK::kCounter,
      [this] { return static_cast<double>(plans_pruned()); });
  // These take rebalance_mu_ at snapshot time; the registry is never
  // snapshotted with rebalance_mu_ held (see registry.h lock order).
  add("hope_rebalance_plans_retained", MK::kGauge,
      [this] { return static_cast<double>(plans_retained()); });
  add("hope_rebalance_weight_imbalance", MK::kGauge,
      [this] { return WeightImbalance(); });
  add("hope_router_version", MK::kGauge,
      [this] { return static_cast<double>(router_version()); });

  auto ebr_regs =
      reclaimer_.RegisterMetrics(registry, {{"scope", "router"}});
  for (auto& r : ebr_regs) registrations_.push_back(std::move(r));
}

}  // namespace hope::dynamic
