#include "dynamic/rebuild_policy.h"

#include <utility>

namespace hope::dynamic {

namespace {

// Factory-input clamps (see the factory docs in rebuild_policy.h): every
// policy brings a degenerate parameter to the nearest valid value, the
// way KeyCountPolicy has always clamped 0 -> 1. NaN fails every
// comparison, so the `!(x >= lo)` form catches it alongside underflow.
constexpr double kMaxDropFraction = 0.99;
constexpr double kMinPeriodSeconds = 0.001;

class CompressionDropPolicy final : public RebuildPolicy {
 public:
  CompressionDropPolicy(double drop_fraction, size_t min_fill)
      : drop_fraction_(!(drop_fraction >= 0) ? 0.0
                       : drop_fraction > kMaxDropFraction ? kMaxDropFraction
                                                          : drop_fraction),
        min_fill_(min_fill ? min_fill : 1) {}

  bool ShouldRebuild(const RebuildSignals& s) const override {
    if (s.reservoir_fill < min_fill_) return false;
    if (s.ewma_cpr <= 0 || s.baseline_cpr <= 0) return false;
    return s.ewma_cpr < s.baseline_cpr * (1.0 - drop_fraction_);
  }
  const char* Name() const override { return "compression-drop"; }

 private:
  double drop_fraction_;
  size_t min_fill_;
};

class KeyCountPolicy final : public RebuildPolicy {
 public:
  explicit KeyCountPolicy(uint64_t every_n) : every_n_(every_n ? every_n : 1) {}

  bool ShouldRebuild(const RebuildSignals& s) const override {
    return s.keys_since_rebuild >= every_n_;
  }
  const char* Name() const override { return "key-count"; }

 private:
  uint64_t every_n_;
};

class PeriodicPolicy final : public RebuildPolicy {
 public:
  explicit PeriodicPolicy(double every_seconds)
      : every_seconds_(!(every_seconds >= kMinPeriodSeconds)
                           ? kMinPeriodSeconds
                           : every_seconds) {}

  bool ShouldRebuild(const RebuildSignals& s) const override {
    return s.seconds_since_rebuild >= every_seconds_;
  }
  const char* Name() const override { return "periodic"; }

 private:
  double every_seconds_;
};

class AnyOfPolicy final : public RebuildPolicy {
 public:
  explicit AnyOfPolicy(std::vector<std::unique_ptr<RebuildPolicy>> children)
      : children_(std::move(children)) {}

  bool ShouldRebuild(const RebuildSignals& s) const override {
    for (const auto& c : children_)
      if (c->ShouldRebuild(s)) return true;
    return false;
  }
  const char* Name() const override { return "any-of"; }

 private:
  std::vector<std::unique_ptr<RebuildPolicy>> children_;
};

class NeverPolicy final : public RebuildPolicy {
 public:
  bool ShouldRebuild(const RebuildSignals&) const override { return false; }
  const char* Name() const override { return "never"; }
};

}  // namespace

std::unique_ptr<RebuildPolicy> MakeCompressionDropPolicy(
    double drop_fraction, size_t min_reservoir_fill) {
  return std::make_unique<CompressionDropPolicy>(drop_fraction,
                                                 min_reservoir_fill);
}

std::unique_ptr<RebuildPolicy> MakeKeyCountPolicy(uint64_t every_n_keys) {
  return std::make_unique<KeyCountPolicy>(every_n_keys);
}

std::unique_ptr<RebuildPolicy> MakePeriodicPolicy(double every_seconds) {
  return std::make_unique<PeriodicPolicy>(every_seconds);
}

std::unique_ptr<RebuildPolicy> MakeAnyOfPolicy(
    std::vector<std::unique_ptr<RebuildPolicy>> children) {
  return std::make_unique<AnyOfPolicy>(std::move(children));
}

std::unique_ptr<RebuildPolicy> MakeNeverPolicy() {
  return std::make_unique<NeverPolicy>();
}

}  // namespace hope::dynamic
