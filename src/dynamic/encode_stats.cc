#include "dynamic/encode_stats.h"

#include <algorithm>
#include <cmath>

namespace hope::dynamic {

EncodeStatsCollector::EncodeStatsCollector(Options options)
    : options_([&] {
        Options o = options;
        o.reservoir_size = std::max<size_t>(1, o.reservoir_size);
        o.sample_every = std::max<size_t>(1, o.sample_every);
        o.ewma_alpha = std::clamp(o.ewma_alpha, 1e-6, 1.0);
        if (std::isnan(o.reservoir_halflife) || o.reservoir_halflife < 0)
          o.reservoir_halflife = 0;
        return o;
      }()),
      rebuild_time_(std::chrono::steady_clock::now()) {
  {
    MutexLock lock(mu_);
    reservoir_.reserve(options_.reservoir_size);
  }
  if (options_.reservoir_halflife > 0) {
    // Each sample replaces a uniformly random slot with probability p, so
    // a resident key survives one sample with 1 - p/C; choose p so that
    // after H samples survival is 1/2: p = C * (1 - 2^(-1/H)), capped at
    // one replacement per sample.
    replace_prob_ = std::min(
        1.0, static_cast<double>(options_.reservoir_size) *
                 (1.0 - std::exp2(-1.0 / options_.reservoir_halflife)));
  }
}

void EncodeStatsCollector::OnEncode(std::string_view key, size_t bit_len) {
  uint64_t n = observed_.fetch_add(1, std::memory_order_relaxed);
  if (n % options_.sample_every != 0) return;

  double cpr = PerKeyCpr(key.size(), bit_len);

  MutexLock lock(mu_);
  sampled_++;
  if (ewma_seeded_) {
    ewma_cpr_ += options_.ewma_alpha * (cpr - ewma_cpr_);
  } else {
    ewma_cpr_ = cpr;
    ewma_seeded_ = true;
  }
  if (reservoir_.size() < options_.reservoir_size) {
    reservoir_.emplace_back(key);
  } else if (replace_prob_ > 0) {
    // Recency-biased mode: fixed replacement probability, so resident
    // keys decay exponentially with the configured half-life instead of
    // Algorithm R's 1/i slowdown.
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    if (coin(rng_) < replace_prob_) {
      std::uniform_int_distribution<uint64_t> slot(0, reservoir_.size() - 1);
      reservoir_[slot(rng_)].assign(key.data(), key.size());
    }
  } else {
    // Algorithm R: the i-th sampled key replaces a random slot with
    // probability capacity / i, keeping the reservoir uniform.
    std::uniform_int_distribution<uint64_t> slot(0, sampled_ - 1);
    uint64_t s = slot(rng_);
    if (s < reservoir_.size()) reservoir_[s].assign(key.data(), key.size());
  }
}

double EncodeStatsCollector::EwmaCompressionRate() const {
  MutexLock lock(mu_);
  return ewma_seeded_ ? ewma_cpr_ : 0.0;
}

uint64_t EncodeStatsCollector::KeysObserved() const {
  return observed_.load(std::memory_order_relaxed);
}

uint64_t EncodeStatsCollector::KeysSampled() const {
  MutexLock lock(mu_);
  return sampled_;
}

uint64_t EncodeStatsCollector::KeysSinceRebuild() const {
  MutexLock lock(mu_);
  return observed_.load(std::memory_order_relaxed) - keys_at_rebuild_;
}

double EncodeStatsCollector::SecondsSinceRebuild() const {
  MutexLock lock(mu_);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       rebuild_time_)
      .count();
}

size_t EncodeStatsCollector::ReservoirFill() const {
  MutexLock lock(mu_);
  return reservoir_.size();
}

std::vector<std::string> EncodeStatsCollector::ReservoirSnapshot() const {
  MutexLock lock(mu_);
  return reservoir_;
}

void EncodeStatsCollector::SeedReservoir(std::vector<std::string> keys) {
  MutexLock lock(mu_);
  if (keys.size() > options_.reservoir_size)
    keys.resize(options_.reservoir_size);
  reservoir_ = std::move(keys);
  // Restart the sampling stream at the seeded contents, exactly like the
  // post-swap restart in MarkRebuild.
  sampled_ = reservoir_.size();
}

void EncodeStatsCollector::MarkRebuild(double fresh_cpr) {
  MutexLock lock(mu_);
  ewma_cpr_ = fresh_cpr;
  ewma_seeded_ = fresh_cpr > 0;
  keys_at_rebuild_ = observed_.load(std::memory_order_relaxed);
  rebuild_time_ = std::chrono::steady_clock::now();
  // Restart the Algorithm-R stream at the current contents: without this,
  // replacement probability decays as capacity / lifetime-sampled and a
  // long-lived collector would stop tracking drift (new keys displace old
  // ones at full rate again after every swap).
  sampled_ = reservoir_.size();
}

}  // namespace hope::dynamic
