// Worker thread that keeps one or more DictionaryManagers fresh off the
// hot path: it periodically evaluates each manager's rebuild policy and,
// when staleness is detected, runs the (potentially expensive) build +
// validate + publish cycle so encoders never pay for it. A
// ShardedDictionaryManager hands all its shards to a single rebuilder,
// so N shards cost one polling thread, not N — and the same worker loop
// polls the sharded manager's rebalance policy (PollRebalance), so
// router re-derivation also happens off the encode path.
//
// Stop() takes effect between managers, not just between sweeps: a long
// multi-shard poll (or a shard mid-build) delays shutdown by at most one
// manager's step, not the whole sweep.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "dynamic/dictionary_manager.h"

namespace hope::dynamic {

class ShardedDictionaryManager;

class BackgroundRebuilder {
 public:
  struct Options {
    /// How often the policies are re-evaluated when nothing nudges us.
    std::chrono::milliseconds poll_interval{50};
  };

  /// Every manager must outlive the rebuilder. The worker starts
  /// immediately and polls the managers in the given order each cycle.
  explicit BackgroundRebuilder(DictionaryManager* manager)
      : BackgroundRebuilder(manager, Options{}) {}
  BackgroundRebuilder(DictionaryManager* manager, Options options)
      : BackgroundRebuilder(std::vector<DictionaryManager*>{manager},
                            options) {}
  // (Delegation instead of `Options options = {}` defaults: GCC rejects
  // a `= {}` default for a nested struct with member initializers.)
  explicit BackgroundRebuilder(std::vector<DictionaryManager*> managers)
      : BackgroundRebuilder(std::move(managers), Options{}) {}
  BackgroundRebuilder(std::vector<DictionaryManager*> managers,
                      Options options);
  /// Polls every shard of `sharded` — and its rebalance policy — with
  /// one shared worker loop.
  explicit BackgroundRebuilder(ShardedDictionaryManager* sharded)
      : BackgroundRebuilder(sharded, Options{}) {}
  BackgroundRebuilder(ShardedDictionaryManager* sharded, Options options);
  ~BackgroundRebuilder();

  BackgroundRebuilder(const BackgroundRebuilder&) = delete;
  BackgroundRebuilder& operator=(const BackgroundRebuilder&) = delete;

  /// Wakes the worker to evaluate the policies now (e.g. after a burst of
  /// inserts) instead of waiting out the poll interval.
  void Nudge() HOPE_EXCLUDES(mu_);

  /// Stops and joins the worker. Idempotent; the destructor calls it.
  void Stop() HOPE_EXCLUDES(mu_);

  size_t num_managers() const { return managers_.size(); }
  uint64_t rebuilds_completed() const { return rebuilds_.load(); }
  uint64_t rebalances_completed() const { return rebalances_.load(); }
  /// Retired versions freed by this worker's per-cycle TryReclaim polls
  /// (publishes also reclaim inline; this counts only the poll's share).
  uint64_t versions_reclaimed() const { return reclaims_.load(); }
  uint64_t cycles() const { return cycles_.load(); }

  /// Registers the worker-loop counters (hope_rebuilder_*) on
  /// `registry`, which must outlive the rebuilder. Null is a no-op. The
  /// managers attach their own telemetry — the rebuilder only exports
  /// its sweep activity.
  void AttachTelemetry(telemetry::MetricRegistry* registry);

 private:
  BackgroundRebuilder(std::vector<DictionaryManager*> managers,
                      std::vector<ShardedDictionaryManager*> sharded,
                      Options options);

  void Loop();

  const std::vector<DictionaryManager*> managers_;
  /// Sharded managers whose rebalance policy this worker also polls.
  const std::vector<ShardedDictionaryManager*> sharded_;
  const Options options_;

  Mutex mu_;
  std::condition_variable cv_;
  bool stop_ HOPE_GUARDED_BY(mu_) = false;
  bool nudged_ HOPE_GUARDED_BY(mu_) = false;
  /// Mirror of stop_ readable without mu_: the sweep checks it between
  /// managers so Stop() never waits out a long multi-shard poll.
  std::atomic<bool> stop_requested_{false};

  std::atomic<uint64_t> rebuilds_{0};
  std::atomic<uint64_t> rebalances_{0};
  std::atomic<uint64_t> reclaims_{0};
  std::atomic<uint64_t> cycles_{0};
  std::vector<telemetry::MetricRegistry::Registration> registrations_;
  std::thread worker_;
};

}  // namespace hope::dynamic
