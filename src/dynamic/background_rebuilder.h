// Worker thread that keeps a DictionaryManager fresh off the hot path:
// it periodically evaluates the manager's rebuild policy and, when
// staleness is detected, runs the (potentially expensive) build +
// validate + publish cycle so encoders never pay for it.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "dynamic/dictionary_manager.h"

namespace hope::dynamic {

class BackgroundRebuilder {
 public:
  struct Options {
    /// How often the policy is re-evaluated when nothing nudges us.
    std::chrono::milliseconds poll_interval{50};
  };

  /// `manager` must outlive the rebuilder. The worker starts immediately.
  explicit BackgroundRebuilder(DictionaryManager* manager)
      : BackgroundRebuilder(manager, Options{}) {}
  BackgroundRebuilder(DictionaryManager* manager, Options options);
  ~BackgroundRebuilder();

  BackgroundRebuilder(const BackgroundRebuilder&) = delete;
  BackgroundRebuilder& operator=(const BackgroundRebuilder&) = delete;

  /// Wakes the worker to evaluate the policy now (e.g. after a burst of
  /// inserts) instead of waiting out the poll interval.
  void Nudge();

  /// Stops and joins the worker. Idempotent; the destructor calls it.
  void Stop();

  uint64_t rebuilds_completed() const { return rebuilds_.load(); }
  uint64_t cycles() const { return cycles_.load(); }

 private:
  void Loop();

  DictionaryManager* manager_;
  const Options options_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool nudged_ = false;

  std::atomic<uint64_t> rebuilds_{0};
  std::atomic<uint64_t> cycles_{0};
  std::thread worker_;
};

}  // namespace hope::dynamic
