// Encode-path statistics for the dynamic dictionary manager: a sampled
// reservoir of recently encoded keys (the rebuild corpus) and an EWMA of
// the per-key compression rate (the staleness signal). Attached to every
// published Hope version through the EncodeObserver hook, so readers feed
// it for free as they encode.
//
// Hot-path cost is kept low by observing only every `sample_every`-th
// encode; the sampled updates take one mutex. All methods are
// thread-safe.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "hope/encoder.h"

namespace hope::dynamic {

/// Compression rate of a single key, byte-padded like
/// Hope::CompressionRate. The EWMA, the rebuild gain gate, and published
/// baselines must all use this one definition — comparing a candidate
/// measured one way against an EWMA accumulated another would bias
/// publish/reject decisions.
inline double PerKeyCpr(size_t key_size, size_t bit_len) {
  size_t padded = (bit_len + 7) / 8;
  return padded == 0 ? 1.0
                     : static_cast<double>(key_size) /
                           static_cast<double>(padded);
}

class EncodeStatsCollector : public EncodeObserver {
 public:
  struct Options {
    size_t reservoir_size = 4096;  ///< keys retained for rebuilds
    size_t sample_every = 8;       ///< observe every k-th encode (>= 1)
    double ewma_alpha = 0.02;      ///< weight of each observed key's CPR
    /// 0 (default): uniform reservoir sampling (Vitter's Algorithm R)
    /// over the stream since the last swap. > 0: recency-biased
    /// sampling — once the reservoir is full, each sampled key replaces
    /// a uniformly random slot with a fixed probability chosen so a
    /// resident key's survival halves every `reservoir_halflife`
    /// sampled keys. The rebuild/rebalance corpus then tracks fast
    /// drifts without shrinking the reservoir. Half-lives much smaller
    /// than the capacity saturate at one replacement per sample (the
    /// fastest possible turnover). NaN/negative disable (uniform).
    double reservoir_halflife = 0;
  };

  // (Delegation instead of a defaulted Options argument: GCC rejects a
  // `= {}` default for a nested struct with member initializers.)
  EncodeStatsCollector() : EncodeStatsCollector(Options{}) {}
  explicit EncodeStatsCollector(Options options);

  /// EncodeObserver: records the key into the reservoir (Vitter's
  /// algorithm R over the sampled stream) and folds its compression rate
  /// into the EWMA.
  void OnEncode(std::string_view key, size_t bit_len) override;

  /// EWMA of original bytes / byte-padded encoded bytes. Returns 0 until
  /// the first sampled key.
  double EwmaCompressionRate() const;

  uint64_t KeysObserved() const;  ///< total OnEncode calls
  uint64_t KeysSampled() const;   ///< keys that reached the reservoir stage
  uint64_t KeysSinceRebuild() const;
  double SecondsSinceRebuild() const;
  size_t ReservoirFill() const;
  size_t reservoir_capacity() const { return options_.reservoir_size; }

  /// Copies the current reservoir contents (rebuild corpus).
  std::vector<std::string> ReservoirSnapshot() const;

  /// Replaces the reservoir contents (truncated to capacity) and
  /// restarts the sampling stream. Used by the sharded manager's
  /// rebalance: when a shard's key range changes, its sampled stream
  /// history no longer describes the range it owns, so the new range's
  /// slice of the rebalance corpus is seeded in its place.
  void SeedReservoir(std::vector<std::string> keys);

  /// Called by the manager when a new dictionary version is published:
  /// re-seeds the EWMA at the fresh dictionary's measured rate, zeroes
  /// the since-rebuild counters, and restarts the reservoir's sampling
  /// stream (contents are kept, but post-swap keys displace them at full
  /// rate again, so the corpus keeps tracking drift over long lifetimes).
  void MarkRebuild(double fresh_cpr);

 private:
  const Options options_;
  /// Per-sample probability of replacing a reservoir slot in the
  /// recency-biased mode; 0 when Options::reservoir_halflife disables it.
  double replace_prob_ = 0;
  std::atomic<uint64_t> observed_{0};

  mutable Mutex mu_;
  std::mt19937_64 rng_ HOPE_GUARDED_BY(mu_){0x9E3779B97F4A7C15ull};
  std::vector<std::string> reservoir_ HOPE_GUARDED_BY(mu_);
  uint64_t sampled_ HOPE_GUARDED_BY(mu_) = 0;
  double ewma_cpr_ HOPE_GUARDED_BY(mu_) = 0;
  bool ewma_seeded_ HOPE_GUARDED_BY(mu_) = false;
  uint64_t keys_at_rebuild_ HOPE_GUARDED_BY(mu_) = 0;
  std::chrono::steady_clock::time_point rebuild_time_ HOPE_GUARDED_BY(mu_);
};

}  // namespace hope::dynamic
