#include "datasets/datasets.h"

#include <algorithm>
#include <array>
#include <random>
#include <unordered_set>

#include "common/zipf.h"

namespace hope {

namespace {

// Name fragments used to synthesize usernames, hosts, and title words.
constexpr std::array<const char*, 40> kFirstNames = {
    "james", "mary", "john",  "patricia", "robert", "jennifer", "michael",
    "linda", "david", "susan", "william", "jessica", "richard", "sarah",
    "joseph", "karen", "thomas", "nancy", "charles", "lisa", "chris",
    "betty", "daniel", "helen", "matthew", "sandra", "anthony", "donna",
    "mark", "carol", "donald", "ruth", "steven", "sharon", "paul",
    "michelle", "andrew", "laura", "joshua", "emily"};

constexpr std::array<const char*, 40> kLastNames = {
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
    "ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
    "wright", "scott", "torres", "nguyen", "hill", "flores"};

// Email providers ordered by popularity (the Zipf head mirrors real
// provider skew: a handful of webmail hosts dominate).
constexpr std::array<const char*, 24> kEmailHosts = {
    "com.gmail",     "com.yahoo",    "com.hotmail",  "com.outlook",
    "com.aol",       "com.icloud",   "com.msn",      "com.live",
    "net.comcast",   "net.verizon",  "com.mail",     "com.gmx",
    "de.web",        "com.protonmail", "org.riseup", "edu.cmu.cs",
    "edu.mit",       "com.qq",       "cn.163",       "com.naver",
    "co.uk.btinternet", "fr.orange", "de.t-online",  "com.zoho"};

constexpr std::array<const char*, 16> kTlds = {
    "com", "org", "net", "edu", "io", "co", "gov", "info",
    "biz", "us",  "uk",  "de",  "fr", "jp", "cn",  "ru"};

constexpr std::array<const char*, 24> kUrlPathWords = {
    "index",   "article", "news",   "products", "category", "wiki",
    "user",    "profile", "images", "static",   "blog",     "archive",
    "search",  "tags",    "2006",   "2007",     "forum",    "thread",
    "comment", "media",   "assets", "download", "help",     "about"};

// Syllables for synthetic vocabulary words (wiki titles, host names).
constexpr std::array<const char*, 28> kSyllables = {
    "an", "ber", "con", "den", "el",  "fer", "gra", "han", "in", "jor",
    "kel", "lan", "mor", "nor", "ol", "pra", "qui", "ran", "sto", "tan",
    "ul",  "ver", "wil", "xan", "yor", "zen", "chi", "tha"};

std::string MakeWord(std::mt19937_64& rng, int min_syll, int max_syll) {
  std::uniform_int_distribution<int> nsyll(min_syll, max_syll);
  std::uniform_int_distribution<size_t> pick(0, kSyllables.size() - 1);
  std::string w;
  int n = nsyll(rng);
  for (int i = 0; i < n; i++) w += kSyllables[pick(rng)];
  return w;
}

/// Builds a Zipf-ranked vocabulary of unique words.
std::vector<std::string> MakeVocabulary(std::mt19937_64& rng, size_t n,
                                        int min_syll, int max_syll) {
  std::unordered_set<std::string> seen;
  std::vector<std::string> vocab;
  vocab.reserve(n);
  while (vocab.size() < n) {
    std::string w = MakeWord(rng, min_syll, max_syll);
    if (seen.insert(w).second) vocab.push_back(std::move(w));
  }
  return vocab;
}

template <typename MakeKey>
std::vector<std::string> GenerateUnique(size_t n, MakeKey make_key) {
  std::unordered_set<std::string> seen;
  seen.reserve(n * 2);
  std::vector<std::string> keys;
  keys.reserve(n);
  while (keys.size() < n) {
    std::string key = make_key();
    if (key.empty()) continue;
    if (seen.insert(key).second) keys.push_back(std::move(key));
  }
  return keys;
}

}  // namespace

const char* DatasetName(DatasetId id) {
  switch (id) {
    case DatasetId::kEmail: return "email";
    case DatasetId::kWiki: return "wiki";
    case DatasetId::kUrl: return "url";
  }
  return "?";
}

std::vector<std::string> GenerateEmails(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  ZipfDistribution host_zipf(kEmailHosts.size() + 200, 1.0);
  // Long-tail company domains beyond the named providers.
  std::vector<std::string> tail_hosts;
  {
    std::mt19937_64 host_rng(seed ^ 0x9E3779B97F4A7C15ull);
    for (int i = 0; i < 200; i++) {
      std::string host = "com.";
      host += MakeWord(host_rng, 2, 3);
      tail_hosts.push_back(std::move(host));
    }
  }
  std::uniform_int_distribution<size_t> first(0, kFirstNames.size() - 1);
  std::uniform_int_distribution<size_t> last(0, kLastNames.size() - 1);
  std::uniform_int_distribution<int> style(0, 4);
  std::uniform_int_distribution<int> digits(0, 9999);

  return GenerateUnique(n, [&]() {
    size_t h = host_zipf(rng);
    const std::string host = h < kEmailHosts.size()
                                 ? std::string(kEmailHosts[h])
                                 : tail_hosts[h - kEmailHosts.size()];
    std::string user;
    const char* fn = kFirstNames[first(rng)];
    const char* ln = kLastNames[last(rng)];
    switch (style(rng)) {
      case 0: user = std::string(fn) + "." + ln; break;
      case 1: user = std::string(fn) + "_" + ln; break;
      case 2: user = std::string(1, fn[0]) + ln; break;
      case 3: user = std::string(fn) + std::to_string(digits(rng)); break;
      default:
        user = std::string(fn) + "." + ln + std::to_string(digits(rng) % 100);
        break;
    }
    return host + "@" + user;
  });
}

std::vector<std::string> GenerateWikiTitles(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::mt19937_64 vocab_rng(seed ^ 0xABCDEF1234567890ull);
  std::vector<std::string> vocab = MakeVocabulary(vocab_rng, 20000, 1, 3);
  ZipfDistribution word_zipf(vocab.size(), 0.9);
  std::uniform_int_distribution<int> nwords(1, 4);
  std::uniform_int_distribution<int> year(1500, 2019);
  std::uniform_int_distribution<int> flavor(0, 9);

  return GenerateUnique(n, [&]() {
    int k = nwords(rng);
    std::string title;
    for (int i = 0; i < k; i++) {
      std::string w = vocab[word_zipf(rng)];
      if (i == 0 || flavor(rng) < 3) w[0] = static_cast<char>(w[0] - 32);
      if (i > 0) title += "_";
      title += w;
    }
    // Mimic common title suffixes: years, disambiguations, lists.
    int f = flavor(rng);
    if (f == 0) title += "_(" + std::to_string(year(rng)) + ")";
    else if (f == 1) title += "_(" + vocab[word_zipf(rng)] + ")";
    else if (f == 2) title = "List_of_" + title;
    return title;
  });
}

std::vector<std::string> GenerateUrls(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::mt19937_64 vocab_rng(seed ^ 0x1234567890ABCDEFull);
  // Hot hosts get many URLs (crawls are host-clustered), so URLs share
  // long prefixes like the uk-2007 corpus.
  const size_t kNumHosts = 4000;
  std::vector<std::string> hosts;
  hosts.reserve(kNumHosts);
  std::uniform_int_distribution<size_t> tld(0, kTlds.size() - 1);
  std::uniform_int_distribution<int> www(0, 3);
  for (size_t i = 0; i < kNumHosts; i++) {
    std::string host = "http://";
    if (www(vocab_rng) != 0) host += "www.";
    host += MakeWord(vocab_rng, 2, 4);
    host += ".";
    host += kTlds[tld(vocab_rng)];
    hosts.push_back(std::move(host));
  }
  ZipfDistribution host_zipf(kNumHosts, 1.0);
  std::vector<std::string> vocab = MakeVocabulary(vocab_rng, 4000, 2, 4);
  ZipfDistribution word_zipf(vocab.size(), 0.8);
  std::uniform_int_distribution<size_t> path_word(0, kUrlPathWords.size() - 1);
  std::uniform_int_distribution<int> depth(1, 6);
  std::uniform_int_distribution<int> id(0, 999999);
  std::uniform_int_distribution<int> flavor(0, 9);

  return GenerateUnique(n, [&]() {
    std::string url = hosts[host_zipf(rng)];
    int d = depth(rng);
    for (int i = 0; i < d; i++) {
      url += "/";
      if (flavor(rng) < 4) url += kUrlPathWords[path_word(rng)];
      else url += vocab[word_zipf(rng)];
    }
    int f = flavor(rng);
    if (f < 3) {
      url += "/page-" + std::to_string(id(rng)) + ".html";
    } else if (f < 5) {
      url += "/item?id=" + std::to_string(id(rng)) +
             "&ref=" + vocab[word_zipf(rng)];
    } else {
      url += "/" + vocab[word_zipf(rng)] + "-" +
             std::to_string(id(rng) % 10000) + "/index.html";
    }
    return url;
  });
}

std::vector<std::string> GenerateDataset(DatasetId id, size_t n,
                                         uint64_t seed) {
  switch (id) {
    case DatasetId::kEmail: return GenerateEmails(n, seed);
    case DatasetId::kWiki: return GenerateWikiTitles(n, seed);
    case DatasetId::kUrl: return GenerateUrls(n, seed);
  }
  return {};
}

std::vector<std::string> SampleKeys(const std::vector<std::string>& keys,
                                    double fraction) {
  size_t n = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(keys.size()) * fraction));
  n = std::min(n, keys.size());
  return std::vector<std::string>(keys.begin(),
                                  keys.begin() + static_cast<long>(n));
}

}  // namespace hope
