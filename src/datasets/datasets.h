// Synthetic key datasets matching the paper's three corpora (§6):
//
//   Email — host-reversed addresses ("com.gmail@foo"), avg ~22 bytes
//   Wiki  — article titles, avg ~21 bytes
//   URL   — crawl-style URLs with heavy shared prefixes, avg ~104 bytes
//
// The real corpora (25M emails, 14M Wikipedia titles, 25M crawl URLs) are
// not redistributable / not available offline; these generators reproduce
// their structural statistics — provider/host skew, substring-level
// entropy, length distribution — which is what HOPE's compression rate
// depends on (see DESIGN.md §3). Generation is deterministic per seed,
// and keys are unique.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hope {

enum class DatasetId { kEmail, kWiki, kUrl };

const char* DatasetName(DatasetId id);

/// Generates `n` unique host-reversed email addresses.
std::vector<std::string> GenerateEmails(size_t n, uint64_t seed = 42);

/// Generates `n` unique Wikipedia-style article titles.
std::vector<std::string> GenerateWikiTitles(size_t n, uint64_t seed = 42);

/// Generates `n` unique crawl-style URLs.
std::vector<std::string> GenerateUrls(size_t n, uint64_t seed = 42);

std::vector<std::string> GenerateDataset(DatasetId id, size_t n,
                                         uint64_t seed = 42);

/// Returns the first max(1, fraction * keys.size()) keys — the paper's
/// sampling protocol (shuffle, then take the first x%). The generators
/// already emit keys in random order.
std::vector<std::string> SampleKeys(const std::vector<std::string>& keys,
                                    double fraction);

}  // namespace hope
