#include "prefix_btree/prefix_btree.h"

#include <algorithm>
#include <cassert>

#include "common/str_utils.h"

namespace hope {

std::string ShortestSeparator(std::string_view a, std::string_view b) {
  assert(a < b);
  size_t lcp = LcpLen(a, b);
  // b differs from a first at position lcp (or a is a prefix of b); the
  // shortest string above a but not above b is b's prefix of length
  // lcp + 1.
  assert(lcp < b.size());
  return std::string(b.substr(0, lcp + 1));
}

PrefixBTree::~PrefixBTree() {
  if (root_) FreeRec(root_);
}

void PrefixBTree::FreeRec(Node* node) {
  if (!node->leaf) {
    auto* inner = static_cast<InnerNode*>(node);
    for (Node* child : inner->children) FreeRec(child);
    delete inner;
  } else {
    delete static_cast<LeafNode*>(node);
  }
}

void PrefixBTree::LeafNode::InsertAt(size_t pos, std::string_view suffix,
                                     uint64_t value) {
  blob.insert(offsets[pos], suffix.data(), suffix.size());
  offsets.insert(offsets.begin() + static_cast<long>(pos), offsets[pos]);
  for (size_t i = pos + 1; i < offsets.size(); i++)
    offsets[i] += static_cast<uint32_t>(suffix.size());
  values.insert(values.begin() + static_cast<long>(pos), value);
  // Keep the node page-tight: a real slotted-page layout has no growth
  // slack, and nodes are at most kSlots entries so the copies are cheap.
  blob.shrink_to_fit();
  offsets.shrink_to_fit();
  values.shrink_to_fit();
}

size_t PrefixBTree::LeafLowerBound(const LeafNode* leaf, std::string_view key,
                                   bool* exact) {
  if (exact) *exact = false;
  const std::string& p = leaf->prefix;
  // Compare the key against the node prefix first.
  int c = std::string_view(key.substr(0, p.size())).compare(p);
  if (c < 0) return 0;               // key below every node key
  if (c > 0) return leaf->count();   // key above every node key
  std::string_view rest = key.substr(p.size());
  size_t lo = 0, hi = leaf->count();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (leaf->Suffix(mid) < rest)
      lo = mid + 1;
    else
      hi = mid;
  }
  if (exact && lo < leaf->count() && leaf->Suffix(lo) == rest)
    *exact = true;
  return lo;
}

bool PrefixBTree::LeafInsertKey(LeafNode* leaf, std::string_view key,
                                uint64_t value) {
  // Shrink the stored prefix if the new key does not share it.
  if (key.substr(0, leaf->prefix.size()) != leaf->prefix) {
    size_t keep = LcpLen(leaf->prefix, key);
    std::string tail = leaf->prefix.substr(keep);
    // Rebuild the blob with the prefix tail prepended to every suffix.
    std::string new_blob;
    new_blob.reserve(leaf->blob.size() +
                     tail.size() * (leaf->count() + 1));
    std::vector<uint32_t> new_offsets;
    new_offsets.reserve(leaf->offsets.size());
    for (size_t i = 0; i < leaf->count(); i++) {
      new_offsets.push_back(static_cast<uint32_t>(new_blob.size()));
      new_blob += tail;
      new_blob += leaf->Suffix(i);
    }
    new_offsets.push_back(static_cast<uint32_t>(new_blob.size()));
    leaf->blob = std::move(new_blob);
    leaf->offsets = std::move(new_offsets);
    leaf->prefix.resize(keep);
  }
  bool exact = false;
  size_t pos = LeafLowerBound(leaf, key, &exact);
  if (exact) {
    leaf->values[pos] = value;
    return false;
  }
  leaf->InsertAt(pos, key.substr(leaf->prefix.size()), value);
  return true;
}

void PrefixBTree::InsertIntoLeaf(LeafNode* leaf, std::string_view key,
                                 uint64_t value) {
  if (LeafInsertKey(leaf, key, value)) size_++;
  // Prefixes are re-derived (possibly lengthened) on splits.
}

void PrefixBTree::LeafRemoveAt(LeafNode* leaf, size_t pos) {
  uint32_t len = leaf->offsets[pos + 1] - leaf->offsets[pos];
  leaf->blob.erase(leaf->offsets[pos], len);
  leaf->offsets.erase(leaf->offsets.begin() + static_cast<long>(pos));
  for (size_t i = pos; i < leaf->offsets.size(); i++) leaf->offsets[i] -= len;
  leaf->values.erase(leaf->values.begin() + static_cast<long>(pos));
}

void PrefixBTree::RebuildLeaf(LeafNode* leaf,
                              const std::vector<std::string>& keys,
                              const std::vector<uint64_t>& values) {
  size_t p = keys.size() == 1 ? keys[0].size()
                              : LcpLen(keys.front(), keys.back());
  leaf->prefix.assign(keys.front().data(), p);
  leaf->blob.clear();
  leaf->offsets.clear();
  leaf->values = values;
  for (const auto& k : keys) {
    leaf->offsets.push_back(static_cast<uint32_t>(leaf->blob.size()));
    leaf->blob.append(k, p, std::string::npos);
  }
  leaf->offsets.push_back(static_cast<uint32_t>(leaf->blob.size()));
  leaf->blob.shrink_to_fit();
  leaf->offsets.shrink_to_fit();
  leaf->values.shrink_to_fit();
  leaf->prefix.shrink_to_fit();
}

void PrefixBTree::Insert(std::string_view key, uint64_t value) {
  if (!root_) {
    auto* leaf = new LeafNode();
    leaf->leaf = true;
    leaf->prefix = std::string(key);
    leaf->offsets = {0, 0};
    leaf->values.push_back(value);
    root_ = leaf;
    size_ = 1;
    return;
  }
  SplitResult split = InsertRec(root_, key, value);
  if (split.right) {
    auto* new_root = new InnerNode();
    new_root->leaf = false;
    new_root->separators.push_back(std::move(split.separator));
    new_root->children.push_back(root_);
    new_root->children.push_back(split.right);
    root_ = new_root;
  }
}

PrefixBTree::SplitResult PrefixBTree::InsertRec(Node* node,
                                                std::string_view key,
                                                uint64_t value) {
  if (node->leaf) {
    auto* leaf = static_cast<LeafNode*>(node);
    InsertIntoLeaf(leaf, key, value);
    if (leaf->count() <= kSlots) return {};
    // Split: materialize full keys, divide, re-derive both prefixes.
    size_t n = leaf->count();
    size_t half = n / 2;
    std::vector<std::string> keys(n);
    for (size_t i = 0; i < n; i++) keys[i] = leaf->FullKey(i);

    auto fill = [](LeafNode* target, const std::string* first,
                   const std::string* last, const uint64_t* vals) {
      // Prefix = lcp of first and last key (keys sorted).
      size_t p = LcpLen(*first, *last);
      target->prefix.assign(first->data(), p);
      target->blob.clear();
      target->offsets.clear();
      target->values.clear();
      for (const std::string* k = first; k <= last; ++k) {
        target->offsets.push_back(static_cast<uint32_t>(target->blob.size()));
        target->blob.append(*k, p, std::string::npos);
        target->values.push_back(vals[k - first]);
      }
      target->offsets.push_back(static_cast<uint32_t>(target->blob.size()));
      target->blob.shrink_to_fit();
      target->offsets.shrink_to_fit();
      target->values.shrink_to_fit();
      target->prefix.shrink_to_fit();
    };

    auto* right = new LeafNode();
    right->leaf = true;
    std::vector<uint64_t> vals = leaf->values;
    fill(right, &keys[half], &keys[n - 1], &vals[half]);
    fill(leaf, &keys[0], &keys[half - 1], &vals[0]);
    right->next = leaf->next;
    leaf->next = right;
    return {right, ShortestSeparator(keys[half - 1], keys[half])};
  }

  auto* inner = static_cast<InnerNode*>(node);
  size_t idx = static_cast<size_t>(
      std::upper_bound(inner->separators.begin(), inner->separators.end(),
                       key,
                       [](std::string_view k, const std::string& sep) {
                         return k < std::string_view(sep);
                       }) -
      inner->separators.begin());
  SplitResult child_split = InsertRec(inner->children[idx], key, value);
  if (!child_split.right) return {};
  inner->separators.insert(
      inner->separators.begin() + static_cast<long>(idx),
      std::move(child_split.separator));
  inner->children.insert(inner->children.begin() + static_cast<long>(idx + 1),
                         child_split.right);
  if (inner->separators.size() <= kSlots) return {};
  // Split the inner node: middle separator moves up.
  size_t mid = inner->separators.size() / 2;
  auto* right = new InnerNode();
  right->leaf = false;
  std::string up = std::move(inner->separators[mid]);
  right->separators.assign(
      std::make_move_iterator(inner->separators.begin() +
                              static_cast<long>(mid + 1)),
      std::make_move_iterator(inner->separators.end()));
  right->children.assign(inner->children.begin() + static_cast<long>(mid + 1),
                         inner->children.end());
  inner->separators.resize(mid);
  inner->children.resize(mid + 1);
  return {right, std::move(up)};
}

bool PrefixBTree::Erase(std::string_view key) {
  if (!root_) return false;
  if (!EraseRec(root_, key)) return false;
  size_--;
  if (root_->leaf) {
    auto* leaf = static_cast<LeafNode*>(root_);
    if (leaf->count() == 0) {
      delete leaf;
      root_ = nullptr;
    }
  } else {
    auto* inner = static_cast<InnerNode*>(root_);
    if (inner->separators.empty()) {
      root_ = inner->children[0];
      delete inner;
    }
  }
  return true;
}

bool PrefixBTree::EraseRec(Node* node, std::string_view key) {
  if (node->leaf) {
    auto* leaf = static_cast<LeafNode*>(node);
    bool exact = false;
    size_t pos = LeafLowerBound(leaf, key, &exact);
    if (!exact) return false;
    LeafRemoveAt(leaf, pos);
    return true;
  }
  auto* inner = static_cast<InnerNode*>(node);
  size_t idx = static_cast<size_t>(
      std::upper_bound(inner->separators.begin(), inner->separators.end(),
                       key,
                       [](std::string_view k, const std::string& sep) {
                         return k < std::string_view(sep);
                       }) -
      inner->separators.begin());
  if (!EraseRec(inner->children[idx], key)) return false;
  Node* child = inner->children[idx];
  size_t child_count = child->leaf
                           ? static_cast<LeafNode*>(child)->count()
                           : static_cast<InnerNode*>(child)->separators.size();
  if (child_count < kMinFill) RebalanceChild(inner, idx);
  return true;
}

void PrefixBTree::RebalanceChild(InnerNode* parent, size_t idx) {
  Node* child = parent->children[idx];
  Node* left = idx > 0 ? parent->children[idx - 1] : nullptr;
  Node* right =
      idx + 1 < parent->children.size() ? parent->children[idx + 1] : nullptr;

  if (child->leaf) {
    auto* c = static_cast<LeafNode*>(child);
    auto* l = static_cast<LeafNode*>(left);
    auto* r = static_cast<LeafNode*>(right);
    if (l && l->count() > kMinFill) {
      // Borrow the left sibling's last key; the boundary separator is
      // re-derived with suffix truncation.
      std::string k = l->FullKey(l->count() - 1);
      uint64_t v = l->values.back();
      LeafRemoveAt(l, l->count() - 1);
      LeafInsertKey(c, k, v);
      parent->separators[idx - 1] =
          ShortestSeparator(l->FullKey(l->count() - 1), k);
      return;
    }
    if (r && r->count() > kMinFill) {
      std::string k = r->FullKey(0);
      uint64_t v = r->values.front();
      LeafRemoveAt(r, 0);
      LeafInsertKey(c, k, v);
      parent->separators[idx] = ShortestSeparator(k, r->FullKey(0));
      return;
    }
    // Merge with a sibling; the merged leaf is rebuilt so its prefix is
    // re-derived.
    LeafNode* dst = l ? l : c;
    LeafNode* src = l ? c : r;
    size_t sep = l ? idx - 1 : idx;
    std::vector<std::string> keys;
    std::vector<uint64_t> values;
    keys.reserve(dst->count() + src->count());
    for (size_t i = 0; i < dst->count(); i++) {
      keys.push_back(dst->FullKey(i));
      values.push_back(dst->values[i]);
    }
    for (size_t i = 0; i < src->count(); i++) {
      keys.push_back(src->FullKey(i));
      values.push_back(src->values[i]);
    }
    RebuildLeaf(dst, keys, values);
    dst->next = src->next;
    delete src;
    parent->separators.erase(parent->separators.begin() +
                             static_cast<long>(sep));
    parent->children.erase(parent->children.begin() +
                           static_cast<long>(sep + 1));
    return;
  }

  auto* c = static_cast<InnerNode*>(child);
  auto* l = static_cast<InnerNode*>(left);
  auto* r = static_cast<InnerNode*>(right);
  if (l && l->separators.size() > kMinFill) {
    // Rotate through the parent.
    c->separators.insert(c->separators.begin(),
                         std::move(parent->separators[idx - 1]));
    c->children.insert(c->children.begin(), l->children.back());
    parent->separators[idx - 1] = std::move(l->separators.back());
    l->separators.pop_back();
    l->children.pop_back();
    return;
  }
  if (r && r->separators.size() > kMinFill) {
    c->separators.push_back(std::move(parent->separators[idx]));
    c->children.push_back(r->children.front());
    parent->separators[idx] = std::move(r->separators.front());
    r->separators.erase(r->separators.begin());
    r->children.erase(r->children.begin());
    return;
  }
  // Merge inner nodes around the parent separator.
  InnerNode* dst = l ? l : c;
  InnerNode* src = l ? c : r;
  size_t sep = l ? idx - 1 : idx;
  dst->separators.push_back(std::move(parent->separators[sep]));
  for (auto& s : src->separators) dst->separators.push_back(std::move(s));
  for (Node* ch : src->children) dst->children.push_back(ch);
  delete src;
  parent->separators.erase(parent->separators.begin() +
                           static_cast<long>(sep));
  parent->children.erase(parent->children.begin() +
                         static_cast<long>(sep + 1));
}

const PrefixBTree::LeafNode* PrefixBTree::FindLeaf(
    std::string_view key) const {
  if (!root_) return nullptr;
  const Node* node = root_;
  while (!node->leaf) {
    const auto* inner = static_cast<const InnerNode*>(node);
    size_t idx = static_cast<size_t>(
        std::upper_bound(inner->separators.begin(), inner->separators.end(),
                         key,
                         [](std::string_view k, const std::string& sep) {
                           return k < std::string_view(sep);
                         }) -
        inner->separators.begin());
    node = inner->children[idx];
  }
  return static_cast<const LeafNode*>(node);
}

bool PrefixBTree::Lookup(std::string_view key, uint64_t* value) const {
  const LeafNode* leaf = FindLeaf(key);
  if (!leaf) return false;
  bool exact = false;
  size_t pos = LeafLowerBound(leaf, key, &exact);
  if (!exact) return false;
  if (value) *value = leaf->values[pos];
  return true;
}

size_t PrefixBTree::Scan(std::string_view start, size_t count,
                         std::vector<uint64_t>* out) const {
  const LeafNode* leaf = FindLeaf(start);
  if (!leaf) return 0;
  size_t produced = 0;
  size_t pos = LeafLowerBound(leaf, start, nullptr);
  while (leaf && produced < count) {
    for (; pos < leaf->count() && produced < count; pos++) {
      if (out) out->push_back(leaf->values[pos]);
      produced++;
    }
    leaf = leaf->next;
    pos = 0;
  }
  return produced;
}

size_t PrefixBTree::MemoryRec(const Node* node) const {
  if (node->leaf) {
    const auto* leaf = static_cast<const LeafNode*>(node);
    return sizeof(LeafNode) + leaf->prefix.capacity() +
           leaf->blob.capacity() +
           leaf->offsets.capacity() * sizeof(uint32_t) +
           leaf->values.capacity() * sizeof(uint64_t);
  }
  const auto* inner = static_cast<const InnerNode*>(node);
  size_t bytes = sizeof(InnerNode);
  bytes += inner->separators.capacity() * sizeof(std::string);
  for (const auto& s : inner->separators)
    if (s.capacity() > 15) bytes += s.capacity() + 1;  // beyond SSO
  bytes += inner->children.capacity() * sizeof(Node*);
  for (const Node* child : inner->children) bytes += MemoryRec(child);
  return bytes;
}

size_t PrefixBTree::MemoryBytes() const {
  return root_ ? MemoryRec(root_) : 0;
}

int PrefixBTree::Height() const {
  int h = 0;
  const Node* node = root_;
  while (node) {
    h++;
    if (node->leaf) break;
    node = static_cast<const InnerNode*>(node)->children[0];
  }
  return h;
}

std::string PrefixBTree::CheckRec(const Node* node, const std::string* lo,
                                  const std::string* hi, int depth,
                                  int expect_depth) const {
  if (node->leaf) {
    if (depth != expect_depth) return "leaves at different depths";
    const auto* leaf = static_cast<const LeafNode*>(node);
    if (leaf->count() == 0) return "empty leaf";
    if (leaf->offsets.size() != leaf->values.size() + 1)
      return "offset/value size mismatch";
    for (size_t i = 0; i + 1 < leaf->count(); i++)
      if (!(leaf->Suffix(i) < leaf->Suffix(i + 1)))
        return "leaf keys out of order";
    if (lo && !(*lo <= leaf->FullKey(0))) return "leaf below lower bound";
    if (hi && !(leaf->FullKey(leaf->count() - 1) < *hi))
      return "leaf above upper bound";
    return "";
  }
  const auto* inner = static_cast<const InnerNode*>(node);
  if (inner->separators.empty()) return "empty inner node";
  if (inner->children.size() != inner->separators.size() + 1)
    return "child/separator count mismatch";
  for (size_t i = 0; i + 1 < inner->separators.size(); i++)
    if (!(inner->separators[i] < inner->separators[i + 1]))
      return "separators out of order";
  for (size_t i = 0; i < inner->children.size(); i++) {
    const std::string* clo = i == 0 ? lo : &inner->separators[i - 1];
    const std::string* chi =
        i == inner->separators.size() ? hi : &inner->separators[i];
    std::string err =
        CheckRec(inner->children[i], clo, chi, depth + 1, expect_depth);
    if (!err.empty()) return err;
  }
  return "";
}

std::string PrefixBTree::CheckInvariants() const {
  if (!root_) return "";
  return CheckRec(root_, nullptr, nullptr, 1, Height());
}

}  // namespace hope
