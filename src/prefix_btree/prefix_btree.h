// Prefix B+tree (Bayer & Unterauer, §5): a B+tree whose leaf nodes apply
// *prefix truncation* (the common prefix of a node's keys is stored once)
// and whose leaf splits apply *suffix truncation* (the parent receives
// the shortest separator s with max(left) < s <= min(right)).
//
// Leaf keys are stored page-style: one prefix string plus a concatenated
// suffix blob with an offset array — no per-key string headers — so the
// space accounting reflects what an actual prefix-truncated node layout
// would occupy. MemoryBytes() counts node structures, prefixes, blobs and
// offsets.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hope {

class PrefixBTree {
 public:
  static constexpr size_t kSlots = 16;

  PrefixBTree() = default;
  ~PrefixBTree();

  PrefixBTree(const PrefixBTree&) = delete;
  PrefixBTree& operator=(const PrefixBTree&) = delete;

  /// Inserts a key/value pair; overwrites the value if the key exists.
  void Insert(std::string_view key, uint64_t value);

  bool Lookup(std::string_view key, uint64_t* value) const;

  /// Removes a key with borrow/merge rebalancing; separators are
  /// re-derived with suffix truncation when leaf boundaries move.
  /// Returns false if the key was absent.
  bool Erase(std::string_view key);

  /// Scans up to `count` entries starting at the first key >= start.
  size_t Scan(std::string_view start, size_t count,
              std::vector<uint64_t>* out) const;

  size_t size() const { return size_; }

  size_t MemoryBytes() const;

  int Height() const;

  /// Validates ordering, prefix and separator invariants ("" when OK).
  std::string CheckInvariants() const;

 private:
  struct Node {
    bool leaf;
  };

  struct InnerNode : Node {
    std::vector<std::string> separators;  // suffix-truncated
    std::vector<Node*> children;          // separators.size() + 1
  };

  struct LeafNode : Node {
    std::string prefix;             // common prefix, stored once
    std::string blob;               // concatenated sorted suffixes
    std::vector<uint32_t> offsets;  // values.size() + 1 boundaries
    std::vector<uint64_t> values;
    LeafNode* next = nullptr;

    size_t count() const { return values.size(); }
    std::string_view Suffix(size_t i) const {
      return std::string_view(blob).substr(offsets[i],
                                           offsets[i + 1] - offsets[i]);
    }
    std::string FullKey(size_t i) const {
      return prefix + std::string(Suffix(i));
    }
    void InsertAt(size_t pos, std::string_view suffix, uint64_t value);
  };

  struct SplitResult {
    Node* right = nullptr;
    std::string separator;  // shortest separator, max(left) < sep <= min(right)
  };

  static constexpr size_t kMinFill = kSlots / 2;

  SplitResult InsertRec(Node* node, std::string_view key, uint64_t value);
  void InsertIntoLeaf(LeafNode* leaf, std::string_view key, uint64_t value);
  /// Inserts without size bookkeeping; returns false on overwrite.
  static bool LeafInsertKey(LeafNode* leaf, std::string_view key,
                            uint64_t value);
  static void LeafRemoveAt(LeafNode* leaf, size_t pos);
  /// Rebuilds a leaf from materialized full keys (re-deriving the
  /// prefix).
  static void RebuildLeaf(LeafNode* leaf,
                          const std::vector<std::string>& keys,
                          const std::vector<uint64_t>& values);
  bool EraseRec(Node* node, std::string_view key);
  void RebalanceChild(InnerNode* parent, size_t idx);
  const LeafNode* FindLeaf(std::string_view key) const;
  /// First index i in the leaf with full_key(i) >= key.
  static size_t LeafLowerBound(const LeafNode* leaf, std::string_view key,
                               bool* exact);
  void FreeRec(Node* node);
  size_t MemoryRec(const Node* node) const;
  std::string CheckRec(const Node* node, const std::string* lo,
                       const std::string* hi, int depth,
                       int expect_depth) const;

  Node* root_ = nullptr;
  size_t size_ = 0;
};

/// Shortest separator s with a < s <= b (requires a < b). Exposed for
/// direct unit testing.
std::string ShortestSeparator(std::string_view a, std::string_view b);

}  // namespace hope
