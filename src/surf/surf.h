// SuRF: Succinct Range Filter (Zhang et al., SIGMOD'18), §5 of the HOPE
// paper. A static, succinct trie built from sorted keys that answers
// approximate membership queries for points and ranges with no false
// negatives.
//
// This implementation uses the LOUDS-Sparse encoding for all levels:
// per-label arrays (label, has-child bit, LOUDS bit) over rank/select
// bit-vectors. Keys are truncated at their shortest unique prefix; an
// optional per-leaf suffix (Real8: the next key byte, or Hash8: an 8-bit
// key hash) trades memory for a lower false-positive rate (Fig. 11).
//
// Deviation from the original: labels are 16-bit with value 0 reserved as
// the key terminator, so arbitrary byte strings — including HOPE-encoded
// keys with embedded 0x00 — are handled without the original's
// no-NUL-in-keys assumption (DESIGN.md §3).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bitvector.h"

namespace hope {

enum class SurfSuffix : uint8_t {
  kNone,   ///< no suffix bits (smallest, highest FPR)
  kHash8,  ///< 8-bit hash of the full key (point queries only)
  kReal8,  ///< the 8 key bits following the stored prefix (ordered)
};

class Surf {
 public:
  /// Builds from sorted, de-duplicated keys.
  explicit Surf(const std::vector<std::string>& sorted_keys,
                SurfSuffix suffix = SurfSuffix::kNone);

  /// Approximate membership: false means definitely absent.
  bool MayContain(std::string_view key) const;

  /// Approximate range emptiness for [start, end] (closed range): false
  /// means no key in the range; true may be a false positive.
  bool MayContainRange(std::string_view start, std::string_view end) const;

  size_t num_keys() const { return num_keys_; }

  /// Total trie labels (edges + terminators); the dominant memory term.
  size_t NumLabels() const { return labels_.size(); }

  size_t MemoryBytes() const;

  /// Average trie depth of the leaves (levels), Fig. 10 bottom row.
  double AverageLeafDepth() const {
    return num_keys_ == 0 ? 0
                          : static_cast<double>(total_leaf_depth_) /
                                static_cast<double>(num_keys_);
  }

  SurfSuffix suffix_type() const { return suffix_; }

 private:
  static constexpr uint16_t kTerminator = 0;

  static uint16_t ToLabel(uint8_t byte) {
    return static_cast<uint16_t>(byte) + 1;
  }

  /// Label index range [begin, end) of a node.
  void NodeRange(size_t node, size_t* begin, size_t* end) const;
  /// Child node id for the has-child label at position pos.
  size_t ChildNode(size_t pos) const;
  /// Leaf id (suffix index) for the leaf label at position pos.
  size_t LeafId(size_t pos) const;

  static uint8_t HashSuffix(std::string_view key);
  uint8_t RealSuffix(std::string_view key, size_t next) const;
  bool CheckLeafSuffix(size_t pos, std::string_view key, size_t depth) const;

  /// Positions the iterator stack at the first leaf whose stored
  /// information is >= start; returns false if no such leaf.
  bool LowerBoundRec(size_t node, size_t depth, std::string_view start,
                     std::vector<uint32_t>* stack) const;
  void DescendMin(size_t pos, std::vector<uint32_t>* stack) const;
  /// Reconstructs the known bytes of the key at the iterator position.
  std::string ReconstructKey(const std::vector<uint32_t>& stack) const;

  std::vector<uint16_t> labels_;
  BitVector has_child_;
  BitVector louds_;
  std::vector<uint8_t> suffixes_;  // per leaf, empty when kNone
  SurfSuffix suffix_;
  size_t num_keys_ = 0;
  size_t total_leaf_depth_ = 0;
};

}  // namespace hope
