#include "surf/surf.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace hope {

namespace {

/// A builder work item: a range of sorted keys sharing the first `depth`
/// bytes, to be materialized as one trie node.
struct BuildItem {
  size_t lo, hi, depth;
};

}  // namespace

Surf::Surf(const std::vector<std::string>& sorted_keys, SurfSuffix suffix)
    : suffix_(suffix) {
  const auto& keys = sorted_keys;
  num_keys_ = keys.size();
  if (keys.empty()) return;
  assert(std::is_sorted(keys.begin(), keys.end()));

  // BFS over key ranges; each item becomes one node whose labels are
  // appended contiguously (LOUDS-Sparse level order).
  std::deque<BuildItem> queue;
  queue.push_back({0, keys.size(), 0});
  while (!queue.empty()) {
    BuildItem item = queue.front();
    queue.pop_front();
    size_t lo = item.lo, hi = item.hi, d = item.depth;
    bool first_label = true;
    auto append = [&](uint16_t label, bool child) {
      labels_.push_back(label);
      has_child_.PushBack(child);
      louds_.PushBack(first_label);
      first_label = false;
    };
    // A key that ends exactly at this node becomes the terminator label,
    // which sorts before every real label.
    if (keys[lo].size() == d) {
      append(kTerminator, false);
      total_leaf_depth_ += d;
      if (suffix_ == SurfSuffix::kHash8)
        suffixes_.push_back(HashSuffix(keys[lo]));
      else if (suffix_ == SurfSuffix::kReal8)
        suffixes_.push_back(0);  // no bytes follow the key
      lo++;
    }
    size_t i = lo;
    while (i < hi) {
      uint8_t b = static_cast<uint8_t>(keys[i][d]);
      size_t j = i;
      while (j < hi && static_cast<uint8_t>(keys[j][d]) == b) j++;
      if (j - i == 1) {
        // Unique prefix: truncate here; the rest of the key is dropped
        // (that is SuRF's whole point).
        append(ToLabel(b), false);
        total_leaf_depth_ += d + 1;
        if (suffix_ == SurfSuffix::kHash8)
          suffixes_.push_back(HashSuffix(keys[i]));
        else if (suffix_ == SurfSuffix::kReal8)
          suffixes_.push_back(RealSuffix(keys[i], d + 1));
      } else {
        append(ToLabel(b), true);
        queue.push_back({i, j, d + 1});
      }
      i = j;
    }
  }
  labels_.shrink_to_fit();
  suffixes_.shrink_to_fit();
  has_child_.Finalize();
  louds_.Finalize();
}

void Surf::NodeRange(size_t node, size_t* begin, size_t* end) const {
  *begin = louds_.Select1(node);
  *end = node + 1 < louds_.num_ones() ? louds_.Select1(node + 1)
                                      : labels_.size();
}

size_t Surf::ChildNode(size_t pos) const {
  // Children are numbered in label order; the root is node 0 and is not
  // pointed to by any label.
  return has_child_.Rank1(pos + 1);
}

size_t Surf::LeafId(size_t pos) const { return has_child_.Rank0(pos); }

uint8_t Surf::HashSuffix(std::string_view key) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return static_cast<uint8_t>(h ^ (h >> 32));
}

uint8_t Surf::RealSuffix(std::string_view key, size_t next) const {
  return next < key.size() ? static_cast<uint8_t>(key[next]) : 0;
}

bool Surf::CheckLeafSuffix(size_t pos, std::string_view key,
                           size_t depth) const {
  switch (suffix_) {
    case SurfSuffix::kNone:
      return true;
    case SurfSuffix::kHash8:
      return suffixes_[LeafId(pos)] == HashSuffix(key);
    case SurfSuffix::kReal8:
      return suffixes_[LeafId(pos)] == RealSuffix(key, depth);
  }
  return true;
}

bool Surf::MayContain(std::string_view key) const {
  if (num_keys_ == 0) return false;
  size_t node = 0, depth = 0;
  while (true) {
    size_t begin, end;
    NodeRange(node, &begin, &end);
    if (depth == key.size()) {
      // The key ends here: present iff this node has a terminator label.
      return labels_[begin] == kTerminator &&
             CheckLeafSuffix(begin, key, depth + 1);
    }
    uint16_t target = ToLabel(static_cast<uint8_t>(key[depth]));
    const uint16_t* base = labels_.data();
    const uint16_t* it =
        std::lower_bound(base + begin, base + end, target);
    size_t pos = static_cast<size_t>(it - base);
    if (pos == end || *it != target) return false;
    if (!has_child_.Get(pos)) {
      // Unique-prefix leaf: everything after `depth` was truncated away,
      // so this is a (suffix-checked) positive.
      return CheckLeafSuffix(pos, key, depth + 1);
    }
    node = ChildNode(pos);
    depth++;
  }
}

void Surf::DescendMin(size_t pos, std::vector<uint32_t>* stack) const {
  // `pos` is a label position already pushed by the caller.
  while (has_child_.Get(pos)) {
    size_t begin, end;
    NodeRange(ChildNode(pos), &begin, &end);
    pos = begin;  // terminator/minimum label first
    stack->push_back(static_cast<uint32_t>(pos));
  }
}

bool Surf::LowerBoundRec(size_t node, size_t depth, std::string_view start,
                         std::vector<uint32_t>* stack) const {
  size_t begin, end;
  NodeRange(node, &begin, &end);
  uint16_t target = depth < start.size()
                        ? ToLabel(static_cast<uint8_t>(start[depth]))
                        : kTerminator;
  const uint16_t* base = labels_.data();
  size_t pos = static_cast<size_t>(
      std::lower_bound(base + begin, base + end, target) - base);
  for (; pos < end; pos++) {
    stack->push_back(static_cast<uint32_t>(pos));
    if (labels_[pos] > target || depth >= start.size()) {
      // Everything under this label exceeds the remaining start bytes.
      DescendMin(pos, stack);
      return true;
    }
    // labels_[pos] == target (and start has more bytes).
    if (has_child_.Get(pos)) {
      if (LowerBoundRec(ChildNode(pos), depth + 1, start, stack))
        return true;
      stack->pop_back();
      continue;  // subtree exhausted: advance to the next label
    }
    // Exact-label leaf: only the suffix can order it against start.
    if (suffix_ == SurfSuffix::kReal8) {
      uint8_t stored = suffixes_[LeafId(pos)];
      uint8_t want = depth + 1 < start.size()
                         ? static_cast<uint8_t>(start[depth + 1])
                         : 0;
      if (stored >= want) return true;
      stack->pop_back();
      continue;
    }
    // Without real suffixes, conservatively treat it as >= start (filter
    // semantics: no false negatives).
    return true;
  }
  return false;
}

std::string Surf::ReconstructKey(const std::vector<uint32_t>& stack) const {
  std::string key;
  for (size_t i = 0; i < stack.size(); i++) {
    uint16_t label = labels_[stack[i]];
    if (label != kTerminator)
      key.push_back(static_cast<char>(label - 1));
  }
  if (!stack.empty() && suffix_ == SurfSuffix::kReal8) {
    size_t pos = stack.back();
    if (!has_child_.Get(pos)) {
      uint8_t s = suffixes_[LeafId(pos)];
      if (s != 0) key.push_back(static_cast<char>(s));
    }
  }
  return key;
}

bool Surf::MayContainRange(std::string_view start,
                           std::string_view end) const {
  if (num_keys_ == 0) return false;
  std::vector<uint32_t> stack;
  stack.reserve(16);
  if (!LowerBoundRec(0, 0, start, &stack)) return false;
  // The lower-bound candidate exists; the range is non-empty iff its key
  // is <= end. The reconstructed key may be truncated: if it is a prefix
  // of `end` the comparison is ambiguous and we answer positively.
  std::string candidate = ReconstructKey(stack);
  std::string_view c(candidate);
  if (c.size() <= end.size() && end.substr(0, c.size()) == c) return true;
  return c < end;
}

size_t Surf::MemoryBytes() const {
  return labels_.capacity() * sizeof(uint16_t) + has_child_.MemoryBytes() +
         louds_.MemoryBytes() + suffixes_.capacity();
}

}  // namespace hope
