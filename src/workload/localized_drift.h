// Localized-drift harness shared by bench_dynamic_rebuild and hope_cli:
// confines a DriftingWorkload's A->B blend to the key range of a single
// shard (the "victim"), so a ShardedDictionaryManager sees drift in one
// shard while every other shard's traffic stays stable.
//
// Header-only and layered above both hope_workload and hope_dynamic —
// consumers must link both.
#pragma once

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "dynamic/sharded_manager.h"
#include "workload/drift.h"

namespace hope {

/// Pre-routes the workload's part-B pool and picks the victim: the shard
/// owning the most part-B weight. Requires a model whose partition
/// predicate is orthogonal to key order (kUrlStyle), so every shard's
/// range contains B keys to drift toward.
class LocalizedDrift {
 public:
  LocalizedDrift(const DriftingWorkload& drift,
                 const dynamic::ShardedDictionaryManager& manager)
      : drift_(&drift),
        manager_(&manager),
        b_by_shard_(manager.num_shards()) {
    for (const auto& k : drift.part_b())
      b_by_shard_[manager.Route(k)].push_back(k);
    for (size_t s = 1; s < b_by_shard_.size(); s++)
      if (b_by_shard_[s].size() > b_by_shard_[victim_].size()) victim_ = s;
  }

  size_t victim() const { return victim_; }

  /// True when the corpus was too small to leave any part-B keys in the
  /// victim's range (the stream then stays stable everywhere).
  bool degenerate() const { return b_by_shard_[victim_].empty(); }

  /// Phase stream: every key starts as a stable part-A draw; draws routed
  /// to the victim shard blend toward that shard's part-B pool by the
  /// phase's mix fraction. Deterministic per (seed, phase).
  std::vector<std::string> PhaseStream(size_t phase, size_t count,
                                       uint64_t seed) const {
    std::mt19937_64 rng(seed ^ (0x10CA1ull * (phase + 1)));
    double frac_b = drift_->MixFraction(phase);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    std::uniform_int_distribution<size_t> pick_a(0,
                                                 drift_->part_a().size() - 1);
    const auto& b_pool = b_by_shard_[victim_];
    std::vector<std::string> keys;
    keys.reserve(count);
    for (size_t i = 0; i < count; i++) {
      const std::string& a = drift_->part_a()[pick_a(rng)];
      if (manager_->Route(a) == victim_ && !b_pool.empty() &&
          coin(rng) < frac_b) {
        std::uniform_int_distribution<size_t> pick_b(0, b_pool.size() - 1);
        keys.push_back(b_pool[pick_b(rng)]);
      } else {
        keys.push_back(a);
      }
    }
    return keys;
  }

 private:
  const DriftingWorkload* drift_;
  const dynamic::ShardedDictionaryManager* manager_;
  std::vector<std::vector<std::string>> b_by_shard_;
  size_t victim_ = 0;
};

/// Mean CPR of a key set through the sharded manager, measured through
/// per-shard observer-free clones (probing the managed encoders would
/// feed the collectors and let the measurement itself trigger rebuilds).
inline double MeasureShardedCpr(
    const dynamic::ShardedDictionaryManager& sharded,
    const std::vector<std::string>& keys) {
  std::vector<std::unique_ptr<Hope>> clones;
  clones.reserve(sharded.num_shards());
  for (size_t s = 0; s < sharded.num_shards(); s++)
    clones.push_back(sharded.shard(s).Acquire().hope->Clone());
  size_t original = 0, compressed = 0;
  for (const auto& k : keys) {
    size_t bits = 0;
    clones[sharded.Route(k)]->Encode(k, &bits);
    original += k.size();
    compressed += (bits + 7) / 8;
  }
  return compressed == 0 ? 1.0
                         : static_cast<double>(original) /
                               static_cast<double>(compressed);
}

/// max/mean of a stream's routed per-shard counts under a manager's
/// current router: 1.0 = perfectly balanced, N = every request on one of
/// N shards. The spread metric the rebalance bench, CLI demo, and docs
/// all quote.
inline double StreamSpread(const dynamic::ShardedDictionaryManager& mgr,
                           const std::vector<std::string>& keys) {
  std::vector<size_t> counts(mgr.num_shards(), 0);
  for (const auto& k : keys) counts[mgr.Route(k)]++;
  size_t max = 0, sum = 0;
  for (size_t c : counts) {
    max = std::max(max, c);
    sum += c;
  }
  if (sum == 0) return 1.0;
  return static_cast<double>(max) /
         (static_cast<double>(sum) / static_cast<double>(counts.size()));
}

/// "0/1/0/0"-style per-shard epoch list for reports.
inline std::string EpochsString(const std::vector<uint64_t>& epochs) {
  std::string s;
  for (size_t i = 0; i < epochs.size(); i++) {
    if (i) s += '/';
    s += std::to_string(epochs[i]);
  }
  return s;
}

}  // namespace hope
