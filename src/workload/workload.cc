#include "workload/workload.h"

#include <random>

namespace hope {

std::vector<uint32_t> GenerateZipfQueries(size_t num_keys, size_t num_queries,
                                          uint64_t seed, double theta) {
  std::mt19937_64 rng(seed);
  ScrambledZipf zipf(num_keys, theta);
  std::vector<uint32_t> queries(num_queries);
  for (auto& q : queries) q = static_cast<uint32_t>(zipf(rng));
  return queries;
}

std::vector<uint32_t> GenerateScanLengths(size_t num_queries, uint32_t max_len,
                                          uint64_t seed) {
  std::mt19937_64 rng(seed ^ 0x5DEECE66Dull);
  std::uniform_int_distribution<uint32_t> len(1, max_len);
  std::vector<uint32_t> lens(num_queries);
  for (auto& l : lens) l = len(rng);
  return lens;
}

InsertSplit SplitForInserts(const std::vector<std::string>& keys,
                            double load_fraction) {
  InsertSplit split;
  size_t cut = static_cast<size_t>(static_cast<double>(keys.size()) *
                                   load_fraction);
  cut = std::min(cut, keys.size());
  split.load.assign(keys.begin(), keys.begin() + static_cast<long>(cut));
  split.inserts.assign(keys.begin() + static_cast<long>(cut), keys.end());
  return split;
}

}  // namespace hope
