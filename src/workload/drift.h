// Drifting key workload (the fig-15 shift model, made gradual): the
// Email corpus is split by provider into Email-A (gmail + yahoo) and
// Email-B (everything else), and successive phases blend from pure A to
// pure B. A dictionary built from a phase-0 sample therefore faces a
// slowly shifting distribution — the scenario the dynamic dictionary
// manager exists for.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hope {

struct DriftOptions {
  size_t keys_per_phase = 20000;
  size_t num_phases = 5;   ///< phase 0 is pure A, the last pure B
  uint64_t seed = 42;
  size_t corpus_size = 0;  ///< emails to generate; 0 = 2 * keys_per_phase
};

class DriftingWorkload {
 public:
  explicit DriftingWorkload(DriftOptions options = {});

  size_t num_phases() const { return options_.num_phases; }

  /// Fraction of phase-`p` keys drawn from Email-B: p / (num_phases - 1).
  double MixFraction(size_t phase) const;

  /// Deterministic key stream for one phase (keys repeat across phases;
  /// within a phase each pool is cycled in shuffled order).
  std::vector<std::string> Phase(size_t phase) const;

  const std::vector<std::string>& part_a() const { return part_a_; }
  const std::vector<std::string>& part_b() const { return part_b_; }

 private:
  DriftOptions options_;
  std::vector<std::string> part_a_;  ///< gmail + yahoo keys
  std::vector<std::string> part_b_;  ///< all other providers
};

}  // namespace hope
