// Drifting key workload (the fig-15 shift model, made gradual and
// generalized beyond the Email corpus): a corpus is split in two by a
// model-specific partition predicate, and successive phases blend from
// pure part A to pure part B. A dictionary built from a phase-0 sample
// therefore faces a slowly shifting distribution — the scenario the
// dynamic dictionary manager exists for.
//
// Models (each pairs a corpus generator with a partition predicate whose
// halves have different substring statistics, so the blend actually
// moves the compression rate):
//   kEmailProvider — fig-15's split: host-reversed addresses at gmail or
//                    yahoo (A) vs every other provider (B).
//   kWikiFlavor    — plain titles (A) vs decorated ones (B): List_of_
//                    prefixes and parenthesized disambiguations, whose
//                    digits/punctuation shift the character mix.
//   kUrlStyle      — path-style URLs (A) vs query-style ones carrying
//                    "?id=...&ref=..." tails (B). The predicate is
//                    orthogonal to the URL's host prefix, so both parts
//                    span the whole key range — which is what lets a
//                    sharded manager see *localized* drift when only one
//                    range's traffic blends toward B.
//   kHotspotMigrate— the partition is *positional*, not syntactic: the
//                    sorted URL corpus is split at its median, A = the
//                    lower half of the key space, B = the upper half.
//                    The blend therefore migrates a traffic hotspot
//                    across the key range — the workload that skews a
//                    fixed-boundary router (RouterVersion boundaries
//                    derived from phase-0 traffic leave the final phases
//                    piled onto the last shard) and that online
//                    re-balancing exists to absorb.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hope {

enum class DriftModel {
  kEmailProvider,
  kWikiFlavor,
  kUrlStyle,
  kHotspotMigrate,
};

const char* DriftModelName(DriftModel model);

struct DriftOptions {
  size_t keys_per_phase = 20000;
  size_t num_phases = 5;   ///< phase 0 is pure A, the last pure B
  uint64_t seed = 42;
  size_t corpus_size = 0;  ///< keys to generate; 0 = 2 * keys_per_phase
  DriftModel model = DriftModel::kEmailProvider;
};

class DriftingWorkload {
 public:
  explicit DriftingWorkload(DriftOptions options = {});

  size_t num_phases() const { return options_.num_phases; }
  DriftModel model() const { return options_.model; }

  /// Fraction of phase-`p` keys drawn from part B: p / (num_phases - 1).
  double MixFraction(size_t phase) const;

  /// Deterministic key stream for one phase (keys repeat across phases;
  /// within a phase each pool is cycled in shuffled order).
  std::vector<std::string> Phase(size_t phase) const;

  const std::vector<std::string>& part_a() const { return part_a_; }
  const std::vector<std::string>& part_b() const { return part_b_; }

 private:
  DriftOptions options_;
  std::vector<std::string> part_a_;
  std::vector<std::string> part_b_;
};

}  // namespace hope
