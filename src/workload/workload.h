// YCSB-style workload generation (§7.1) and measurement helpers.
//
// The paper uses YCSB workloads C (point lookups) and E (range scans)
// under a Zipf-distributed key popularity, with the YCSB keys replaced
// one-to-one by dataset keys so the skew carries over. Queries here are
// pre-generated index streams into the loaded key vector.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/zipf.h"

namespace hope {

/// Wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Pre-generated YCSB query stream: indices into the loaded key vector,
/// drawn from a scrambled-Zipfian popularity distribution (workload C/E).
std::vector<uint32_t> GenerateZipfQueries(size_t num_keys, size_t num_queries,
                                          uint64_t seed, double theta = 0.99);

/// YCSB-E scan lengths: uniform in [1, max_len] as in the YCSB spec.
std::vector<uint32_t> GenerateScanLengths(size_t num_queries, uint32_t max_len,
                                          uint64_t seed);

/// Splits a loaded dataset into bulk-load keys and insert keys for the
/// insert benchmarks: the first `load_fraction` of the keys are loaded,
/// the rest measured as inserts.
struct InsertSplit {
  std::vector<std::string> load;
  std::vector<std::string> inserts;
};
InsertSplit SplitForInserts(const std::vector<std::string>& keys,
                            double load_fraction);

}  // namespace hope
