#include "workload/drift.h"

#include <algorithm>
#include <random>

#include "datasets/datasets.h"

namespace hope {

DriftingWorkload::DriftingWorkload(DriftOptions options) : options_(options) {
  if (options_.num_phases < 2) options_.num_phases = 2;
  if (options_.keys_per_phase == 0) options_.keys_per_phase = 1;
  size_t corpus = options_.corpus_size ? options_.corpus_size
                                       : 2 * options_.keys_per_phase;
  auto emails = GenerateEmails(corpus, options_.seed);
  for (auto& k : emails) {
    // The fig-15 provider split: host-reversed addresses start with the
    // provider domain.
    if (k.rfind("com.gmail@", 0) == 0 || k.rfind("com.yahoo@", 0) == 0)
      part_a_.push_back(std::move(k));
    else
      part_b_.push_back(std::move(k));
  }
  // The Zipf provider head guarantees both splits are populated for any
  // reasonable corpus size, but keep degenerate inputs safe.
  if (part_a_.empty()) part_a_.push_back("com.gmail@fallback");
  if (part_b_.empty()) part_b_.push_back("com.aol@fallback");
}

double DriftingWorkload::MixFraction(size_t phase) const {
  phase = std::min(phase, options_.num_phases - 1);
  return static_cast<double>(phase) /
         static_cast<double>(options_.num_phases - 1);
}

std::vector<std::string> DriftingWorkload::Phase(size_t phase) const {
  std::mt19937_64 rng(options_.seed ^ (0xD1F7ull * (phase + 1)));
  double frac_b = MixFraction(phase);

  // Shuffled cursor over each pool so a phase cycles through distinct
  // keys before repeating any.
  std::vector<uint32_t> order_a(part_a_.size()), order_b(part_b_.size());
  for (uint32_t i = 0; i < order_a.size(); i++) order_a[i] = i;
  for (uint32_t i = 0; i < order_b.size(); i++) order_b[i] = i;
  std::shuffle(order_a.begin(), order_a.end(), rng);
  std::shuffle(order_b.begin(), order_b.end(), rng);

  std::vector<std::string> keys;
  keys.reserve(options_.keys_per_phase);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  size_t ia = 0, ib = 0;
  for (size_t i = 0; i < options_.keys_per_phase; i++) {
    if (coin(rng) < frac_b) {
      keys.push_back(part_b_[order_b[ib++ % order_b.size()]]);
    } else {
      keys.push_back(part_a_[order_a[ia++ % order_a.size()]]);
    }
  }
  return keys;
}

}  // namespace hope
