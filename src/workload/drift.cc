#include "workload/drift.h"

#include <algorithm>
#include <iterator>
#include <random>

#include "datasets/datasets.h"

namespace hope {

namespace {

std::vector<std::string> GenerateCorpus(DriftModel model, size_t n,
                                        uint64_t seed) {
  switch (model) {
    case DriftModel::kEmailProvider: return GenerateEmails(n, seed);
    case DriftModel::kWikiFlavor: return GenerateWikiTitles(n, seed);
    case DriftModel::kUrlStyle: return GenerateUrls(n, seed);
    case DriftModel::kHotspotMigrate: return GenerateUrls(n, seed);
  }
  return {};
}

/// True = part B (the distribution the blend drifts toward).
bool InPartB(DriftModel model, const std::string& key) {
  switch (model) {
    case DriftModel::kEmailProvider:
      // The fig-15 provider split: host-reversed addresses start with
      // the provider domain. A = gmail + yahoo, B = everything else.
      return key.rfind("com.gmail@", 0) != 0 &&
             key.rfind("com.yahoo@", 0) != 0;
    case DriftModel::kWikiFlavor:
      // A = plain word titles, B = decorated ones (list prefixes and
      // parenthesized years/disambiguations).
      return key.rfind("List_of_", 0) == 0 ||
             key.find('(') != std::string::npos;
    case DriftModel::kUrlStyle:
      // A = path-style URLs, B = query-style tails.
      return key.find('?') != std::string::npos;
    case DriftModel::kHotspotMigrate:
      // Positional split handled in the constructor (the predicate needs
      // the corpus median); never reached here.
      return false;
  }
  return false;
}

/// Synthetic stand-ins when a degenerate corpus leaves a part empty
/// (e.g. a corpus of one or two keys); shaped like the model's real part
/// members so downstream encode/build code sees plausible keys.
std::string FallbackKey(DriftModel model, bool part_b) {
  switch (model) {
    case DriftModel::kEmailProvider:
      return part_b ? "com.aol@fallback" : "com.gmail@fallback";
    case DriftModel::kWikiFlavor:
      return part_b ? "List_of_fallbacks_(2020)" : "Fallback_article";
    case DriftModel::kUrlStyle:
      return part_b ? "http://www.fallback.com/item?id=0&ref=none"
                    : "http://www.fallback.com/page";
    case DriftModel::kHotspotMigrate:
      // The split is positional; '!' sorts below and '~' above any
      // alphanumeric host, so the fallbacks straddle every real URL.
      return part_b ? "http://~fallback/page" : "http://!fallback/page";
  }
  return "fallback";
}

}  // namespace

const char* DriftModelName(DriftModel model) {
  switch (model) {
    case DriftModel::kEmailProvider: return "email-provider";
    case DriftModel::kWikiFlavor: return "wiki-flavor";
    case DriftModel::kUrlStyle: return "url-style";
    case DriftModel::kHotspotMigrate: return "hotspot-migrate";
  }
  return "?";
}

DriftingWorkload::DriftingWorkload(DriftOptions options) : options_(options) {
  if (options_.num_phases < 2) options_.num_phases = 2;
  if (options_.keys_per_phase == 0) options_.keys_per_phase = 1;
  size_t corpus = options_.corpus_size ? options_.corpus_size
                                       : 2 * options_.keys_per_phase;
  auto keys = GenerateCorpus(options_.model, corpus, options_.seed);
  if (options_.model == DriftModel::kHotspotMigrate) {
    // Positional split at the median: A = the lower half of the key
    // space, B = the upper half, so the blend walks a hotspot across
    // the key range instead of changing the keys' shape.
    std::sort(keys.begin(), keys.end());
    size_t mid = keys.size() / 2;
    part_a_.assign(std::make_move_iterator(keys.begin()),
                   std::make_move_iterator(keys.begin() + mid));
    part_b_.assign(std::make_move_iterator(keys.begin() + mid),
                   std::make_move_iterator(keys.end()));
  } else {
    for (auto& k : keys) {
      if (InPartB(options_.model, k))
        part_b_.push_back(std::move(k));
      else
        part_a_.push_back(std::move(k));
    }
  }
  // Every model's generator populates both splits for any reasonable
  // corpus size, but keep degenerate inputs safe.
  if (part_a_.empty()) part_a_.push_back(FallbackKey(options_.model, false));
  if (part_b_.empty()) part_b_.push_back(FallbackKey(options_.model, true));
}

double DriftingWorkload::MixFraction(size_t phase) const {
  phase = std::min(phase, options_.num_phases - 1);
  return static_cast<double>(phase) /
         static_cast<double>(options_.num_phases - 1);
}

std::vector<std::string> DriftingWorkload::Phase(size_t phase) const {
  std::mt19937_64 rng(options_.seed ^ (0xD1F7ull * (phase + 1)));
  double frac_b = MixFraction(phase);

  // Shuffled cursor over each pool so a phase cycles through distinct
  // keys before repeating any.
  std::vector<uint32_t> order_a(part_a_.size()), order_b(part_b_.size());
  for (uint32_t i = 0; i < order_a.size(); i++) order_a[i] = i;
  for (uint32_t i = 0; i < order_b.size(); i++) order_b[i] = i;
  std::shuffle(order_a.begin(), order_a.end(), rng);
  std::shuffle(order_b.begin(), order_b.end(), rng);

  std::vector<std::string> keys;
  keys.reserve(options_.keys_per_phase);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  size_t ia = 0, ib = 0;
  for (size_t i = 0; i < options_.keys_per_phase; i++) {
    if (coin(rng) < frac_b) {
      keys.push_back(part_b_[order_b[ib++ % order_b.size()]]);
    } else {
      keys.push_back(part_a_[order_a[ia++ % order_a.size()]]);
    }
  }
  return keys;
}

}  // namespace hope
