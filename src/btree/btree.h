// In-memory B+tree with out-of-node string keys (the paper's TLX/STX
// configuration, §5): 16-slot nodes storing 8-byte key references and
// 8-byte value/child pointers, leaf chaining for range scans. Keys are
// owned by an internal arena with stable addresses; MemoryBytes() counts
// nodes plus key bytes, since the index stores the keys (Fig. 7: B+trees
// store full keys and benefit most from key compression).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace hope {

class BTree {
 public:
  static constexpr int kSlots = 16;

  BTree() = default;
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts a key/value pair; overwrites the value if the key exists.
  void Insert(std::string_view key, uint64_t value);

  /// Point lookup.
  bool Lookup(std::string_view key, uint64_t* value) const;

  /// Removes a key with classic borrow/merge rebalancing (nodes stay at
  /// least half full, the tree shrinks when the root empties). Returns
  /// false if the key was absent. Note: the interned key bytes stay in
  /// the append-only arena; a delete-heavy long-lived index would pair
  /// this with arena compaction.
  bool Erase(std::string_view key);

  /// Scans up to `count` entries starting at the first key >= start.
  /// Returns the number of entries produced.
  size_t Scan(std::string_view start, size_t count,
              std::vector<uint64_t>* out) const;

  size_t size() const { return size_; }

  /// Nodes + stored key bytes.
  size_t MemoryBytes() const;

  /// Tree height (levels), for diagnostics.
  int Height() const;

  /// Validates B+tree invariants (ordering, fill, leaf chain); returns an
  /// error description or "" if consistent. Test hook.
  std::string CheckInvariants() const;

 private:
  struct Node {
    bool leaf;
    uint16_t count = 0;
  };

  struct InnerNode : Node {
    // children[i] holds keys < keys[i]; children[count] holds the rest.
    const std::string* keys[kSlots];
    Node* children[kSlots + 1];
  };

  struct LeafNode : Node {
    const std::string* keys[kSlots];
    uint64_t values[kSlots];
    LeafNode* next = nullptr;
  };

  struct SplitResult {
    Node* right = nullptr;           // nullptr if no split happened
    const std::string* separator = nullptr;  // smallest key in `right`
  };

  static constexpr int kMinFill = kSlots / 2;

  const std::string* Intern(std::string_view key);
  SplitResult InsertRec(Node* node, std::string_view key, uint64_t value);
  bool EraseRec(Node* node, std::string_view key);
  void RebalanceChild(InnerNode* parent, int idx);
  const LeafNode* FindLeaf(std::string_view key) const;
  void FreeRec(Node* node);
  std::string CheckRec(const Node* node, const std::string** lo,
                       const std::string** hi, int depth,
                       int expect_depth) const;

  Node* root_ = nullptr;
  std::deque<std::string> arena_;  // stable key storage
  size_t size_ = 0;
  size_t key_bytes_ = 0;
  size_t node_bytes_ = 0;
};

}  // namespace hope
