#include "btree/btree.h"

#include <algorithm>
#include <cassert>

namespace hope {

namespace {

/// First index in [0, count) with *keys[i] > key (upper bound).
template <typename KeyArray>
int UpperBound(const KeyArray& keys, int count, std::string_view key) {
  int lo = 0, hi = count;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (std::string_view(*keys[mid]) <= key)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

/// First index in [0, count) with *keys[i] >= key (lower bound).
template <typename KeyArray>
int LowerBound(const KeyArray& keys, int count, std::string_view key) {
  int lo = 0, hi = count;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (std::string_view(*keys[mid]) < key)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace

BTree::~BTree() {
  if (root_) FreeRec(root_);
}

void BTree::FreeRec(Node* node) {
  if (!node->leaf) {
    auto* inner = static_cast<InnerNode*>(node);
    for (int i = 0; i <= inner->count; i++) FreeRec(inner->children[i]);
    delete inner;
  } else {
    delete static_cast<LeafNode*>(node);
  }
}

const std::string* BTree::Intern(std::string_view key) {
  arena_.emplace_back(key);
  key_bytes_ += key.size();
  return &arena_.back();
}

void BTree::Insert(std::string_view key, uint64_t value) {
  if (!root_) {
    auto* leaf = new LeafNode();
    leaf->leaf = true;
    leaf->keys[0] = Intern(key);
    leaf->values[0] = value;
    leaf->count = 1;
    root_ = leaf;
    node_bytes_ += sizeof(LeafNode);
    size_ = 1;
    return;
  }
  SplitResult split = InsertRec(root_, key, value);
  if (split.right) {
    auto* new_root = new InnerNode();
    new_root->leaf = false;
    new_root->keys[0] = split.separator;
    new_root->children[0] = root_;
    new_root->children[1] = split.right;
    new_root->count = 1;
    root_ = new_root;
    node_bytes_ += sizeof(InnerNode);
  }
}

BTree::SplitResult BTree::InsertRec(Node* node, std::string_view key,
                                    uint64_t value) {
  if (node->leaf) {
    auto* leaf = static_cast<LeafNode*>(node);
    int pos = LowerBound(leaf->keys, leaf->count, key);
    if (pos < leaf->count && *leaf->keys[pos] == key) {
      leaf->values[pos] = value;  // overwrite
      return {};
    }
    if (leaf->count < kSlots) {
      for (int i = leaf->count; i > pos; i--) {
        leaf->keys[i] = leaf->keys[i - 1];
        leaf->values[i] = leaf->values[i - 1];
      }
      leaf->keys[pos] = Intern(key);
      leaf->values[pos] = value;
      leaf->count++;
      size_++;
      return {};
    }
    // Split the leaf, then insert into the proper half.
    auto* right = new LeafNode();
    right->leaf = true;
    node_bytes_ += sizeof(LeafNode);
    int half = kSlots / 2;
    right->count = static_cast<uint16_t>(kSlots - half);
    for (int i = 0; i < right->count; i++) {
      right->keys[i] = leaf->keys[half + i];
      right->values[i] = leaf->values[half + i];
    }
    leaf->count = static_cast<uint16_t>(half);
    right->next = leaf->next;
    leaf->next = right;
    if (pos <= half)
      InsertRec(leaf, key, value);
    else
      InsertRec(right, key, value);
    return {right, right->keys[0]};
  }

  auto* inner = static_cast<InnerNode*>(node);
  int idx = UpperBound(inner->keys, inner->count, key);
  SplitResult child_split = InsertRec(inner->children[idx], key, value);
  if (!child_split.right) return {};

  if (inner->count < kSlots) {
    for (int i = inner->count; i > idx; i--) {
      inner->keys[i] = inner->keys[i - 1];
      inner->children[i + 1] = inner->children[i];
    }
    inner->keys[idx] = child_split.separator;
    inner->children[idx + 1] = child_split.right;
    inner->count++;
    return {};
  }
  // Split the inner node: middle key moves up.
  auto* right = new InnerNode();
  right->leaf = false;
  node_bytes_ += sizeof(InnerNode);
  int mid = kSlots / 2;
  const std::string* up_key = inner->keys[mid];
  right->count = static_cast<uint16_t>(kSlots - mid - 1);
  for (int i = 0; i < right->count; i++) {
    right->keys[i] = inner->keys[mid + 1 + i];
    right->children[i] = inner->children[mid + 1 + i];
  }
  right->children[right->count] = inner->children[kSlots];
  inner->count = static_cast<uint16_t>(mid);
  // Insert the pending separator into the proper half.
  InnerNode* target = idx <= mid ? inner : right;
  int tpos = idx <= mid ? idx : idx - mid - 1;
  for (int i = target->count; i > tpos; i--) {
    target->keys[i] = target->keys[i - 1];
    target->children[i + 1] = target->children[i];
  }
  target->keys[tpos] = child_split.separator;
  target->children[tpos + 1] = child_split.right;
  target->count++;
  return {right, up_key};
}

bool BTree::Erase(std::string_view key) {
  if (!root_) return false;
  if (!EraseRec(root_, key)) return false;
  size_--;
  // Shrink the root: an empty leaf root disappears, an inner root with a
  // single child is replaced by that child.
  if (root_->leaf) {
    if (root_->count == 0) {
      delete static_cast<LeafNode*>(root_);
      node_bytes_ -= sizeof(LeafNode);
      root_ = nullptr;
    }
  } else if (root_->count == 0) {
    Node* child = static_cast<InnerNode*>(root_)->children[0];
    delete static_cast<InnerNode*>(root_);
    node_bytes_ -= sizeof(InnerNode);
    root_ = child;
  }
  return true;
}

bool BTree::EraseRec(Node* node, std::string_view key) {
  if (node->leaf) {
    auto* leaf = static_cast<LeafNode*>(node);
    int pos = LowerBound(leaf->keys, leaf->count, key);
    if (pos >= leaf->count || *leaf->keys[pos] != key) return false;
    for (int i = pos; i + 1 < leaf->count; i++) {
      leaf->keys[i] = leaf->keys[i + 1];
      leaf->values[i] = leaf->values[i + 1];
    }
    leaf->count--;
    return true;
  }
  auto* inner = static_cast<InnerNode*>(node);
  int idx = UpperBound(inner->keys, inner->count, key);
  if (!EraseRec(inner->children[idx], key)) return false;
  if (inner->children[idx]->count < kMinFill) RebalanceChild(inner, idx);
  return true;
}

void BTree::RebalanceChild(InnerNode* parent, int idx) {
  Node* child = parent->children[idx];
  Node* left = idx > 0 ? parent->children[idx - 1] : nullptr;
  Node* right = idx < parent->count ? parent->children[idx + 1] : nullptr;

  if (child->leaf) {
    auto* c = static_cast<LeafNode*>(child);
    if (left && left->count > kMinFill) {
      // Borrow the left sibling's last entry.
      auto* l = static_cast<LeafNode*>(left);
      for (int i = c->count; i > 0; i--) {
        c->keys[i] = c->keys[i - 1];
        c->values[i] = c->values[i - 1];
      }
      c->keys[0] = l->keys[l->count - 1];
      c->values[0] = l->values[l->count - 1];
      c->count++;
      l->count--;
      parent->keys[idx - 1] = c->keys[0];
      return;
    }
    if (right && right->count > kMinFill) {
      // Borrow the right sibling's first entry.
      auto* r = static_cast<LeafNode*>(right);
      c->keys[c->count] = r->keys[0];
      c->values[c->count] = r->values[0];
      c->count++;
      for (int i = 0; i + 1 < r->count; i++) {
        r->keys[i] = r->keys[i + 1];
        r->values[i] = r->values[i + 1];
      }
      r->count--;
      parent->keys[idx] = r->keys[0];
      return;
    }
    // Merge with a sibling (always fits: < kMinFill + <= kMinFill slots).
    auto* dst = left ? static_cast<LeafNode*>(left) : c;
    auto* src = left ? c : static_cast<LeafNode*>(right);
    int sep = left ? idx - 1 : idx;
    for (int i = 0; i < src->count; i++) {
      dst->keys[dst->count + i] = src->keys[i];
      dst->values[dst->count + i] = src->values[i];
    }
    dst->count = static_cast<uint16_t>(dst->count + src->count);
    dst->next = src->next;
    delete src;
    node_bytes_ -= sizeof(LeafNode);
    for (int i = sep; i + 1 < parent->count; i++) {
      parent->keys[i] = parent->keys[i + 1];
      parent->children[i + 1] = parent->children[i + 2];
    }
    parent->count--;
    return;
  }

  auto* c = static_cast<InnerNode*>(child);
  if (left && left->count > kMinFill) {
    // Rotate through the parent: parent separator moves down, the left
    // sibling's last key moves up.
    auto* l = static_cast<InnerNode*>(left);
    for (int i = c->count; i > 0; i--) c->keys[i] = c->keys[i - 1];
    for (int i = c->count + 1; i > 0; i--)
      c->children[i] = c->children[i - 1];
    c->keys[0] = parent->keys[idx - 1];
    c->children[0] = l->children[l->count];
    c->count++;
    parent->keys[idx - 1] = l->keys[l->count - 1];
    l->count--;
    return;
  }
  if (right && right->count > kMinFill) {
    auto* r = static_cast<InnerNode*>(right);
    c->keys[c->count] = parent->keys[idx];
    c->children[c->count + 1] = r->children[0];
    c->count++;
    parent->keys[idx] = r->keys[0];
    for (int i = 0; i + 1 < r->count; i++) r->keys[i] = r->keys[i + 1];
    for (int i = 0; i < r->count; i++) r->children[i] = r->children[i + 1];
    r->count--;
    return;
  }
  // Merge inner nodes around the parent separator.
  auto* dst = left ? static_cast<InnerNode*>(left) : c;
  auto* src = left ? c : static_cast<InnerNode*>(right);
  int sep = left ? idx - 1 : idx;
  dst->keys[dst->count] = parent->keys[sep];
  for (int i = 0; i < src->count; i++)
    dst->keys[dst->count + 1 + i] = src->keys[i];
  for (int i = 0; i <= src->count; i++)
    dst->children[dst->count + 1 + i] = src->children[i];
  dst->count = static_cast<uint16_t>(dst->count + 1 + src->count);
  delete src;
  node_bytes_ -= sizeof(InnerNode);
  for (int i = sep; i + 1 < parent->count; i++) {
    parent->keys[i] = parent->keys[i + 1];
    parent->children[i + 1] = parent->children[i + 2];
  }
  parent->count--;
}

const BTree::LeafNode* BTree::FindLeaf(std::string_view key) const {
  if (!root_) return nullptr;
  const Node* node = root_;
  while (!node->leaf) {
    const auto* inner = static_cast<const InnerNode*>(node);
    node = inner->children[UpperBound(inner->keys, inner->count, key)];
  }
  return static_cast<const LeafNode*>(node);
}

bool BTree::Lookup(std::string_view key, uint64_t* value) const {
  const LeafNode* leaf = FindLeaf(key);
  if (!leaf) return false;
  int pos = LowerBound(leaf->keys, leaf->count, key);
  if (pos < leaf->count && *leaf->keys[pos] == key) {
    if (value) *value = leaf->values[pos];
    return true;
  }
  return false;
}

size_t BTree::Scan(std::string_view start, size_t count,
                   std::vector<uint64_t>* out) const {
  const LeafNode* leaf = FindLeaf(start);
  if (!leaf) return 0;
  size_t produced = 0;
  int pos = LowerBound(leaf->keys, leaf->count, start);
  while (leaf && produced < count) {
    for (; pos < leaf->count && produced < count; pos++) {
      if (out) out->push_back(leaf->values[pos]);
      produced++;
    }
    leaf = leaf->next;
    pos = 0;
  }
  return produced;
}

size_t BTree::MemoryBytes() const { return node_bytes_ + key_bytes_; }

int BTree::Height() const {
  int h = 0;
  const Node* node = root_;
  while (node) {
    h++;
    if (node->leaf) break;
    node = static_cast<const InnerNode*>(node)->children[0];
  }
  return h;
}

std::string BTree::CheckRec(const Node* node, const std::string** lo,
                            const std::string** hi, int depth,
                            int expect_depth) const {
  if (node->leaf) {
    if (depth != expect_depth) return "leaves at different depths";
    const auto* leaf = static_cast<const LeafNode*>(node);
    if (leaf->count == 0) return "empty leaf";
    for (int i = 0; i + 1 < leaf->count; i++)
      if (!(*leaf->keys[i] < *leaf->keys[i + 1]))
        return "leaf keys out of order";
    if (*lo && !(**lo <= *leaf->keys[0])) return "leaf below lower bound";
    if (*hi && !(*leaf->keys[leaf->count - 1] < **hi))
      return "leaf above upper bound";
    return "";
  }
  const auto* inner = static_cast<const InnerNode*>(node);
  if (inner->count == 0) return "empty inner node";
  for (int i = 0; i + 1 < inner->count; i++)
    if (!(*inner->keys[i] < *inner->keys[i + 1]))
      return "inner keys out of order";
  for (int i = 0; i <= inner->count; i++) {
    const std::string* clo = i == 0 ? *lo : inner->keys[i - 1];
    const std::string* chi = i == inner->count ? *hi : inner->keys[i];
    std::string err =
        CheckRec(inner->children[i], &clo, &chi, depth + 1, expect_depth);
    if (!err.empty()) return err;
  }
  return "";
}

std::string BTree::CheckInvariants() const {
  if (!root_) return "";
  int depth = Height();
  const std::string* lo = nullptr;
  const std::string* hi = nullptr;
  return CheckRec(root_, &lo, &hi, 1, depth);
}

}  // namespace hope
