// Epoch-based reclamation (EBR) for read-mostly hot-swap publication.
//
// The dynamic layer publishes immutable versions (dictionary Versions,
// RouterVersions) through a single atomic raw pointer: readers load the
// pointer wait-free, writers swap in a successor and must not free the
// predecessor while any reader still dereferences it. shared_ptr solved
// lifetime but not the hot path (libstdc++-12's atomic<shared_ptr>
// _Sp_atomic futex protocol trips TSan under publish/acquire
// contention), and retain-forever leaks on long-running servers. EBR is
// the standard lock-free fix (cf. RCU grace periods and the epoch
// managers of the Bw-tree line): readers pin the global epoch for the
// duration of each access, writers retire superseded objects, and a
// retired object is freed only after the epoch has advanced twice past
// its retire epoch — by which point every reader that could have seen it
// has unpinned.
//
// Protocol (3-epoch EBR, Fraser-style):
//   - Each reader thread owns a slot with an atomic pinned-epoch field
//     (0 = not in a guard). Guard construction stores the current global
//     epoch into the slot (seq_cst); destruction stores 0. Guards nest:
//     only the outermost pair pins/unpins.
//   - Retire(ptr, deleter) tags the object with the current global epoch
//     and pushes it onto the limbo list.
//   - The epoch advances G -> G+1 only when every pinned slot is pinned
//     at G. Objects tagged <= G-2 are freed: any reader that could hold
//     one was pinned at its tag epoch or earlier, and two advances prove
//     all such readers have since unpinned.
//
// Memory-order contract for the protected pointer: publish with
// memory_order_seq_cst stores and read (inside a Guard) with seq_cst
// loads. The guard's pin is a seq_cst store, so in the single total
// order either the writer's slot scan sees the pin (and refuses to
// advance past it) or the reader's pointer load is ordered after the
// swap (and sees the successor, never the retired pointer).
//
// Readers are wait-free: a pin is one slot lookup plus two seq_cst
// atomics (plus one refresh store when an advance races the pin - the
// stale pin would merely stall reclamation, never break safety).
// Writers serialize on a mutex; Retire is O(slots) for the advance scan.
// A thread's slot is claimed on its first Guard against a reclaimer
// (a one-time mutex acquisition; every later pin is wait-free) and
// released when the thread exits. Released slots are recycled by new
// threads, and Retire/TryReclaim/Drain compact the list down to a small
// recycling cushion, so the scan is bounded by the number of
// *concurrent* reader threads plus that cushion — not by the historical
// peak, and not by the number of threads ever seen.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "telemetry/registry.h"

namespace hope::telemetry {
class TraceLog;
}

namespace hope::ebr {

class EpochReclaimer {
 public:
  EpochReclaimer();
  /// Drains: retires nothing new, waits for every in-flight guard to
  /// exit, and runs every pending deleter. Guards and Retire calls
  /// against a destroyed reclaimer are undefined (callers own that
  /// ordering; the dynamic managers drain in their own destructors
  /// first, so their readers never reach a dead reclaimer).
  ~EpochReclaimer();

  EpochReclaimer(const EpochReclaimer&) = delete;
  EpochReclaimer& operator=(const EpochReclaimer&) = delete;

  struct Slot;   ///< opaque per-thread epoch slot (internal)
  struct State;  ///< opaque shared reclaimer state (internal)

  /// RAII epoch pin. While alive, no object retired at or after the
  /// guard's pin epoch is freed, so a raw pointer loaded from an atomic
  /// (seq_cst) inside the guard stays valid until the guard exits.
  /// Copy what must outlive the guard (e.g. bump a shared_ptr) before
  /// exiting. Guards nest freely within a thread.
  class Guard {
   public:
    explicit Guard(const EpochReclaimer& reclaimer);
    ~Guard();
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    Slot* slot_;
  };

  /// Defers `deleter(ptr)` until every reader that could hold `ptr` has
  /// unpinned. The object must already be unreachable from the published
  /// pointer (swap first, then retire). Never blocks readers; runs any
  /// newly safe deleters before returning.
  ///
  /// Teardown exception: a final retire may leave the pointer published
  /// for stragglers already pinned (their pins predate the retire tag
  /// and block the free), but then the CALLER must guarantee no new
  /// reader pins afterwards — a pin taken after the grace period has
  /// elapsed does not resurrect protection for an already-freeable
  /// object. The dynamic managers get this from their own lifetime
  /// contract (no calls into a dying object).
  void Retire(void* ptr, void (*deleter)(void*));

  /// Generalized retire: defers an arbitrary thunk (e.g. releasing a
  /// shared_ptr reference) until the grace period passes.
  void Retire(std::function<void()> deleter);

  /// Convenience: Retire(ptr, delete-as-T).
  template <typename T>
  void RetireDelete(const T* ptr) {
    Retire(const_cast<T*>(ptr),
           [](void* p) { delete static_cast<T*>(p); });
  }

  /// One advance-and-reclaim attempt (writers call this implicitly on
  /// every Retire; pollers call it so an idle period still frees the
  /// limbo list). Returns the number of objects freed.
  size_t TryReclaim();

  /// Blocks until the limbo list is empty: repeatedly advances the epoch
  /// and frees, yielding while readers hold pins. Calling Drain from a
  /// thread that itself holds a Guard on this reclaimer deadlocks.
  void Drain();

  /// Lifetime counters (relaxed; exact once writers quiesce).
  uint64_t retired() const;
  uint64_t reclaimed() const;
  /// Objects retired but not yet freed — the live-garbage bound the
  /// stress tests assert stays flat across thousands of publishes.
  uint64_t pending() const { return retired() - reclaimed(); }

  /// Current global epoch (diagnostics/tests).
  uint64_t global_epoch() const;

  /// Attaches a lifecycle trace sink: successful epoch advances record
  /// kEpochAdvance(a = new epoch) and each reclaim batch records
  /// kEbrReclaim(a = freed, b = still pending). nullptr detaches. The
  /// log must outlive the reclaimer or be detached first; attachment is
  /// an atomic pointer swap, safe against concurrent retires.
  void SetTraceLog(telemetry::TraceLog* trace);

  /// Registers the reclaimer's counters (hope_ebr_retired_total,
  /// hope_ebr_reclaimed_total) and gauges (hope_ebr_pending,
  /// hope_ebr_epoch) on `registry` under the given labels; returns the
  /// RAII handles (empty when `registry` is null). The caller keeps them
  /// alive no longer than the reclaimer.
  [[nodiscard]] std::vector<telemetry::MetricRegistry::Registration>
  RegisterMetrics(telemetry::MetricRegistry* registry,
                  telemetry::Labels labels) const;

  /// Slots currently in the list, owned or released (diagnostics/tests:
  /// the thread-churn regression asserts this stays bounded by live
  /// readers plus the compaction cushion, not the historical peak).
  size_t slot_count() const;

 private:
  /// State is shared so a thread exiting after the reclaimer is gone can
  /// still release its slot through a weak_ptr without touching freed
  /// memory.
  std::shared_ptr<State> state_;
};

}  // namespace hope::ebr
