#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace hope::internal {

void CheckFailed(const char* expr, const char* file, int line,
                 const char* msg) {
  // One unbuffered write so the message survives the abort even when
  // stderr is block-buffered (piped ctest output, fuzzer artifacts).
  char buf[512];
  int n = std::snprintf(buf, sizeof(buf), "HOPE_CHECK failed: %s%s%s @ %s:%d\n",
                        expr, msg != nullptr ? " — " : "",
                        msg != nullptr ? msg : "", file, line);
  if (n > 0) {
    std::fwrite(buf, 1, static_cast<size_t>(n) < sizeof(buf)
                            ? static_cast<size_t>(n)
                            : sizeof(buf) - 1,
                stderr);
    std::fflush(stderr);
  }
  std::abort();
}

}  // namespace hope::internal
