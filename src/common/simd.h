// SIMD kernels for the encode hot path, with compile-time tier dispatch.
//
// Tiers (highest available wins):
//   AVX2 / SSE2  — x86: byte-broadcast compare + movemask child scans
//   NEON         — aarch64: vceqq + shrn-nibble movemask equivalent
//   portable     — branch-free / SWAR plain C++ (always correct)
// Defining HOPE_NO_SIMD (cmake -DHOPE_NO_SIMD=ON) disables the intrinsic
// tiers so the portable path can be built and tested on any machine.
//
// Every dispatched kernel has a naive reference twin under
// hope::simd::scalar; the equivalence suite pins dispatched == scalar in
// the same binary, and the HOPE_NO_SIMD CI row re-runs the whole suite on
// the portable tier, so neither path can rot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string_view>

#if !defined(HOPE_NO_SIMD)
#if defined(__AVX2__)
#define HOPE_SIMD_AVX2 1
#endif
#if defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#define HOPE_SIMD_SSE2 1
#include <emmintrin.h>
#endif
#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#define HOPE_SIMD_NEON 1
#include <arm_neon.h>
#endif
#if defined(__x86_64__) || defined(_M_X64)
#define HOPE_SIMD_DYNAMIC_POPCNT 1
#include <cpuid.h>
#endif
#endif  // !HOPE_NO_SIMD

namespace hope::simd {

/// Human-readable dispatch tier, for bench rows and version strings.
constexpr const char* TierName() {
#if defined(HOPE_SIMD_AVX2)
  return "avx2";
#elif defined(HOPE_SIMD_SSE2)
  return "sse2";
#elif defined(HOPE_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

/// Popcount that never lowers to a libgcc call: builds without -mpopcnt
/// would otherwise pay a function call per rank in the trie descent.
inline int PopCount64(uint64_t x) {
#if defined(__POPCNT__) || defined(__aarch64__) || defined(__ARM_NEON)
  return __builtin_popcountll(x);
#else
  x -= (x >> 1) & 0x5555555555555555ull;
  x = (x & 0x3333333333333333ull) + ((x >> 2) & 0x3333333333333333ull);
  x = (x + (x >> 4)) & 0x0F0F0F0F0F0F0F0Full;
  return static_cast<int>((x * 0x0101010101010101ull) >> 56);
#endif
}

// Runtime POPCNT dispatch (x86-64). The portable build targets baseline
// x86-64, where __builtin_popcountll lowers to the SWAR sequence above —
// a ~12-cycle dependency chain sitting on the trie descent's critical
// path. Virtually every x86 CPU since 2008 has the POPCNT instruction;
// inline asm emits it without -mpopcnt (the binary stays baseline: the
// instruction only executes behind the cpuid check). Hot loops template
// on HavePopcnt() once per span, so each use inlines to one instruction
// with no call and no per-use branch.
#if defined(HOPE_SIMD_DYNAMIC_POPCNT)
inline bool HavePopcnt() {
  // HOPE_POPCNT=never is the A/B escape hatch (resolved once at first
  // use, like the cpuid probe). The Hw and portable template legs differ
  // only in which popcount they inline, and the two popcounts are pinned
  // equal by the SIMD unit tests.
  static const bool have = [] {
    if (const char* env = std::getenv("HOPE_POPCNT"))
      if (env[0] == 'n') return false;
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    return __get_cpuid(1, &eax, &ebx, &ecx, &edx) != 0 &&
           (ecx & (1u << 23)) != 0;
  }();
  return have;
}
inline int PopCount64Hw(uint64_t x) {
  uint64_t r;
  asm("popcntq %1, %0" : "=r"(r) : "rm"(x));
  return static_cast<int>(r);
}
#else
inline bool HavePopcnt() { return false; }
inline int PopCount64Hw(uint64_t x) { return PopCount64(x); }
#endif

/// Popcount for hot loops templated on a HavePopcnt() probe: the caller
/// hoists the runtime check out of its loop, the body inlines the picked
/// form. Hw == true requires HavePopcnt() (checked by the caller).
template <bool Hw>
inline int PopCount64T(uint64_t x) {
  return Hw ? PopCount64Hw(x) : PopCount64(x);
}

/// Hints the prefetcher at the next pointer of an interleaved descent.
inline void PrefetchRead(const void* p) { __builtin_prefetch(p, 0, 3); }

// ---------------------------------------------------------------------------
// Naive reference kernels. Correct by inspection; the equivalence tests
// compare every dispatched kernel against these in-process.
// ---------------------------------------------------------------------------
namespace scalar {

/// Index of `b` within keys[0, n), or -1.
inline int FindByteEq(const uint8_t* keys, int n, uint8_t b) {
  for (int i = 0; i < n; i++)
    if (keys[i] == b) return i;
  return -1;
}

/// Number of bytes in keys[0, n) strictly below `bound` (<= 256).
inline int CountBytesLt(const uint8_t* keys, int n, unsigned bound) {
  int c = 0;
  for (int i = 0; i < n; i++) c += keys[i] < bound;
  return c;
}

/// Byte-loop longest common prefix.
inline size_t LcpLen(std::string_view a, std::string_view b) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  size_t i = 0;
  while (i < n && a[i] == b[i]) i++;
  return i;
}

/// Bit-loop rank over a 256-bit MSB-first bitmap: set bits strictly
/// below position b.
inline unsigned Rank256Below(const uint64_t bm[4], unsigned b) {
  unsigned r = 0;
  for (unsigned i = 0; i < b; i++)
    r += (bm[i >> 6] >> (63 - (i & 63))) & 1;
  return r;
}

/// Bit-loop predecessor: largest set position strictly below b, or -1.
inline int PrevSetBit256(const uint64_t bm[4], unsigned b) {
  for (int i = static_cast<int>(b) - 1; i >= 0; i--)
    if ((bm[i >> 6] >> (63 - (i & 63))) & 1) return i;
  return -1;
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// Dispatched kernels.
// ---------------------------------------------------------------------------

/// Index of `b` within the first n (<= 16) sorted keys of a 16-byte
/// array, or -1. The caller guarantees 16 readable bytes (ART Node16
/// stores a full uint8_t keys[16]).
inline int FindByteEq16(const uint8_t* keys, int n, uint8_t b) {
#if defined(HOPE_SIMD_SSE2)
  __m128i k = _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys));
  __m128i eq = _mm_cmpeq_epi8(k, _mm_set1_epi8(static_cast<char>(b)));
  unsigned mask = static_cast<unsigned>(_mm_movemask_epi8(eq));
  mask &= (1u << n) - 1;
  return mask ? __builtin_ctz(mask) : -1;
#elif defined(HOPE_SIMD_NEON)
  uint8x16_t k = vld1q_u8(keys);
  uint8x16_t eq = vceqq_u8(k, vdupq_n_u8(b));
  // Narrow each 8-bit lane to a nibble: lane i of eq maps to bits
  // [4i, 4i+4) of the 64-bit mask.
  uint64_t mask =
      vget_lane_u64(vreinterpret_u64_u8(vshrn_n_u16(vreinterpretq_u16_u8(eq),
                                                    4)),
                    0);
  mask &= n >= 16 ? ~uint64_t{0} : (uint64_t{1} << (4 * n)) - 1;
  return mask ? __builtin_ctzll(mask) >> 2 : -1;
#else
  return scalar::FindByteEq(keys, n, b);
#endif
}

/// Number of keys (first n <= 16 of a 16-byte array) strictly below
/// `bound` (<= 256). With sorted keys this is the predecessor rank.
inline int CountBytesLt16(const uint8_t* keys, int n, unsigned bound) {
  if (bound >= 256) return n;
#if defined(HOPE_SIMD_SSE2)
  // SSE2 has only signed byte compares: bias both sides by 0x80.
  __m128i k = _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys));
  __m128i bias = _mm_set1_epi8(static_cast<char>(0x80));
  __m128i lt = _mm_cmplt_epi8(
      _mm_xor_si128(k, bias),
      _mm_set1_epi8(static_cast<char>(bound ^ 0x80u)));
  unsigned mask = static_cast<unsigned>(_mm_movemask_epi8(lt));
  mask &= (1u << n) - 1;
  return PopCount64(mask);
#elif defined(HOPE_SIMD_NEON)
  uint8x16_t k = vld1q_u8(keys);
  uint8x16_t lt = vcltq_u8(k, vdupq_n_u8(static_cast<uint8_t>(bound)));
  uint64_t mask =
      vget_lane_u64(vreinterpret_u64_u8(vshrn_n_u16(vreinterpretq_u16_u8(lt),
                                                    4)),
                    0);
  mask &= n >= 16 ? ~uint64_t{0} : (uint64_t{1} << (4 * n)) - 1;
  return PopCount64(mask) >> 2;
#else
  return scalar::CountBytesLt(keys, n, bound);
#endif
}

/// Index of `b` within the first n (<= 4) keys of a 4-byte array, or -1.
/// SWAR zero-byte detection — portable, no out-of-bounds read.
inline int FindByteEq4(const uint8_t* keys, int n, uint8_t b) {
  uint32_t w;
  std::memcpy(&w, keys, 4);
  uint32_t x = w ^ (0x01010101u * b);  // matching byte becomes 0x00
  uint32_t zero = (x - 0x01010101u) & ~x & 0x80808080u;
  if (zero == 0) return -1;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  int i = __builtin_clz(zero) >> 3;
#else
  int i = __builtin_ctz(zero) >> 3;
#endif
  return i < n ? i : -1;
}

/// Number of keys (first n <= 4) strictly below `bound` (<= 256);
/// four unrolled compares, branch-free.
inline int CountBytesLt4(const uint8_t* keys, int n, unsigned bound) {
  int c = 0;
  c += (0 < n) & (keys[0] < bound);
  c += (1 < n) & (keys[1] < bound);
  c += (2 < n) & (keys[2] < bound);
  c += (3 < n) & (keys[3] < bound);
  return c;
}

/// Word-at-a-time longest common prefix: XOR eight bytes per step, locate
/// the first differing byte with a count-zeros on the mismatch word.
inline size_t LcpLen(std::string_view a, std::string_view b) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  size_t i = 0;
  while (i + 8 <= n) {
    uint64_t wa, wb;
    std::memcpy(&wa, a.data() + i, 8);
    std::memcpy(&wb, b.data() + i, 8);
    uint64_t x = wa ^ wb;
    if (x != 0) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
      return i + (static_cast<size_t>(__builtin_clzll(x)) >> 3);
#else
      return i + (static_cast<size_t>(__builtin_ctzll(x)) >> 3);
#endif
    }
    i += 8;
  }
  while (i < n && a[i] == b[i]) i++;
  return i;
}

/// True when a and b share at least `len` leading bytes (the batch
/// prefix-reuse predicate — cheaper than a full LcpLen when only the
/// threshold matters).
inline bool SharedPrefixAtLeast(std::string_view a, std::string_view b,
                                size_t len) {
  if (a.size() < len || b.size() < len) return false;
  return std::memcmp(a.data(), b.data(), len) == 0;
}

/// Rank over a 256-bit MSB-first bitmap: set bits strictly below
/// position b (<= 256).
inline unsigned Rank256Below(const uint64_t bm[4], unsigned b) {
#if defined(__POPCNT__) || defined(__aarch64__) || defined(__ARM_NEON)
  // One-shot branch-free form: four hardware popcounts over masked
  // words, no data-dependent branch to mispredict.
  unsigned r = 0;
  for (unsigned w = 0; w < 4; w++) {  // constant trip count: fully unrolled
    unsigned lo = w * 64;
    // Bits of word w counted: clamp(b - lo, 0, 64). The double shift
    // keeps n == 0 defined ((x >> 1) >> 63 == 0) without a branch.
    unsigned n = b <= lo ? 0 : (b - lo >= 64 ? 64 : b - lo);
    uint64_t top = n >= 64 ? bm[w] : (bm[w] >> 1) >> (63 - n);
    r += static_cast<unsigned>(PopCount64(top));
  }
  return r;
#else
  // Without hardware POPCNT the four SWAR popcounts cost more than the
  // branches they avoid: stop at the word containing b instead. ASCII
  // descents keep b < 128, so this is one or two popcounts.
  unsigned word = b >> 6, bit = b & 63;
  unsigned r = 0;
  for (unsigned w = 0; w < word; w++) r += PopCount64(bm[w]);
  if (bit != 0 && word < 4) r += PopCount64(bm[word] >> (64 - bit));
  return r;
#endif
}

/// Predecessor over a 256-bit MSB-first bitmap: largest set position
/// strictly below b (<= 256), or -1. Masks the word containing b, then
/// scans down word-at-a-time; dense nodes resolve in the first probe
/// (one load + ctz — this is what replaces ART's backward slot scan).
inline int PrevSetBit256(const uint64_t bm[4], unsigned b) {
  if (b == 0) return -1;
  unsigned pos = b - 1;
  int word = static_cast<int>(pos >> 6);
  uint64_t w = bm[word] & (~uint64_t{0} << (63 - (pos & 63)));
  while (true) {
    // MSB-first layout: the largest position is the lowest set bit.
    if (w != 0) return word * 64 + (63 - __builtin_ctzll(w));
    if (word == 0) return -1;
    word--;
    w = bm[word];
  }
}

}  // namespace hope::simd
