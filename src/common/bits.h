// Bit-level utilities shared across HOPE and the search-tree substrates.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace hope {

/// Counts set bits in a 64-bit word.
inline int PopCount64(uint64_t x) { return __builtin_popcountll(x); }

/// Index (0 = MSB) of the highest set bit. Undefined for x == 0.
inline int HighestBit64(uint64_t x) { return 63 - __builtin_clzll(x); }

/// ceil(log2(n)) for n >= 1.
inline int CeilLog2(uint64_t n) {
  if (n <= 1) return 0;
  return HighestBit64(n - 1) + 1;
}

/// Reads bit `pos` (0 = MSB of word[0]) from a word array.
inline bool GetBit(const uint64_t* words, size_t pos) {
  return (words[pos >> 6] >> (63 - (pos & 63))) & 1;
}

/// Sets bit `pos` (0 = MSB of word[0]) in a word array.
inline void SetBit(uint64_t* words, size_t pos) {
  words[pos >> 6] |= uint64_t{1} << (63 - (pos & 63));
}

/// A code is a bit string of length <= 64, left-aligned in `bits`
/// (bit 63 of `bits` is the first bit of the code). Invariant: all bits
/// beyond `len` are zero — BitWriter relies on it for branch-free ORs.
struct Code {
  uint64_t bits = 0;
  uint8_t len = 0;  // in bits

  bool operator==(const Code&) const = default;
};

/// Returns the i-th bit (0-based from the start) of a left-aligned code.
inline bool CodeBit(const Code& c, int i) { return (c.bits >> (63 - i)) & 1; }

/// Renders a code as a "0101" string (for tests and debugging).
inline std::string CodeToString(const Code& c) {
  std::string s;
  s.reserve(c.len);
  for (int i = 0; i < c.len; i++) s.push_back(CodeBit(c, i) ? '1' : '0');
  return s;
}

/// Compares two byte strings as *bit* strings of the given bit lengths.
/// Returns <0, 0, >0. A proper bit-prefix compares less than its extension.
int CompareBitStrings(std::string_view a, size_t a_bits, std::string_view b,
                      size_t b_bits);

/// Appends a left-aligned code to a byte buffer at the given bit offset,
/// growing the buffer as needed. Returns the new bit offset.
size_t AppendCode(std::string* buf, size_t bit_offset, Code code);

}  // namespace hope
